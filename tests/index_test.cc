// Distance-oracle index layer tests (tier1): randomized CH/ALT correctness
// against plain Dijkstra over all three scenario graph families, the
// bit-equality contract of distance_oracle.h, many-to-many tables, landmark
// lower-bound admissibility, index save/load round-trips, the
// graph-checksum mismatch guard, and oracle-backed engine / service /
// OSR-baseline integration (kind selectable via SKYSR_ORACLE).

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "baseline/osr_dijkstra.h"
#include "baseline/osr_pne.h"
#include "core/bssr_engine.h"
#include "graph/dijkstra.h"
#include "graph/graph_builder.h"
#include "index/oracle_factory.h"
#include "scenario/diff_check.h"
#include "scenario/scenario.h"
#include "service/query_service.h"
#include "util/rng.h"

namespace skysr {
namespace {

ScenarioGraphParams FamilyParams(GraphFamily family, int64_t vertices,
                                 WeightModel weights, uint64_t seed) {
  ScenarioGraphParams p;
  p.family = family;
  p.target_vertices = vertices;
  p.weights = weights;
  p.seed = seed;
  return p;
}

/// Random vertex pairs, deterministic per seed.
std::vector<std::pair<VertexId, VertexId>> RandomPairs(int64_t n, int count,
                                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.UniformInt(0, n - 1)),
                       static_cast<VertexId>(rng.UniformInt(0, n - 1)));
  }
  return pairs;
}

class IndexFamilyTest
    : public ::testing::TestWithParam<std::tuple<GraphFamily, WeightModel>> {
};

// The exactness contract: CH and ALT return the very double a reference
// Dijkstra computes, across every scenario graph family and weight model
// (unit weights maximize ties, continuous weights exercise rounding).
TEST_P(IndexFamilyTest, ChAndAltMatchDijkstraBitwise) {
  const auto [family, weights] = GetParam();
  const Graph g = MakeScenarioGraph(
      FamilyParams(family, 400, weights, 7 + static_cast<uint64_t>(family)));
  const ChOracle ch = ChOracle::Build(g);
  const AltOracle alt = AltOracle::Build(g);
  OracleWorkspace ws;

  for (const auto& [s, t] : RandomPairs(g.num_vertices(), 120, 99)) {
    const DistanceField ref = SingleSourceDistances(g, s);
    const Weight want = ref.dist[static_cast<size_t>(t)];
    EXPECT_EQ(ch.Distance(s, t, ws), want)
        << GraphFamilyName(family) << " CH mismatch " << s << "->" << t;
    EXPECT_EQ(alt.Distance(s, t, ws), want)
        << GraphFamilyName(family) << " ALT mismatch " << s << "->" << t;
    EXPECT_LE(alt.LowerBound(s, t), want)
        << GraphFamilyName(family) << " inadmissible ALT bound " << s << "->"
        << t;
  }
}

// The CH bucket table must agree entry-for-entry with per-pair queries and
// with Dijkstra, including duplicate targets and source==target cells.
TEST_P(IndexFamilyTest, ChTableMatchesDijkstra) {
  const auto [family, weights] = GetParam();
  const Graph g = MakeScenarioGraph(FamilyParams(family, 300, weights, 21));
  const ChOracle ch = ChOracle::Build(g);
  OracleWorkspace ws;

  Rng rng(5);
  std::vector<VertexId> sources, targets;
  for (int i = 0; i < 6; ++i) {
    sources.push_back(static_cast<VertexId>(rng.UniformInt(0, g.num_vertices() - 1)));
  }
  for (int j = 0; j < 17; ++j) {
    targets.push_back(static_cast<VertexId>(rng.UniformInt(0, g.num_vertices() - 1)));
  }
  targets.push_back(targets.front());  // duplicate target column
  targets.push_back(sources.front());  // source==target cell

  std::vector<Weight> table(sources.size() * targets.size());
  ch.Table(sources, targets, ws, table.data());
  for (size_t i = 0; i < sources.size(); ++i) {
    const DistanceField ref = SingleSourceDistances(g, sources[i]);
    for (size_t j = 0; j < targets.size(); ++j) {
      EXPECT_EQ(table[i * targets.size() + j],
                ref.dist[static_cast<size_t>(targets[j])])
          << GraphFamilyName(family) << " table cell (" << i << "," << j
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, IndexFamilyTest,
    ::testing::Combine(::testing::Values(GraphFamily::kGrid,
                                         GraphFamily::kCluster,
                                         GraphFamily::kSmallWorld),
                       ::testing::Values(WeightModel::kUnit,
                                         WeightModel::kUniform,
                                         WeightModel::kEuclidean)));

TEST(FlatOracleTest, MatchesDijkstraAndTableHandlesDuplicates) {
  const Graph g = MakeScenarioGraph(
      FamilyParams(GraphFamily::kGrid, 200, WeightModel::kUniform, 3));
  const FlatOracle flat(g);
  OracleWorkspace ws;
  const DistanceField ref = SingleSourceDistances(g, 0);
  EXPECT_EQ(flat.Distance(0, 57, ws), ref.dist[57]);

  const std::vector<VertexId> sources = {0, 5};
  const std::vector<VertexId> targets = {57, 3, 57, 0};
  std::vector<Weight> table(sources.size() * targets.size());
  flat.Table(sources, targets, ws, table.data());
  for (size_t i = 0; i < sources.size(); ++i) {
    const DistanceField row = SingleSourceDistances(g, sources[i]);
    for (size_t j = 0; j < targets.size(); ++j) {
      EXPECT_EQ(table[i * targets.size() + j],
                row.dist[static_cast<size_t>(targets[j])]);
    }
  }
}

TEST(ChOracleTest, DisconnectedAndDirectedGraphs) {
  // Two components: 0-1-2 and 3-4; plus a directed variant with a one-way
  // shortcut that only helps one direction.
  GraphBuilder b(/*directed=*/false);
  for (int i = 0; i < 5; ++i) b.AddVertex();
  b.AddEdge(0, 1, 1.5);
  b.AddEdge(1, 2, 2.25);
  b.AddEdge(3, 4, 4.0);
  const Graph g = b.Build().ValueOrDie();
  const ChOracle ch = ChOracle::Build(g);
  OracleWorkspace ws;
  EXPECT_EQ(ch.Distance(0, 2, ws), 3.75);
  EXPECT_EQ(ch.Distance(0, 3, ws), kInfWeight);
  EXPECT_EQ(ch.Distance(4, 3, ws), 4.0);

  GraphBuilder db(/*directed=*/true);
  for (int i = 0; i < 4; ++i) db.AddVertex();
  db.AddEdge(0, 1, 1.0);
  db.AddEdge(1, 2, 1.0);
  db.AddEdge(2, 3, 1.0);
  db.AddEdge(3, 0, 10.0);
  db.AddEdge(0, 3, 1.25);
  const Graph dg = db.Build().ValueOrDie();
  const ChOracle dch = ChOracle::Build(dg);
  const AltOracle dalt = AltOracle::Build(dg, 3);
  for (VertexId s = 0; s < 4; ++s) {
    const DistanceField ref = SingleSourceDistances(dg, s);
    for (VertexId t = 0; t < 4; ++t) {
      EXPECT_EQ(dch.Distance(s, t, ws), ref.dist[static_cast<size_t>(t)])
          << "directed CH " << s << "->" << t;
      EXPECT_EQ(dalt.Distance(s, t, ws), ref.dist[static_cast<size_t>(t)])
          << "directed ALT " << s << "->" << t;
    }
  }
}

TEST(IndexIoTest, SaveLoadRoundTripsBothOracles) {
  const Graph g = MakeScenarioGraph(
      FamilyParams(GraphFamily::kCluster, 250, WeightModel::kUniform, 11));
  const std::string ch_path = ::testing::TempDir() + "/roundtrip.chidx";
  const std::string alt_path = ::testing::TempDir() + "/roundtrip.altidx";

  const ChOracle built_ch = ChOracle::Build(g);
  ASSERT_TRUE(SaveOracleIndex(built_ch, ch_path).ok());
  const AltOracle built_alt = AltOracle::Build(g);
  ASSERT_TRUE(SaveOracleIndex(built_alt, alt_path).ok());

  auto ch = LoadOracleIndex(ch_path, g);
  ASSERT_TRUE(ch.ok()) << ch.status().ToString();
  EXPECT_EQ((*ch)->kind(), OracleKind::kCh);
  auto alt = LoadOracleIndex(alt_path, g);
  ASSERT_TRUE(alt.ok()) << alt.status().ToString();
  EXPECT_EQ((*alt)->kind(), OracleKind::kAlt);

  OracleWorkspace ws;
  for (const auto& [s, t] : RandomPairs(g.num_vertices(), 40, 17)) {
    const Weight want = (*ch)->Distance(s, t, ws);
    EXPECT_EQ(built_ch.Distance(s, t, ws), want);
    EXPECT_EQ((*alt)->Distance(s, t, ws), want);
  }

  EXPECT_FALSE(SaveOracleIndex(FlatOracle(g), ch_path).ok());
}

TEST(IndexIoTest, ChecksumMismatchIsRejectedWithClearMessage) {
  const Graph g = MakeScenarioGraph(
      FamilyParams(GraphFamily::kGrid, 120, WeightModel::kUniform, 1));
  const std::string path = ::testing::TempDir() + "/mismatch.chidx";
  ASSERT_TRUE(SaveOracleIndex(ChOracle::Build(g), path).ok());

  // Same family, different seed: a structurally different graph.
  const Graph other = MakeScenarioGraph(
      FamilyParams(GraphFamily::kGrid, 120, WeightModel::kUniform, 2));
  auto loaded = LoadOracleIndex(path, other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("different graph"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("rebuild"), std::string::npos);

  EXPECT_NE(GraphChecksum(g), GraphChecksum(other));
  EXPECT_EQ(GraphChecksum(g), GraphChecksum(g));
}

// Engine-level integration: an oracle-backed BssrEngine (and a QueryService
// sharing the index across workers) must reproduce the classic engine's
// skylines bit for bit on a generated scenario workload. The oracle kind
// honors SKYSR_ORACLE (default ch), so the CI index job re-runs this whole
// suite against the CH paths.
TEST(OracleEngineTest, OracleBackedEngineMatchesFlatEngine) {
  const OracleKind kind =
      OracleKindFromEnv(OracleKind::kCh).value_or(OracleKind::kCh);
  for (int suite_index : {1, 3, 5}) {  // one spec per graph family
    const Scenario sc = MakeScenario(ScenarioSuiteSpec(suite_index, 404));
    const auto oracle = MakeOracle(kind, sc.dataset.graph);
    BssrEngine flat_engine(sc.dataset.graph, sc.dataset.forest);
    BssrEngine oracle_engine(sc.dataset.graph, sc.dataset.forest,
                             oracle.get());

    ServiceConfig cfg;
    cfg.num_threads = 2;
    cfg.oracle = oracle.get();
    QueryService service(sc.dataset.graph, sc.dataset.forest, cfg);
    const auto service_results = service.RunBatch(sc.queries);

    for (size_t qi = 0; qi < sc.queries.size(); ++qi) {
      auto want = flat_engine.Run(sc.queries[qi]);
      auto got = oracle_engine.Run(sc.queries[qi]);
      ASSERT_TRUE(want.ok() && got.ok());
      EXPECT_TRUE(BitIdenticalSkylines(got->routes, want->routes))
          << sc.spec.name << " query " << qi << " oracle "
          << OracleKindName(kind) << ": expected "
          << RenderSkyline(want->routes) << " got "
          << RenderSkyline(got->routes);
      ASSERT_TRUE(service_results[qi].ok());
      EXPECT_TRUE(BitIdenticalSkylines(
          service_results[qi].ValueOrDie().routes, want->routes))
          << sc.spec.name << " service query " << qi;
    }
  }
}

// The OSR baselines accept the oracle for destination tails; totals agree
// with the classic whole-graph sweep up to summation order.
TEST(OracleEngineTest, OsrDestinationTailsMatchWithOracle) {
  const Scenario sc = MakeScenario(ScenarioSuiteSpec(2, 77));
  const Graph& g = sc.dataset.graph;
  const auto ch = MakeOracle(OracleKind::kCh, g);
  const SimilarityFunction& sim = *DefaultSimilarity();

  std::vector<PositionMatcher> matchers;
  std::vector<CategoryId> cats;
  for (PoiId p = 0; p < std::min<PoiId>(2, static_cast<PoiId>(g.num_pois()));
       ++p) {
    cats.push_back(g.PoiPrimaryCategory(p));
  }
  ASSERT_FALSE(cats.empty());
  for (const CategoryId c : cats) {
    matchers.emplace_back(g, sc.dataset.forest, sim,
                          CategoryPredicate::Single(c),
                          MultiCategoryMode::kMaxSimilarity);
  }

  const VertexId start = 0;
  const auto dest = std::optional<VertexId>(g.num_vertices() - 1);
  const OsrResult dij = RunOsrDijkstra(g, matchers, start, dest, 30.0);
  const OsrResult dij_ch =
      RunOsrDijkstra(g, matchers, start, dest, 30.0, ch.get());
  const OsrResult pne = RunOsrPne(g, matchers, start, dest, 30.0);
  const OsrResult pne_ch = RunOsrPne(g, matchers, start, dest, 30.0, ch.get());
  ASSERT_EQ(dij.pois.has_value(), dij_ch.pois.has_value());
  ASSERT_EQ(pne.pois.has_value(), pne_ch.pois.has_value());
  if (dij.pois) {
    EXPECT_NEAR(dij_ch.length, dij.length, 1e-9 * std::max(1.0, dij.length));
    EXPECT_NEAR(pne_ch.length, pne.length, 1e-9 * std::max(1.0, pne.length));
    // The oracle mode settles strictly less of the (vertex, progress) space.
    EXPECT_LE(dij_ch.vertices_settled, dij.vertices_settled);
  }
}

TEST(OracleFactoryTest, KindsParseAndBuild) {
  EXPECT_EQ(ParseOracleKind("flat"), OracleKind::kFlat);
  EXPECT_EQ(ParseOracleKind("ch"), OracleKind::kCh);
  EXPECT_EQ(ParseOracleKind("alt"), OracleKind::kAlt);
  EXPECT_FALSE(ParseOracleKind("dijkstra").has_value());
  EXPECT_STREQ(OracleKindName(OracleKind::kCh), "ch");

  const Graph g = MakeScenarioGraph(
      FamilyParams(GraphFamily::kSmallWorld, 100, WeightModel::kUnit, 4));
  for (const OracleKind kind :
       {OracleKind::kFlat, OracleKind::kCh, OracleKind::kAlt}) {
    const auto oracle = MakeOracle(kind, g);
    ASSERT_NE(oracle, nullptr);
    EXPECT_EQ(oracle->kind(), kind);
    OracleWorkspace ws;
    const DistanceField ref = SingleSourceDistances(g, 1);
    EXPECT_EQ(oracle->Distance(1, 42, ws), ref.dist[42]);
  }
}

}  // namespace
}  // namespace skysr

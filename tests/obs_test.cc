// Tests for the observability subsystem (src/obs/ + service exposition):
// the QueryTrace ring and TraceSpan RAII (including the disabled-mode
// no-allocation guarantee), Chrome trace-event export, the Prometheus text
// exposition (golden format), the slow-query log, the mini JSON parser and
// the perf-trajectory regression gate.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bssr_engine.h"
#include "obs/mini_json.h"
#include "obs/perf_trajectory.h"
#include "obs/query_trace.h"
#include "obs/trace_export.h"
#include "service/metrics_endpoint.h"
#include "service/prometheus.h"
#include "service/query_service.h"
#include "service/service_metrics.h"
#include "service/slow_query_log.h"
#include "tests/test_util.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"

// ---------------------------------------------------------------------------
// Binary-local allocation counter (same idiom as bench_hotpath): global
// operator new is overridden so "no allocation" is measured, not assumed.
namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace skysr {
namespace {

// ----------------------------------------------------------- query trace --

TEST(QueryTraceTest, CapacityClampsToMinimum) {
  QueryTrace t(1);
  EXPECT_EQ(t.capacity(), 16u);
}

TEST(QueryTraceTest, WraparoundKeepsNewestAndCountsDropped) {
  QueryTrace t(16);
  t.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    t.Record(TracePhase::kExpansion, /*start_ns=*/i, /*dur_ns=*/1,
             /*depth=*/0);
  }
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.dropped(), 4);
  // Oldest-first walk starts at the 4th event and stays in order.
  std::vector<int64_t> starts;
  t.ForEachEvent([&](const TraceEvent& e) { starts.push_back(e.start_ns); });
  ASSERT_EQ(starts.size(), 16u);
  EXPECT_EQ(starts.front(), 4);
  EXPECT_EQ(starts.back(), 19);
  // Aggregates cover every recorded event, including overwritten ones.
  EXPECT_EQ(t.aggregates().of(TracePhase::kExpansion).count, 20);
}

TEST(QueryTraceTest, DisabledRecordsNothing) {
  QueryTrace t(64);
  t.Record(TracePhase::kExpansion, 0, 1, 0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.aggregates().empty());
}

TEST(QueryTraceTest, ClearResetsEverything) {
  QueryTrace t(16);
  t.set_enabled(true);
  for (int i = 0; i < 20; ++i) t.Record(TracePhase::kNnInit, i, 1, 0);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0);
  EXPECT_TRUE(t.aggregates().empty());
}

TEST(TraceSpanTest, NestedSpansRecordDepthsInnermostFirst) {
  QueryTrace t(64);
  t.set_enabled(true);
  {
    TraceSpan a(&t, TracePhase::kQuery);
    {
      TraceSpan b(&t, TracePhase::kExpansion);
      TraceSpan c(&t, TracePhase::kRetrieval);
    }
  }
  std::vector<std::pair<TracePhase, int>> events;
  t.ForEachEvent([&](const TraceEvent& e) {
    events.emplace_back(e.phase, static_cast<int>(e.depth));
  });
  // Spans land at scope exit: innermost closes first.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].first, TracePhase::kRetrieval);
  EXPECT_EQ(events[0].second, 2);
  EXPECT_EQ(events[1].first, TracePhase::kExpansion);
  EXPECT_EQ(events[1].second, 1);
  EXPECT_EQ(events[2].first, TracePhase::kQuery);
  EXPECT_EQ(events[2].second, 0);
}

TEST(TraceSpanTest, NullAndDisabledTracesAreSafe) {
  { TraceSpan s(nullptr, TracePhase::kQuery); }
  QueryTrace t(16);
  { TraceSpan s(&t, TracePhase::kQuery); }
  EXPECT_EQ(t.size(), 0u);
}

TEST(TraceSpanTest, CloseIsIdempotent) {
  QueryTrace t(16);
  t.set_enabled(true);
  TraceSpan s(&t, TracePhase::kQbDrain);
  s.Close();
  s.Close();
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceSpanTest, DisabledAndEnabledPathsDoNotAllocate) {
  QueryTrace disabled(16);
  QueryTrace enabled(1024);
  enabled.set_enabled(true);
  const int64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    TraceSpan a(nullptr, TracePhase::kExpansion);
    TraceSpan b(&disabled, TracePhase::kExpansion);
    TraceSpan c(&enabled, TracePhase::kExpansion);
  }
  EXPECT_EQ(g_alloc_count.load(), before)
      << "span sites must not allocate: the ring is sized at construction";
}

TEST(PhaseAggregatesTest, DiffSinceSubtractsCountsAndTotals) {
  PhaseAggregates before;
  before.of(TracePhase::kExpansion).Add(100);
  before.of(TracePhase::kExpansion).Add(300);
  before.of(TracePhase::kNnInit).Add(50);

  PhaseAggregates after = before;
  after.of(TracePhase::kExpansion).Add(900);

  const PhaseAggregates d = after.DiffSince(before);
  EXPECT_EQ(d.of(TracePhase::kExpansion).count, 1);
  EXPECT_EQ(d.of(TracePhase::kExpansion).total_ns, 900);
  // Max is the running window max — an upper bound, never understated.
  EXPECT_EQ(d.of(TracePhase::kExpansion).max_ns, 900);
  // Inactive phases diff to zero, including their max.
  EXPECT_EQ(d.of(TracePhase::kNnInit).count, 0);
  EXPECT_EQ(d.of(TracePhase::kNnInit).max_ns, 0);
  EXPECT_FALSE(d.empty());
}

// ---------------------------------------------------------- trace export --

TEST(TraceExportTest, ChromeJsonIsParseableAndCoversEvents) {
  QueryTrace t(64);
  t.set_enabled(true);
  {
    TraceSpan a(&t, TracePhase::kQuery);
    TraceSpan b(&t, TracePhase::kExpansion);
  }
  const std::string json = TraceToChromeJson(t, "query");
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // One thread_name metadata event plus one X event per span.
  ASSERT_EQ(events->array.size(), t.size() + 1);
  int x_events = 0;
  bool saw_expansion = false;
  for (const JsonValue& e : events->array) {
    const std::string ph(e.StringOr("ph", ""));
    if (ph == "X") {
      ++x_events;
      ASSERT_NE(e.Find("ts"), nullptr);
      ASSERT_NE(e.Find("dur"), nullptr);
      if (e.StringOr("name", "") == "expansion") saw_expansion = true;
    } else {
      EXPECT_EQ(ph, "M");
    }
  }
  EXPECT_EQ(x_events, 2);
  EXPECT_TRUE(saw_expansion);
}

TEST(TraceExportTest, MultiTrackExportNamesEachWorker) {
  QueryTrace t1(16), t2(16);
  t1.set_enabled(true);
  t2.set_enabled(true);
  t1.Record(TracePhase::kExecute, 0, 10, 0);
  t2.Record(TracePhase::kExecute, 5, 10, 0);
  const std::vector<TraceTrack> tracks = {{&t1, "worker-0"}, {&t2, "worker-1"}};
  const std::string json = TracesToChromeJson(tracks);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("worker-1"), std::string::npos);
}

TEST(TraceExportTest, PhaseBreakdownListsActivePhasesOnly) {
  PhaseAggregates agg;
  agg.of(TracePhase::kExpansion).Add(1000000);
  const std::string s = PhaseBreakdownString(agg);
  EXPECT_NE(s.find("expansion"), std::string::npos);
  EXPECT_EQ(s.find("nn_init"), std::string::npos);
  EXPECT_TRUE(PhaseBreakdownString(PhaseAggregates{}).empty());
}

// ------------------------------------------------------ engine integration --

TEST(EngineTraceTest, TracedRunRecordsPhasesAndPreservesCounters) {
  const testing::TinyDataset tiny = testing::MakeTinyDataset(7);
  Query q;
  q.start = 0;
  q.sequence.push_back(
      CategoryPredicate::Single(tiny.graph.PoiPrimaryCategory(0)));
  q.sequence.push_back(
      CategoryPredicate::Single(tiny.graph.PoiPrimaryCategory(1)));

  BssrEngine plain(tiny.graph, tiny.forest);
  auto base = plain.Run(q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_TRUE(base->stats.phases.empty());

  BssrEngine traced(tiny.graph, tiny.forest);
  QueryTrace trace(4096);
  trace.set_enabled(true);
  traced.AttachTrace(&trace);
  auto result = traced.Run(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Tracing must observe the search, not change it.
  EXPECT_EQ(result->stats.vertices_settled, base->stats.vertices_settled);
  EXPECT_EQ(result->stats.edges_relaxed, base->stats.edges_relaxed);
  ASSERT_EQ(result->routes.size(), base->routes.size());

  // The root span covers the run; the engine phases were recorded and the
  // per-query cut landed in the stats.
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(result->stats.phases.of(TracePhase::kQuery).count, 1);
  EXPECT_GT(result->stats.phases.of(TracePhase::kExpansion).count, 0);
  // Phase time nests inside the root span.
  EXPECT_LE(result->stats.phases.of(TracePhase::kExpansion).total_ns,
            result->stats.phases.of(TracePhase::kQuery).total_ns);
}

// ------------------------------------------------------------- prometheus --

TEST(PrometheusTest, GoldenTextFormat) {
  MetricsSnapshot s;
  s.submitted = 5;
  s.completed = 4;
  s.errors = 1;
  s.rejected = 2;
  s.cache_hits = 3;
  s.cache_misses = 1;
  s.vertices_settled = 1234;
  s.uptime_seconds = 2.5;
  s.latency_sum_ms = 10.5;
  s.latency_bucket_counts[0] = 1;
  s.latency_bucket_counts[2] = 3;

  const std::string text = PrometheusText(s);
  const auto expect_has = [&](const char* needle) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
  };
  expect_has(
      "# HELP skysr_queries_submitted_total Queries accepted into the "
      "service.\n# TYPE skysr_queries_submitted_total counter\n"
      "skysr_queries_submitted_total 5\n");
  expect_has("skysr_queries_completed_total 4\n");
  expect_has("skysr_query_errors_total 1\n");
  expect_has("skysr_queries_rejected_total 2\n");
  expect_has("skysr_vertices_settled_total 1234\n");
  expect_has("# TYPE skysr_uptime_seconds gauge\nskysr_uptime_seconds 2.5\n");
  // Histogram: cumulative buckets at the pinned bound values (UpperBoundMs
  // is bit-stable by construction), then the +Inf/sum/count trailer.
  expect_has("# TYPE skysr_query_latency_ms histogram\n");
  expect_has("skysr_query_latency_ms_bucket{le=\"0.00125\"} 1\n");
  expect_has("skysr_query_latency_ms_bucket{le=\"0.0015625\"} 1\n");
  expect_has("skysr_query_latency_ms_bucket{le=\"0.001953125\"} 4\n");
  expect_has("skysr_query_latency_ms_bucket{le=\"+Inf\"} 4\n");
  expect_has("skysr_query_latency_ms_sum 10.5\n");
  expect_has("skysr_query_latency_ms_count 4\n");
}

// Queue-depth gauge, queue-wait p99 + histogram, and the batching counters
// must all appear in the exposition without tracing on.
TEST(PrometheusTest, QueueAndBatchMetricsExposed) {
  MetricsSnapshot s;
  s.completed = 4;
  s.queue_depth = 17;
  s.queue_wait_count = 3;
  s.queue_wait_p99_ms = 2.5;
  s.queue_wait_sum_ms = 4.25;
  s.queue_wait_bucket_counts[0] = 1;
  s.queue_wait_bucket_counts[2] = 2;
  s.batches = 5;
  s.batched_queries = 20;
  s.coalesced_queries = 6;

  const std::string text = PrometheusText(s);
  const auto expect_has = [&](const char* needle) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
  };
  expect_has("# TYPE skysr_queue_depth gauge\nskysr_queue_depth 17\n");
  expect_has(
      "# TYPE skysr_queue_wait_p99_ms gauge\nskysr_queue_wait_p99_ms 2.5\n");
  expect_has("# TYPE skysr_queue_wait_ms histogram\n");
  expect_has("skysr_queue_wait_ms_bucket{le=\"0.00125\"} 1\n");
  expect_has("skysr_queue_wait_ms_bucket{le=\"0.001953125\"} 3\n");
  expect_has("skysr_queue_wait_ms_bucket{le=\"+Inf\"} 3\n");
  expect_has("skysr_queue_wait_ms_sum 4.25\n");
  expect_has("skysr_queue_wait_ms_count 3\n");
  expect_has("skysr_batches_total 5\n");
  expect_has("skysr_batched_queries_total 20\n");
  expect_has("skysr_coalesced_queries_total 6\n");
}

TEST(PrometheusTest, ServiceMetricsRecordsQueueWaitAndBatches) {
  ServiceMetrics m;
  m.RecordQueueWait(1.0);
  m.RecordQueueWait(100.0);
  m.SampleQueueDepth(9);
  m.RecordBatch(4);
  m.RecordBatch(1);
  m.RecordCoalesced();

  const MetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.queue_wait_count, 2);
  EXPECT_GT(s.queue_wait_p99_ms, 70.0);
  EXPECT_LT(s.queue_wait_p99_ms, 140.0);
  EXPECT_DOUBLE_EQ(s.queue_wait_max_ms, 100.0);
  EXPECT_NEAR(s.queue_wait_mean_ms, 50.5, 1e-9);
  EXPECT_EQ(s.queue_depth, 9);
  EXPECT_EQ(s.batches, 2);
  EXPECT_EQ(s.batched_queries, 5);
  EXPECT_EQ(s.coalesced_queries, 1);
  EXPECT_DOUBLE_EQ(s.batch_mean_size, 2.5);
  // Size 4 lands in bucket 2 ([4,8)), size 1 in bucket 0.
  EXPECT_EQ(s.batch_size_bucket_counts[0], 1);
  EXPECT_EQ(s.batch_size_bucket_counts[2], 1);

  const std::string text = m.ToPrometheus();
  EXPECT_NE(text.find("skysr_queue_depth 9\n"), std::string::npos);
  EXPECT_NE(text.find("skysr_queue_wait_ms_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("skysr_batches_total 2\n"), std::string::npos);

  m.Reset();
  const MetricsSnapshot zero = m.Snapshot();
  EXPECT_EQ(zero.queue_wait_count, 0);
  EXPECT_EQ(zero.queue_depth, 0);
  EXPECT_EQ(zero.batches, 0);
}

TEST(PrometheusTest, ServiceMetricsExposesRecordedCounts) {
  ServiceMetrics m;
  m.RecordSubmitted();
  m.RecordSubmitted();
  m.RecordCompleted(/*latency_ms=*/1.0, 10, 20, 1);
  const std::string text = m.ToPrometheus();
  EXPECT_NE(text.find("skysr_queries_submitted_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("skysr_queries_completed_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("skysr_query_latency_ms_count 1\n"), std::string::npos);
}

// ---------------------------------------------------------- slow queries --

SlowQueryRecord Rec(double latency_ms) {
  SlowQueryRecord r;
  r.latency_ms = latency_ms;
  return r;
}

TEST(SlowQueryLogTest, KeepsSlowestNSlowestFirst) {
  SlowQueryLog log(3);
  for (int i = 1; i <= 10; ++i) log.Offer(Rec(i));
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].latency_ms, 10);
  EXPECT_EQ(snap[1].latency_ms, 9);
  EXPECT_EQ(snap[2].latency_ms, 8);
}

TEST(SlowQueryLogTest, ZeroCapacityDisables) {
  SlowQueryLog log(0);
  log.Offer(Rec(5));
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(SlowQueryLogTest, ClearResetsFloor) {
  SlowQueryLog log(2);
  log.Offer(Rec(100));
  log.Offer(Rec(200));
  log.Clear();
  log.Offer(Rec(1));
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].latency_ms, 1);
}

// ------------------------------------------------------ service end-to-end --

TEST(ServiceObservabilityTest, TracingServiceCapturesSlowQueriesAndTraces) {
  testing::TinyDataset tiny =
      testing::MakeTinyDataset(11, /*n=*/32, /*extra_edges=*/24,
                               /*num_pois=*/16);
  Dataset ds;
  ds.name = "obs-test";
  ds.graph = std::move(tiny.graph);
  ds.forest = std::move(tiny.forest);
  QueryGenParams qp;
  qp.count = 8;
  qp.sequence_size = 2;
  qp.seed = 5;
  const auto queries = GenerateQueries(ds, qp);

  ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.enable_tracing = true;
  cfg.slow_query_log_capacity = 4;
  QueryService service(ds.graph, ds.forest, cfg);
  const auto results = service.RunBatch(queries);
  for (const auto& r : results) EXPECT_TRUE(r.ok());

  const MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.completed, static_cast<int64_t>(queries.size()));
  ASSERT_FALSE(m.slow_queries.empty());
  EXPECT_LE(m.slow_queries.size(), 4u);
  EXPECT_GT(m.slow_queries[0].latency_ms, 0);
  // Histogram raw counts sum to the completions they aggregate.
  int64_t bucketed = 0;
  for (int64_t c : m.latency_bucket_counts) bucketed += c;
  EXPECT_EQ(bucketed, m.completed);

  const std::string traces = service.WorkerTracesToJson();
  auto parsed = ParseJson(traces);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(traces.find("worker-0"), std::string::npos);
  EXPECT_NE(traces.find("\"execute\""), std::string::npos);
}

TEST(MetricsEndpointTest, ServesProviderTextOverHttp) {
  MetricsEndpoint ep(0, [] { return std::string("skysr_up 1\n"); });
  ASSERT_TRUE(ep.Start().ok());
  ASSERT_GT(ep.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(ep.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req, sizeof(req) - 1, 0),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  ep.Stop();

  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("skysr_up 1\n"), std::string::npos);
}

// -------------------------------------------------------------- mini json --

TEST(MiniJsonTest, ParsesNestedDocumentPreservingOrder) {
  auto v = ParseJson(R"({"b": 1, "a": [true, null, "x\n", -2.5e3]})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->object.size(), 2u);
  EXPECT_EQ(v->object[0].first, "b");  // member order is kept
  EXPECT_EQ(v->object[1].first, "a");
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 4u);
  EXPECT_TRUE(a->array[0].boolean);
  EXPECT_EQ(a->array[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(a->array[2].string, "x\n");
  EXPECT_EQ(a->array[3].number, -2500.0);
}

TEST(MiniJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("truthy").ok());
  EXPECT_FALSE(ParseJson("1.2.3").ok());
  EXPECT_FALSE(ParseJson("").ok());
  // Depth cap: 70 nested arrays exceed the 64 limit.
  std::string deep(70, '[');
  deep += std::string(70, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(MiniJsonTest, StringOrAndFindHelpers) {
  auto v = ParseJson(R"({"name": "hotpath", "n": 3})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->StringOr("name", "d"), "hotpath");
  EXPECT_EQ(v->StringOr("missing", "d"), "d");
  EXPECT_EQ(v->Find("absent"), nullptr);
}

// -------------------------------------------------------- perf trajectory --

TEST(PerfTrajectoryTest, MetricDirectionHeuristic) {
  EXPECT_EQ(MetricDirection("qps"), +1);
  EXPECT_EQ(MetricDirection("settles_per_sec"), +1);
  EXPECT_EQ(MetricDirection("cache_hit_rate"), +1);
  EXPECT_EQ(MetricDirection("p99_ms"), -1);
  EXPECT_EQ(MetricDirection("allocs_per_query"), -1);
  EXPECT_EQ(MetricDirection("resident_bytes"), -1);
  EXPECT_EQ(MetricDirection("counters.settled"), 0);
  EXPECT_EQ(MetricDirection("skyline"), 0);
}

constexpr const char* kRunTemplate = R"({
  "bench": "hotpath",
  "scale": 1,
  "meta": {"schema_version": 1, "git_sha": "%s", "timestamp_utc": "%s"},
  "families": [
    {"family": "grid", "config": "auto", "qps": %d, "p99_ms": %g,
     "counters": {"settled": %d}}
  ]
})";

std::string MakeRun(const char* sha, const char* stamp, int qps, double p99,
                    int settled) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), kRunTemplate, sha, stamp, qps, p99,
                settled);
  return buf;
}

TEST(PerfTrajectoryTest, ParseBenchRunExtractsRowsAndMeta) {
  auto run = ParseBenchRun(MakeRun("abc123", "2026-08-01T00:00:00Z", 1000,
                                   2.0, 500),
                           "BENCH_hotpath.json");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->bench, "hotpath");
  EXPECT_EQ(run->git_sha, "abc123");
  EXPECT_EQ(run->timestamp, "2026-08-01T00:00:00Z");
  bool saw_qps = false, saw_nested = false, saw_scale = false;
  for (const auto& s : run->samples) {
    if (s.metric == "qps") {
      saw_qps = true;
      EXPECT_EQ(s.row, "grid/auto");  // string fields join into the label
      EXPECT_EQ(s.value, 1000.0);
    }
    if (s.metric == "counters.settled") saw_nested = true;
    if (s.metric == "scale") saw_scale = true;
  }
  EXPECT_TRUE(saw_qps);
  EXPECT_TRUE(saw_nested);
  EXPECT_FALSE(saw_scale);  // run-shape fields are not metrics
}

TEST(PerfTrajectoryTest, ParseBenchRunRejectsMalformedInput) {
  EXPECT_FALSE(ParseBenchRun("{not json", "x.json").ok());
  EXPECT_FALSE(ParseBenchRun("[1, 2]", "x.json").ok());
  EXPECT_FALSE(ParseBenchRun(R"({"bench": "empty"})", "x.json").ok());
}

TEST(PerfTrajectoryTest, FlagsTwentyPercentQpsDrop) {
  std::vector<BenchRun> runs;
  // Deliberately passed newest-first: ordering must come from the stamp.
  runs.push_back(*ParseBenchRun(
      MakeRun("bbb", "2026-08-02T00:00:00Z", 800, 2.0, 500), "b.json"));
  runs.push_back(*ParseBenchRun(
      MakeRun("aaa", "2026-08-01T00:00:00Z", 1000, 2.0, 500), "a.json"));

  const PerfReport report = BuildPerfReport(std::move(runs), {});
  EXPECT_EQ(report.num_runs, 2);
  EXPECT_EQ(report.num_regressions, 1);
  ASSERT_FALSE(report.trends.empty());
  const MetricTrend& t = report.trends[0];  // regressions sort first
  EXPECT_EQ(t.metric, "qps");
  EXPECT_TRUE(t.regressed);
  EXPECT_EQ(t.baseline, 1000.0);
  EXPECT_EQ(t.latest, 800.0);
  EXPECT_NEAR(t.change, -0.20, 1e-9);
  EXPECT_NE(report.ToMarkdown().find("REGRESSED"), std::string::npos);
  EXPECT_NE(report.ToCsv().find("qps,1000,800,-0.2,1"), std::string::npos);
}

TEST(PerfTrajectoryTest, SmallDriftAndCountersAreNotFlagged) {
  std::vector<BenchRun> runs;
  runs.push_back(*ParseBenchRun(
      MakeRun("aaa", "2026-08-01T00:00:00Z", 1000, 2.0, 500), "a.json"));
  // qps -5% (inside the 10% gate), p99 +5% (inside), settled +50%
  // (deterministic counter: tracked, never flagged).
  runs.push_back(*ParseBenchRun(
      MakeRun("bbb", "2026-08-02T00:00:00Z", 950, 2.1, 750), "b.json"));
  const PerfReport report = BuildPerfReport(std::move(runs), {});
  EXPECT_EQ(report.num_regressions, 0);
}

TEST(PerfTrajectoryTest, LowerBetterMetricFlagsOnRise) {
  std::vector<BenchRun> runs;
  runs.push_back(*ParseBenchRun(
      MakeRun("aaa", "2026-08-01T00:00:00Z", 1000, 2.0, 500), "a.json"));
  runs.push_back(*ParseBenchRun(
      MakeRun("bbb", "2026-08-02T00:00:00Z", 1000, 3.0, 500), "b.json"));
  const PerfReport report = BuildPerfReport(std::move(runs), {});
  ASSERT_EQ(report.num_regressions, 1);
  EXPECT_EQ(report.trends[0].metric, "p99_ms");
}

}  // namespace
}  // namespace skysr

// Unit tests for the util substrate: Status/Result, heap, RNG, Zipf,
// stamped arrays, string parsing, memory introspection.

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "util/dary_heap.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/stamped_array.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace skysr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad weight");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("x");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kNotFound);
  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SKYSR_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(DaryHeapTest, PopsInSortedOrder) {
  Rng rng(1);
  DaryHeap<int> heap;
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i) {
    const int v = static_cast<int>(rng.UniformU64(10000));
    values.push_back(v);
    heap.push(v);
  }
  std::sort(values.begin(), values.end());
  for (int v : values) {
    EXPECT_EQ(heap.top(), v);
    EXPECT_EQ(heap.pop(), v);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeapTest, MatchesStdPriorityQueueUnderMixedOps) {
  Rng rng(2);
  DaryHeap<int> heap;
  std::priority_queue<int, std::vector<int>, std::greater<>> reference;
  for (int step = 0; step < 5000; ++step) {
    if (reference.empty() || rng.Bernoulli(0.6)) {
      const int v = static_cast<int>(rng.UniformU64(1 << 20));
      heap.push(v);
      reference.push(v);
    } else {
      ASSERT_EQ(heap.pop(), reference.top());
      reference.pop();
    }
    ASSERT_EQ(heap.size(), reference.size());
  }
}

TEST(DaryHeapTest, PeakSizeTracksHighWater) {
  DaryHeap<int> heap;
  for (int i = 0; i < 10; ++i) heap.push(i);
  for (int i = 0; i < 5; ++i) heap.pop();
  heap.push(1);
  EXPECT_EQ(heap.peak_size(), 10u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformU64(17);
    EXPECT_LT(v, 17u);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t j = rng.UniformInt(-5, 5);
    EXPECT_GE(j, -5);
    EXPECT_LE(j, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(4);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.UniformU64(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 each
}

TEST(ZipfTest, Theta0IsUniform) {
  ZipfDistribution z(4, 0.0);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(z.Pmf(i), 0.25, 1e-12);
  }
}

TEST(ZipfTest, PmfDecreasesWithRankAndSumsToOne) {
  ZipfDistribution z(50, 0.9);
  double sum = 0;
  for (int64_t i = 0; i < 50; ++i) {
    sum += z.Pmf(i);
    if (i > 0) {
      EXPECT_LT(z.Pmf(i), z.Pmf(i - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SamplingMatchesPmf) {
  ZipfDistribution z(10, 1.0);
  Rng rng(5);
  std::vector<int> hits(10, 0);
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) ++hits[z.Sample(rng)];
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / kN, z.Pmf(i), 0.02);
  }
}

TEST(StampedArrayTest, ResetsLogicallyInO1) {
  StampedArray<int> arr;
  arr.Prepare(4, -1);
  arr.Set(2, 42);
  EXPECT_EQ(arr.Get(2), 42);
  EXPECT_EQ(arr.Get(0), -1);
  arr.Prepare(4, -7);
  EXPECT_EQ(arr.Get(2), -7);  // previous epoch invisible
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsRuns) {
  const auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, TrimAndStartsWith) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_TRUE(StartsWith("skyline", "sky"));
  EXPECT_FALSE(StartsWith("sky", "skyline"));
}

TEST(StringUtilTest, ParseNumbersRejectTrailingJunk) {
  double d;
  int64_t i;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("42.0", &i));
}

TEST(MemoryTest, RssReadersReturnPlausibleValues) {
  const int64_t peak = PeakRssBytes();
  const int64_t cur = CurrentRssBytes();
  EXPECT_GT(peak, 0);  // falls back to VmRSS when VmHWM is unavailable
  EXPECT_GT(cur, 0);
  char buf[32];
  EXPECT_STREQ(FormatBytes(512, buf, sizeof(buf)), "512 B");
  FormatBytes(3 << 20, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf), "3.0 MB");
}

}  // namespace
}  // namespace skysr

// Tests for the concurrent QueryService subsystem: the bounded MPMC queue,
// the canonical-key LRU result cache, service metrics, multi-threaded
// determinism against the sequential engine, and a concurrency smoke test.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/bounded_queue.h"
#include "service/query_service.h"
#include "service/result_cache.h"
#include "service/service_metrics.h"
#include "tests/test_util.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"

namespace skysr {
namespace {

// ---------------------------------------------------------------- queue --

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsEmpty) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(7));
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_FALSE(q.TryPush(9));
  EXPECT_EQ(q.Pop(), 7);  // accepted work survives Close
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, BlockedProducersWakeOnClose) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&q, &rejected] {
      if (!q.Push(99)) rejected.fetch_add(1);
    });
  }
  q.Close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), 3);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);  // small capacity to exercise blocking
  std::atomic<int64_t> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kTotal) * (kTotal - 1) / 2);
}

// ---------------------------------------------------------------- cache --

TEST(ResultCacheTest, CanonicalKeyIsOrderInsensitive) {
  Query a;
  a.start = 5;
  CategoryPredicate pa;
  pa.any_of = {3, 1, 2};
  a.sequence.push_back(pa);

  Query b = a;
  b.sequence[0].any_of = {2, 3, 1};

  const QueryOptions opts;
  EXPECT_EQ(CanonicalQueryKey(a, opts), CanonicalQueryKey(b, opts));

  Query c = a;
  c.sequence[0].any_of = {1, 2};
  EXPECT_NE(CanonicalQueryKey(a, opts), CanonicalQueryKey(c, opts));
}

// Regression: semantically identical predicate spellings must canonicalize
// to one key. "+Food,Cafe" and "Cafe,+Food" parse to the same lists (term
// order is prefix-independent), and a repeated term matches exactly what a
// single occurrence matches — so reordering AND duplication must coalesce
// to one cache entry.
TEST(ResultCacheTest, KeyNormalizesEquivalentPredicateSpellings) {
  const QueryOptions opts;
  const CategoryId food = 7;
  const CategoryId cafe = 3;

  // "+Food,Cafe" vs "Cafe,+Food": same any_of/all_of split, different
  // arrival order of the lists' contents.
  Query a;
  a.start = 2;
  CategoryPredicate pa;
  pa.all_of = {food};
  pa.any_of = {cafe};
  a.sequence.push_back(pa);

  Query b;
  b.start = 2;
  CategoryPredicate pb;
  pb.any_of = {cafe};
  pb.all_of = {food};
  b.sequence.push_back(pb);
  EXPECT_EQ(CanonicalQueryKey(a, opts), CanonicalQueryKey(b, opts));

  // Duplicate terms: "Cafe,Cafe" == "Cafe", in any list.
  Query c = a;
  c.sequence[0].any_of = {cafe, cafe};
  EXPECT_EQ(CanonicalQueryKey(a, opts), CanonicalQueryKey(c, opts));

  Query d = a;
  d.sequence[0].all_of = {food, food};
  d.sequence[0].any_of = {cafe, cafe, cafe};
  EXPECT_EQ(CanonicalQueryKey(a, opts), CanonicalQueryKey(d, opts));

  // Unsorted + duplicated simultaneously.
  Query e;
  e.start = 2;
  CategoryPredicate pe;
  pe.any_of = {9, cafe, 9, 1};
  e.sequence.push_back(pe);
  Query f;
  f.start = 2;
  CategoryPredicate pf;
  pf.any_of = {1, 9, cafe};
  f.sequence.push_back(pf);
  EXPECT_EQ(CanonicalQueryKey(e, opts), CanonicalQueryKey(f, opts));

  // ...but a genuinely different predicate must not collide.
  Query g = a;
  g.sequence[0].any_of = {cafe, 1};
  EXPECT_NE(CanonicalQueryKey(a, opts), CanonicalQueryKey(g, opts));
}

TEST(ResultCacheTest, KeyDistinguishesStructure) {
  const QueryOptions opts;
  // {any_of: x, all_of: y} must not collide with {any_of: x, none_of: y}.
  Query a;
  a.start = 1;
  CategoryPredicate pa;
  pa.any_of = {4};
  pa.all_of = {9};
  a.sequence.push_back(pa);

  Query b;
  b.start = 1;
  CategoryPredicate pb;
  pb.any_of = {4};
  pb.none_of = {9};
  b.sequence.push_back(pb);
  EXPECT_NE(CanonicalQueryKey(a, opts), CanonicalQueryKey(b, opts));

  // One position {x, y} vs two positions {x}, {y}.
  Query c;
  c.start = 1;
  CategoryPredicate pc;
  pc.any_of = {4, 9};
  c.sequence.push_back(pc);

  Query d;
  d.start = 1;
  d.sequence.push_back(CategoryPredicate::Single(4));
  d.sequence.push_back(CategoryPredicate::Single(9));
  EXPECT_NE(CanonicalQueryKey(c, opts), CanonicalQueryKey(d, opts));
}

TEST(ResultCacheTest, UncacheableOptionsYieldEmptyKey) {
  Query q;
  q.start = 0;
  q.sequence.push_back(CategoryPredicate::Single(1));

  QueryOptions custom_sim;
  custom_sim.similarity = std::make_shared<PathLengthSimilarity>();
  EXPECT_TRUE(CanonicalQueryKey(q, custom_sim).empty());

  QueryOptions budgeted;
  budgeted.time_budget_seconds = 1.0;
  EXPECT_TRUE(CanonicalQueryKey(q, budgeted).empty());

  EXPECT_FALSE(CanonicalQueryKey(q, QueryOptions()).empty());
}

TEST(ResultCacheTest, LruEviction) {
  LruResultCache cache(2);
  auto mk = [](int64_t n) {
    auto r = std::make_shared<QueryResult>();
    r->stats.skyline_size = n;
    return r;
  };
  cache.Put("a", mk(1));
  cache.Put("b", mk(2));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh "a"; "b" is now LRU
  cache.Put("c", mk(3));               // evicts "b"
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  ASSERT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

// -------------------------------------------------------------- metrics --

TEST(ServiceMetricsTest, CountersAndPercentiles) {
  ServiceMetrics metrics;
  for (int i = 0; i < 98; ++i) {
    metrics.RecordCompleted(/*latency_ms=*/1.0, 10, 20, 1);
  }
  metrics.RecordCompleted(/*latency_ms=*/100.0, 10, 20, 1);
  metrics.RecordCompleted(/*latency_ms=*/100.0, 10, 20, 1);
  metrics.RecordCacheHit();
  metrics.RecordCacheHit();
  metrics.RecordCacheMiss();
  metrics.RecordError();
  metrics.RecordRejected();

  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.completed, 100);
  EXPECT_EQ(s.errors, 1);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.cache_hits, 2);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_NEAR(s.cache_hit_rate, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(s.vertices_settled, 1000);
  EXPECT_EQ(s.edges_relaxed, 2000);
  EXPECT_EQ(s.routes_found, 100);
  // p50 lands in the ~1ms bucket, p99 in the ~100ms bucket (log-bucketed,
  // so assert within a growth factor, not exactly).
  EXPECT_GT(s.latency_p50_ms, 0.7);
  EXPECT_LT(s.latency_p50_ms, 1.4);
  EXPECT_GT(s.latency_p99_ms, 70.0);
  EXPECT_LT(s.latency_p99_ms, 140.0);
  EXPECT_NEAR(s.latency_mean_ms, (98 * 1.0 + 2 * 100.0) / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.latency_max_ms, 100.0);

  metrics.Reset();
  const MetricsSnapshot zero = metrics.Snapshot();
  EXPECT_EQ(zero.completed, 0);
  EXPECT_EQ(zero.latency_max_ms, 0);
}

// -------------------------------------------------------------- service --

Dataset ServiceTestDataset() {
  DatasetSpec spec = CalLikeSpec(0.03);
  spec.seed = 11;
  Dataset ds = MakeDataset(spec);
  return ds;
}

std::vector<Query> ServiceTestQueries(const Dataset& ds, int count) {
  QueryGenParams qp;
  qp.count = count;
  qp.sequence_size = 3;
  qp.seed = 1234;
  return GenerateQueries(ds, qp);
}

// Routes must match the sequential engine bit-for-bit: same PoI sequences,
// same scores, same order. Determinism is a service guarantee, so this is
// exact equality, not the tolerance-based skyline comparison.
void ExpectExactlyEqual(const std::vector<Route>& a,
                        const std::vector<Route>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pois, b[i].pois) << "route " << i;
    EXPECT_EQ(a[i].scores.length, b[i].scores.length) << "route " << i;
    EXPECT_EQ(a[i].scores.semantic, b[i].scores.semantic) << "route " << i;
  }
}

TEST(QueryServiceTest, MultiThreadedBatchMatchesSequentialEngine) {
  const Dataset ds = ServiceTestDataset();
  const auto queries = ServiceTestQueries(ds, 32);

  BssrEngine engine(ds.graph, ds.forest);
  std::vector<std::vector<Route>> expected;
  for (const Query& q : queries) {
    auto r = engine.Run(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(r->routes);
  }

  for (const size_t cache_capacity : {size_t{0}, size_t{256}}) {
    ServiceConfig cfg;
    cfg.num_threads = 4;
    cfg.cache_capacity = cache_capacity;
    QueryService service(ds.graph, ds.forest, cfg);
    const auto results = service.RunBatch(queries);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      ExpectExactlyEqual(results[i]->routes, expected[i]);
    }
  }
}

TEST(QueryServiceTest, RepeatedBatchServedFromCacheIdentically) {
  const Dataset ds = ServiceTestDataset();
  const auto queries = ServiceTestQueries(ds, 16);

  ServiceConfig cfg;
  cfg.num_threads = 3;
  cfg.cache_capacity = 1024;
  QueryService service(ds.graph, ds.forest, cfg);

  const auto first = service.RunBatch(queries);
  const auto second = service.RunBatch(queries);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    ExpectExactlyEqual(first[i]->routes, second[i]->routes);
  }

  const MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.completed, 32);
  // Duplicate queries inside the batch can also hit, so at least one full
  // batch's worth of hits.
  EXPECT_GE(m.cache_hits, static_cast<int64_t>(queries.size()));
  EXPECT_GT(m.cache_hit_rate, 0.0);
  EXPECT_GT(m.qps, 0.0);
}

TEST(QueryServiceTest, ConcurrencySmokeManyClientsManyQueries) {
  const Dataset ds = ServiceTestDataset();
  const auto queries = ServiceTestQueries(ds, 48);

  ServiceConfig cfg;
  cfg.num_threads = 4;
  cfg.queue_capacity = 8;  // force client-side blocking under load
  cfg.cache_capacity = 64;
  QueryService service(ds.graph, ds.forest, cfg);

  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Result<QueryResult>>> futures;
      for (int i = 0; i < kPerClient; ++i) {
        futures.push_back(
            service.Submit(queries[(c * kPerClient + i) % queries.size()]));
      }
      for (auto& f : futures) {
        auto r = f.get();
        if (r.ok() && !r->routes.empty()) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok.load(), kClients * kPerClient);
  const MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.completed, kClients * kPerClient);
  EXPECT_EQ(m.errors, 0);
}

TEST(QueryServiceTest, InvalidQueryResolvesToErrorNotCrash) {
  const Dataset ds = ServiceTestDataset();
  ServiceConfig cfg;
  cfg.num_threads = 2;
  QueryService service(ds.graph, ds.forest, cfg);

  Query bad;  // no start, empty sequence
  auto r = service.Submit(bad).get();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(service.Metrics().errors, 1);
}

TEST(QueryServiceTest, SubmitAfterShutdownFailsFast) {
  const Dataset ds = ServiceTestDataset();
  const auto queries = ServiceTestQueries(ds, 1);
  ServiceConfig cfg;
  cfg.num_threads = 2;
  QueryService service(ds.graph, ds.forest, cfg);
  service.Shutdown();

  auto r = service.Submit(queries[0]).get();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(service.TrySubmit(queries[0]).has_value());
  EXPECT_EQ(service.Metrics().rejected, 2);
}

TEST(QueryServiceTest, WorkloadFileRoundTrip) {
  const Dataset ds = ServiceTestDataset();
  auto queries = ServiceTestQueries(ds, 10);
  queries[0].destination = queries[0].start;  // exercise the dest field

  const std::string path = ::testing::TempDir() + "/service_workload.txt";
  ASSERT_TRUE(WriteWorkloadFile(path, ds, queries).ok());
  auto loaded = LoadWorkloadFile(path, ds);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*loaded)[i].start, queries[i].start);
    EXPECT_EQ((*loaded)[i].destination, queries[i].destination);
    ASSERT_EQ((*loaded)[i].sequence.size(), queries[i].sequence.size());
    for (size_t j = 0; j < queries[i].sequence.size(); ++j) {
      EXPECT_EQ((*loaded)[i].sequence[j].any_of,
                queries[i].sequence[j].any_of);
    }
  }
}

}  // namespace
}  // namespace skysr

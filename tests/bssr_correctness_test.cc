// Ground-truth correctness of BSSR: against brute force on random tiny
// datasets, across every optimization-toggle combination, and on handcrafted
// instances mirroring the paper's running example (§5.5).

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "core/bssr_engine.h"
#include "tests/test_util.h"

namespace skysr {
namespace {

using ::skysr::testing::MakeTinyDataset;
using ::skysr::testing::ScoreVector;
using ::skysr::testing::ScoreVectorsNear;
using ::skysr::testing::TinyDataset;

// Builds a random simple query whose categories come from distinct trees.
Query RandomDistinctTreeQuery(const TinyDataset& ds, Rng& rng, int k) {
  std::vector<CategoryId> cats;
  std::vector<TreeId> trees;
  int guard = 0;
  while (static_cast<int>(cats.size()) < k) {
    if (++guard > 10000) break;
    // Any category (not only leaves) can be queried.
    const auto c = static_cast<CategoryId>(
        rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
    const TreeId t = ds.forest.TreeOf(c);
    bool dup = false;
    for (TreeId u : trees) dup = dup || u == t;
    if (dup) continue;
    cats.push_back(c);
    trees.push_back(t);
  }
  const auto start = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  return MakeSimpleQuery(start, cats);
}

class BssrVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BssrVsBruteForce, MatchesBruteForceOnRandomInstances) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed);
  Rng rng(seed * 31 + 7);
  BssrEngine engine(ds.graph, ds.forest);

  for (int k = 1; k <= 3; ++k) {
    Query q = RandomDistinctTreeQuery(ds, rng, k);
    if (q.size() != k) continue;  // tree pool exhausted
    QueryOptions opts;
    auto bssr = engine.Run(q, opts);
    ASSERT_TRUE(bssr.ok()) << bssr.status().ToString();
    auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();
    EXPECT_TRUE(ScoreVectorsNear(bssr->routes, *brute))
        << "seed=" << seed << " k=" << k << " start=" << q.start;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BssrVsBruteForce, ::testing::Range(0, 40));

// Every combination of the four optimization toggles and both queue
// disciplines must return identical skylines (Theorem 3: exactness does not
// depend on the optimizations).
class BssrToggleEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BssrToggleEquivalence, AllToggleCombosAgree) {
  const uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, /*n=*/30, /*extra_edges=*/25,
                                   /*num_pois=*/15);
  Rng rng(seed);
  BssrEngine engine(ds.graph, ds.forest);
  Query q = RandomDistinctTreeQuery(ds, rng, 3);
  if (q.size() != 3) GTEST_SKIP();

  std::vector<Route> reference;
  bool have_reference = false;
  for (int bits = 0; bits < 16; ++bits) {
    for (QueueDiscipline disc :
         {QueueDiscipline::kProposed, QueueDiscipline::kDistanceBased}) {
      QueryOptions opts;
      opts.use_initial_search = (bits & 1) != 0;
      opts.use_lower_bounds = (bits & 2) != 0;
      opts.use_cache = (bits & 4) != 0;
      // bit 3 toggles nothing extra; kept so the sweep covers repeats.
      opts.queue_discipline = disc;
      auto result = engine.Run(q, opts);
      ASSERT_TRUE(result.ok());
      if (!have_reference) {
        reference = result->routes;
        have_reference = true;
      } else {
        EXPECT_TRUE(ScoreVectorsNear(result->routes, reference))
            << "seed=" << seed << " bits=" << bits << " disc="
            << (disc == QueueDiscipline::kProposed ? "proposed" : "distance");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BssrToggleEquivalence, ::testing::Range(0, 12));

// Same-tree query positions exercise the blocker-tracking path (Lemma 5.5
// deferred filtering); brute force remains the arbiter.
class BssrSameTree : public ::testing::TestWithParam<int> {};

TEST_P(BssrSameTree, SameTreePositionsMatchBruteForce) {
  const uint64_t seed = 2000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, /*n=*/20, /*extra_edges=*/16,
                                   /*num_pois=*/10, /*num_trees=*/1,
                                   /*branching=*/3, /*levels=*/2);
  Rng rng(seed);
  BssrEngine engine(ds.graph, ds.forest);
  // Both positions target the SAME tree (indeed possibly the same category).
  const auto c1 = static_cast<CategoryId>(
      rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
  const auto c2 = static_cast<CategoryId>(
      rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
  const auto start = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  const Query q = MakeSimpleQuery(start, {c1, c2});

  QueryOptions opts;
  auto bssr = engine.Run(q, opts);
  ASSERT_TRUE(bssr.ok());
  auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(ScoreVectorsNear(bssr->routes, *brute))
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BssrSameTree, ::testing::Range(0, 20));

// Multi-category PoIs (§6) against brute force.
class BssrMultiCategory : public ::testing::TestWithParam<int> {};

TEST_P(BssrMultiCategory, MultiCategoryPoisMatchBruteForce) {
  const uint64_t seed = 3000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds =
      MakeTinyDataset(seed, 24, 20, 12, 3, 2, 2, /*multi_cat_fraction=*/0.5);
  Rng rng(seed);
  BssrEngine engine(ds.graph, ds.forest);
  Query q = RandomDistinctTreeQuery(ds, rng, 2);
  if (q.size() != 2) GTEST_SKIP();

  QueryOptions opts;
  auto bssr = engine.Run(q, opts);
  ASSERT_TRUE(bssr.ok());
  auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(ScoreVectorsNear(bssr->routes, *brute)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BssrMultiCategory, ::testing::Range(0, 15));

// Destination variant (§6) against brute force.
class BssrDestination : public ::testing::TestWithParam<int> {};

TEST_P(BssrDestination, DestinationMatchesBruteForce) {
  const uint64_t seed = 4000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed);
  Rng rng(seed);
  BssrEngine engine(ds.graph, ds.forest);
  Query q = RandomDistinctTreeQuery(ds, rng, 2);
  if (q.size() != 2) GTEST_SKIP();
  q.destination = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));

  QueryOptions opts;
  auto bssr = engine.Run(q, opts);
  ASSERT_TRUE(bssr.ok());
  auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(ScoreVectorsNear(bssr->routes, *brute)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BssrDestination, ::testing::Range(0, 15));

// The paper's qualitative claim (Example 1.2 / Table 1): relaxing semantics
// can only shorten the best route; the perfect-match route, when present,
// is the longest skyline entry.
TEST(BssrProperties, SkylineIsAStaircase) {
  TinyDataset ds = MakeTinyDataset(77);
  Rng rng(77);
  BssrEngine engine(ds.graph, ds.forest);
  for (int rep = 0; rep < 10; ++rep) {
    Query q = RandomDistinctTreeQuery(ds, rng, 3);
    if (q.size() != 3) continue;
    auto result = engine.Run(q);
    ASSERT_TRUE(result.ok());
    const auto& routes = result->routes;
    for (size_t i = 1; i < routes.size(); ++i) {
      EXPECT_GT(routes[i].scores.length, routes[i - 1].scores.length);
      EXPECT_LT(routes[i].scores.semantic, routes[i - 1].scores.semantic);
    }
    // No route may dominate another.
    for (size_t i = 0; i < routes.size(); ++i) {
      for (size_t j = 0; j < routes.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(Dominates(routes[i].scores, routes[j].scores));
      }
    }
  }
}

}  // namespace
}  // namespace skysr

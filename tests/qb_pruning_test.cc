// Q_b queue ordering and per-prefix dominance pruning
// (core/query_workspace.h, core/qb_dominance.h).
//
// The bucketed proposed-discipline queue claims the IDENTICAL total order as
// a flat comparator-based queue over QbLess — including the signed-zero and
// equal-key edge cases the raw-bit SlimLess compare is sensitive to — so the
// headline test drives randomized interleaved push/pop traffic against a
// std::set reference model ordered by QbLess itself. The dominance-store
// tests pin the insert / dominate-or-equal / strict-dequeue / epoch-clear
// semantics on hand-built arena routes (same-set permutations need size-3
// routes: two orders of the prefix plus the pinned last PoI).

#include <cmath>
#include <iterator>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/qb_dominance.h"
#include "core/query_workspace.h"
#include "core/route.h"
#include "util/rng.h"

namespace skysr {
namespace {

// ---------------------------------------------------------------------------
// QbQueue: bucketed vs flat pop-order equivalence.

// Reference model: QbLess is a total order once node ids are distinct, so a
// std::set ordered by it pops (begin, erase) in exactly the sequence the
// queue must reproduce.
using QbModel = std::set<QbEntry, QbLess>;

// Keys drawn from a small pool force deep ties (equal semantic AND length,
// distinguished only by node id) and include both zeros: -0.0 == 0.0 under
// QbLess, so the bucketed queue's bit-pattern heaps must not let the sign
// bit reorder it.
double PickKey(Rng& rng) {
  static constexpr double kPool[] = {0.0,  -0.0, 0.125, 0.125, 0.5,
                                     0.75, 1.0,  1.5,   2.0};
  return kPool[rng.UniformU64(std::size(kPool))];
}

TEST(QbQueueTest, BucketedMatchesFlatReferenceOrder) {
  Rng rng(0x9b0);
  for (int round = 0; round < 50; ++round) {
    const int k = static_cast<int>(rng.UniformInt(2, 6));
    QbQueue queue;
    queue.Reset(QueueDiscipline::kProposed, k);
    QbModel model{QbLess{QueueDiscipline::kProposed}};
    int32_t next_node = 0;

    const auto pop_and_compare = [&]() {
      ASSERT_FALSE(model.empty());
      const QbEntry want = *model.begin();
      model.erase(model.begin());
      const QbEntry got = queue.pop();
      // Node identity is the real order check (every entry is unique); the
      // key comparisons use ==, under which the queue's normalized +0.0
      // matches a -0.0 pushed by the caller.
      ASSERT_EQ(got.node, want.node);
      ASSERT_EQ(got.size, want.size);
      ASSERT_EQ(got.semantic, want.semantic);
      ASSERT_EQ(got.length, want.length);
    };

    for (int op = 0; op < 400; ++op) {
      if (model.empty() || rng.Bernoulli(0.6)) {
        const QbEntry e{next_node++,
                        static_cast<int32_t>(rng.UniformInt(1, k - 1)),
                        PickKey(rng), PickKey(rng)};
        queue.push(e);
        model.insert(e);
      } else {
        pop_and_compare();
      }
    }
    while (!model.empty()) pop_and_compare();
    EXPECT_TRUE(queue.empty());
  }
}

// The -0.0 divergence pinned directly: without push-side normalization the
// raw sign bit would sort a -0.0 semantic as the LARGEST uint64, popping it
// after every positive value instead of first.
TEST(QbQueueTest, NegativeZeroSortsAsZero) {
  QbQueue queue;
  queue.Reset(QueueDiscipline::kProposed, 2);
  queue.push(QbEntry{/*node=*/1, /*size=*/1, /*semantic=*/0.25,
                     /*length=*/1.0});
  queue.push(QbEntry{/*node=*/2, /*size=*/1, /*semantic=*/-0.0,
                     /*length=*/1.0});
  queue.push(QbEntry{/*node=*/3, /*size=*/1, /*semantic=*/0.0,
                     /*length=*/-0.0});
  // Semantic ascending with -0.0 == 0.0: nodes 2 and 3 tie on semantic and
  // fall through to length, where node 3's -0.0 sorts before node 2's 1.0.
  EXPECT_EQ(queue.pop().node, 3);
  EXPECT_EQ(queue.pop().node, 2);
  EXPECT_EQ(queue.pop().node, 1);
  EXPECT_TRUE(queue.empty());
}

// Draining the top bucket must lower the scan bound eagerly and the
// downward scan must stop at bucket 0 — interleave pushes at small sizes
// with pops that empty the large buckets.
TEST(QbQueueTest, DrainAndRefillAcrossSizes) {
  QbQueue queue;
  queue.Reset(QueueDiscipline::kProposed, 5);
  queue.push(QbEntry{1, 4, 0.5, 1.0});
  queue.push(QbEntry{2, 1, 0.5, 1.0});
  EXPECT_EQ(queue.pop().node, 1);  // size-4 bucket drained
  queue.push(QbEntry{3, 2, 0.5, 1.0});
  EXPECT_EQ(queue.pop().node, 3);  // bound re-raised by the push
  EXPECT_EQ(queue.pop().node, 2);
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------------------------------------
// QbDominanceStore.

struct SameSetRoutes {
  RouteArena arena;
  // Two permutations of the set {a=1, b=2} followed by the pinned last PoI
  // p=3 at vertex 30: same (vertex, size, set), different prefix order.
  int32_t abp = RouteArena::kEmpty;  // [a, b, p]
  int32_t ab = RouteArena::kEmpty;   // its parent [a, b]
  int32_t ba = RouteArena::kEmpty;   // [b, a]
  // A different set {a, c=4} + p, same end vertex and size.
  int32_t ac = RouteArena::kEmpty;

  SameSetRoutes() {
    const int32_t a = arena.Add(RouteArena::kEmpty, /*poi=*/1, /*vertex=*/10,
                                /*length=*/1.0, /*acc=*/0.9);
    ab = arena.Add(a, /*poi=*/2, /*vertex=*/20, 2.0, 0.8);
    abp = arena.Add(ab, /*poi=*/3, /*vertex=*/30, 3.0, 0.7);
    const int32_t b = arena.Add(RouteArena::kEmpty, 2, 20, 1.5, 0.85);
    ba = arena.Add(b, 1, 10, 2.5, 0.75);
    ac = arena.Add(a, /*poi=*/4, /*vertex=*/40, 2.0, 0.8);
  }

  const RouteArena::Node& Node(int32_t idx) const { return arena.node(idx); }
};

TEST(QbDominanceStoreTest, DominateOrEqualAtEnqueueSameSetOnly) {
  SameSetRoutes r;
  QbDominanceStore store;
  store.Clear();
  const RouteArena::Node& rec = r.Node(r.abp);
  store.Insert(r.arena, r.abp, rec.vertex, rec.size, rec.set_hash,
               rec.poi_mask, rec.parent, rec.poi, rec.length, rec.acc);

  // Candidate [b, a] + p: same set/vertex/size. Strictly worse, equal, and
  // strictly better scores than the record (length 3.0, acc 0.7).
  const RouteArena::Node& ba = r.Node(r.ba);
  const auto dominated = [&](Weight len, double acc) {
    return store.IsDominated(r.arena, rec.vertex, rec.size, rec.set_hash,
                             rec.poi_mask, r.ba, /*poi=*/3, len, acc);
  };
  ASSERT_EQ(ba.poi_mask | RouteArena::PoiBit(3), rec.poi_mask);
  ASSERT_EQ(ba.set_hash ^ RouteArena::PoiSetHash(3), rec.set_hash);
  EXPECT_TRUE(dominated(/*len=*/3.5, /*acc=*/0.6));   // worse in both
  EXPECT_TRUE(dominated(/*len=*/3.0, /*acc=*/0.7));   // equal
  EXPECT_FALSE(dominated(/*len=*/2.5, /*acc=*/0.7));  // shorter
  EXPECT_FALSE(dominated(/*len=*/3.0, /*acc=*/0.8));  // semantically better

  // Candidate [a, c] + p at the record's vertex: different PoI set, so even
  // strictly-worse scores must never be pruned (its completions may use b).
  const RouteArena::Node& ac = r.Node(r.ac);
  EXPECT_FALSE(store.IsDominated(
      r.arena, rec.vertex, rec.size, ac.set_hash ^ RouteArena::PoiSetHash(3),
      ac.poi_mask | RouteArena::PoiBit(3), r.ac, /*poi=*/3, /*length=*/9.0,
      /*acc=*/0.1));
}

TEST(QbDominanceStoreTest, DequeuePruneIsStrictAndSkipsSelf) {
  SameSetRoutes r;
  QbDominanceStore store;
  store.Clear();
  const RouteArena::Node& rec = r.Node(r.abp);
  store.Insert(r.arena, r.abp, rec.vertex, rec.size, rec.set_hash,
               rec.poi_mask, rec.parent, rec.poi, rec.length, rec.acc);

  // Its own record never prunes the route.
  EXPECT_FALSE(store.DominatedAtDequeue(r.arena, r.abp));

  // An equal-score permutation [b, a, p] must survive dequeue (strictness —
  // equal routes must not prune each other cyclically)...
  const int32_t bap_equal =
      r.arena.Add(r.ba, /*poi=*/3, /*vertex=*/30, rec.length, rec.acc);
  EXPECT_FALSE(store.DominatedAtDequeue(r.arena, bap_equal));
  // ...but a strictly longer one is dominated.
  const int32_t bap_worse =
      r.arena.Add(r.ba, /*poi=*/3, /*vertex=*/30, rec.length + 1.0, rec.acc);
  EXPECT_TRUE(store.DominatedAtDequeue(r.arena, bap_worse));

  // Insert strengthens in place: the equal-score permutation replaces the
  // record (same set, dominates-or-equal), after which the ORIGINAL route is
  // still not pruned — the recorded scores are equal, not strictly better.
  const RouteArena::Node& eq = r.arena.node(bap_equal);
  store.Insert(r.arena, bap_equal, eq.vertex, eq.size, eq.set_hash,
               eq.poi_mask, eq.parent, eq.poi, eq.length, eq.acc);
  EXPECT_FALSE(store.DominatedAtDequeue(r.arena, r.abp));
  EXPECT_FALSE(store.DominatedAtDequeue(r.arena, bap_equal));
  EXPECT_TRUE(store.DominatedAtDequeue(r.arena, bap_worse));
}

TEST(QbDominanceStoreTest, ClearDropsRecordsInConstantTime) {
  SameSetRoutes r;
  QbDominanceStore store;
  store.Clear();
  const RouteArena::Node& rec = r.Node(r.abp);
  store.Insert(r.arena, r.abp, rec.vertex, rec.size, rec.set_hash,
               rec.poi_mask, rec.parent, rec.poi, rec.length, rec.acc);
  ASSERT_TRUE(store.IsDominated(r.arena, rec.vertex, rec.size, rec.set_hash,
                                rec.poi_mask, r.ba, /*poi=*/3,
                                /*length=*/9.0, /*acc=*/0.1));
  // Epoch-stamp clear: the next query's lookups see an empty store even
  // though the backing pool keeps its capacity.
  store.Clear();
  EXPECT_FALSE(store.IsDominated(r.arena, rec.vertex, rec.size, rec.set_hash,
                                 rec.poi_mask, r.ba, /*poi=*/3,
                                 /*length=*/9.0, /*acc=*/0.1));
  EXPECT_FALSE(store.DominatedAtDequeue(r.arena, r.abp));
  // And re-inserting after the clear works from scratch.
  store.Insert(r.arena, r.abp, rec.vertex, rec.size, rec.set_hash,
               rec.poi_mask, rec.parent, rec.poi, rec.length, rec.acc);
  EXPECT_TRUE(store.IsDominated(r.arena, rec.vertex, rec.size, rec.set_hash,
                                rec.poi_mask, r.ba, /*poi=*/3,
                                /*length=*/9.0, /*acc=*/0.1));
}

TEST(QbDominanceStoreTest, FullKeySkipsInsertButNeverMisprunes) {
  // kRecsPerKey incomparable records fill the key; one more incomparable
  // route is silently NOT recorded (pruning is a license, not an
  // obligation) and must then not be pruned at dequeue.
  SameSetRoutes r;
  QbDominanceStore store;
  store.Clear();
  std::vector<int32_t> nodes;
  for (uint32_t i = 0; i < QbDominanceStore::kRecsPerKey + 1; ++i) {
    // Strictly increasing length with strictly increasing acc: pairwise
    // incomparable, so every Insert appends rather than strengthens.
    const int32_t n = r.arena.Add(r.ab, /*poi=*/3, /*vertex=*/30,
                                  3.0 + static_cast<double>(i),
                                  0.5 + 0.05 * static_cast<double>(i));
    nodes.push_back(n);
    const RouteArena::Node& nd = r.arena.node(n);
    store.Insert(r.arena, n, nd.vertex, nd.size, nd.set_hash, nd.poi_mask,
                 nd.parent, nd.poi, nd.length, nd.acc);
  }
  for (const int32_t n : nodes) {
    EXPECT_FALSE(store.DominatedAtDequeue(r.arena, n));
  }
  // A route strictly worse than a recorded one still gets pruned.
  const int32_t worse = r.arena.Add(r.ab, /*poi=*/3, /*vertex=*/30,
                                    /*length=*/10.0, /*acc=*/0.4);
  EXPECT_TRUE(store.DominatedAtDequeue(r.arena, worse));
}

}  // namespace
}  // namespace skysr

// Tests for per-query decision attribution (obs/explain.h) and its serving
// integrations: explain-off bit-identity, the pruning-share invariant
// (threshold + floor == cand_pruned), JSON round-trip through mini_json,
// RunGroup role stamping, OpenMetrics latency exemplars, the batched-path
// trace flow events, endpoint routing (404 + extra routes), and the /debug
// dashboard renderer.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bssr_engine.h"
#include "obs/explain.h"
#include "obs/mini_json.h"
#include "obs/query_trace.h"
#include "obs/trace_export.h"
#include "service/batch_scheduler.h"
#include "service/debug_page.h"
#include "service/metrics_endpoint.h"
#include "service/query_service.h"
#include "service/result_cache.h"
#include "service/service_metrics.h"
#include "tests/test_util.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"

namespace skysr {
namespace {

Query TinyQuery(const testing::TinyDataset& tiny) {
  Query q;
  q.start = 0;
  q.sequence.push_back(
      CategoryPredicate::Single(tiny.graph.PoiPrimaryCategory(0)));
  q.sequence.push_back(
      CategoryPredicate::Single(tiny.graph.PoiPrimaryCategory(1)));
  return q;
}

// ------------------------------------------------------------ engine side --

TEST(ExplainTest, OffByDefaultAndObservationOnly) {
  const testing::TinyDataset tiny = testing::MakeTinyDataset(7);
  const Query q = TinyQuery(tiny);

  BssrEngine plain(tiny.graph, tiny.forest);
  auto base = plain.Run(q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base->explain, nullptr);

  QueryOptions opts;
  opts.explain = true;
  BssrEngine explained(tiny.graph, tiny.forest);
  auto result = explained.Run(q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->explain, nullptr);

  // Attribution observes the search; it must not change it.
  ASSERT_EQ(result->routes.size(), base->routes.size());
  for (size_t i = 0; i < result->routes.size(); ++i) {
    EXPECT_EQ(result->routes[i].pois, base->routes[i].pois);
  }
  EXPECT_EQ(result->stats.vertices_settled, base->stats.vertices_settled);
  EXPECT_EQ(result->stats.edges_relaxed, base->stats.edges_relaxed);
  EXPECT_EQ(result->stats.cand_pruned, base->stats.cand_pruned);
}

TEST(ExplainTest, PruningSharesSumToCandPruned) {
  const testing::TinyDataset tiny =
      testing::MakeTinyDataset(11, /*n=*/32, /*extra_edges=*/24,
                               /*num_pois=*/16);
  Dataset ds;
  ds.name = "explain-test";
  ds.graph = tiny.graph;
  ds.forest = tiny.forest;
  QueryGenParams qp;
  qp.count = 8;
  qp.sequence_size = 3;
  qp.seed = 5;
  const auto queries = GenerateQueries(ds, qp);

  QueryOptions opts;
  opts.explain = true;
  BssrEngine engine(ds.graph, ds.forest);
  for (const Query& q : queries) {
    auto r = engine.Run(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_NE(r->explain, nullptr);
    const QueryExplain& e = *r->explain;
    // The acceptance invariant: the printed per-pruner shares sum exactly
    // to cand_pruned, for every query.
    EXPECT_EQ(e.pruned_threshold + e.pruned_floor, e.cand_pruned);
    EXPECT_EQ(e.cand_pruned, r->stats.cand_pruned);
    EXPECT_EQ(e.pruned_threshold, r->stats.cand_pruned_threshold);
    EXPECT_EQ(e.pruned_floor, r->stats.cand_pruned_floor);
    EXPECT_EQ(e.pruned_qb_dominance, r->stats.qb_dominance_pruned);
    EXPECT_EQ(e.simd_floor_skips, r->stats.cand_simd_skipped);
    // One backend entry per sequence position, and the expansions that ran
    // are attributed somewhere.
    ASSERT_EQ(e.positions.size(), q.sequence.size());
    int64_t attributed = 0;
    for (const ExplainPositionBackends& p : e.positions) {
      attributed += p.cache_replays + p.settle_log_replays + p.bucket_runs +
                    p.resume_runs + p.fresh_searches;
    }
    EXPECT_GT(attributed, 0);
  }
}

TEST(ExplainTest, JsonRoundTripsThroughMiniJson) {
  const testing::TinyDataset tiny = testing::MakeTinyDataset(7);
  QueryOptions opts;
  opts.explain = true;
  BssrEngine engine(tiny.graph, tiny.forest);
  auto r = engine.Run(TinyQuery(tiny), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->explain, nullptr);

  const std::string json = r->explain->ToJson();
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->StringOr("oracle", ""), "none");
  const JsonValue* pruning = parsed->Find("pruning");
  ASSERT_NE(pruning, nullptr);
  const JsonValue* cand = pruning->Find("cand_pruned");
  ASSERT_NE(cand, nullptr);
  EXPECT_EQ(static_cast<int64_t>(cand->number), r->stats.cand_pruned);
  const JsonValue* th = pruning->Find("threshold");
  const JsonValue* fl = pruning->Find("prune_floor");
  ASSERT_NE(th, nullptr);
  ASSERT_NE(fl, nullptr);
  EXPECT_EQ(static_cast<int64_t>(th->number + fl->number),
            r->stats.cand_pruned);
  const JsonValue* caches = parsed->Find("caches");
  ASSERT_NE(caches, nullptr);
  EXPECT_NE(caches->Find("fwd_search"), nullptr);
  EXPECT_NE(caches->Find("dest_tail"), nullptr);
  EXPECT_NE(caches->Find("result_cache"), nullptr);
  EXPECT_NE(caches->Find("resume_slots"), nullptr);
  const JsonValue* positions = parsed->Find("positions");
  ASSERT_NE(positions, nullptr);
  ASSERT_TRUE(positions->is_array());
  EXPECT_EQ(positions->array.size(), r->explain->positions.size());
  const JsonValue* batch = parsed->Find("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->StringOr("role", ""), "unbatched");
}

TEST(ExplainTest, TreeStringShowsPlanCachesAndPruningShares) {
  const testing::TinyDataset tiny = testing::MakeTinyDataset(7);
  QueryOptions opts;
  opts.explain = true;
  BssrEngine engine(tiny.graph, tiny.forest);
  auto r = engine.Run(TinyQuery(tiny), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->explain, nullptr);
  const std::string tree = r->explain->ToTreeString();
  EXPECT_NE(tree.find("plan"), std::string::npos);
  EXPECT_NE(tree.find("caches"), std::string::npos);
  EXPECT_NE(tree.find("pruning"), std::string::npos);
  EXPECT_NE(tree.find("cand_pruned="), std::string::npos);
  EXPECT_NE(tree.find("unbatched"), std::string::npos);
}

TEST(ExplainTest, RunGroupStampsLeaderRoleAndStaysBitIdentical) {
  const testing::TinyDataset tiny =
      testing::MakeTinyDataset(11, /*n=*/32, /*extra_edges=*/24,
                               /*num_pois=*/16);
  Dataset ds;
  ds.name = "explain-group";
  ds.graph = tiny.graph;
  ds.forest = tiny.forest;
  QueryGenParams qp;
  qp.count = 4;
  qp.sequence_size = 2;
  qp.seed = 9;
  const auto queries = GenerateQueries(ds, qp);

  QueryOptions plain_opts;
  QueryOptions explain_opts;
  explain_opts.explain = true;

  BssrEngine reference(ds.graph, ds.forest);
  std::vector<BssrEngine::GroupQuery> plain_group;
  for (const Query& q : queries) plain_group.push_back({&q, &plain_opts});
  const auto expected = reference.RunGroup(plain_group);

  BssrEngine engine(ds.graph, ds.forest);
  std::vector<BssrEngine::GroupQuery> group;
  for (const Query& q : queries) group.push_back({&q, &explain_opts});
  const auto results = engine.RunGroup(group);

  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    ASSERT_TRUE(expected[i].ok());
    ASSERT_EQ(results[i]->routes.size(), expected[i]->routes.size());
    for (size_t j = 0; j < results[i]->routes.size(); ++j) {
      EXPECT_EQ(results[i]->routes[j].pois, expected[i]->routes[j].pois);
    }
    ASSERT_NE(results[i]->explain, nullptr);
    EXPECT_EQ(results[i]->explain->role, "leader");
    EXPECT_EQ(results[i]->explain->group_size,
              static_cast<int64_t>(queries.size()));
  }
}

// -------------------------------------------------------------- exemplars --

TEST(ExemplarTest, LatencyBucketCarriesLastExemplar) {
  ServiceMetrics m;
  m.RecordCompleted(/*latency_ms=*/1.5, 10, 20, 1, /*exemplar_id=*/7);
  const std::string text = m.ToPrometheus();
  // OpenMetrics exemplar syntax on the latency bucket the observation
  // landed in, keyed by the service query id.
  EXPECT_NE(text.find(" # {trace_id=\"q7\"} 1.5\n"), std::string::npos)
      << text;
  // The queue-wait histogram never carries exemplars.
  const size_t queue_wait = text.find("skysr_queue_wait_ms_bucket");
  ASSERT_NE(queue_wait, std::string::npos);
  EXPECT_EQ(text.find("trace_id", queue_wait), std::string::npos);
}

TEST(ExemplarTest, NoExemplarKeepsPlainExpositionBytes) {
  ServiceMetrics with_id;
  with_id.RecordCompleted(2.0, 0, 0, 1);  // default exemplar_id = 0
  const std::string text = with_id.ToPrometheus();
  EXPECT_EQ(text.find("trace_id"), std::string::npos);
}

TEST(ExemplarTest, LastWriterWinsPerBucket) {
  ServiceMetrics m;
  m.RecordCompleted(1.5, 0, 0, 1, /*exemplar_id=*/3);
  m.RecordCompleted(1.5, 0, 0, 1, /*exemplar_id=*/9);
  const std::string text = m.ToPrometheus();
  EXPECT_NE(text.find("trace_id=\"q9\""), std::string::npos);
  EXPECT_EQ(text.find("trace_id=\"q3\""), std::string::npos);
}

// ------------------------------------------------------- batched tracing --

TEST(BatchedTraceTest, CoalescedFollowersGetFlowLinkedEvents) {
  const testing::TinyDataset tiny = testing::MakeTinyDataset(7);
  Query dup = TinyQuery(tiny);
  Query other = TinyQuery(tiny);
  other.start = 1;  // different canonical source -> its own group

  QueryOptions opts;
  BoundedQueue<ServingTask> queue(16);
  ServiceMetrics metrics;
  BatchScheduler scheduler(&queue, /*max_batch=*/8, /*batch_window_us=*/0,
                           &metrics);
  QueryTrace trace(256);
  trace.set_enabled(true);

  std::vector<std::future<Result<QueryResult>>> follower_futures;
  const auto push = [&](const Query& q) {
    ServingTask task;
    task.query = q;
    task.options = opts;
    follower_futures.push_back(task.promise.get_future());
    ASSERT_TRUE(queue.Push(std::move(task)));
  };
  push(dup);
  push(dup);
  push(dup);
  push(other);

  // One drain forms the groups: 2 identical followers coalesce onto the
  // first flight, leaving two single-task groups (distinct sources).
  BatchScheduler::Group g1;
  ASSERT_TRUE(scheduler.NextGroup(&g1, &trace));
  BatchScheduler::Group g2;
  ASSERT_TRUE(scheduler.NextGroup(&g2, &trace));
  EXPECT_EQ(g1.tasks.size() + g2.tasks.size(), 2u);
  EXPECT_EQ(g1.batch_id, g2.batch_id);
  EXPECT_GE(g1.batch_id, 0);
  EXPECT_EQ(metrics.Snapshot().coalesced_queries, 2);

  // The drain leader recorded the drain span plus one flow-start
  // queue-wait per coalesced follower.
  int batch_drains = 0, queue_waits = 0, fanouts = 0;
  std::vector<uint64_t> start_ids, finish_ids;
  const auto recount = [&] {
    batch_drains = queue_waits = fanouts = 0;
    start_ids.clear();
    finish_ids.clear();
    trace.ForEachEvent([&](const TraceEvent& e) {
      if (e.phase == TracePhase::kBatchDrain) ++batch_drains;
      if (e.phase == TracePhase::kQueueWait) {
        ++queue_waits;
        EXPECT_EQ(e.flow, TraceEvent::kFlowStart);
        EXPECT_NE(e.flow_id, 0u);
        start_ids.push_back(e.flow_id);
      }
      if (e.phase == TracePhase::kCoalesceFanout) {
        ++fanouts;
        EXPECT_EQ(e.flow, TraceEvent::kFlowFinish);
        finish_ids.push_back(e.flow_id);
      }
    });
  };
  recount();
  EXPECT_EQ(batch_drains, 1);
  EXPECT_EQ(queue_waits, 2);
  EXPECT_EQ(fanouts, 0);

  // Completing the duplicated flight fans out to both followers with
  // flow-finish events under the formation-time ids.
  const std::string dup_key = CanonicalQueryKey(dup, opts);
  ASSERT_FALSE(dup_key.empty());
  QueryResult answer;
  answer.explain = std::make_shared<QueryExplain>();
  answer.explain->role = "leader";
  scheduler.CompleteFlight(dup_key, Result<QueryResult>(std::move(answer)),
                           &trace);
  const std::string other_key = CanonicalQueryKey(other, opts);
  scheduler.CompleteFlight(other_key, Result<QueryResult>(QueryResult()),
                           &trace);
  recount();
  EXPECT_EQ(fanouts, 2);
  ASSERT_EQ(start_ids.size(), finish_ids.size());
  EXPECT_EQ(start_ids, finish_ids);

  // Followers received deep-copied explains re-marked as coalesced.
  int followers_answered = 0;
  for (auto& f : follower_futures) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      continue;
    }
    Result<QueryResult> r = f.get();
    ASSERT_TRUE(r.ok());
    if (r->explain != nullptr) {
      EXPECT_EQ(r->explain->role, "coalesced");
      ++followers_answered;
    }
  }
  EXPECT_EQ(followers_answered, 2);

  // The Chrome export draws the links: one "s" and one "f" flow event per
  // coalesced follower.
  const std::string json = TraceToChromeJson(trace, "worker-0");
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  int flow_starts = 0, flow_finishes = 0;
  for (const JsonValue& e : parsed->Find("traceEvents")->array) {
    const std::string ph(e.StringOr("ph", ""));
    if (ph == "s") ++flow_starts;
    if (ph == "f") ++flow_finishes;
  }
  EXPECT_EQ(flow_starts, 2);
  EXPECT_EQ(flow_finishes, 2);

  queue.Close();
  BatchScheduler::Group rest;
  while (scheduler.NextGroup(&rest)) {
    for (size_t i = 0; i < rest.tasks.size(); ++i) {
      scheduler.CompleteFlight(rest.keys[i], Result<QueryResult>(QueryResult()));
      rest.tasks[i].promise.set_value(Result<QueryResult>(QueryResult()));
    }
  }
}

// Every submitted query must be visible in the batched service's metrics
// and results: completed + coalesced == submitted, and every result that
// executed carries batch-context attribution.
TEST(BatchedTraceTest, BatchedServiceAccountsForEverySubmission) {
  const testing::TinyDataset tiny =
      testing::MakeTinyDataset(11, /*n=*/32, /*extra_edges=*/24,
                               /*num_pois=*/16);
  Dataset ds;
  ds.name = "batched-explain";
  ds.graph = tiny.graph;
  ds.forest = tiny.forest;
  QueryGenParams qp;
  qp.count = 12;
  qp.sequence_size = 2;
  qp.seed = 3;
  auto queries = GenerateQueries(ds, qp);
  // Duplicate sources so groups actually form.
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].start = queries[i % 3].start;
  }

  ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.max_batch = 4;
  cfg.enable_tracing = true;
  cfg.cache_capacity = 0;  // keep every execution on the engine path
  cfg.default_options.explain = true;
  QueryService service(ds.graph, ds.forest, cfg);
  const auto results = service.RunBatch(queries);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    ASSERT_NE(r->explain, nullptr);
    EXPECT_GE(r->explain->batch_id, 0);
    EXPECT_TRUE(r->explain->role == "leader" ||
                r->explain->role == "coalesced")
        << r->explain->role;
  }
  const MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.completed + m.coalesced_queries,
            static_cast<int64_t>(queries.size()));
  service.Shutdown();
  const std::string traces = service.WorkerTracesToJson();
  EXPECT_NE(traces.find("\"group_execute\""), std::string::npos);
  EXPECT_NE(traces.find("\"batch_drain\""), std::string::npos);
}

TEST(ServiceExplainTest, ResultCacheHitSynthesizesAttribution) {
  const testing::TinyDataset tiny = testing::MakeTinyDataset(7);
  ServiceConfig cfg;
  cfg.num_threads = 1;
  cfg.cache_capacity = 16;
  cfg.default_options.explain = true;
  QueryService service(tiny.graph, tiny.forest, cfg);

  const Query q = TinyQuery(tiny);
  auto first = service.Submit(q).get();
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->explain, nullptr);
  EXPECT_EQ(first->explain->result_cache.misses, 1);
  EXPECT_EQ(first->explain->result_cache.hits, 0);

  auto second = service.Submit(q).get();
  ASSERT_TRUE(second.ok());
  ASSERT_NE(second->explain, nullptr);
  EXPECT_EQ(second->explain->result_cache.hits, 1);
  // The cached copy was stripped: the hit's attribution is synthesized,
  // not the first execution's record replayed.
  EXPECT_EQ(second->explain->result_cache.misses, 0);
  EXPECT_EQ(second->explain->positions.size(), 0u);
}

// ---------------------------------------------------------- endpoint + UI --

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsEndpointRoutingTest, RoutesKnownPathsAnd404sUnknown) {
  MetricsEndpoint ep(0, [] { return std::string("skysr_up 1\n"); });
  ep.AddRoute("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ep.AddRoute("/debug", "text/html",
              [] { return std::string("<html>debug</html>"); });
  ASSERT_TRUE(ep.Start().ok());

  const std::string metrics = HttpGet(ep.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("skysr_up 1\n"), std::string::npos);

  // The legacy root route still answers with the exposition.
  EXPECT_NE(HttpGet(ep.port(), "/").find("skysr_up 1\n"), std::string::npos);

  const std::string health = HttpGet(ep.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string debug = HttpGet(ep.port(), "/debug?refresh=1");
  EXPECT_NE(debug.find("200 OK"), std::string::npos);
  EXPECT_NE(debug.find("text/html"), std::string::npos);
  EXPECT_NE(debug.find("<html>debug</html>"), std::string::npos);

  const std::string missing = HttpGet(ep.port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
  EXPECT_NE(missing.find("Content-Length:"), std::string::npos);
  EXPECT_NE(missing.find("404 not found: /nope\n"), std::string::npos);
  ep.Stop();
}

TEST(DebugPageTest, HistoryComputesIntervalQpsAndPageRenders) {
  MetricsHistory history(8);
  MetricsSnapshot s;
  s.completed = 100;
  s.uptime_seconds = 10;
  s.qps = 10;
  s.latency_p50_ms = 1.0;
  s.latency_p99_ms = 5.0;
  history.Sample(s);
  s.completed = 160;
  s.uptime_seconds = 12;
  history.Sample(s);

  const auto pts = history.Points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].qps, 10.0);   // first sample: lifetime average
  EXPECT_DOUBLE_EQ(pts[1].qps, 30.0);   // 60 completions over 2 seconds

  SlowQueryRecord slow;
  slow.latency_ms = 12.5;
  slow.query_id = 42;
  slow.explain = std::make_shared<QueryExplain>();
  s.slow_queries.push_back(slow);
  s.batches = 3;
  s.batched_queries = 9;
  s.batch_mean_size = 3;
  s.batch_size_bucket_counts[1] = 3;

  const std::string html = DebugPageHtml(s, history, /*refresh_seconds=*/0);
  EXPECT_EQ(html.find("http-equiv"), std::string::npos);  // refresh disabled
  EXPECT_NE(html.find("skysr service debug"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("q42"), std::string::npos);
  EXPECT_NE(html.find("cand_pruned="), std::string::npos);  // inline explain
  EXPECT_NE(DebugPageHtml(s, history, 2).find("http-equiv=\"refresh\""),
            std::string::npos);
}

}  // namespace
}  // namespace skysr

// Workload substrate: road-network generation, PoI assignment, dataset
// descriptors, query generation — determinism, connectivity, skew shapes.

#include <gtest/gtest.h>

#include <fstream>
#include <unordered_map>

#include "category/taxonomy_factory.h"
#include "scenario/scenario.h"
#include "workload/dataset.h"
#include "workload/poi_assignment.h"
#include "workload/query_gen.h"
#include "graph/dijkstra.h"
#include "graph/graph_builder.h"
#include "workload/road_network_gen.h"

namespace skysr {
namespace {

TEST(RoadNetworkGenTest, ConnectedAndRoadLike) {
  RoadNetworkParams params;
  params.target_vertices = 2000;
  params.seed = 11;
  const Graph g = MakeRoadNetwork(params);
  EXPECT_GT(g.num_vertices(), 1200);  // holes trim some
  EXPECT_LE(g.num_vertices(), 2100);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.has_coordinates());
  // Road networks have low average degree (2..4 per direction).
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) /
      static_cast<double>(g.num_vertices());
  EXPECT_GT(avg_degree, 2.0);
  EXPECT_LT(avg_degree, 5.0);
  // Weights are positive and roughly Euclidean-scaled.
  for (const Neighbor& nb : g.OutEdges(0)) EXPECT_GT(nb.weight, 0);
}

TEST(RoadNetworkGenTest, DeterministicPerSeed) {
  RoadNetworkParams params;
  params.target_vertices = 500;
  params.seed = 21;
  const Graph a = MakeRoadNetwork(params);
  const Graph b = MakeRoadNetwork(params);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); v += 37) {
    EXPECT_DOUBLE_EQ(a.X(v), b.X(v));
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
  }
  params.seed = 22;
  const Graph c = MakeRoadNetwork(params);
  EXPECT_NE(a.num_vertices(), c.num_vertices());
}

TEST(PoiAssignmentTest, ZipfBiasShowsInCategoryCounts) {
  RoadNetworkParams rp;
  rp.target_vertices = 900;
  const Graph base = MakeRoadNetwork(rp);
  const CategoryForest forest = MakeCalLikeForest();
  PoiAssignmentParams pp;
  pp.num_pois = 4000;
  pp.zipf_theta = 1.0;
  const auto pois = GeneratePoiPoints(base, forest, pp);
  ASSERT_EQ(pois.size(), 4000u);
  std::unordered_map<CategoryId, int> counts;
  for (const auto& p : pois) ++counts[p.categories[0]];
  int max_count = 0;
  for (const auto& [c, n] : counts) max_count = std::max(max_count, n);
  // Heavily biased: the most popular leaf holds far more than 1/63.
  EXPECT_GT(max_count, 4000 / 63 * 4);
  // All categories are leaves of the forest.
  for (const auto& p : pois) {
    EXPECT_TRUE(forest.IsLeaf(p.categories[0]));
    EXPECT_FALSE(p.name.empty());
  }
}

TEST(PoiAssignmentTest, MultiCategoryFractionRespected) {
  RoadNetworkParams rp;
  rp.target_vertices = 400;
  const Graph base = MakeRoadNetwork(rp);
  const CategoryForest forest = MakeCalLikeForest();
  PoiAssignmentParams pp;
  pp.num_pois = 1000;
  pp.multi_category_fraction = 0.4;
  const auto pois = GeneratePoiPoints(base, forest, pp);
  int multi = 0;
  for (const auto& p : pois) {
    if (p.categories.size() > 1) {
      ++multi;
      EXPECT_NE(forest.TreeOf(p.categories[0]),
                forest.TreeOf(p.categories[1]));
    }
  }
  EXPECT_GT(multi, 250);
  EXPECT_LT(multi, 550);
}

TEST(DatasetTest, SpecsPreservePaperRatios) {
  const DatasetSpec tokyo = TokyoLikeSpec(0.01);
  EXPECT_NEAR(static_cast<double>(tokyo.num_pois) /
                  static_cast<double>(tokyo.road_vertices),
              174421.0 / 401893.0, 0.01);
  const DatasetSpec cal = CalLikeSpec(0.1);
  EXPECT_NEAR(static_cast<double>(cal.num_pois) /
                  static_cast<double>(cal.road_vertices),
              87365.0 / 21048.0, 0.05);
  EXPECT_EQ(cal.forest, ForestKind::kCalLike);
  // Tokyo spreads PoIs; NYC/Cal concentrate them (Figure 4 narrative).
  EXPECT_LT(TokyoLikeSpec().cluster_fraction, NycLikeSpec().cluster_fraction);
}

TEST(DatasetTest, MakeDatasetProducesQueryableBundle) {
  DatasetSpec spec = CalLikeSpec(0.02);  // ~420 road vertices, ~1.7k PoIs
  spec.seed = 77;
  const Dataset ds = MakeDataset(spec);
  EXPECT_TRUE(ds.graph.IsConnected());
  EXPECT_GT(ds.graph.num_pois(), 1000);
  EXPECT_EQ(ds.forest.num_trees(), 7);
  // Every PoI has a valid leaf category.
  for (PoiId p = 0; p < ds.graph.num_pois(); p += 97) {
    EXPECT_TRUE(ds.forest.Valid(ds.graph.PoiPrimaryCategory(p)));
  }
}

TEST(OneWayStreetsTest, StaysStronglyConnected) {
  RoadNetworkParams rp;
  rp.target_vertices = 600;
  rp.seed = 55;
  const Graph undirected = MakeRoadNetwork(rp);
  const Graph g = ApplyOneWayStreets(undirected, 0.5, 77);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_vertices(), undirected.num_vertices());
  // Some streets became one-way (fewer stored arcs than 2x streets)...
  EXPECT_LT(g.num_edges(), 2 * undirected.num_edges());
  EXPECT_GT(g.num_edges(), undirected.num_edges());
  // ...yet every vertex is reachable in BOTH directions.
  const Graph rev = ReverseOf(g);
  const auto fwd = SingleSourceDistances(g, 0);
  const auto bwd = SingleSourceDistances(rev, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NE(fwd.dist[static_cast<size_t>(v)], kInfWeight) << v;
    EXPECT_NE(bwd.dist[static_cast<size_t>(v)], kInfWeight) << v;
  }
}

TEST(OneWayStreetsTest, DatasetSpecProducesDirectedDataset) {
  DatasetSpec spec = CalLikeSpec(0.02);
  spec.one_way_fraction = 0.4;
  spec.seed = 56;
  const Dataset ds = MakeDataset(spec);
  EXPECT_TRUE(ds.graph.directed());
  EXPECT_GT(ds.graph.num_pois(), 1000);
}

TEST(QueryGenTest, RespectsConstraints) {
  DatasetSpec spec = CalLikeSpec(0.02);
  spec.seed = 78;
  const Dataset ds = MakeDataset(spec);
  QueryGenParams qp;
  qp.count = 50;
  qp.sequence_size = 3;
  qp.seed = 5;
  const auto queries = GenerateQueries(ds, qp);
  ASSERT_EQ(queries.size(), 50u);
  for (const Query& q : queries) {
    ASSERT_EQ(q.size(), 3);
    EXPECT_GE(q.start, 0);
    EXPECT_LT(q.start, ds.graph.num_vertices());
    std::vector<TreeId> trees;
    for (const auto& pred : q.sequence) {
      ASSERT_EQ(pred.any_of.size(), 1u);
      const TreeId t = ds.forest.TreeOf(pred.any_of[0]);
      for (TreeId u : trees) EXPECT_NE(t, u);
      trees.push_back(t);
    }
  }
  // Determinism.
  const auto again = GenerateQueries(ds, qp);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].start, again[i].start);
    for (int j = 0; j < queries[i].size(); ++j) {
      EXPECT_EQ(queries[i].sequence[static_cast<size_t>(j)].any_of[0],
                again[i].sequence[static_cast<size_t>(j)].any_of[0]);
    }
  }
}

// --- Workload file round-trips -------------------------------------------

void ExpectSameQueries(const std::vector<Query>& a,
                       const std::vector<Query>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start) << "query " << i;
    EXPECT_EQ(a[i].destination, b[i].destination) << "query " << i;
    ASSERT_EQ(a[i].size(), b[i].size()) << "query " << i;
    for (size_t j = 0; j < a[i].sequence.size(); ++j) {
      EXPECT_EQ(a[i].sequence[j].any_of, b[i].sequence[j].any_of);
      EXPECT_EQ(a[i].sequence[j].all_of, b[i].sequence[j].all_of);
      EXPECT_EQ(a[i].sequence[j].none_of, b[i].sequence[j].none_of);
    }
  }
}

TEST(WorkloadFileTest, ComplexPredicatesRoundTripOnGeneratedWorkloads) {
  // A scenario workload with every predicate feature enabled: multi-any_of
  // disjunctions, all_of conjunctions, none_of exclusions, destinations.
  ScenarioSpec spec;
  spec.graph.target_vertices = 80;
  spec.taxonomy.num_trees = 4;
  spec.pois.num_pois = 30;
  spec.pois.multi_category_rate = 0.4;
  spec.workload.num_queries = 120;
  spec.workload.max_sequence = 4;
  spec.workload.multi_any_rate = 0.5;
  spec.workload.all_of_rate = 0.4;
  spec.workload.none_of_rate = 0.4;
  spec.workload.destination_rate = 0.4;
  const Scenario sc = MakeScenario(spec);
  // The mix must actually contain complex predicates, or this test is vacuous.
  int complex = 0;
  for (const Query& q : sc.queries) {
    for (const CategoryPredicate& p : q.sequence) {
      if (p.any_of.size() > 1 || !p.all_of.empty() || !p.none_of.empty()) {
        ++complex;
      }
    }
  }
  ASSERT_GT(complex, 20);

  const std::string path = ::testing::TempDir() + "complex_workload.txt";
  ASSERT_TRUE(WriteWorkloadFile(path, sc.dataset, sc.queries).ok());
  auto loaded = LoadWorkloadFile(path, sc.dataset);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameQueries(sc.queries, *loaded);
}

TEST(WorkloadFileTest, HandwrittenComplexPositionsParse) {
  ScenarioSpec spec;
  spec.graph.target_vertices = 20;
  spec.taxonomy.num_trees = 3;
  spec.taxonomy.max_levels = 2;
  const Scenario sc = MakeScenario(spec);
  const CategoryForest& forest = sc.dataset.forest;
  const std::string a = forest.Name(forest.RootOf(0));
  const std::string b = forest.Name(forest.RootOf(1));
  const std::string c = forest.Name(forest.RootOf(2));

  const std::string path = ::testing::TempDir() + "handwritten_workload.txt";
  {
    std::ofstream out(path);
    out << "# comment\n\n";
    // Whitespace around terms and prefixes must be tolerated.
    out << "3|7| " << a << " , +" << b << " , ! " << c << " ;" << b << "\n";
  }
  auto loaded = LoadWorkloadFile(path, sc.dataset);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  const Query& q = (*loaded)[0];
  EXPECT_EQ(q.start, 3);
  EXPECT_EQ(q.destination, std::optional<VertexId>(7));
  ASSERT_EQ(q.size(), 2);
  EXPECT_EQ(q.sequence[0].any_of,
            std::vector<CategoryId>{forest.RootOf(0)});
  EXPECT_EQ(q.sequence[0].all_of,
            std::vector<CategoryId>{forest.RootOf(1)});
  EXPECT_EQ(q.sequence[0].none_of,
            std::vector<CategoryId>{forest.RootOf(2)});
  EXPECT_EQ(q.sequence[1].any_of,
            std::vector<CategoryId>{forest.RootOf(1)});
}

TEST(WorkloadFileTest, RejectsPositionsWithoutAnyOf) {
  ScenarioSpec spec;
  spec.graph.target_vertices = 20;
  const Scenario sc = MakeScenario(spec);
  const std::string name =
      sc.dataset.forest.Name(sc.dataset.forest.RootOf(0));
  const std::string path = ::testing::TempDir() + "bad_workload.txt";
  std::ofstream(path) << "0|-|+" << name << "\n";
  const auto loaded = LoadWorkloadFile(path, sc.dataset);
  EXPECT_FALSE(loaded.ok());
}

TEST(WorkloadFileTest, WriterRejectsUnrepresentableNames) {
  CategoryForestBuilder fb;
  fb.AddRoot("Food, Drink");  // ',' collides with the term separator
  auto forest = fb.Build();
  ASSERT_TRUE(forest.ok());
  GraphBuilder gb;
  const VertexId u = gb.AddVertex();
  const VertexId v = gb.AddVertex();
  gb.AddEdge(u, v, 1.0);
  auto graph = gb.Build();
  ASSERT_TRUE(graph.ok());
  Dataset ds;
  ds.name = "bad-names";
  ds.graph = std::move(*graph);
  ds.forest = std::move(*forest);
  const std::vector<Query> queries = {MakeSimpleQuery(0, {CategoryId{0}})};
  const std::string path = ::testing::TempDir() + "unrepresentable.txt";
  const Status st = WriteWorkloadFile(path, ds, queries);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  // A position without any_of cannot be loaded back, so the writer refuses
  // it up front.
  Query no_any;
  no_any.start = 0;
  no_any.sequence.emplace_back();
  no_any.sequence[0].all_of.push_back(0);
  const Status st2 =
      WriteWorkloadFile(path, ds, std::vector<Query>{no_any});
  EXPECT_FALSE(st2.ok());
  EXPECT_EQ(st2.code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadFileTest, SimpleQueriesKeepTheLegacyFormat) {
  DatasetSpec spec = CalLikeSpec(0.02);
  spec.seed = 91;
  const Dataset ds = MakeDataset(spec);
  QueryGenParams qp;
  qp.count = 10;
  qp.sequence_size = 3;
  const auto queries = GenerateQueries(ds, qp);
  const std::string path = ::testing::TempDir() + "legacy_workload.txt";
  ASSERT_TRUE(WriteWorkloadFile(path, ds, queries).ok());
  // No grammar extensions leak into plain files: every data line is the
  // original start|dest|A;B;C shape.
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.find(','), std::string::npos) << line;
    EXPECT_EQ(line.find('+'), std::string::npos) << line;
    EXPECT_EQ(line.find('!'), std::string::npos) << line;
  }
  auto loaded = LoadWorkloadFile(path, ds);
  ASSERT_TRUE(loaded.ok());
  ExpectSameQueries(queries, *loaded);
}

TEST(QueryGenTest, PopularPoolDrawsFrequentCategories) {
  DatasetSpec spec = CalLikeSpec(0.02);
  spec.seed = 79;
  const Dataset ds = MakeDataset(spec);
  // Count PoIs per category.
  std::unordered_map<CategoryId, int64_t> counts;
  for (PoiId p = 0; p < ds.graph.num_pois(); ++p) {
    ++counts[ds.graph.PoiPrimaryCategory(p)];
  }
  QueryGenParams qp;
  qp.count = 30;
  qp.sequence_size = 2;
  qp.popular_pool = 10;
  const auto queries = GenerateQueries(ds, qp);
  // Every drawn category should have a healthy number of PoIs.
  const int64_t median_count =
      static_cast<int64_t>(ds.graph.num_pois()) / 63;
  for (const Query& q : queries) {
    for (const auto& pred : q.sequence) {
      EXPECT_GE(counts[pred.any_of[0]], median_count);
    }
  }
}

}  // namespace
}  // namespace skysr

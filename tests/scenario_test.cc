// Scenario generator subsystem: graph families (connectivity, shape,
// determinism), random taxonomies, workload mixes (predicate complexity,
// validity), suite enumeration, and round-trip through dataset files.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "category/taxonomy_factory.h"
#include "core/query.h"
#include "scenario/scenario.h"

namespace skysr {
namespace {

class GraphFamilyTest : public ::testing::TestWithParam<GraphFamily> {};

TEST_P(GraphFamilyTest, ConnectedSizedAndDeterministic) {
  ScenarioGraphParams p;
  p.family = GetParam();
  p.target_vertices = 200;
  p.seed = 99;
  const Graph g = MakeScenarioGraph(p);
  EXPECT_EQ(g.num_vertices(), 200);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.has_coordinates());
  EXPECT_FALSE(g.directed());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& nb : g.OutEdges(v)) EXPECT_GT(nb.weight, 0);
  }
  // Deterministic per seed, different across seeds.
  const Graph h = MakeScenarioGraph(p);
  ASSERT_EQ(g.num_edges(), h.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); v += 17) {
    EXPECT_DOUBLE_EQ(g.X(v), h.X(v));
    ASSERT_EQ(g.OutDegree(v), h.OutDegree(v));
  }
  p.seed = 100;
  const Graph k = MakeScenarioGraph(p);
  EXPECT_NE(g.TotalEdgeWeight(), k.TotalEdgeWeight());
}

TEST_P(GraphFamilyTest, WeightModelsBehave) {
  ScenarioGraphParams p;
  p.family = GetParam();
  p.target_vertices = 80;
  p.weights = WeightModel::kUnit;
  const Graph unit = MakeScenarioGraph(p);
  for (VertexId v = 0; v < unit.num_vertices(); ++v) {
    for (const Neighbor& nb : unit.OutEdges(v)) EXPECT_EQ(nb.weight, 1.0);
  }
  p.weights = WeightModel::kUniform;
  p.weight_min = 2.0;
  p.weight_max = 3.0;
  const Graph uni = MakeScenarioGraph(p);
  for (VertexId v = 0; v < uni.num_vertices(); ++v) {
    for (const Neighbor& nb : uni.OutEdges(v)) {
      EXPECT_GE(nb.weight, 2.0);
      EXPECT_LT(nb.weight, 3.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GraphFamilyTest,
                         ::testing::Values(GraphFamily::kGrid,
                                           GraphFamily::kCluster,
                                           GraphFamily::kSmallWorld));

TEST(GraphFamilyNameTest, RoundTrips) {
  for (GraphFamily f : {GraphFamily::kGrid, GraphFamily::kCluster,
                        GraphFamily::kSmallWorld}) {
    EXPECT_EQ(ParseGraphFamily(GraphFamilyName(f)), f);
  }
  EXPECT_EQ(ParseGraphFamily("small-world"), GraphFamily::kSmallWorld);
  EXPECT_FALSE(ParseGraphFamily("hex").has_value());
}

TEST(GraphFamilyTest, ExtraEdgeFractionIsADegreeKnob) {
  ScenarioGraphParams sparse;
  sparse.family = GraphFamily::kGrid;
  sparse.target_vertices = 400;
  sparse.extra_edge_fraction = 0.0;
  ScenarioGraphParams dense = sparse;
  dense.extra_edge_fraction = 0.9;
  EXPECT_GT(MakeScenarioGraph(dense).num_edges(),
            MakeScenarioGraph(sparse).num_edges());
}

TEST(RandomForestTest, ShapeBoundsAndDeterminism) {
  RandomForestParams p;
  p.num_trees = 4;
  p.max_fanout = 3;
  p.max_levels = 3;
  p.seed = 7;
  const CategoryForest f = MakeRandomForest(p);
  EXPECT_EQ(f.num_trees(), 4);
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    EXPECT_LE(f.Depth(c), p.max_levels + 1);  // roots have depth 1
    EXPECT_LE(static_cast<int>(f.Children(c).size()), p.max_fanout);
  }
  // Roots always grow when max_levels > 0.
  for (TreeId t = 0; t < f.num_trees(); ++t) {
    EXPECT_FALSE(f.IsLeaf(f.RootOf(t)));
  }
  const CategoryForest g = MakeRandomForest(p);
  ASSERT_EQ(f.num_categories(), g.num_categories());
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    EXPECT_EQ(f.Name(c), g.Name(c));
    EXPECT_EQ(f.Parent(c), g.Parent(c));
  }
  p.seed = 8;
  const CategoryForest h = MakeRandomForest(p);
  bool differs = f.num_categories() != h.num_categories();
  for (CategoryId c = 0; !differs && c < f.num_categories(); ++c) {
    differs = f.Parent(c) != h.Parent(c);
  }
  EXPECT_TRUE(differs) << "different seeds produced identical forests";
  // Names are unique (required for taxonomy.txt / workload round-trips).
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    EXPECT_EQ(f.FindByName(f.Name(c)), c);
  }
}

TEST(RandomForestTest, RootOnlyAndRaggedShapes) {
  RandomForestParams p;
  p.num_trees = 2;
  p.max_levels = 0;
  const CategoryForest roots = MakeRandomForest(p);
  EXPECT_EQ(roots.num_categories(), 2);
  p.max_levels = 4;
  p.stop_probability = 0.6;
  p.seed = 123;
  const CategoryForest ragged = MakeRandomForest(p);
  // With aggressive early stopping some leaves sit above max depth.
  int32_t min_leaf_depth = 100, max_leaf_depth = 0;
  for (CategoryId c = 0; c < ragged.num_categories(); ++c) {
    if (!ragged.IsLeaf(c)) continue;
    min_leaf_depth = std::min(min_leaf_depth, ragged.Depth(c));
    max_leaf_depth = std::max(max_leaf_depth, ragged.Depth(c));
  }
  EXPECT_LT(min_leaf_depth, max_leaf_depth);
}

TEST(ScenarioWorkloadTest, QueriesAreValidAndMixesShowUp) {
  ScenarioSpec spec;
  spec.graph.target_vertices = 120;
  spec.taxonomy.num_trees = 4;
  spec.pois.num_pois = 40;
  spec.pois.multi_category_rate = 0.3;
  spec.workload.num_queries = 200;
  spec.workload.min_sequence = 1;
  spec.workload.max_sequence = 4;
  spec.workload.multi_any_rate = 0.4;
  spec.workload.all_of_rate = 0.3;
  spec.workload.none_of_rate = 0.3;
  spec.workload.destination_rate = 0.3;
  const Scenario sc = MakeScenario(spec);
  ASSERT_EQ(sc.queries.size(), 200u);
  int multi_any = 0, all_of = 0, none_of = 0, dest = 0;
  for (const Query& q : sc.queries) {
    EXPECT_TRUE(
        ValidateQuery(sc.dataset.graph, sc.dataset.forest, q).ok());
    EXPECT_GE(q.size(), 1);
    EXPECT_LE(q.size(), 4);
    if (q.destination) ++dest;
    for (const CategoryPredicate& p : q.sequence) {
      if (p.any_of.size() > 1) ++multi_any;
      if (!p.all_of.empty()) ++all_of;
      if (!p.none_of.empty()) ++none_of;
    }
  }
  EXPECT_GT(multi_any, 0);
  EXPECT_GT(all_of, 0);
  EXPECT_GT(none_of, 0);
  EXPECT_GT(dest, 0);
}

TEST(ScenarioWorkloadTest, DistinctTreesRespected) {
  ScenarioSpec spec;
  spec.graph.target_vertices = 60;
  spec.taxonomy.num_trees = 3;
  spec.pois.num_pois = 20;
  spec.workload.num_queries = 50;
  spec.workload.min_sequence = 2;
  spec.workload.max_sequence = 5;  // > num_trees: must clamp
  spec.workload.distinct_trees = true;
  const Scenario sc = MakeScenario(spec);
  for (const Query& q : sc.queries) {
    ASSERT_LE(q.size(), 3);
    std::vector<TreeId> trees;
    for (const CategoryPredicate& p : q.sequence) {
      const TreeId t = sc.dataset.forest.TreeOf(p.any_of[0]);
      EXPECT_EQ(std::count(trees.begin(), trees.end(), t), 0);
      trees.push_back(t);
    }
  }
}

TEST(ScenarioTest, DeterministicEndToEnd) {
  const ScenarioSpec spec = ScenarioSuiteSpec(11, 42);
  const Scenario a = MakeScenario(spec);
  const Scenario b = MakeScenario(spec);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  ASSERT_EQ(a.dataset.graph.num_edges(), b.dataset.graph.num_edges());
  EXPECT_EQ(a.dataset.graph.TotalEdgeWeight(),
            b.dataset.graph.TotalEdgeWeight());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].start, b.queries[i].start);
    ASSERT_EQ(a.queries[i].size(), b.queries[i].size());
    for (int j = 0; j < a.queries[i].size(); ++j) {
      EXPECT_EQ(a.queries[i].sequence[static_cast<size_t>(j)].any_of,
                b.queries[i].sequence[static_cast<size_t>(j)].any_of);
      EXPECT_EQ(a.queries[i].sequence[static_cast<size_t>(j)].all_of,
                b.queries[i].sequence[static_cast<size_t>(j)].all_of);
      EXPECT_EQ(a.queries[i].sequence[static_cast<size_t>(j)].none_of,
                b.queries[i].sequence[static_cast<size_t>(j)].none_of);
    }
  }
}

TEST(ScenarioTest, PoisAreDistinctVerticesWithLeafCategories) {
  ScenarioSpec spec;
  spec.graph.target_vertices = 50;
  spec.pois.num_pois = 50;  // as many PoIs as vertices: full Fisher-Yates
  spec.pois.multi_category_rate = 0.5;
  const Scenario sc = MakeScenario(spec);
  EXPECT_EQ(sc.dataset.graph.num_pois(), 50);
  std::vector<VertexId> hosts;
  for (PoiId p = 0; p < sc.dataset.graph.num_pois(); ++p) {
    hosts.push_back(sc.dataset.graph.VertexOfPoi(p));
    for (CategoryId c : sc.dataset.graph.PoiCategories(p)) {
      EXPECT_TRUE(sc.dataset.forest.IsLeaf(c));
    }
  }
  std::sort(hosts.begin(), hosts.end());
  EXPECT_EQ(std::adjacent_find(hosts.begin(), hosts.end()), hosts.end());
}

TEST(ScenarioSuiteTest, SpecsAreReproducibleAndSeedSensitive) {
  for (int idx : {0, 1, 2, 7, 23}) {
    const ScenarioSpec a = ScenarioSuiteSpec(idx, 1);
    const ScenarioSpec b = ScenarioSuiteSpec(idx, 1);
    EXPECT_EQ(a.graph.seed, b.graph.seed);
    EXPECT_EQ(a.workload.seed, b.workload.seed);
    EXPECT_EQ(a.name, b.name);
    const ScenarioSpec c = ScenarioSuiteSpec(idx, 2);
    EXPECT_NE(a.graph.seed, c.graph.seed);
    EXPECT_EQ(a.graph.family, c.graph.family);  // shape is seed-independent
  }
}

}  // namespace
}  // namespace skysr

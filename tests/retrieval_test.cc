// PoI-retrieval subsystem (src/retrieval/): bucket tables bit-equal to
// graph Dijkstra, candidate streams identical across all three backends,
// resumable state equivalent to both fresh searches and the legacy hash-map
// ResumableDijkstra, engine-level bit-identity across retriever kinds,
// bucket-table persistence, and workspace-reuse determinism with buckets
// enabled.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bssr_engine.h"
#include "graph/dijkstra.h"
#include "graph/resumable_dijkstra.h"
#include "retrieval/bucket_io.h"
#include "retrieval/poi_retriever.h"
#include "scenario/scenario.h"
#include "service/query_service.h"

namespace skysr {
namespace {

ScenarioSpec RetrievalSpec(GraphFamily family, uint64_t seed) {
  ScenarioSpec spec;
  spec.name = std::string("retrieval-") + GraphFamilyName(family);
  spec.graph.family = family;
  spec.graph.target_vertices = 360;
  spec.graph.extra_edge_fraction = 0.3;
  spec.graph.weights = WeightModel::kEuclidean;
  spec.taxonomy.num_trees = 3;
  spec.taxonomy.max_fanout = 3;
  spec.taxonomy.max_levels = 3;
  spec.pois.num_pois = 90;
  spec.pois.zipf_theta = 0.3;
  spec.pois.multi_category_rate = 0.2;  // keeps queries in deferred mode
  spec.workload.num_queries = 10;
  spec.workload.min_sequence = 2;
  spec.workload.max_sequence = 3;
  spec.workload.multi_any_rate = 0.2;
  spec.workload.all_of_rate = 0.2;
  spec.workload.none_of_rate = 0.2;
  spec.workload.destination_rate = 0.25;
  SeedScenarioSpec(&spec, seed);
  return spec;
}

std::vector<PositionMatcher> MatchersOf(const Scenario& sc, const Query& q) {
  std::vector<PositionMatcher> matchers;
  matchers.reserve(q.sequence.size());
  for (const CategoryPredicate& pred : q.sequence) {
    matchers.emplace_back(sc.dataset.graph, sc.dataset.forest,
                          *DefaultSimilarity(), pred,
                          MultiCategoryMode::kMaxSimilarity);
  }
  return matchers;
}

struct Emitted {
  VertexId vertex;
  Weight dist;
  double sim;
};

std::vector<Emitted> Stream(PoiRetriever& retriever,
                            const PositionMatcher& matcher, VertexId source,
                            Weight budget) {
  std::vector<Emitted> out;
  (void)retriever.Retrieve(matcher, source, [budget] { return budget; },
                           [&](const ExpansionCandidate& c) {
                             out.push_back(Emitted{c.vertex, c.dist, c.sim});
                           });
  return out;
}

void ExpectSameStream(const std::vector<Emitted>& a,
                      const std::vector<Emitted>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vertex, b[i].vertex) << what << " at " << i;
    EXPECT_EQ(a[i].dist, b[i].dist) << what << " at " << i;  // bit-exact
    EXPECT_EQ(a[i].sim, b[i].sim) << what << " at " << i;
  }
}

// Every PoI distance the bucket scan produces must be the exact double a
// flat graph Dijkstra computes — the retrieval analogue of the oracle
// exactness contract.
TEST(CategoryBucketTest, ExactDistancesBitEqualDijkstra) {
  for (const GraphFamily family :
       {GraphFamily::kGrid, GraphFamily::kCluster, GraphFamily::kSmallWorld}) {
    const Scenario sc = MakeScenario(RetrievalSpec(family, 901));
    const Graph& g = sc.dataset.graph;
    const ChOracle ch = ChOracle::Build(g);
    const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);
    const BucketRetriever retriever(buckets);
    BucketScanState state;
    OracleWorkspace ows;
    DijkstraWorkspace dws;
    std::vector<Weight> ref;
    for (int i = 0; i < 7; ++i) {
      const auto src =
          static_cast<VertexId>((g.num_vertices() * i) / 7);
      retriever.EnsureForward(src, ows, state, nullptr);
      ref.assign(static_cast<size_t>(g.num_vertices()), kInfWeight);
      RunDijkstra(g, src, dws, [&](VertexId v, Weight d, VertexId) {
        ref[static_cast<size_t>(v)] = d;
        return VisitAction::kContinue;
      });
      for (PoiId p = 0; p < g.num_pois(); ++p) {
        EXPECT_EQ(retriever.ExactDistanceTo(p, state),
                  ref[static_cast<size_t>(g.VertexOfPoi(p))])
            << sc.spec.name << " src " << src << " poi " << p;
      }
    }
  }
}

// The three backends must emit identical candidate streams — same PoIs,
// same bit-exact distances, same order — under unlimited and finite
// budgets.
TEST(PoiRetrieverTest, BackendsStreamIdenticalCandidates) {
  const Scenario sc = MakeScenario(RetrievalSpec(GraphFamily::kCluster, 902));
  const Graph& g = sc.dataset.graph;
  const ChOracle ch = ChOracle::Build(g);
  const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);

  for (size_t qi = 0; qi < sc.queries.size() && qi < 4; ++qi) {
    const auto matchers = MatchersOf(sc, sc.queries[qi]);
    for (const PositionMatcher& matcher : matchers) {
      for (int i = 0; i < 3; ++i) {
        const auto src =
            static_cast<VertexId>((g.num_vertices() * (2 * i + 1)) / 7);
        // Fresh backends per (matcher, source) so suspended state cannot
        // leak between cases.
        auto settle = MakePoiRetriever(g);
        auto bucket = MakePoiRetriever(buckets);
        auto resume = MakeResumablePoiRetriever(g);
        const auto ref = Stream(*settle, matcher, src, kInfWeight);
        ExpectSameStream(Stream(*bucket, matcher, src, kInfWeight), ref,
                         "bucket/inf");
        ExpectSameStream(Stream(*resume, matcher, src, kInfWeight), ref,
                         "resume/inf");
        if (ref.size() >= 2) {
          // A budget that cuts the stream mid-way (strictly above the
          // median candidate, at or below the next).
          const Weight budget = ref[ref.size() / 2].dist;
          auto settle2 = MakePoiRetriever(g);
          auto bucket2 = MakePoiRetriever(buckets);
          auto resume2 = MakeResumablePoiRetriever(g);
          const auto ref2 = Stream(*settle2, matcher, src, budget);
          ExpectSameStream(Stream(*bucket2, matcher, src, budget), ref2,
                           "bucket/cut");
          ExpectSameStream(Stream(*resume2, matcher, src, budget), ref2,
                           "resume/cut");
        }
      }
    }
  }
}

// The flat resumable state must settle exactly the sequence the legacy
// hash-map ResumableDijkstra produces — the equivalence pin for retiring
// the hash-map implementation from the hot path.
TEST(ResumableRetrieverTest, MatchesHashMapResumableDijkstra) {
  const Scenario sc =
      MakeScenario(RetrievalSpec(GraphFamily::kSmallWorld, 903));
  const Graph& g = sc.dataset.graph;
  const auto matchers = MatchersOf(sc, sc.queries[0]);
  ResumablePool pool;
  pool.Reset(4);
  for (int i = 0; i < 4; ++i) {
    const auto src = static_cast<VertexId>((g.num_vertices() * i) / 4);
    ResumableSlot* slot = pool.FindOrCreate(g, src);
    ASSERT_NE(slot, nullptr);
    (void)RetrieveResumable(
        g, matchers[0], *slot, [] { return kInfWeight; },
        [](const ExpansionCandidate&) {}, nullptr, nullptr);
    EXPECT_TRUE(slot->exhausted);
    ResumableDijkstra rd(g, src);
    for (const SettleRecord& rec : slot->log) {
      const auto settle = rd.Next();
      ASSERT_TRUE(settle.has_value()) << "src " << src;
      EXPECT_EQ(settle->vertex, rec.vertex);
      EXPECT_EQ(settle->dist, rec.dist);
    }
    EXPECT_FALSE(rd.Next().has_value()) << "src " << src;
  }
}

// One suspended slot, asked with growing budgets, must reproduce what
// from-scratch searches at each budget emit — the rebuild-free extension
// property.
TEST(ResumableRetrieverTest, GrowingBudgetsMatchFreshSearches) {
  const Scenario sc = MakeScenario(RetrievalSpec(GraphFamily::kGrid, 904));
  const Graph& g = sc.dataset.graph;
  const auto matchers = MatchersOf(sc, sc.queries[0]);
  const PositionMatcher& matcher = matchers[0];
  const VertexId src = static_cast<VertexId>(g.num_vertices() / 3);

  // Reference distances to pick meaningful budget steps.
  DijkstraWorkspace dws;
  Weight max_dist = 0;
  RunDijkstra(g, src, dws, [&](VertexId, Weight d, VertexId) {
    max_dist = d;
    return VisitAction::kContinue;
  });

  ResumablePool pool;
  pool.Reset(1);
  ResumableSlot* slot = pool.FindOrCreate(g, src);
  ASSERT_NE(slot, nullptr);
  int64_t settles_before = 0;
  for (const double frac : {0.25, 0.5, 1.01}) {
    const Weight budget = max_dist * frac;
    std::vector<Emitted> got;
    DijkstraRunStats rstats;
    (void)RetrieveResumable(g, matcher, *slot, [budget] { return budget; },
                            [&](const ExpansionCandidate& c) {
                              got.push_back(Emitted{c.vertex, c.dist, c.sim});
                            },
                            nullptr, &rstats);
    // Fresh search at the same budget.
    std::vector<Emitted> ref;
    ExpansionScratch scratch;
    (void)RunExpansion(g, matcher, src, [budget] { return budget; },
                       /*apply_lemma55=*/false, scratch,
                       [&](const ExpansionCandidate& c) {
                         ref.push_back(Emitted{c.vertex, c.dist, c.sim});
                       },
                       nullptr);
    ExpectSameStream(got, ref, "resume growing budget");
    // The slot never re-settles its prefix: total settles stay bounded by
    // the log length.
    EXPECT_EQ(settles_before + rstats.settled,
              static_cast<int64_t>(slot->log.size()));
    settles_before = static_cast<int64_t>(slot->log.size());
  }
}

// Engine-level: every retriever kind must produce bit-identical skylines
// (routes, scores and witnesses) on engines sharing one CH oracle + bucket
// tables, and identical to the classic oracle-less engine.
TEST(RetrievalEngineTest, BitIdenticalAcrossRetrieverKinds) {
  for (const uint64_t seed : {905ull, 906ull}) {
    const Scenario sc =
        MakeScenario(RetrievalSpec(GraphFamily::kCluster, seed));
    const Graph& g = sc.dataset.graph;
    const ChOracle ch = ChOracle::Build(g);
    const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);
    BssrEngine classic(g, sc.dataset.forest);
    BssrEngine indexed(g, sc.dataset.forest, &ch, &buckets);
    for (const Query& q : sc.queries) {
      QueryOptions opts;
      opts.retriever = RetrieverKind::kSettle;
      const auto ref = classic.Run(q, opts);
      ASSERT_TRUE(ref.ok());
      for (const RetrieverKind kind :
           {RetrieverKind::kAuto, RetrieverKind::kSettle,
            RetrieverKind::kBucket, RetrieverKind::kResume}) {
        QueryOptions kopts;
        kopts.retriever = kind;
        const auto got = indexed.Run(q, kopts);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got->routes.size(), ref->routes.size())
            << sc.spec.name << " retriever " << RetrieverKindName(kind);
        for (size_t r = 0; r < ref->routes.size(); ++r) {
          EXPECT_EQ(got->routes[r].scores.length,
                    ref->routes[r].scores.length)
              << RetrieverKindName(kind) << " route " << r;
          EXPECT_EQ(got->routes[r].scores.semantic,
                    ref->routes[r].scores.semantic)
              << RetrieverKindName(kind) << " route " << r;
          EXPECT_EQ(got->routes[r].pois, ref->routes[r].pois)
              << RetrieverKindName(kind) << " route " << r;
        }
      }
    }
  }
}

// Saved bucket tables must round-trip losslessly and refuse any other
// dataset.
TEST(BucketIoTest, SaveLoadRoundTripAndChecksumGuard) {
  const Scenario sc = MakeScenario(RetrievalSpec(GraphFamily::kGrid, 907));
  const Graph& g = sc.dataset.graph;
  const ChOracle ch = ChOracle::Build(g);
  const CategoryBucketIndex built = CategoryBucketIndex::Build(g, ch);
  const std::string path =
      ::testing::TempDir() + "/retrieval_test_index.cbkt";
  ASSERT_TRUE(SaveBucketIndex(built, path).ok());

  auto loaded = LoadBucketIndex(path, g, ch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_settles(), built.num_settles());
  // Scan equality through a full engine run.
  BssrEngine a(g, sc.dataset.forest, &ch, &built);
  BssrEngine b(g, sc.dataset.forest, &ch, &*loaded);
  QueryOptions opts;
  opts.retriever = RetrieverKind::kBucket;
  for (const Query& q : sc.queries) {
    const auto ra = a.Run(q, opts);
    const auto rb = b.Run(q, opts);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->routes.size(), rb->routes.size());
    for (size_t r = 0; r < ra->routes.size(); ++r) {
      EXPECT_EQ(ra->routes[r].scores.length, rb->routes[r].scores.length);
      EXPECT_EQ(ra->routes[r].pois, rb->routes[r].pois);
    }
  }

  // A different dataset must be rejected by checksum, not answered wrongly.
  const Scenario other =
      MakeScenario(RetrievalSpec(GraphFamily::kCluster, 908));
  const ChOracle other_ch = ChOracle::Build(other.dataset.graph);
  const auto mismatch = LoadBucketIndex(path, other.dataset.graph, other_ch);
  EXPECT_FALSE(mismatch.ok());
  // Truncation must fail cleanly too.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(size, 64);
    ASSERT_EQ(0, truncate(path.c_str(), size / 2));
    EXPECT_FALSE(LoadBucketIndex(path, g, ch).ok());
  }
  std::remove(path.c_str());
}

// The QueryService shares one immutable bucket-table set across workers and
// must reproduce the sequential engine bit-for-bit; destination queries
// exercise the shared reverse-tail LRU on the way.
TEST(RetrievalServiceTest, SharedBucketsMatchSequentialEngine) {
  const Scenario sc =
      MakeScenario(RetrievalSpec(GraphFamily::kSmallWorld, 909));
  const Graph& g = sc.dataset.graph;
  const ChOracle ch = ChOracle::Build(g);
  const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);

  BssrEngine sequential(g, sc.dataset.forest, &ch, &buckets);
  ServiceConfig cfg;
  cfg.num_threads = 3;
  cfg.cache_capacity = 0;  // exercise engines, not the result cache
  cfg.oracle = &ch;
  cfg.buckets = &buckets;
  QueryService service(g, sc.dataset.forest, cfg);
  const auto results = service.RunBatch(sc.queries);
  int destination_queries = 0;
  for (size_t qi = 0; qi < sc.queries.size(); ++qi) {
    if (sc.queries[qi].destination) ++destination_queries;
    const auto ref = sequential.Run(sc.queries[qi]);
    ASSERT_TRUE(ref.ok() && results[qi].ok());
    const auto& got = results[qi].ValueOrDie().routes;
    ASSERT_EQ(got.size(), ref->routes.size()) << "query " << qi;
    for (size_t r = 0; r < got.size(); ++r) {
      EXPECT_EQ(got[r].scores.length, ref->routes[r].scores.length);
      EXPECT_EQ(got[r].scores.semantic, ref->routes[r].scores.semantic);
      EXPECT_EQ(got[r].pois, ref->routes[r].pois);
    }
  }
  if (destination_queries > 0) {
    EXPECT_GT(service.dest_tails().misses(), 0);
  }
}

// Replaying the same destination through the service must hit the shared
// tail LRU instead of re-running the reverse Dijkstra.
TEST(RetrievalServiceTest, DestTailLruServesRepeats) {
  const Scenario sc = MakeScenario(RetrievalSpec(GraphFamily::kGrid, 910));
  const Graph& g = sc.dataset.graph;
  Query q;
  for (const Query& cand : sc.queries) {
    if (cand.destination) {
      q = cand;
      break;
    }
  }
  if (!q.destination) {  // synthesize one if the draw had none
    q = sc.queries[0];
    q.destination = static_cast<VertexId>(g.num_vertices() / 2);
  }
  ServiceConfig cfg;
  // One worker: GetOrCompute deliberately computes outside its lock, so
  // concurrent workers may both miss on the first identical destination;
  // a single worker makes the 1-miss/5-hit assertion deterministic.
  cfg.num_threads = 1;
  cfg.cache_capacity = 0;  // force engine runs so tails are actually needed
  QueryService service(g, sc.dataset.forest, cfg);
  std::vector<Query> batch(6, q);
  const auto results = service.RunBatch(batch);
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  // One miss computes the table; every other run shares it.
  EXPECT_EQ(service.dest_tails().misses(), 1);
  EXPECT_EQ(service.dest_tails().hits(), 5);
  EXPECT_EQ(service.dest_tails().size(), 1u);
}

// Workspace-reuse determinism with the bucket backend engaged: one engine
// serving many queries must stay bit-identical to a fresh engine per query.
// The contract is about RESULTS — routes, scores, PoI witnesses — not work
// counters: warm state may legitimately skip work (that is its purpose),
// but must never change an answer.
TEST(RetrievalEngineTest, WorkspaceReuseWithBucketsBitIdentical) {
  int ran = 0;
  for (const uint64_t seed : {911ull, 912ull}) {
    for (const GraphFamily family :
         {GraphFamily::kGrid, GraphFamily::kCluster,
          GraphFamily::kSmallWorld}) {
      const Scenario sc = MakeScenario(RetrievalSpec(family, seed));
      const Graph& g = sc.dataset.graph;
      const ChOracle ch = ChOracle::Build(g);
      const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);
      BssrEngine reused(g, sc.dataset.forest, &ch, &buckets);
      for (const Query& q : sc.queries) {
        const auto a = reused.Run(q);
        BssrEngine fresh(g, sc.dataset.forest, &ch, &buckets);
        const auto b = fresh.Run(q);
        ASSERT_TRUE(a.ok() && b.ok());
        ASSERT_EQ(a->routes.size(), b->routes.size());
        for (size_t r = 0; r < a->routes.size(); ++r) {
          EXPECT_EQ(a->routes[r].scores.length, b->routes[r].scores.length);
          EXPECT_EQ(a->routes[r].scores.semantic,
                    b->routes[r].scores.semantic);
          EXPECT_EQ(a->routes[r].pois, b->routes[r].pois);
        }
        ++ran;
      }
    }
  }
  EXPECT_GE(ran, 40);
}

}  // namespace
}  // namespace skysr

// §6 extensions: directed graphs, complex predicates, unordered trip
// planning, alternative similarity functions and aggregators.

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "category/taxonomy_factory.h"
#include "core/bssr_engine.h"
#include "ext/unordered_trip.h"
#include "tests/test_util.h"

namespace skysr {
namespace {

using ::skysr::testing::MakeTinyDataset;
using ::skysr::testing::ScoreVectorsNear;
using ::skysr::testing::TinyDataset;

// Directed random dataset: ring both ways (connectivity) + one-way chords.
TinyDataset MakeDirectedTinyDataset(uint64_t seed, int n = 20,
                                    int extra = 16, int num_pois = 10) {
  Rng rng(seed);
  TinyDataset ds;
  ds.forest = MakeSyntheticForest(3, 2, 2);
  std::vector<CategoryId> leaves;
  for (TreeId t = 0; t < ds.forest.num_trees(); ++t) {
    const auto tl = ds.forest.LeavesOfTree(t);
    leaves.insert(leaves.end(), tl.begin(), tl.end());
  }
  GraphBuilder b(/*directed=*/true);
  for (int i = 0; i < n; ++i) b.AddVertex();
  for (int i = 0; i < n; ++i) {
    b.AddEdge(i, (i + 1) % n, 1.0 + rng.UniformDouble() * 3.0);
    b.AddEdge((i + 1) % n, i, 1.0 + rng.UniformDouble() * 3.0);
  }
  for (int e = 0; e < extra; ++e) {
    const auto u = static_cast<VertexId>(rng.UniformU64(n));
    const auto v = static_cast<VertexId>(rng.UniformU64(n));
    if (u != v) b.AddEdge(u, v, 1.0 + rng.UniformDouble() * 5.0);
  }
  std::vector<char> used(static_cast<size_t>(n), 0);
  int placed = 0;
  while (placed < num_pois) {
    const auto v = static_cast<VertexId>(rng.UniformU64(n));
    if (used[static_cast<size_t>(v)]) continue;
    used[static_cast<size_t>(v)] = 1;
    b.AddPoi(v, {leaves[rng.UniformU64(leaves.size())]});
    ++placed;
  }
  ds.graph = std::move(b.Build()).ValueOrDie();
  return ds;
}

class DirectedGraphs : public ::testing::TestWithParam<int> {};

TEST_P(DirectedGraphs, BssrMatchesBruteForceOnDirectedNetworks) {
  const uint64_t seed = 8000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeDirectedTinyDataset(seed);
  Rng rng(seed);
  BssrEngine engine(ds.graph, ds.forest);
  std::vector<CategoryId> cats;
  std::vector<TreeId> trees;
  int guard = 0;
  while (cats.size() < 2 && ++guard < 1000) {
    const auto c = static_cast<CategoryId>(
        rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
    const TreeId t = ds.forest.TreeOf(c);
    bool dup = false;
    for (TreeId u : trees) dup = dup || t == u;
    if (!dup) {
      cats.push_back(c);
      trees.push_back(t);
    }
  }
  Query q = MakeSimpleQuery(
      static_cast<VertexId>(
          rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices()))),
      cats);
  // Also exercise the reverse-graph destination path on directed inputs.
  if (GetParam() % 2 == 0) {
    q.destination = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  }
  const QueryOptions opts;
  auto bssr = engine.Run(q, opts);
  ASSERT_TRUE(bssr.ok());
  auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(ScoreVectorsNear(bssr->routes, *brute)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedGraphs, ::testing::Range(0, 12));

class ComplexPredicates : public ::testing::TestWithParam<int> {};

TEST_P(ComplexPredicates, DisjunctionAndNegationMatchBruteForce) {
  const uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 26, 22, 13);
  Rng rng(seed);
  BssrEngine engine(ds.graph, ds.forest);

  // Position 0: "anything in tree 0 or tree 1, but not subtree X".
  CategoryPredicate p0;
  p0.any_of = {ds.forest.RootOf(0), ds.forest.RootOf(1)};
  const auto kids0 = ds.forest.Children(ds.forest.RootOf(0));
  if (!kids0.empty()) p0.none_of = {kids0[0]};
  // Position 1: plain category in tree 2.
  const auto leaves2 = ds.forest.LeavesOfTree(2);
  CategoryPredicate p1 =
      CategoryPredicate::Single(leaves2[rng.UniformU64(leaves2.size())]);

  Query q;
  q.start = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  q.sequence = {p0, p1};

  const QueryOptions opts;
  auto bssr = engine.Run(q, opts);
  ASSERT_TRUE(bssr.ok());
  auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(ScoreVectorsNear(bssr->routes, *brute)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplexPredicates, ::testing::Range(0, 12));

class UnorderedTrips : public ::testing::TestWithParam<int> {};

TEST_P(UnorderedTrips, MatchesUnorderedBruteForce) {
  const uint64_t seed = 10000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 22, 18, 10);
  Rng rng(seed);
  std::vector<CategoryId> cats;
  std::vector<TreeId> trees;
  int guard = 0;
  while (cats.size() < 2 && ++guard < 1000) {
    const auto c = static_cast<CategoryId>(
        rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
    const TreeId t = ds.forest.TreeOf(c);
    bool dup = false;
    for (TreeId u : trees) dup = dup || t == u;
    if (!dup) {
      cats.push_back(c);
      trees.push_back(t);
    }
  }
  const Query q = MakeSimpleQuery(
      static_cast<VertexId>(
          rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices()))),
      cats);
  const QueryOptions opts;
  auto unordered = RunUnorderedSkySr(ds.graph, ds.forest, q, opts);
  ASSERT_TRUE(unordered.ok()) << unordered.status().ToString();
  auto brute =
      BruteForceSkySr(ds.graph, ds.forest, q, opts, /*unordered=*/true);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(ScoreVectorsNear(unordered->routes, *brute)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnorderedTrips, ::testing::Range(0, 15));

TEST(UnorderedTrips, NeverWorseThanOrderedAtEqualSemantics) {
  // The unordered skyline's best length at any semantic level is <= the
  // ordered one's (order freedom only helps).
  TinyDataset ds = MakeTinyDataset(123, 30, 25, 14);
  Rng rng(123);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<CategoryId> cats;
    std::vector<TreeId> trees;
    int guard = 0;
    while (cats.size() < 3 && ++guard < 1000) {
      const auto c = static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
      const TreeId t = ds.forest.TreeOf(c);
      bool dup = false;
      for (TreeId u : trees) dup = dup || t == u;
      if (!dup) {
        cats.push_back(c);
        trees.push_back(t);
      }
    }
    const Query q = MakeSimpleQuery(
        static_cast<VertexId>(
            rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices()))),
        cats);
    BssrEngine engine(ds.graph, ds.forest);
    auto ordered = engine.Run(q);
    auto unordered = RunUnorderedSkySr(ds.graph, ds.forest, q);
    ASSERT_TRUE(ordered.ok());
    ASSERT_TRUE(unordered.ok());
    for (const Route& r : ordered->routes) {
      Weight best = kInfWeight;
      for (const Route& u : unordered->routes) {
        if (u.scores.semantic <= r.scores.semantic + 1e-12) {
          best = std::min(best, u.scores.length);
        }
      }
      EXPECT_LE(best, r.scores.length + 1e-9);
    }
  }
}

TEST(UnorderedTrips, RejectsOversizedMask) {
  TinyDataset ds = MakeTinyDataset(5);
  Query q;
  q.start = 0;
  for (int i = 0; i < 32; ++i) {
    q.sequence.push_back(CategoryPredicate::Single(0));
  }
  EXPECT_FALSE(RunUnorderedSkySr(ds.graph, ds.forest, q).ok());
}

class AlternativeScoring : public ::testing::TestWithParam<int> {};

TEST_P(AlternativeScoring, BssrExactForOtherSimilaritiesAndAggregators) {
  const uint64_t seed = 11000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed);
  Rng rng(seed);
  std::vector<CategoryId> cats;
  std::vector<TreeId> trees;
  int guard = 0;
  while (cats.size() < 2 && ++guard < 1000) {
    const auto c = static_cast<CategoryId>(
        rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
    const TreeId t = ds.forest.TreeOf(c);
    bool dup = false;
    for (TreeId u : trees) dup = dup || t == u;
    if (!dup) {
      cats.push_back(c);
      trees.push_back(t);
    }
  }
  const Query q = MakeSimpleQuery(
      static_cast<VertexId>(
          rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices()))),
      cats);
  BssrEngine engine(ds.graph, ds.forest);

  for (const auto& sim_fn :
       std::vector<std::shared_ptr<const SimilarityFunction>>{
           std::make_shared<SymmetricWuPalmerSimilarity>(),
           std::make_shared<PathLengthSimilarity>()}) {
    for (const auto agg : {SemanticAggregation::kProduct,
                           SemanticAggregation::kMinSimilarity}) {
      QueryOptions opts;
      opts.similarity = sim_fn;
      opts.aggregation = agg;
      auto bssr = engine.Run(q, opts);
      ASSERT_TRUE(bssr.ok());
      auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
      ASSERT_TRUE(brute.ok());
      EXPECT_TRUE(ScoreVectorsNear(bssr->routes, *brute))
          << "seed=" << seed << " sim=" << sim_fn->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlternativeScoring, ::testing::Range(0, 10));

TEST(TimeBudget, BssrHonorsBudget) {
  TinyDataset ds = MakeTinyDataset(55, 40, 40, 20);
  BssrEngine engine(ds.graph, ds.forest);
  Query q = MakeSimpleQuery(
      0, {ds.forest.RootOf(0), ds.forest.RootOf(1), ds.forest.RootOf(2)});
  QueryOptions opts;
  opts.time_budget_seconds = 0.0;
  auto r = engine.Run(q, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.timed_out);
}

}  // namespace
}  // namespace skysr

// Shared fixtures for the test suites: tiny deterministic random datasets
// small enough for brute-force ground truth.

#ifndef SKYSR_TESTS_TEST_UTIL_H_
#define SKYSR_TESTS_TEST_UTIL_H_

#include <vector>

#include <gtest/gtest.h>

#include <cmath>

#include "category/taxonomy_factory.h"
#include "core/query.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace skysr::testing {

/// A small random connected graph with PoIs, suitable for brute force.
struct TinyDataset {
  Graph graph;
  CategoryForest forest;
};

/// Builds a random connected undirected graph: `n` vertices in a ring (which
/// guarantees connectivity) plus `extra_edges` random chords, then turns
/// `num_pois` random distinct vertices into PoIs with random leaf
/// categories. Deterministic per seed.
inline TinyDataset MakeTinyDataset(uint64_t seed, int n = 24,
                                   int extra_edges = 20, int num_pois = 12,
                                   int num_trees = 3, int branching = 2,
                                   int levels = 2,
                                   double multi_cat_fraction = 0.0) {
  Rng rng(seed);
  TinyDataset ds;
  ds.forest = MakeSyntheticForest(num_trees, branching, levels);

  std::vector<CategoryId> leaves;
  for (TreeId t = 0; t < ds.forest.num_trees(); ++t) {
    const auto tl = ds.forest.LeavesOfTree(t);
    leaves.insert(leaves.end(), tl.begin(), tl.end());
  }

  GraphBuilder b(/*directed=*/false);
  for (int i = 0; i < n; ++i) b.AddVertex();
  for (int i = 0; i < n; ++i) {
    b.AddEdge(i, (i + 1) % n, 1.0 + rng.UniformDouble() * 4.0);
  }
  for (int e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<VertexId>(rng.UniformU64(n));
    const auto v = static_cast<VertexId>(rng.UniformU64(n));
    if (u != v) b.AddEdge(u, v, 1.0 + rng.UniformDouble() * 6.0);
  }
  // Distinct random PoI vertices.
  std::vector<char> is_poi(static_cast<size_t>(n), 0);
  int placed = 0;
  while (placed < num_pois) {
    const auto v = static_cast<VertexId>(rng.UniformU64(n));
    if (is_poi[static_cast<size_t>(v)]) continue;
    is_poi[static_cast<size_t>(v)] = 1;
    std::vector<CategoryId> cats = {
        leaves[rng.UniformU64(leaves.size())]};
    if (multi_cat_fraction > 0 && rng.Bernoulli(multi_cat_fraction)) {
      const CategoryId extra = leaves[rng.UniformU64(leaves.size())];
      if (ds.forest.TreeOf(extra) != ds.forest.TreeOf(cats[0])) {
        cats.push_back(extra);
      }
    }
    b.AddPoi(v, std::span<const CategoryId>(cats));
    ++placed;
  }
  auto built = b.Build();
  ds.graph = std::move(built).ValueOrDie();
  return ds;
}

/// Sorts routes by (length, semantic, pois) for order-insensitive equality.
inline void NormalizeRoutes(std::vector<Route>* routes) {
  std::sort(routes->begin(), routes->end(),
            [](const Route& a, const Route& b) {
              if (a.scores.length != b.scores.length) {
                return a.scores.length < b.scores.length;
              }
              if (a.scores.semantic != b.scores.semantic) {
                return a.scores.semantic < b.scores.semantic;
              }
              return a.pois < b.pois;
            });
}

/// Score-vector equality: two route sets agree as skylines if their
/// (length, semantic) multisets match (route identity may differ between
/// equivalent routes).
inline std::vector<std::pair<Weight, double>> ScoreVector(
    const std::vector<Route>& routes) {
  std::vector<std::pair<Weight, double>> out;
  out.reserve(routes.size());
  for (const Route& r : routes) {
    out.emplace_back(r.scores.length, r.scores.semantic);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Approximate multiset equality of score vectors. Different algorithms sum
/// the same distances in different orders, so lengths may differ by a few
/// ULPs; anything beyond `tol` (relative) is a real mismatch.
inline ::testing::AssertionResult ScoreVectorsNear(
    const std::vector<Route>& a, const std::vector<Route>& b,
    double tol = 1e-9) {
  const auto va = ScoreVector(a);
  const auto vb = ScoreVector(b);
  const auto render = [](const std::vector<std::pair<Weight, double>>& v) {
    std::string s = "{";
    for (const auto& [l, sem] : v) {
      s += " (" + std::to_string(l) + ", " + std::to_string(sem) + ")";
    }
    return s + " }";
  };
  if (va.size() != vb.size()) {
    return ::testing::AssertionFailure()
           << "sizes differ: " << render(va) << " vs " << render(vb);
  }
  for (size_t i = 0; i < va.size(); ++i) {
    const double lscale = std::max({1.0, std::abs(va[i].first),
                                    std::abs(vb[i].first)});
    if (std::abs(va[i].first - vb[i].first) > tol * lscale ||
        std::abs(va[i].second - vb[i].second) > tol) {
      return ::testing::AssertionFailure()
             << "entry " << i << " differs: " << render(va) << " vs "
             << render(vb);
    }
  }
  return ::testing::AssertionSuccess();
}

/// Skyline equivalence modulo floating-point noise: algorithms that compute
/// the same route's length via different summation orders can disagree by a
/// few ULPs, which lets one implementation keep a point the other (rightly)
/// saw as dominated. Two skylines are equivalent when every point of each is
/// dominated-or-equal (within `tol`) by some point of the other.
inline ::testing::AssertionResult SkylinesEquivalent(
    const std::vector<Route>& a, const std::vector<Route>& b,
    double tol = 1e-9) {
  const auto covered = [tol](const Route& r, const std::vector<Route>& set) {
    for (const Route& q : set) {
      const double lscale =
          std::max({1.0, std::abs(r.scores.length), std::abs(q.scores.length)});
      if (q.scores.length <= r.scores.length + tol * lscale &&
          q.scores.semantic <= r.scores.semantic + tol) {
        return true;
      }
    }
    return false;
  };
  for (const Route& r : a) {
    if (!covered(r, b)) {
      return ::testing::AssertionFailure()
             << "route (" << r.scores.length << ", " << r.scores.semantic
             << ") from the first set is not covered by the second";
    }
  }
  for (const Route& r : b) {
    if (!covered(r, a)) {
      return ::testing::AssertionFailure()
             << "route (" << r.scores.length << ", " << r.scores.semantic
             << ") from the second set is not covered by the first";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace skysr::testing

#endif  // SKYSR_TESTS_TEST_UTIL_H_

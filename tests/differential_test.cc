// Differential verification: BssrEngine against the exact baselines on the
// generated scenario suite (src/scenario/diff_check.h).
//
// The headline test runs >= 200 (graph, taxonomy, query) instances spanning
// all three graph families and demands bit-identical skylines from every
// QueryOptions ablation combination. SKYSR_DIFF_INSTANCES overrides the
// instance count (the sanitizer CI job reduces it).

#include <cstdlib>
#include <memory>
#include <string_view>

#include <gtest/gtest.h>

#include "core/bssr_engine.h"
#include "index/oracle_factory.h"
#include "retrieval/category_buckets.h"
#include "scenario/diff_check.h"
#include "scenario/scenario.h"

namespace skysr {
namespace {

int EnvInstances(int def) {
  const char* v = std::getenv("SKYSR_DIFF_INSTANCES");
  if (v == nullptr) return def;
  const int n = std::atoi(v);
  return n > 0 ? n : def;
}

// SKYSR_ORACLE=ch|alt restricts the sweep to {flat, that kind} (the CI
// index-enabled job variant) and SKYSR_ORACLE=flat to the classic
// flat-only run; unset (or an unknown name) keeps the full flat/ch/alt
// sweep.
std::vector<OracleKind> EnvOracleSweep() {
  const std::vector<OracleKind> all = {OracleKind::kFlat, OracleKind::kCh,
                                       OracleKind::kAlt};
  const char* v = std::getenv("SKYSR_ORACLE");
  if (v == nullptr || *v == '\0') return all;
  const auto kind = ParseOracleKind(v);
  if (!kind.has_value()) return all;
  if (*kind == OracleKind::kFlat) return {OracleKind::kFlat};
  return {OracleKind::kFlat, *kind};
}

// SKYSR_XCACHE=on|1 attaches an engine-lifetime SharedQueryCache (with a
// prewarm snapshot on bucket-carrying engines) to every engine of the sweep
// and turns the service replay's shared query cache on — the CI warm-state
// axis. Anything else (or unset) keeps the cold per-query state. Skylines
// must be bit-identical to brute force either way, so comparing the two
// jobs' digests proves cold/warm bit-identity.
bool EnvXCache() {
  const char* v = std::getenv("SKYSR_XCACHE");
  if (v == nullptr) return false;
  return std::string_view(v) == "on" || std::string_view(v) == "1";
}

// SKYSR_QB_DOMINANCE=off|0 disables per-prefix Q_b dominance pruning for
// the whole sweep — the CI axis proving the unpruned engine is bit-identical
// to brute force too (the default run proves the pruned one). Anything else
// (or unset) keeps pruning on.
bool EnvQbDominance() {
  const char* v = std::getenv("SKYSR_QB_DOMINANCE");
  if (v == nullptr) return true;
  return !(std::string_view(v) == "off" || std::string_view(v) == "0");
}

// SKYSR_RETRIEVER=settle|bucket|resume|auto restricts the retriever sweep
// to {settle, that kind} (settle is the exact reference backend); unset (or
// an unknown name) keeps the full auto/settle/bucket/resume sweep.
std::vector<RetrieverKind> EnvRetrieverSweep() {
  const std::vector<RetrieverKind> all = {
      RetrieverKind::kAuto, RetrieverKind::kSettle, RetrieverKind::kBucket,
      RetrieverKind::kResume};
  const char* v = std::getenv("SKYSR_RETRIEVER");
  if (v == nullptr || *v == '\0') return all;
  const auto kind = ParseRetrieverKind(v);
  if (!kind.has_value()) return all;
  if (*kind == RetrieverKind::kSettle) return {RetrieverKind::kSettle};
  return {RetrieverKind::kSettle, *kind};
}

// The acceptance bar: >= 200 instances, every ablation combo bit-identical
// to brute force under EVERY oracle kind and EVERY retriever kind, naive
// baseline and QueryService replay (sharing the index + bucket tables)
// agreeing too.
TEST(DifferentialTest, EngineMatchesBaselinesOnGeneratedScenarios) {
  DiffCheckParams params;
  params.num_instances = EnvInstances(216);
  params.oracle_kinds = EnvOracleSweep();
  params.retriever_kinds = EnvRetrieverSweep();
  params.shared_cache = EnvXCache();
  params.qb_dominance = EnvQbDominance();
  const DiffReport report = RunDifferentialCheck(params);
  EXPECT_GE(report.instances_checked, params.num_instances);
  // 8 toggle combos x 2 queue disciplines per instance, oracle kind and
  // retriever kind.
  EXPECT_GE(report.engine_runs,
            16 * static_cast<int64_t>(params.oracle_kinds.size()) *
                static_cast<int64_t>(params.retriever_kinds.size()) *
                report.instances_checked);
  for (const DiffMismatch& m : report.mismatches) {
    ADD_FAILURE() << m.scenario << " query " << m.query_index
                  << " (suite index " << m.suite_index << ", master seed "
                  << m.master_seed << ") [" << m.config
                  << "]: " << m.detail;
  }
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The suite must actually span the three graph families (and both plain and
// complex workloads) within any 200-instance prefix.
TEST(DifferentialTest, SuiteCoversAllFamiliesAndWorkloadShapes) {
  bool seen_family[3] = {false, false, false};
  bool seen_plain = false, seen_complex = false, seen_multicat = false;
  for (int idx = 0; idx < 30; ++idx) {
    const ScenarioSpec spec = ScenarioSuiteSpec(idx, /*master_seed=*/2026);
    seen_family[static_cast<int>(spec.graph.family)] = true;
    if (spec.workload.all_of_rate > 0) {
      seen_complex = true;
    } else {
      seen_plain = true;
    }
    if (spec.pois.multi_category_rate > 0) seen_multicat = true;
  }
  EXPECT_TRUE(seen_family[0] && seen_family[1] && seen_family[2]);
  EXPECT_TRUE(seen_plain);
  EXPECT_TRUE(seen_complex);
  EXPECT_TRUE(seen_multicat);
}

// Workspace-reuse determinism: the engine's QueryWorkspace (skyline, arena,
// Q_b, flat cache + candidate pool, settle log, bucket scan state,
// resumable slots, every scratch) persists across queries; 100 sequential
// mixed queries on ONE engine must be bit-identical — routes, scores and
// PoI witnesses — to running each query on a freshly constructed engine.
// The contract is deliberately about RESULTS, not work counters: warm state
// (shared caches, persistent retriever slots) is allowed to skip work, it
// is never allowed to change an answer. Runs twice: the classic oracle-less
// engine, and an engine with CH oracle + category-bucket tables so the
// retrieval-backend state is exercised under reuse too.
TEST(DifferentialTest, WorkspaceReuseIsBitIdenticalToFreshEngines) {
  for (const bool with_buckets : {false, true}) {
    int ran = 0;
    for (int idx = 0; ran < 100; ++idx) {
      const Scenario sc = MakeScenario(ScenarioSuiteSpec(idx, /*seed=*/777));
      std::unique_ptr<ChOracle> ch;
      std::unique_ptr<CategoryBucketIndex> buckets;
      if (with_buckets) {
        ch = std::make_unique<ChOracle>(
            ChOracle::Build(sc.dataset.graph));
        buckets = std::make_unique<CategoryBucketIndex>(
            CategoryBucketIndex::Build(sc.dataset.graph, *ch));
      }
      BssrEngine reused(sc.dataset.graph, sc.dataset.forest, ch.get(),
                        buckets.get());
      for (size_t qi = 0; qi < sc.queries.size() && ran < 100; ++qi, ++ran) {
        const Query& q = sc.queries[qi];
        const auto a = reused.Run(q);
        BssrEngine fresh(sc.dataset.graph, sc.dataset.forest, ch.get(),
                         buckets.get());
        const auto b = fresh.Run(q);
        ASSERT_TRUE(a.ok() && b.ok());
        ASSERT_EQ(a->routes.size(), b->routes.size())
            << sc.spec.name << " query " << qi;
        for (size_t r = 0; r < a->routes.size(); ++r) {
          EXPECT_EQ(a->routes[r].scores.length, b->routes[r].scores.length);
          EXPECT_EQ(a->routes[r].scores.semantic,
                    b->routes[r].scores.semantic);
          EXPECT_EQ(a->routes[r].pois, b->routes[r].pois)
              << sc.spec.name << " query " << qi << " route " << r;
        }
      }
    }
    EXPECT_EQ(ran, 100);
  }
}

// Determinism: the same (instance count, master seed) must reproduce the
// same skylines bit-for-bit, captured by the digest; a different master
// seed must explore a different space.
TEST(DifferentialTest, DeterministicFromFixedSeed) {
  DiffCheckParams params;
  params.num_instances = 24;
  params.check_service = false;  // keep the repeat runs cheap
  const DiffReport a = RunDifferentialCheck(params);
  const DiffReport b = RunDifferentialCheck(params);
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.instances_checked, b.instances_checked);
  EXPECT_EQ(a.engine_runs, b.engine_runs);

  params.master_seed = 777;
  const DiffReport c = RunDifferentialCheck(params);
  EXPECT_TRUE(c.ok()) << c.Summary();
  EXPECT_NE(a.result_digest, c.result_digest);
}

}  // namespace
}  // namespace skysr

// End-to-end integration on generated mid-size datasets: BSSR vs the naive
// baselines on real workloads, cache/optimization effects on statistics,
// and the paper's qualitative claims at scale.

#include <gtest/gtest.h>

#include "baseline/naive_skysr.h"
#include "core/bssr_engine.h"
#include "tests/test_util.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"

namespace skysr {
namespace {

using ::skysr::testing::ScoreVectorsNear;
using ::skysr::testing::SkylinesEquivalent;

class MidScaleFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = CalLikeSpec(0.05);  // ~1k road vertices, ~4.4k PoIs
    spec.seed = 31;
    dataset_ = new Dataset(MakeDataset(spec));
    QueryGenParams qp;
    qp.count = 8;
    qp.sequence_size = 3;
    qp.seed = 32;
    queries_ = new std::vector<Query>(GenerateQueries(*dataset_, qp));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete queries_;
    dataset_ = nullptr;
    queries_ = nullptr;
  }
  static Dataset* dataset_;
  static std::vector<Query>* queries_;
};

Dataset* MidScaleFixture::dataset_ = nullptr;
std::vector<Query>* MidScaleFixture::queries_ = nullptr;

TEST_F(MidScaleFixture, BssrAgreesWithNaivePneOnGeneratedWorkload) {
  BssrEngine engine(dataset_->graph, dataset_->forest);
  QueryOptions opts;
  opts.time_budget_seconds = 30.0;
  for (const Query& q : *queries_) {
    auto bssr = engine.Run(q, opts);
    ASSERT_TRUE(bssr.ok());
    ASSERT_FALSE(bssr->stats.timed_out);
    auto naive =
        RunNaiveSkySr(dataset_->graph, dataset_->forest, q, opts,
                      OsrEngineKind::kPne);
    ASSERT_TRUE(naive.ok());
    ASSERT_FALSE(naive->stats.timed_out);
    EXPECT_TRUE(SkylinesEquivalent(bssr->routes, naive->routes))
        << "start=" << q.start;
  }
}

TEST_F(MidScaleFixture, CachingReducesDijkstraRuns) {
  BssrEngine engine(dataset_->graph, dataset_->forest);
  int64_t with_cache = 0, without_cache = 0;
  for (const Query& q : *queries_) {
    QueryOptions opts;
    opts.use_cache = true;
    auto a = engine.Run(q, opts);
    ASSERT_TRUE(a.ok());
    with_cache += a->stats.mdijkstra_runs;
    opts.use_cache = false;
    auto b = engine.Run(q, opts);
    ASSERT_TRUE(b.ok());
    without_cache += b->stats.mdijkstra_runs;
    // Results identical regardless of caching.
    EXPECT_TRUE(ScoreVectorsNear(a->routes, b->routes));
  }
  EXPECT_LE(with_cache, without_cache);
}

TEST_F(MidScaleFixture, InitialSearchShrinksFirstSearchSpace) {
  BssrEngine engine(dataset_->graph, dataset_->forest);
  double with_init = 0, without_init = 0;
  for (const Query& q : *queries_) {
    QueryOptions opts;
    auto a = engine.Run(q, opts);
    ASSERT_TRUE(a.ok());
    with_init += a->stats.first_search_weight_sum;
    opts.use_initial_search = false;
    opts.use_lower_bounds = false;
    auto b = engine.Run(q, opts);
    ASSERT_TRUE(b.ok());
    without_init += b->stats.first_search_weight_sum;
  }
  // Table 7's effect: the first modified Dijkstra explores far less with
  // the initial search seeding the threshold.
  EXPECT_LT(with_init, without_init * 0.8);
}

TEST_F(MidScaleFixture, ProposedQueueVisitsFewerVerticesThanDistanceBased) {
  BssrEngine engine(dataset_->graph, dataset_->forest);
  int64_t proposed = 0, distance = 0;
  for (const Query& q : *queries_) {
    QueryOptions opts;
    opts.queue_discipline = QueueDiscipline::kProposed;
    auto a = engine.Run(q, opts);
    ASSERT_TRUE(a.ok());
    proposed += a->stats.vertices_settled;
    opts.queue_discipline = QueueDiscipline::kDistanceBased;
    auto b = engine.Run(q, opts);
    ASSERT_TRUE(b.ok());
    distance += b->stats.vertices_settled;
    EXPECT_TRUE(ScoreVectorsNear(a->routes, b->routes));
  }
  // Table 8's effect, aggregated over the workload.
  EXPECT_LT(proposed, distance);
}

TEST_F(MidScaleFixture, StatsAreInternallyConsistent) {
  BssrEngine engine(dataset_->graph, dataset_->forest);
  for (const Query& q : *queries_) {
    auto r = engine.Run(q);
    ASSERT_TRUE(r.ok());
    const SearchStats& s = r->stats;
    EXPECT_EQ(s.skyline_size, static_cast<int64_t>(r->routes.size()));
    EXPECT_GE(s.routes_enqueued, s.routes_dequeued - 1);
    EXPECT_GT(s.mdijkstra_runs, 0);
    EXPECT_GT(s.vertices_settled, 0);
    EXPECT_GE(s.elapsed_ms, 0);
    EXPECT_GT(s.logical_peak_bytes, 0);
    // Small skylines, as the paper reports (Figure 6: up to ~8).
    EXPECT_LE(s.skyline_size, 64);
    EXPECT_GE(s.skyline_size, 1);
  }
}

TEST_F(MidScaleFixture, ReusedEngineGivesIdenticalResults) {
  BssrEngine engine(dataset_->graph, dataset_->forest);
  const Query& q = (*queries_)[0];
  auto first = engine.Run(q);
  ASSERT_TRUE(first.ok());
  for (int rep = 0; rep < 3; ++rep) {
    auto again = engine.Run(q);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->routes.size(), first->routes.size());
    for (size_t i = 0; i < first->routes.size(); ++i) {
      EXPECT_EQ(again->routes[i].pois, first->routes[i].pois);
      EXPECT_EQ(again->routes[i].scores.length,
                first->routes[i].scores.length);
    }
  }
}

TEST_F(MidScaleFixture, LargerSequencesStayExact) {
  // |S_q| = 4 and 5: BSSR vs the naive PNE baseline (exact for the
  // distinct-tree workload the generator emits). Larger sizes stress the
  // branch-and-bound depth, δ pruning and the cache's rerun path.
  BssrEngine engine(dataset_->graph, dataset_->forest);
  QueryOptions opts;
  opts.time_budget_seconds = 60.0;
  for (int size = 4; size <= 5; ++size) {
    QueryGenParams qp;
    qp.count = 3;
    qp.sequence_size = size;
    qp.seed = 777 + static_cast<uint64_t>(size);
    const auto queries = GenerateQueries(*dataset_, qp);
    for (const Query& q : queries) {
      auto bssr = engine.Run(q, opts);
      ASSERT_TRUE(bssr.ok());
      ASSERT_FALSE(bssr->stats.timed_out);
      auto naive = RunNaiveSkySr(dataset_->graph, dataset_->forest, q, opts,
                                 OsrEngineKind::kPne);
      ASSERT_TRUE(naive.ok());
      if (naive->stats.timed_out) continue;  // budget hit: skip comparison
      EXPECT_TRUE(SkylinesEquivalent(bssr->routes, naive->routes))
          << "size=" << size << " start=" << q.start;
    }
  }
}

TEST(OneWayWorkload, BssrMatchesNaivePneOnDirectedCity) {
  // §6 directed support at workload scale: a city with 40% one-way streets.
  DatasetSpec spec = CalLikeSpec(0.04);
  spec.one_way_fraction = 0.4;
  spec.seed = 91;
  const Dataset ds = MakeDataset(spec);
  ASSERT_TRUE(ds.graph.directed());
  QueryGenParams qp;
  qp.count = 5;
  qp.sequence_size = 3;
  qp.seed = 92;
  const auto queries = GenerateQueries(ds, qp);
  BssrEngine engine(ds.graph, ds.forest);
  QueryOptions opts;
  opts.time_budget_seconds = 60.0;
  for (const Query& q : queries) {
    auto bssr = engine.Run(q, opts);
    ASSERT_TRUE(bssr.ok());
    auto naive =
        RunNaiveSkySr(ds.graph, ds.forest, q, opts, OsrEngineKind::kPne);
    ASSERT_TRUE(naive.ok());
    if (naive->stats.timed_out) continue;
    EXPECT_TRUE(SkylinesEquivalent(bssr->routes, naive->routes))
        << "start=" << q.start;
  }
}

TEST(FoursquareScenario, PaperExampleOneShapes) {
  // Example 1.1's shape on a generated Tokyo-like city: querying
  // <Asian Restaurant, Arts & Entertainment, Gift Shop> yields a skyline
  // whose shortest route is at least as short as the perfect-match route.
  DatasetSpec spec = TokyoLikeSpec(0.004);  // ~1.6k road vertices
  spec.seed = 41;
  const Dataset ds = MakeDataset(spec);
  BssrEngine engine(ds.graph, ds.forest);
  const CategoryId asian = ds.forest.FindByName("Asian Restaurant");
  const CategoryId arts = ds.forest.FindByName("Arts & Entertainment");
  const CategoryId gift = ds.forest.FindByName("Gift Shop");
  ASSERT_NE(asian, kInvalidCategory);
  int nonempty = 0;
  for (VertexId start = 0; start < ds.graph.num_vertices();
       start += ds.graph.num_vertices() / 5) {
    auto r = engine.Run(MakeSimpleQuery(start, {asian, arts, gift}));
    ASSERT_TRUE(r.ok());
    if (r->routes.empty()) continue;
    ++nonempty;
    // Longest route should be the (near-)perfect one; shortest the most
    // semantically relaxed.
    EXPECT_LE(r->routes.front().scores.length,
              r->routes.back().scores.length);
    EXPECT_GE(r->routes.front().scores.semantic,
              r->routes.back().scores.semantic);
  }
  EXPECT_GT(nonempty, 0);
}

}  // namespace
}  // namespace skysr

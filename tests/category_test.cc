// Unit and property tests for the category forest: construction, LCA vs a
// naive reference, subtree tests, taxonomy factories, text format.

#include <gtest/gtest.h>

#include <algorithm>

#include "category/category_forest.h"
#include "category/taxonomy_factory.h"
#include "category/text_format.h"
#include "util/rng.h"

namespace skysr {
namespace {

CategoryForest PaperFigure2Forest(CategoryId* food, CategoryId* asian,
                                  CategoryId* italian, CategoryId* shop,
                                  CategoryId* gift) {
  CategoryForestBuilder b;
  *food = b.AddRoot("Food");
  *asian = b.AddChild(*food, "Asian");
  b.AddChild(*asian, "Japanese");
  *italian = b.AddChild(*food, "Italian");
  b.AddChild(*food, "Bakery");
  *shop = b.AddRoot("Shop & Service");
  *gift = b.AddChild(*shop, "Gift shop");
  b.AddChild(*shop, "Hobby shop");
  return std::move(b.Build()).ValueOrDie();
}

TEST(CategoryForestTest, DepthsAndTrees) {
  CategoryId food, asian, italian, shop, gift;
  const CategoryForest f =
      PaperFigure2Forest(&food, &asian, &italian, &shop, &gift);
  EXPECT_EQ(f.num_trees(), 2);
  EXPECT_EQ(f.Depth(food), 1);
  EXPECT_EQ(f.Depth(asian), 2);
  EXPECT_EQ(f.Depth(gift), 2);
  EXPECT_EQ(f.TreeOf(asian), f.TreeOf(italian));
  EXPECT_NE(f.TreeOf(asian), f.TreeOf(gift));
  EXPECT_EQ(f.Parent(asian), food);
  EXPECT_EQ(f.Parent(food), kInvalidCategory);
}

TEST(CategoryForestTest, AncestorsAndSubtrees) {
  CategoryId food, asian, italian, shop, gift;
  const CategoryForest f =
      PaperFigure2Forest(&food, &asian, &italian, &shop, &gift);
  const auto anc = f.AncestorsOrSelf(asian);
  ASSERT_EQ(anc.size(), 2u);
  EXPECT_EQ(anc[0], asian);
  EXPECT_EQ(anc[1], food);
  EXPECT_TRUE(f.IsAncestorOrSelf(food, asian));
  EXPECT_TRUE(f.IsAncestorOrSelf(asian, asian));
  EXPECT_FALSE(f.IsAncestorOrSelf(asian, food));
  EXPECT_FALSE(f.IsAncestorOrSelf(food, gift));
}

TEST(CategoryForestTest, LcaBasics) {
  CategoryId food, asian, italian, shop, gift;
  const CategoryForest f =
      PaperFigure2Forest(&food, &asian, &italian, &shop, &gift);
  EXPECT_EQ(f.Lca(asian, italian), food);
  EXPECT_EQ(f.Lca(asian, asian), asian);
  EXPECT_EQ(f.Lca(asian, food), food);
  EXPECT_EQ(f.Lca(asian, gift), kInvalidCategory);
}

// Property: LCA index agrees with the naive walk-up reference on random
// forests.
class LcaProperty : public ::testing::TestWithParam<int> {};

TEST_P(LcaProperty, MatchesNaiveWalkUp) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  CategoryForestBuilder b;
  std::vector<CategoryId> nodes;
  const int trees = 1 + static_cast<int>(rng.UniformU64(3));
  for (int t = 0; t < trees; ++t) {
    nodes.push_back(b.AddRoot("r" + std::to_string(t)));
  }
  for (int i = 0; i < 60; ++i) {
    const CategoryId parent = nodes[rng.UniformU64(nodes.size())];
    nodes.push_back(b.AddChild(parent, "n" + std::to_string(i)));
  }
  const CategoryForest f = std::move(b.Build()).ValueOrDie();

  const auto naive_lca = [&](CategoryId a, CategoryId c) -> CategoryId {
    if (f.TreeOf(a) != f.TreeOf(c)) return kInvalidCategory;
    std::vector<CategoryId> ap = f.AncestorsOrSelf(a);
    for (CategoryId x = c; x != kInvalidCategory; x = f.Parent(x)) {
      if (std::find(ap.begin(), ap.end(), x) != ap.end()) return x;
    }
    return kInvalidCategory;
  };

  for (int rep = 0; rep < 300; ++rep) {
    const CategoryId a = nodes[rng.UniformU64(nodes.size())];
    const CategoryId c = nodes[rng.UniformU64(nodes.size())];
    EXPECT_EQ(f.Lca(a, c), naive_lca(a, c)) << "a=" << a << " c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcaProperty, ::testing::Range(0, 10));

TEST(CategoryForestTest, LeavesOfTreePreorder) {
  const CategoryForest f = MakeSyntheticForest(2, 2, 2);
  const auto leaves = f.LeavesOfTree(0);
  EXPECT_EQ(leaves.size(), 4u);  // branching 2, 2 levels
  for (CategoryId c : leaves) {
    EXPECT_TRUE(f.IsLeaf(c));
    EXPECT_EQ(f.TreeOf(c), 0);
  }
}

TEST(CategoryForestBuilderTest, EmptyForestRejected) {
  CategoryForestBuilder b;
  EXPECT_FALSE(b.Build().ok());
}

TEST(TaxonomyFactoryTest, FoursquareLikeHasTenTreesAndPaperCategories) {
  const CategoryForest f = MakeFoursquareLikeForest();
  EXPECT_EQ(f.num_trees(), 10);
  for (const char* name :
       {"Food", "Asian Restaurant", "Italian Restaurant", "Gift Shop",
        "Hobby Shop", "Cupcake Shop", "Dessert Shop", "Art Museum", "Museum",
        "Jazz Club", "Music Venue", "Beer Garden", "Sushi Restaurant",
        "Sake Bar", "Bar", "Hotel"}) {
    EXPECT_NE(f.FindByName(name), kInvalidCategory) << name;
  }
  // Figure 2 relations.
  const CategoryId food = f.FindByName("Food");
  const CategoryId asian = f.FindByName("Asian Restaurant");
  const CategoryId sushi = f.FindByName("Sushi Restaurant");
  EXPECT_TRUE(f.IsAncestorOrSelf(food, asian));
  EXPECT_TRUE(f.IsAncestorOrSelf(asian, sushi));
  const CategoryId bar = f.FindByName("Bar");
  EXPECT_TRUE(f.IsAncestorOrSelf(bar, f.FindByName("Beer Garden")));
  EXPECT_TRUE(f.IsAncestorOrSelf(bar, f.FindByName("Sake Bar")));
}

TEST(TaxonomyFactoryTest, CalLikeHas63Leaves) {
  const CategoryForest f = MakeCalLikeForest();
  EXPECT_EQ(f.num_trees(), 7);
  int64_t leaves = 0;
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    if (f.IsLeaf(c)) ++leaves;
  }
  EXPECT_EQ(leaves, 63);  // the Cal dataset's 63 categories
  EXPECT_EQ(f.num_categories(), 7 * (1 + 3 + 9));
  // Height 3: every leaf at depth 3.
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    if (f.IsLeaf(c)) {
      EXPECT_EQ(f.Depth(c), 3);
    }
  }
}

TEST(TextFormatTest, RoundTripsSyntheticForestWithStableIds) {
  // Dataset directories store graph.bin (category ids baked into PoIs) next
  // to taxonomy.txt; the text round-trip must preserve ids exactly.
  const CategoryForest f = MakeCalLikeForest();
  auto parsed = ForestFromText(ForestToText(f));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_categories(), f.num_categories());
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    EXPECT_EQ(parsed->Name(c), f.Name(c)) << c;
    EXPECT_EQ(parsed->Parent(c), f.Parent(c)) << c;
  }
}

TEST(TextFormatTest, RoundTripsFoursquareLikeForest) {
  const CategoryForest f = MakeFoursquareLikeForest();
  const std::string text = ForestToText(f);
  auto parsed = ForestFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_categories(), f.num_categories());
  ASSERT_EQ(parsed->num_trees(), f.num_trees());
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    EXPECT_EQ(parsed->Name(c), f.Name(c));
    EXPECT_EQ(parsed->Parent(c), f.Parent(c));
    EXPECT_EQ(parsed->Depth(c), f.Depth(c));
  }
}

TEST(TextFormatTest, ParsesCommentsAndBlankLines) {
  auto f = ForestFromText("# taxonomy\nFood\n\n  Asian\n  Italian\nShops\n");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->num_trees(), 2);
  EXPECT_EQ(f->num_categories(), 4);
  EXPECT_EQ(f->Parent(f->FindByName("Asian")), f->FindByName("Food"));
}

TEST(TextFormatTest, RejectsIndentationJump) {
  EXPECT_FALSE(ForestFromText("Food\n    TooDeep\n").ok());
  EXPECT_FALSE(ForestFromText("Food\n   OddIndent\n").ok());
}

}  // namespace
}  // namespace skysr

// Cross-query shared-cache subsystem (src/cache/): CLOCK cache unit
// behavior, snapshot lookup, generation invalidation, persistent resumable
// slots, and — the serving contract — cold/warm bit-identity on one engine
// replaying repeated-source workloads, standalone and through QueryService.

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/fwd_search_cache.h"
#include "cache/shared_query_cache.h"
#include "core/bssr_engine.h"
#include "retrieval/bucket_retriever.h"
#include "scenario/scenario.h"
#include "service/query_service.h"

namespace skysr {
namespace {

ScenarioSpec ServingSpec(GraphFamily family, uint64_t seed) {
  ScenarioSpec spec;
  spec.name = std::string("serving-") + GraphFamilyName(family);
  spec.graph.family = family;
  spec.graph.target_vertices = 360;
  spec.graph.extra_edge_fraction = 0.3;
  spec.graph.weights = WeightModel::kEuclidean;
  spec.taxonomy.num_trees = 3;
  spec.taxonomy.max_fanout = 3;
  spec.taxonomy.max_levels = 3;
  spec.pois.num_pois = 90;
  spec.pois.zipf_theta = 0.3;
  spec.pois.multi_category_rate = 0.2;  // keeps queries in deferred mode
  spec.workload.num_queries = 10;
  spec.workload.min_sequence = 2;
  spec.workload.max_sequence = 3;
  spec.workload.multi_any_rate = 0.2;
  spec.workload.all_of_rate = 0.2;
  spec.workload.none_of_rate = 0.2;
  spec.workload.destination_rate = 0.25;
  SeedScenarioSpec(&spec, seed);
  return spec;
}

void ExpectSameRoutes(const QueryResult& a, const QueryResult& b,
                      const char* what) {
  ASSERT_EQ(a.routes.size(), b.routes.size()) << what;
  for (size_t r = 0; r < a.routes.size(); ++r) {
    EXPECT_EQ(a.routes[r].scores.length, b.routes[r].scores.length)
        << what << " route " << r;
    EXPECT_EQ(a.routes[r].scores.semantic, b.routes[r].scores.semantic)
        << what << " route " << r;
    EXPECT_EQ(a.routes[r].pois, b.routes[r].pois) << what << " route " << r;
  }
}

// Insert/Lookup round-trips, capacity enforcement, and CLOCK second chance:
// the referenced entry survives the eviction sweep, the unreferenced one is
// the victim.
TEST(FwdSearchCacheTest, InsertLookupAndClockEviction) {
  const FwdSearchSettle a[] = {{1, 1.0, 1.0}, {2, 2.5, 2.5}};
  const FwdSearchSettle b[] = {{3, 3.0, 3.25}};
  FwdSearchCache cache(/*capacity=*/2);

  EXPECT_TRUE(cache.Lookup(10).empty());  // cold miss
  EXPECT_EQ(cache.counters().misses, 1);

  const auto stored = cache.Insert(10, a);
  ASSERT_EQ(stored.size(), 2u);
  EXPECT_EQ(stored[0].vertex, 1);
  EXPECT_EQ(stored[1].fsum, 2.5);
  cache.Insert(11, b);
  EXPECT_EQ(cache.size(), 2u);

  const auto hit = cache.Lookup(10);
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(hit[1].df, 2.5);
  EXPECT_EQ(cache.counters().hits, 1);

  // At capacity: every ref bit is set, so the sweep clears them all and
  // takes the entry under the hand (10).
  cache.Insert(12, b);
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(10).empty());

  // Reference 12 but not 11: the next eviction must spare the referenced
  // entry and take 11 — the second chance.
  ASSERT_FALSE(cache.Lookup(12).empty());
  cache.Insert(13, a);
  EXPECT_EQ(cache.counters().evictions, 2);
  EXPECT_TRUE(cache.Lookup(11).empty());
  EXPECT_FALSE(cache.Lookup(12).empty());
  EXPECT_FALSE(cache.Lookup(13).empty());

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.Lookup(12).empty());
  EXPECT_EQ(cache.counters().evictions, 2);  // counters survive Clear
}

TEST(FwdSearchCacheTest, SnapshotFindsOnlyPrewarmedSources) {
  const FwdSearchSettle a[] = {{7, 1.0, 1.0}};
  const FwdSearchSettle b[] = {{8, 2.0, 2.0}, {9, 3.0, 3.0}};
  FwdSnapshot snap;
  snap.Add(20, a);
  snap.Add(5, b);
  snap.Add(20, b);  // duplicate source: ignored
  snap.Finalize();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.Find(20).size(), 1u);
  EXPECT_EQ(snap.Find(20)[0].vertex, 7);
  EXPECT_EQ(snap.Find(5).size(), 2u);
  EXPECT_TRUE(snap.Find(21).empty());
}

// Rebinding to a different structure checksum must drop every piece of warm
// state — resident entries AND a snapshot built against the old structure —
// and a snapshot whose checksum mismatches the live binding is refused.
TEST(SharedQueryCacheTest, RebindInvalidatesAndRefusesMismatchedSnapshots) {
  const FwdSearchSettle a[] = {{1, 1.0, 1.0}};
  SharedQueryCache cache;
  cache.Bind(111);
  cache.fwd_cache().Insert(5, a);

  auto snap = std::make_shared<FwdSnapshot>();
  snap->Add(5, a);
  snap->Finalize();
  snap->set_structure_checksum(111);
  cache.SetSnapshot(snap);
  ASSERT_NE(cache.snapshot(), nullptr);

  cache.Bind(111);  // same structure: warm state survives
  EXPECT_EQ(cache.fwd_cache().size(), 1u);
  EXPECT_NE(cache.snapshot(), nullptr);

  cache.Bind(222);  // new structure: everything warm is dropped
  EXPECT_EQ(cache.fwd_cache().size(), 0u);
  EXPECT_EQ(cache.snapshot(), nullptr);

  cache.SetSnapshot(snap);  // checksum 111 against binding 222: refused
  EXPECT_EQ(cache.snapshot(), nullptr);
}

// Engine-lifetime resumable slots: PrepareServing keeps suspended state
// across queries, reuses are counted once per slot per query, CLOCK spares
// the slot the current query touched, and per-query mode still refuses
// (returns null) at capacity instead of evicting.
TEST(ResumablePoolTest, PersistentModeKeepsReusesAndEvicts) {
  const Scenario sc = MakeScenario(ServingSpec(GraphFamily::kGrid, 930));
  const Graph& g = sc.dataset.graph;

  ResumablePool pool;
  pool.PrepareServing(2);
  EXPECT_TRUE(pool.persistent());
  ResumableSlot* s0 = pool.FindOrCreate(g, 0);
  ResumableSlot* s1 = pool.FindOrCreate(g, 1);
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(pool.reuses(), 0);  // creations are not reuses

  // Next query: suspended state survives, and touching a kept slot counts
  // as exactly one reuse.
  pool.PrepareServing(2);
  pool.BeginQuery();
  EXPECT_EQ(pool.FindOrCreate(g, 0), s0);
  EXPECT_EQ(pool.FindOrCreate(g, 0), s0);
  EXPECT_EQ(pool.reuses(), 1);

  // At capacity, the untouched slot (1) is the CLOCK victim; its object is
  // recycled for the new source.
  ResumableSlot* s2 = pool.FindOrCreate(g, 2);
  EXPECT_EQ(pool.evictions(), 1);
  EXPECT_EQ(s2, s1);
  EXPECT_EQ(s2->source, 2);

  // Per-query mode: capacity overflow falls back (nullptr), never evicts.
  pool.Reset(1);
  EXPECT_FALSE(pool.persistent());
  EXPECT_NE(pool.FindOrCreate(g, 3), nullptr);
  EXPECT_EQ(pool.FindOrCreate(g, 4), nullptr);
  EXPECT_EQ(pool.evictions(), 1);
}

TEST(SharedQueryCacheTest, WarmStateChecksumSeparatesStructures) {
  const Scenario sc = MakeScenario(ServingSpec(GraphFamily::kCluster, 933));
  const Graph& g = sc.dataset.graph;
  const ChOracle ch = ChOracle::Build(g);
  EXPECT_EQ(WarmStateChecksum(g, &ch), WarmStateChecksum(g, &ch));
  EXPECT_NE(WarmStateChecksum(g, &ch), WarmStateChecksum(g, nullptr));
}

// The serving contract: one engine with an attached cache (prewarm snapshot
// included) replays the workload three times — cold on round 0, warm after —
// and every reply must be bit-identical to a cacheless engine's. The cache
// must actually engage (forward hits) for the exercise to mean anything.
TEST(XCacheServingTest, ColdAndWarmRepliesAreBitIdentical) {
  for (const GraphFamily family :
       {GraphFamily::kGrid, GraphFamily::kCluster, GraphFamily::kSmallWorld}) {
    const Scenario sc = MakeScenario(ServingSpec(family, 931));
    const Graph& g = sc.dataset.graph;
    const ChOracle ch = ChOracle::Build(g);
    const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);

    BssrEngine baseline(g, sc.dataset.forest, &ch, &buckets);
    BssrEngine serving(g, sc.dataset.forest, &ch, &buckets);
    SharedQueryCache cache;
    serving.AttachSharedCache(&cache);
    std::vector<VertexId> prewarm;
    prewarm.reserve(static_cast<size_t>(g.num_pois()));
    for (PoiId p = 0; p < g.num_pois(); ++p) {
      prewarm.push_back(g.VertexOfPoi(p));
    }
    cache.SetSnapshot(std::make_shared<const FwdSnapshot>(
        BuildFwdSnapshot(buckets, prewarm, WarmStateChecksum(g, &ch))));
    ASSERT_NE(cache.snapshot(), nullptr);

    for (int round = 0; round < 3; ++round) {
      for (size_t qi = 0; qi < sc.queries.size(); ++qi) {
        const auto want = baseline.Run(sc.queries[qi]);
        const auto got = serving.Run(sc.queries[qi]);
        ASSERT_TRUE(want.ok() && got.ok());
        ExpectSameRoutes(*got, *want, sc.spec.name.c_str());
      }
    }
    EXPECT_GT(cache.Counters().fwd_hits, 0) << sc.spec.name;
  }
}

// Same replay pinned to the resumable backend: suspended searches persist
// across queries (reuses counted), results stay bit-identical, and the
// per-request opt-out reproduces cacheless behavior on the same engine.
TEST(XCacheServingTest, PersistentResumableSlotsStayBitIdentical) {
  const Scenario sc = MakeScenario(ServingSpec(GraphFamily::kCluster, 932));
  const Graph& g = sc.dataset.graph;
  const ChOracle ch = ChOracle::Build(g);
  const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);

  BssrEngine baseline(g, sc.dataset.forest, &ch, &buckets);
  BssrEngine serving(g, sc.dataset.forest, &ch, &buckets);
  SharedQueryCache cache;
  serving.AttachSharedCache(&cache);

  QueryOptions opts;
  opts.retriever = RetrieverKind::kResume;
  for (int round = 0; round < 2; ++round) {
    for (const Query& q : sc.queries) {
      const auto want = baseline.Run(q, opts);
      const auto got = serving.Run(q, opts);
      ASSERT_TRUE(want.ok() && got.ok());
      ExpectSameRoutes(*got, *want, "resume round");
    }
  }
  EXPECT_GT(cache.Counters().resume_reuses, 0);

  // Opt-out: the very same engine, asked not to touch its cache, must also
  // match (and must not move the cache's counters).
  const SharedCacheCounters before = cache.Counters();
  QueryOptions opt_out = opts;
  opt_out.use_shared_cache = false;
  for (const Query& q : sc.queries) {
    const auto want = baseline.Run(q, opts);
    const auto got = serving.Run(q, opt_out);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameRoutes(*got, *want, "opt-out");
  }
  const SharedCacheCounters after = cache.Counters();
  EXPECT_EQ(after.fwd_hits, before.fwd_hits);
  EXPECT_EQ(after.fwd_misses, before.fwd_misses);
  EXPECT_EQ(after.resume_reuses, before.resume_reuses);
}

// QueryService end to end: the same repeated-source workload through a
// shared-cache service and a cacheless one must produce bit-identical
// results, the warm service must report cache activity in its metrics, and
// the cacheless one must report none.
TEST(XCacheServingTest, QueryServiceSharedCacheOnOffBitIdentical) {
  const Scenario sc = MakeScenario(ServingSpec(GraphFamily::kSmallWorld, 934));
  const Graph& g = sc.dataset.graph;
  const ChOracle ch = ChOracle::Build(g);
  const CategoryBucketIndex buckets = CategoryBucketIndex::Build(g, ch);

  std::vector<Query> workload;
  for (int round = 0; round < 3; ++round) {
    workload.insert(workload.end(), sc.queries.begin(), sc.queries.end());
  }

  ServiceConfig base;
  base.num_threads = 2;
  base.cache_capacity = 0;  // force engine runs: exercise the warm paths
  base.oracle = &ch;
  base.buckets = &buckets;

  ServiceConfig on = base;
  on.shared_query_cache = true;
  on.xcache_prewarm_pois = 64;
  ServiceConfig off = base;
  off.shared_query_cache = false;

  QueryService warm(g, sc.dataset.forest, on);
  QueryService cold(g, sc.dataset.forest, off);
  EXPECT_NE(warm.warm_snapshot(), nullptr);
  EXPECT_EQ(cold.warm_snapshot(), nullptr);

  const auto warm_results = warm.RunBatch(workload);
  const auto cold_results = cold.RunBatch(workload);
  ASSERT_EQ(warm_results.size(), cold_results.size());
  for (size_t i = 0; i < warm_results.size(); ++i) {
    ASSERT_TRUE(warm_results[i].ok() && cold_results[i].ok());
    ExpectSameRoutes(warm_results[i].ValueOrDie(),
                     cold_results[i].ValueOrDie(), "service");
  }

  const MetricsSnapshot wm = warm.Metrics();
  EXPECT_GT(wm.xcache_fwd_hits, 0);
  EXPECT_GT(wm.xcache_fwd_hit_rate, 0.0);
  EXPECT_GE(wm.xcache_resident_bytes, 0);
  const MetricsSnapshot cm = cold.Metrics();
  EXPECT_EQ(cm.xcache_fwd_hits + cm.xcache_fwd_misses, 0);
}

}  // namespace
}  // namespace skysr

// Property tests of the shortest-path toolkit against an independent
// Bellman-Ford reference, plus bounded/multi-source/resumable variants.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dijkstra.h"
#include "graph/graph_builder.h"
#include "graph/resumable_dijkstra.h"
#include "util/rng.h"

namespace skysr {
namespace {

Graph RandomConnectedGraph(uint64_t seed, int n, int extra, bool directed) {
  Rng rng(seed);
  GraphBuilder b(directed);
  for (int i = 0; i < n; ++i) b.AddVertex();
  for (int i = 0; i < n; ++i) {
    b.AddEdge(i, (i + 1) % n, 0.5 + rng.UniformDouble() * 5.0);
    if (directed) b.AddEdge((i + 1) % n, i, 0.5 + rng.UniformDouble() * 5.0);
  }
  for (int e = 0; e < extra; ++e) {
    const auto u = static_cast<VertexId>(rng.UniformU64(n));
    const auto v = static_cast<VertexId>(rng.UniformU64(n));
    if (u != v) b.AddEdge(u, v, 0.5 + rng.UniformDouble() * 8.0);
  }
  return std::move(b.Build()).ValueOrDie();
}

class DijkstraVsBellmanFord
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DijkstraVsBellmanFord, DistancesAgree) {
  const auto [seed, directed] = GetParam();
  const Graph g =
      RandomConnectedGraph(static_cast<uint64_t>(seed), 40, 60, directed);
  Rng rng(static_cast<uint64_t>(seed) + 100);
  for (int rep = 0; rep < 3; ++rep) {
    const auto src = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(g.num_vertices())));
    const DistanceField field = SingleSourceDistances(g, src);
    const std::vector<Weight> reference = BellmanFordDistances(g, src);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(field.dist[static_cast<size_t>(v)],
                  reference[static_cast<size_t>(v)], 1e-9)
          << "src=" << src << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DijkstraVsBellmanFord,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Bool()));

TEST(DijkstraTest, PathReconstructionIsConsistent) {
  const Graph g = RandomConnectedGraph(5, 30, 40, false);
  const DistanceField field = SingleSourceDistances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto path = field.PathTo(v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), v);
    // Sum of edge weights along the path equals the reported distance.
    Weight sum = 0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      Weight best = kInfWeight;
      for (const Neighbor& nb : g.OutEdges(path[i])) {
        if (nb.to == path[i + 1]) best = std::min(best, nb.weight);
      }
      ASSERT_NE(best, kInfWeight);
      sum += best;
    }
    EXPECT_NEAR(sum, field.dist[static_cast<size_t>(v)], 1e-9);
  }
}

TEST(DijkstraTest, BoundedSearchStopsAtRadius) {
  const Graph g = RandomConnectedGraph(6, 50, 70, false);
  const DistanceField full = SingleSourceDistances(g, 0);
  Weight median = 0;
  {
    std::vector<Weight> d = full.dist;
    std::nth_element(d.begin(), d.begin() + d.size() / 2, d.end());
    median = d[d.size() / 2];
  }
  const DistanceField bounded = BoundedDistances(g, 0, median);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Weight fd = full.dist[static_cast<size_t>(v)];
    const Weight bd = bounded.dist[static_cast<size_t>(v)];
    if (fd <= median) {
      EXPECT_NEAR(bd, fd, 1e-12);
    } else {
      EXPECT_EQ(bd, kInfWeight);
    }
  }
}

TEST(DijkstraTest, PointToPointMatchesField) {
  const Graph g = RandomConnectedGraph(7, 40, 50, false);
  const DistanceField field = SingleSourceDistances(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); v += 5) {
    EXPECT_NEAR(PointToPointDistance(g, 3, v),
                field.dist[static_cast<size_t>(v)], 1e-12);
  }
}

TEST(MultiSourceTest, FindsClosestTargetFromAnySeed) {
  const Graph g = RandomConnectedGraph(8, 60, 80, false);
  Rng rng(8);
  std::vector<SourceSeed> seeds;
  for (int i = 0; i < 5; ++i) {
    seeds.push_back(SourceSeed{
        static_cast<VertexId>(rng.UniformU64(
            static_cast<uint64_t>(g.num_vertices()))),
        0});
  }
  std::vector<char> is_target(static_cast<size_t>(g.num_vertices()), 0);
  for (int i = 0; i < 4; ++i) {
    is_target[rng.UniformU64(static_cast<uint64_t>(g.num_vertices()))] = 1;
  }
  const auto hit = MultiSourceNearest(
      g, seeds, [&](VertexId v) { return is_target[static_cast<size_t>(v)] != 0; });
  ASSERT_TRUE(hit.has_value());

  // Reference: min over seeds × targets of pairwise distance.
  Weight best = kInfWeight;
  for (const SourceSeed& s : seeds) {
    const DistanceField f = SingleSourceDistances(g, s.vertex);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (is_target[static_cast<size_t>(v)]) {
        best = std::min(best, f.dist[static_cast<size_t>(v)]);
      }
    }
  }
  EXPECT_NEAR(hit->dist, best, 1e-9);
}

TEST(MultiSourceTest, ReturnsNulloptWithoutTargets) {
  const Graph g = RandomConnectedGraph(9, 20, 10, false);
  const SourceSeed seed{0, 0};
  const auto hit = MultiSourceNearest(
      g, std::span<const SourceSeed>(&seed, 1),
      [](VertexId) { return false; });
  EXPECT_FALSE(hit.has_value());
}

TEST(ResumableDijkstraTest, SettlesInNonDecreasingOrderAndMatchesField) {
  const Graph g = RandomConnectedGraph(10, 50, 60, false);
  const DistanceField field = SingleSourceDistances(g, 7);
  ResumableDijkstra rd(g, 7);
  Weight last = 0;
  int64_t count = 0;
  while (auto s = rd.Next()) {
    EXPECT_GE(s->dist, last);
    last = s->dist;
    EXPECT_NEAR(s->dist, field.dist[static_cast<size_t>(s->vertex)], 1e-12);
    ++count;
  }
  EXPECT_EQ(count, g.num_vertices());
  EXPECT_GT(rd.MemoryBytes(), 0);
}

TEST(DijkstraRunnerTest, SkipExpandPrunesTraversal) {
  // Line 0-1-2-3; skipping expansion at 1 must leave 2,3 unreached.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex();
  for (int i = 0; i < 3; ++i) b.AddEdge(i, i + 1, 1.0);
  const Graph g = std::move(b.Build()).ValueOrDie();
  DijkstraWorkspace ws;
  std::vector<VertexId> settled;
  RunDijkstra(g, 0, ws, [&](VertexId v, Weight, VertexId) {
    settled.push_back(v);
    return v == 1 ? VisitAction::kSkipExpand : VisitAction::kContinue;
  });
  EXPECT_EQ(settled, (std::vector<VertexId>{0, 1}));
}

TEST(DijkstraRunnerTest, StatsCountWork) {
  const Graph g = RandomConnectedGraph(11, 30, 30, false);
  DijkstraWorkspace ws;
  const DijkstraRunStats stats = RunDijkstra(
      g, 0, ws, [](VertexId, Weight, VertexId) { return VisitAction::kContinue; });
  EXPECT_EQ(stats.settled, g.num_vertices());
  EXPECT_GT(stats.relaxed, 0);
  EXPECT_GT(stats.weight_sum, 0);
  EXPECT_GT(stats.max_settled_dist, 0);
}

TEST(DijkstraRunnerTest, WeightedSeedsActAsHeadStarts) {
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.AddVertex();
  b.AddEdge(0, 1, 10.0);
  b.AddEdge(1, 2, 10.0);
  const Graph g = std::move(b.Build()).ValueOrDie();
  DijkstraWorkspace ws;
  const std::vector<SourceSeed> seeds = {{0, 0.0}, {2, 1.0}};
  std::vector<std::pair<VertexId, Weight>> settled;
  RunDijkstra(g, seeds, ws, [&](VertexId v, Weight d, VertexId) {
    settled.emplace_back(v, d);
    return VisitAction::kContinue;
  });
  ASSERT_EQ(settled.size(), 3u);
  EXPECT_EQ(settled[0], (std::pair<VertexId, Weight>{0, 0.0}));
  EXPECT_EQ(settled[1], (std::pair<VertexId, Weight>{2, 1.0}));
  EXPECT_EQ(settled[2], (std::pair<VertexId, Weight>{1, 10.0}));
}

}  // namespace
}  // namespace skysr

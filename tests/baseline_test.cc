// Baseline engines: OSR-Dijkstra and OSR-PNE against brute-force OSR, the
// super-sequence enumerator, and the naive SkySR baselines against BSSR.

#include <limits>

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "baseline/naive_skysr.h"
#include "baseline/osr_dijkstra.h"
#include "baseline/osr_pne.h"
#include "baseline/super_sequence.h"
#include "category/taxonomy_factory.h"
#include "core/bssr_engine.h"
#include "tests/test_util.h"

namespace skysr {
namespace {

using ::skysr::testing::MakeTinyDataset;
using ::skysr::testing::ScoreVectorsNear;
using ::skysr::testing::SkylinesEquivalent;
using ::skysr::testing::TinyDataset;

std::vector<PositionMatcher> MakeMatchers(const TinyDataset& ds,
                                          const SimilarityFunction& fn,
                                          std::span<const CategoryId> cats) {
  std::vector<PositionMatcher> matchers;
  for (CategoryId c : cats) {
    matchers.emplace_back(ds.graph, ds.forest, fn,
                          CategoryPredicate::Single(c),
                          MultiCategoryMode::kMaxSimilarity);
  }
  return matchers;
}

class OsrEnginesVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(OsrEnginesVsBruteForce, BothEnginesFindTheOptimum) {
  const uint64_t seed = 5000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 28, 24, 14);
  Rng rng(seed);
  const WuPalmerSimilarity fn;

  for (int rep = 0; rep < 4; ++rep) {
    // Categories from pairwise-distinct trees: the paper's experimental
    // setting (overlapping positions are covered by OsrOverlap below).
    const int k = 2 + static_cast<int>(rng.UniformU64(2));
    std::vector<CategoryId> cats;
    std::vector<TreeId> used;
    int guard = 0;
    while (static_cast<int>(cats.size()) < k && ++guard < 1000) {
      const auto c = static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
      const TreeId t = ds.forest.TreeOf(c);
      bool dup = false;
      for (TreeId u : used) dup = dup || u == t;
      if (dup) continue;
      cats.push_back(c);
      used.push_back(t);
    }
    if (static_cast<int>(cats.size()) != k) continue;
    const auto start = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
    const auto matchers = MakeMatchers(ds, fn, cats);

    const OsrResult dij =
        RunOsrDijkstra(ds.graph, matchers, start, std::nullopt, 10.0);
    const OsrResult pne =
        RunOsrPne(ds.graph, matchers, start, std::nullopt, 10.0);
    const Query q = MakeSimpleQuery(start, cats);
    auto brute = BruteForceOsr(ds.graph, ds.forest, q, QueryOptions());
    ASSERT_TRUE(brute.ok());

    if (brute->empty()) {
      EXPECT_FALSE(dij.pois.has_value());
      EXPECT_FALSE(pne.pois.has_value());
      continue;
    }
    const Weight expected = (*brute)[0].scores.length;
    ASSERT_TRUE(dij.pois.has_value()) << "seed=" << seed << " rep=" << rep;
    ASSERT_TRUE(pne.pois.has_value()) << "seed=" << seed << " rep=" << rep;
    EXPECT_NEAR(dij.length, expected, 1e-9);
    EXPECT_NEAR(pne.length, expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OsrEnginesVsBruteForce,
                         ::testing::Range(0, 15));

class OsrWithDestination : public ::testing::TestWithParam<int> {};

TEST_P(OsrWithDestination, EnginesHandleDestinationTails) {
  const uint64_t seed = 6000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 24, 20, 12);
  Rng rng(seed);
  const WuPalmerSimilarity fn;
  // Distinct trees; overlap + destination is covered by OsrOverlap below.
  std::vector<CategoryId> cats;
  {
    std::vector<TreeId> used;
    int guard = 0;
    while (cats.size() < 2 && ++guard < 1000) {
      const auto c = static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
      const TreeId t = ds.forest.TreeOf(c);
      bool dup = false;
      for (TreeId u : used) dup = dup || u == t;
      if (dup) continue;
      cats.push_back(c);
      used.push_back(t);
    }
  }
  const auto start = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  const auto dest = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  const auto matchers = MakeMatchers(ds, fn, cats);

  Query q = MakeSimpleQuery(start, cats);
  q.destination = dest;
  auto brute = BruteForceOsr(ds.graph, ds.forest, q, QueryOptions());
  ASSERT_TRUE(brute.ok());
  const OsrResult dij = RunOsrDijkstra(ds.graph, matchers, start, dest, 10.0);
  const OsrResult pne = RunOsrPne(ds.graph, matchers, start, dest, 10.0);
  if (brute->empty()) {
    EXPECT_FALSE(dij.pois.has_value());
    EXPECT_FALSE(pne.pois.has_value());
    return;
  }
  ASSERT_TRUE(dij.pois.has_value());
  ASSERT_TRUE(pne.pois.has_value());
  EXPECT_NEAR(dij.length, (*brute)[0].scores.length, 1e-9) << "seed=" << seed;
  EXPECT_NEAR(pne.length, (*brute)[0].scores.length, 1e-9) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OsrWithDestination, ::testing::Range(0, 15));

TEST(SuperSequenceTest, EnumeratesAncestorProduct) {
  const CategoryForest f = MakeFoursquareLikeForest();
  const CategoryId sushi = f.FindByName("Sushi Restaurant");  // depth 4
  const CategoryId gift = f.FindByName("Gift Shop");          // depth 2
  SuperSequenceEnumerator e(f, std::vector<CategoryId>{sushi, gift});
  EXPECT_EQ(e.Count(), 4 * 2);
  std::vector<std::vector<CategoryId>> all;
  std::vector<CategoryId> seq;
  while (e.Next(&seq)) all.push_back(seq);
  EXPECT_EQ(all.size(), 8u);
  // First combination is the base sequence itself.
  EXPECT_EQ(all[0], (std::vector<CategoryId>{sushi, gift}));
  // All combinations distinct.
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
  // Every entry is an ancestor-or-self of the base.
  for (const auto& s : all) {
    EXPECT_TRUE(f.IsAncestorOrSelf(s[0], sushi));
    EXPECT_TRUE(f.IsAncestorOrSelf(s[1], gift));
  }
}

class NaiveVsBssr : public ::testing::TestWithParam<int> {};

TEST_P(NaiveVsBssr, BothNaiveEnginesMatchBssr) {
  const uint64_t seed = 7000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 30, 26, 14);
  Rng rng(seed);
  // Distinct-tree leaf categories (the naive baseline's exactness regime).
  std::vector<CategoryId> cats;
  std::vector<TreeId> trees;
  int guard = 0;
  while (cats.size() < 2 && ++guard < 1000) {
    const auto c = static_cast<CategoryId>(
        rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
    if (!ds.forest.IsLeaf(c)) continue;
    const TreeId t = ds.forest.TreeOf(c);
    bool dup = false;
    for (TreeId u : trees) dup = dup || t == u;
    if (dup) continue;
    cats.push_back(c);
    trees.push_back(t);
  }
  ASSERT_EQ(cats.size(), 2u);
  const auto start = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  const Query q = MakeSimpleQuery(start, cats);

  BssrEngine engine(ds.graph, ds.forest);
  const QueryOptions opts;
  auto bssr = engine.Run(q, opts);
  ASSERT_TRUE(bssr.ok());
  auto naive_dij = RunNaiveSkySr(ds.graph, ds.forest, q, opts,
                                 OsrEngineKind::kDijkstraBased);
  ASSERT_TRUE(naive_dij.ok()) << naive_dij.status().ToString();
  auto naive_pne =
      RunNaiveSkySr(ds.graph, ds.forest, q, opts, OsrEngineKind::kPne);
  ASSERT_TRUE(naive_pne.ok());

  EXPECT_TRUE(SkylinesEquivalent(bssr->routes, naive_dij->routes))
      << "seed=" << seed;
  EXPECT_TRUE(SkylinesEquivalent(bssr->routes, naive_pne->routes))
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveVsBssr, ::testing::Range(0, 15));

TEST(NaiveSkySrTest, RejectsComplexPredicates) {
  TinyDataset ds = MakeTinyDataset(1);
  Query q = MakeSimpleQuery(0, {0});
  q.sequence[0].none_of.push_back(1);
  auto r = RunNaiveSkySr(ds.graph, ds.forest, q, QueryOptions(),
                         OsrEngineKind::kPne);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(NaiveSkySrTest, TimeBudgetProducesTimedOutFlag) {
  TinyDataset ds = MakeTinyDataset(2, 40, 40, 20);
  Query q = MakeSimpleQuery(0, {0, ds.forest.RootOf(1), ds.forest.RootOf(2)});
  QueryOptions opts;
  opts.time_budget_seconds = 0.0;  // expire immediately
  auto r = RunNaiveSkySr(ds.graph, ds.forest, q, opts,
                         OsrEngineKind::kDijkstraBased);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.timed_out);
}

// Regression coverage for the two inexactness bugs the differential
// scenario harness surfaced (see osr_dijkstra.h / osr_pne.h): same-tree
// positions make the distinct-PoI constraint bind, so BOTH engines — with
// and without a destination — must match brute force.
class OsrOverlap : public ::testing::TestWithParam<int> {};

TEST_P(OsrOverlap, BothEnginesExactWithOverlappingPositions) {
  const uint64_t seed = 5500 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 24, 20, 12, /*num_trees=*/1,
                                   /*branching=*/3, /*levels=*/1);
  Rng rng(seed);
  const WuPalmerSimilarity fn;
  // Both positions draw from the SAME tree (possibly the same category):
  // one PoI can perfectly match both, so route distinctness binds.
  std::vector<CategoryId> cats = {
      static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories()))),
      static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())))};
  const auto start = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  const auto matchers = MakeMatchers(ds, fn, cats);
  for (const std::optional<VertexId> dest :
       {std::optional<VertexId>(), std::optional<VertexId>(
            static_cast<VertexId>(rng.UniformU64(
                static_cast<uint64_t>(ds.graph.num_vertices()))))}) {
    Query q = MakeSimpleQuery(start, cats);
    q.destination = dest;
    auto brute = BruteForceOsr(ds.graph, ds.forest, q, QueryOptions());
    ASSERT_TRUE(brute.ok());
    const OsrResult dij = RunOsrDijkstra(ds.graph, matchers, start, dest,
                                         10.0);
    const OsrResult pne = RunOsrPne(ds.graph, matchers, start, dest, 10.0);
    if (brute->empty()) {
      EXPECT_FALSE(dij.pois.has_value()) << "seed=" << seed;
      EXPECT_FALSE(pne.pois.has_value()) << "seed=" << seed;
    } else {
      ASSERT_TRUE(dij.pois.has_value()) << "seed=" << seed;
      ASSERT_TRUE(pne.pois.has_value()) << "seed=" << seed;
      EXPECT_NEAR(dij.length, (*brute)[0].scores.length, 1e-9)
          << "seed=" << seed;
      EXPECT_NEAR(pne.length, (*brute)[0].scores.length, 1e-9)
          << "seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OsrOverlap, ::testing::Range(0, 20));

// More than 64 PoIs perfectly matching both positions drives OSR-Dijkstra
// past the bitmask regime into exact used-set settling, which must stay
// exact AND terminate under the default infinite time budget.
TEST(OsrOverlapTest, DijkstraExactBeyondSixtyFourSharedPois) {
  TinyDataset ds = MakeTinyDataset(8123, /*n=*/90, /*extra_edges=*/60,
                                   /*num_pois=*/70, /*num_trees=*/1,
                                   /*branching=*/2, /*levels=*/1);
  const WuPalmerSimilarity fn;
  // Both positions ask for the ROOT: every PoI matches both perfectly.
  const CategoryId root = ds.forest.RootOf(0);
  const auto matchers =
      MakeMatchers(ds, fn, std::vector<CategoryId>{root, root});
  const OsrResult dij = RunOsrDijkstra(
      ds.graph, matchers, 0, std::nullopt,
      std::numeric_limits<double>::infinity());
  auto brute = BruteForceOsr(ds.graph, ds.forest,
                             MakeSimpleQuery(0, {root, root}),
                             QueryOptions());
  ASSERT_TRUE(brute.ok());
  ASSERT_FALSE(brute->empty());
  ASSERT_TRUE(dij.pois.has_value());
  EXPECT_NEAR(dij.length, (*brute)[0].scores.length, 1e-9);
}

// The naive SkySR baseline inherits exactness from the OSR engines even on
// same-tree workloads (where the pre-fix engines went wrong): brute force
// remains the arbiter.
class NaiveSameTree : public ::testing::TestWithParam<int> {};

TEST_P(NaiveSameTree, NaiveMatchesBruteForceOnSameTreeQueries) {
  const uint64_t seed = 7700 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 22, 18, 10, /*num_trees=*/1,
                                   /*branching=*/2, /*levels=*/2);
  Rng rng(seed);
  std::vector<CategoryId> cats = {
      static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories()))),
      static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())))};
  const auto start = static_cast<VertexId>(
      rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
  const Query q = MakeSimpleQuery(start, cats);
  const QueryOptions opts;
  auto brute = BruteForceSkySr(ds.graph, ds.forest, q, opts);
  ASSERT_TRUE(brute.ok());
  for (OsrEngineKind kind :
       {OsrEngineKind::kDijkstraBased, OsrEngineKind::kPne}) {
    auto naive = RunNaiveSkySr(ds.graph, ds.forest, q, opts, kind);
    ASSERT_TRUE(naive.ok());
    EXPECT_TRUE(SkylinesEquivalent(naive->routes, *brute)) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveSameTree, ::testing::Range(0, 15));

TEST(OsrDijkstraTest, ReportsMemoryAndEffort) {
  TinyDataset ds = MakeTinyDataset(3);
  const WuPalmerSimilarity fn;
  const auto matchers =
      MakeMatchers(ds, fn, std::vector<CategoryId>{ds.forest.RootOf(0)});
  const OsrResult r =
      RunOsrDijkstra(ds.graph, matchers, 0, std::nullopt, 10.0);
  EXPECT_GT(r.vertices_settled, 0);
  EXPECT_GT(r.peak_queue_size, 0);
  EXPECT_GT(r.logical_peak_bytes, 0);
}

}  // namespace
}  // namespace skysr

// Tests of the similarity functions (Definition 3.3 axioms, Eq. (6)
// algebra), similarity tables, and the semantic aggregators (Eq. (7),
// Lemma 5.8's δ).

#include <gtest/gtest.h>

#include "category/similarity.h"
#include "category/taxonomy_factory.h"

namespace skysr {
namespace {

class SimilarityAxioms
    : public ::testing::TestWithParam<std::shared_ptr<SimilarityFunction>> {};

TEST_P(SimilarityAxioms, Definition33HoldsOnFoursquareForest) {
  const CategoryForest f = MakeFoursquareLikeForest();
  const SimilarityFunction& fn = *GetParam();
  for (CategoryId a = 0; a < f.num_categories(); ++a) {
    for (CategoryId b = 0; b < f.num_categories(); ++b) {
      const double s = fn.Similarity(f, a, b);
      if (f.TreeOf(a) != f.TreeOf(b)) {
        EXPECT_EQ(s, 0.0) << fn.name();  // irrelevant
      } else {
        EXPECT_GT(s, 0.0) << fn.name();  // semantic match
        EXPECT_LE(s, 1.0) << fn.name();
      }
      if (a == b) {
        EXPECT_EQ(s, 1.0) << fn.name();  // perfect match
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, SimilarityAxioms,
    ::testing::Values(std::make_shared<WuPalmerSimilarity>(),
                      std::make_shared<SymmetricWuPalmerSimilarity>(),
                      std::make_shared<PathLengthSimilarity>()));

TEST(WuPalmerEq6Test, MatchesClosedForm) {
  // Eq. (6) reduces to 2 d(A) / (d(c) + d(A)) — check on a known chain:
  // Food(1) > Asian(2) > Japanese(3) > Sushi(4).
  const CategoryForest f = MakeFoursquareLikeForest();
  const WuPalmerSimilarity fn;
  const CategoryId food = f.FindByName("Food");
  const CategoryId asian = f.FindByName("Asian Restaurant");
  (void)f.FindByName("Japanese Restaurant");
  const CategoryId sushi = f.FindByName("Sushi Restaurant");
  const CategoryId italian = f.FindByName("Italian Restaurant");

  // Query Sushi (depth 4) vs Ramen sibling at depth 4: LCA Japanese (3).
  const CategoryId ramen = f.FindByName("Ramen Restaurant");
  EXPECT_DOUBLE_EQ(fn.Similarity(f, sushi, ramen), 2.0 * 3 / (4 + 3));
  // Query Sushi vs Italian: LCA Food (1).
  EXPECT_DOUBLE_EQ(fn.Similarity(f, sushi, italian), 2.0 * 1 / (4 + 1));
  // Query Asian vs Sushi (descendant): perfect match.
  EXPECT_DOUBLE_EQ(fn.Similarity(f, asian, sushi), 1.0);
  // Query Sushi vs Asian (ancestor): NOT perfect — 2*2/(4+2).
  EXPECT_DOUBLE_EQ(fn.Similarity(f, sushi, asian), 2.0 * 2 / (4 + 2));
  // Asymmetry is intentional.
  EXPECT_NE(fn.Similarity(f, sushi, asian), fn.Similarity(f, asian, sushi));
  EXPECT_DOUBLE_EQ(fn.Similarity(f, food, sushi), 1.0);
}

TEST(WuPalmerEq6Test, DescendantPoisArePerfectMatches) {
  // "A PoI associated with category c is associated with all ancestors of c"
  // — querying any ancestor must treat the PoI as a perfect match.
  const CategoryForest f = MakeFoursquareLikeForest();
  const WuPalmerSimilarity fn;
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    for (CategoryId anc = c; anc != kInvalidCategory; anc = f.Parent(anc)) {
      EXPECT_EQ(fn.Similarity(f, anc, c), 1.0);
    }
  }
}

TEST(SimilarityTableTest, AgreesWithDirectEvaluationEverywhere) {
  const CategoryForest f = MakeFoursquareLikeForest();
  const WuPalmerSimilarity fn;
  const CategoryId query = f.FindByName("Sushi Restaurant");
  const SimilarityTable table(f, fn, query);
  double expected_max_np = 0;
  for (CategoryId c = 0; c < f.num_categories(); ++c) {
    const double s = fn.Similarity(f, query, c);
    EXPECT_DOUBLE_EQ(table.SimOf(c), s);
    if (s < 1.0) expected_max_np = std::max(expected_max_np, s);
  }
  EXPECT_DOUBLE_EQ(table.max_non_perfect_sim(), expected_max_np);
  // For Eq. (6) the best non-perfect match is the parent category.
  const CategoryId parent = f.Parent(query);
  EXPECT_DOUBLE_EQ(table.max_non_perfect_sim(),
                   fn.Similarity(f, query, parent));
}

TEST(AggregatorTest, ProductMatchesEq7) {
  const SemanticAggregator agg(SemanticAggregation::kProduct);
  double acc = agg.Identity();
  acc = agg.Extend(acc, 0.8);
  acc = agg.Extend(acc, 0.5);
  EXPECT_DOUBLE_EQ(agg.Score(acc), 1.0 - 0.4);
  // All perfect => semantic score 0 (paper assumption).
  EXPECT_DOUBLE_EQ(agg.Score(agg.Extend(agg.Identity(), 1.0)), 0.0);
}

TEST(AggregatorTest, ScoreMonotoneUnderExtension) {
  for (const auto mode :
       {SemanticAggregation::kProduct, SemanticAggregation::kMinSimilarity}) {
    const SemanticAggregator agg(mode);
    double acc = agg.Identity();
    double last = agg.Score(acc);
    for (double h : {1.0, 0.9, 0.7, 1.0, 0.4}) {
      acc = agg.Extend(acc, h);
      const double s = agg.Score(acc);
      EXPECT_GE(s, last);  // Lemma 5.2: extension never improves semantics
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      last = s;
    }
  }
}

TEST(AggregatorTest, DeltaIsAValidLowerBoundOnIncrement) {
  // For any accumulator and any future similarity h <= sigma_max < 1,
  // score(Extend(acc,h)) - score(acc) >= MinIncrementDelta(acc, sigma_max).
  for (const auto mode :
       {SemanticAggregation::kProduct, SemanticAggregation::kMinSimilarity}) {
    const SemanticAggregator agg(mode);
    for (double acc : {1.0, 0.9, 0.5, 0.3}) {
      for (double sigma : {0.9, 0.75, 0.5}) {
        const double delta = agg.MinIncrementDelta(acc, sigma);
        EXPECT_GE(delta, 0.0);
        for (double h : {0.9, 0.75, 0.5, 0.25, 0.1}) {
          if (h > sigma) continue;
          const double inc = agg.Score(agg.Extend(acc, h)) - agg.Score(acc);
          EXPECT_GE(inc + 1e-12, delta)
              << "mode=" << static_cast<int>(mode) << " acc=" << acc
              << " sigma=" << sigma << " h=" << h;
        }
      }
    }
  }
}

TEST(AggregatorTest, MinSimilarityMode) {
  const SemanticAggregator agg(SemanticAggregation::kMinSimilarity);
  double acc = agg.Identity();
  acc = agg.Extend(acc, 0.8);
  acc = agg.Extend(acc, 0.95);
  EXPECT_DOUBLE_EQ(agg.Score(acc), 1.0 - 0.8);
}

TEST(DefaultSimilarityTest, IsEq6WuPalmer) {
  EXPECT_EQ(DefaultSimilarity()->name(), "wu-palmer-eq6");
}

}  // namespace
}  // namespace skysr

// Unit tests for the graph substrate: builder validation, CSR layout,
// PoI payloads, serialization, spatial grid, PoI embedding, file loaders.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/graph_builder.h"
#include "graph/io.h"
#include "graph/poi_embedding.h"
#include "graph/spatial_grid.h"
#include "util/rng.h"

namespace skysr {
namespace {

Graph Line3() {
  GraphBuilder b;
  b.AddVertex();
  b.AddVertex();
  b.AddVertex();
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 2.0);
  return std::move(b.Build()).ValueOrDie();
}

TEST(GraphBuilderTest, BuildsUndirectedCsr) {
  const Graph g = Line3();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_FALSE(g.directed());
  ASSERT_EQ(g.OutDegree(1), 2);
  EXPECT_EQ(g.OutEdges(0).size(), 1u);
  EXPECT_EQ(g.OutEdges(0)[0].to, 1);
  EXPECT_DOUBLE_EQ(g.OutEdges(0)[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 3.0);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphBuilderTest, DirectedEdgesAreOneWay) {
  GraphBuilder b(/*directed=*/true);
  b.AddVertex();
  b.AddVertex();
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.OutDegree(1), 0);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdge) {
  GraphBuilder b;
  b.AddVertex();
  b.AddEdge(0, 5, 1.0);
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphBuilderTest, RejectsNegativeAndNonFiniteWeights) {
  {
    GraphBuilder b;
    b.AddVertex();
    b.AddVertex();
    b.AddEdge(0, 1, -1.0);
    EXPECT_FALSE(b.Build().ok());
  }
  {
    GraphBuilder b;
    b.AddVertex();
    b.AddVertex();
    b.AddEdge(0, 1, std::numeric_limits<double>::quiet_NaN());
    EXPECT_FALSE(b.Build().ok());
  }
}

TEST(GraphBuilderTest, RejectsTwoPoisOnOneVertex) {
  GraphBuilder b;
  b.AddVertex();
  b.AddPoi(0, {0});
  b.AddPoi(0, {1});
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphBuilderTest, RejectsPoiWithoutCategory) {
  GraphBuilder b;
  b.AddVertex();
  b.AddPoi(0, std::span<const CategoryId>{});
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphBuilderTest, PoiPayloadsRoundTrip) {
  GraphBuilder b;
  b.AddVertex();
  b.AddVertex();
  b.AddEdge(0, 1, 1.0);
  b.AddPoi(1, {3, 5}, "Cafe Mitte");
  const Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_pois(), 1);
  EXPECT_EQ(g.PoiAtVertex(0), kInvalidPoi);
  const PoiId p = g.PoiAtVertex(1);
  ASSERT_NE(p, kInvalidPoi);
  EXPECT_EQ(g.VertexOfPoi(p), 1);
  ASSERT_EQ(g.PoiCategories(p).size(), 2u);
  EXPECT_EQ(g.PoiCategories(p)[0], 3);
  EXPECT_EQ(g.PoiPrimaryCategory(p), 3);
  EXPECT_EQ(g.PoiName(p), "Cafe Mitte");
}

TEST(GraphTest, DisconnectedGraphDetected) {
  GraphBuilder b;
  b.AddVertex();
  b.AddVertex();
  b.AddVertex();
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b.Build()).ValueOrDie();
  EXPECT_FALSE(g.IsConnected());
}

TEST(GraphTest, BinarySnapshotRoundTrips) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddVertex(i * 1.0, i * 2.0);
  b.AddEdge(0, 1, 1.5);
  b.AddEdge(1, 2, 2.5);
  b.AddEdge(2, 3, 3.5);
  b.AddEdge(3, 4, 4.5);
  b.AddPoi(2, {7}, "Seven");
  const Graph g = std::move(b.Build()).ValueOrDie();

  const std::string path = ::testing::TempDir() + "/graph_snapshot.bin";
  ASSERT_TRUE(g.SaveBinary(path).ok());
  auto loaded = Graph::LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_EQ(loaded->num_pois(), 1);
  EXPECT_EQ(loaded->PoiName(0), "Seven");
  EXPECT_DOUBLE_EQ(loaded->X(3), 3.0);
  EXPECT_DOUBLE_EQ(loaded->OutEdges(0)[0].weight, 1.5);
  std::remove(path.c_str());
}

TEST(GraphTest, LoadBinaryRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  std::ofstream(path) << "not a snapshot";
  EXPECT_FALSE(Graph::LoadBinary(path).ok());
  std::remove(path.c_str());
}

TEST(ReverseOfTest, ReversesDirectedEdges) {
  GraphBuilder b(/*directed=*/true);
  b.AddVertex();
  b.AddVertex();
  b.AddEdge(0, 1, 3.0);
  b.AddPoi(1, {2}, "P");
  const Graph g = std::move(b.Build()).ValueOrDie();
  const Graph r = ReverseOf(g);
  EXPECT_EQ(r.OutDegree(0), 0);
  ASSERT_EQ(r.OutDegree(1), 1);
  EXPECT_EQ(r.OutEdges(1)[0].to, 0);
  EXPECT_EQ(r.num_pois(), 1);
}

TEST(SpatialGridTest, NearestMatchesBruteForce) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.UniformDouble(0, 100));
    ys.push_back(rng.UniformDouble(0, 100));
  }
  const SpatialGrid grid(xs, ys);
  for (int q = 0; q < 200; ++q) {
    const double x = rng.UniformDouble(-10, 110);
    const double y = rng.UniformDouble(-10, 110);
    int64_t best = -1;
    double best_d2 = 1e300;
    for (size_t i = 0; i < xs.size(); ++i) {
      const double d2 =
          (xs[i] - x) * (xs[i] - x) + (ys[i] - y) * (ys[i] - y);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<int64_t>(i);
      }
    }
    const int64_t got = grid.Nearest(x, y);
    ASSERT_GE(got, 0);
    const double got_d2 = (xs[static_cast<size_t>(got)] - x) *
                              (xs[static_cast<size_t>(got)] - x) +
                          (ys[static_cast<size_t>(got)] - y) *
                              (ys[static_cast<size_t>(got)] - y);
    EXPECT_NEAR(got_d2, best_d2, 1e-12) << "query " << q;
    (void)best;
  }
}

TEST(SpatialGridTest, WithinRadiusIsExact) {
  Rng rng(10);
  std::vector<double> xs, ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(rng.UniformDouble(0, 10));
    ys.push_back(rng.UniformDouble(0, 10));
  }
  const SpatialGrid grid(xs, ys);
  const auto got = grid.WithinRadius(5, 5, 2.0);
  size_t expected = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if ((xs[i] - 5) * (xs[i] - 5) + (ys[i] - 5) * (ys[i] - 5) <= 4.0) {
      ++expected;
    }
  }
  EXPECT_EQ(got.size(), expected);
}

TEST(PoiEmbeddingTest, SplitsEdgesAndPreservesTotals) {
  GraphBuilder b;
  b.AddVertex(0, 0);
  b.AddVertex(10, 0);
  b.AddVertex(10, 10);
  b.AddEdge(0, 1, 10.0);
  b.AddEdge(1, 2, 10.0);
  const Graph base = std::move(b.Build()).ValueOrDie();

  std::vector<PoiPoint> pois;
  pois.push_back(PoiPoint{2.0, 1.0, {0}, "A"});   // near edge (0,1) at t=0.2
  pois.push_back(PoiPoint{7.0, -1.0, {1}, "B"});  // near edge (0,1) at t=0.7
  pois.push_back(PoiPoint{11.0, 5.0, {2}, "C"});  // near edge (1,2) at t=0.5

  auto embedded = EmbedPoisOnEdges(base, pois);
  ASSERT_TRUE(embedded.ok()) << embedded.status().ToString();
  const Graph& g = *embedded;
  EXPECT_EQ(g.num_vertices(), 6);  // 3 original + 3 PoI vertices
  EXPECT_EQ(g.num_pois(), 3);
  // Total weight is preserved: splits partition the original weights.
  EXPECT_NEAR(g.TotalEdgeWeight(), 20.0, 1e-9);
  EXPECT_TRUE(g.IsConnected());
  // Every PoI vertex has degree 2 (chain insertion).
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    EXPECT_EQ(g.OutDegree(g.VertexOfPoi(p)), 2) << "poi " << p;
  }
}

TEST(PoiEmbeddingTest, RejectsDirectedAndPoiBearingBases) {
  GraphBuilder bd(/*directed=*/true);
  bd.AddVertex(0, 0);
  bd.AddVertex(1, 0);
  bd.AddEdge(0, 1, 1.0);
  const Graph directed = std::move(bd.Build()).ValueOrDie();
  std::vector<PoiPoint> pois = {PoiPoint{0.5, 0, {0}, ""}};
  EXPECT_FALSE(EmbedPoisOnEdges(directed, pois).ok());
}

TEST(IoTest, LoadsCalFormatFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string nodes = dir + "/nodes.txt";
  const std::string edges = dir + "/edges.txt";
  const std::string poifile = dir + "/pois.txt";
  std::ofstream(nodes) << "# id x y\n0 0.0 0.0\n1 1.0 0.0\n2 1.0 1.0\n";
  std::ofstream(edges) << "0 0 1 1.0\n1 1 2 1.0\n";
  std::ofstream(poifile) << "0.5 0.1 3 Corner Store\n";

  auto g = LoadDataset(nodes, edges, poifile);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_pois(), 1);
  EXPECT_EQ(g->PoiPrimaryCategory(0), 3);
  EXPECT_EQ(g->PoiName(0), "Corner Store");
  EXPECT_TRUE(g->IsConnected());

  std::remove(nodes.c_str());
  std::remove(edges.c_str());
  std::remove(poifile.c_str());
}

TEST(IoTest, RejectsMalformedNodeFile) {
  const std::string dir = ::testing::TempDir();
  const std::string nodes = dir + "/bad_nodes.txt";
  const std::string edges = dir + "/bad_edges.txt";
  std::ofstream(nodes) << "0 0.0\n";  // missing column
  std::ofstream(edges) << "";
  EXPECT_FALSE(LoadRoadNetwork(nodes, edges).ok());
  std::ofstream(nodes) << "5 0.0 0.0\n";  // non-dense id
  EXPECT_FALSE(LoadRoadNetwork(nodes, edges).ok());
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

}  // namespace
}  // namespace skysr

// Targeted tests of the on-the-fly cache protocol (§5.3.4): hit/rerun
// decisions driven by covered radius, dynamic budget shrinking mid-search,
// and correctness when cached entries are consumed by routes with very
// different budgets.

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "category/taxonomy_factory.h"
#include "core/bssr_engine.h"
#include "core/modified_dijkstra.h"
#include "tests/test_util.h"

namespace skysr {
namespace {

using ::skysr::testing::MakeTinyDataset;
using ::skysr::testing::ScoreVectorsNear;
using ::skysr::testing::TinyDataset;

// A long line graph where the SAME PoI vertex is re-expanded by routes with
// different remaining budgets — exercising the cache's covered-radius
// upgrade path deterministically.
TEST(CacheBehavior, RerunsWhenBudgetExceedsCoveredRadius) {
  // Line: vq - a1 - a2 - e - g1 ... g5, PoIs: a1,a2 (tree A), e (tree E),
  // g1..g5 (tree G at increasing distances).
  CategoryForestBuilder fb;
  const CategoryId ca = fb.AddRoot("A");
  const CategoryId ca1 = fb.AddChild(ca, "A1");
  const CategoryId ce = fb.AddRoot("E");
  const CategoryId cg = fb.AddRoot("G");
  const CategoryId cg1 = fb.AddChild(cg, "G1");
  const CategoryForest forest = std::move(fb.Build()).ValueOrDie();

  // Two branches from vq converge at 'e' so that BOTH A-position routes
  // survive Lemma 5.5 (a perfect match on one branch cannot block the
  // other) and re-expand from the same vertex for the G position.
  //        0 --1.0-- 1(a1) --2.0-- 3(e) --1-- 4 --1-- 5(g1) -- ... 9(g3)
  //        0 --1.5-- 2(a2) --2.0-- 3
  GraphBuilder gb;
  for (int i = 0; i < 10; ++i) gb.AddVertex();
  gb.AddEdge(0, 1, 1.0);
  gb.AddEdge(0, 2, 1.5);
  gb.AddEdge(1, 3, 2.0);
  gb.AddEdge(2, 3, 2.0);
  for (int i = 3; i < 9; ++i) gb.AddEdge(i, i + 1, 1.0);
  gb.AddPoi(1, {ca1}, "a1");       // perfect for A1
  gb.AddPoi(2, {ca}, "a2");        // semantic for A1 (ancestor category)
  gb.AddPoi(3, {ce}, "e");
  gb.AddPoi(5, {cg1}, "g1");
  gb.AddPoi(7, {cg}, "g2");        // semantic match, farther
  gb.AddPoi(9, {cg1}, "g3");       // perfect, farthest
  const Graph graph = std::move(gb.Build()).ValueOrDie();

  BssrEngine engine(graph, forest);
  const Query q = MakeSimpleQuery(0, {ca1, ce, cg1});
  for (const bool use_cache : {true, false}) {
    QueryOptions opts;
    opts.use_cache = use_cache;
    // Lower bounds legitimately prune the second route through 'e' before
    // it expands (its completions tie the perfect route); disable them so
    // both routes expand from 'e' and the cache path is deterministic.
    opts.use_lower_bounds = false;
    auto r = engine.Run(q, opts);
    ASSERT_TRUE(r.ok());
    auto brute = BruteForceSkySr(graph, forest, q, opts);
    ASSERT_TRUE(brute.ok());
    EXPECT_TRUE(ScoreVectorsNear(r->routes, *brute))
        << "use_cache=" << use_cache;
    if (use_cache) {
      // The expansion from 'e' (position G) is requested by both routes;
      // the second must be served from cache (or rebuilt with a larger
      // radius).
      EXPECT_GE(r->stats.mdijkstra_cache_hits + r->stats.cache_reruns, 1);
    }
  }
}

// Randomized: cache hits + reruns never change results, and cache reruns
// only ever INCREASE the covered radius (checked indirectly: with cache on,
// search count <= without, while results stay equal).
class CacheEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CacheEquivalence, HitsAndRerunsPreserveExactness) {
  const uint64_t seed = 20000 + static_cast<uint64_t>(GetParam());
  TinyDataset ds = MakeTinyDataset(seed, 40, 40, 20);
  Rng rng(seed);
  BssrEngine engine(ds.graph, ds.forest);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<CategoryId> cats;
    std::vector<TreeId> trees;
    int guard = 0;
    while (cats.size() < 3 && ++guard < 1000) {
      const auto c = static_cast<CategoryId>(
          rng.UniformU64(static_cast<uint64_t>(ds.forest.num_categories())));
      const TreeId t = ds.forest.TreeOf(c);
      bool dup = false;
      for (TreeId u : trees) dup = dup || u == t;
      if (!dup) {
        cats.push_back(c);
        trees.push_back(t);
      }
    }
    const Query q = MakeSimpleQuery(
        static_cast<VertexId>(
            rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices()))),
        cats);
    QueryOptions with, without;
    with.use_cache = true;
    without.use_cache = false;
    auto a = engine.Run(q, with);
    auto b = engine.Run(q, without);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(ScoreVectorsNear(a->routes, b->routes)) << "seed=" << seed;
    EXPECT_LE(a->stats.mdijkstra_runs, b->stats.mdijkstra_runs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalence, ::testing::Range(0, 10));

// The expansion budget function is re-evaluated per settle and may only
// shrink; verify the search respects a budget that tightens mid-run.
TEST(ExpansionDynamics, ShrinkingBudgetStopsEarly) {
  GraphBuilder gb;
  for (int i = 0; i < 8; ++i) gb.AddVertex();
  for (int i = 0; i < 7; ++i) gb.AddEdge(i, i + 1, 1.0);
  const CategoryForest forest = MakeSyntheticForest(1, 2, 1);
  const CategoryId root = forest.RootOf(0);
  GraphBuilder gb2;
  for (int i = 0; i < 8; ++i) gb2.AddVertex();
  for (int i = 0; i < 7; ++i) gb2.AddEdge(i, i + 1, 1.0);
  for (int i = 1; i < 8; ++i) gb2.AddPoi(i, {root});
  const Graph graph = std::move(gb2.Build()).ValueOrDie();

  const WuPalmerSimilarity fn;
  const PositionMatcher matcher(graph, forest, fn,
                                CategoryPredicate::Single(root),
                                MultiCategoryMode::kMaxSimilarity);
  ExpansionScratch scratch;
  int emitted = 0;
  // Budget starts at infinity and collapses to 2.5 after the 1st candidate
  // (as if a complete route had tightened the skyline threshold).
  Weight budget = kInfWeight;
  const CandidateList list = RunExpansion(
      graph, matcher, 0, [&] { return budget; },
      /*apply_lemma55=*/false, scratch,
      [&](const ExpansionCandidate&) {
        ++emitted;
        budget = 2.5;
      },
      nullptr);
  // Candidates at distance 1 and 2 fit under the tightened budget; 3+ don't.
  EXPECT_EQ(emitted, 2);
  EXPECT_FALSE(list.exhausted);
  EXPECT_LE(list.covered_radius, 3.0);
  EXPECT_GE(list.covered_radius, 2.5);
}

// Stress: a query whose positions all use the same ROOT category on a
// dense PoI graph — maximal candidate fan-out, deferred-Lemma-5.5 mode,
// heavy queue churn. Verified against brute force.
TEST(StressTest, DenseSameTreeFanOut) {
  TinyDataset ds = MakeTinyDataset(31337, /*n=*/18, /*extra_edges=*/14,
                                   /*num_pois=*/14, /*num_trees=*/1,
                                   /*branching=*/3, /*levels=*/1);
  BssrEngine engine(ds.graph, ds.forest);
  const CategoryId root = ds.forest.RootOf(0);
  const Query q = MakeSimpleQuery(0, {root, root, root});
  auto r = engine.Run(q);
  ASSERT_TRUE(r.ok());
  auto brute = BruteForceSkySr(ds.graph, ds.forest, q, QueryOptions());
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(ScoreVectorsNear(r->routes, *brute));
  // All-root query: every match is perfect, so the skyline is a single
  // shortest 3-PoI route.
  EXPECT_EQ(r->routes.size(), 1u);
}

// Unreachable PoIs: a disconnected pocket holding the only perfect match.
// The skyline must fall back to reachable semantic matches only.
TEST(FailureInjection, DisconnectedPerfectMatches) {
  CategoryForestBuilder fb;
  const CategoryId food = fb.AddRoot("Food");
  const CategoryId sushi = fb.AddChild(food, "Sushi");
  const CategoryId pasta = fb.AddChild(food, "Pasta");
  const CategoryForest forest = std::move(fb.Build()).ValueOrDie();

  GraphBuilder gb;
  for (int i = 0; i < 5; ++i) gb.AddVertex();
  gb.AddEdge(0, 1, 1.0);  // reachable: vq=0, pasta at 1
  gb.AddEdge(2, 3, 1.0);  // island: sushi at 3
  gb.AddEdge(3, 4, 1.0);
  gb.AddPoi(1, {pasta}, "Pasta Place");
  gb.AddPoi(3, {sushi}, "Island Sushi");
  const Graph graph = std::move(gb.Build()).ValueOrDie();

  BssrEngine engine(graph, forest);
  auto r = engine.Run(MakeSimpleQuery(0, {sushi}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->routes.size(), 1u);
  EXPECT_EQ(graph.PoiName(r->routes[0].pois[0]), "Pasta Place");
  EXPECT_GT(r->routes[0].scores.semantic, 0.0);
}

// No match at all: empty skyline, clean stats, no crash.
TEST(FailureInjection, NoMatchingPoiAnywhere) {
  CategoryForestBuilder fb;
  const CategoryId a = fb.AddRoot("A");
  const CategoryId b = fb.AddRoot("B");
  const CategoryForest forest = std::move(fb.Build()).ValueOrDie();
  GraphBuilder gb;
  gb.AddVertex();
  gb.AddVertex();
  gb.AddEdge(0, 1, 1.0);
  gb.AddPoi(1, {a});
  const Graph graph = std::move(gb.Build()).ValueOrDie();
  BssrEngine engine(graph, forest);
  auto r = engine.Run(MakeSimpleQuery(0, {b}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->routes.empty());
  EXPECT_EQ(r->stats.skyline_size, 0);
}

// Destination unreachable from every last PoI: empty skyline.
TEST(FailureInjection, UnreachableDestination) {
  CategoryForestBuilder fb;
  const CategoryId a = fb.AddRoot("A");
  const CategoryForest forest = std::move(fb.Build()).ValueOrDie();
  GraphBuilder gb;
  for (int i = 0; i < 4; ++i) gb.AddVertex();
  gb.AddEdge(0, 1, 1.0);
  gb.AddEdge(2, 3, 1.0);  // destination island
  gb.AddPoi(1, {a});
  const Graph graph = std::move(gb.Build()).ValueOrDie();
  BssrEngine engine(graph, forest);
  Query q = MakeSimpleQuery(0, {a});
  q.destination = 3;
  auto r = engine.Run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->routes.empty());
}

}  // namespace
}  // namespace skysr

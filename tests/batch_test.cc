// Tests for the batching front door: BssrEngine::RunGroup bit-identity,
// BatchScheduler group formation + single-flight, batched-vs-unbatched
// service sweeps across the retriever × oracle × xcache axes, fan-out under
// concurrent submitters, and the batch-window=0 degenerate case.

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/shared_query_cache.h"
#include "core/bssr_engine.h"
#include "index/ch_oracle.h"
#include "retrieval/category_buckets.h"
#include "service/batch_scheduler.h"
#include "service/query_service.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"

namespace skysr {
namespace {

Dataset BatchTestDataset() {
  DatasetSpec spec = CalLikeSpec(0.03);
  spec.seed = 11;
  return MakeDataset(spec);
}

// A repeated-source serving mix: queries rewritten so every `kSources`-th
// shares a canonical source — the shape the batching front door groups on.
std::vector<Query> ServingMix(const Dataset& ds, int count, int sources) {
  QueryGenParams qp;
  qp.count = count;
  qp.sequence_size = 3;
  qp.seed = 1234;
  std::vector<Query> queries = GenerateQueries(ds, qp);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].start = queries[i % static_cast<size_t>(sources)].start;
  }
  return queries;
}

void ExpectExactlyEqual(const std::vector<Route>& a,
                        const std::vector<Route>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pois, b[i].pois) << "route " << i;
    EXPECT_EQ(a[i].scores.length, b[i].scores.length) << "route " << i;
    EXPECT_EQ(a[i].scores.semantic, b[i].scores.semantic) << "route " << i;
  }
}

// ------------------------------------------------------------ RunGroup --

// RunGroup must be bit-identical to per-query Run() on a fresh engine, for
// every oracle / retriever / attached-cache combination it can execute
// under (the group-scoped transient cache covers the "none attached" leg).
TEST(RunGroupTest, BitIdenticalToSequentialRunAcrossAxes) {
  const Dataset ds = BatchTestDataset();
  const auto queries = ServingMix(ds, 12, 3);

  const auto ch = std::make_unique<ChOracle>(ChOracle::Build(ds.graph));
  const CategoryBucketIndex buckets =
      CategoryBucketIndex::Build(ds.graph, *ch);

  struct Axis {
    const DistanceOracle* oracle;
    const CategoryBucketIndex* buckets;
    RetrieverKind retriever;
    bool attach_xcache;
  };
  const std::vector<Axis> axes = {
      {nullptr, nullptr, RetrieverKind::kAuto, false},
      {ch.get(), &buckets, RetrieverKind::kAuto, false},
      {ch.get(), &buckets, RetrieverKind::kAuto, true},
      {ch.get(), &buckets, RetrieverKind::kBucket, true},
      {ch.get(), &buckets, RetrieverKind::kSettle, false},
  };

  for (const Axis& axis : axes) {
    QueryOptions options;
    options.retriever = axis.retriever;

    BssrEngine reference(ds.graph, ds.forest, axis.oracle, axis.buckets);
    std::vector<std::vector<Route>> expected;
    for (const Query& q : queries) {
      auto r = reference.Run(q, options);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected.push_back(r->routes);
    }

    BssrEngine engine(ds.graph, ds.forest, axis.oracle, axis.buckets);
    SharedQueryCache xcache;
    if (axis.attach_xcache) engine.AttachSharedCache(&xcache);

    std::vector<BssrEngine::GroupQuery> group;
    for (const Query& q : queries) group.push_back({&q, &options});
    // One oversized mixed-source group: grouping is co-scheduling only, so
    // even a group that violates the scheduler's same-source invariant
    // must stay bit-identical.
    const auto results = engine.RunGroup(group);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      ExpectExactlyEqual(results[i]->routes, expected[i]);
    }
    // A second pass over the same group must also match (warm group cache,
    // warm tails).
    const auto again = engine.RunGroup(group);
    for (size_t i = 0; i < again.size(); ++i) {
      ASSERT_TRUE(again[i].ok());
      ExpectExactlyEqual(again[i]->routes, expected[i]);
    }
  }
}

// Per-query shared-cache opt-out must survive group execution.
TEST(RunGroupTest, MemberOptOutRunsColdAndIdentical) {
  const Dataset ds = BatchTestDataset();
  const auto queries = ServingMix(ds, 4, 1);

  QueryOptions warm;
  QueryOptions cold;
  cold.use_shared_cache = false;

  BssrEngine reference(ds.graph, ds.forest);
  std::vector<std::vector<Route>> expected;
  for (const Query& q : queries) {
    auto r = reference.Run(q, cold);
    ASSERT_TRUE(r.ok());
    expected.push_back(r->routes);
  }

  BssrEngine engine(ds.graph, ds.forest);
  std::vector<BssrEngine::GroupQuery> group;
  group.push_back({&queries[0], &warm});
  group.push_back({&queries[1], &cold});
  group.push_back({&queries[2], &warm});
  group.push_back({&queries[3], &cold});
  const auto results = engine.RunGroup(group);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    ExpectExactlyEqual(results[i]->routes, expected[i]);
  }
}

// ----------------------------------------------------------- scheduler --

TEST(BatchSchedulerTest, GroupsBySourceAndRegistersFlights) {
  BoundedQueue<ServingTask> queue(64);
  ServiceMetrics metrics;
  BatchScheduler scheduler(&queue, /*max_batch=*/16, /*batch_window_us=*/0,
                           &metrics);

  auto push = [&](VertexId start, CategoryId cat) {
    ServingTask t;
    t.query.start = start;
    t.query.sequence.push_back(CategoryPredicate::Single(cat));
    queue.Push(std::move(t));
  };
  push(1, 10);
  push(2, 10);
  push(1, 11);
  push(2, 10);  // identical to the second task -> single-flight follower
  queue.Close();

  BatchScheduler::Group g1;
  BatchScheduler::Group g2;
  ASSERT_TRUE(scheduler.NextGroup(&g1));
  ASSERT_TRUE(scheduler.NextGroup(&g2));
  // Two groups: source 1 with two tasks, source 2 with one task (its
  // duplicate coalesced into the in-flight registration).
  EXPECT_EQ(g1.source, 1);
  EXPECT_EQ(g1.tasks.size(), 2u);
  EXPECT_EQ(g2.source, 2);
  EXPECT_EQ(g2.tasks.size(), 1u);
  BatchScheduler::Group g3;
  EXPECT_FALSE(scheduler.NextGroup(&g3));

  const MetricsSnapshot m = metrics.Snapshot();
  EXPECT_EQ(m.batches, 1);
  EXPECT_EQ(m.batched_queries, 4);
  EXPECT_EQ(m.coalesced_queries, 1);
  EXPECT_EQ(m.batch_mean_size, 4.0);

  // Completing the source-2 primary must fan its result to the follower.
  auto follower_check = [&] {
    QueryResult qr;
    qr.stats.skyline_size = 7;
    scheduler.CompleteFlight(g2.keys[0], Result<QueryResult>(std::move(qr)));
  };
  follower_check();
  // The coalesced task's promise was absorbed by the registry; releasing
  // every dispatched key must leave no dangling registration (covered by
  // the fan-out resolving below — a second CompleteFlight is a no-op).
  scheduler.CompleteFlight(g2.keys[0], Result<QueryResult>(QueryResult()));
}

TEST(BatchSchedulerTest, FollowerReceivesPrimaryResult) {
  BoundedQueue<ServingTask> queue(8);
  ServiceMetrics metrics;
  BatchScheduler scheduler(&queue, /*max_batch=*/8, /*batch_window_us=*/0,
                           &metrics);

  ServingTask a;
  a.query.start = 5;
  a.query.sequence.push_back(CategoryPredicate::Single(3));
  ServingTask b;
  b.query = a.query;
  std::future<Result<QueryResult>> follower_future = b.promise.get_future();
  queue.Push(std::move(a));
  queue.Push(std::move(b));
  queue.Close();

  BatchScheduler::Group g;
  ASSERT_TRUE(scheduler.NextGroup(&g));
  ASSERT_EQ(g.tasks.size(), 1u);  // the duplicate became a follower
  ASSERT_FALSE(g.keys[0].empty());

  QueryResult qr;
  qr.stats.skyline_size = 42;
  scheduler.CompleteFlight(g.keys[0], Result<QueryResult>(std::move(qr)));
  auto got = follower_future.get();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.skyline_size, 42);
}

// ------------------------------------------------------------- service --

// The headline sweep: batched and unbatched services must produce routes
// bit-identical to the sequential engine across oracle × retriever ×
// xcache, with and without the result cache.
TEST(BatchedServiceTest, BitIdenticalToUnbatchedAcrossAxes) {
  const Dataset ds = BatchTestDataset();
  const auto queries = ServingMix(ds, 24, 4);

  const auto ch = std::make_unique<ChOracle>(ChOracle::Build(ds.graph));
  const CategoryBucketIndex buckets =
      CategoryBucketIndex::Build(ds.graph, *ch);

  struct Axis {
    const DistanceOracle* oracle;
    const CategoryBucketIndex* buckets;
    RetrieverKind retriever;
    bool xcache;
  };
  const std::vector<Axis> axes = {
      {nullptr, nullptr, RetrieverKind::kAuto, false},
      {nullptr, nullptr, RetrieverKind::kAuto, true},
      {ch.get(), &buckets, RetrieverKind::kAuto, true},
      {ch.get(), &buckets, RetrieverKind::kSettle, false},
  };

  for (const Axis& axis : axes) {
    QueryOptions options;
    options.retriever = axis.retriever;

    BssrEngine reference(ds.graph, ds.forest, axis.oracle, axis.buckets);
    std::vector<std::vector<Route>> expected;
    for (const Query& q : queries) {
      auto r = reference.Run(q, options);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected.push_back(r->routes);
    }

    for (const size_t max_batch : {size_t{1}, size_t{8}}) {
      ServiceConfig cfg;
      cfg.num_threads = 4;
      cfg.cache_capacity = 128;
      cfg.oracle = axis.oracle;
      cfg.buckets = axis.buckets;
      cfg.shared_query_cache = axis.xcache;
      cfg.default_options = options;
      cfg.max_batch = max_batch;
      cfg.batch_window_us = max_batch > 1 ? 2000 : 0;
      QueryService service(ds.graph, ds.forest, cfg);
      const auto results = service.RunBatch(queries, options);
      ASSERT_EQ(results.size(), queries.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
        ExpectExactlyEqual(results[i]->routes, expected[i]);
      }
    }
  }
}

// Single-flight under concurrent submitters, result cache off: every
// duplicate is either executed or coalesced onto an in-flight primary, and
// all of them get the same (correct) routes.
TEST(BatchedServiceTest, SingleFlightFanoutUnderConcurrentSubmitters) {
  const Dataset ds = BatchTestDataset();
  const auto queries = ServingMix(ds, 4, 1);

  BssrEngine reference(ds.graph, ds.forest);
  std::vector<std::vector<Route>> expected;
  for (const Query& q : queries) {
    auto r = reference.Run(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(r->routes);
  }

  ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.cache_capacity = 0;  // force single-flight, not result-cache, reuse
  cfg.max_batch = 16;
  cfg.batch_window_us = 5000;
  QueryService service(ds.graph, ds.forest, cfg);

  constexpr int kClients = 6;
  constexpr int kPerClient = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<std::future<Result<QueryResult>>> futures;
      std::vector<size_t> idx;
      for (int i = 0; i < kPerClient; ++i) {
        const size_t q = static_cast<size_t>(i) % queries.size();
        idx.push_back(q);
        futures.push_back(service.Submit(queries[q]));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        auto r = futures[i].get();
        if (!r.ok() || r->routes.size() != expected[idx[i]].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t k = 0; k < r->routes.size(); ++k) {
          if (r->routes[k].pois != expected[idx[i]][k].pois ||
              r->routes[k].scores.length !=
                  expected[idx[i]][k].scores.length ||
              r->routes[k].scores.semantic !=
                  expected[idx[i]][k].scores.semantic) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const MetricsSnapshot m = service.Metrics();
  // Every accepted query is either executed (completed) or answered by an
  // in-flight primary (coalesced) — nothing is dropped or double-counted.
  EXPECT_EQ(m.submitted, kClients * kPerClient);
  EXPECT_EQ(m.completed + m.coalesced_queries, m.submitted);
  EXPECT_EQ(m.errors, 0);
  EXPECT_GT(m.batches, 0);
  EXPECT_EQ(m.cache_hits, 0);  // the cache was off; reuse was single-flight
}

// batch_window_us = 0: the drain leader collects only instantly available
// tasks — batching degenerates gracefully toward singleton groups and must
// stay bit-identical.
TEST(BatchedServiceTest, BatchWindowZeroDegenerateCase) {
  const Dataset ds = BatchTestDataset();
  const auto queries = ServingMix(ds, 16, 2);

  BssrEngine reference(ds.graph, ds.forest);
  std::vector<std::vector<Route>> expected;
  for (const Query& q : queries) {
    auto r = reference.Run(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(r->routes);
  }

  ServiceConfig cfg;
  cfg.num_threads = 3;
  cfg.cache_capacity = 64;
  cfg.max_batch = 8;
  cfg.batch_window_us = 0;
  QueryService service(ds.graph, ds.forest, cfg);
  const auto results = service.RunBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    ExpectExactlyEqual(results[i]->routes, expected[i]);
  }
}

// Batched shutdown with work in flight must drain everything: every future
// resolves (no broken promises), matching the unbatched contract.
TEST(BatchedServiceTest, ShutdownDrainsInFlightGroups) {
  const Dataset ds = BatchTestDataset();
  const auto queries = ServingMix(ds, 8, 2);

  std::vector<std::future<Result<QueryResult>>> futures;
  {
    ServiceConfig cfg;
    cfg.num_threads = 2;
    cfg.max_batch = 4;
    cfg.batch_window_us = 1000;
    QueryService service(ds.graph, ds.forest, cfg);
    for (const Query& q : queries) futures.push_back(service.Submit(q));
    service.Shutdown();
  }
  for (auto& f : futures) {
    auto r = f.get();  // must not throw broken_promise
    EXPECT_TRUE(r.ok());
  }
}

}  // namespace
}  // namespace skysr

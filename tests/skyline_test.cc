// SkylineSet: dominance semantics (Definitions 4.1/4.2), threshold queries
// (Definition 5.4), staircase invariant — including a randomized comparison
// against a naive O(n^2) skyline.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/skyline_set.h"
#include "util/rng.h"

namespace skysr {
namespace {

TEST(DominanceTest, Definition41) {
  const RouteScores a{5, 0.2};
  EXPECT_TRUE(Dominates(a, {6, 0.2}));   // shorter, equal semantic
  EXPECT_TRUE(Dominates(a, {5, 0.3}));   // equal length, better semantic
  EXPECT_TRUE(Dominates(a, {6, 0.3}));   // better in both
  EXPECT_FALSE(Dominates(a, {5, 0.2}));  // equivalent, not dominated
  EXPECT_FALSE(Dominates(a, {4, 0.3}));  // incomparable
  EXPECT_TRUE(Equivalent(a, {5, 0.2}));
  EXPECT_TRUE(DominatesOrEquals(a, {5, 0.2}));
}

TEST(SkylineSetTest, InsertEvictsDominated) {
  SkylineSet s;
  EXPECT_TRUE(s.Update({10, 0.5}, {1}));
  EXPECT_TRUE(s.Update({20, 0.1}, {2}));
  EXPECT_TRUE(s.Update({5, 0.9}, {3}));
  EXPECT_EQ(s.size(), 3);
  // Dominates the (10, 0.5) and (5, 0.9) entries.
  EXPECT_TRUE(s.Update({5, 0.5}, {4}));
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.DominatedOrEqual({10, 0.5}));
  EXPECT_FALSE(s.DominatedOrEqual({4, 0.95}));
  EXPECT_EQ(s.num_evictions(), 2);
}

TEST(SkylineSetTest, EquivalentRoutesKeepOneRepresentative) {
  SkylineSet s;
  EXPECT_TRUE(s.Update({10, 0.5}, {1}));
  EXPECT_FALSE(s.Update({10, 0.5}, {2}));  // equivalent: rejected
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.routes()[0].pois[0], 1);
}

TEST(SkylineSetTest, ThresholdDefinition54) {
  SkylineSet s;
  s.Update({5, 0.9}, {1});
  s.Update({10, 0.5}, {2});
  s.Update({20, 0.0}, {3});
  // Threshold(s) = min length among entries with semantic <= s.
  EXPECT_EQ(s.Threshold(1.0), 5);
  EXPECT_EQ(s.Threshold(0.9), 5);
  EXPECT_EQ(s.Threshold(0.89), 10);
  EXPECT_EQ(s.Threshold(0.5), 10);
  EXPECT_EQ(s.Threshold(0.49), 20);
  EXPECT_EQ(s.Threshold(0.0), 20);
  SkylineSet empty;
  EXPECT_EQ(empty.Threshold(1.0), kInfWeight);
}

TEST(SkylineSetTest, StaircaseInvariantMaintained) {
  Rng rng(13);
  SkylineSet s;
  for (int i = 0; i < 1000; ++i) {
    s.Update({rng.UniformDouble(0, 100), rng.UniformDouble()}, {i});
  }
  const auto& routes = s.routes();
  for (size_t i = 1; i < routes.size(); ++i) {
    EXPECT_GT(routes[i].scores.length, routes[i - 1].scores.length);
    EXPECT_LT(routes[i].scores.semantic, routes[i - 1].scores.semantic);
  }
}

// Randomized equivalence with a naive O(n^2) skyline filter.
class SkylineVsNaive : public ::testing::TestWithParam<int> {};

TEST_P(SkylineVsNaive, MatchesNaiveFilter) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<RouteScores> points;
  SkylineSet s;
  for (int i = 0; i < 400; ++i) {
    // Coarse grid so that equivalences and exact ties actually occur.
    const RouteScores p{static_cast<Weight>(rng.UniformU64(30)),
                        static_cast<double>(rng.UniformU64(10)) / 10.0};
    points.push_back(p);
    s.Update(p, {i});
  }
  // Naive skyline: keep points not dominated by any other; dedup
  // equivalents.
  std::vector<RouteScores> naive;
  for (const RouteScores& p : points) {
    bool dominated = false;
    for (const RouteScores& q : points) {
      if (Dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    bool dup = false;
    for (const RouteScores& q : naive) dup = dup || Equivalent(p, q);
    if (!dup) naive.push_back(p);
  }
  std::sort(naive.begin(), naive.end(),
            [](const RouteScores& a, const RouteScores& b) {
              return a.length < b.length;
            });
  ASSERT_EQ(s.size(), static_cast<int64_t>(naive.size()));
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(s.routes()[i].scores.length, naive[i].length);
    EXPECT_EQ(s.routes()[i].scores.semantic, naive[i].semantic);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylineVsNaive, ::testing::Range(0, 10));

TEST(SkylineSetTest, ThresholdConsistentWithDominatedOrEqual) {
  Rng rng(14);
  SkylineSet s;
  for (int i = 0; i < 200; ++i) {
    s.Update({rng.UniformDouble(0, 50), rng.UniformDouble()}, {i});
  }
  for (int i = 0; i < 500; ++i) {
    const RouteScores p{rng.UniformDouble(0, 50), rng.UniformDouble()};
    // p is dominated-or-equal iff some entry has len<=p.len and sem<=p.sem
    // iff Threshold(p.sem) <= p.len.
    EXPECT_EQ(s.DominatedOrEqual(p), s.Threshold(p.semantic) <= p.length);
  }
}

// --- Property tests on randomized route sets ------------------------------
//
// For arbitrary insertion orders mixing continuous scores (no ties) with
// coarse-grid scores (many exact ties and equivalences), after EVERY insert:
//   * staircase order: length strictly ascending, semantic strictly
//     descending;
//   * no retained route is dominated by (or equivalent to) another;
//   * Update() accepted the route iff it was not dominated-or-equal;
//   * size bookkeeping: |S| = updates - evictions.
// And at the end every inserted point is covered by the skyline, which
// equals the naive O(n^2) filter.
class SkylinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SkylinePropertyTest, InvariantsHoldAfterEveryInsert) {
  Rng rng(0xA11CE + static_cast<uint64_t>(GetParam()));
  SkylineSet s;
  std::vector<RouteScores> inserted;
  for (int i = 0; i < 250; ++i) {
    RouteScores p;
    if (i % 2 == 0) {
      p = {rng.UniformDouble(0, 100), rng.UniformDouble()};
    } else {
      p = {static_cast<Weight>(rng.UniformU64(12)),
           static_cast<double>(rng.UniformU64(8)) / 8.0};
    }
    const bool expect_reject = s.DominatedOrEqual(p);
    const bool accepted = s.Update(p, {static_cast<PoiId>(i)});
    EXPECT_NE(accepted, expect_reject) << "insert " << i;
    inserted.push_back(p);

    const auto& routes = s.routes();
    ASSERT_GT(routes.size(), 0u);
    for (size_t j = 1; j < routes.size(); ++j) {
      EXPECT_GT(routes[j].scores.length, routes[j - 1].scores.length);
      EXPECT_LT(routes[j].scores.semantic, routes[j - 1].scores.semantic);
    }
    EXPECT_EQ(s.size(), s.num_updates() - s.num_evictions());
  }
  // No dominated route retained; no duplicates.
  const auto& routes = s.routes();
  for (size_t i = 0; i < routes.size(); ++i) {
    for (size_t j = 0; j < routes.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates(routes[i].scores, routes[j].scores));
      EXPECT_FALSE(Equivalent(routes[i].scores, routes[j].scores));
    }
  }
  // Completeness: every inserted point is dominated-or-equal by the set,
  // and the set matches the naive filter.
  for (const RouteScores& p : inserted) {
    EXPECT_TRUE(s.DominatedOrEqual(p));
  }
  std::vector<RouteScores> naive;
  for (const RouteScores& p : inserted) {
    bool dominated = false;
    for (const RouteScores& q : inserted) {
      if (Dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    bool dup = false;
    for (const RouteScores& q : naive) dup = dup || Equivalent(p, q);
    if (!dup) naive.push_back(p);
  }
  EXPECT_EQ(s.size(), static_cast<int64_t>(naive.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylinePropertyTest, ::testing::Range(0, 16));

TEST(SkylineSetTest, ClearResets) {
  SkylineSet s;
  s.Update({1, 0.5}, {1});
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Threshold(1.0), kInfWeight);
  EXPECT_EQ(s.num_updates(), 0);
}

TEST(RouteArenaTest, ParentChainsMaterializeInOrder) {
  RouteArena arena;
  const int32_t a = arena.Add(RouteArena::kEmpty, 5, 50, 1.0, 1.0);
  const int32_t b = arena.Add(a, 7, 70, 2.0, 0.9);
  const int32_t c = arena.Add(b, 9, 90, 3.5, 0.8);
  EXPECT_EQ(arena.SizeOf(c), 3);
  EXPECT_EQ(arena.SizeOf(RouteArena::kEmpty), 0);
  EXPECT_EQ(arena.Materialize(c), (std::vector<PoiId>{5, 7, 9}));
  EXPECT_TRUE(arena.Contains(c, 7));
  EXPECT_FALSE(arena.Contains(c, 8));
  EXPECT_FALSE(arena.Contains(RouteArena::kEmpty, 5));
  // Shared prefixes: a second branch off `a` does not disturb the first.
  const int32_t d = arena.Add(a, 8, 80, 2.5, 0.7);
  EXPECT_EQ(arena.Materialize(d), (std::vector<PoiId>{5, 8}));
  EXPECT_EQ(arena.Materialize(c), (std::vector<PoiId>{5, 7, 9}));
  EXPECT_EQ(arena.num_nodes(), 4);
  EXPECT_GT(arena.MemoryBytes(), 0);
}

}  // namespace
}  // namespace skysr

// Unit tests for core building blocks: PositionMatcher (predicates,
// multi-category modes), query validation, ThresholdPolicy, NNinit,
// lower bounds, the expansion search and the on-the-fly cache.

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "category/taxonomy_factory.h"
#include "core/lower_bound.h"
#include "core/mdijkstra_cache.h"
#include "core/modified_dijkstra.h"
#include "core/nn_init.h"
#include "core/query.h"
#include "core/route.h"
#include "core/settle_log.h"
#include "core/skyline_set.h"
#include "core/threshold.h"
#include "graph/graph_builder.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace skysr {
namespace {

// A line graph 0-1-2-3-4 with PoIs at 1 (Sushi), 2 (Italian), 3 (Asian),
// 4 (Gift Shop): handy for matcher and expansion unit tests.
struct LineFixture {
  Graph graph;
  CategoryForest forest;
  CategoryId sushi, italian, asian, gift, food, japanese;

  LineFixture() {
    forest = MakeFoursquareLikeForest();
    sushi = forest.FindByName("Sushi Restaurant");
    italian = forest.FindByName("Italian Restaurant");
    asian = forest.FindByName("Asian Restaurant");
    gift = forest.FindByName("Gift Shop");
    food = forest.FindByName("Food");
    japanese = forest.FindByName("Japanese Restaurant");
    GraphBuilder b;
    for (int i = 0; i < 5; ++i) b.AddVertex();
    for (int i = 0; i < 4; ++i) b.AddEdge(i, i + 1, 1.0);
    b.AddPoi(1, {sushi}, "Sushi One");
    b.AddPoi(2, {italian}, "Trattoria");
    b.AddPoi(3, {asian}, "Pan-Asia");
    b.AddPoi(4, {gift}, "Gifts!");
    graph = std::move(b.Build()).ValueOrDie();
  }
};

TEST(PositionMatcherTest, SingleCategorySimilarity) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  const PositionMatcher m(fx.graph, fx.forest, fn,
                          CategoryPredicate::Single(fx.japanese),
                          MultiCategoryMode::kMaxSimilarity);
  // Sushi is a descendant of Japanese: perfect.
  EXPECT_EQ(m.SimOfPoi(fx.graph.PoiAtVertex(1)), 1.0);
  EXPECT_TRUE(m.IsPerfect(fx.graph.PoiAtVertex(1)));
  // Italian is in the Food tree: semantic but not perfect.
  const double italian_sim = m.SimOfPoi(fx.graph.PoiAtVertex(2));
  EXPECT_GT(italian_sim, 0.0);
  EXPECT_LT(italian_sim, 1.0);
  // Gift Shop is in another tree: no match.
  EXPECT_EQ(m.SimOfPoi(fx.graph.PoiAtVertex(4)), 0.0);
  EXPECT_EQ(m.SimOfVertex(0), 0.0);  // plain road vertex
  EXPECT_EQ(m.trees().size(), 1u);
}

TEST(PositionMatcherTest, DisjunctionTakesBestAlternative) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  CategoryPredicate pred;
  pred.any_of = {fx.japanese, fx.gift};
  const PositionMatcher m(fx.graph, fx.forest, fn, pred,
                          MultiCategoryMode::kMaxSimilarity);
  EXPECT_EQ(m.SimOfPoi(fx.graph.PoiAtVertex(1)), 1.0);  // via Japanese
  EXPECT_EQ(m.SimOfPoi(fx.graph.PoiAtVertex(4)), 1.0);  // via Gift Shop
  EXPECT_EQ(m.trees().size(), 2u);
}

TEST(PositionMatcherTest, NegationExcludesSubtrees) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  CategoryPredicate pred;
  pred.any_of = {fx.food};
  pred.none_of = {fx.japanese};
  const PositionMatcher m(fx.graph, fx.forest, fn, pred,
                          MultiCategoryMode::kMaxSimilarity);
  EXPECT_EQ(m.SimOfPoi(fx.graph.PoiAtVertex(1)), 0.0);  // Sushi banned
  EXPECT_EQ(m.SimOfPoi(fx.graph.PoiAtVertex(2)), 1.0);  // Italian fine
}

TEST(PositionMatcherTest, ConjunctionNeedsEveryCategory) {
  // Multi-category PoI holding {Sushi, Gift}.
  const CategoryForest forest = MakeFoursquareLikeForest();
  const CategoryId sushi = forest.FindByName("Sushi Restaurant");
  const CategoryId gift = forest.FindByName("Gift Shop");
  const CategoryId food = forest.FindByName("Food");
  const CategoryId shop = forest.FindByName("Shop & Service");
  GraphBuilder b;
  b.AddVertex();
  b.AddVertex();
  b.AddEdge(0, 1, 1.0);
  b.AddPoi(1, {sushi, gift});
  const Graph g = std::move(b.Build()).ValueOrDie();
  const WuPalmerSimilarity fn;

  CategoryPredicate both;
  both.any_of = {food};
  both.all_of = {food, shop};
  const PositionMatcher m_both(g, forest, fn, both,
                               MultiCategoryMode::kMaxSimilarity);
  EXPECT_EQ(m_both.SimOfPoi(0), 1.0);

  CategoryPredicate impossible;
  impossible.any_of = {food};
  impossible.all_of = {forest.FindByName("Event")};
  const PositionMatcher m_imp(g, forest, fn, impossible,
                              MultiCategoryMode::kMaxSimilarity);
  EXPECT_EQ(m_imp.SimOfPoi(0), 0.0);
}

TEST(PositionMatcherTest, AverageModeAveragesOverPoiCategories) {
  const CategoryForest forest = MakeFoursquareLikeForest();
  const CategoryId sushi = forest.FindByName("Sushi Restaurant");
  const CategoryId gift = forest.FindByName("Gift Shop");
  GraphBuilder b;
  b.AddVertex();
  b.AddPoi(0, {sushi, gift});
  const Graph g = std::move(b.Build()).ValueOrDie();
  const WuPalmerSimilarity fn;
  const auto pred = CategoryPredicate::Single(sushi);
  const PositionMatcher max_m(g, forest, fn, pred,
                              MultiCategoryMode::kMaxSimilarity);
  const PositionMatcher avg_m(g, forest, fn, pred,
                              MultiCategoryMode::kAverageSimilarity);
  EXPECT_EQ(max_m.SimOfPoi(0), 1.0);
  EXPECT_DOUBLE_EQ(avg_m.SimOfPoi(0), 0.5);  // (1 + 0) / 2
  EXPECT_EQ(avg_m.max_non_perfect_sim(), 1.0);  // conservative δ = 0
}

TEST(ValidateQueryTest, CatchesBadInputs) {
  const LineFixture fx;
  Query q = MakeSimpleQuery(0, {fx.sushi});
  EXPECT_TRUE(ValidateQuery(fx.graph, fx.forest, q).ok());
  q.start = 99;
  EXPECT_FALSE(ValidateQuery(fx.graph, fx.forest, q).ok());
  q.start = 0;
  q.sequence.clear();
  EXPECT_FALSE(ValidateQuery(fx.graph, fx.forest, q).ok());
  q = MakeSimpleQuery(0, {fx.sushi});
  q.destination = -3;
  EXPECT_FALSE(ValidateQuery(fx.graph, fx.forest, q).ok());
  q = MakeSimpleQuery(0, {static_cast<CategoryId>(10000)});
  EXPECT_FALSE(ValidateQuery(fx.graph, fx.forest, q).ok());
  q = MakeSimpleQuery(0, {fx.sushi});
  q.sequence[0].any_of.clear();
  EXPECT_FALSE(ValidateQuery(fx.graph, fx.forest, q).ok());
}

TEST(ExpansionTest, EmitsSemanticMatchesInDistanceOrder) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  const PositionMatcher m(fx.graph, fx.forest, fn,
                          CategoryPredicate::Single(fx.japanese),
                          MultiCategoryMode::kMaxSimilarity);
  ExpansionScratch scratch;
  std::vector<ExpansionCandidate> seen;
  const CandidateList list = RunExpansion(
      fx.graph, m, /*source=*/0, [] { return kInfWeight; },
      /*apply_lemma55=*/false, scratch,
      [&](const ExpansionCandidate& c) { seen.push_back(c); }, nullptr);
  ASSERT_EQ(seen.size(), 3u);  // Sushi, Italian, Asian all in Food tree
  EXPECT_EQ(seen[0].vertex, 1);
  EXPECT_EQ(seen[0].sim, 1.0);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i].dist, seen[i - 1].dist);
  }
  EXPECT_TRUE(list.exhausted);
}

TEST(ExpansionTest, Lemma55StopsAtPerfectMatchAndFiltersBlocked) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  const PositionMatcher m(fx.graph, fx.forest, fn,
                          CategoryPredicate::Single(fx.japanese),
                          MultiCategoryMode::kMaxSimilarity);
  ExpansionScratch scratch;
  std::vector<ExpansionCandidate> seen;
  RunExpansion(
      fx.graph, m, /*source=*/0, [] { return kInfWeight; },
      /*apply_lemma55=*/true, scratch,
      [&](const ExpansionCandidate& c) { seen.push_back(c); }, nullptr);
  // The perfect Sushi at vertex 1 blocks everything beyond it (Lemma 5.5ii).
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].vertex, 1);
}

TEST(ExpansionTest, BudgetTerminatesSearch) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  const PositionMatcher m(fx.graph, fx.forest, fn,
                          CategoryPredicate::Single(fx.japanese),
                          MultiCategoryMode::kMaxSimilarity);
  ExpansionScratch scratch;
  std::vector<ExpansionCandidate> seen;
  const CandidateList list = RunExpansion(
      fx.graph, m, /*source=*/0, [] { return 1.5; },
      /*apply_lemma55=*/false, scratch,
      [&](const ExpansionCandidate& c) { seen.push_back(c); }, nullptr);
  ASSERT_EQ(seen.size(), 1u);  // only vertex 1 at distance 1 < 1.5
  EXPECT_FALSE(list.exhausted);
  EXPECT_LE(list.covered_radius, 2.0);
  EXPECT_GE(list.covered_radius, 1.5);
}

TEST(CacheTest, PutFindReplaceAndClear) {
  MdijkstraCache cache;
  EXPECT_EQ(cache.Find(3, 1), nullptr);
  CandidateList l1;
  l1.covered_radius = 5;
  cache.Put(3, 1, std::move(l1));
  const MdijkstraCache::Entry* hit = cache.Find(3, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->meta.covered_radius, 5);
  EXPECT_EQ(cache.Find(3, 2), nullptr);
  EXPECT_EQ(cache.Find(4, 1), nullptr);
  CandidateList l2;
  l2.covered_radius = 9;
  cache.Put(3, 1, std::move(l2));
  EXPECT_EQ(cache.Find(3, 1)->meta.covered_radius, 9);
  EXPECT_EQ(cache.replacements(), 1);
  cache.Clear();
  EXPECT_EQ(cache.Find(3, 1), nullptr);
}

TEST(NnInitTest, FindsPerfectChainAndSemanticVariants) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  std::vector<PositionMatcher> matchers;
  matchers.emplace_back(fx.graph, fx.forest, fn,
                        CategoryPredicate::Single(fx.asian),
                        MultiCategoryMode::kMaxSimilarity);
  matchers.emplace_back(fx.graph, fx.forest, fn,
                        CategoryPredicate::Single(fx.gift),
                        MultiCategoryMode::kMaxSimilarity);
  const SemanticAggregator agg;
  DijkstraWorkspace ws;
  SkylineSet skyline;
  SearchStats stats;
  RunNnInit(fx.graph, matchers, /*start=*/0, agg, nullptr, ws, &skyline,
            &stats);
  // Asian position: nearest perfect match is Sushi@1 (descendant).
  // Gift position from vertex 1: Gifts!@4 — one perfect route.
  ASSERT_GE(skyline.size(), 1);
  EXPECT_EQ(skyline.Threshold(0.0), 1.0 + 3.0);
  EXPECT_GT(stats.nninit_routes, 0);
  EXPECT_EQ(stats.nninit_perfect_length, 4.0);
}

TEST(LowerBoundTest, LegBoundsAreValidMinima) {
  const LineFixture fx;
  const WuPalmerSimilarity fn;
  std::vector<PositionMatcher> matchers;
  matchers.emplace_back(fx.graph, fx.forest, fn,
                        CategoryPredicate::Single(fx.asian),
                        MultiCategoryMode::kMaxSimilarity);
  matchers.emplace_back(fx.graph, fx.forest, fn,
                        CategoryPredicate::Single(fx.gift),
                        MultiCategoryMode::kMaxSimilarity);
  SearchStats stats;
  const LowerBounds lb =
      ComputeLowerBounds(fx.graph, matchers, 0, kInfWeight, &stats);
  ASSERT_EQ(lb.ls_leg.size(), 1u);
  // Nearest Food-tree PoI to the Gift PoI is Asian@3 -> distance 1.
  EXPECT_DOUBLE_EQ(lb.ls_leg[0], 1.0);
  EXPECT_DOUBLE_EQ(lb.lp_leg[0], 1.0);
  ASSERT_EQ(lb.ls_remaining.size(), 3u);
  EXPECT_DOUBLE_EQ(lb.ls_remaining[1], 1.0);
  EXPECT_DOUBLE_EQ(lb.ls_remaining[2], 0.0);
}

TEST(ThresholdPolicyTest, PruningLogic) {
  SkylineSet skyline;
  skyline.Update({10.0, 0.0}, {1});  // perfect route of length 10
  skyline.Update({4.0, 0.5}, {2});
  const SemanticAggregator agg;
  LowerBounds lb;
  lb.ls_remaining = {2.0, 2.0, 0.0};
  lb.lp_remaining = {3.0, 3.0, 0.0};
  lb.ls_leg = {2.0};
  lb.lp_leg = {3.0};
  const std::vector<double> sigma = {0.8, 0.8, 0.0};
  const ThresholdPolicy policy(skyline, agg, &lb, sigma, 2);

  // Size-1 partial with semantic 0 (acc=1): threshold is 10.
  EXPECT_FALSE(policy.ShouldPrunePartial(1.0, 7.9, 1));  // 7.9+2 < 10
  EXPECT_TRUE(policy.ShouldPrunePartial(1.0, 8.0, 1));   // 8+2 >= 10
  // Lemma 5.8: with acc=1, delta = 1-0.8 = 0.2 => bumped threshold uses
  // semantic 0.2 -> Th = 10... entry (4,0.5) needs sem >= 0.5.
  // With acc such that sem=0.5: Th(0.5)=4.
  EXPECT_TRUE(policy.ShouldPrunePartial(0.5, 4.0, 1));  // plain: 4+2 >= 4
  // Complete-route pruning is plain dominance.
  EXPECT_TRUE(policy.ShouldPruneComplete({11.0, 0.0}));
  EXPECT_FALSE(policy.ShouldPruneComplete({9.0, 0.0}));
  // Budget: Th(0)=10, len=3, next leg m+1=2 -> remaining 0.
  EXPECT_DOUBLE_EQ(policy.ExpansionBudget(1.0, 3.0, 1), 7.0);
  // For m=0 -> candidate size 1, remaining ls_remaining[1]=2.
  EXPECT_DOUBLE_EQ(policy.ExpansionBudget(1.0, 0.0, 0), 8.0);
}

// The flat stamped-span cache must behave exactly like a plain map from
// (source, position) to the last committed list — randomized operation
// sequences against a reference model.
TEST(CacheTest, FlatTableMatchesMapReferenceModel) {
  struct RefEntry {
    std::vector<ExpansionCandidate> candidates;
    Weight covered_radius;
    bool exhausted;
  };
  Rng rng(4242);
  MdijkstraCache cache;
  std::map<std::pair<VertexId, int>, RefEntry> ref;
  for (int round = 0; round < 5; ++round) {
    for (int op = 0; op < 400; ++op) {
      const auto src = static_cast<VertexId>(rng.UniformU64(64));
      const int pos = static_cast<int>(rng.UniformU64(5));
      if (rng.UniformU64(3) == 0) {
        // Lookup: both must agree on presence and contents.
        const MdijkstraCache::Entry* hit = cache.Find(src, pos);
        const auto it = ref.find({src, pos});
        ASSERT_EQ(hit != nullptr, it != ref.end());
        if (hit != nullptr) {
          EXPECT_EQ(hit->meta.covered_radius, it->second.covered_radius);
          EXPECT_EQ(hit->meta.exhausted, it->second.exhausted);
          const CandidateSpan got = cache.CandidatesOf(*hit);
          ASSERT_EQ(static_cast<size_t>(got.size),
                    it->second.candidates.size());
          for (size_t i = 0; i < it->second.candidates.size(); ++i) {
            EXPECT_EQ(got.vertex[i], it->second.candidates[i].vertex);
            EXPECT_EQ(got.dist[i], it->second.candidates[i].dist);
          }
        }
      } else {
        // Commit through the pool-append protocol.
        const size_t offset = cache.pool().size();
        RefEntry entry;
        entry.covered_radius = static_cast<Weight>(rng.UniformU64(100));
        entry.exhausted = rng.UniformU64(4) == 0;
        const int n = static_cast<int>(rng.UniformU64(6));
        for (int i = 0; i < n; ++i) {
          const ExpansionCandidate cand{
              static_cast<VertexId>(rng.UniformU64(1000)),
              static_cast<Weight>(i), 0.5};
          cache.pool().push_back(cand);
          entry.candidates.push_back(cand);
        }
        cache.Commit(src, pos, offset,
                     ExpansionOutcome{entry.covered_radius, entry.exhausted});
        ref[{src, pos}] = std::move(entry);
      }
    }
    EXPECT_EQ(cache.size(), static_cast<int64_t>(ref.size()));
    cache.Clear();
    ref.clear();
    EXPECT_EQ(cache.Find(0, 0), nullptr);
  }
}

TEST(SkylineGenerationTest, AdvancesExactlyOnContentChanges) {
  SkylineSet s;
  const uint64_t g0 = s.generation();
  s.Clear();  // empty: no content change
  EXPECT_EQ(s.generation(), g0);

  ASSERT_TRUE(s.Update({10.0, 0.5}, {1}));  // insert
  const uint64_t g1 = s.generation();
  EXPECT_GT(g1, g0);

  EXPECT_FALSE(s.Update({10.0, 0.5}, {2}));  // equivalent: rejected
  EXPECT_FALSE(s.Update({12.0, 0.6}, {3}));  // dominated: rejected
  EXPECT_EQ(s.generation(), g1);

  ASSERT_TRUE(s.Update({5.0, 0.9}, {4}));  // insert, no eviction
  const uint64_t g2 = s.generation();
  EXPECT_GT(g2, g1);

  // Dominates both: evicts and inserts — generation moves.
  ASSERT_TRUE(s.Update({4.0, 0.4}, {5}));
  const uint64_t g3 = s.generation();
  EXPECT_GT(g3, g2);
  EXPECT_EQ(s.size(), 1);

  const std::vector<Route> taken = s.TakeRoutes();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_GT(s.generation(), g3);  // contents changed (emptied)
  EXPECT_TRUE(s.empty());

  s.Clear();  // already empty again: no bump
  const uint64_t g4 = s.generation();
  s.Update({1.0, 0.1}, {6});
  s.Clear();  // non-empty clear: bump
  EXPECT_GT(s.generation(), g4 + 1 - 1);
}

TEST(SkylineGenerationTest, TakeRoutesMovesWithoutCopy) {
  SkylineSet s;
  s.Update({3.0, 0.2}, {7, 8, 9});
  const PoiId* data_before = s.routes()[0].pois.data();
  const std::vector<Route> taken = s.TakeRoutes();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].pois.data(), data_before);  // moved, not deep-copied
  EXPECT_TRUE(s.empty());
}

TEST(RouteArenaTest, ContainsWithSignatureCollisions) {
  RouteArena arena;
  // PoIs 3 and 67 collide in the 64-bit signature (67 % 64 == 3).
  const int32_t a = arena.Add(RouteArena::kEmpty, 3, 0, 1.0, 1.0);
  const int32_t b = arena.Add(a, 67, 1, 2.0, 1.0);
  EXPECT_TRUE(arena.Contains(b, 3));
  EXPECT_TRUE(arena.Contains(b, 67));
  EXPECT_FALSE(arena.Contains(b, 131));  // collides with both, not present
  EXPECT_FALSE(arena.Contains(b, 5));
  EXPECT_FALSE(arena.Contains(RouteArena::kEmpty, 3));
  std::vector<PoiId> buf;
  arena.MaterializeInto(b, &buf);
  EXPECT_EQ(buf, (std::vector<PoiId>{3, 67}));
}

TEST(SettleLogTest, CommitFindAndStampedClear) {
  SettleLog log;
  EXPECT_EQ(log.Find(7), nullptr);
  const size_t off = log.pool().size();
  log.pool().push_back(SettleRecord{7, 0.0});
  log.pool().push_back(SettleRecord{9, 2.5});
  log.Commit(7, off, ExpansionOutcome{2.5, false});
  const SettleLog::Entry* e = log.Find(7);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->meta.covered_radius, 2.5);
  EXPECT_FALSE(e->meta.exhausted);
  ASSERT_EQ(log.RecordsOf(*e).size(), 2u);
  EXPECT_EQ(log.RecordsOf(*e)[1].vertex, 9);
  log.Clear();
  EXPECT_EQ(log.Find(7), nullptr);
  EXPECT_EQ(log.size(), 0);
}

TEST(ThresholdPolicyTest, EmptySkylineNeverPrunes) {
  SkylineSet skyline;
  const SemanticAggregator agg;
  const std::vector<double> sigma = {0.0, 0.0};
  const ThresholdPolicy policy(skyline, agg, nullptr, sigma, 1);
  EXPECT_FALSE(policy.ShouldPrunePartial(1.0, 1e12, 1));
  EXPECT_EQ(policy.ExpansionBudget(1.0, 0.0, 0), kInfWeight);
}

}  // namespace
}  // namespace skysr

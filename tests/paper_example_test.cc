// A hand-crafted instance in the style of the paper's running example
// (Figures 1 & 2, §5.5): every score is computed by hand with Eq. (6) and
// Eq. (7), so this test pins exact semantics, not just cross-implementation
// agreement.

#include <gtest/gtest.h>

#include "baseline/naive_skysr.h"
#include "core/bssr_engine.h"
#include "graph/graph_builder.h"

namespace skysr {
namespace {

// Figure-2-like forest:
//   Food { Asian, Italian, Bakery }          depths: 1 / 2
//   Shop & Service { Gift, Hobby }           depths: 1 / 2
//   Arts & Entertainment (a lone root)       depth: 1
struct PaperFixture {
  CategoryForest forest;
  CategoryId food, asian, italian, bakery, shop, gift, hobby, arts;
  Graph graph;
  // Vertices: vq=0, I=1 (Italian), A=2 (Asian), E=3 (A&E), H=4 (Hobby),
  // G=5 (Gift).
  static constexpr VertexId kVq = 0, kI = 1, kA = 2, kE = 3, kH = 4, kG = 5;

  PaperFixture() {
    CategoryForestBuilder fb;
    food = fb.AddRoot("Food");
    asian = fb.AddChild(food, "Asian");
    italian = fb.AddChild(food, "Italian");
    bakery = fb.AddChild(food, "Bakery");
    shop = fb.AddRoot("Shop & Service");
    gift = fb.AddChild(shop, "Gift");
    hobby = fb.AddChild(shop, "Hobby");
    arts = fb.AddRoot("Arts & Entertainment");
    forest = std::move(fb.Build()).ValueOrDie();

    GraphBuilder gb;
    for (int i = 0; i < 6; ++i) gb.AddVertex();
    gb.AddEdge(kVq, kI, 1.0);
    gb.AddEdge(kVq, kA, 4.0);
    gb.AddEdge(kI, kE, 2.0);
    gb.AddEdge(kA, kE, 1.0);
    gb.AddEdge(kE, kH, 2.0);
    gb.AddEdge(kE, kG, 3.0);
    gb.AddPoi(kI, {italian}, "Italian");
    gb.AddPoi(kA, {asian}, "Asian");
    gb.AddPoi(kE, {arts}, "A&E");
    gb.AddPoi(kH, {hobby}, "Hobby");
    gb.AddPoi(kG, {gift}, "Gift");
    graph = std::move(gb.Build()).ValueOrDie();
  }
};

// Hand-computed expectation for the query <Asian, A&E, Gift> from vq:
//   sim(Asian, Italian) = 2*d(Food)/(d(Asian)+d(Food)) = 2/3
//   sim(Gift,  Hobby)   = 2/3
// Candidate sequenced routes (D = shortest network distances):
//   <A, E, G>: 4 + 1 + 3 = 8,  s = 0                     (perfect)
//   <I, E, G>: 1 + 2 + 3 = 6,  s = 1 - 2/3      = 1/3
//   <A, E, H>: 4 + 1 + 2 = 7,  s = 1/3                   (dominated by ^)
//   <I, E, H>: 1 + 2 + 2 = 5,  s = 1 - 4/9      = 5/9
// Skyline: (5, 5/9), (6, 1/3), (8, 0).
TEST(PaperExample, HandComputedSkyline) {
  const PaperFixture fx;
  BssrEngine engine(fx.graph, fx.forest);
  const Query q =
      MakeSimpleQuery(PaperFixture::kVq, {fx.asian, fx.arts, fx.gift});
  auto r = engine.Run(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->routes.size(), 3u);

  EXPECT_DOUBLE_EQ(r->routes[0].scores.length, 5.0);
  EXPECT_NEAR(r->routes[0].scores.semantic, 5.0 / 9.0, 1e-12);
  EXPECT_EQ(r->routes[0].pois,
            (std::vector<PoiId>{fx.graph.PoiAtVertex(PaperFixture::kI),
                                fx.graph.PoiAtVertex(PaperFixture::kE),
                                fx.graph.PoiAtVertex(PaperFixture::kH)}));

  EXPECT_DOUBLE_EQ(r->routes[1].scores.length, 6.0);
  EXPECT_NEAR(r->routes[1].scores.semantic, 1.0 / 3.0, 1e-12);

  EXPECT_DOUBLE_EQ(r->routes[2].scores.length, 8.0);
  EXPECT_DOUBLE_EQ(r->routes[2].scores.semantic, 0.0);
  EXPECT_EQ(r->routes[2].pois,
            (std::vector<PoiId>{fx.graph.PoiAtVertex(PaperFixture::kA),
                                fx.graph.PoiAtVertex(PaperFixture::kE),
                                fx.graph.PoiAtVertex(PaperFixture::kG)}));
}

TEST(PaperExample, EveryToggleComboFindsTheSameHandComputedSkyline) {
  const PaperFixture fx;
  BssrEngine engine(fx.graph, fx.forest);
  const Query q =
      MakeSimpleQuery(PaperFixture::kVq, {fx.asian, fx.arts, fx.gift});
  for (int bits = 0; bits < 8; ++bits) {
    for (const auto disc :
         {QueueDiscipline::kProposed, QueueDiscipline::kDistanceBased}) {
      QueryOptions opts;
      opts.use_initial_search = (bits & 1) != 0;
      opts.use_lower_bounds = (bits & 2) != 0;
      opts.use_cache = (bits & 4) != 0;
      opts.queue_discipline = disc;
      auto r = engine.Run(q, opts);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r->routes.size(), 3u) << "bits=" << bits;
      EXPECT_DOUBLE_EQ(r->routes[0].scores.length, 5.0);
      EXPECT_DOUBLE_EQ(r->routes[1].scores.length, 6.0);
      EXPECT_DOUBLE_EQ(r->routes[2].scores.length, 8.0);
    }
  }
}

TEST(PaperExample, NaiveBaselinesAgreeOnTheHandComputedSkyline) {
  const PaperFixture fx;
  const Query q =
      MakeSimpleQuery(PaperFixture::kVq, {fx.asian, fx.arts, fx.gift});
  for (const auto kind :
       {OsrEngineKind::kDijkstraBased, OsrEngineKind::kPne}) {
    auto r = RunNaiveSkySr(fx.graph, fx.forest, q, QueryOptions(), kind);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->routes.size(), 3u);
    EXPECT_DOUBLE_EQ(r->routes[0].scores.length, 5.0);
    EXPECT_NEAR(r->routes[0].scores.semantic, 5.0 / 9.0, 1e-12);
    EXPECT_DOUBLE_EQ(r->routes[2].scores.length, 8.0);
  }
}

// Querying the ROOT category accepts every PoI of the tree perfectly
// (Eq. (6): descendants are perfect matches), so the skyline collapses to
// the single shortest perfect route.
TEST(PaperExample, RootQueryCollapsesToShortestRoute) {
  const PaperFixture fx;
  BssrEngine engine(fx.graph, fx.forest);
  auto r = engine.Run(MakeSimpleQuery(PaperFixture::kVq, {fx.food}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->routes.size(), 1u);
  EXPECT_DOUBLE_EQ(r->routes[0].scores.length, 1.0);  // Italian at dist 1
  EXPECT_DOUBLE_EQ(r->routes[0].scores.semantic, 0.0);
}

// Destination variant, hand-computed: same query, trip must end at H.
//   <I, E, G> + D(G, H) = 6 + 5 = 11   s = 1/3
//   <A, E, G> + 5       = 13           s = 0
//   <I, E, H> + 0       = 5            s = 5/9
//   <A, E, H> + 0       = 7            s = 1/3   -> dominates (11, 1/3)
// Skyline: (5, 5/9), (7, 1/3), (13, 0).
TEST(PaperExample, DestinationHandComputed) {
  const PaperFixture fx;
  BssrEngine engine(fx.graph, fx.forest);
  Query q = MakeSimpleQuery(PaperFixture::kVq, {fx.asian, fx.arts, fx.gift});
  q.destination = PaperFixture::kH;
  auto r = engine.Run(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->routes.size(), 3u);
  EXPECT_DOUBLE_EQ(r->routes[0].scores.length, 5.0);
  EXPECT_NEAR(r->routes[0].scores.semantic, 5.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(r->routes[1].scores.length, 7.0);
  EXPECT_NEAR(r->routes[1].scores.semantic, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r->routes[2].scores.length, 13.0);
  EXPECT_DOUBLE_EQ(r->routes[2].scores.semantic, 0.0);
}

// The NNinit seeding on this instance: the perfect chain is A (nearest
// perfect Asian at 4) -> E (1) -> G (3), and the last hop also discovers the
// Hobby shop at distance 2, seeding (7, 1/3) — both recorded by stats.
TEST(PaperExample, NnInitStats) {
  const PaperFixture fx;
  BssrEngine engine(fx.graph, fx.forest);
  const Query q =
      MakeSimpleQuery(PaperFixture::kVq, {fx.asian, fx.arts, fx.gift});
  auto r = engine.Run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->stats.nninit_perfect_length, 8.0);
  EXPECT_EQ(r->stats.nninit_routes, 2);
  EXPECT_DOUBLE_EQ(r->stats.nninit_max_semantic_length, 7.0);
}

}  // namespace
}  // namespace skysr

// The paper's Table 1 scenario on a generated NYC-like city: a user plans
// Cupcake Shop -> Art Museum -> Jazz Club. The existing (perfect-match)
// approach returns one route; SkySR returns the whole skyline, with
// semantically relaxed and much shorter alternatives (Dessert Shop instead
// of Cupcake Shop, Museum instead of Art Museum, Music Venue instead of
// Jazz Club).
//
//   $ ./build/examples/nyc_trip [scale]

#include <cstdio>
#include <cstdlib>

#include "skysr.h"

int main(int argc, char** argv) {
  using namespace skysr;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  std::printf("generating NYC-like dataset (scale %.3f)...\n", scale);
  const Dataset ds = MakeDataset(NycLikeSpec(scale));
  std::printf("  |V|=%lld |P|=%lld |E|=%lld\n",
              static_cast<long long>(ds.graph.num_vertices()),
              static_cast<long long>(ds.graph.num_pois()),
              static_cast<long long>(ds.graph.num_edges()));

  const CategoryId cupcake = ds.forest.FindByName("Cupcake Shop");
  const CategoryId art_museum = ds.forest.FindByName("Art Museum");
  const CategoryId jazz = ds.forest.FindByName("Jazz Club");

  BssrEngine engine(ds.graph, ds.forest);
  Rng rng(42);
  for (int shown = 0, attempt = 0; shown < 3 && attempt < 100; ++attempt) {
    const auto start = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
    auto result =
        engine.Run(MakeSimpleQuery(start, {cupcake, art_museum, jazz}));
    if (!result.ok() || result->routes.size() < 2) continue;
    ++shown;

    std::printf("\nfrom vertex %d — %zu skyline routes "
                "(the existing approach would return only the last):\n",
                start, result->routes.size());
    for (const Route& route : result->routes) {
      std::printf("  %7.2f  sem=%.3f  ", route.scores.length,
                  route.scores.semantic);
      for (size_t i = 0; i < route.pois.size(); ++i) {
        if (i > 0) std::printf(" -> ");
        std::printf("%s", ds.graph.PoiName(route.pois[i]).c_str());
      }
      std::printf("\n");
    }
    const Route& relaxed = result->routes.front();
    const Route& perfect = result->routes.back();
    if (perfect.scores.semantic == 0.0) {
      std::printf("  => the relaxed plan is %.1fx shorter than the "
                  "perfect-match plan\n",
                  perfect.scores.length / relaxed.scores.length);
    }
  }
  return 0;
}

// The paper's §7.5 use case (Table 9 / Figure 7) on a generated Tokyo-like
// city: an evening plan "Beer Garden -> Sushi Restaurant -> Sake Bar",
// finishing at the user's hotel — the SkySR-with-destination variant (§6).
//
//   $ ./build/examples/tokyo_dinner [scale]

#include <cstdio>
#include <cstdlib>

#include "skysr.h"

int main(int argc, char** argv) {
  using namespace skysr;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  std::printf("generating Tokyo-like dataset (scale %.3f)...\n", scale);
  const Dataset ds = MakeDataset(TokyoLikeSpec(scale));

  const CategoryId beer_garden = ds.forest.FindByName("Beer Garden");
  const CategoryId sushi = ds.forest.FindByName("Sushi Restaurant");
  const CategoryId sake_bar = ds.forest.FindByName("Sake Bar");
  const CategoryId hotel = ds.forest.FindByName("Hotel");

  // The "hotel" is the first Hotel PoI in the city; the trip must end there.
  VertexId hotel_vertex = kInvalidVertex;
  for (PoiId p = 0; p < ds.graph.num_pois(); ++p) {
    for (CategoryId c : ds.graph.PoiCategories(p)) {
      if (ds.forest.IsAncestorOrSelf(hotel, c)) {
        hotel_vertex = ds.graph.VertexOfPoi(p);
        break;
      }
    }
    if (hotel_vertex != kInvalidVertex) break;
  }

  BssrEngine engine(ds.graph, ds.forest);
  Rng rng(7);
  for (int shown = 0, attempt = 0; shown < 2 && attempt < 100; ++attempt) {
    Query q = MakeSimpleQuery(
        static_cast<VertexId>(
            rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices()))),
        {beer_garden, sushi, sake_bar});
    if (hotel_vertex != kInvalidVertex) q.destination = hotel_vertex;

    auto result = engine.Run(q);
    if (!result.ok() || result->routes.size() < 2) continue;
    ++shown;

    std::printf("\nevening plan from vertex %d, ending at the hotel:\n",
                q.start);
    for (const Route& route : result->routes) {
      std::printf("  %7.2f  sem=%.3f  ", route.scores.length,
                  route.scores.semantic);
      for (size_t i = 0; i < route.pois.size(); ++i) {
        if (i > 0) std::printf(" -> ");
        std::printf("%s", ds.graph.PoiName(route.pois[i]).c_str());
      }
      std::printf(" -> [hotel]\n");
    }
    std::printf("  (as in the paper's Table 9, relaxing 'Beer Garden' to any"
                " 'Bar' can shorten the route dramatically)\n");
  }
  return 0;
}

// Loading your own data: Cal-format node/edge files, a PoI file, and a
// taxonomy in the indented text format. This example writes a small city to
// disk, loads it back through the public loaders, and queries it — the
// exact workflow for using the library with the real Cal dataset from
// https://www.cs.utah.edu/~lifeifei/SpatialDataset.htm.
//
//   $ ./build/examples/custom_data

#include <cstdio>
#include <fstream>

#include "skysr.h"

int main() {
  using namespace skysr;
  const std::string dir = "/tmp/skysr_custom_data";
  (void)std::system(("mkdir -p " + dir).c_str());

  // A 3x3 grid city with unit blocks.
  std::ofstream(dir + "/nodes.txt") << "# id x y\n"
                                       "0 0 0\n1 1 0\n2 2 0\n"
                                       "3 0 1\n4 1 1\n5 2 1\n"
                                       "6 0 2\n7 1 2\n8 2 2\n";
  std::ofstream(dir + "/edges.txt")
      << "0 0 1 1\n1 1 2 1\n2 3 4 1\n3 4 5 1\n4 6 7 1\n5 7 8 1\n"
         "6 0 3 1\n7 3 6 1\n8 1 4 1\n9 4 7 1\n10 2 5 1\n11 5 8 1\n";
  // Taxonomy: two trees.
  std::ofstream(dir + "/taxonomy.txt") << "Food\n"
                                          "  Ramen Shop\n"
                                          "  Burger Joint\n"
                                          "Culture\n"
                                          "  Gallery\n"
                                          "  Library\n";
  auto forest = LoadForestFile(dir + "/taxonomy.txt");
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }
  const CategoryId ramen = forest->FindByName("Ramen Shop");
  const CategoryId burger = forest->FindByName("Burger Joint");
  const CategoryId gallery = forest->FindByName("Gallery");
  const CategoryId food = forest->FindByName("Food");
  // PoIs: `x y category [name]` — embedded onto the closest edges.
  std::ofstream(dir + "/pois.txt")
      << 0.4 << " 0 " << ramen << " Menya One\n"
      << 1.5 << " 2 " << burger << " Patty Palace\n"
      << 2 << " 0.5 " << gallery << " East Gallery\n"
      << 0 << " 1.6 " << gallery << " West Gallery\n";

  auto graph = LoadDataset(dir + "/nodes.txt", dir + "/edges.txt",
                           dir + "/pois.txt");
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded: %lld vertices, %lld edges, %lld PoIs\n",
              static_cast<long long>(graph->num_vertices()),
              static_cast<long long>(graph->num_edges()),
              static_cast<long long>(graph->num_pois()));

  // Save/load the binary snapshot (fast reloads for big datasets).
  if (graph->SaveBinary(dir + "/city.bin").ok()) {
    auto reloaded = Graph::LoadBinary(dir + "/city.bin");
    std::printf("binary snapshot round-trip: %s\n",
                reloaded.ok() ? "ok" : "FAILED");
  }

  // Query: any Food place, then a Gallery, starting at the city center.
  BssrEngine engine(*graph, *forest);
  auto result = engine.Run(MakeSimpleQuery(4, {food, gallery}));
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nskyline for <Food, Gallery> from the center:\n");
  for (const Route& route : result->routes) {
    std::printf("  %s\n", RouteToString(*graph, route).c_str());
  }
  (void)burger;
  return 0;
}

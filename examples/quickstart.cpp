// Quickstart: build a tiny city, run one SkySR query, print the skyline.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the three core steps: (1) construct a graph with PoIs,
// (2) construct the category forest, (3) run BssrEngine.

#include <cstdio>

#include "skysr.h"

int main() {
  using namespace skysr;

  // (1) The semantic hierarchy — here the bundled Foursquare-like forest.
  const CategoryForest forest = MakeFoursquareLikeForest();
  const CategoryId asian = forest.FindByName("Asian Restaurant");
  const CategoryId italian = forest.FindByName("Italian Restaurant");
  const CategoryId arts = forest.FindByName("Arts & Entertainment");
  const CategoryId museum = forest.FindByName("Art Museum");
  const CategoryId gift = forest.FindByName("Gift Shop");
  const CategoryId hobby = forest.FindByName("Hobby Shop");

  // (2) A hand-made road network in the spirit of the paper's Figure 1:
  // a start vertex, restaurants, an entertainment venue, and shops.
  GraphBuilder b;
  for (int i = 0; i < 10; ++i) b.AddVertex();
  const auto edge = [&](VertexId u, VertexId v, Weight w) {
    b.AddEdge(u, v, w);
  };
  edge(0, 1, 2.0);  // vq -> junction
  edge(1, 2, 1.0);  // junction -> Asian restaurant
  edge(1, 3, 0.5);  // junction -> Italian restaurant (closer!)
  edge(2, 4, 2.0);
  edge(3, 4, 1.5);  // -> Art museum
  edge(4, 5, 1.0);  // -> Gift shop
  edge(4, 6, 0.5);  // -> Hobby shop (closer!)
  edge(5, 7, 1.0);
  edge(6, 7, 1.0);
  edge(7, 8, 1.0);
  edge(8, 9, 1.0);
  edge(9, 0, 4.0);
  b.AddPoi(2, {asian}, "Golden Wok");
  b.AddPoi(3, {italian}, "Trattoria Roma");
  b.AddPoi(4, {museum}, "City Art Museum");
  b.AddPoi(5, {gift}, "Gifts & Co");
  b.AddPoi(6, {hobby}, "Hobby Corner");
  auto graph = b.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  // (3) The query of Example 1.1: Asian restaurant, then an Arts &
  // Entertainment place, then a Gift Shop, starting from vertex 0.
  BssrEngine engine(*graph, forest);
  const Query query = MakeSimpleQuery(0, {asian, arts, gift});
  auto result = engine.Run(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("skyline sequenced routes (shortest & most relaxed first):\n");
  for (const Route& route : result->routes) {
    std::printf("  %s\n", RouteToString(*graph, route).c_str());
  }
  std::printf("\nsearch effort: %lld graph searches, %lld vertices settled, "
              "%.2f ms\n",
              static_cast<long long>(result->stats.mdijkstra_runs),
              static_cast<long long>(result->stats.vertices_settled),
              result->stats.elapsed_ms);
  return 0;
}

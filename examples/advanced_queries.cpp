// The §6 extensions in action: complex category predicates (disjunction /
// negation / conjunction), unordered skyline trip planning, and alternative
// similarity functions / aggregators.
//
//   $ ./build/examples/advanced_queries

#include <cstdio>

#include "skysr.h"

namespace {

void PrintRoutes(const skysr::Dataset& ds,
                 const std::vector<skysr::Route>& routes, const char* title) {
  std::printf("%s (%zu routes):\n", title, routes.size());
  for (const skysr::Route& route : routes) {
    std::printf("  %7.2f  sem=%.3f  ", route.scores.length,
                route.scores.semantic);
    for (size_t i = 0; i < route.pois.size(); ++i) {
      if (i > 0) std::printf(" -> ");
      std::printf("%s", ds.graph.PoiName(route.pois[i]).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace skysr;
  Dataset ds = MakeDataset(NycLikeSpec(0.005));
  BssrEngine engine(ds.graph, ds.forest);
  const VertexId start = 17 % static_cast<VertexId>(ds.graph.num_vertices());

  // --- Complex predicates: "an American or Mexican restaurant, but not a
  // Taco Place; then any Museum". ---
  CategoryPredicate dinner;
  dinner.any_of = {ds.forest.FindByName("American Restaurant"),
                   ds.forest.FindByName("Mexican Restaurant")};
  dinner.none_of = {ds.forest.FindByName("Taco Place")};
  Query complex_q;
  complex_q.start = start;
  complex_q.sequence = {dinner, CategoryPredicate::Single(
                                    ds.forest.FindByName("Museum"))};
  if (auto r = engine.Run(complex_q); r.ok()) {
    PrintRoutes(ds, r->routes,
                "complex predicate: (American|Mexican) \\ TacoPlace -> Museum");
  }

  // --- Unordered trip planning: visit a Cafe, a Park and a Bookstore in
  // whatever order is shortest. ---
  const Query unordered_q = MakeSimpleQuery(
      start, {ds.forest.FindByName("Cafe"), ds.forest.FindByName("Park"),
              ds.forest.FindByName("Bookstore")});
  if (auto r = RunUnorderedSkySr(ds.graph, ds.forest, unordered_q); r.ok()) {
    PrintRoutes(ds, r->routes, "unordered: {Cafe, Park, Bookstore}");
  }
  if (auto r = engine.Run(unordered_q); r.ok()) {
    PrintRoutes(ds, r->routes, "same requirements, fixed order");
  }

  // --- Alternative scoring: symmetric Wu-Palmer + worst-deviation
  // aggregation. ---
  QueryOptions opts;
  opts.similarity = std::make_shared<SymmetricWuPalmerSimilarity>();
  opts.aggregation = SemanticAggregation::kMinSimilarity;
  const Query alt_q = MakeSimpleQuery(
      start, {ds.forest.FindByName("Sushi Restaurant"),
              ds.forest.FindByName("Jazz Club")});
  if (auto r = engine.Run(alt_q, opts); r.ok()) {
    PrintRoutes(ds, r->routes,
                "symmetric Wu-Palmer + min-similarity aggregation");
  }
  return 0;
}

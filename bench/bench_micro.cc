// google-benchmark micro suite for the substrates: Dijkstra variants, LCA,
// similarity tables, skyline-set operations, expansion searches and full
// BSSR queries on a fixed mid-size dataset.

#include <benchmark/benchmark.h>

#include "category/taxonomy_factory.h"
#include "core/bssr_engine.h"
#include "core/modified_dijkstra.h"
#include "core/skyline_set.h"
#include "graph/dijkstra.h"
#include "util/rng.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"

namespace skysr {
namespace {

const Dataset& BenchDataset() {
  static const Dataset* ds = [] {
    DatasetSpec spec = CalLikeSpec(0.08);
    spec.seed = 7;
    return new Dataset(MakeDataset(spec));
  }();
  return *ds;
}

void BM_DijkstraFull(benchmark::State& state) {
  const Dataset& ds = BenchDataset();
  Rng rng(1);
  for (auto _ : state) {
    const auto src = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
    benchmark::DoNotOptimize(SingleSourceDistances(ds.graph, src));
  }
  state.SetItemsProcessed(state.iterations() * ds.graph.num_vertices());
}
BENCHMARK(BM_DijkstraFull);

void BM_DijkstraBounded(benchmark::State& state) {
  const Dataset& ds = BenchDataset();
  Rng rng(2);
  const double radius = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto src = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
    benchmark::DoNotOptimize(BoundedDistances(ds.graph, src, radius));
  }
}
BENCHMARK(BM_DijkstraBounded)->Arg(2)->Arg(8)->Arg(32);

void BM_LcaQueries(benchmark::State& state) {
  const CategoryForest f = MakeFoursquareLikeForest();
  Rng rng(3);
  const auto n = static_cast<uint64_t>(f.num_categories());
  for (auto _ : state) {
    const auto a = static_cast<CategoryId>(rng.UniformU64(n));
    const auto b = static_cast<CategoryId>(rng.UniformU64(n));
    benchmark::DoNotOptimize(f.Lca(a, b));
  }
}
BENCHMARK(BM_LcaQueries);

void BM_SimilarityTableBuild(benchmark::State& state) {
  const CategoryForest f = MakeFoursquareLikeForest();
  const WuPalmerSimilarity fn;
  const CategoryId query = f.FindByName("Sushi Restaurant");
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityTable(f, fn, query));
  }
}
BENCHMARK(BM_SimilarityTableBuild);

void BM_SkylineUpdate(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    SkylineSet s;
    for (int i = 0; i < 256; ++i) {
      s.Update({rng.UniformDouble(0, 100), rng.UniformDouble()}, {i});
    }
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SkylineUpdate);

void BM_ExpansionSearch(benchmark::State& state) {
  const Dataset& ds = BenchDataset();
  const WuPalmerSimilarity fn;
  const auto leaves = ds.forest.LeavesOfTree(0);
  const PositionMatcher matcher(ds.graph, ds.forest, fn,
                                CategoryPredicate::Single(leaves[0]),
                                MultiCategoryMode::kMaxSimilarity);
  ExpansionScratch scratch;
  Rng rng(5);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto src = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(ds.graph.num_vertices())));
    auto list = RunExpansion(
        ds.graph, matcher, src, [budget] { return budget; },
        /*apply_lemma55=*/true, scratch,
        [](const ExpansionCandidate&) {}, nullptr);
    benchmark::DoNotOptimize(list.candidates.size());
  }
}
BENCHMARK(BM_ExpansionSearch)->Arg(4)->Arg(16);

void BM_BssrQuery(benchmark::State& state) {
  const Dataset& ds = BenchDataset();
  BssrEngine engine(ds.graph, ds.forest);
  QueryGenParams qp;
  qp.count = 32;
  qp.sequence_size = static_cast<int>(state.range(0));
  qp.seed = 6;
  const auto queries = GenerateQueries(ds, qp);
  size_t i = 0;
  for (auto _ : state) {
    auto r = engine.Run(queries[i++ % queries.size()], QueryOptions());
    benchmark::DoNotOptimize(r->routes.size());
  }
}
BENCHMARK(BM_BssrQuery)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace skysr

BENCHMARK_MAIN();

// Table 6: maximum resident set size per algorithm at |S_q| = 4.
//
// Paper shape to reproduce: Dij's route-carrying queue dwarfs the others;
// BSSR and PNE sit near the graph size. We report the logical memory model
// (structures the algorithm allocates) and the process RSS delta sampled
// around the runs (VmHWM when the kernel provides it).

#include <cstdio>

#include "baseline/naive_skysr.h"
#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "util/memory.h"

namespace skysr::bench {
namespace {

std::string Bytes(int64_t b) {
  char buf[32];
  return FormatBytes(b, buf, sizeof(buf));
}

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 3);
  const double budget = EnvDouble("SKYSR_BENCH_BUDGET", 5.0);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Table 6: memory usage (|Sq| = 4) ===\n");
  std::printf("logical = peak bytes of algorithm structures; graph = CSR\n\n");
  TablePrinter table({"dataset", "graph", "BSSR", "BSSR w/o Opt", "PNE",
                      "Dij", "RSS now"});
  for (const Dataset& ds : datasets) {
    const auto queries = MakeBenchQueries(ds, 4, queries_per_cfg);
    BssrEngine engine(ds.graph, ds.forest);
    int64_t bssr_peak = 0, bssr_wo_peak = 0, pne_peak = 0, dij_peak = 0;
    for (const Query& q : queries) {
      {
        auto r = engine.Run(q, QueryOptions());
        if (r.ok()) {
          bssr_peak = std::max(bssr_peak, r->stats.logical_peak_bytes);
        }
      }
      {
        QueryOptions opts;
        opts.use_initial_search = false;
        opts.use_lower_bounds = false;
        opts.use_cache = false;
        opts.time_budget_seconds = budget;
        auto r = engine.Run(q, opts);
        if (r.ok()) {
          bssr_wo_peak = std::max(bssr_wo_peak, r->stats.logical_peak_bytes);
        }
      }
      for (const OsrEngineKind kind :
           {OsrEngineKind::kPne, OsrEngineKind::kDijkstraBased}) {
        QueryOptions opts;
        opts.time_budget_seconds = budget;
        auto r = RunNaiveSkySr(ds.graph, ds.forest, q, opts, kind);
        if (r.ok()) {
          int64_t& peak =
              kind == OsrEngineKind::kPne ? pne_peak : dij_peak;
          peak = std::max(peak, r->stats.logical_peak_bytes);
        }
      }
    }
    table.AddRow({ds.name, Bytes(ds.graph.MemoryBytes()), Bytes(bssr_peak),
                  Bytes(bssr_wo_peak), Bytes(pne_peak), Bytes(dij_peak),
                  Bytes(PeakRssBytes())});
  }
  table.Print();
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

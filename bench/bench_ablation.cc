// Ablation: contribution of each BSSR optimization (DESIGN.md's design
// choices). Sweeps the full toggle matrix — initial search (I), lower
// bounds (L), cache (C), queue discipline (Q: proposed/distance) — and
// reports mean response time and vertices settled per configuration, at
// |S_q| = 4 on every dataset.
//
// Complements the paper's per-optimization ablations (Tables 7/8,
// Figures 4/5) with the cross-combination view the paper omits.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "util/timer.h"

namespace skysr::bench {
namespace {

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Ablation: optimization toggle matrix (|Sq| = 4) ===\n");
  std::printf("I=init search, L=lower bounds, C=cache, Q=proposed queue\n\n");
  for (const Dataset& ds : datasets) {
    std::printf("--- %s ---\n", ds.name.c_str());
    TablePrinter table({"config", "mean ms", "settled", "runs", "pruned"});
    BssrEngine engine(ds.graph, ds.forest);
    const auto queries = MakeBenchQueries(ds, 4, queries_per_cfg);
    for (int bits = 0; bits < 16; ++bits) {
      QueryOptions opts;
      opts.use_initial_search = (bits & 1) != 0;
      opts.use_lower_bounds = (bits & 2) != 0;
      opts.use_cache = (bits & 4) != 0;
      opts.queue_discipline = (bits & 8) != 0
                                  ? QueueDiscipline::kProposed
                                  : QueueDiscipline::kDistanceBased;
      opts.time_budget_seconds = EnvDouble("SKYSR_BENCH_BUDGET", 5.0);
      double total_ms = 0;
      int64_t settled = 0, runs = 0, pruned = 0;
      int done = 0;
      for (const Query& q : queries) {
        WallTimer t;
        auto r = engine.Run(q, opts);
        if (!r.ok() || r->stats.timed_out) continue;
        total_ms += t.ElapsedMillis();
        settled += r->stats.vertices_settled;
        runs += r->stats.mdijkstra_runs;
        pruned += r->stats.routes_pruned;
        ++done;
      }
      std::string config;
      config += (bits & 1) ? 'I' : '-';
      config += (bits & 2) ? 'L' : '-';
      config += (bits & 4) ? 'C' : '-';
      config += (bits & 8) ? 'Q' : '-';
      table.AddRow({config,
                    done ? Fmt("%.2f", total_ms / done) : std::string("DNF"),
                    FmtInt(done ? settled / done : 0),
                    FmtInt(done ? runs / done : 0),
                    FmtInt(done ? pruned / done : 0)});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

// Table 7: effect of the initial search (§5.3.1) for |S_q| in 2..5.
//
// Columns mirror the paper: the weight sum of the FIRST modified Dijkstra
// with the initial search ("Proposed") vs without it ("Existing" — constant
// in |S_q| because the unseeded first search floods the graph), NNinit's own
// response time, the number of sequenced routes NNinit finds, and the ratio
// of the length of NNinit's most-relaxed route to its perfect-match route.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"

namespace skysr::bench {
namespace {

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Table 7: effect of the initial search ===\n\n");
  for (const Dataset& ds : datasets) {
    std::printf("--- %s ---\n", ds.name.c_str());
    TablePrinter table({"|Sq|", "weight sum (proposed)",
                        "weight sum (existing)", "NNinit ms", "# routes",
                        "ratio"});
    BssrEngine engine(ds.graph, ds.forest);
    for (int size = 2; size <= 5; ++size) {
      const auto queries = MakeBenchQueries(ds, size, queries_per_cfg);
      double w_with = 0, w_without = 0, nninit_ms = 0, routes = 0, ratio = 0;
      int ratio_n = 0;
      for (const Query& q : queries) {
        QueryOptions opts;
        auto a = engine.Run(q, opts);
        if (a.ok()) {
          w_with += a->stats.first_search_weight_sum;
          nninit_ms += a->stats.nninit_ms;
          routes += static_cast<double>(a->stats.nninit_routes);
          if (a->stats.nninit_perfect_length != kInfWeight &&
              a->stats.nninit_max_semantic_length != kInfWeight) {
            ratio += a->stats.nninit_max_semantic_length /
                     a->stats.nninit_perfect_length;
            ++ratio_n;
          }
        }
        opts.use_initial_search = false;
        opts.use_lower_bounds = false;
        auto b = engine.Run(q, opts);
        if (b.ok()) w_without += b->stats.first_search_weight_sum;
      }
      const double n = queries.size();
      table.AddRow({std::to_string(size), Fmt("%.3f", w_with / n),
                    Fmt("%.3f", w_without / n), Fmt("%.2f", nninit_ms / n),
                    Fmt("%.2f", routes / n),
                    ratio_n > 0 ? Fmt("%.2f", ratio / ratio_n) : "-"});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

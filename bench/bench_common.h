// Shared infrastructure for the table/figure benchmarks: scaled datasets,
// query workloads, aligned table printing, and forked peak-RSS measurement.
//
// Every bench accepts:
//   SKYSR_BENCH_SCALE    multiplies dataset sizes (default 1.0 = laptop)
//   SKYSR_BENCH_QUERIES  queries per configuration (default 5)
//   SKYSR_BENCH_BUDGET   per-query time budget in seconds for the naive
//                        baselines (default 5; exceeded runs print DNF,
//                        mirroring the paper's "not finished" bars)

#ifndef SKYSR_BENCH_BENCH_COMMON_H_
#define SKYSR_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <string_view>
#include <vector>

#include "workload/dataset.h"
#include "workload/query_gen.h"

namespace skysr::bench {

inline double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

inline int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

/// Laptop-scale defaults; SKYSR_BENCH_SCALE grows/shrinks all three.
/// Paper scale would be SKYSR_BENCH_SCALE=50 for Tokyo/NYC and =10 for Cal.
inline std::vector<Dataset> MakeBenchDatasets() {
  const double scale = EnvDouble("SKYSR_BENCH_SCALE", 1.0);
  std::vector<Dataset> out;
  out.push_back(MakeDataset(TokyoLikeSpec(0.02 * scale)));
  out.push_back(MakeDataset(NycLikeSpec(0.01 * scale)));
  out.push_back(MakeDataset(CalLikeSpec(0.10 * scale)));
  return out;
}

inline std::vector<Query> MakeBenchQueries(const Dataset& ds, int size,
                                           int count, uint64_t seed = 99) {
  QueryGenParams qp;
  qp.count = count;
  qp.sequence_size = size;
  qp.seed = seed + static_cast<uint64_t>(size) * 1000;
  return GenerateQueries(ds, qp);
}

/// Minimal aligned-table printer for the harness output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void AddRow(std::vector<std::string> row) {
    for (size_t i = 0; i < row.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], row[i].size());
    }
    rows_.push_back(std::move(row));
  }

  void Print() const {
    PrintRow(headers_);
    std::string sep;
    for (size_t i = 0; i < widths_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& row) const {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths_[i]), row[i].c_str());
    }
    std::printf("\n");
  }
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> widths_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

/// Minimal streaming JSON emitter so benches can drop machine-readable
/// BENCH_*.json files next to their human tables (perf-trajectory
/// tracking). Keys are emitted as given; string values get quote escaping
/// only — bench identifiers need no more.
class JsonWriter {
 public:
  void BeginObject(std::string_view key = {}) {
    Prefix(key);
    out_ += '{';
    stack_.push_back(false);
  }
  void EndObject() { Close('}'); }
  void BeginArray(std::string_view key = {}) {
    Prefix(key);
    out_ += '[';
    stack_.push_back(false);
  }
  void EndArray() { Close(']'); }

  void Field(std::string_view key, double v) {
    Prefix(key);
    if (std::isfinite(v)) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      out_ += buf;
    } else {
      out_ += "null";  // bare nan/inf is not JSON
    }
    MarkHave();
  }
  void Field(std::string_view key, int64_t v) {
    Prefix(key);
    out_ += std::to_string(v);
    MarkHave();
  }
  void Field(std::string_view key, std::string_view v) {
    Prefix(key);
    out_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
    MarkHave();
  }

  const std::string& str() const { return out_; }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool ok =
        std::fwrite(out_.data(), 1, out_.size(), f) == out_.size() &&
        std::fputc('\n', f) != EOF;
    std::fclose(f);
    return ok;
  }

 private:
  void Prefix(std::string_view key) {
    if (!stack_.empty() && stack_.back()) out_ += ',';
    if (!key.empty()) {
      out_ += '"';
      out_.append(key);
      out_ += "\":";
    }
  }
  void MarkHave() {
    if (!stack_.empty()) stack_.back() = true;
  }
  void Close(char c) {
    out_ += c;
    stack_.pop_back();
    MarkHave();
  }

  std::string out_;
  std::vector<bool> stack_;
};

/// Stamps the run-identifying `meta` object every bench JSON carries:
/// schema version, git SHA, build type, and the UTC wall time — what the
/// perf-trajectory reporter (src/obs/perf_trajectory.h) needs to order and
/// label runs. Call right after the top-level BeginObject(). SKYSR_GIT_SHA
/// in the environment overrides the `git rev-parse` lookup (CI sets it;
/// outside a checkout the field degrades to "unknown").
inline void WriteStandardMeta(JsonWriter* json) {
  json->BeginObject("meta");
  json->Field("schema_version", static_cast<int64_t>(1));
  std::string sha;
  if (const char* env = std::getenv("SKYSR_GIT_SHA"); env != nullptr) {
    sha = env;
  } else if (std::FILE* p =
                 popen("git rev-parse --short HEAD 2>/dev/null", "r");
             p != nullptr) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    pclose(p);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
  }
  json->Field("git_sha", sha.empty() ? std::string_view("unknown")
                                     : std::string_view(sha));
#ifdef NDEBUG
  json->Field("build_type", "release");
#else
  json->Field("build_type", "debug");
#endif
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  json->Field("timestamp_utc", std::string_view(stamp));
  json->EndObject();
}

}  // namespace skysr::bench

#endif  // SKYSR_BENCH_BENCH_COMMON_H_

// Serving front-door bench: heavy-traffic arrival over a repeated-source
// query mix, micro-batching off vs on. The workload replays a small pool
// of popular queries (few distinct sources, duplicated spellings) through
// QueryService under an open-loop arrival process, so duplicates and
// same-source queries are genuinely in flight together — exactly the
// regime the batching front door (service/batch_scheduler.h) targets.
// Both runs are checked bit-identical against a sequential BssrEngine
// before any number is reported.
//
// Emits a human table plus machine-readable BENCH_serving.json (override
// the path with SKYSR_BENCH_JSON_OUT) for tools/perf_report.
//
// Environment knobs:
//   SKYSR_BENCH_SCALE      dataset scale                    (default 1.0)
//   SKYSR_BENCH_QUERIES    submissions per run              (default 400)
//   SKYSR_BENCH_THREADS    worker threads                   (default min(8, hw))
//   SKYSR_BENCH_ARRIVAL    asap | poisson:<qps> | burst:<size>:<gap_ms>
//                                                           (default burst:32:2)
//   SKYSR_BENCH_SOURCES    distinct sources in the mix      (default 4)
//   SKYSR_BENCH_POOL       distinct queries in the pool     (default 16)
//   SKYSR_BENCH_MAX_BATCH  batching-on micro-batch bound    (default 16)
//   SKYSR_BENCH_WINDOW_US  batching-on drain window, us     (default 2000)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "service/query_service.h"
#include "util/timer.h"

namespace skysr {
namespace {

using bench::EnvDouble;
using bench::EnvInt;
using bench::Fmt;
using bench::FmtInt;
using bench::JsonWriter;
using bench::TablePrinter;
using bench::WriteStandardMeta;

// ------------------------------------------------------------- arrival --

struct ArrivalModel {
  enum class Kind { kAsap, kPoisson, kBurst };
  Kind kind = Kind::kBurst;
  double poisson_qps = 0;  // kPoisson: mean arrival rate
  int burst_size = 32;     // kBurst: submissions per burst
  double gap_ms = 2;       // kBurst: idle gap between bursts
  std::string spec;        // the string it was parsed from
};

ArrivalModel ParseArrival(const std::string& spec) {
  ArrivalModel m;
  m.spec = spec;
  if (spec == "asap") {
    m.kind = ArrivalModel::Kind::kAsap;
  } else if (spec.rfind("poisson:", 0) == 0) {
    m.kind = ArrivalModel::Kind::kPoisson;
    m.poisson_qps = std::atof(spec.c_str() + 8);
    if (m.poisson_qps <= 0) m.poisson_qps = 1000;
  } else if (spec.rfind("burst:", 0) == 0) {
    m.kind = ArrivalModel::Kind::kBurst;
    const char* p = spec.c_str() + 6;
    m.burst_size = std::max(1, std::atoi(p));
    if (const char* colon = std::strchr(p, ':'); colon != nullptr) {
      m.gap_ms = std::atof(colon + 1);
    }
  } else {
    std::fprintf(stderr,
                 "unknown SKYSR_BENCH_ARRIVAL %s; expected asap, "
                 "poisson:<qps>, or burst:<size>:<gap_ms>\n",
                 spec.c_str());
    std::exit(2);
  }
  return m;
}

/// Blocks until submission i should leave the client, per the model.
/// Poisson inter-arrival gaps come from a fixed-seed exponential draw so
/// the off and on runs replay the identical arrival trace.
class ArrivalClock {
 public:
  explicit ArrivalClock(const ArrivalModel& model) : model_(model), rng_(42) {}

  void WaitForSlot(int index) {
    switch (model_.kind) {
      case ArrivalModel::Kind::kAsap:
        return;
      case ArrivalModel::Kind::kPoisson: {
        std::exponential_distribution<double> gap(model_.poisson_qps);
        next_s_ += gap(rng_);
        SleepUntil(next_s_);
        return;
      }
      case ArrivalModel::Kind::kBurst:
        if (index > 0 && index % model_.burst_size == 0) {
          next_s_ += model_.gap_ms / 1000.0;
          SleepUntil(next_s_);
        }
        return;
    }
  }

 private:
  void SleepUntil(double offset_s) {
    const double remaining = offset_s - timer_.ElapsedSeconds();
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
    }
  }

  ArrivalModel model_;
  std::mt19937_64 rng_;
  WallTimer timer_;
  double next_s_ = 0;
};

// ------------------------------------------------------------ workload --

/// A popular-query pool: `pool` distinct queries spread over `sources`
/// distinct start vertices, plus the replay schedule mapping each of the
/// `submissions` arrivals onto a pool entry (Zipf-ish skew: low pool
/// indices repeat more).
struct Workload {
  std::vector<Query> pool;
  std::vector<int> schedule;
};

Workload MakeWorkload(const Dataset& ds, int submissions, int pool_size,
                      int sources) {
  Workload w;
  QueryGenParams qp;
  qp.count = pool_size;
  qp.sequence_size = 3;
  qp.seed = 4242;
  w.pool = GenerateQueries(ds, qp);
  for (size_t i = 0; i < w.pool.size(); ++i) {
    w.pool[i].start = w.pool[i % static_cast<size_t>(sources)].start;
  }
  // Deterministic skewed replay: position i draws pool index via a fixed
  // LCG, squared into the low indices so the popular head repeats while
  // the tail still appears.
  uint64_t state = 777;
  w.schedule.reserve(static_cast<size_t>(submissions));
  for (int i = 0; i < submissions; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(state >> 11) / 9007199254740992.0;
    const int idx = static_cast<int>(u * u * static_cast<double>(pool_size));
    w.schedule.push_back(std::min(idx, pool_size - 1));
  }
  return w;
}

// ----------------------------------------------------------------- run --

struct RunResult {
  double elapsed_s = 0;
  int64_t mismatches = 0;
  MetricsSnapshot metrics;
  int64_t dest_tail_hits = 0;
  double qps() const {
    return elapsed_s > 0
               ? static_cast<double>(metrics.submitted) / elapsed_s
               : 0;
  }
};

RunResult RunServing(const Dataset& ds, const Workload& w,
                     const ArrivalModel& arrival, int threads,
                     size_t max_batch, int64_t window_us,
                     const std::vector<std::vector<Route>>& expected) {
  ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.cache_capacity = 0;  // isolate batching; result cache measured elsewhere
  cfg.max_batch = max_batch;
  cfg.batch_window_us = window_us;
  QueryService service(ds.graph, ds.forest, cfg);

  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(w.schedule.size());
  ArrivalClock clock(arrival);
  WallTimer t;
  for (size_t i = 0; i < w.schedule.size(); ++i) {
    clock.WaitForSlot(static_cast<int>(i));
    futures.push_back(service.Submit(w.pool[w.schedule[i]]));
  }
  RunResult run;
  for (size_t i = 0; i < futures.size(); ++i) {
    const Result<QueryResult> r = futures[i].get();
    if (!r.ok()) {
      ++run.mismatches;
      continue;
    }
    const std::vector<Route>& got = r->routes;
    const std::vector<Route>& want = expected[w.schedule[i]];
    bool same = got.size() == want.size();
    for (size_t k = 0; same && k < got.size(); ++k) {
      same = got[k].pois == want[k].pois &&
             got[k].scores.length == want[k].scores.length &&
             got[k].scores.semantic == want[k].scores.semantic;
    }
    if (!same) ++run.mismatches;
  }
  run.elapsed_s = t.ElapsedSeconds();
  run.metrics = service.Metrics();
  run.dest_tail_hits = service.dest_tails().hits();
  return run;
}

int Main() {
  DatasetSpec spec = CalLikeSpec(0.10 * EnvDouble("SKYSR_BENCH_SCALE", 1.0));
  spec.seed = 7;
  const Dataset ds = MakeDataset(spec);

  const int submissions = EnvInt("SKYSR_BENCH_QUERIES", 400);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads =
      EnvInt("SKYSR_BENCH_THREADS", std::min(8, hw > 0 ? hw : 4));
  const int pool_size = EnvInt("SKYSR_BENCH_POOL", 16);
  const int sources = std::max(1, EnvInt("SKYSR_BENCH_SOURCES", 4));
  const int max_batch = EnvInt("SKYSR_BENCH_MAX_BATCH", 16);
  const int window_us = EnvInt("SKYSR_BENCH_WINDOW_US", 2000);
  const char* arrival_env = std::getenv("SKYSR_BENCH_ARRIVAL");
  const ArrivalModel arrival =
      ParseArrival(arrival_env != nullptr ? arrival_env : "burst:32:2");

  const Workload w = MakeWorkload(ds, submissions, pool_size, sources);

  std::printf(
      "dataset %s: |V|=%lld |P|=%lld; %d submissions over a pool of %d "
      "queries / %d sources; arrival=%s; %d worker threads\n\n",
      ds.name.c_str(), static_cast<long long>(ds.graph.num_vertices()),
      static_cast<long long>(ds.graph.num_pois()), submissions, pool_size,
      sources, arrival.spec.c_str(), threads);

  // Sequential ground truth for the bit-identity gate.
  std::vector<std::vector<Route>> expected;
  {
    BssrEngine engine(ds.graph, ds.forest);
    for (const Query& q : w.pool) {
      auto r = engine.Run(q);
      if (!r.ok()) {
        std::fprintf(stderr, "pool query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      expected.push_back(r->routes);
    }
  }

  const RunResult off = RunServing(ds, w, arrival, threads, /*max_batch=*/1,
                                   /*window_us=*/0, expected);
  const RunResult on =
      RunServing(ds, w, arrival, threads, static_cast<size_t>(max_batch),
                 window_us, expected);

  const double speedup = off.qps() > 0 ? on.qps() / off.qps() : 0;

  TablePrinter table({"mode", "qps", "p50 ms", "p95 ms", "p99 ms",
                      "qwait p50", "qwait p99", "batches", "mean batch",
                      "coalesced", "fwd hits", "tail hits"});
  for (const auto* r : {&off, &on}) {
    const MetricsSnapshot& m = r->metrics;
    table.AddRow({r == &off ? "off" : "on", Fmt("%.1f", r->qps()),
                  Fmt("%.2f", m.latency_p50_ms), Fmt("%.2f", m.latency_p95_ms),
                  Fmt("%.2f", m.latency_p99_ms),
                  Fmt("%.2f", m.queue_wait_p50_ms),
                  Fmt("%.2f", m.queue_wait_p99_ms), FmtInt(m.batches),
                  Fmt("%.1f", m.batch_mean_size), FmtInt(m.coalesced_queries),
                  FmtInt(m.xcache_fwd_hits), FmtInt(r->dest_tail_hits)});
  }
  table.Print();
  std::printf("\nbatching on/off speedup: %.2fx; mismatches off=%lld on=%lld\n",
              speedup, static_cast<long long>(off.mismatches),
              static_cast<long long>(on.mismatches));

  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "serving");
  WriteStandardMeta(&json);
  json.Field("arrival", arrival.spec);
  json.Field("submissions", static_cast<int64_t>(submissions));
  json.Field("threads", static_cast<int64_t>(threads));
  json.Field("pool", static_cast<int64_t>(pool_size));
  json.Field("sources", static_cast<int64_t>(sources));
  json.Field("qps_off", off.qps());
  json.Field("qps_on", on.qps());
  json.Field("speedup", speedup);
  json.Field("mismatches", off.mismatches + on.mismatches);
  json.BeginArray("runs");
  for (const auto* r : {&off, &on}) {
    const MetricsSnapshot& m = r->metrics;
    json.BeginObject();
    json.Field("mode", r == &off ? "off" : "on");
    json.Field("qps", r->qps());
    json.Field("p50_ms", m.latency_p50_ms);
    json.Field("p95_ms", m.latency_p95_ms);
    json.Field("p99_ms", m.latency_p99_ms);
    json.Field("queue_wait_p50_ms", m.queue_wait_p50_ms);
    json.Field("queue_wait_p99_ms", m.queue_wait_p99_ms);
    json.Field("batches", m.batches);
    json.Field("batch_mean_size", m.batch_mean_size);
    json.Field("coalesced", m.coalesced_queries);
    json.Field("xcache_fwd_hits", m.xcache_fwd_hits);
    json.Field("dest_tail_hits", r->dest_tail_hits);
    json.EndObject();
  }
  json.EndArray();
  json.BeginArray("batch_size_hist");
  for (int i = 0; i < MetricsSnapshot::kBatchSizeBuckets; ++i) {
    json.BeginObject();
    json.Field("bucket", "ge_" + std::to_string(int64_t{1} << i));
    json.Field("count", on.metrics.batch_size_bucket_counts[i]);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const char* json_out = std::getenv("SKYSR_BENCH_JSON_OUT");
  const std::string path =
      json_out != nullptr ? json_out : "BENCH_serving.json";
  if (!json.WriteFile(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  if (off.mismatches + on.mismatches > 0) {
    std::fprintf(stderr, "FAIL: results diverged from sequential engine\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace skysr

int main() { return skysr::Main(); }

// Figure 6: number of skyline sequenced routes per |S_q| per dataset.
//
// Paper shape to reproduce: small result sets (roughly 2-8), largest on the
// Cal-like dataset (synthetic taxonomy with many interchangeable leaves).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"

namespace skysr::bench {
namespace {

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 8);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Figure 6: number of SkySRs ===\n\n");
  TablePrinter table({"dataset", "|Sq|=2", "|Sq|=3", "|Sq|=4", "|Sq|=5"});
  for (const Dataset& ds : datasets) {
    BssrEngine engine(ds.graph, ds.forest);
    std::vector<std::string> row = {ds.name};
    for (int size = 2; size <= 5; ++size) {
      const auto queries = MakeBenchQueries(ds, size, queries_per_cfg);
      double total = 0;
      int n = 0;
      for (const Query& q : queries) {
        auto r = engine.Run(q, QueryOptions());
        if (r.ok()) {
          total += static_cast<double>(r->routes.size());
          ++n;
        }
      }
      row.push_back(n ? Fmt("%.2f", total / n) : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

// Service-layer scaling: aggregate QPS of QueryService at 1..N worker
// threads against the single-engine sequential baseline, on the default
// synthetic workload. Also reports the effect of the shared LRU result
// cache when the workload repeats (a Zipf-like skew of popular queries).
//
// Environment knobs (see bench_common.h):
//   SKYSR_BENCH_SCALE    dataset scale     (default 1.0)
//   SKYSR_BENCH_QUERIES  queries per batch (default 64)
//   SKYSR_BENCH_THREADS  max thread count  (default max(4, hw concurrency))

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "service/query_service.h"
#include "util/timer.h"

namespace skysr {
namespace {

using bench::EnvDouble;
using bench::EnvInt;
using bench::Fmt;
using bench::FmtInt;
using bench::TablePrinter;

double SequentialQps(const Dataset& ds, const std::vector<Query>& queries) {
  BssrEngine engine(ds.graph, ds.forest);
  WallTimer t;
  int64_t ok = 0;
  for (const Query& q : queries) {
    auto r = engine.Run(q);
    if (r.ok()) ++ok;
  }
  const double s = t.ElapsedSeconds();
  return s > 0 ? static_cast<double>(ok) / s : 0;
}

struct ServiceRun {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
};

ServiceRun ServiceQps(const Dataset& ds, const std::vector<Query>& queries,
                      int threads, size_t cache_capacity, int repeat) {
  ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.cache_capacity = cache_capacity;
  QueryService service(ds.graph, ds.forest, cfg);
  WallTimer t;
  for (int r = 0; r < repeat; ++r) {
    const auto results = service.RunBatch(queries);
    (void)results;
  }
  const double s = t.ElapsedSeconds();
  const MetricsSnapshot m = service.Metrics();
  ServiceRun run;
  run.qps = s > 0 ? static_cast<double>(m.completed) / s : 0;
  run.p50_ms = m.latency_p50_ms;
  run.p99_ms = m.latency_p99_ms;
  run.hit_rate = m.cache_hit_rate;
  return run;
}

int Main() {
  DatasetSpec spec = CalLikeSpec(0.10 * EnvDouble("SKYSR_BENCH_SCALE", 1.0));
  spec.seed = 7;
  const Dataset ds = MakeDataset(spec);
  const int num_queries = EnvInt("SKYSR_BENCH_QUERIES", 64);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int max_threads =
      EnvInt("SKYSR_BENCH_THREADS", std::max(4, hw > 0 ? hw : 4));
  const auto queries = bench::MakeBenchQueries(ds, 3, num_queries);

  // Powers of two up to the limit, always ending on the limit itself so a
  // 6- or 12-thread machine still gets its max-concurrency data point.
  std::vector<int> thread_counts;
  for (int t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);

  std::printf("dataset %s: |V|=%lld |P|=%lld, %zu queries of size 3, "
              "hardware threads: %d\n\n",
              ds.name.c_str(),
              static_cast<long long>(ds.graph.num_vertices()),
              static_cast<long long>(ds.graph.num_pois()), queries.size(),
              hw);

  const double seq_qps = SequentialQps(ds, queries);
  std::printf("sequential BssrEngine baseline: %.1f qps\n\n", seq_qps);

  // --- Cold scaling: every query distinct, cache disabled. ----------------
  std::printf("cold scaling (cache off)\n");
  TablePrinter cold({"threads", "qps", "speedup vs 1T", "p50 ms", "p99 ms"});
  double one_thread_qps = 0;
  for (const int threads : thread_counts) {
    const ServiceRun run =
        ServiceQps(ds, queries, threads, /*cache_capacity=*/0, /*repeat=*/1);
    if (threads == 1) one_thread_qps = run.qps;
    cold.AddRow({FmtInt(threads), Fmt("%.1f", run.qps),
                 Fmt("%.2fx", one_thread_qps > 0 ? run.qps / one_thread_qps
                                                 : 0),
                 Fmt("%.2f", run.p50_ms), Fmt("%.2f", run.p99_ms)});
  }
  cold.Print();

  // --- Hot replay: the same batch repeated, shared LRU cache on. ----------
  std::printf("\nhot replay x4 (shared LRU cache)\n");
  TablePrinter hot({"threads", "qps", "hit rate", "p50 ms", "p99 ms"});
  for (const int threads : thread_counts) {
    const ServiceRun run = ServiceQps(ds, queries, threads,
                                      /*cache_capacity=*/4096, /*repeat=*/4);
    hot.AddRow({FmtInt(threads), Fmt("%.1f", run.qps),
                Fmt("%.1f%%", run.hit_rate * 100.0), Fmt("%.2f", run.p50_ms),
                Fmt("%.2f", run.p99_ms)});
  }
  hot.Print();
  return 0;
}

}  // namespace
}  // namespace skysr

int main() { return skysr::Main(); }

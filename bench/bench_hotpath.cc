// Core-engine hot-path benchmark: single-thread query throughput,
// settles/sec, expansions/sec, allocations per query and latency
// percentiles across the three scenario graph families, emitted both as a
// human table and as BENCH_core.json so the perf trajectory is tracked
// PR-over-PR.
//
// The same binary doubles as the CI perf-smoke gate: the algorithm's work
// counters (settles, relaxations, enqueues, ...) are deterministic per
// (suite, seed) regardless of machine speed, so `--write-golden FILE`
// records them and `--check-golden FILE` fails loudly when they drift —
// a counter regression gate with no flaky wall-time threshold. The golden
// suite uses a fixed small configuration independent of the SKYSR_BENCH_*
// environment knobs.
//
// Env knobs (bench suite only):
//   SKYSR_BENCH_SCALE    multiplies graph sizes   (default 1.0)
//   SKYSR_BENCH_QUERIES  queries per family       (default 60)
//   SKYSR_BENCH_REPS     timed repetitions        (default 3)
//   SKYSR_BENCH_JSON     output path              (default BENCH_core.json)

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "cache/shared_query_cache.h"
#include "core/bssr_engine.h"
#include "index/ch_oracle.h"
#include "retrieval/category_buckets.h"
#include "scenario/scenario.h"
#include "util/timer.h"

// ---------------------------------------------------------------------------
// Allocation counting hook: the bench overrides global operator new/delete
// (binary-local, zero cost for the library elsewhere) so "allocations per
// query" is measured, not estimated.
namespace {
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace skysr::bench {
namespace {

/// The mid-size mixed workload of one graph family: sequence sizes 1-4,
/// complex predicates, destinations and multi-category PoIs all present so
/// every engine path is exercised.
ScenarioSpec HotpathSpec(GraphFamily family, int64_t vertices,
                         int num_queries) {
  ScenarioSpec spec;
  spec.name = GraphFamilyName(family);
  spec.graph.family = family;
  spec.graph.target_vertices = vertices;
  spec.graph.extra_edge_fraction = 0.3;
  spec.graph.weights = WeightModel::kEuclidean;
  spec.taxonomy.num_trees = 4;
  spec.taxonomy.max_fanout = 4;
  spec.taxonomy.max_levels = 3;
  spec.pois.num_pois = std::max<int64_t>(8, vertices / 5);
  spec.pois.zipf_theta = 0.5;
  spec.pois.multi_category_rate = 0.1;
  spec.workload.num_queries = num_queries;
  spec.workload.min_sequence = 1;
  spec.workload.max_sequence = 4;
  spec.workload.multi_any_rate = 0.15;
  spec.workload.all_of_rate = 0.1;
  spec.workload.none_of_rate = 0.1;
  spec.workload.destination_rate = 0.25;
  SeedScenarioSpec(&spec, /*master_seed=*/20260730 + static_cast<int>(family));
  return spec;
}

/// Deterministic work counters of one pass over a family's workload.
struct WorkCounters {
  int64_t settled = 0;
  int64_t relaxed = 0;
  int64_t enqueued = 0;
  int64_t dequeued = 0;
  int64_t mdijkstra_runs = 0;
  int64_t cache_hits = 0;
  int64_t log_replays = 0;
  int64_t cand_examined = 0;
  int64_t cand_simd_skipped = 0;
  int64_t dom_pruned = 0;
  int64_t skyline_routes = 0;
  // Retrieval-subsystem paths (zero in the settle config).
  int64_t bucket_runs = 0;
  int64_t resume_runs = 0;
  int64_t fwd_searches = 0;
  int64_t fwd_reuses = 0;
  int64_t bucket_cands = 0;
};

/// One benched engine configuration. "settle" is the PR 4 baseline path
/// (no index, classic expansions); "auto" is the production target: CH
/// oracle + category-bucket tables with the auto retriever; "warm" is the
/// same engine with an engine-lifetime SharedQueryCache attached — the
/// timed reps replay the workload on one engine, so every source repeats
/// and the warm cross-query path (cached forward searches, bucket-served
/// lower bounds, persistent resumable slots) is what gets measured. The
/// serving-mix acceptance bar (warm qps win, steady-state allocs/query)
/// reads off this row.
struct BenchConfig {
  const char* label;
  RetrieverKind retriever;
  bool with_index;
  bool with_xcache = false;
};

constexpr BenchConfig kConfigs[] = {
    {"settle", RetrieverKind::kSettle, false},
    {"auto", RetrieverKind::kAuto, true},
    {"warm", RetrieverKind::kAuto, true, true},
};

struct FamilyResult {
  std::string name;
  std::string config;
  int64_t vertices = 0;
  int64_t pois = 0;
  int64_t queries = 0;
  WorkCounters counters;
  double elapsed_s = 0;       // timed reps total
  int64_t timed_queries = 0;  // queries x reps
  int64_t allocs = 0;         // during the timed reps
  double index_build_ms = 0;  // CH + bucket preprocessing (auto config)
  std::vector<double> latencies_ms;
  bool has_xcache = false;  // warm config: counters below are populated
  SharedCacheCounters xcache;
  int64_t xcache_resident_bytes = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

FamilyResult RunFamily(const Scenario& sc, const BenchConfig& config,
                       int reps) {
  FamilyResult out;
  out.name = sc.spec.name;
  out.config = config.label;
  out.vertices = sc.dataset.graph.num_vertices();
  out.pois = sc.dataset.graph.num_pois();
  out.queries = static_cast<int64_t>(sc.queries.size());

  std::unique_ptr<ChOracle> ch;
  std::unique_ptr<CategoryBucketIndex> buckets;
  if (config.with_index) {
    WallTimer index_timer;
    ch = std::make_unique<ChOracle>(ChOracle::Build(sc.dataset.graph));
    buckets = std::make_unique<CategoryBucketIndex>(
        CategoryBucketIndex::Build(sc.dataset.graph, *ch));
    out.index_build_ms = index_timer.ElapsedMillis();
  }
  BssrEngine engine(sc.dataset.graph, sc.dataset.forest, ch.get(),
                    buckets.get());
  std::optional<SharedQueryCache> xcache;
  if (config.with_xcache) {
    xcache.emplace();
    engine.AttachSharedCache(&*xcache);
    out.has_xcache = true;
  }
  QueryOptions options;
  options.retriever = config.retriever;

  // Warm-up pass: brings the engine to steady state (workspace capacities
  // grown) and collects the deterministic work counters.
  for (const Query& q : sc.queries) {
    const auto r = engine.Run(q, options);
    SKYSR_CHECK_MSG(r.ok(), "hotpath bench query failed");
    out.counters.settled += r->stats.vertices_settled;
    out.counters.relaxed += r->stats.edges_relaxed;
    out.counters.enqueued += r->stats.routes_enqueued;
    out.counters.dequeued += r->stats.routes_dequeued;
    out.counters.mdijkstra_runs += r->stats.mdijkstra_runs;
    out.counters.cache_hits += r->stats.mdijkstra_cache_hits;
    out.counters.log_replays += r->stats.settle_log_replays;
    out.counters.cand_examined += r->stats.cand_examined;
    out.counters.cand_simd_skipped += r->stats.cand_simd_skipped;
    out.counters.dom_pruned += r->stats.qb_dominance_pruned;
    out.counters.skyline_routes += r->stats.skyline_size;
    out.counters.bucket_runs += r->stats.retriever_bucket_runs;
    out.counters.resume_runs += r->stats.retriever_resume_runs;
    out.counters.fwd_searches += r->stats.bucket_fwd_searches;
    out.counters.fwd_reuses += r->stats.bucket_fwd_reuses;
    out.counters.bucket_cands += r->stats.bucket_candidates;
  }

  // Timed reps: steady-state throughput, latency and allocation counts.
  const int64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Query& q : sc.queries) {
      WallTimer qt;
      const auto r = engine.Run(q, options);
      out.latencies_ms.push_back(qt.ElapsedMillis());
      SKYSR_CHECK_MSG(r.ok(), "hotpath bench query failed");
    }
  }
  out.elapsed_s = timer.ElapsedSeconds();
  out.allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  out.timed_queries = static_cast<int64_t>(sc.queries.size()) * reps;
  if (xcache.has_value()) {
    out.xcache = xcache->Counters();
    out.xcache_resident_bytes = xcache->ResidentBytes();
  }
  return out;
}

/// Canonical text form of the golden counters; a byte-for-byte comparison is
/// the whole check.
std::string GoldenText(const std::vector<FamilyResult>& families) {
  std::string out = "skysr hotpath golden counters v3\n";
  for (const FamilyResult& f : families) {
    char buf[448];
    std::snprintf(buf, sizeof(buf),
                  "%s/%s queries=%lld settled=%lld relaxed=%lld "
                  "enqueued=%lld dequeued=%lld runs=%lld cache_hits=%lld "
                  "log_replays=%lld cand_examined=%lld simd_skipped=%lld "
                  "dom_pruned=%lld skyline=%lld "
                  "bucket_runs=%lld resume_runs=%lld fwd_searches=%lld "
                  "fwd_reuses=%lld bucket_cands=%lld\n",
                  f.name.c_str(), f.config.c_str(),
                  static_cast<long long>(f.queries),
                  static_cast<long long>(f.counters.settled),
                  static_cast<long long>(f.counters.relaxed),
                  static_cast<long long>(f.counters.enqueued),
                  static_cast<long long>(f.counters.dequeued),
                  static_cast<long long>(f.counters.mdijkstra_runs),
                  static_cast<long long>(f.counters.cache_hits),
                  static_cast<long long>(f.counters.log_replays),
                  static_cast<long long>(f.counters.cand_examined),
                  static_cast<long long>(f.counters.cand_simd_skipped),
                  static_cast<long long>(f.counters.dom_pruned),
                  static_cast<long long>(f.counters.skyline_routes),
                  static_cast<long long>(f.counters.bucket_runs),
                  static_cast<long long>(f.counters.resume_runs),
                  static_cast<long long>(f.counters.fwd_searches),
                  static_cast<long long>(f.counters.fwd_reuses),
                  static_cast<long long>(f.counters.bucket_cands));
    out += buf;
  }
  return out;
}

/// Per-counter diff of two golden texts: lines are "label key=value ...",
/// so when the row sets line up the mismatch report can name exactly which
/// counters drifted and by how much, instead of dumping two walls of text.
/// Falls back to the full dump when the structure itself differs (header
/// bump, added/removed rows or fields).
struct GoldenRow {
  std::string label;                                        // "family/config"
  std::vector<std::pair<std::string, long long>> counters;  // in line order
};

std::vector<GoldenRow> ParseGoldenRows(const std::string& text) {
  std::vector<GoldenRow> rows;
  size_t pos = text.find('\n');  // skip the header line
  if (pos == std::string::npos) return rows;
  ++pos;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    GoldenRow row;
    size_t tok = 0;
    while (tok < line.size()) {
      size_t end = line.find(' ', tok);
      if (end == std::string::npos) end = line.size();
      const std::string field = line.substr(tok, end - tok);
      tok = end + 1;
      if (field.empty()) continue;
      const size_t eq = field.find('=');
      if (eq == std::string::npos) {
        row.label = field;
      } else {
        row.counters.emplace_back(field.substr(0, eq),
                                  std::atoll(field.c_str() + eq + 1));
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Prints "row label: counter expected -> actual (delta)" lines; returns
/// false when the two texts are not row/field aligned (caller falls back to
/// the full dump).
bool PrintGoldenCounterDiff(const std::string& expected,
                            const std::string& actual) {
  const size_t ehdr = expected.find('\n');
  const size_t ahdr = actual.find('\n');
  if (ehdr == std::string::npos || ahdr == std::string::npos) return false;
  if (expected.substr(0, ehdr) != actual.substr(0, ahdr)) {
    std::fprintf(stderr, "golden header differs: \"%s\" vs \"%s\"\n",
                 expected.substr(0, ehdr).c_str(),
                 actual.substr(0, ahdr).c_str());
    return false;
  }
  const std::vector<GoldenRow> exp = ParseGoldenRows(expected);
  const std::vector<GoldenRow> act = ParseGoldenRows(actual);
  if (exp.size() != act.size()) return false;
  int diffs = 0;
  for (size_t i = 0; i < exp.size(); ++i) {
    if (exp[i].label != act[i].label ||
        exp[i].counters.size() != act[i].counters.size()) {
      return false;
    }
    for (size_t c = 0; c < exp[i].counters.size(); ++c) {
      if (exp[i].counters[c].first != act[i].counters[c].first) return false;
      const long long e = exp[i].counters[c].second;
      const long long a = act[i].counters[c].second;
      if (e != a) {
        std::fprintf(stderr, "  %-22s %-14s %lld -> %lld (%+lld)\n",
                     exp[i].label.c_str(), exp[i].counters[c].first.c_str(),
                     e, a, a - e);
        ++diffs;
      }
    }
  }
  return diffs > 0;
}

std::string ReadFileOrEmpty(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool WriteFile(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

/// The fixed golden suite: small, env-independent, still covering all three
/// families, every predicate/destination shape and every engine
/// configuration — settle (the classic path), auto (the production cost
/// model, resume-dominated at this size), forced bucket (so bucket-scan
/// work counters are pinned even where the cost model would decline) and
/// warm (auto with an engine-lifetime SharedQueryCache, pinning the
/// cross-query cache-served work) — so retriever-path and cache-path work
/// regressions fail the gate too.
std::vector<FamilyResult> RunGoldenSuite() {
  static constexpr BenchConfig kGoldenConfigs[] = {
      {"settle", RetrieverKind::kSettle, false},
      {"auto", RetrieverKind::kAuto, true},
      {"bucket", RetrieverKind::kBucket, true},
      {"warm", RetrieverKind::kAuto, true, true},
  };
  std::vector<FamilyResult> out;
  for (const GraphFamily family :
       {GraphFamily::kGrid, GraphFamily::kCluster, GraphFamily::kSmallWorld}) {
    const Scenario sc =
        MakeScenario(HotpathSpec(family, /*vertices=*/800,
                                 /*num_queries=*/24));
    for (const BenchConfig& config : kGoldenConfigs) {
      out.push_back(RunFamily(sc, config, /*reps=*/0));
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  const char* write_golden = nullptr;
  const char* check_golden = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--write-golden") == 0 && i + 1 < argc) {
      write_golden = argv[++i];
    } else if (std::strcmp(argv[i], "--check-golden") == 0 && i + 1 < argc) {
      check_golden = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--write-golden FILE | "
                   "--check-golden FILE]\n");
      return 2;
    }
  }

  const double scale = EnvDouble("SKYSR_BENCH_SCALE", 1.0);
  const int num_queries = EnvInt("SKYSR_BENCH_QUERIES", 60);
  const int reps = EnvInt("SKYSR_BENCH_REPS", 3);
  const char* json_path = std::getenv("SKYSR_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_core.json";
  const int64_t vertices =
      std::max<int64_t>(200, static_cast<int64_t>(2500 * scale));

  std::printf("== hotpath bench: %lld vertices/family, %d queries, %d reps\n",
              static_cast<long long>(vertices), num_queries, reps);

  std::vector<FamilyResult> families;
  for (const GraphFamily family :
       {GraphFamily::kGrid, GraphFamily::kCluster, GraphFamily::kSmallWorld}) {
    const Scenario sc =
        MakeScenario(HotpathSpec(family, vertices, num_queries));
    for (const BenchConfig& config : kConfigs) {
      families.push_back(RunFamily(sc, config, reps));
    }
  }

  TablePrinter table({"family", "config", "V", "PoI", "qps", "p50 ms",
                      "p99 ms", "settles/s", "expansions/s", "allocs/query"});
  JsonWriter json;
  json.BeginObject();
  json.Field("bench", "hotpath");
  WriteStandardMeta(&json);
  json.Field("scale", scale);
  json.Field("reps", static_cast<int64_t>(reps));
  json.BeginArray("families");

  constexpr size_t kNumConfigs = std::size(kConfigs);
  double total_queries = 0, total_elapsed = 0;
  double config_queries[kNumConfigs] = {}, config_elapsed[kNumConfigs] = {};
  for (FamilyResult& f : families) {
    const double qps =
        f.elapsed_s > 0 ? static_cast<double>(f.timed_queries) / f.elapsed_s
                        : 0;
    // Work rates use the deterministic single-pass counters scaled by reps:
    // the timed loop does `reps` identical passes.
    const double settles_per_s =
        f.elapsed_s > 0 ? static_cast<double>(f.counters.settled * reps) /
                              f.elapsed_s
                        : 0;
    const double expansions = static_cast<double>(
        f.counters.mdijkstra_runs + f.counters.cache_hits);
    const double expansions_per_s =
        f.elapsed_s > 0 ? expansions * reps / f.elapsed_s : 0;
    const double allocs_per_query =
        f.timed_queries > 0
            ? static_cast<double>(f.allocs) / static_cast<double>(f.timed_queries)
            : 0;
    const double p50 = Percentile(f.latencies_ms, 0.50);
    const double p99 = Percentile(f.latencies_ms, 0.99);
    total_queries += static_cast<double>(f.timed_queries);
    total_elapsed += f.elapsed_s;
    for (size_t ci = 0; ci < kNumConfigs; ++ci) {
      if (f.config == kConfigs[ci].label) {
        config_queries[ci] += static_cast<double>(f.timed_queries);
        config_elapsed[ci] += f.elapsed_s;
      }
    }

    table.AddRow({f.name, f.config, FmtInt(f.vertices), FmtInt(f.pois),
                  Fmt("%.1f", qps), Fmt("%.3f", p50), Fmt("%.3f", p99),
                  Fmt("%.0f", settles_per_s), Fmt("%.0f", expansions_per_s),
                  Fmt("%.1f", allocs_per_query)});

    json.BeginObject();
    json.Field("family", f.name);
    json.Field("config", f.config);
    json.Field("index_build_ms", f.index_build_ms);
    json.Field("vertices", f.vertices);
    json.Field("pois", f.pois);
    json.Field("queries", f.queries);
    json.Field("qps", qps);
    json.Field("p50_ms", p50);
    json.Field("p99_ms", p99);
    json.Field("settles_per_sec", settles_per_s);
    json.Field("expansions_per_sec", expansions_per_s);
    json.Field("allocs_per_query", allocs_per_query);
    json.BeginObject("counters");
    json.Field("settled", f.counters.settled);
    json.Field("relaxed", f.counters.relaxed);
    json.Field("enqueued", f.counters.enqueued);
    json.Field("dequeued", f.counters.dequeued);
    json.Field("mdijkstra_runs", f.counters.mdijkstra_runs);
    json.Field("cache_hits", f.counters.cache_hits);
    json.Field("settle_log_replays", f.counters.log_replays);
    json.Field("cand_examined", f.counters.cand_examined);
    json.Field("cand_simd_skipped", f.counters.cand_simd_skipped);
    json.Field("qb_dominance_pruned", f.counters.dom_pruned);
    json.Field("skyline_routes", f.counters.skyline_routes);
    json.Field("bucket_runs", f.counters.bucket_runs);
    json.Field("resume_runs", f.counters.resume_runs);
    json.Field("bucket_fwd_searches", f.counters.fwd_searches);
    json.Field("bucket_fwd_reuses", f.counters.fwd_reuses);
    json.Field("bucket_candidates", f.counters.bucket_cands);
    json.EndObject();
    if (f.has_xcache) {
      json.BeginObject("xcache");
      json.Field("fwd_hits", f.xcache.fwd_hits);
      json.Field("fwd_misses", f.xcache.fwd_misses);
      json.Field("fwd_evictions", f.xcache.fwd_evictions);
      json.Field("resume_reuses", f.xcache.resume_reuses);
      json.Field("resume_evictions", f.xcache.resume_evictions);
      json.Field("resident_bytes", f.xcache_resident_bytes);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  const double settle_qps =
      config_elapsed[0] > 0 ? config_queries[0] / config_elapsed[0] : 0;
  const double auto_qps =
      config_elapsed[1] > 0 ? config_queries[1] / config_elapsed[1] : 0;
  const double warm_qps =
      config_elapsed[2] > 0 ? config_queries[2] / config_elapsed[2] : 0;
  double warm_allocs = 0, warm_queries = 0;
  for (const FamilyResult& f : families) {
    if (f.has_xcache) {
      warm_allocs += static_cast<double>(f.allocs);
      warm_queries += static_cast<double>(f.timed_queries);
    }
  }
  const double warm_allocs_per_query =
      warm_queries > 0 ? warm_allocs / warm_queries : 0;
  // `total_qps` tracks the production configuration (auto retriever over
  // CH + buckets) for trajectory continuity; the settle config is the PR 4
  // baseline path and the warm config the repeated-source serving mix
  // (engine-lifetime SharedQueryCache attached).
  json.Field("total_qps", auto_qps);
  json.Field("total_qps_settle", settle_qps);
  json.Field("total_qps_auto", auto_qps);
  json.Field("total_qps_warm", warm_qps);
  json.Field("warm_allocs_per_query", warm_allocs_per_query);
  json.EndObject();

  table.Print();
  std::printf(
      "\ntotal single-thread throughput: settle %.1f qps, auto %.1f qps "
      "(%.2fx), warm %.1f qps (%.2fx vs auto, %.1f allocs/query)\n",
      settle_qps, auto_qps, settle_qps > 0 ? auto_qps / settle_qps : 0.0,
      warm_qps, auto_qps > 0 ? warm_qps / auto_qps : 0.0,
      warm_allocs_per_query);
  if (!json.WriteFile(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (write_golden != nullptr || check_golden != nullptr) {
    std::printf("\n== golden counter suite (fixed small configuration)\n");
    const std::string text = GoldenText(RunGoldenSuite());
    if (write_golden != nullptr) {
      if (!WriteFile(write_golden, text)) {
        std::fprintf(stderr, "failed to write %s\n", write_golden);
        return 1;
      }
      std::printf("wrote golden counters to %s\n%s", write_golden,
                  text.c_str());
    }
    if (check_golden != nullptr) {
      const std::string expected = ReadFileOrEmpty(check_golden);
      if (expected.empty()) {
        std::fprintf(stderr, "golden file %s missing or empty\n",
                     check_golden);
        return 1;
      }
      if (expected != text) {
        std::fprintf(stderr, "GOLDEN COUNTER MISMATCH (%s)\n", check_golden);
        if (!PrintGoldenCounterDiff(expected, text)) {
          // Structural mismatch (header/rows/fields) — dump both in full.
          std::fprintf(stderr, "-- expected:\n%s-- actual:\n%s",
                       expected.c_str(), text.c_str());
        }
        std::fprintf(
            stderr,
            "The counters are deterministic per toolchain: a diff means an\n"
            "algorithmic-work change in the engine, OR a libm/compiler\n"
            "rounding change (scenario generation uses pow/log/cos). If the\n"
            "change is intentional or the toolchain moved, regenerate with\n"
            "  bench_hotpath --write-golden %s\n"
            "and commit the result alongside an explanation.\n",
            check_golden);
        return 1;
      }
      std::printf("golden counters match %s\n", check_golden);
    }
  }
  return 0;
}

}  // namespace
}  // namespace skysr::bench

int main(int argc, char** argv) { return skysr::bench::Main(argc, argv); }

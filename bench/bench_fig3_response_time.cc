// Figure 3 (a,b,c): response time vs category-sequence size |S_q| for BSSR,
// BSSR without optimizations, and the naive PNE / Dijkstra-based baselines,
// on the Tokyo-like, NYC-like and Cal-like datasets.
//
// Paper shape to reproduce: BSSR fastest everywhere; the naive baselines
// degrade by orders of magnitude as |S_q| grows (the paper's |S_q|=5 naive
// runs "were not finished after a month" — here they hit the per-query
// budget and print DNF).

#include <cstdio>

#include "baseline/naive_skysr.h"
#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "util/timer.h"

namespace skysr::bench {
namespace {

struct Cell {
  double total_ms = 0;
  int done = 0;
  int dnf = 0;

  std::string Render() const {
    if (done == 0) return "DNF";
    std::string s = Fmt("%.1f ms", total_ms / done);
    if (dnf > 0) s += " (" + std::to_string(dnf) + " DNF)";
    return s;
  }
};

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 5);
  const double budget = EnvDouble("SKYSR_BENCH_BUDGET", 5.0);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Figure 3: response time vs |Sq| ===\n");
  std::printf("(per-query naive budget %.1fs; DNF = did not finish)\n\n",
              budget);
  for (const Dataset& ds : datasets) {
    std::printf("--- %s: |V|=%lld |P|=%lld |E|=%lld ---\n", ds.name.c_str(),
                static_cast<long long>(ds.graph.num_vertices()),
                static_cast<long long>(ds.graph.num_pois()),
                static_cast<long long>(ds.graph.num_edges()));
    TablePrinter table({"|Sq|", "BSSR", "BSSR w/o Opt", "PNE", "Dij"});
    BssrEngine engine(ds.graph, ds.forest);
    for (int size = 2; size <= 5; ++size) {
      const auto queries = MakeBenchQueries(ds, size, queries_per_cfg);
      Cell bssr, bssr_wo, pne, dij;
      for (const Query& q : queries) {
        {
          QueryOptions opts;
          WallTimer t;
          auto r = engine.Run(q, opts);
          if (r.ok() && !r->stats.timed_out) {
            bssr.total_ms += t.ElapsedMillis();
            ++bssr.done;
          }
        }
        {
          QueryOptions opts;
          opts.use_initial_search = false;
          opts.use_lower_bounds = false;
          opts.use_cache = false;
          opts.queue_discipline = QueueDiscipline::kDistanceBased;
          opts.time_budget_seconds = budget;
          WallTimer t;
          auto r = engine.Run(q, opts);
          if (r.ok() && !r->stats.timed_out) {
            bssr_wo.total_ms += t.ElapsedMillis();
            ++bssr_wo.done;
          } else {
            ++bssr_wo.dnf;
          }
        }
        for (const OsrEngineKind kind :
             {OsrEngineKind::kPne, OsrEngineKind::kDijkstraBased}) {
          Cell& cell = kind == OsrEngineKind::kPne ? pne : dij;
          QueryOptions opts;
          opts.time_budget_seconds = budget;
          WallTimer t;
          auto r = RunNaiveSkySr(ds.graph, ds.forest, q, opts, kind);
          if (r.ok() && !r->stats.timed_out) {
            cell.total_ms += t.ElapsedMillis();
            ++cell.done;
          } else {
            ++cell.dnf;
          }
        }
      }
      table.AddRow({std::to_string(size), bssr.Render(), bssr_wo.Render(),
                    pne.Render(), dij.Render()});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

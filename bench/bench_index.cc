// Index-layer benchmark: oracle build cost, point-to-point distance-query
// speedup over flat Dijkstra, and CH bucket many-to-many throughput, per
// scenario graph family. Every timed query is also verified bit-equal
// across oracles, so the bench doubles as a large-graph exactness check.
//
// Emits a human table plus machine-readable BENCH_index.json (written to
// the working directory, override with SKYSR_BENCH_JSON_OUT) so the perf
// trajectory of the index layer is tracked across commits. The acceptance
// gate for the index layer is the `p2p_speedup_ch` figure of the largest
// family instance (>= 3x over flat Dijkstra).
//
// Knobs: SKYSR_BENCH_SCALE   vertex-count multiplier (default 1.0 = 4000)
//        SKYSR_BENCH_PAIRS   point-to-point query pairs (default 200)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "index/oracle_factory.h"
#include "scenario/scenario.h"
#include "util/rng.h"
#include "util/timer.h"

namespace skysr {
namespace {

Graph BenchGraph(GraphFamily family, int64_t vertices) {
  ScenarioGraphParams p;
  p.family = family;
  p.target_vertices = vertices;
  p.weights = WeightModel::kEuclidean;
  p.num_clusters = 8;
  p.seed = 2026 + static_cast<uint64_t>(family);
  return MakeScenarioGraph(p);
}

struct P2pTiming {
  double total_ms = 0;
  int64_t mismatches = 0;
};

template <typename DistFn>
P2pTiming TimePairs(const std::vector<std::pair<VertexId, VertexId>>& pairs,
                    const std::vector<Weight>& reference, DistFn&& fn) {
  P2pTiming t;
  WallTimer timer;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const Weight d = fn(pairs[i].first, pairs[i].second);
    if (d != reference[i]) ++t.mismatches;
  }
  t.total_ms = timer.ElapsedMillis();
  return t;
}

void Run() {
  const double scale = bench::EnvDouble("SKYSR_BENCH_SCALE", 1.0);
  const int num_pairs = bench::EnvInt("SKYSR_BENCH_PAIRS", 200);
  const auto vertices = static_cast<int64_t>(4000 * scale);
  const char* json_out = std::getenv("SKYSR_BENCH_JSON_OUT");

  std::printf("index-layer bench: |V|~%lld per family, %d p2p pairs\n\n",
              static_cast<long long>(vertices), num_pairs);
  bench::TablePrinter table({"family", "|V|", "ch build ms", "shortcuts",
                             "alt build ms", "flat us/q", "ch us/q",
                             "alt us/q", "ch speedup", "alt speedup",
                             "m2m ch speedup"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "index");
  bench::WriteStandardMeta(&json);
  json.Field("vertices_per_family", static_cast<int64_t>(vertices));
  json.Field("p2p_pairs", static_cast<int64_t>(num_pairs));
  json.BeginArray("families");

  for (GraphFamily family : {GraphFamily::kGrid, GraphFamily::kCluster,
                             GraphFamily::kSmallWorld}) {
    const Graph g = BenchGraph(family, vertices);
    const auto ch =
        std::unique_ptr<DistanceOracle>(MakeOracle(OracleKind::kCh, g));
    const auto& ch_stats =
        static_cast<const ChOracle&>(*ch).build_stats();
    const auto alt =
        std::unique_ptr<DistanceOracle>(MakeOracle(OracleKind::kAlt, g));
    const auto& alt_stats =
        static_cast<const AltOracle&>(*alt).build_stats();
    const FlatOracle flat(g);
    OracleWorkspace ws;

    Rng rng(42);
    std::vector<std::pair<VertexId, VertexId>> pairs;
    for (int i = 0; i < num_pairs; ++i) {
      pairs.emplace_back(
          static_cast<VertexId>(rng.UniformInt(0, g.num_vertices() - 1)),
          static_cast<VertexId>(rng.UniformInt(0, g.num_vertices() - 1)));
    }
    std::vector<Weight> reference;
    reference.reserve(pairs.size());
    for (const auto& [s, t] : pairs) {
      reference.push_back(flat.Distance(s, t, ws));
    }

    const P2pTiming flat_t = TimePairs(
        pairs, reference,
        [&](VertexId s, VertexId t) { return flat.Distance(s, t, ws); });
    const P2pTiming ch_t = TimePairs(
        pairs, reference,
        [&](VertexId s, VertexId t) { return ch->Distance(s, t, ws); });
    const P2pTiming alt_t = TimePairs(
        pairs, reference,
        [&](VertexId s, VertexId t) { return alt->Distance(s, t, ws); });
    if (ch_t.mismatches != 0 || alt_t.mismatches != 0) {
      std::fprintf(stderr,
                   "!! %s: %lld CH / %lld ALT mismatches vs flat Dijkstra\n",
                   GraphFamilyName(family),
                   static_cast<long long>(ch_t.mismatches),
                   static_cast<long long>(alt_t.mismatches));
    }

    // Many-to-many: an NNinit/lower-bound-shaped table (few sources, many
    // targets).
    std::vector<VertexId> m2m_sources, m2m_targets;
    for (int i = 0; i < 8; ++i) {
      m2m_sources.push_back(
          static_cast<VertexId>(rng.UniformInt(0, g.num_vertices() - 1)));
    }
    for (int j = 0; j < 128; ++j) {
      m2m_targets.push_back(
          static_cast<VertexId>(rng.UniformInt(0, g.num_vertices() - 1)));
    }
    std::vector<Weight> m2m_flat(m2m_sources.size() * m2m_targets.size());
    std::vector<Weight> m2m_ch(m2m_flat.size());
    WallTimer m2m_flat_timer;
    flat.Table(m2m_sources, m2m_targets, ws, m2m_flat.data());
    const double m2m_flat_ms = m2m_flat_timer.ElapsedMillis();
    WallTimer m2m_ch_timer;
    ch->Table(m2m_sources, m2m_targets, ws, m2m_ch.data());
    const double m2m_ch_ms = m2m_ch_timer.ElapsedMillis();
    int64_t m2m_mismatches = 0;
    for (size_t i = 0; i < m2m_flat.size(); ++i) {
      if (m2m_flat[i] != m2m_ch[i]) ++m2m_mismatches;
    }
    if (m2m_mismatches != 0) {
      std::fprintf(stderr, "!! %s: %lld m2m mismatches\n",
                   GraphFamilyName(family),
                   static_cast<long long>(m2m_mismatches));
    }

    const double us_per = 1000.0 / num_pairs;
    const double ch_speedup = ch_t.total_ms > 0
                                  ? flat_t.total_ms / ch_t.total_ms
                                  : 0.0;
    const double alt_speedup = alt_t.total_ms > 0
                                   ? flat_t.total_ms / alt_t.total_ms
                                   : 0.0;
    const double m2m_speedup = m2m_ch_ms > 0 ? m2m_flat_ms / m2m_ch_ms : 0.0;
    table.AddRow({GraphFamilyName(family), bench::FmtInt(g.num_vertices()),
                  bench::Fmt("%.0f", ch_stats.build_ms),
                  bench::FmtInt(ch_stats.shortcuts_added),
                  bench::Fmt("%.0f", alt_stats.build_ms),
                  bench::Fmt("%.1f", flat_t.total_ms * us_per),
                  bench::Fmt("%.1f", ch_t.total_ms * us_per),
                  bench::Fmt("%.1f", alt_t.total_ms * us_per),
                  bench::Fmt("%.1fx", ch_speedup),
                  bench::Fmt("%.1fx", alt_speedup),
                  bench::Fmt("%.1fx", m2m_speedup)});

    json.BeginObject();
    json.Field("family", GraphFamilyName(family));
    json.Field("vertices", g.num_vertices());
    json.Field("edges", g.num_edges());
    json.Field("ch_build_ms", ch_stats.build_ms);
    json.Field("ch_shortcuts", ch_stats.shortcuts_added);
    json.Field("ch_memory_bytes", ch->MemoryBytes());
    json.Field("alt_build_ms", alt_stats.build_ms);
    json.Field("alt_memory_bytes", alt->MemoryBytes());
    json.Field("p2p_flat_ms", flat_t.total_ms);
    json.Field("p2p_ch_ms", ch_t.total_ms);
    json.Field("p2p_alt_ms", alt_t.total_ms);
    json.Field("p2p_speedup_ch", ch_speedup);
    json.Field("p2p_speedup_alt", alt_speedup);
    json.Field("m2m_flat_ms", m2m_flat_ms);
    json.Field("m2m_ch_ms", m2m_ch_ms);
    json.Field("m2m_speedup_ch", m2m_speedup);
    json.Field("mismatches",
               ch_t.mismatches + alt_t.mismatches + m2m_mismatches);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  table.Print();
  const std::string out_path =
      json_out != nullptr ? json_out : "BENCH_index.json";
  if (json.WriteFile(out_path)) {
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
  }
}

}  // namespace
}  // namespace skysr

int main() {
  skysr::Run();
  return 0;
}

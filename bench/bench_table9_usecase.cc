// Table 9 / §7.5 use case: a Tokyo evening — Beer Garden, then a Sushi
// Restaurant, then a Sake Bar, ending at the hotel (destination variant).
//
// Paper shape to reproduce: the skyline contains the perfect-match route
// plus markedly shorter semantically-relaxed alternatives (the paper's
// second route swaps the Beer Garden for a generic Bar and is ~6x shorter).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "util/rng.h"

namespace skysr::bench {
namespace {

void Run() {
  const double scale = EnvDouble("SKYSR_BENCH_SCALE", 1.0);
  Dataset ds = MakeDataset(TokyoLikeSpec(0.02 * scale));
  BssrEngine engine(ds.graph, ds.forest);
  const CategoryId beer = ds.forest.FindByName("Beer Garden");
  const CategoryId sushi = ds.forest.FindByName("Sushi Restaurant");
  const CategoryId sake = ds.forest.FindByName("Sake Bar");
  const CategoryId hotel = ds.forest.FindByName("Hotel");

  std::printf("=== Table 9 use case: Beer Garden -> Sushi -> Sake Bar"
              " (+ hotel destination) ===\n\n");
  Rng rng(2024);
  int shown = 0;
  for (int attempt = 0; attempt < 50 && shown < 3; ++attempt) {
    Query q = MakeSimpleQuery(
        static_cast<VertexId>(rng.UniformU64(
            static_cast<uint64_t>(ds.graph.num_vertices()))),
        {beer, sushi, sake});
    // Destination: the nearest Hotel PoI's vertex (the user's hotel).
    VertexId dest = kInvalidVertex;
    for (PoiId p = 0; p < ds.graph.num_pois(); ++p) {
      bool is_hotel = false;
      for (CategoryId c : ds.graph.PoiCategories(p)) {
        is_hotel = is_hotel || ds.forest.IsAncestorOrSelf(hotel, c);
      }
      if (is_hotel) {
        dest = ds.graph.VertexOfPoi(p);
        break;
      }
    }
    if (dest != kInvalidVertex) q.destination = dest;

    auto r = engine.Run(q, QueryOptions());
    if (!r.ok() || r->routes.size() < 2) continue;
    ++shown;
    std::printf("Start vertex %d%s — %zu skyline routes:\n", q.start,
                q.destination ? " (with hotel destination)" : "",
                r->routes.size());
    TablePrinter table({"distance", "semantic", "sequenced route"});
    for (const Route& route : r->routes) {
      std::string names;
      for (size_t i = 0; i < route.pois.size(); ++i) {
        if (i > 0) names += " -> ";
        const std::string& n = ds.graph.PoiName(route.pois[i]);
        names += n.empty() ? ("poi#" + std::to_string(route.pois[i])) : n;
      }
      table.AddRow({Fmt("%.1f", route.scores.length),
                    Fmt("%.3f", route.scores.semantic), names});
    }
    table.Print();
    const double factor =
        r->routes.back().scores.length / r->routes.front().scores.length;
    std::printf("perfect route is %.1fx longer than the most relaxed one\n\n",
                factor);
  }
  if (shown == 0) {
    std::printf("no multi-route skylines found at this scale; "
                "increase SKYSR_BENCH_SCALE\n");
  }
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

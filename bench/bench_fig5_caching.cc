// Figure 5: number of (modified) Dijkstra executions with and without
// on-the-fly caching (§5.3.4), for |S_q| in 2..5.
//
// Paper shape to reproduce: caching cuts the execution count, and the gap
// widens with |S_q| (more opportunities to reuse earlier searches).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"

namespace skysr::bench {
namespace {

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Figure 5: # Dijkstra executions with/without cache ===\n\n");
  for (const Dataset& ds : datasets) {
    std::printf("--- %s ---\n", ds.name.c_str());
    TablePrinter table(
        {"|Sq|", "with cache", "w/o cache", "hits", "saved"});
    BssrEngine engine(ds.graph, ds.forest);
    for (int size = 2; size <= 5; ++size) {
      const auto queries = MakeBenchQueries(ds, size, queries_per_cfg);
      int64_t with = 0, without = 0, hits = 0;
      for (const Query& q : queries) {
        QueryOptions opts;
        opts.use_cache = true;
        auto a = engine.Run(q, opts);
        if (a.ok()) {
          with += a->stats.mdijkstra_runs;
          hits += a->stats.mdijkstra_cache_hits;
        }
        opts.use_cache = false;
        auto b = engine.Run(q, opts);
        if (b.ok()) without += b->stats.mdijkstra_runs;
      }
      table.AddRow({std::to_string(size), FmtInt(with), FmtInt(without),
                    FmtInt(hits),
                    Fmt("%.1f%%",
                        without > 0
                            ? 100.0 * static_cast<double>(without - with) /
                                  static_cast<double>(without)
                            : 0.0)});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

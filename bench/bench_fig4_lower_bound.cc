// Figure 4: tightness of the possible-minimum-distance lower bounds
// (§5.3.3) at |S_q| = 5 — the ratio of the semantic-match (ls) and
// perfect-match (lp) distance sums to the weight sum of the initial search.
//
// Paper shape to reproduce: lp >= ls everywhere; the Tokyo-like dataset
// (spread-out PoIs) gets markedly larger ratios than the NYC/Cal-like
// datasets whose PoIs concentrate in clusters.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"

namespace skysr::bench {
namespace {

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Figure 4: lower-bound tightness (|Sq| = 5) ===\n\n");
  TablePrinter table({"dataset", "semantic-match ratio", "perfect-match ratio",
                      "PoI clustering"});
  for (const Dataset& ds : datasets) {
    BssrEngine engine(ds.graph, ds.forest);
    const auto queries = MakeBenchQueries(ds, 5, queries_per_cfg);
    double ls_ratio = 0, lp_ratio = 0;
    int n = 0;
    for (const Query& q : queries) {
      auto r = engine.Run(q, QueryOptions());
      if (!r.ok() || r->stats.nninit_weight_sum <= 0) continue;
      ls_ratio += r->stats.ls_total / r->stats.nninit_weight_sum;
      lp_ratio += r->stats.lp_total / r->stats.nninit_weight_sum;
      ++n;
    }
    const char* clustering = ds.name == "tokyo-like" ? "spread" : "clustered";
    table.AddRow({ds.name, n ? Fmt("%.4f", ls_ratio / n) : "-",
                  n ? Fmt("%.4f", lp_ratio / n) : "-", clustering});
  }
  table.Print();
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

// Table 8: total vertices visited under the proposed queue discipline
// (size desc, semantic asc, length asc) vs the conventional distance-based
// discipline, for |S_q| in 2..5.
//
// Paper shape to reproduce: the proposed discipline visits fewer vertices,
// with the gap widening as |S_q| grows.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"

namespace skysr::bench {
namespace {

void Run() {
  const int queries_per_cfg = EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto datasets = MakeBenchDatasets();

  std::printf("=== Table 8: vertices visited per queue discipline ===\n\n");
  for (const Dataset& ds : datasets) {
    std::printf("--- %s ---\n", ds.name.c_str());
    TablePrinter table({"|Sq|", "Proposed", "Distance-based", "ratio"});
    BssrEngine engine(ds.graph, ds.forest);
    for (int size = 2; size <= 5; ++size) {
      const auto queries = MakeBenchQueries(ds, size, queries_per_cfg);
      int64_t proposed = 0, distance = 0;
      for (const Query& q : queries) {
        QueryOptions opts;
        opts.queue_discipline = QueueDiscipline::kProposed;
        auto a = engine.Run(q, opts);
        if (a.ok()) proposed += a->stats.vertices_settled;
        opts.queue_discipline = QueueDiscipline::kDistanceBased;
        auto b = engine.Run(q, opts);
        if (b.ok()) distance += b->stats.vertices_settled;
      }
      table.AddRow({std::to_string(size), FmtInt(proposed), FmtInt(distance),
                    Fmt("%.2fx", proposed > 0
                                     ? static_cast<double>(distance) /
                                           static_cast<double>(proposed)
                                     : 0.0)});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace skysr::bench

int main() {
  skysr::bench::Run();
  return 0;
}

// Response-time sweep over the scenario generator's graph families
// (bench_fig3-style, but on synthetic grid / cluster / small-world networks
// instead of the Tokyo/NYC/Cal-like datasets): BSSR with all optimizations
// across sequence sizes, plus the skyline-size profile of each family.
//
// Knobs: SKYSR_BENCH_SCALE (vertex-count multiplier), SKYSR_BENCH_QUERIES,
//        SKYSR_ORACLE (flat|ch|alt — back the engine with an index-layer
//        distance oracle), SKYSR_XCACHE (on|1 — attach an engine-lifetime
//        SharedQueryCache so warm cross-query state carries across the
//        sweep; per-config cache counters land in the JSON). Emits
//        BENCH_scenarios.json (override the path with SKYSR_BENCH_JSON_OUT)
//        for perf-trajectory tracking.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string_view>

#include "bench/bench_common.h"
#include "cache/shared_query_cache.h"
#include "core/bssr_engine.h"
#include "index/ch_oracle.h"
#include "index/oracle_factory.h"
#include "retrieval/category_buckets.h"
#include "scenario/scenario.h"
#include "util/timer.h"

namespace skysr {
namespace {

ScenarioSpec BenchSpec(GraphFamily family, int64_t vertices, uint64_t seed) {
  ScenarioSpec spec;
  spec.name = GraphFamilyName(family);
  spec.graph.family = family;
  spec.graph.target_vertices = vertices;
  spec.graph.weights = WeightModel::kEuclidean;
  spec.graph.num_clusters = 8;
  spec.taxonomy.num_trees = 6;
  spec.taxonomy.max_fanout = 3;
  spec.taxonomy.max_levels = 3;
  spec.pois.num_pois = vertices / 4;
  spec.pois.zipf_theta = 0.8;
  SeedScenarioSpec(&spec, seed);
  return spec;
}

void Run() {
  const double scale = bench::EnvDouble("SKYSR_BENCH_SCALE", 1.0);
  const int queries = bench::EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto vertices = static_cast<int64_t>(4000 * scale);

  const OracleKind oracle_kind =
      OracleKindFromEnv(OracleKind::kFlat).value_or(OracleKind::kFlat);
  const char* xcache_env = std::getenv("SKYSR_XCACHE");
  const bool xcache_on =
      xcache_env != nullptr && (std::string_view(xcache_env) == "on" ||
                                std::string_view(xcache_env) == "1");

  bench::TablePrinter table({"family", "|V|", "|P|", "size", "mean ms",
                             "max ms", "skyline"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "scenarios");
  bench::WriteStandardMeta(&json);
  json.Field("oracle", OracleKindName(oracle_kind));
  json.Field("xcache", xcache_on ? "on" : "off");
  json.Field("queries_per_config", static_cast<int64_t>(queries));
  json.BeginArray("configs");
  for (GraphFamily family : {GraphFamily::kGrid, GraphFamily::kCluster,
                             GraphFamily::kSmallWorld}) {
    const Scenario sc = MakeScenario(BenchSpec(family, vertices,
                                               /*seed=*/2026));
    // With the cache axis on and a CH oracle, also build the bucket tables:
    // the auto retriever only engages the cacheable bucket/resume backends
    // when they exist, so this is what makes the counters below non-zero.
    std::unique_ptr<ChOracle> ch;
    std::unique_ptr<CategoryBucketIndex> buckets;
    std::unique_ptr<DistanceOracle> oracle;
    if (xcache_on && oracle_kind == OracleKind::kCh) {
      ch = std::make_unique<ChOracle>(ChOracle::Build(sc.dataset.graph));
      buckets = std::make_unique<CategoryBucketIndex>(
          CategoryBucketIndex::Build(sc.dataset.graph, *ch));
    } else if (oracle_kind != OracleKind::kFlat) {
      oracle = MakeOracle(oracle_kind, sc.dataset.graph);
    }
    BssrEngine engine(sc.dataset.graph, sc.dataset.forest,
                      ch != nullptr ? ch.get() : oracle.get(), buckets.get());
    std::optional<SharedQueryCache> xcache;
    if (xcache_on) {
      xcache.emplace();
      engine.AttachSharedCache(&*xcache);
    }
    SharedCacheCounters seen;
    for (int size = 2; size <= 4; ++size) {
      ScenarioWorkloadParams wl = sc.spec.workload;
      wl.num_queries = queries;
      wl.min_sequence = size;
      wl.max_sequence = size;
      const std::vector<Query> batch = MakeScenarioQueries(sc.dataset, wl);
      double total_ms = 0, max_ms = 0;
      int64_t total_routes = 0;
      int ok = 0;
      for (const Query& q : batch) {
        WallTimer t;
        auto r = engine.Run(q);
        if (!r.ok()) continue;
        const double ms = t.ElapsedMillis();
        total_ms += ms;
        max_ms = ms > max_ms ? ms : max_ms;
        total_routes += static_cast<int64_t>(r->routes.size());
        ++ok;
      }
      if (ok == 0) continue;
      table.AddRow({GraphFamilyName(family),
                    bench::FmtInt(sc.dataset.graph.num_vertices()),
                    bench::FmtInt(sc.dataset.graph.num_pois()),
                    bench::FmtInt(size), bench::Fmt("%.2f", total_ms / ok),
                    bench::Fmt("%.2f", max_ms),
                    bench::Fmt("%.2f", static_cast<double>(total_routes) /
                                           ok)});
      json.BeginObject();
      json.Field("family", GraphFamilyName(family));
      json.Field("vertices", sc.dataset.graph.num_vertices());
      json.Field("pois", sc.dataset.graph.num_pois());
      json.Field("sequence_size", static_cast<int64_t>(size));
      json.Field("mean_ms", total_ms / ok);
      json.Field("max_ms", max_ms);
      json.Field("mean_skyline", static_cast<double>(total_routes) / ok);
      if (xcache.has_value()) {
        // Per-config deltas of the engine-lifetime counters; the cache
        // stays warm across the sequence-size sweep of one family.
        const SharedCacheCounters now = xcache->Counters();
        json.BeginObject("xcache");
        json.Field("fwd_hits", now.fwd_hits - seen.fwd_hits);
        json.Field("fwd_misses", now.fwd_misses - seen.fwd_misses);
        json.Field("fwd_evictions", now.fwd_evictions - seen.fwd_evictions);
        json.Field("resume_reuses", now.resume_reuses - seen.resume_reuses);
        json.Field("resume_evictions",
                   now.resume_evictions - seen.resume_evictions);
        json.Field("resident_bytes", xcache->ResidentBytes());
        json.EndObject();
        seen = now;
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  std::printf("BSSR response time on scenario graph families "
              "(all optimizations on, oracle=%s)\n\n",
              OracleKindName(oracle_kind));
  table.Print();
  const char* json_out = std::getenv("SKYSR_BENCH_JSON_OUT");
  const std::string out_path =
      json_out != nullptr ? json_out : "BENCH_scenarios.json";
  if (json.WriteFile(out_path)) std::printf("\nwrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace skysr

int main() {
  skysr::Run();
  return 0;
}

// Response-time sweep over the scenario generator's graph families
// (bench_fig3-style, but on synthetic grid / cluster / small-world networks
// instead of the Tokyo/NYC/Cal-like datasets): BSSR with all optimizations
// across sequence sizes, plus the skyline-size profile of each family.
//
// Knobs: SKYSR_BENCH_SCALE (vertex-count multiplier), SKYSR_BENCH_QUERIES,
//        SKYSR_ORACLE (flat|ch|alt — back the engine with an index-layer
//        distance oracle). Emits BENCH_scenarios.json (override the path
//        with SKYSR_BENCH_JSON_OUT) for perf-trajectory tracking.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "index/oracle_factory.h"
#include "scenario/scenario.h"
#include "util/timer.h"

namespace skysr {
namespace {

ScenarioSpec BenchSpec(GraphFamily family, int64_t vertices, uint64_t seed) {
  ScenarioSpec spec;
  spec.name = GraphFamilyName(family);
  spec.graph.family = family;
  spec.graph.target_vertices = vertices;
  spec.graph.weights = WeightModel::kEuclidean;
  spec.graph.num_clusters = 8;
  spec.taxonomy.num_trees = 6;
  spec.taxonomy.max_fanout = 3;
  spec.taxonomy.max_levels = 3;
  spec.pois.num_pois = vertices / 4;
  spec.pois.zipf_theta = 0.8;
  SeedScenarioSpec(&spec, seed);
  return spec;
}

void Run() {
  const double scale = bench::EnvDouble("SKYSR_BENCH_SCALE", 1.0);
  const int queries = bench::EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto vertices = static_cast<int64_t>(4000 * scale);

  const OracleKind oracle_kind =
      OracleKindFromEnv(OracleKind::kFlat).value_or(OracleKind::kFlat);

  bench::TablePrinter table({"family", "|V|", "|P|", "size", "mean ms",
                             "max ms", "skyline"});
  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "scenarios");
  json.Field("oracle", OracleKindName(oracle_kind));
  json.Field("queries_per_config", static_cast<int64_t>(queries));
  json.BeginArray("configs");
  for (GraphFamily family : {GraphFamily::kGrid, GraphFamily::kCluster,
                             GraphFamily::kSmallWorld}) {
    const Scenario sc = MakeScenario(BenchSpec(family, vertices,
                                               /*seed=*/2026));
    const std::unique_ptr<DistanceOracle> oracle =
        oracle_kind == OracleKind::kFlat
            ? nullptr
            : MakeOracle(oracle_kind, sc.dataset.graph);
    BssrEngine engine(sc.dataset.graph, sc.dataset.forest, oracle.get());
    for (int size = 2; size <= 4; ++size) {
      ScenarioWorkloadParams wl = sc.spec.workload;
      wl.num_queries = queries;
      wl.min_sequence = size;
      wl.max_sequence = size;
      const std::vector<Query> batch = MakeScenarioQueries(sc.dataset, wl);
      double total_ms = 0, max_ms = 0;
      int64_t total_routes = 0;
      int ok = 0;
      for (const Query& q : batch) {
        WallTimer t;
        auto r = engine.Run(q);
        if (!r.ok()) continue;
        const double ms = t.ElapsedMillis();
        total_ms += ms;
        max_ms = ms > max_ms ? ms : max_ms;
        total_routes += static_cast<int64_t>(r->routes.size());
        ++ok;
      }
      if (ok == 0) continue;
      table.AddRow({GraphFamilyName(family),
                    bench::FmtInt(sc.dataset.graph.num_vertices()),
                    bench::FmtInt(sc.dataset.graph.num_pois()),
                    bench::FmtInt(size), bench::Fmt("%.2f", total_ms / ok),
                    bench::Fmt("%.2f", max_ms),
                    bench::Fmt("%.2f", static_cast<double>(total_routes) /
                                           ok)});
      json.BeginObject();
      json.Field("family", GraphFamilyName(family));
      json.Field("vertices", sc.dataset.graph.num_vertices());
      json.Field("pois", sc.dataset.graph.num_pois());
      json.Field("sequence_size", static_cast<int64_t>(size));
      json.Field("mean_ms", total_ms / ok);
      json.Field("max_ms", max_ms);
      json.Field("mean_skyline", static_cast<double>(total_routes) / ok);
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  std::printf("BSSR response time on scenario graph families "
              "(all optimizations on, oracle=%s)\n\n",
              OracleKindName(oracle_kind));
  table.Print();
  const char* json_out = std::getenv("SKYSR_BENCH_JSON_OUT");
  const std::string out_path =
      json_out != nullptr ? json_out : "BENCH_scenarios.json";
  if (json.WriteFile(out_path)) std::printf("\nwrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace skysr

int main() {
  skysr::Run();
  return 0;
}

// Response-time sweep over the scenario generator's graph families
// (bench_fig3-style, but on synthetic grid / cluster / small-world networks
// instead of the Tokyo/NYC/Cal-like datasets): BSSR with all optimizations
// across sequence sizes, plus the skyline-size profile of each family.
//
// Knobs: SKYSR_BENCH_SCALE (vertex-count multiplier), SKYSR_BENCH_QUERIES.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bssr_engine.h"
#include "scenario/scenario.h"
#include "util/timer.h"

namespace skysr {
namespace {

ScenarioSpec BenchSpec(GraphFamily family, int64_t vertices, uint64_t seed) {
  ScenarioSpec spec;
  spec.name = GraphFamilyName(family);
  spec.graph.family = family;
  spec.graph.target_vertices = vertices;
  spec.graph.weights = WeightModel::kEuclidean;
  spec.graph.num_clusters = 8;
  spec.taxonomy.num_trees = 6;
  spec.taxonomy.max_fanout = 3;
  spec.taxonomy.max_levels = 3;
  spec.pois.num_pois = vertices / 4;
  spec.pois.zipf_theta = 0.8;
  SeedScenarioSpec(&spec, seed);
  return spec;
}

void Run() {
  const double scale = bench::EnvDouble("SKYSR_BENCH_SCALE", 1.0);
  const int queries = bench::EnvInt("SKYSR_BENCH_QUERIES", 5);
  const auto vertices = static_cast<int64_t>(4000 * scale);

  bench::TablePrinter table({"family", "|V|", "|P|", "size", "mean ms",
                             "max ms", "skyline"});
  for (GraphFamily family : {GraphFamily::kGrid, GraphFamily::kCluster,
                             GraphFamily::kSmallWorld}) {
    const Scenario sc = MakeScenario(BenchSpec(family, vertices,
                                               /*seed=*/2026));
    BssrEngine engine(sc.dataset.graph, sc.dataset.forest);
    for (int size = 2; size <= 4; ++size) {
      ScenarioWorkloadParams wl = sc.spec.workload;
      wl.num_queries = queries;
      wl.min_sequence = size;
      wl.max_sequence = size;
      const std::vector<Query> batch = MakeScenarioQueries(sc.dataset, wl);
      double total_ms = 0, max_ms = 0;
      int64_t total_routes = 0;
      int ok = 0;
      for (const Query& q : batch) {
        WallTimer t;
        auto r = engine.Run(q);
        if (!r.ok()) continue;
        const double ms = t.ElapsedMillis();
        total_ms += ms;
        max_ms = ms > max_ms ? ms : max_ms;
        total_routes += static_cast<int64_t>(r->routes.size());
        ++ok;
      }
      if (ok == 0) continue;
      table.AddRow({GraphFamilyName(family),
                    bench::FmtInt(sc.dataset.graph.num_vertices()),
                    bench::FmtInt(sc.dataset.graph.num_pois()),
                    bench::FmtInt(size), bench::Fmt("%.2f", total_ms / ok),
                    bench::Fmt("%.2f", max_ms),
                    bench::Fmt("%.2f", static_cast<double>(total_routes) /
                                           ok)});
    }
  }
  std::printf("BSSR response time on scenario graph families "
              "(all optimizations on)\n\n");
  table.Print();
}

}  // namespace
}  // namespace skysr

int main() {
  skysr::Run();
  return 0;
}

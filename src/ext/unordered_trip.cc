#include "ext/unordered_trip.h"

#include <algorithm>

#include "core/nn_init.h"
#include "core/skyline_set.h"
#include "graph/dijkstra.h"
#include "graph/dijkstra_runner.h"
#include "graph/graph_builder.h"
#include "util/dary_heap.h"
#include "util/timer.h"

namespace skysr {
namespace {

struct UEntry {
  int32_t node;
  int32_t size;
  double semantic;
  Weight length;
};

struct ULess {
  QueueDiscipline discipline;
  bool operator()(const UEntry& a, const UEntry& b) const {
    if (discipline == QueueDiscipline::kProposed) {
      if (a.size != b.size) return a.size > b.size;
      if (a.semantic != b.semantic) return a.semantic < b.semantic;
      if (a.length != b.length) return a.length < b.length;
    } else {
      if (a.length != b.length) return a.length < b.length;
    }
    return a.node < b.node;
  }
};

}  // namespace

Result<QueryResult> RunUnorderedSkySr(const Graph& g,
                                      const CategoryForest& forest,
                                      const Query& query,
                                      const QueryOptions& options) {
  SKYSR_RETURN_NOT_OK(ValidateQuery(g, forest, query));
  const int k = query.size();
  if (k > 31) {
    return Status::InvalidArgument("unordered queries support up to 31 stops");
  }
  WallTimer timer;
  QueryResult result;
  SearchStats& stats = result.stats;

  const SimilarityFunction& sim_fn =
      options.similarity ? *options.similarity : *DefaultSimilarity();
  const SemanticAggregator agg(options.aggregation);

  std::vector<PositionMatcher> matchers;
  matchers.reserve(static_cast<size_t>(k));
  for (const CategoryPredicate& pred : query.sequence) {
    matchers.emplace_back(g, forest, sim_fn, pred, options.multi_category);
  }

  std::vector<Weight> dest_storage;
  const std::vector<Weight>* dest_dist = nullptr;
  if (query.destination) {
    dest_storage = g.directed()
                       ? SingleSourceDistances(ReverseOf(g),
                                               *query.destination)
                             .dist
                       : SingleSourceDistances(g, *query.destination).dist;
    dest_dist = &dest_storage;
  }

  SkylineSet skyline;
  RouteArena arena;
  std::vector<uint32_t> mask_of_node;  // parallel to arena

  // Seed the upper bound with the greedy ordered chain — every ordered
  // sequenced route is a valid unordered one.
  DijkstraWorkspace nn_ws;
  if (options.use_initial_search) {
    RunNnInit(g, matchers, query.start, agg, dest_dist, nn_ws, &skyline,
              &stats);
  }

  DaryHeap<UEntry, ULess> queue(ULess{options.queue_discipline});
  DijkstraWorkspace ws;
  const uint32_t full_mask = (1u << k) - 1;

  const auto expand = [&](int32_t node_idx) {
    VertexId src;
    Weight len;
    double acc;
    uint32_t mask;
    int filled;
    if (node_idx == RouteArena::kEmpty) {
      src = query.start;
      len = 0;
      acc = agg.Identity();
      mask = 0;
      filled = 0;
    } else {
      const RouteArena::Node& nd = arena.node(node_idx);
      src = nd.vertex;
      len = nd.length;
      acc = nd.acc;
      mask = mask_of_node[static_cast<size_t>(node_idx)];
      filled = nd.size;
    }

    ++stats.mdijkstra_runs;
    const DijkstraRunStats run = RunDijkstra(
        g, src, ws, [&](VertexId v, Weight d, VertexId) {
          const double sem_now = agg.Score(acc);
          const Weight th = skyline.Threshold(sem_now);
          if (len + d >= th) return VisitAction::kStop;
          const PoiId poi = g.PoiAtVertex(v);
          if (poi == kInvalidPoi ||
              (node_idx != RouteArena::kEmpty &&
               arena.Contains(node_idx, poi))) {
            return VisitAction::kContinue;
          }
          for (int pos = 0; pos < k; ++pos) {
            if (mask & (1u << pos)) continue;
            const double sim =
                matchers[static_cast<size_t>(pos)].SimOfPoi(poi);
            if (sim <= 0) continue;
            const double nacc = agg.Extend(acc, sim);
            const double nsem = agg.Score(nacc);
            const Weight nlen = len + d;
            if (filled + 1 == k) {
              Weight flen = nlen;
              if (dest_dist != nullptr) {
                const Weight tail = (*dest_dist)[static_cast<size_t>(v)];
                if (tail == kInfWeight) continue;
                flen += tail;
              }
              const RouteScores scores{flen, nsem};
              if (!skyline.DominatedOrEqual(scores)) {
                std::vector<PoiId> pois = arena.Materialize(node_idx);
                pois.push_back(poi);
                skyline.Update(scores, std::move(pois));
              }
            } else if (nlen < skyline.Threshold(nsem)) {
              const int32_t idx = arena.Add(node_idx, poi, v, nlen, nacc);
              mask_of_node.resize(static_cast<size_t>(idx) + 1);
              mask_of_node[static_cast<size_t>(idx)] =
                  mask | (1u << pos);
              queue.push(UEntry{idx, filled + 1, nsem, nlen});
              ++stats.routes_enqueued;
            }
          }
          return VisitAction::kContinue;
        });
    stats.vertices_settled += run.settled;
    stats.edges_relaxed += run.relaxed;
    stats.weight_sum += run.weight_sum;
  };

  expand(RouteArena::kEmpty);
  while (!queue.empty()) {
    if (timer.ElapsedSeconds() > options.time_budget_seconds) {
      stats.timed_out = true;
      break;
    }
    const UEntry entry = queue.pop();
    ++stats.routes_dequeued;
    const RouteArena::Node& nd = arena.node(entry.node);
    if (nd.length >= skyline.Threshold(agg.Score(nd.acc))) {
      ++stats.routes_pruned;
      continue;
    }
    expand(entry.node);
  }
  (void)full_mask;

  stats.peak_queue_size = static_cast<int64_t>(queue.peak_size());
  stats.route_nodes = arena.num_nodes();
  stats.skyline_size = skyline.size();
  stats.elapsed_ms = timer.ElapsedMillis();
  result.routes = skyline.routes();
  return result;
}

}  // namespace skysr

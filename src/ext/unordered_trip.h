// §6 "Skyline trip planning query": the category sequence is treated as a
// SET of requirements — any visiting order is allowed, every requirement
// must be satisfied by a distinct PoI. The engine reuses BSSR's machinery
// (bulk queue, branch-and-bound against the skyline, greedy seeding) with
// positions tracked by a bitmask; Lemma 5.5 pruning does not transfer to the
// unordered setting and is not applied (see DESIGN.md).

#ifndef SKYSR_EXT_UNORDERED_TRIP_H_
#define SKYSR_EXT_UNORDERED_TRIP_H_

#include "core/bssr_engine.h"
#include "core/query.h"

namespace skysr {

/// Executes an unordered skyline trip-planning query. At most 31 positions.
/// Returned routes list PoIs in visit order; semantic scores aggregate the
/// similarity of each PoI to the requirement it was assigned.
Result<QueryResult> RunUnorderedSkySr(const Graph& g,
                                      const CategoryForest& forest,
                                      const Query& query,
                                      const QueryOptions& options = {});

}  // namespace skysr

#endif  // SKYSR_EXT_UNORDERED_TRIP_H_

#include "baseline/osr_dijkstra.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "util/dary_heap.h"
#include "util/rng.h"
#include "util/timer.h"

namespace skysr {
namespace {

// Faithful to the original Dijkstra-based OSR: every queue entry carries its
// partial route by value. This is what makes the approach memory-hungry
// (Table 6 of the paper) — do not "optimize" it into a shared-prefix arena,
// the blow-up is the point of the baseline.
struct Item {
  Weight len;
  VertexId vertex;
  int32_t progress;
  uint64_t shared_mask;  // used PoIs that other positions could still want
  std::vector<PoiId> route;

  bool operator<(const Item& o) const {
    if (len != o.len) return len < o.len;
    if (vertex != o.vertex) return vertex < o.vertex;
    return progress < o.progress;
  }
};

int64_t ItemBytes(const Item& item) {
  return static_cast<int64_t>(sizeof(Item) +
                              item.route.capacity() * sizeof(PoiId));
}

/// Exact identity of a search state when positions can share PoIs.
struct StateKey {
  uint64_t mask;
  int64_t flat;  // progress * n + vertex

  bool operator==(const StateKey& o) const {
    return mask == o.mask && flat == o.flat;
  }
};

struct StateKeyHash {
  size_t operator()(const StateKey& k) const {
    uint64_t s = k.mask ^ (static_cast<uint64_t>(k.flat) * 0x9E3779B97F4A7C15ULL);
    return static_cast<size_t>(SplitMix64(s));
  }
};

}  // namespace

OsrResult RunOsrDijkstra(const Graph& g,
                         const std::vector<PositionMatcher>& matchers,
                         VertexId start, std::optional<VertexId> dest,
                         double time_budget_seconds,
                         const DistanceOracle* oracle) {
  WallTimer timer;
  OsrResult result;
  const int k = static_cast<int>(matchers.size());
  const int64_t n = g.num_vertices();
  const int64_t layers = k + 1;
  // Index-backed destination mode: progress-k states complete through an
  // exact oracle tail instead of walking the graph to the destination.
  const bool oracle_tails =
      dest && oracle != nullptr && oracle->kind() != OracleKind::kFlat;
  DestTail dest_tail(g, oracle_tails ? dest : std::nullopt, oracle);
  Weight best_total = kInfWeight;
  std::vector<PoiId> best_route;

  // PoIs that perfectly match two or more positions break the classic
  // (vertex, progress) state space: of two routes reaching the same state,
  // one may have consumed a PoI the other still needs (Definition 3.4
  // demands distinct route PoIs), so their futures differ. Give each such
  // "shared" PoI a bit and settle on (used-shared-set, progress, vertex)
  // instead; PoIs perfect for at most one position can never be re-chosen
  // and need no tracking. In the paper's distinct-tree workloads no PoI is
  // shared and the flat fast path below is used. Beyond 64 shared PoIs the
  // search settles on the exact (vertex, progress, used-PoI-set) state —
  // slower, but still exact and, crucially, a FINITE state space, so the
  // search terminates even under the default infinite time budget.
  std::vector<int32_t> shared_bit(static_cast<size_t>(g.num_pois()), -1);
  int num_shared = 0;
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    int perfect_positions = 0;
    for (const PositionMatcher& m : matchers) {
      if (m.IsPerfect(p)) ++perfect_positions;
    }
    if (perfect_positions >= 2) {
      shared_bit[static_cast<size_t>(p)] = num_shared++;
    }
  }
  const bool flat_states = num_shared == 0;
  const bool track_masks = num_shared > 0 && num_shared <= 64;

  std::vector<char> settled;
  if (flat_states) settled.assign(static_cast<size_t>(n * layers), 0);
  std::unordered_set<StateKey, StateKeyHash> settled_masked;
  // Fallback identity for > 64 shared PoIs: the exact used-PoI set (route
  // order does not affect the future, so a sorted copy canonicalizes it).
  std::set<std::pair<int64_t, std::vector<PoiId>>> settled_sets;
  const auto flat_of = [n](VertexId v, int32_t progress) {
    return static_cast<int64_t>(progress) * n + static_cast<int64_t>(v);
  };
  const auto used_set_key = [&](VertexId v, int32_t progress,
                                const Item& ctx) {
    std::vector<PoiId> used(ctx.route);
    std::sort(used.begin(), used.end());
    return std::make_pair(flat_of(v, progress), std::move(used));
  };
  // `ctx` supplies the route/mask identity; `v`/`progress` may differ from
  // ctx's own (the neighbor pre-check probes the state a push would reach).
  const auto is_settled = [&](VertexId v, int32_t progress,
                              const Item& ctx) {
    if (flat_states) {
      return settled[static_cast<size_t>(flat_of(v, progress))] != 0;
    }
    if (track_masks) {
      return settled_masked.count(
                 StateKey{ctx.shared_mask, flat_of(v, progress)}) != 0;
    }
    return settled_sets.count(used_set_key(v, progress, ctx)) != 0;
  };
  const auto settle = [&](const Item& item) {
    if (flat_states) {
      settled[static_cast<size_t>(flat_of(item.vertex, item.progress))] = 1;
    } else if (track_masks) {
      settled_masked.insert(StateKey{
          item.shared_mask, flat_of(item.vertex, item.progress)});
    } else {
      settled_sets.insert(used_set_key(item.vertex, item.progress, item));
    }
  };

  DaryHeap<Item> heap;
  int64_t queue_bytes = 0;
  int64_t peak_queue_bytes = 0;
  const auto push = [&](Item&& item) {
    queue_bytes += ItemBytes(item);
    peak_queue_bytes = std::max(peak_queue_bytes, queue_bytes);
    heap.push(std::move(item));
  };

  push(Item{0, start, 0, 0, {}});
  int64_t pops = 0;
  while (!heap.empty()) {
    if ((++pops & 1023) == 0 &&
        timer.ElapsedSeconds() > time_budget_seconds) {
      result.timed_out = true;
      break;
    }
    Item item = heap.pop();
    queue_bytes -= ItemBytes(item);
    // Oracle-tail termination: pops are ordered by tail-free length, and
    // any future completion's total is at least its tail-free length, so
    // once that passes the best candidate total the candidate is optimal.
    if (oracle_tails && item.len >= best_total) break;
    if (is_settled(item.vertex, item.progress, item)) continue;
    settle(item);
    ++result.vertices_settled;

    if (item.progress == k) {
      if (oracle_tails) {
        const Weight tail = dest_tail.Get(item.vertex);
        if (item.len + tail < best_total) {
          best_total = item.len + tail;
          best_route = std::move(item.route);
        }
        continue;  // completed states need no graph walk to the destination
      }
      if (!dest || item.vertex == *dest) {
        result.pois = std::move(item.route);
        result.length = item.len;
        break;
      }
    }

    // Zero-cost progress transition at a perfectly matching PoI.
    if (item.progress < k) {
      const PoiId poi = g.PoiAtVertex(item.vertex);
      if (poi != kInvalidPoi &&
          matchers[static_cast<size_t>(item.progress)].IsPerfect(poi) &&
          std::find(item.route.begin(), item.route.end(), poi) ==
              item.route.end()) {
        Item next{item.len, item.vertex, item.progress + 1, item.shared_mask,
                  item.route};
        if (const int32_t bit = shared_bit[static_cast<size_t>(poi)];
            bit >= 0 && bit < 64) {
          next.shared_mask |= uint64_t{1} << bit;
        }
        next.route.push_back(poi);
        push(std::move(next));
      }
    }
    for (const Neighbor& nb : g.OutEdges(item.vertex)) {
      // The pre-check is an optional prune (the pop re-checks); in the
      // used-set fallback its key costs a route copy + sort per edge, so
      // skip it there.
      if ((flat_states || track_masks) &&
          is_settled(nb.to, item.progress, item)) {
        continue;
      }
      push(Item{item.len + nb.weight, nb.to, item.progress, item.shared_mask,
                item.route});
    }
  }

  if (oracle_tails && !result.timed_out && best_total != kInfWeight) {
    result.pois = std::move(best_route);
    result.length = best_total;
  }
  result.peak_queue_size = static_cast<int64_t>(heap.peak_size());
  result.route_nodes = 0;
  result.logical_peak_bytes =
      peak_queue_bytes + static_cast<int64_t>(settled.size()) +
      static_cast<int64_t>(settled_masked.size() * sizeof(StateKey)) +
      static_cast<int64_t>(settled_sets.size() *
                           (sizeof(int64_t) + k * sizeof(PoiId)));
  return result;
}

}  // namespace skysr

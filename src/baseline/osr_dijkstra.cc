#include "baseline/osr_dijkstra.h"

#include <algorithm>

#include "util/dary_heap.h"
#include "util/timer.h"

namespace skysr {
namespace {

// Faithful to the original Dijkstra-based OSR: every queue entry carries its
// partial route by value. This is what makes the approach memory-hungry
// (Table 6 of the paper) — do not "optimize" it into a shared-prefix arena,
// the blow-up is the point of the baseline.
struct Item {
  Weight len;
  VertexId vertex;
  int32_t progress;
  std::vector<PoiId> route;

  bool operator<(const Item& o) const {
    if (len != o.len) return len < o.len;
    if (vertex != o.vertex) return vertex < o.vertex;
    return progress < o.progress;
  }
};

int64_t ItemBytes(const Item& item) {
  return static_cast<int64_t>(sizeof(Item) +
                              item.route.capacity() * sizeof(PoiId));
}

}  // namespace

OsrResult RunOsrDijkstra(const Graph& g,
                         const std::vector<PositionMatcher>& matchers,
                         VertexId start, std::optional<VertexId> dest,
                         double time_budget_seconds) {
  WallTimer timer;
  OsrResult result;
  const int k = static_cast<int>(matchers.size());
  const int64_t n = g.num_vertices();
  const int64_t layers = k + 1;

  DaryHeap<Item> heap;
  std::vector<char> settled(static_cast<size_t>(n * layers), 0);
  const auto state_of = [n](VertexId v, int32_t progress) {
    return static_cast<size_t>(progress) * static_cast<size_t>(n) +
           static_cast<size_t>(v);
  };

  int64_t queue_bytes = 0;
  int64_t peak_queue_bytes = 0;
  const auto push = [&](Item&& item) {
    queue_bytes += ItemBytes(item);
    peak_queue_bytes = std::max(peak_queue_bytes, queue_bytes);
    heap.push(std::move(item));
  };

  push(Item{0, start, 0, {}});
  int64_t pops = 0;
  while (!heap.empty()) {
    if ((++pops & 1023) == 0 &&
        timer.ElapsedSeconds() > time_budget_seconds) {
      result.timed_out = true;
      break;
    }
    Item item = heap.pop();
    queue_bytes -= ItemBytes(item);
    if (settled[state_of(item.vertex, item.progress)]) continue;
    settled[state_of(item.vertex, item.progress)] = 1;
    ++result.vertices_settled;

    if (item.progress == k && (!dest || item.vertex == *dest)) {
      result.pois = std::move(item.route);
      result.length = item.len;
      break;
    }

    // Zero-cost progress transition at a perfectly matching PoI.
    if (item.progress < k) {
      const PoiId poi = g.PoiAtVertex(item.vertex);
      if (poi != kInvalidPoi &&
          matchers[static_cast<size_t>(item.progress)].IsPerfect(poi) &&
          std::find(item.route.begin(), item.route.end(), poi) ==
              item.route.end()) {
        Item next{item.len, item.vertex, item.progress + 1, item.route};
        next.route.push_back(poi);
        push(std::move(next));
      }
    }
    for (const Neighbor& nb : g.OutEdges(item.vertex)) {
      if (settled[state_of(nb.to, item.progress)]) continue;
      push(Item{item.len + nb.weight, nb.to, item.progress, item.route});
    }
  }

  result.peak_queue_size = static_cast<int64_t>(heap.peak_size());
  result.route_nodes = 0;
  result.logical_peak_bytes =
      peak_queue_bytes + static_cast<int64_t>(settled.size());
  return result;
}

}  // namespace skysr

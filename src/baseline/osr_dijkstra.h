// The Dijkstra-based OSR solution of Sharifzadeh et al. (VLDBJ'08), §3 of
// the paper ("Dij"). A single Dijkstra over (vertex, progress) states whose
// queue entries carry partial routes; settling a PoI that perfectly matches
// the next category advances progress at zero cost. The route-carrying
// queue makes its memory footprint balloon — the effect Table 6 of the
// paper reports.
//
// Contract: exact in general. When the perfect-match PoI sets of the
// positions are pairwise disjoint (the paper's experimental setting —
// categories from distinct trees) the classic flat (vertex, progress)
// settling applies. PoIs shared by several positions make that state space
// unsound under the PoI-distinctness constraint of Definition 3.4(iii)
// — a disagreement the differential scenario harness surfaced — so such
// PoIs are tracked in a per-route bitmask and states are settled on
// (used-shared-set, progress, vertex) instead; beyond 64 shared PoIs the
// settling key becomes the exact used-PoI set (slower, still exact, and a
// finite state space, so the search always terminates).

#ifndef SKYSR_BASELINE_OSR_DIJKSTRA_H_
#define SKYSR_BASELINE_OSR_DIJKSTRA_H_

#include <optional>
#include <vector>

#include "baseline/osr_common.h"
#include "core/query.h"
#include "core/route.h"
#include "graph/graph.h"

namespace skysr {

/// Runs one Dijkstra-based OSR query. `matchers` define the per-position
/// perfect-match sets; `dest` optionally appends a fixed destination. The
/// search aborts (timed_out) after `time_budget_seconds`.
///
/// With a non-flat `oracle` and a destination, completed (progress = k)
/// states stop walking the graph toward the destination: each settles once,
/// adds its exact oracle tail D(v, dest), and the search ends when the
/// popped tail-free length can no longer beat the best total — same answer,
/// a fraction of the settles. Null (the default) keeps the paper-faithful
/// walk.
OsrResult RunOsrDijkstra(const Graph& g,
                         const std::vector<PositionMatcher>& matchers,
                         VertexId start, std::optional<VertexId> dest,
                         double time_budget_seconds,
                         const DistanceOracle* oracle = nullptr);

}  // namespace skysr

#endif  // SKYSR_BASELINE_OSR_DIJKSTRA_H_

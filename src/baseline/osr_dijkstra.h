// The Dijkstra-based OSR solution of Sharifzadeh et al. (VLDBJ'08), §3 of
// the paper ("Dij"). A single Dijkstra over (vertex, progress) states whose
// queue entries carry partial routes; settling a PoI that perfectly matches
// the next category advances progress at zero cost. The route-carrying
// queue makes its memory footprint balloon — the effect Table 6 of the
// paper reports.
//
// Contract: exact when the perfect-match PoI sets of the positions are
// pairwise disjoint (the paper's experimental setting — categories from
// distinct trees). With overlapping positions the (vertex, progress) state
// dedup can hide the PoI-distinctness constraint of Definition 3.4(iii);
// use PNE (which is exact in general) or brute force there.

#ifndef SKYSR_BASELINE_OSR_DIJKSTRA_H_
#define SKYSR_BASELINE_OSR_DIJKSTRA_H_

#include <optional>
#include <vector>

#include "baseline/osr_common.h"
#include "core/query.h"
#include "core/route.h"
#include "graph/graph.h"

namespace skysr {

/// Runs one Dijkstra-based OSR query. `matchers` define the per-position
/// perfect-match sets; `dest` optionally appends a fixed destination. The
/// search aborts (timed_out) after `time_budget_seconds`.
OsrResult RunOsrDijkstra(const Graph& g,
                         const std::vector<PositionMatcher>& matchers,
                         VertexId start, std::optional<VertexId> dest,
                         double time_budget_seconds);

}  // namespace skysr

#endif  // SKYSR_BASELINE_OSR_DIJKSTRA_H_

#include "baseline/osr_pne.h"

#include <memory>
#include <unordered_map>

#include "core/route.h"
#include "graph/dijkstra.h"
#include "graph/graph_builder.h"
#include "graph/resumable_dijkstra.h"
#include "util/dary_heap.h"
#include "util/timer.h"

namespace skysr {
namespace {

/// Memoized incremental nearest-neighbor provider: the rank-th closest PoI
/// perfectly matching a position, from a given source vertex.
class IncrementalNn {
 public:
  IncrementalNn(const Graph& g, const std::vector<PositionMatcher>& matchers)
      : g_(g), matchers_(matchers) {}

  struct Hit {
    VertexId vertex;
    PoiId poi;
    Weight dist;
  };

  /// rank 0 = nearest. Returns nullopt when fewer matches exist.
  std::optional<Hit> Get(VertexId source, int position, int rank) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 8) |
        static_cast<uint32_t>(position);
    auto [it, inserted] = states_.try_emplace(key);
    State& st = it->second;
    if (inserted) st.search = std::make_unique<ResumableDijkstra>(g_, source);
    const PositionMatcher& matcher = matchers_[static_cast<size_t>(position)];
    while (static_cast<int>(st.found.size()) <= rank && !st.exhausted) {
      const auto settle = st.search->Next();
      if (!settle) {
        st.exhausted = true;
        break;
      }
      ++settled_;
      const PoiId poi = g_.PoiAtVertex(settle->vertex);
      if (poi != kInvalidPoi && matcher.IsPerfect(poi)) {
        st.found.push_back(Hit{settle->vertex, poi, settle->dist});
      }
    }
    if (rank < static_cast<int>(st.found.size())) {
      return st.found[static_cast<size_t>(rank)];
    }
    return std::nullopt;
  }

  int64_t settled() const { return settled_; }

  int64_t MemoryBytes() const {
    int64_t bytes = 0;
    for (const auto& [k, st] : states_) {
      bytes += 64 + st.search->MemoryBytes() +
               static_cast<int64_t>(st.found.capacity() * sizeof(Hit));
    }
    return bytes;
  }

 private:
  struct State {
    std::unique_ptr<ResumableDijkstra> search;
    std::vector<Hit> found;
    bool exhausted = false;
  };
  const Graph& g_;
  const std::vector<PositionMatcher>& matchers_;
  std::unordered_map<uint64_t, State> states_;
  int64_t settled_ = 0;
};

struct PneItem {
  Weight len;
  int32_t node;
  int32_t size;
  int32_t rank;  // NN rank of the last PoI w.r.t. its predecessor
  // Complete routes under a destination pop twice: first as a candidate
  // keyed by the tail-free length (a lower bound of the total, preserving
  // heap order and lazy NN advancement), then re-pushed with the true
  // start-to-destination total.
  bool tailed;
  bool operator<(const PneItem& o) const {
    if (len != o.len) return len < o.len;
    return node < o.node;
  }
};

}  // namespace

OsrResult RunOsrPne(const Graph& g,
                    const std::vector<PositionMatcher>& matchers,
                    VertexId start, std::optional<VertexId> dest,
                    double time_budget_seconds,
                    const DistanceOracle* oracle) {
  WallTimer timer;
  OsrResult result;
  const int k = static_cast<int>(matchers.size());

  DestTail dest_tail(g, dest, oracle);

  IncrementalNn nn(g, matchers);
  RouteArena arena;
  DaryHeap<PneItem> heap;

  // Extends `parent` (route of size `position`) with its rank>=`from_rank`
  // nearest neighbor that is not already used; pushes the result. All keys
  // are tail-free, so pushes stay in NN rank order and the incremental NN
  // stream is advanced one rank at a time.
  const auto spawn = [&](int32_t parent, int position, int from_rank) {
    const VertexId src = parent == RouteArena::kEmpty
                             ? start
                             : arena.node(parent).vertex;
    const Weight base_len =
        parent == RouteArena::kEmpty ? 0 : arena.node(parent).length;
    int rank = from_rank;
    while (true) {
      const auto hit = nn.Get(src, position, rank);
      if (!hit) return;
      if (!arena.Contains(parent, hit->poi)) {
        const int32_t node = arena.Add(parent, hit->poi, hit->vertex,
                                       base_len + hit->dist, 1.0);
        heap.push(PneItem{base_len + hit->dist, node, position + 1, rank,
                          /*tailed=*/false});
        return;
      }
      ++rank;
    }
  };

  spawn(RouteArena::kEmpty, 0, 0);
  int64_t pops = 0;
  Weight best_total = kInfWeight;
  int32_t best_node = RouteArena::kEmpty;
  while (!heap.empty()) {
    if ((++pops & 255) == 0 && timer.ElapsedSeconds() > time_budget_seconds) {
      result.timed_out = true;
      break;
    }
    const PneItem item = heap.pop();
    if (item.size == k) {
      // NN rank order (leg distance) does NOT order completed totals once a
      // destination tail is added — the tail varies per PoI — so a complete
      // route first pops as a tail-free candidate (a lower bound of its
      // total): it advances its sibling chain and re-enters the heap with
      // the true total. Every unexplored completion is therefore covered by
      // a heap entry lower-bounding it, and the first TOTAL that pops is
      // the optimum. Without a destination the tail-free length is already
      // the total.
      if (!dest || item.tailed) {
        best_total = item.len;
        best_node = item.node;
        break;
      }
      spawn(arena.node(item.node).parent, item.size - 1, item.rank + 1);
      const Weight tail = dest_tail.Get(arena.node(item.node).vertex);
      if (tail != kInfWeight) {
        heap.push(PneItem{item.len + tail, item.node, item.size, item.rank,
                          /*tailed=*/true});
      }
      continue;
    }
    // Child: greedy extension with the nearest next-position PoI.
    spawn(item.node, item.size, 0);
    // Sibling: same prefix, next-nearest PoI in place of the last one.
    spawn(arena.node(item.node).parent, item.size - 1, item.rank + 1);
  }
  if (best_node != RouteArena::kEmpty && !result.timed_out) {
    result.pois = arena.Materialize(best_node);
    result.length = best_total;
  }

  result.vertices_settled = nn.settled();
  result.peak_queue_size = static_cast<int64_t>(heap.peak_size());
  result.route_nodes = arena.num_nodes();
  result.logical_peak_bytes =
      static_cast<int64_t>(heap.peak_size() * sizeof(PneItem)) +
      arena.MemoryBytes() + nn.MemoryBytes();
  return result;
}

}  // namespace skysr

#include "baseline/brute_force.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "core/skyline_set.h"
#include "graph/dijkstra.h"
#include "graph/graph_builder.h"

namespace skysr {
namespace {

/// Caches full single-source distance fields per source vertex.
class MemoSsspOracle {
 public:
  explicit MemoSsspOracle(const Graph& g) : g_(g) {}

  Weight Distance(VertexId from, VertexId to) {
    auto [it, inserted] = fields_.try_emplace(from);
    if (inserted) it->second = SingleSourceDistances(g_, from).dist;
    return it->second[static_cast<size_t>(to)];
  }

 private:
  const Graph& g_;
  std::unordered_map<VertexId, std::vector<Weight>> fields_;
};

struct Enumerator {
  const Graph& g;
  const std::vector<PositionMatcher>& matchers;
  const SemanticAggregator& agg;
  MemoSsspOracle& oracle;
  const std::vector<Weight>* dest_dist;  // null when no destination
  bool unordered;
  int k;
  SkylineSet skyline;

  std::vector<PoiId> pois;   // visit order
  std::vector<char> used_positions;

  void Recurse(VertexId cursor, Weight len, double acc, int filled) {
    if (filled == k) {
      skyline.Update(RouteScores{len, agg.Score(acc)}, pois);
      return;
    }
    for (PoiId p = 0; p < g.num_pois(); ++p) {
      bool already = false;
      for (PoiId q : pois) {
        if (q == p) {
          already = true;
          break;
        }
      }
      if (already) continue;
      const VertexId v = g.VertexOfPoi(p);
      const Weight hop = oracle.Distance(cursor, v);
      if (hop == kInfWeight) continue;
      // In ordered mode the next PoI must match position `filled`; in
      // unordered mode it may claim any unassigned position.
      for (int pos = 0; pos < k; ++pos) {
        if (!unordered && pos != filled) continue;
        if (unordered && used_positions[static_cast<size_t>(pos)]) continue;
        const double sim = matchers[static_cast<size_t>(pos)].SimOfPoi(p);
        if (sim <= 0) continue;
        Weight extra = 0;
        if (filled + 1 == k && dest_dist != nullptr) {
          extra = (*dest_dist)[static_cast<size_t>(v)];
          if (extra == kInfWeight) continue;
        }
        pois.push_back(p);
        used_positions[static_cast<size_t>(pos)] = 1;
        Recurse(v, len + hop + extra, agg.Extend(acc, sim), filled + 1);
        used_positions[static_cast<size_t>(pos)] = 0;
        pois.pop_back();
      }
    }
  }
};

}  // namespace

Result<std::vector<Route>> BruteForceSkySr(const Graph& g,
                                           const CategoryForest& forest,
                                           const Query& query,
                                           const QueryOptions& options,
                                           bool unordered) {
  SKYSR_RETURN_NOT_OK(ValidateQuery(g, forest, query));
  const SimilarityFunction& sim_fn =
      options.similarity ? *options.similarity : *DefaultSimilarity();
  const SemanticAggregator agg(options.aggregation);
  const int k = query.size();

  std::vector<PositionMatcher> matchers;
  matchers.reserve(static_cast<size_t>(k));
  for (const CategoryPredicate& pred : query.sequence) {
    matchers.emplace_back(g, forest, sim_fn, pred, options.multi_category);
  }

  std::vector<Weight> dest_storage;
  const std::vector<Weight>* dest_dist = nullptr;
  if (query.destination) {
    dest_storage = g.directed()
                       ? SingleSourceDistances(ReverseOf(g),
                                               *query.destination)
                             .dist
                       : SingleSourceDistances(g, *query.destination).dist;
    dest_dist = &dest_storage;
  }

  MemoSsspOracle oracle(g);
  Enumerator e{g,     matchers, agg, oracle, dest_dist,
               unordered, k,        {},  {},     {}};
  e.used_positions.assign(static_cast<size_t>(k), 0);
  e.Recurse(query.start, 0, agg.Identity(), 0);
  return e.skyline.routes();
}

Result<std::vector<Route>> BruteForceOsr(const Graph& g,
                                         const CategoryForest& forest,
                                         const Query& query,
                                         const QueryOptions& options) {
  SKYSR_RETURN_NOT_OK(ValidateQuery(g, forest, query));
  const SimilarityFunction& sim_fn =
      options.similarity ? *options.similarity : *DefaultSimilarity();
  const int k = query.size();
  std::vector<PositionMatcher> matchers;
  matchers.reserve(static_cast<size_t>(k));
  for (const CategoryPredicate& pred : query.sequence) {
    matchers.emplace_back(g, forest, sim_fn, pred, options.multi_category);
  }

  std::vector<Weight> dest_storage;
  if (query.destination) {
    dest_storage = g.directed()
                       ? SingleSourceDistances(ReverseOf(g),
                                               *query.destination)
                             .dist
                       : SingleSourceDistances(g, *query.destination).dist;
  }

  MemoSsspOracle oracle(g);
  std::vector<PoiId> best;
  Weight best_len = kInfWeight;
  std::vector<PoiId> pois;

  // Depth-first over perfect matches only.
  const std::function<void(VertexId, Weight, int)> rec =
      [&](VertexId cursor, Weight len, int filled) {
        if (len >= best_len) return;
        if (filled == k) {
          best = pois;
          best_len = len;
          return;
        }
        for (PoiId p = 0; p < g.num_pois(); ++p) {
          if (std::find(pois.begin(), pois.end(), p) != pois.end()) continue;
          if (!matchers[static_cast<size_t>(filled)].IsPerfect(p)) continue;
          const VertexId v = g.VertexOfPoi(p);
          const Weight hop = oracle.Distance(cursor, v);
          if (hop == kInfWeight) continue;
          Weight extra = 0;
          if (filled + 1 == k && query.destination) {
            extra = dest_storage[static_cast<size_t>(v)];
            if (extra == kInfWeight) continue;
          }
          pois.push_back(p);
          rec(v, len + hop + extra, filled + 1);
          pois.pop_back();
        }
      };
  rec(query.start, 0, 0);

  std::vector<Route> out;
  if (best_len < kInfWeight) {
    out.push_back(Route{std::move(best), RouteScores{best_len, 0.0}});
  }
  return out;
}

}  // namespace skysr

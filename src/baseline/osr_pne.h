// The Progressive Neighbor Exploration (PNE) OSR solution of Sharifzadeh et
// al. (VLDBJ'08), §3 of the paper ("PNE"). Maintains a priority queue of
// partial routes ordered by length; popping a route spawns (a) its greedy
// child — the route extended with the nearest PoI perfectly matching the
// next category — and (b) its sibling — the same prefix with the *next*
// nearest PoI in place of the last one. Incremental nearest-neighbor
// queries are served by resumable Dijkstras memoized per (source vertex,
// position).
//
// With a destination, NN rank order — leg distance — does not order
// completed totals once the per-PoI destination tail is added, so naive
// lazy sibling chaining returned suboptimal routes (a bug the differential
// scenario harness surfaced). Complete routes therefore pop twice: first
// as a candidate keyed by the tail-free length (a lower bound that keeps
// the NN stream advancing one rank at a time), which re-enters the heap
// with its true total; the first true total popped is the optimum.

#ifndef SKYSR_BASELINE_OSR_PNE_H_
#define SKYSR_BASELINE_OSR_PNE_H_

#include <optional>
#include <vector>

#include "baseline/osr_common.h"
#include "core/query.h"
#include "graph/graph.h"

namespace skysr {

/// Runs one PNE OSR query (same contract as RunOsrDijkstra). A non-flat
/// `oracle` answers destination tails lazily per candidate completion
/// instead of a whole-graph reverse Dijkstra.
OsrResult RunOsrPne(const Graph& g,
                    const std::vector<PositionMatcher>& matchers,
                    VertexId start, std::optional<VertexId> dest,
                    double time_budget_seconds,
                    const DistanceOracle* oracle = nullptr);

}  // namespace skysr

#endif  // SKYSR_BASELINE_OSR_PNE_H_

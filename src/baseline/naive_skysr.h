// The naive SkySR solution the paper compares against (§4, §7.1): run one
// OSR query per super-category sequence of S_q — with either the
// Dijkstra-based or the PNE engine — score each returned route against the
// ORIGINAL query, and skyline-filter.
//
// Exactness caveat (DESIGN.md): this enumeration provably returns the exact
// skyline for LCA-determined similarities such as the paper's Eq. (6) with
// the product aggregator; for other similarity functions it may miss skyline
// points. Tests compare it against BSSR under the default configuration.

#ifndef SKYSR_BASELINE_NAIVE_SKYSR_H_
#define SKYSR_BASELINE_NAIVE_SKYSR_H_

#include <vector>

#include "core/bssr_engine.h"
#include "core/query.h"

namespace skysr {

/// Which OSR engine the naive baseline iterates.
enum class OsrEngineKind { kDijkstraBased, kPne };

/// Extra accounting for the naive baseline.
struct NaiveRunInfo {
  int64_t osr_queries = 0;
  int64_t vertices_settled = 0;
};

/// Runs the naive baseline. Requires a plain query (single category per
/// position, no all_of/none_of). Returns the same QueryResult shape as
/// BssrEngine::Run; stats fields that do not apply stay zero. `oracle`
/// (optional) is forwarded to the OSR engines for index-backed destination
/// tails.
Result<QueryResult> RunNaiveSkySr(const Graph& g, const CategoryForest& forest,
                                  const Query& query,
                                  const QueryOptions& options,
                                  OsrEngineKind engine,
                                  NaiveRunInfo* info = nullptr,
                                  const DistanceOracle* oracle = nullptr);

}  // namespace skysr

#endif  // SKYSR_BASELINE_NAIVE_SKYSR_H_

#include "baseline/super_sequence.h"

namespace skysr {

SuperSequenceEnumerator::SuperSequenceEnumerator(
    const CategoryForest& forest, std::span<const CategoryId> base) {
  choices_.reserve(base.size());
  for (CategoryId c : base) {
    choices_.push_back(forest.AncestorsOrSelf(c));
  }
  Reset();
}

int64_t SuperSequenceEnumerator::Count() const {
  int64_t count = 1;
  for (const auto& c : choices_) count *= static_cast<int64_t>(c.size());
  return choices_.empty() ? 0 : count;
}

bool SuperSequenceEnumerator::Next(std::vector<CategoryId>* out) {
  if (done_) return false;
  out->clear();
  out->reserve(choices_.size());
  for (size_t i = 0; i < choices_.size(); ++i) {
    out->push_back(choices_[i][cursor_[i]]);
  }
  // Advance the odometer.
  size_t i = 0;
  while (i < cursor_.size()) {
    if (++cursor_[i] < choices_[i].size()) break;
    cursor_[i] = 0;
    ++i;
  }
  if (i == cursor_.size()) done_ = true;
  return true;
}

}  // namespace skysr

// Shared result type for the OSR (optimal sequenced route) baseline engines.

#ifndef SKYSR_BASELINE_OSR_COMMON_H_
#define SKYSR_BASELINE_OSR_COMMON_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/query.h"
#include "graph/types.h"

namespace skysr {

/// Outcome of one OSR query: the shortest route whose i-th PoI *perfectly*
/// matches position i, or nullopt when none exists (or the time budget ran
/// out).
struct OsrResult {
  std::optional<std::vector<PoiId>> pois;
  Weight length = kInfWeight;  // includes the destination tail if requested
  bool timed_out = false;

  // Effort/memory accounting.
  int64_t vertices_settled = 0;
  int64_t peak_queue_size = 0;
  int64_t route_nodes = 0;
  int64_t logical_peak_bytes = 0;
};

}  // namespace skysr

#endif  // SKYSR_BASELINE_OSR_COMMON_H_

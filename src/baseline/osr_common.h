// Shared result type and destination-tail helper for the OSR (optimal
// sequenced route) baseline engines.

#ifndef SKYSR_BASELINE_OSR_COMMON_H_
#define SKYSR_BASELINE_OSR_COMMON_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "graph/types.h"
#include "index/distance_oracle.h"

namespace skysr {

/// Outcome of one OSR query: the shortest route whose i-th PoI *perfectly*
/// matches position i, or nullopt when none exists (or the time budget ran
/// out).
struct OsrResult {
  std::optional<std::vector<PoiId>> pois;
  Weight length = kInfWeight;  // includes the destination tail if requested
  bool timed_out = false;

  // Effort/memory accounting.
  int64_t vertices_settled = 0;
  int64_t peak_queue_size = 0;
  int64_t route_nodes = 0;
  int64_t logical_peak_bytes = 0;
};

/// D(v, destination) provider for the OSR engines. Without an index it
/// precomputes one full (reverse) single-source Dijkstra — the classic
/// behavior; with a CH/ALT oracle it answers lazily per vertex, so an
/// engine that only ever needs a handful of tails (PNE touches one per
/// candidate completion) skips the whole-graph sweep.
class DestTail {
 public:
  DestTail(const Graph& g, std::optional<VertexId> dest,
           const DistanceOracle* oracle);

  bool active() const { return dest_.has_value(); }

  /// Exact D(v, destination); kInfWeight when unreachable. Requires
  /// active().
  Weight Get(VertexId v);

 private:
  const Graph* g_;
  std::optional<VertexId> dest_;
  const DistanceOracle* oracle_ = nullptr;  // null => precomputed sweep
  std::vector<Weight> all_;                 // sweep results
  std::unordered_map<VertexId, Weight> memo_;  // lazy oracle results
  OracleWorkspace ws_;
};

}  // namespace skysr

#endif  // SKYSR_BASELINE_OSR_COMMON_H_

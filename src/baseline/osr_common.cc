#include "baseline/osr_common.h"

#include "graph/dijkstra.h"
#include "graph/graph_builder.h"

namespace skysr {

DestTail::DestTail(const Graph& g, std::optional<VertexId> dest,
                   const DistanceOracle* oracle)
    : g_(&g), dest_(dest) {
  if (!dest_) return;
  if (oracle != nullptr && oracle->kind() != OracleKind::kFlat) {
    oracle_ = oracle;
    return;
  }
  all_ = g.directed() ? SingleSourceDistances(ReverseOf(g), *dest_).dist
                      : SingleSourceDistances(g, *dest_).dist;
}

Weight DestTail::Get(VertexId v) {
  if (oracle_ == nullptr) return all_[static_cast<size_t>(v)];
  const auto [it, inserted] = memo_.try_emplace(v, 0);
  if (inserted) it->second = oracle_->Distance(v, *dest_, ws_);
  return it->second;
}

}  // namespace skysr

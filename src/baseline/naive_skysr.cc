#include "baseline/naive_skysr.h"

#include <algorithm>

#include "baseline/osr_dijkstra.h"
#include "baseline/osr_pne.h"
#include "baseline/super_sequence.h"
#include "core/skyline_set.h"
#include "util/timer.h"

namespace skysr {

Result<QueryResult> RunNaiveSkySr(const Graph& g, const CategoryForest& forest,
                                  const Query& query,
                                  const QueryOptions& options,
                                  OsrEngineKind engine, NaiveRunInfo* info,
                                  const DistanceOracle* oracle) {
  SKYSR_RETURN_NOT_OK(ValidateQuery(g, forest, query));
  std::vector<CategoryId> base;
  for (const CategoryPredicate& p : query.sequence) {
    if (p.any_of.size() != 1 || !p.all_of.empty() || !p.none_of.empty()) {
      return Status::Unimplemented(
          "naive baseline supports single-category positions only");
    }
    base.push_back(p.any_of[0]);
  }

  WallTimer timer;
  QueryResult result;
  const SimilarityFunction& sim_fn =
      options.similarity ? *options.similarity : *DefaultSimilarity();
  const SemanticAggregator agg(options.aggregation);
  const int k = query.size();

  // Matchers against the ORIGINAL query, used for scoring returned routes.
  std::vector<PositionMatcher> score_matchers;
  score_matchers.reserve(static_cast<size_t>(k));
  for (CategoryId c : base) {
    score_matchers.emplace_back(g, forest, sim_fn,
                                CategoryPredicate::Single(c),
                                options.multi_category);
  }

  SkylineSet skyline;
  SuperSequenceEnumerator enumerator(forest, base);
  std::vector<CategoryId> super_seq;
  int64_t peak_bytes = 0;
  while (enumerator.Next(&super_seq)) {
    const double remaining =
        options.time_budget_seconds - timer.ElapsedSeconds();
    if (remaining <= 0) {
      result.stats.timed_out = true;
      break;
    }
    std::vector<PositionMatcher> osr_matchers;
    osr_matchers.reserve(static_cast<size_t>(k));
    for (CategoryId c : super_seq) {
      osr_matchers.emplace_back(g, forest, sim_fn,
                                CategoryPredicate::Single(c),
                                options.multi_category);
    }
    const OsrResult osr =
        engine == OsrEngineKind::kDijkstraBased
            ? RunOsrDijkstra(g, osr_matchers, query.start, query.destination,
                             remaining, oracle)
            : RunOsrPne(g, osr_matchers, query.start, query.destination,
                        remaining, oracle);
    if (info != nullptr) {
      ++info->osr_queries;
      info->vertices_settled += osr.vertices_settled;
    }
    result.stats.vertices_settled += osr.vertices_settled;
    ++result.stats.mdijkstra_runs;
    peak_bytes = std::max(peak_bytes, osr.logical_peak_bytes);
    if (osr.timed_out) {
      result.stats.timed_out = true;
      break;
    }
    if (!osr.pois) continue;

    // Score against the original query.
    double acc = agg.Identity();
    for (int i = 0; i < k; ++i) {
      acc = agg.Extend(
          acc, score_matchers[static_cast<size_t>(i)].SimOfPoi(
                   (*osr.pois)[static_cast<size_t>(i)]));
    }
    skyline.Update(RouteScores{osr.length, agg.Score(acc)}, *osr.pois);
  }

  result.routes = skyline.routes();
  result.stats.skyline_size = skyline.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  result.stats.logical_peak_bytes = peak_bytes + skyline.MemoryBytes();
  return result;
}

}  // namespace skysr

// Exponential reference implementations used by the test suite as ground
// truth. They enumerate every admissible PoI tuple and compute exact scores
// with cached single-source shortest-path fields. Only for small inputs.

#ifndef SKYSR_BASELINE_BRUTE_FORCE_H_
#define SKYSR_BASELINE_BRUTE_FORCE_H_

#include <vector>

#include "core/bssr_engine.h"
#include "core/query.h"

namespace skysr {

/// Exact skyline by exhaustive enumeration. Supports every query feature
/// (predicates, destination, multi-category PoIs, any similarity/aggregator).
/// When `unordered` is true the sequence is treated as a SET of requirements
/// and every assignment of PoIs to positions is considered; returned routes
/// list PoIs in visit order.
Result<std::vector<Route>> BruteForceSkySr(const Graph& g,
                                           const CategoryForest& forest,
                                           const Query& query,
                                           const QueryOptions& options,
                                           bool unordered = false);

/// Exact OSR (shortest perfect-match sequenced route) by enumeration;
/// returns an empty vector when no perfect route exists, else one route.
Result<std::vector<Route>> BruteForceOsr(const Graph& g,
                                         const CategoryForest& forest,
                                         const Query& query,
                                         const QueryOptions& options);

}  // namespace skysr

#endif  // SKYSR_BASELINE_BRUTE_FORCE_H_

// Enumeration of super-category sequences (Definition 3.1): every sequence
// obtained by replacing each category with itself or one of its ancestors.
// The naive SkySR baseline runs one OSR query per super-category sequence;
// their count is Π_i (depth of c_i) — the exponential blow-up that motivates
// BSSR.

#ifndef SKYSR_BASELINE_SUPER_SEQUENCE_H_
#define SKYSR_BASELINE_SUPER_SEQUENCE_H_

#include <span>
#include <vector>

#include "category/category_forest.h"

namespace skysr {

/// Odometer-style enumerator over a(c_1) × a(c_2) × ... × a(c_k).
class SuperSequenceEnumerator {
 public:
  SuperSequenceEnumerator(const CategoryForest& forest,
                          std::span<const CategoryId> base);

  /// Number of super-category sequences.
  int64_t Count() const;

  /// Writes the next sequence into `out`; false when exhausted.
  bool Next(std::vector<CategoryId>* out);

  void Reset() {
    cursor_.assign(choices_.size(), 0);
    done_ = choices_.empty();
  }

 private:
  std::vector<std::vector<CategoryId>> choices_;  // per position: c, parent(c), ...
  std::vector<size_t> cursor_;
  bool done_ = false;
};

}  // namespace skysr

#endif  // SKYSR_BASELINE_SUPER_SEQUENCE_H_

// SharedQueryCache: the engine-lifetime warm-state seam for serving
// workloads (ROADMAP "serving-scale cache architecture").
//
// One instance per engine (= per worker thread) bundles every structure
// whose contents are pure functions of (graph, oracle structure, source)
// and therefore legal to reuse across queries without changing results:
//
//   - the forward-upward-search cache (fwd_search_cache.h), which replaces
//     the per-query BucketScanState::fwd_cache when attached;
//   - the resumable-slot pool promoted to engine lifetime (CLOCK eviction,
//     retrieval/resumable_retriever.h);
//   - an optional immutable FwdSnapshot prewarmed at service start and
//     shared read-only by every worker (no locks on the read path — each
//     worker writes only to its own cache).
//
// Generation invalidation: the cache binds to a structure checksum
// (WarmStateChecksum below). Rebinding to a different structure — a new
// graph, a rebuilt CH — drops all warm state and any mismatched snapshot,
// so stale distances can never serve a query. Queries opt out per-request
// via QueryOptions::use_shared_cache; cold and warm runs are bit-identical
// (the differential harness's SKYSR_XCACHE axis).

#ifndef SKYSR_CACHE_SHARED_QUERY_CACHE_H_
#define SKYSR_CACHE_SHARED_QUERY_CACHE_H_

#include <cstdint>
#include <memory>

#include "cache/fwd_search_cache.h"
#include "retrieval/resumable_retriever.h"

namespace skysr {

class Graph;
class DistanceOracle;

/// Digest of the structures warm state depends on: graph shape, oracle
/// kind, and (for CH) the order-sensitive upward-CSR checksum. Engines and
/// snapshot builders must derive it the same way so bindings match.
uint64_t WarmStateChecksum(const Graph& g, const DistanceOracle* oracle);

struct SharedCacheConfig {
  /// Forward-search cache entries (CLOCK eviction). Each entry holds one
  /// source's upward settles — tens to a few hundred records on CH.
  size_t fwd_capacity = 1024;
  /// Resumable slots kept across queries; 0 defers to the engine's
  /// cost-model default (RetrieverCostModel::ResumableSlots). Each slot
  /// owns O(|V|) arrays — size this, not fwd_capacity, when memory-bound.
  int resume_slots = 0;
};

/// Aggregated observability counters (ServiceMetrics folds per-task deltas
/// of these into its wait-free atomics).
struct SharedCacheCounters {
  int64_t fwd_hits = 0;        // private-cache + snapshot hits
  int64_t fwd_misses = 0;      // searches that had to run
  int64_t fwd_evictions = 0;
  int64_t resume_reuses = 0;
  int64_t resume_evictions = 0;
};

class SharedQueryCache {
 public:
  explicit SharedQueryCache(SharedCacheConfig config = {});

  /// Binds the cache to a structure generation. Rebinding to a different
  /// checksum invalidates all warm state; a resident snapshot built against
  /// another structure is dropped. BssrEngine::AttachSharedCache calls this.
  void Bind(uint64_t structure_checksum);
  uint64_t bound_checksum() const { return checksum_; }

  /// Drops all warm state (keeps binding, config, and counters).
  void Invalidate();

  /// Installs the read-only prewarmed snapshot (refused — dropped — if its
  /// checksum mismatches a live binding).
  void SetSnapshot(std::shared_ptr<const FwdSnapshot> snapshot);
  const FwdSnapshot* snapshot() const { return snapshot_.get(); }

  /// Counts a snapshot-served forward lookup (the snapshot itself is
  /// immutable and shared, so hit accounting lives here).
  void CountSnapshotHit() { ++snapshot_hits_; }

  FwdSearchCache& fwd_cache() { return fwd_cache_; }
  ResumablePool& resume_pool() { return resume_pool_; }
  const SharedCacheConfig& config() const { return config_; }

  SharedCacheCounters Counters() const;

  /// Bytes held by warm state (snapshot bytes are shared across workers and
  /// reported once by the service, not per cache).
  int64_t ResidentBytes() const;

 private:
  SharedCacheConfig config_;
  FwdSearchCache fwd_cache_;
  ResumablePool resume_pool_;
  std::shared_ptr<const FwdSnapshot> snapshot_;
  uint64_t checksum_ = 0;
  bool bound_ = false;
  int64_t snapshot_hits_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_CACHE_SHARED_QUERY_CACHE_H_

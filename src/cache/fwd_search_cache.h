// Engine-lifetime forward-upward-search cache: the cross-query half of the
// warm-state subsystem (src/cache/).
//
// A forward upward search from a source (with its incrementally folded
// exact path sums, see retrieval/category_buckets.h) is a pure function of
// (source, CH structure): nothing about it depends on the query. PR 5
// cached it per query in BucketScanState::fwd_cache; serving workloads
// repeat sources across queries, so this cache promotes the same records to
// engine lifetime behind size-bounded CLOCK eviction. Storage is per-entry
// recycled vectors (a victim's capacity is reused by its replacement), so a
// hit-dominated steady state allocates nothing.
//
// Two layers, matching the serving deployment:
//
//   FwdSnapshot      immutable CSR over a prewarmed source set, shared by
//                    every QueryService worker via shared_ptr and read with
//                    no locks (it never mutates after Finalize()).
//   FwdSearchCache   per-worker mutable write-back cache with CLOCK
//                    eviction; single-threaded like the engine that owns it.
//
// Bit-identity: entries store exactly the records the search produced, so a
// replay is indistinguishable from a fresh search — cold and warm queries
// return bit-identical skylines (tests/xcache_test.cc and the differential
// harness's SKYSR_XCACHE axis enforce this). Only work counters change.

#ifndef SKYSR_CACHE_FWD_SEARCH_CACHE_H_
#define SKYSR_CACHE_FWD_SEARCH_CACHE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace skysr {

/// One cached forward-search settle: the rounded upward distance plus the
/// exact path-order sum from the source (the fold bucket scans re-sum
/// from). Layout-identical to BucketScanState::FwdSettle, which aliases it.
struct FwdSearchSettle {
  VertexId vertex;
  Weight df;
  Weight fsum;
};

/// Immutable forward-search snapshot over a fixed source set. Built once
/// (BuildFwdSnapshot in retrieval/bucket_retriever.h), then shared across
/// worker threads and read lock-free. Finalize() must be called before the
/// first Find().
class FwdSnapshot {
 public:
  /// Appends one source's settle records (ignored if the source is already
  /// present). Build-time only.
  void Add(VertexId source, std::span<const FwdSearchSettle> settles);

  /// Sorts the key table; no Add() afterwards.
  void Finalize();

  /// The source's records, or an empty span when not prewarmed.
  std::span<const FwdSearchSettle> Find(VertexId source) const;

  /// Structure generation the snapshot was built against (see
  /// WarmStateChecksum in shared_query_cache.h); caches refuse snapshots
  /// bound to another structure.
  void set_structure_checksum(uint64_t c) { structure_checksum_ = c; }
  uint64_t structure_checksum() const { return structure_checksum_; }

  size_t size() const { return keys_.size(); }
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(keys_.capacity() * sizeof(Key) +
                                pool_.capacity() * sizeof(FwdSearchSettle));
  }

 private:
  struct Key {
    VertexId source;
    int64_t offset;
    int64_t count;
  };
  std::vector<Key> keys_;  // sorted by source after Finalize()
  std::vector<FwdSearchSettle> pool_;
  uint64_t structure_checksum_ = 0;
  bool finalized_ = false;
};

/// Size-bounded, CLOCK-evicting forward-search cache. Single-threaded: one
/// instance per engine (= per worker thread), like the QueryWorkspace.
class FwdSearchCache {
 public:
  struct Counters {
    int64_t hits = 0;       // Lookup() served from a resident entry
    int64_t misses = 0;     // Lookup() found nothing (an Insert follows)
    int64_t evictions = 0;  // entries displaced by CLOCK
  };

  explicit FwdSearchCache(size_t capacity = 1024) { Configure(capacity); }

  /// Sets the entry bound. Shrinking (or any change) drops resident
  /// entries; counters survive.
  void Configure(size_t capacity);

  /// The source's records, or an empty span (a search always settles its
  /// source, so emptiness is unambiguous). Hits set the entry's CLOCK
  /// reference bit.
  std::span<const FwdSearchSettle> Lookup(VertexId source);

  /// Inserts (or replaces) the source's records, evicting by CLOCK when at
  /// capacity, and returns the stored span — stable until this entry is
  /// itself evicted, which only an Insert for a different source can do.
  std::span<const FwdSearchSettle> Insert(
      VertexId source, std::span<const FwdSearchSettle> settles);

  /// Drops every entry; keeps per-entry vector capacity and counters.
  void Clear();

  /// Pins one source's entry against CLOCK eviction for the duration of a
  /// query group (BssrEngine::RunGroup): the pinned entry is skipped when
  /// choosing a victim, so the group's shared forward search survives every
  /// member's inserts. Advisory — if nothing else is evictable (capacity 1)
  /// the pinned entry is still replaced. At most one source is pinned;
  /// pinning never changes Lookup/Insert results, only victim choice.
  void PinSource(VertexId source) { pinned_ = source; }
  void UnpinSource() { pinned_ = kInvalidVertex; }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  const Counters& counters() const { return counters_; }

  /// Resident bytes: entry storage plus the slot index.
  int64_t MemoryBytes() const;

 private:
  struct Entry {
    VertexId source = kInvalidVertex;
    uint8_t ref = 0;  // CLOCK second-chance bit
    std::vector<FwdSearchSettle> settles;
  };

  static constexpr int32_t kEmptySlot = -1;
  static constexpr int32_t kTombstone = -2;

  int32_t* SlotOf(VertexId source);        // first matching or empty slot
  void IndexInsert(VertexId source, int32_t entry_idx);
  void IndexErase(VertexId source);
  void RebuildIndex();

  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t hand_ = 0;  // CLOCK hand over entries_[0..size_)
  VertexId pinned_ = kInvalidVertex;  // eviction-exempt source, if any
  size_t tombstones_ = 0;
  std::vector<Entry> entries_;
  std::vector<int32_t> slots_;  // open addressing: entry index / empty / tomb
  Counters counters_;
};

}  // namespace skysr

#endif  // SKYSR_CACHE_FWD_SEARCH_CACHE_H_

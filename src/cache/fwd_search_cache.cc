#include "cache/fwd_search_cache.h"

#include <algorithm>
#include <cassert>

namespace skysr {

namespace {

// SplitMix64 finalizer: the slot index hashes raw vertex ids, which are
// dense small integers, so identity hashing would cluster.
uint64_t HashVertex(VertexId v) {
  uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void FwdSnapshot::Add(VertexId source,
                      std::span<const FwdSearchSettle> settles) {
  assert(!finalized_);
  for (const Key& k : keys_) {
    if (k.source == source) return;
  }
  keys_.push_back({source, static_cast<int64_t>(pool_.size()),
                   static_cast<int64_t>(settles.size())});
  pool_.insert(pool_.end(), settles.begin(), settles.end());
}

void FwdSnapshot::Finalize() {
  std::sort(keys_.begin(), keys_.end(),
            [](const Key& a, const Key& b) { return a.source < b.source; });
  finalized_ = true;
}

std::span<const FwdSearchSettle> FwdSnapshot::Find(VertexId source) const {
  assert(finalized_);
  const auto it = std::lower_bound(
      keys_.begin(), keys_.end(), source,
      [](const Key& k, VertexId s) { return k.source < s; });
  if (it == keys_.end() || it->source != source) return {};
  return {pool_.data() + it->offset, static_cast<size_t>(it->count)};
}

void FwdSearchCache::Configure(size_t capacity) {
  capacity_ = std::max<size_t>(capacity, 1);
  Clear();
  entries_.resize(capacity_);
  // Keep the table at most half full even with every entry resident, so
  // probe chains stay short and an empty slot always exists.
  slots_.assign(NextPow2(4 * capacity_), kEmptySlot);
}

std::span<const FwdSearchSettle> FwdSearchCache::Lookup(VertexId source) {
  const int32_t* slot = SlotOf(source);
  if (*slot < 0) {
    ++counters_.misses;
    return {};
  }
  Entry& e = entries_[*slot];
  e.ref = 1;
  ++counters_.hits;
  return {e.settles.data(), e.settles.size()};
}

std::span<const FwdSearchSettle> FwdSearchCache::Insert(
    VertexId source, std::span<const FwdSearchSettle> settles) {
  int32_t* slot = SlotOf(source);
  size_t idx;
  if (*slot >= 0) {
    idx = static_cast<size_t>(*slot);  // replace in place
  } else if (size_ < capacity_) {
    idx = size_++;
    IndexInsert(source, static_cast<int32_t>(idx));
  } else {
    // CLOCK second chance: clear reference bits until an unreferenced
    // victim appears (at most two sweeps, since cleared bits stay clear).
    // A pinned entry is skipped without clearing its bit; the sweep guard
    // bounds the walk so a fully-pinned cache (capacity 1) still evicts.
    size_t swept = 0;
    while ((entries_[hand_].ref != 0 || entries_[hand_].source == pinned_) &&
           swept < 2 * size_) {
      if (entries_[hand_].source != pinned_) entries_[hand_].ref = 0;
      hand_ = (hand_ + 1) % size_;
      ++swept;
    }
    idx = hand_;
    hand_ = (hand_ + 1) % size_;
    IndexErase(entries_[idx].source);
    IndexInsert(source, static_cast<int32_t>(idx));
    ++counters_.evictions;
  }
  Entry& e = entries_[idx];
  e.source = source;
  e.ref = 1;
  e.settles.assign(settles.begin(), settles.end());
  return {e.settles.data(), e.settles.size()};
}

void FwdSearchCache::Clear() {
  for (size_t i = 0; i < size_; ++i) {
    entries_[i].source = kInvalidVertex;
    entries_[i].ref = 0;
    entries_[i].settles.clear();
  }
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  size_ = 0;
  hand_ = 0;
  tombstones_ = 0;
}

int64_t FwdSearchCache::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(slots_.capacity() * sizeof(int32_t) +
                                       entries_.capacity() * sizeof(Entry));
  for (const Entry& e : entries_) {
    bytes += static_cast<int64_t>(e.settles.capacity() *
                                  sizeof(FwdSearchSettle));
  }
  return bytes;
}

int32_t* FwdSearchCache::SlotOf(VertexId source) {
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(HashVertex(source)) & mask;
  int32_t* first_tomb = nullptr;
  while (true) {
    int32_t& s = slots_[i];
    if (s == kEmptySlot) {
      return first_tomb != nullptr ? first_tomb : &s;
    }
    if (s == kTombstone) {
      if (first_tomb == nullptr) first_tomb = &s;
    } else if (entries_[s].source == source) {
      return &s;
    }
    i = (i + 1) & mask;
  }
}

void FwdSearchCache::IndexInsert(VertexId source, int32_t entry_idx) {
  int32_t* slot = SlotOf(source);
  if (*slot == kTombstone) --tombstones_;
  *slot = entry_idx;
  // Tombstone buildup lengthens probe chains; rebuilding in place (no
  // allocation) restores them once live + dead slots pass half the table.
  if (size_ + tombstones_ > slots_.size() / 2) RebuildIndex();
}

void FwdSearchCache::IndexErase(VertexId source) {
  int32_t* slot = SlotOf(source);
  assert(*slot >= 0);
  *slot = kTombstone;
  ++tombstones_;
}

void FwdSearchCache::RebuildIndex() {
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  tombstones_ = 0;
  for (size_t i = 0; i < size_; ++i) {
    if (entries_[i].source == kInvalidVertex) continue;
    *SlotOf(entries_[i].source) = static_cast<int32_t>(i);
  }
}

}  // namespace skysr

#include "cache/shared_query_cache.h"

#include <utility>

#include "graph/graph.h"
#include "index/ch_oracle.h"
#include "index/distance_oracle.h"

namespace skysr {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t WarmStateChecksum(const Graph& g, const DistanceOracle* oracle) {
  uint64_t h = 0x5ca1ab1e0ddba11ULL;
  h = Mix(h, static_cast<uint64_t>(g.num_vertices()));
  h = Mix(h, static_cast<uint64_t>(g.num_edges()));
  h = Mix(h, static_cast<uint64_t>(g.num_pois()));
  if (oracle != nullptr) {
    h = Mix(h, static_cast<uint64_t>(oracle->kind()) + 1);
    if (oracle->kind() == OracleKind::kCh) {
      h = Mix(h, static_cast<const ChOracle*>(oracle)->StructureChecksum());
    }
  }
  return h;
}

SharedQueryCache::SharedQueryCache(SharedCacheConfig config)
    : config_(config), fwd_cache_(config.fwd_capacity) {}

void SharedQueryCache::Bind(uint64_t structure_checksum) {
  if (bound_ && checksum_ == structure_checksum) return;
  if (bound_) Invalidate();
  bound_ = true;
  checksum_ = structure_checksum;
  if (snapshot_ != nullptr &&
      snapshot_->structure_checksum() != structure_checksum) {
    snapshot_.reset();
  }
}

void SharedQueryCache::Invalidate() {
  fwd_cache_.Clear();
  resume_pool_.Clear();
  snapshot_.reset();
}

void SharedQueryCache::SetSnapshot(
    std::shared_ptr<const FwdSnapshot> snapshot) {
  if (bound_ && snapshot != nullptr &&
      snapshot->structure_checksum() != checksum_) {
    return;  // wrong structure generation — keep serving without it
  }
  snapshot_ = std::move(snapshot);
}

SharedCacheCounters SharedQueryCache::Counters() const {
  SharedCacheCounters c;
  const FwdSearchCache::Counters& f = fwd_cache_.counters();
  c.fwd_hits = f.hits + snapshot_hits_;
  c.fwd_misses = f.misses;
  c.fwd_evictions = f.evictions;
  c.resume_reuses = resume_pool_.reuses();
  c.resume_evictions = resume_pool_.evictions();
  return c;
}

int64_t SharedQueryCache::ResidentBytes() const {
  return fwd_cache_.MemoryBytes() + resume_pool_.MemoryBytes();
}

}  // namespace skysr

// Synthetic road-network generation (DESIGN.md §4 substitution for the
// OpenStreetMap extracts the paper uses).
//
// Model: a jittered grid with circular "holes" (parks, rivers, rail yards),
// 4-neighbor streets whose weights are Euclidean lengths with multiplicative
// jitter, plus a sprinkling of diagonal shortcuts. The result is connected
// (largest component is kept and relabeled), near-planar and low-degree —
// the structural profile of a real road network.

#ifndef SKYSR_WORKLOAD_ROAD_NETWORK_GEN_H_
#define SKYSR_WORKLOAD_ROAD_NETWORK_GEN_H_

#include <cstdint>

#include "graph/graph.h"

namespace skysr {

struct RoadNetworkParams {
  /// Approximate number of road vertices (before hole removal trims ~10%).
  int64_t target_vertices = 10000;
  /// Fraction of the area covered by holes.
  double hole_fraction = 0.12;
  /// Probability of adding a diagonal shortcut per grid cell.
  double diagonal_fraction = 0.08;
  /// Edge weight = euclidean * (1 + U[0, weight_jitter]).
  double weight_jitter = 0.2;
  /// Distance between adjacent grid points.
  double cell_spacing = 1.0;
  uint64_t seed = 42;
};

/// Generates a connected, undirected road network with coordinates and no
/// PoIs (PoIs are embedded separately; see poi_assignment.h).
Graph MakeRoadNetwork(const RoadNetworkParams& params);

/// Converts an undirected graph (PoIs and coordinates preserved) into a
/// DIRECTED one where `fraction` of the streets become one-way with a
/// random orientation. A bidirectional BFS spanning tree is always kept, so
/// the result is strongly connected whenever the input is connected —
/// exercising the §6 directed-graph support on realistic workloads.
Graph ApplyOneWayStreets(const Graph& g, double fraction, uint64_t seed);

}  // namespace skysr

#endif  // SKYSR_WORKLOAD_ROAD_NETWORK_GEN_H_

#include "workload/poi_assignment.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace skysr {

std::vector<PoiPoint> GeneratePoiPoints(const Graph& base,
                                        const CategoryForest& forest,
                                        const PoiAssignmentParams& params) {
  SKYSR_CHECK_MSG(base.has_coordinates(), "base graph needs coordinates");
  Rng rng(params.seed);

  double min_x = base.X(0), max_x = base.X(0);
  double min_y = base.Y(0), max_y = base.Y(0);
  for (VertexId v = 1; v < base.num_vertices(); ++v) {
    min_x = std::min(min_x, base.X(v));
    max_x = std::max(max_x, base.X(v));
    min_y = std::min(min_y, base.Y(v));
    max_y = std::max(max_y, base.Y(v));
  }
  const double width = std::max(max_x - min_x, 1e-9);
  

  struct Cluster {
    double x, y;
  };
  std::vector<Cluster> clusters;
  for (int c = 0; c < params.num_clusters; ++c) {
    clusters.push_back(Cluster{rng.UniformDouble(min_x, max_x),
                               rng.UniformDouble(min_y, max_y)});
  }
  const double sigma = params.cluster_sigma_fraction * width;

  // All leaves across all trees; shuffle deterministically so that Zipf
  // popularity spreads across trees instead of following declaration order
  // (real-world popular categories come from many trees).
  std::vector<CategoryId> leaves;
  for (TreeId t = 0; t < forest.num_trees(); ++t) {
    const auto tl = forest.LeavesOfTree(t);
    leaves.insert(leaves.end(), tl.begin(), tl.end());
  }
  SKYSR_CHECK(!leaves.empty());
  for (size_t i = leaves.size(); i > 1; --i) {
    std::swap(leaves[i - 1], leaves[rng.UniformU64(i)]);
  }
  const ZipfDistribution zipf(static_cast<int64_t>(leaves.size()),
                              params.zipf_theta);

  // Box-Muller for cluster offsets.
  const auto gaussian = [&rng]() {
    const double u1 = std::max(rng.UniformDouble(), 1e-12);
    const double u2 = rng.UniformDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979 * u2);
  };

  std::vector<PoiPoint> pois;
  pois.reserve(static_cast<size_t>(params.num_pois));
  for (int64_t i = 0; i < params.num_pois; ++i) {
    PoiPoint p;
    if (!clusters.empty() && rng.Bernoulli(params.cluster_fraction)) {
      const Cluster& c =
          clusters[rng.UniformU64(clusters.size())];
      p.x = std::clamp(c.x + gaussian() * sigma, min_x, max_x);
      p.y = std::clamp(c.y + gaussian() * sigma, min_y, max_y);
    } else {
      p.x = rng.UniformDouble(min_x, max_x);
      p.y = rng.UniformDouble(min_y, max_y);
    }
    const CategoryId cat = leaves[static_cast<size_t>(zipf.Sample(rng))];
    p.categories.push_back(cat);
    if (params.multi_category_fraction > 0 &&
        rng.Bernoulli(params.multi_category_fraction)) {
      // Second category from a different tree, uniformly.
      for (int attempts = 0; attempts < 8; ++attempts) {
        const CategoryId extra =
            leaves[rng.UniformU64(leaves.size())];
        if (forest.TreeOf(extra) != forest.TreeOf(cat)) {
          p.categories.push_back(extra);
          break;
        }
      }
    }
    p.name = forest.Name(cat) + " #" + std::to_string(i);
    pois.push_back(std::move(p));
  }
  return pois;
}

}  // namespace skysr

#include "workload/dataset.h"

#include <cmath>

#include "category/taxonomy_factory.h"
#include "graph/poi_embedding.h"
#include "util/logging.h"
#include "workload/poi_assignment.h"
#include "workload/road_network_gen.h"

namespace skysr {

Dataset MakeDataset(const DatasetSpec& spec) {
  Dataset ds;
  ds.name = spec.name;
  ds.forest = spec.forest == ForestKind::kFoursquareLike
                  ? MakeFoursquareLikeForest()
                  : MakeCalLikeForest();

  RoadNetworkParams road;
  road.target_vertices = spec.road_vertices;
  road.seed = spec.seed;
  const Graph base = MakeRoadNetwork(road);

  PoiAssignmentParams pa;
  pa.num_pois = spec.num_pois;
  pa.cluster_fraction = spec.cluster_fraction;
  pa.zipf_theta = spec.zipf_theta;
  pa.multi_category_fraction = spec.multi_category_fraction;
  pa.seed = spec.seed + 1;
  const auto pois = GeneratePoiPoints(base, ds.forest, pa);

  auto embedded = EmbedPoisOnEdges(base, pois);
  SKYSR_CHECK_MSG(embedded.ok(), "PoI embedding failed");
  ds.graph = std::move(embedded).ValueOrDie();
  if (spec.one_way_fraction > 0) {
    ds.graph =
        ApplyOneWayStreets(ds.graph, spec.one_way_fraction, spec.seed + 2);
  }
  return ds;
}

DatasetSpec TokyoLikeSpec(double scale) {
  DatasetSpec s;
  s.name = "tokyo-like";
  s.road_vertices = static_cast<int64_t>(std::llround(401893 * scale));
  s.num_pois = static_cast<int64_t>(std::llround(174421 * scale));
  s.cluster_fraction = 0.15;  // Tokyo PoIs are spread out (Figure 4)
  s.zipf_theta = 0.8;
  s.forest = ForestKind::kFoursquareLike;
  s.seed = 1001;
  return s;
}

DatasetSpec NycLikeSpec(double scale) {
  DatasetSpec s;
  s.name = "nyc-like";
  s.road_vertices = static_cast<int64_t>(std::llround(1150744 * scale));
  s.num_pois = static_cast<int64_t>(std::llround(451051 * scale));
  s.cluster_fraction = 0.75;  // concentrated PoIs
  s.zipf_theta = 0.8;
  s.forest = ForestKind::kFoursquareLike;
  s.seed = 2002;
  return s;
}

DatasetSpec CalLikeSpec(double scale) {
  DatasetSpec s;
  s.name = "cal-like";
  s.road_vertices = static_cast<int64_t>(std::llround(21048 * scale));
  s.num_pois = static_cast<int64_t>(std::llround(87365 * scale));
  s.cluster_fraction = 0.75;  // concentrated PoIs
  s.zipf_theta = 0.9;         // Cal category counts are heavily biased
  s.forest = ForestKind::kCalLike;
  s.seed = 3003;
  return s;
}

}  // namespace skysr

// Dataset bundles and the Tokyo/NYC/Cal-like descriptors (Table 5 of the
// paper, scaled to laptop size; see DESIGN.md §4 for the substitution
// rationale and the preserved ratios).

#ifndef SKYSR_WORKLOAD_DATASET_H_
#define SKYSR_WORKLOAD_DATASET_H_

#include <string>

#include "category/category_forest.h"
#include "graph/graph.h"

namespace skysr {

/// Which taxonomy a dataset uses.
enum class ForestKind {
  kFoursquareLike,  // 10 named trees (Tokyo, NYC)
  kCalLike,         // 7 synthetic trees, branching 3, 63 leaves (Cal)
};

/// Everything a benchmark needs: the embedded graph plus its forest.
struct Dataset {
  std::string name;
  Graph graph;
  CategoryForest forest;
};

/// Generation recipe.
struct DatasetSpec {
  std::string name;
  int64_t road_vertices = 10000;
  int64_t num_pois = 4000;
  double cluster_fraction = 0.5;  // PoI spatial concentration (Figure 4)
  double zipf_theta = 0.8;
  ForestKind forest = ForestKind::kFoursquareLike;
  double multi_category_fraction = 0.0;
  /// Fraction of streets made one-way (> 0 yields a DIRECTED graph; §6).
  double one_way_fraction = 0.0;
  uint64_t seed = 42;
};

/// Builds the dataset (generate network, generate PoIs, embed).
Dataset MakeDataset(const DatasetSpec& spec);

/// Paper Table 5: Tokyo |V|=401,893 |P|=174,421 — spread-out PoIs.
/// `scale` multiplies both counts (default 0.1 keeps benches laptop-sized).
DatasetSpec TokyoLikeSpec(double scale = 0.1);
/// Paper Table 5: NYC |V|=1,150,744 |P|=451,051 — clustered PoIs.
DatasetSpec NycLikeSpec(double scale = 0.05);
/// Paper Table 5: Cal |V|=21,048 |P|=87,365 — small network, dense clustered
/// PoIs, synthetic 63-leaf taxonomy. Full scale by default.
DatasetSpec CalLikeSpec(double scale = 1.0);

}  // namespace skysr

#endif  // SKYSR_WORKLOAD_DATASET_H_

// Query workload generation (§7.1): random start vertices; categories drawn
// from the leaves with the most PoIs ("we select only categories that have a
// large number of PoI vertices"), constrained to distinct trees.

#ifndef SKYSR_WORKLOAD_QUERY_GEN_H_
#define SKYSR_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "workload/dataset.h"

namespace skysr {

struct QueryGenParams {
  int count = 100;
  int sequence_size = 3;
  /// Candidate categories = the `popular_pool` leaves with the most PoIs.
  int popular_pool = 20;
  /// Require pairwise distinct trees across positions (the paper's setting).
  bool distinct_trees = true;
  uint64_t seed = 99;
};

/// Generates `count` queries over the dataset.
std::vector<Query> GenerateQueries(const Dataset& dataset,
                                   const QueryGenParams& params);

}  // namespace skysr

#endif  // SKYSR_WORKLOAD_QUERY_GEN_H_

// Query workload generation (§7.1): random start vertices; categories drawn
// from the leaves with the most PoIs ("we select only categories that have a
// large number of PoI vertices"), constrained to distinct trees.

#ifndef SKYSR_WORKLOAD_QUERY_GEN_H_
#define SKYSR_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/query.h"
#include "util/status.h"
#include "workload/dataset.h"

namespace skysr {

struct QueryGenParams {
  int count = 100;
  int sequence_size = 3;
  /// Candidate categories = the `popular_pool` leaves with the most PoIs.
  int popular_pool = 20;
  /// Require pairwise distinct trees across positions (the paper's setting).
  bool distinct_trees = true;
  uint64_t seed = 99;
};

/// Generates `count` queries over the dataset.
std::vector<Query> GenerateQueries(const Dataset& dataset,
                                   const QueryGenParams& params);

// --- Batch workload files -------------------------------------------------
//
// A workload file is the replayable form of a query batch: one query per
// line, `start|dest|POS;POS;...` with `-` for "no destination". Blank lines
// and `#` comments are ignored. Each position POS is a comma-separated list
// of predicate terms using category names as in taxonomy.txt:
//
//   Cafe                          single any_of category (the common case)
//   Cafe,Bar                      any_of disjunction (§6)
//   Cafe,+Food                    ...with an all_of constraint
//   Cafe,!Fast Food               ...with a none_of constraint
//
// A term prefixed `+` joins the position's all_of list, `!` its none_of
// list; unprefixed terms are any_of (at least one is required). Together
// with the deterministic generators (GenerateQueries, MakeScenarioQueries)
// this makes a benchmark run fully reproducible: generate once with a seed,
// replay anywhere (skysr_cli batch, bench_service_throughput, tests).
//
// Format note: ',' became a term separator when complex predicates were
// added, so category names may no longer contain it (the writer rejects
// them; no built-in taxonomy uses one). Files written by the earlier
// simple-only format load unchanged as long as names are comma-free.

/// Serializes queries, including complex all_of/none_of predicates. Returns
/// InvalidArgument for category names the text format cannot represent
/// (names containing ',', ';' or '|', or starting with '+' or '!').
Status WriteWorkloadFile(const std::string& path, const Dataset& dataset,
                         std::span<const Query> queries);

/// Parses a workload file written by WriteWorkloadFile.
Result<std::vector<Query>> LoadWorkloadFile(const std::string& path,
                                            const Dataset& dataset);

}  // namespace skysr

#endif  // SKYSR_WORKLOAD_QUERY_GEN_H_

// Synthetic PoI placement and category assignment (DESIGN.md §4 substitution
// for the Foursquare PoI extracts).
//
// Positions mix a uniform background with Gaussian clusters — the paper
// observes (Figure 4 discussion) that NYC/Cal PoIs are "relatively
// concentrated in a small area" while Tokyo's are spread out, which the
// cluster_fraction knob reproduces. Categories are drawn Zipf-biased over
// the forest's leaves ("the number of PoI vertices associated with each
// category is significantly biased", §7.1).

#ifndef SKYSR_WORKLOAD_POI_ASSIGNMENT_H_
#define SKYSR_WORKLOAD_POI_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "category/category_forest.h"
#include "graph/graph.h"
#include "graph/poi_embedding.h"

namespace skysr {

struct PoiAssignmentParams {
  int64_t num_pois = 1000;
  /// Fraction of PoIs placed in Gaussian clusters (the rest is uniform).
  double cluster_fraction = 0.5;
  int num_clusters = 12;
  /// Cluster standard deviation as a fraction of the bounding-box width.
  double cluster_sigma_fraction = 0.03;
  /// Zipf skew over category leaves (0 = uniform).
  double zipf_theta = 0.8;
  /// Fraction of PoIs given a second category from another tree (§6).
  double multi_category_fraction = 0.0;
  uint64_t seed = 7;
};

/// Generates raw PoI points within the bounding box of `base` (which must
/// have coordinates); embed them with EmbedPoisOnEdges.
std::vector<PoiPoint> GeneratePoiPoints(const Graph& base,
                                        const CategoryForest& forest,
                                        const PoiAssignmentParams& params);

}  // namespace skysr

#endif  // SKYSR_WORKLOAD_POI_ASSIGNMENT_H_

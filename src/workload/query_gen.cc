#include "workload/query_gen.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"

namespace skysr {

std::vector<Query> GenerateQueries(const Dataset& dataset,
                                   const QueryGenParams& params) {
  const Graph& g = dataset.graph;
  const CategoryForest& forest = dataset.forest;
  Rng rng(params.seed);

  // Popularity = number of PoIs whose primary category is the leaf.
  std::unordered_map<CategoryId, int64_t> counts;
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    ++counts[g.PoiPrimaryCategory(p)];
  }
  std::vector<std::pair<CategoryId, int64_t>> ranked(counts.begin(),
                                                     counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  size_t pool = std::min<size_t>(ranked.size(),
                                 static_cast<size_t>(params.popular_pool));
  SKYSR_CHECK_MSG(pool > 0, "dataset has no PoIs");
  // Widen the pool until it spans enough distinct trees for the constraint.
  if (params.distinct_trees) {
    std::vector<TreeId> seen;
    size_t i = 0;
    for (; i < ranked.size() &&
           static_cast<int>(seen.size()) < params.sequence_size;
         ++i) {
      const TreeId t = forest.TreeOf(ranked[i].first);
      if (std::find(seen.begin(), seen.end(), t) == seen.end()) {
        seen.push_back(t);
      }
    }
    SKYSR_CHECK_MSG(static_cast<int>(seen.size()) >= params.sequence_size,
                    "fewer category trees with PoIs than sequence positions");
    pool = std::max(pool, i);
  }
  std::vector<CategoryId> candidates;
  candidates.reserve(pool);
  for (size_t i = 0; i < pool; ++i) candidates.push_back(ranked[i].first);

  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(params.count));
  for (int qi = 0; qi < params.count; ++qi) {
    std::vector<CategoryId> cats;
    std::vector<TreeId> used_trees;
    int guard = 0;
    while (static_cast<int>(cats.size()) < params.sequence_size) {
      SKYSR_CHECK_MSG(++guard < 100000,
                      "cannot satisfy distinct-tree constraint; "
                      "increase popular_pool or reduce sequence_size");
      const CategoryId c = candidates[rng.UniformU64(candidates.size())];
      const TreeId t = forest.TreeOf(c);
      if (params.distinct_trees &&
          std::find(used_trees.begin(), used_trees.end(), t) !=
              used_trees.end()) {
        continue;
      }
      if (std::find(cats.begin(), cats.end(), c) != cats.end()) continue;
      cats.push_back(c);
      used_trees.push_back(t);
    }
    Query q = MakeSimpleQuery(
        static_cast<VertexId>(rng.UniformU64(
            static_cast<uint64_t>(g.num_vertices()))),
        cats);
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace skysr

#include "workload/query_gen.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace skysr {

std::vector<Query> GenerateQueries(const Dataset& dataset,
                                   const QueryGenParams& params) {
  const Graph& g = dataset.graph;
  const CategoryForest& forest = dataset.forest;
  Rng rng(params.seed);

  // Popularity = number of PoIs whose primary category is the leaf.
  std::unordered_map<CategoryId, int64_t> counts;
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    ++counts[g.PoiPrimaryCategory(p)];
  }
  std::vector<std::pair<CategoryId, int64_t>> ranked(counts.begin(),
                                                     counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  size_t pool = std::min<size_t>(ranked.size(),
                                 static_cast<size_t>(params.popular_pool));
  SKYSR_CHECK_MSG(pool > 0, "dataset has no PoIs");
  // Widen the pool until it spans enough distinct trees for the constraint.
  if (params.distinct_trees) {
    std::vector<TreeId> seen;
    size_t i = 0;
    for (; i < ranked.size() &&
           static_cast<int>(seen.size()) < params.sequence_size;
         ++i) {
      const TreeId t = forest.TreeOf(ranked[i].first);
      if (std::find(seen.begin(), seen.end(), t) == seen.end()) {
        seen.push_back(t);
      }
    }
    SKYSR_CHECK_MSG(static_cast<int>(seen.size()) >= params.sequence_size,
                    "fewer category trees with PoIs than sequence positions");
    pool = std::max(pool, i);
  }
  std::vector<CategoryId> candidates;
  candidates.reserve(pool);
  for (size_t i = 0; i < pool; ++i) candidates.push_back(ranked[i].first);

  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(params.count));
  for (int qi = 0; qi < params.count; ++qi) {
    std::vector<CategoryId> cats;
    std::vector<TreeId> used_trees;
    int guard = 0;
    while (static_cast<int>(cats.size()) < params.sequence_size) {
      SKYSR_CHECK_MSG(++guard < 100000,
                      "cannot satisfy distinct-tree constraint; "
                      "increase popular_pool or reduce sequence_size");
      const CategoryId c = candidates[rng.UniformU64(candidates.size())];
      const TreeId t = forest.TreeOf(c);
      if (params.distinct_trees &&
          std::find(used_trees.begin(), used_trees.end(), t) !=
              used_trees.end()) {
        continue;
      }
      if (std::find(cats.begin(), cats.end(), c) != cats.end()) continue;
      cats.push_back(c);
      used_trees.push_back(t);
    }
    Query q = MakeSimpleQuery(
        static_cast<VertexId>(rng.UniformU64(
            static_cast<uint64_t>(g.num_vertices()))),
        cats);
    queries.push_back(std::move(q));
  }
  return queries;
}

namespace {

/// A name is representable when the grammar's separators and prefixes
/// cannot be confused with it and the loader's Trim gives it back intact.
Status CheckRepresentable(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("empty category name");
  }
  if (name.find(',') != std::string::npos ||
      name.find(';') != std::string::npos ||
      name.find('|') != std::string::npos ||
      name.find('\n') != std::string::npos ||
      name.find('\r') != std::string::npos) {
    return Status::InvalidArgument("category name '" + name +
                                   "' contains a workload-file separator");
  }
  if (name.front() == '+' || name.front() == '!') {
    return Status::InvalidArgument("category name '" + name +
                                   "' starts with a predicate prefix");
  }
  if (Trim(name) != name) {
    return Status::InvalidArgument("category name '" + name +
                                   "' has leading/trailing whitespace");
  }
  return Status::OK();
}

}  // namespace

Status WriteWorkloadFile(const std::string& path, const Dataset& dataset,
                         std::span<const Query> queries) {
  std::ostringstream out;
  out << "# skysr workload: " << queries.size() << " queries over "
      << dataset.name << "\n";
  for (const Query& q : queries) {
    out << q.start << '|';
    if (q.destination.has_value()) {
      out << *q.destination;
    } else {
      out << '-';
    }
    out << '|';
    for (size_t i = 0; i < q.sequence.size(); ++i) {
      const CategoryPredicate& p = q.sequence[i];
      if (p.any_of.empty()) {
        // The loader (and ValidateQuery) require at least one any_of term;
        // refuse to write a file the library itself cannot read back.
        return Status::InvalidArgument(
            "position without any_of categories is not representable");
      }
      if (i > 0) out << ';';
      bool first_term = true;
      const auto term = [&](const char* prefix, CategoryId c) -> Status {
        const std::string& name = dataset.forest.Name(c);
        SKYSR_RETURN_NOT_OK(CheckRepresentable(name));
        if (!first_term) out << ',';
        first_term = false;
        out << prefix << name;
        return Status::OK();
      };
      for (CategoryId c : p.any_of) SKYSR_RETURN_NOT_OK(term("", c));
      for (CategoryId c : p.all_of) SKYSR_RETURN_NOT_OK(term("+", c));
      for (CategoryId c : p.none_of) SKYSR_RETURN_NOT_OK(term("!", c));
    }
    out << '\n';
  }
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  file << out.str();
  if (!file.flush()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<Query>> LoadWorkloadFile(const std::string& path,
                                            const Dataset& dataset) {
  std::ifstream file(path);
  if (!file) return Status::IOError("cannot open " + path);
  std::vector<Query> queries;
  std::string line;
  int lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto err = [&](const std::string& what) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + what);
    };
    const auto fields = Split(trimmed, '|');
    if (fields.size() != 3) return err("expected start|dest|categories");
    Query q;
    int64_t start = 0;
    if (!ParseInt64(Trim(fields[0]), &start)) return err("bad start vertex");
    q.start = static_cast<VertexId>(start);
    if (Trim(fields[1]) != "-") {
      int64_t dest = 0;
      if (!ParseInt64(Trim(fields[1]), &dest)) return err("bad destination");
      q.destination = static_cast<VertexId>(dest);
    }
    for (const auto pos : Split(fields[2], ';')) {
      CategoryPredicate pred;
      for (const auto raw_term : Split(pos, ',')) {
        std::string_view term = Trim(raw_term);
        if (term.empty()) return err("empty predicate term");
        std::vector<CategoryId>* target = &pred.any_of;
        if (term.front() == '+') {
          target = &pred.all_of;
          term = Trim(term.substr(1));
        } else if (term.front() == '!') {
          target = &pred.none_of;
          term = Trim(term.substr(1));
        }
        const CategoryId c = dataset.forest.FindByName(term);
        if (c == kInvalidCategory) {
          return err("unknown category '" + std::string(term) + "'");
        }
        target->push_back(c);
      }
      if (pred.any_of.empty()) {
        return err("position needs at least one any_of category");
      }
      q.sequence.push_back(std::move(pred));
    }
    if (q.sequence.empty()) return err("empty category sequence");
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace skysr

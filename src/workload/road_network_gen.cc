#include "workload/road_network_gen.h"

#include <cmath>
#include <vector>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace skysr {

Graph MakeRoadNetwork(const RoadNetworkParams& params) {
  SKYSR_CHECK(params.target_vertices >= 4);
  Rng rng(params.seed);
  const int64_t side = static_cast<int64_t>(
      std::ceil(std::sqrt(static_cast<double>(params.target_vertices))));
  const double sp = params.cell_spacing;
  const double extent = static_cast<double>(side) * sp;

  // Circular holes covering ~hole_fraction of the area.
  struct Hole {
    double x, y, r2;
  };
  std::vector<Hole> holes;
  double covered = 0;
  const double total_area = extent * extent;
  while (covered < params.hole_fraction * total_area) {
    const double r = rng.UniformDouble(2.0 * sp, extent / 12.0 + 2.0 * sp);
    holes.push_back(Hole{rng.UniformDouble(0, extent),
                         rng.UniformDouble(0, extent), r * r});
    covered += 3.14159265358979 * r * r;
  }
  const auto in_hole = [&](double x, double y) {
    for (const Hole& h : holes) {
      const double dx = x - h.x, dy = y - h.y;
      if (dx * dx + dy * dy < h.r2) return true;
    }
    return false;
  };

  // Jittered grid points outside holes.
  std::vector<int32_t> id_at(static_cast<size_t>(side * side), -1);
  std::vector<double> xs, ys;
  for (int64_t gy = 0; gy < side; ++gy) {
    for (int64_t gx = 0; gx < side; ++gx) {
      const double x =
          static_cast<double>(gx) * sp + rng.UniformDouble(-0.25, 0.25) * sp;
      const double y =
          static_cast<double>(gy) * sp + rng.UniformDouble(-0.25, 0.25) * sp;
      if (in_hole(x, y)) continue;
      id_at[static_cast<size_t>(gy * side + gx)] =
          static_cast<int32_t>(xs.size());
      xs.push_back(x);
      ys.push_back(y);
    }
  }

  // Street edges: 4-neighborhood plus random diagonals.
  struct E {
    int32_t a, b;
    double w;
  };
  std::vector<E> edges;
  const auto add_edge = [&](int32_t a, int32_t b) {
    if (a < 0 || b < 0) return;
    const double dx = xs[static_cast<size_t>(a)] - xs[static_cast<size_t>(b)];
    const double dy = ys[static_cast<size_t>(a)] - ys[static_cast<size_t>(b)];
    const double w = std::hypot(dx, dy) *
                     (1.0 + rng.UniformDouble(0, params.weight_jitter));
    edges.push_back(E{a, b, w});
  };
  for (int64_t gy = 0; gy < side; ++gy) {
    for (int64_t gx = 0; gx < side; ++gx) {
      const int32_t v = id_at[static_cast<size_t>(gy * side + gx)];
      if (v < 0) continue;
      if (gx + 1 < side) {
        add_edge(v, id_at[static_cast<size_t>(gy * side + gx + 1)]);
      }
      if (gy + 1 < side) {
        add_edge(v, id_at[static_cast<size_t>((gy + 1) * side + gx)]);
      }
      if (gx + 1 < side && gy + 1 < side &&
          rng.Bernoulli(params.diagonal_fraction)) {
        add_edge(v, id_at[static_cast<size_t>((gy + 1) * side + gx + 1)]);
      }
    }
  }

  // Keep the largest connected component; relabel densely.
  const auto n = static_cast<int32_t>(xs.size());
  std::vector<std::vector<int32_t>> adj(static_cast<size_t>(n));
  for (const E& e : edges) {
    adj[static_cast<size_t>(e.a)].push_back(e.b);
    adj[static_cast<size_t>(e.b)].push_back(e.a);
  }
  std::vector<int32_t> comp(static_cast<size_t>(n), -1);
  int32_t num_comp = 0;
  int32_t best_comp = 0;
  int64_t best_size = 0;
  std::vector<int32_t> stack;
  for (int32_t v = 0; v < n; ++v) {
    if (comp[static_cast<size_t>(v)] >= 0) continue;
    int64_t size = 0;
    stack.assign(1, v);
    comp[static_cast<size_t>(v)] = num_comp;
    while (!stack.empty()) {
      const int32_t u = stack.back();
      stack.pop_back();
      ++size;
      for (int32_t w : adj[static_cast<size_t>(u)]) {
        if (comp[static_cast<size_t>(w)] < 0) {
          comp[static_cast<size_t>(w)] = num_comp;
          stack.push_back(w);
        }
      }
    }
    if (size > best_size) {
      best_size = size;
      best_comp = num_comp;
    }
    ++num_comp;
  }

  GraphBuilder builder(/*directed=*/false);
  std::vector<int32_t> relabel(static_cast<size_t>(n), -1);
  for (int32_t v = 0; v < n; ++v) {
    if (comp[static_cast<size_t>(v)] == best_comp) {
      relabel[static_cast<size_t>(v)] = builder.AddVertex(
          xs[static_cast<size_t>(v)], ys[static_cast<size_t>(v)]);
    }
  }
  for (const E& e : edges) {
    const int32_t a = relabel[static_cast<size_t>(e.a)];
    const int32_t b = relabel[static_cast<size_t>(e.b)];
    if (a >= 0 && b >= 0) builder.AddEdge(a, b, e.w);
  }
  auto result = builder.Build();
  SKYSR_CHECK_MSG(result.ok(), "road network generation failed");
  return std::move(result).ValueOrDie();
}

Graph ApplyOneWayStreets(const Graph& g, double fraction, uint64_t seed) {
  SKYSR_CHECK_MSG(!g.directed(), "input must be undirected");
  Rng rng(seed);
  const int64_t n = g.num_vertices();

  // BFS spanning tree: these streets stay bidirectional.
  std::vector<VertexId> tree_parent(static_cast<size_t>(n), kInvalidVertex);
  std::vector<char> seen(static_cast<size_t>(n), 0);
  std::vector<VertexId> queue = {0};
  seen[0] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    for (const Neighbor& nb : g.OutEdges(u)) {
      if (!seen[static_cast<size_t>(nb.to)]) {
        seen[static_cast<size_t>(nb.to)] = 1;
        tree_parent[static_cast<size_t>(nb.to)] = u;
        queue.push_back(nb.to);
      }
    }
  }

  GraphBuilder b(/*directed=*/true);
  for (VertexId v = 0; v < n; ++v) {
    if (g.has_coordinates()) {
      b.AddVertex(g.X(v), g.Y(v));
    } else {
      b.AddVertex();
    }
  }
  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : g.OutEdges(u)) {
      if (u >= nb.to) continue;  // each undirected street once
      const bool is_tree_edge =
          tree_parent[static_cast<size_t>(nb.to)] == u ||
          tree_parent[static_cast<size_t>(u)] == nb.to;
      if (!is_tree_edge && rng.Bernoulli(fraction)) {
        if (rng.Bernoulli(0.5)) {
          b.AddEdge(u, nb.to, nb.weight);
        } else {
          b.AddEdge(nb.to, u, nb.weight);
        }
      } else {
        b.AddEdge(u, nb.to, nb.weight);
        b.AddEdge(nb.to, u, nb.weight);
      }
    }
  }
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    b.AddPoi(g.VertexOfPoi(p), g.PoiCategories(p), g.PoiName(p));
  }
  auto result = b.Build();
  SKYSR_CHECK_MSG(result.ok(), "one-way conversion failed");
  return std::move(result).ValueOrDie();
}

}  // namespace skysr

#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace skysr {

VertexId GraphBuilder::AddVertex() {
  has_coordless_ = true;
  xs_.push_back(0.0);
  ys_.push_back(0.0);
  return next_vertex_++;
}

VertexId GraphBuilder::AddVertex(double x, double y) {
  has_coords_ = true;
  xs_.push_back(x);
  ys_.push_back(y);
  return next_vertex_++;
}

void GraphBuilder::AddEdge(VertexId from, VertexId to, Weight weight) {
  edges_.push_back(EdgeRec{from, to, weight});
}

void GraphBuilder::AddPoi(VertexId vertex,
                          std::span<const CategoryId> categories,
                          std::string name) {
  pois_.push_back(PoiRec{vertex,
                         std::vector<CategoryId>(categories.begin(),
                                                 categories.end()),
                         std::move(name)});
}

Result<Graph> GraphBuilder::Build() const {
  const int64_t n = next_vertex_;
  if (has_coords_ && has_coordless_) {
    return Status::InvalidArgument(
        "mixing coordinate and coordinate-less vertices");
  }
  for (const EdgeRec& e : edges_) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (!(e.weight >= 0) || std::isnan(e.weight) || std::isinf(e.weight)) {
      return Status::InvalidArgument("edge weight must be finite and >= 0");
    }
  }

  Graph g;
  g.directed_ = directed_;
  g.num_edges_ = static_cast<int64_t>(edges_.size());
  if (has_coords_) {
    g.xs_ = xs_;
    g.ys_ = ys_;
  }

  // Counting sort into CSR. Undirected edges are stored in both lists.
  std::vector<int64_t> degree(static_cast<size_t>(n), 0);
  for (const EdgeRec& e : edges_) {
    ++degree[static_cast<size_t>(e.from)];
    if (!directed_) ++degree[static_cast<size_t>(e.to)];
  }
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t v = 0; v < n; ++v) {
    g.offsets_[static_cast<size_t>(v) + 1] =
        g.offsets_[static_cast<size_t>(v)] + degree[static_cast<size_t>(v)];
  }
  g.adj_.resize(static_cast<size_t>(g.offsets_.back()));
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  Weight total = 0;
  for (const EdgeRec& e : edges_) {
    g.adj_[static_cast<size_t>(cursor[static_cast<size_t>(e.from)]++)] =
        Neighbor{e.to, e.weight};
    if (!directed_) {
      g.adj_[static_cast<size_t>(cursor[static_cast<size_t>(e.to)]++)] =
          Neighbor{e.from, e.weight};
    }
    total += e.weight;
  }
  g.total_edge_weight_ = total;

  // Sort each adjacency list by target id for deterministic iteration.
  for (int64_t v = 0; v < n; ++v) {
    auto* begin = g.adj_.data() + g.offsets_[static_cast<size_t>(v)];
    auto* end = g.adj_.data() + g.offsets_[static_cast<size_t>(v) + 1];
    std::sort(begin, end, [](const Neighbor& a, const Neighbor& b) {
      return a.to != b.to ? a.to < b.to : a.weight < b.weight;
    });
  }

  // PoIs.
  g.poi_of_vertex_.assign(static_cast<size_t>(n), kInvalidPoi);
  g.poi_cat_offsets_.push_back(0);
  bool any_name = false;
  for (const PoiRec& p : pois_) {
    if (p.vertex < 0 || p.vertex >= n) {
      return Status::InvalidArgument("PoI vertex out of range");
    }
    if (p.categories.empty()) {
      return Status::InvalidArgument("PoI must have at least one category");
    }
    if (g.poi_of_vertex_[static_cast<size_t>(p.vertex)] != kInvalidPoi) {
      return Status::InvalidArgument(
          "vertex " + std::to_string(p.vertex) + " hosts two PoIs");
    }
    const PoiId id = static_cast<PoiId>(g.poi_vertex_.size());
    g.poi_of_vertex_[static_cast<size_t>(p.vertex)] = id;
    g.poi_vertex_.push_back(p.vertex);
    for (CategoryId c : p.categories) {
      if (c < 0) return Status::InvalidArgument("negative category id");
      g.poi_cats_.push_back(c);
    }
    g.poi_cat_offsets_.push_back(static_cast<int32_t>(g.poi_cats_.size()));
    any_name = any_name || !p.name.empty();
  }
  if (any_name) {
    g.poi_names_.reserve(pois_.size());
    for (const PoiRec& p : pois_) g.poi_names_.push_back(p.name);
  }
  return g;
}

Graph ReverseOf(const Graph& g) {
  GraphBuilder b(g.directed());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.has_coordinates()) {
      b.AddVertex(g.X(v), g.Y(v));
    } else {
      b.AddVertex();
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& nb : g.OutEdges(v)) {
      if (g.directed()) {
        b.AddEdge(nb.to, v, nb.weight);
      } else if (v < nb.to) {
        b.AddEdge(v, nb.to, nb.weight);
      }
    }
  }
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    b.AddPoi(g.VertexOfPoi(p), g.PoiCategories(p), g.PoiName(p));
  }
  auto result = b.Build();
  SKYSR_CHECK_MSG(result.ok(), "ReverseOf: rebuild failed");
  return std::move(result).ValueOrDie();
}

}  // namespace skysr

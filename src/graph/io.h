// Text loaders for public road-network datasets.
//
// The formats follow the "California" (Cal) dataset of Li et al.
// (https://www.cs.utah.edu/~lifeifei/SpatialDataset.htm), which the paper
// uses directly:
//   node file:  `<node_id> <x> <y>`                     (one per line)
//   edge file:  `<edge_id> <node_id1> <node_id2> <w>`   (one per line)
//   poi  file:  `<x> <y> <category_id> [name]`          (this library's own)
// Lines starting with '#' are comments; blank lines are skipped.

#ifndef SKYSR_GRAPH_IO_H_
#define SKYSR_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/poi_embedding.h"
#include "util/status.h"

namespace skysr {

/// Loads a road network (no PoIs) from Cal-format node and edge files.
/// Node ids must be dense 0..n-1.
Result<Graph> LoadRoadNetwork(const std::string& node_path,
                              const std::string& edge_path);

/// Loads raw PoI points from a poi file (format above).
Result<std::vector<PoiPoint>> LoadPoiPoints(const std::string& poi_path);

/// Convenience: loads the network, loads the PoIs, embeds the PoIs.
Result<Graph> LoadDataset(const std::string& node_path,
                          const std::string& edge_path,
                          const std::string& poi_path);

}  // namespace skysr

#endif  // SKYSR_GRAPH_IO_H_

// Generic visitor-driven Dijkstra. Every shortest-path search in the library
// (plain distances, the paper's modified Dijkstra of Algorithm 2, NNinit of
// Algorithm 3, the multi-source multi-destination search of Algorithm 4, the
// OSR baselines) instantiates this template with an inline visitor, so the
// traversal core is written — and tested — once.

#ifndef SKYSR_GRAPH_DIJKSTRA_RUNNER_H_
#define SKYSR_GRAPH_DIJKSTRA_RUNNER_H_

#include <bit>
#include <cstdint>
#include <span>
#include <utility>

#include "graph/dijkstra_workspace.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/dary_heap.h"

namespace skysr {

/// Visitor verdict for a settled vertex.
enum class VisitAction {
  /// Keep going and expand this vertex's neighbors.
  kContinue,
  /// Keep going but do not relax edges out of this vertex (Lemma 5.5(ii)).
  kSkipExpand,
  /// Terminate the whole search (bound exceeded / target found).
  kStop,
};

/// Instrumentation counters for one search. `weight_sum` accumulates the
/// weight of every relaxed edge — the paper's "weight sum" search-space proxy
/// (Table 7, Figure 4).
struct DijkstraRunStats {
  int64_t settled = 0;
  int64_t relaxed = 0;
  Weight weight_sum = 0;
  Weight max_settled_dist = 0;

  DijkstraRunStats& operator+=(const DijkstraRunStats& o) {
    settled += o.settled;
    relaxed += o.relaxed;
    weight_sum += o.weight_sum;
    if (o.max_settled_dist > max_settled_dist) {
      max_settled_dist = o.max_settled_dist;
    }
    return *this;
  }
};

/// A weighted source seed: search starts at `vertex` with initial distance
/// `dist` (normally 0).
struct SourceSeed {
  VertexId vertex;
  Weight dist = 0;
};

/// Runs Dijkstra from the given seeds, refusing to enqueue tentative
/// distances at or beyond `relax_bound()` (an exclusive, possibly shrinking
/// bound — the expansion search's Lemma 5.3 budget). The visitor is invoked
/// exactly once per settled vertex as `VisitAction visitor(VertexId v,
/// Weight dist, VertexId parent)`; `parent` is kInvalidVertex for seeds.
/// Ties are broken by vertex id, making traversal order deterministic.
///
/// Every vertex whose distance is below min(first kStop settle's distance,
/// *min_refused_out) is guaranteed settled: a refused push can only hide
/// vertices at or beyond the smallest refused tentative distance (any
/// shorter path to them would have been enqueued). Callers deriving a
/// covered radius must therefore take the min of both.
template <typename Visitor, typename BoundFn>
DijkstraRunStats RunDijkstraBounded(const Graph& g,
                                    std::span<const SourceSeed> seeds,
                                    DijkstraWorkspace& ws, Visitor&& visitor,
                                    BoundFn&& relax_bound,
                                    Weight* min_refused_out) {
  static_assert(sizeof(Weight) == sizeof(uint64_t));
  const auto to_bits = [](Weight w) { return std::bit_cast<uint64_t>(w); };
  const auto to_weight = [](uint64_t b) { return std::bit_cast<Weight>(b); };

  DijkstraRunStats stats;
  ws.Prepare(g.num_vertices());
  DaryHeap<DijkstraHeapItem>& heap = ws.heap();
  heap.clear();
  for (const SourceSeed& s : seeds) {
    if (s.dist < ws.Dist(s.vertex)) {
      ws.SetDist(s.vertex, s.dist, kInvalidVertex);
      heap.push(DijkstraHeapItem{to_bits(s.dist), s.vertex, kInvalidVertex});
    }
  }

  while (!heap.empty()) {
    const DijkstraHeapItem item = heap.pop();
    if (ws.Settled(item.vertex)) continue;  // stale (lazy deletion)
    const Weight dist = to_weight(item.dist_bits);
    ws.MarkSettled(item.vertex);
    ++stats.settled;
    if (dist > stats.max_settled_dist) {
      stats.max_settled_dist = dist;
    }

    const VisitAction action = visitor(item.vertex, dist, item.parent);
    if (action == VisitAction::kStop) break;
    if (action == VisitAction::kSkipExpand) continue;

    for (const Neighbor& nb : g.OutEdges(item.vertex)) {
      if (ws.Settled(nb.to)) continue;
      const Weight nd = dist + nb.weight;
      if (nd < ws.Dist(nb.to)) {
        if (nd >= relax_bound()) {
          // Beyond the budget: can never settle inside it (the bound only
          // shrinks). Skipping the push saves the heap traffic; the refusal
          // caps the provable coverage.
          if (min_refused_out != nullptr && nd < *min_refused_out) {
            *min_refused_out = nd;
          }
          continue;
        }
        ws.SetDist(nb.to, nd, item.vertex);
        heap.push(DijkstraHeapItem{to_bits(nd), nb.to, item.vertex});
        ++stats.relaxed;
        stats.weight_sum += nb.weight;
      }
    }
  }
  return stats;
}

/// Unbounded Dijkstra: the relax bound compiles away.
template <typename Visitor>
DijkstraRunStats RunDijkstra(const Graph& g, std::span<const SourceSeed> seeds,
                             DijkstraWorkspace& ws, Visitor&& visitor) {
  return RunDijkstraBounded(
      g, seeds, ws, std::forward<Visitor>(visitor),
      [] { return kInfWeight; }, nullptr);
}

/// Single-seed convenience overload.
template <typename Visitor>
DijkstraRunStats RunDijkstra(const Graph& g, VertexId source,
                             DijkstraWorkspace& ws, Visitor&& visitor) {
  const SourceSeed seed{source, 0};
  return RunDijkstra(g, std::span<const SourceSeed>(&seed, 1), ws,
                     std::forward<Visitor>(visitor));
}

}  // namespace skysr

#endif  // SKYSR_GRAPH_DIJKSTRA_RUNNER_H_

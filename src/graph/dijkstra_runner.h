// Generic visitor-driven Dijkstra. Every shortest-path search in the library
// (plain distances, the paper's modified Dijkstra of Algorithm 2, NNinit of
// Algorithm 3, the multi-source multi-destination search of Algorithm 4, the
// OSR baselines) instantiates this template with an inline visitor, so the
// traversal core is written — and tested — once.

#ifndef SKYSR_GRAPH_DIJKSTRA_RUNNER_H_
#define SKYSR_GRAPH_DIJKSTRA_RUNNER_H_

#include <span>
#include <utility>

#include "graph/dijkstra_workspace.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/dary_heap.h"

namespace skysr {

/// Visitor verdict for a settled vertex.
enum class VisitAction {
  /// Keep going and expand this vertex's neighbors.
  kContinue,
  /// Keep going but do not relax edges out of this vertex (Lemma 5.5(ii)).
  kSkipExpand,
  /// Terminate the whole search (bound exceeded / target found).
  kStop,
};

/// Instrumentation counters for one search. `weight_sum` accumulates the
/// weight of every relaxed edge — the paper's "weight sum" search-space proxy
/// (Table 7, Figure 4).
struct DijkstraRunStats {
  int64_t settled = 0;
  int64_t relaxed = 0;
  Weight weight_sum = 0;
  Weight max_settled_dist = 0;

  DijkstraRunStats& operator+=(const DijkstraRunStats& o) {
    settled += o.settled;
    relaxed += o.relaxed;
    weight_sum += o.weight_sum;
    if (o.max_settled_dist > max_settled_dist) {
      max_settled_dist = o.max_settled_dist;
    }
    return *this;
  }
};

/// A weighted source seed: search starts at `vertex` with initial distance
/// `dist` (normally 0).
struct SourceSeed {
  VertexId vertex;
  Weight dist = 0;
};

/// Runs Dijkstra from the given seeds. The visitor is invoked exactly once
/// per settled vertex as `VisitAction visitor(VertexId v, Weight dist,
/// VertexId parent)`; `parent` is kInvalidVertex for seeds. Ties are broken
/// by vertex id, making traversal order deterministic.
template <typename Visitor>
DijkstraRunStats RunDijkstra(const Graph& g, std::span<const SourceSeed> seeds,
                             DijkstraWorkspace& ws, Visitor&& visitor) {
  struct HeapItem {
    Weight dist;
    VertexId vertex;
    VertexId parent;
    bool operator<(const HeapItem& o) const {
      if (dist != o.dist) return dist < o.dist;
      return vertex < o.vertex;
    }
  };

  DijkstraRunStats stats;
  ws.Prepare(g.num_vertices());
  DaryHeap<HeapItem> heap;
  for (const SourceSeed& s : seeds) {
    if (s.dist < ws.Dist(s.vertex)) {
      ws.SetDist(s.vertex, s.dist, kInvalidVertex);
      heap.push(HeapItem{s.dist, s.vertex, kInvalidVertex});
    }
  }

  while (!heap.empty()) {
    const HeapItem item = heap.pop();
    if (ws.Settled(item.vertex)) continue;  // stale (lazy deletion)
    ws.MarkSettled(item.vertex);
    ++stats.settled;
    if (item.dist > stats.max_settled_dist) {
      stats.max_settled_dist = item.dist;
    }

    const VisitAction action = visitor(item.vertex, item.dist, item.parent);
    if (action == VisitAction::kStop) break;
    if (action == VisitAction::kSkipExpand) continue;

    for (const Neighbor& nb : g.OutEdges(item.vertex)) {
      if (ws.Settled(nb.to)) continue;
      const Weight nd = item.dist + nb.weight;
      if (nd < ws.Dist(nb.to)) {
        ws.SetDist(nb.to, nd, item.vertex);
        heap.push(HeapItem{nd, nb.to, item.vertex});
        ++stats.relaxed;
        stats.weight_sum += nb.weight;
      }
    }
  }
  return stats;
}

/// Single-seed convenience overload.
template <typename Visitor>
DijkstraRunStats RunDijkstra(const Graph& g, VertexId source,
                             DijkstraWorkspace& ws, Visitor&& visitor) {
  const SourceSeed seed{source, 0};
  return RunDijkstra(g, std::span<const SourceSeed>(&seed, 1), ws,
                     std::forward<Visitor>(visitor));
}

}  // namespace skysr

#endif  // SKYSR_GRAPH_DIJKSTRA_RUNNER_H_

// Mutable builder producing immutable CSR Graphs.

#ifndef SKYSR_GRAPH_GRAPH_BUILDER_H_
#define SKYSR_GRAPH_GRAPH_BUILDER_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace skysr {

/// Accumulates vertices, edges and PoIs, then validates and emits a Graph.
///
/// Usage:
///   GraphBuilder b(/*directed=*/false);
///   VertexId a = b.AddVertex(0.0, 0.0);
///   VertexId c = b.AddVertex(1.0, 0.0);
///   b.AddEdge(a, c, 1.0);
///   b.AddPoi(c, {category}, "Cafe X");
///   SKYSR_ASSIGN_OR_RETURN(Graph g, b.Build());
class GraphBuilder {
 public:
  explicit GraphBuilder(bool directed = false) : directed_(directed) {}

  /// Adds a vertex without coordinates.
  VertexId AddVertex();
  /// Adds a vertex with coordinates. Mixing with coordinate-less vertices is
  /// rejected at Build() time.
  VertexId AddVertex(double x, double y);

  /// Adds an edge with non-negative weight. For undirected builders the edge
  /// is logically one edge traversable both ways.
  void AddEdge(VertexId from, VertexId to, Weight weight);

  /// Declares the vertex to be a PoI with the given categories (at least one)
  /// and an optional display name. A vertex may host at most one PoI.
  void AddPoi(VertexId vertex, std::span<const CategoryId> categories,
              std::string name = "");
  void AddPoi(VertexId vertex, std::initializer_list<CategoryId> categories,
              std::string name = "") {
    AddPoi(vertex, std::span<const CategoryId>(categories.begin(),
                                               categories.size()),
           std::move(name));
  }

  int64_t num_vertices() const { return next_vertex_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Validates and assembles the CSR graph. The builder can be reused after
  /// Build (it is left unchanged).
  Result<Graph> Build() const;

 private:
  struct EdgeRec {
    VertexId from;
    VertexId to;
    Weight weight;
  };
  struct PoiRec {
    VertexId vertex;
    std::vector<CategoryId> categories;
    std::string name;
  };

  bool directed_;
  VertexId next_vertex_ = 0;
  std::vector<double> xs_, ys_;
  bool has_coords_ = false;
  bool has_coordless_ = false;
  std::vector<EdgeRec> edges_;
  std::vector<PoiRec> pois_;
};

/// Returns the edge-reversed graph (same vertices, coordinates and PoIs).
/// For undirected graphs this is a plain copy. Used by destination queries
/// on directed networks, which need distances TO a vertex.
Graph ReverseOf(const Graph& g);

}  // namespace skysr

#endif  // SKYSR_GRAPH_GRAPH_BUILDER_H_

#include "graph/poi_embedding.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/graph_builder.h"
#include "graph/spatial_grid.h"

namespace skysr {
namespace {

struct UniqueEdge {
  VertexId u, v;
  Weight weight;
};

// Projection of point p onto segment [a, b]: returns parameter t in [0,1]
// and squared distance.
void ProjectOntoSegment(double px, double py, double ax, double ay, double bx,
                        double by, double* t_out, double* d2_out) {
  const double abx = bx - ax, aby = by - ay;
  const double len2 = abx * abx + aby * aby;
  double t = 0.0;
  if (len2 > 0) {
    t = ((px - ax) * abx + (py - ay) * aby) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double qx = ax + t * abx, qy = ay + t * aby;
  const double dx = px - qx, dy = py - qy;
  *t_out = t;
  *d2_out = dx * dx + dy * dy;
}

}  // namespace

Result<Graph> EmbedPoisOnEdges(const Graph& base,
                               std::span<const PoiPoint> pois) {
  if (base.directed()) {
    return Status::InvalidArgument("PoI embedding requires undirected graphs");
  }
  if (!base.has_coordinates()) {
    return Status::InvalidArgument("PoI embedding requires coordinates");
  }
  if (base.num_pois() != 0) {
    return Status::InvalidArgument("base graph already contains PoIs");
  }

  // Unique undirected edges (u < v).
  std::vector<UniqueEdge> edges;
  edges.reserve(static_cast<size_t>(base.num_edges()));
  for (VertexId u = 0; u < base.num_vertices(); ++u) {
    for (const Neighbor& nb : base.OutEdges(u)) {
      if (u < nb.to) edges.push_back(UniqueEdge{u, nb.to, nb.weight});
    }
  }
  if (edges.empty() && !pois.empty()) {
    return Status::InvalidArgument("graph has no edges to embed PoIs on");
  }

  // Index edge midpoints; candidate edges for a PoI are those whose midpoint
  // lies within (nearest midpoint distance + longest half-edge), which is a
  // conservative superset of the true nearest edge.
  std::vector<double> mxs(edges.size()), mys(edges.size());
  double max_half_len = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    const auto& e = edges[i];
    mxs[i] = 0.5 * (base.X(e.u) + base.X(e.v));
    mys[i] = 0.5 * (base.Y(e.u) + base.Y(e.v));
    const double dx = base.X(e.v) - base.X(e.u);
    const double dy = base.Y(e.v) - base.Y(e.u);
    max_half_len = std::max(max_half_len, 0.5 * std::hypot(dx, dy));
  }
  const SpatialGrid grid(mxs, mys);

  struct Placement {
    size_t edge_index;
    double t;
    size_t poi_index;
  };
  std::vector<Placement> placements;
  placements.reserve(pois.size());
  for (size_t pi = 0; pi < pois.size(); ++pi) {
    const PoiPoint& p = pois[pi];
    const int64_t near_mid = grid.Nearest(p.x, p.y);
    const double ndx = mxs[static_cast<size_t>(near_mid)] - p.x;
    const double ndy = mys[static_cast<size_t>(near_mid)] - p.y;
    const double search_r =
        std::hypot(ndx, ndy) + 2.0 * max_half_len + 1e-12;
    double best_d2 = std::numeric_limits<double>::infinity();
    size_t best_edge = static_cast<size_t>(near_mid);
    double best_t = 0.5;
    for (int64_t ei : grid.WithinRadius(p.x, p.y, search_r)) {
      const auto& e = edges[static_cast<size_t>(ei)];
      double t, d2;
      ProjectOntoSegment(p.x, p.y, base.X(e.u), base.Y(e.u), base.X(e.v),
                         base.Y(e.v), &t, &d2);
      if (d2 < best_d2) {
        best_d2 = d2;
        best_edge = static_cast<size_t>(ei);
        best_t = t;
      }
    }
    placements.push_back(Placement{best_edge, best_t, pi});
  }

  // Group placements by edge, order along the edge.
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              if (a.edge_index != b.edge_index) {
                return a.edge_index < b.edge_index;
              }
              if (a.t != b.t) return a.t < b.t;
              return a.poi_index < b.poi_index;
            });

  GraphBuilder builder(/*directed=*/false);
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    builder.AddVertex(base.X(v), base.Y(v));
  }

  size_t cursor = 0;
  for (size_t ei = 0; ei < edges.size(); ++ei) {
    const UniqueEdge& e = edges[ei];
    if (cursor >= placements.size() || placements[cursor].edge_index != ei) {
      builder.AddEdge(e.u, e.v, e.weight);
      continue;
    }
    // Split the edge at each placement in order.
    VertexId prev = e.u;
    double prev_t = 0.0;
    while (cursor < placements.size() && placements[cursor].edge_index == ei) {
      const Placement& pl = placements[cursor];
      const PoiPoint& p = pois[pl.poi_index];
      const double px =
          base.X(e.u) + pl.t * (base.X(e.v) - base.X(e.u));
      const double py =
          base.Y(e.u) + pl.t * (base.Y(e.v) - base.Y(e.u));
      const VertexId pv = builder.AddVertex(px, py);
      builder.AddPoi(pv, std::span<const CategoryId>(p.categories), p.name);
      builder.AddEdge(prev, pv, e.weight * (pl.t - prev_t));
      prev = pv;
      prev_t = pl.t;
      ++cursor;
    }
    builder.AddEdge(prev, e.v, e.weight * (1.0 - prev_t));
  }
  return builder.Build();
}

}  // namespace skysr

// Reusable epoch-stamped scratch space for Dijkstra runs.
//
// A query executes many graph searches; allocating and clearing O(|V|)
// arrays for each would dominate the runtime. The workspace keeps dist /
// parent / settled arrays permanently and invalidates them in O(1) by
// bumping an epoch counter (the classic timestamp trick).

#ifndef SKYSR_GRAPH_DIJKSTRA_WORKSPACE_H_
#define SKYSR_GRAPH_DIJKSTRA_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace skysr {

/// Scratch arrays shared by successive Dijkstra executions on one graph.
/// Not thread-safe; use one workspace per thread.
class DijkstraWorkspace {
 public:
  /// Prepares for a new search over a graph with `n` vertices. O(1) unless
  /// the graph grew (or the 32-bit epoch wrapped, which forces a full clear).
  void Prepare(int64_t n) {
    const auto un = static_cast<size_t>(n);
    if (stamp_.size() < un) {
      stamp_.resize(un, 0);
      settled_stamp_.resize(un, 0);
      dist_.resize(un);
      parent_.resize(un);
    }
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      std::fill(settled_stamp_.begin(), settled_stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  bool HasDist(VertexId v) const {
    return stamp_[static_cast<size_t>(v)] == epoch_;
  }

  /// Tentative (or final, once settled) distance; +inf when untouched.
  Weight Dist(VertexId v) const {
    return HasDist(v) ? dist_[static_cast<size_t>(v)] : kInfWeight;
  }

  /// Predecessor on the current shortest path; kInvalidVertex for sources or
  /// untouched vertices.
  VertexId Parent(VertexId v) const {
    return HasDist(v) ? parent_[static_cast<size_t>(v)] : kInvalidVertex;
  }

  void SetDist(VertexId v, Weight d, VertexId parent) {
    const auto i = static_cast<size_t>(v);
    stamp_[i] = epoch_;
    dist_[i] = d;
    parent_[i] = parent;
  }

  bool Settled(VertexId v) const {
    return settled_stamp_[static_cast<size_t>(v)] == epoch_;
  }
  void MarkSettled(VertexId v) {
    settled_stamp_[static_cast<size_t>(v)] = epoch_;
  }

 private:
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> settled_stamp_;
  std::vector<Weight> dist_;
  std::vector<VertexId> parent_;
  uint32_t epoch_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_GRAPH_DIJKSTRA_WORKSPACE_H_

// Reusable epoch-stamped scratch space for Dijkstra runs.
//
// A query executes many graph searches; allocating and clearing O(|V|)
// arrays for each would dominate the runtime. The workspace keeps per-vertex
// state permanently and invalidates it in O(1) by bumping an epoch counter
// (the classic timestamp trick).
//
// Layout: one struct per vertex rather than parallel arrays — Dijkstra's
// accesses are random per vertex but always touch stamp+dist+parent (+the
// settled mark) together, so a single 24-byte slot costs one cache line
// where four parallel arrays cost four.

#ifndef SKYSR_GRAPH_DIJKSTRA_WORKSPACE_H_
#define SKYSR_GRAPH_DIJKSTRA_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/dary_heap.h"
#include "util/logging.h"

namespace skysr {

/// Heap entry of the generic Dijkstra runner. Distances are non-negative,
/// so their IEEE-754 bit patterns order exactly like the doubles — the sift
/// loops compare integers (no FP-compare stalls) with identical ordering.
struct DijkstraHeapItem {
  uint64_t dist_bits;
  VertexId vertex;
  VertexId parent;
  bool operator<(const DijkstraHeapItem& o) const {
    if (dist_bits != o.dist_bits) return dist_bits < o.dist_bits;
    return vertex < o.vertex;
  }
};

/// Scratch state shared by successive Dijkstra executions on one graph.
/// Not thread-safe; use one workspace per thread.
class DijkstraWorkspace {
 public:
  /// Prepares for a new search over a graph with `n` vertices. O(1) unless
  /// the graph grew (or the 32-bit epoch wrapped, which forces a full clear).
  void Prepare(int64_t n) {
    const auto un = static_cast<size_t>(n);
    if (slots_.size() < un) {
      slots_.resize(un);  // zero stamps: older than any epoch
    }
    if (++epoch_ == 0) {
      for (Slot& s : slots_) {
        s.stamp = 0;
        s.settled_stamp = 0;
      }
      epoch_ = 1;
    }
  }

  bool HasDist(VertexId v) const {
    return slots_[static_cast<size_t>(v)].stamp == epoch_;
  }

  /// Tentative (or final, once settled) distance; +inf when untouched.
  Weight Dist(VertexId v) const {
    const Slot& s = slots_[static_cast<size_t>(v)];
    return s.stamp == epoch_ ? s.dist : kInfWeight;
  }

  /// Predecessor on the current shortest path; kInvalidVertex for sources or
  /// untouched vertices.
  VertexId Parent(VertexId v) const {
    const Slot& s = slots_[static_cast<size_t>(v)];
    return s.stamp == epoch_ ? s.parent : kInvalidVertex;
  }

  void SetDist(VertexId v, Weight d, VertexId parent) {
    Slot& s = slots_[static_cast<size_t>(v)];
    s.stamp = epoch_;
    s.dist = d;
    s.parent = parent;
  }

  bool Settled(VertexId v) const {
    return slots_[static_cast<size_t>(v)].settled_stamp == epoch_;
  }
  void MarkSettled(VertexId v) {
    slots_[static_cast<size_t>(v)].settled_stamp = epoch_;
  }

  /// The runner's priority queue, owned here so its storage survives across
  /// the thousands of short searches a query executes. Searches on one
  /// workspace never nest (a visitor must not start another search on the
  /// same workspace), which the epoch scheme already requires.
  DaryHeap<DijkstraHeapItem>& heap() { return heap_; }

 private:
  struct Slot {
    uint32_t stamp = 0;
    uint32_t settled_stamp = 0;
    Weight dist = 0;
    VertexId parent = 0;
  };

  std::vector<Slot> slots_;
  DaryHeap<DijkstraHeapItem> heap_;
  uint32_t epoch_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_GRAPH_DIJKSTRA_WORKSPACE_H_

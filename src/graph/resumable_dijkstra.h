// Incremental ("resumable") Dijkstra with memory proportional to the
// explored region. Powers incremental nearest-neighbor queries: the PNE
// baseline repeatedly asks "give me the (j+1)-th nearest PoI of category c
// from vertex v", which maps to resuming a suspended search.
//
// BASELINE/TEST-ONLY. The hash-map state keeps thousands of concurrent
// instances affordable (one per PNE route end), at ~an order of magnitude
// per-settle overhead over flat arrays — which is why the serving path
// never uses this class: BssrEngine's resumable expansions run on the
// flat-array slots of retrieval/resumable_retriever.h instead. The two
// implementations settle identical sequences;
// tests/retrieval_test.cc:MatchesHashMapResumableDijkstra pins the
// equivalence.

#ifndef SKYSR_GRAPH_RESUMABLE_DIJKSTRA_H_
#define SKYSR_GRAPH_RESUMABLE_DIJKSTRA_H_

#include <optional>
#include <unordered_map>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/dary_heap.h"

namespace skysr {

/// A suspended single-source Dijkstra; each Next() call settles and returns
/// one more vertex in non-decreasing distance order. Uses hash maps instead
/// of O(|V|) arrays so that thousands of instances (one per PNE route end)
/// stay affordable.
class ResumableDijkstra {
 public:
  ResumableDijkstra(const Graph& g, VertexId source);

  /// One settled vertex, in global non-decreasing distance order.
  struct Settle {
    VertexId vertex;
    Weight dist;
  };

  /// Settles and returns the next vertex, or nullopt when the reachable
  /// component is exhausted.
  std::optional<Settle> Next();

  /// Number of vertices settled so far.
  int64_t num_settled() const { return static_cast<int64_t>(settled_count_); }

  /// Approximate heap usage in bytes (for the memory benchmarks).
  int64_t MemoryBytes() const;

 private:
  struct HeapItem {
    Weight dist;
    VertexId vertex;
    bool operator<(const HeapItem& o) const {
      if (dist != o.dist) return dist < o.dist;
      return vertex < o.vertex;
    }
  };

  const Graph& g_;
  DaryHeap<HeapItem> heap_;
  std::unordered_map<VertexId, Weight> dist_;
  std::unordered_map<VertexId, char> settled_;
  size_t settled_count_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_GRAPH_RESUMABLE_DIJKSTRA_H_

#include "graph/io.h"

#include <fstream>
#include <string>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace skysr {
namespace {

// Invokes `fn(line_no, fields)` for every non-empty, non-comment line.
template <typename Fn>
Status ForEachLine(const std::string& path, Fn&& fn) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    SKYSR_RETURN_NOT_OK(fn(line_no, SplitWhitespace(trimmed)));
  }
  return Status::OK();
}

Status ParseError(const std::string& path, int64_t line_no,
                  const std::string& what) {
  return Status::IOError(path + ":" + std::to_string(line_no) + ": " + what);
}

}  // namespace

Result<Graph> LoadRoadNetwork(const std::string& node_path,
                              const std::string& edge_path) {
  GraphBuilder builder(/*directed=*/false);
  int64_t expected_id = 0;
  Status st = ForEachLine(
      node_path,
      [&](int64_t line_no,
          const std::vector<std::string_view>& f) -> Status {
        if (f.size() != 3) {
          return ParseError(node_path, line_no, "expected `id x y`");
        }
        int64_t id;
        double x, y;
        if (!ParseInt64(f[0], &id) || !ParseDouble(f[1], &x) ||
            !ParseDouble(f[2], &y)) {
          return ParseError(node_path, line_no, "malformed number");
        }
        if (id != expected_id) {
          return ParseError(node_path, line_no,
                            "node ids must be dense and ascending from 0");
        }
        ++expected_id;
        builder.AddVertex(x, y);
        return Status::OK();
      });
  SKYSR_RETURN_NOT_OK(st);

  st = ForEachLine(
      edge_path,
      [&](int64_t line_no,
          const std::vector<std::string_view>& f) -> Status {
        if (f.size() != 4) {
          return ParseError(edge_path, line_no, "expected `id n1 n2 w`");
        }
        int64_t id, n1, n2;
        double w;
        if (!ParseInt64(f[0], &id) || !ParseInt64(f[1], &n1) ||
            !ParseInt64(f[2], &n2) || !ParseDouble(f[3], &w)) {
          return ParseError(edge_path, line_no, "malformed number");
        }
        builder.AddEdge(static_cast<VertexId>(n1), static_cast<VertexId>(n2),
                        w);
        return Status::OK();
      });
  SKYSR_RETURN_NOT_OK(st);
  return builder.Build();
}

Result<std::vector<PoiPoint>> LoadPoiPoints(const std::string& poi_path) {
  std::vector<PoiPoint> pois;
  Status st = ForEachLine(
      poi_path,
      [&](int64_t line_no,
          const std::vector<std::string_view>& f) -> Status {
        if (f.size() < 3) {
          return ParseError(poi_path, line_no, "expected `x y cat [name]`");
        }
        PoiPoint p;
        int64_t cat;
        if (!ParseDouble(f[0], &p.x) || !ParseDouble(f[1], &p.y) ||
            !ParseInt64(f[2], &cat)) {
          return ParseError(poi_path, line_no, "malformed number");
        }
        p.categories.push_back(static_cast<CategoryId>(cat));
        for (size_t i = 3; i < f.size(); ++i) {
          if (!p.name.empty()) p.name += ' ';
          p.name.append(f[i]);
        }
        pois.push_back(std::move(p));
        return Status::OK();
      });
  SKYSR_RETURN_NOT_OK(st);
  return pois;
}

Result<Graph> LoadDataset(const std::string& node_path,
                          const std::string& edge_path,
                          const std::string& poi_path) {
  SKYSR_ASSIGN_OR_RETURN(Graph base, LoadRoadNetwork(node_path, edge_path));
  SKYSR_ASSIGN_OR_RETURN(std::vector<PoiPoint> pois, LoadPoiPoints(poi_path));
  return EmbedPoisOnEdges(base, pois);
}

}  // namespace skysr

#include "graph/resumable_dijkstra.h"

namespace skysr {

ResumableDijkstra::ResumableDijkstra(const Graph& g, VertexId source) : g_(g) {
  dist_[source] = 0;
  heap_.push(HeapItem{0, source});
}

std::optional<ResumableDijkstra::Settle> ResumableDijkstra::Next() {
  while (!heap_.empty()) {
    const HeapItem item = heap_.pop();
    auto [it, inserted] = settled_.try_emplace(item.vertex, 1);
    if (!inserted) continue;  // stale entry
    ++settled_count_;
    for (const Neighbor& nb : g_.OutEdges(item.vertex)) {
      if (settled_.count(nb.to) != 0) continue;
      const Weight nd = item.dist + nb.weight;
      auto [dit, dinserted] = dist_.try_emplace(nb.to, nd);
      if (dinserted || nd < dit->second) {
        dit->second = nd;
        heap_.push(HeapItem{nd, nb.to});
      }
    }
    return Settle{item.vertex, item.dist};
  }
  return std::nullopt;
}

int64_t ResumableDijkstra::MemoryBytes() const {
  // Rough model: hash nodes cost ~ 4x their payload; heap is a flat vector.
  const int64_t hash_nodes =
      static_cast<int64_t>(dist_.size() + settled_.size());
  return hash_nodes * 48 +
         static_cast<int64_t>(heap_.size() * sizeof(HeapItem));
}

}  // namespace skysr

// Fundamental identifier and numeric types shared across the library.

#ifndef SKYSR_GRAPH_TYPES_H_
#define SKYSR_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace skysr {

/// Index of a vertex (road vertex or PoI vertex) in a Graph.
using VertexId = int32_t;
/// Index of a PoI in a Graph's PoI table.
using PoiId = int32_t;
/// Index of a category node in a CategoryForest.
using CategoryId = int32_t;
/// Index of a category tree within a CategoryForest.
using TreeId = int32_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr PoiId kInvalidPoi = -1;
inline constexpr CategoryId kInvalidCategory = -1;
inline constexpr TreeId kInvalidTree = -1;

/// Edge weights / route lengths. Weights are non-negative; +infinity encodes
/// "unreachable".
using Weight = double;
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::infinity();

}  // namespace skysr

#endif  // SKYSR_GRAPH_TYPES_H_

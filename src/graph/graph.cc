#include "graph/graph.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace skysr {

bool Graph::IsConnected() const {
  const int64_t n = num_vertices();
  if (n == 0) return true;
  std::vector<char> seen(static_cast<size_t>(n), 0);
  std::vector<VertexId> stack = {0};
  seen[0] = 1;
  int64_t count = 1;
  // For directed graphs this checks weak connectivity only if edges happen to
  // be symmetric; road networks in this library are built symmetric unless
  // the user opts into one-way edges explicitly.
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const Neighbor& nb : OutEdges(v)) {
      if (!seen[static_cast<size_t>(nb.to)]) {
        seen[static_cast<size_t>(nb.to)] = 1;
        ++count;
        stack.push_back(nb.to);
      }
    }
  }
  return count == n;
}

int64_t Graph::MemoryBytes() const {
  int64_t bytes = 0;
  bytes += static_cast<int64_t>(offsets_.capacity() * sizeof(int64_t));
  bytes += static_cast<int64_t>(adj_.capacity() * sizeof(Neighbor));
  bytes += static_cast<int64_t>((xs_.capacity() + ys_.capacity()) *
                                sizeof(double));
  bytes += static_cast<int64_t>(poi_of_vertex_.capacity() * sizeof(PoiId));
  bytes += static_cast<int64_t>(poi_vertex_.capacity() * sizeof(VertexId));
  bytes += static_cast<int64_t>(poi_cat_offsets_.capacity() * sizeof(int32_t));
  bytes += static_cast<int64_t>(poi_cats_.capacity() * sizeof(CategoryId));
  for (const auto& s : poi_names_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
  }
  return bytes;
}

namespace {

constexpr char kMagic[8] = {'S', 'K', 'Y', 'S', 'R', 'G', '1', '\0'};

template <typename T>
bool WriteVec(FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  if (std::fwrite(&n, sizeof(n), 1, f) != 1) return false;
  if (n == 0) return true;
  return std::fwrite(v.data(), sizeof(T), n, f) == n;
}

template <typename T>
bool ReadVec(FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) return false;
  v->resize(n);
  if (n == 0) return true;
  return std::fread(v->data(), sizeof(T), n, f) == n;
}

}  // namespace

Status Graph::SaveBinary(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  const uint8_t directed = directed_ ? 1 : 0;
  ok = ok && std::fwrite(&directed, 1, 1, f) == 1;
  ok = ok && std::fwrite(&num_edges_, sizeof(num_edges_), 1, f) == 1;
  ok = ok &&
       std::fwrite(&total_edge_weight_, sizeof(total_edge_weight_), 1, f) == 1;
  ok = ok && WriteVec(f, offsets_) && WriteVec(f, adj_) && WriteVec(f, xs_) &&
       WriteVec(f, ys_) && WriteVec(f, poi_of_vertex_) &&
       WriteVec(f, poi_vertex_) && WriteVec(f, poi_cat_offsets_) &&
       WriteVec(f, poi_cats_);
  // Names as length-prefixed blobs.
  const uint64_t nn = poi_names_.size();
  ok = ok && std::fwrite(&nn, sizeof(nn), 1, f) == 1;
  for (uint64_t i = 0; ok && i < nn; ++i) {
    const uint64_t len = poi_names_[i].size();
    ok = std::fwrite(&len, sizeof(len), 1, f) == 1 &&
         (len == 0 || std::fwrite(poi_names_[i].data(), 1, len, f) == len);
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<Graph> Graph::LoadBinary(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  Graph g;
  bool ok = std::fread(magic, sizeof(magic), 1, f) == 1 &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  uint8_t directed = 0;
  ok = ok && std::fread(&directed, 1, 1, f) == 1;
  g.directed_ = directed != 0;
  ok = ok && std::fread(&g.num_edges_, sizeof(g.num_edges_), 1, f) == 1;
  ok = ok && std::fread(&g.total_edge_weight_, sizeof(g.total_edge_weight_), 1,
                        f) == 1;
  ok = ok && ReadVec(f, &g.offsets_) && ReadVec(f, &g.adj_) &&
       ReadVec(f, &g.xs_) && ReadVec(f, &g.ys_) &&
       ReadVec(f, &g.poi_of_vertex_) && ReadVec(f, &g.poi_vertex_) &&
       ReadVec(f, &g.poi_cat_offsets_) && ReadVec(f, &g.poi_cats_);
  uint64_t nn = 0;
  ok = ok && std::fread(&nn, sizeof(nn), 1, f) == 1;
  if (ok) {
    g.poi_names_.resize(nn);
    for (uint64_t i = 0; ok && i < nn; ++i) {
      uint64_t len = 0;
      ok = std::fread(&len, sizeof(len), 1, f) == 1;
      if (ok && len > 0) {
        g.poi_names_[i].resize(len);
        ok = std::fread(g.poi_names_[i].data(), 1, len, f) == len;
      }
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("corrupt or truncated snapshot: " + path);
  if (g.offsets_.empty()) {
    return Status::IOError("snapshot missing offsets: " + path);
  }
  return g;
}

}  // namespace skysr

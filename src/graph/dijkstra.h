// Concrete shortest-path helpers built on the generic runner.

#ifndef SKYSR_GRAPH_DIJKSTRA_H_
#define SKYSR_GRAPH_DIJKSTRA_H_

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/dijkstra_runner.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace skysr {

/// Distances (and parents) from a source to every vertex; kInfWeight for
/// unreachable vertices.
struct DistanceField {
  std::vector<Weight> dist;
  std::vector<VertexId> parent;

  /// Reconstructs the vertex path ending at `target` (source first). Empty
  /// when `target` is unreachable.
  std::vector<VertexId> PathTo(VertexId target) const;
};

/// Full single-source shortest paths.
DistanceField SingleSourceDistances(const Graph& g, VertexId source);

/// Single-source shortest paths truncated at `radius`: vertices with distance
/// > radius keep kInfWeight. Settles every vertex with dist <= radius.
DistanceField BoundedDistances(const Graph& g, VertexId source, Weight radius);

/// Point-to-point distance with early termination; kInfWeight if unreachable.
Weight PointToPointDistance(const Graph& g, VertexId source, VertexId target);

/// Result of a nearest-target search.
struct NearestHit {
  VertexId vertex = kInvalidVertex;
  Weight dist = kInfWeight;
};

/// Multi-source multi-destination Dijkstra (Lemma 5.9): returns the closest
/// vertex satisfying `is_target` from any seed, or an empty optional. When
/// `traversal_filter` is provided, only vertices for which it returns true
/// are expanded (used for the ball restriction of Algorithm 4; see DESIGN.md).
std::optional<NearestHit> MultiSourceNearest(
    const Graph& g, std::span<const SourceSeed> seeds,
    const std::function<bool(VertexId)>& is_target,
    const std::function<bool(VertexId)>& traversal_filter = nullptr,
    DijkstraRunStats* stats_out = nullptr);

/// Monomorphized variant for hot call sites: the predicates inline into the
/// settle loop and the caller supplies the workspace, so repeated searches
/// (one per query leg) allocate nothing. `traversal_filter` is always
/// consulted here — pass `[](VertexId) { return true; }` for no filter.
template <typename IsTarget, typename TraversalFilter>
std::optional<NearestHit> MultiSourceNearestT(
    const Graph& g, std::span<const SourceSeed> seeds, DijkstraWorkspace& ws,
    IsTarget&& is_target, TraversalFilter&& traversal_filter,
    DijkstraRunStats* stats_out = nullptr) {
  std::optional<NearestHit> hit;
  DijkstraRunStats stats =
      RunDijkstra(g, seeds, ws, [&](VertexId v, Weight d, VertexId) {
        if (is_target(v)) {
          hit = NearestHit{v, d};
          return VisitAction::kStop;
        }
        if (!traversal_filter(v)) return VisitAction::kSkipExpand;
        return VisitAction::kContinue;
      });
  if (stats_out != nullptr) *stats_out += stats;
  return hit;
}

/// Reference Bellman-Ford (handles the same non-negative inputs; O(V*E)).
/// Exists to property-test Dijkstra against an independent implementation.
std::vector<Weight> BellmanFordDistances(const Graph& g, VertexId source);

}  // namespace skysr

#endif  // SKYSR_GRAPH_DIJKSTRA_H_

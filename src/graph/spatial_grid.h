// Uniform spatial grid over 2-D points for nearest-vertex queries. Used when
// embedding PoIs into a road network and by the workload generators. A grid
// beats a k-d tree here: road-network vertices are near-uniformly spread, and
// construction is a single counting sort.

#ifndef SKYSR_GRAPH_SPATIAL_GRID_H_
#define SKYSR_GRAPH_SPATIAL_GRID_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace skysr {

/// Static grid index over a point set; query by expanding rings.
class SpatialGrid {
 public:
  /// Builds an index over points (xs[i], ys[i]). `target_per_cell` tunes the
  /// grid resolution.
  SpatialGrid(std::span<const double> xs, std::span<const double> ys,
              double target_per_cell = 4.0);

  /// Index of the point nearest to (x, y); -1 when the set is empty.
  int64_t Nearest(double x, double y) const;

  /// All point indices within `radius` (Euclidean) of (x, y).
  std::vector<int64_t> WithinRadius(double x, double y, double radius) const;

  int64_t num_points() const { return static_cast<int64_t>(xs_.size()); }

 private:
  int64_t CellOf(double x, double y) const;
  void CellCoords(double x, double y, int64_t* cx, int64_t* cy) const;

  std::vector<double> xs_, ys_;
  std::vector<int64_t> cell_offsets_;  // CSR over cells
  std::vector<int64_t> cell_points_;
  double min_x_ = 0, min_y_ = 0, cell_size_ = 1;
  int64_t nx_ = 1, ny_ = 1;
};

}  // namespace skysr

#endif  // SKYSR_GRAPH_SPATIAL_GRID_H_

// Embedding of PoI points into a road network.
//
// Following the paper (§7.1, after Li et al. [10]), every PoI is attached to
// the closest road edge: the edge (u,v) is split at the PoI's projection
// point, a new PoI vertex is inserted, and the edge weight is divided
// proportionally. Multiple PoIs on one edge form a chain ordered by their
// projection parameter.

#ifndef SKYSR_GRAPH_POI_EMBEDDING_H_
#define SKYSR_GRAPH_POI_EMBEDDING_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace skysr {

/// A raw PoI observation: a coordinate plus categories, before embedding.
struct PoiPoint {
  double x = 0;
  double y = 0;
  std::vector<CategoryId> categories;
  std::string name;
};

/// Returns a new graph in which every PoI point has been embedded on the
/// closest edge of `base`. `base` must be undirected, have coordinates, and
/// contain no PoIs of its own.
Result<Graph> EmbedPoisOnEdges(const Graph& base,
                               std::span<const PoiPoint> pois);

}  // namespace skysr

#endif  // SKYSR_GRAPH_POI_EMBEDDING_H_

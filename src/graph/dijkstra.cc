#include "graph/dijkstra.h"

#include <algorithm>

namespace skysr {

std::vector<VertexId> DistanceField::PathTo(VertexId target) const {
  std::vector<VertexId> path;
  if (target < 0 || static_cast<size_t>(target) >= dist.size() ||
      dist[static_cast<size_t>(target)] == kInfWeight) {
    return path;
  }
  for (VertexId v = target; v != kInvalidVertex;
       v = parent[static_cast<size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

DistanceField CollectField(const Graph& g, VertexId source, Weight radius) {
  DistanceField out;
  const auto n = static_cast<size_t>(g.num_vertices());
  out.dist.assign(n, kInfWeight);
  out.parent.assign(n, kInvalidVertex);
  DijkstraWorkspace ws;
  RunDijkstra(g, source, ws,
              [&](VertexId v, Weight d, VertexId parent) {
                if (d > radius) return VisitAction::kStop;
                out.dist[static_cast<size_t>(v)] = d;
                out.parent[static_cast<size_t>(v)] = parent;
                return VisitAction::kContinue;
              });
  return out;
}

}  // namespace

DistanceField SingleSourceDistances(const Graph& g, VertexId source) {
  return CollectField(g, source, kInfWeight);
}

DistanceField BoundedDistances(const Graph& g, VertexId source,
                               Weight radius) {
  return CollectField(g, source, radius);
}

Weight PointToPointDistance(const Graph& g, VertexId source, VertexId target) {
  Weight result = kInfWeight;
  DijkstraWorkspace ws;
  RunDijkstra(g, source, ws, [&](VertexId v, Weight d, VertexId) {
    if (v == target) {
      result = d;
      return VisitAction::kStop;
    }
    return VisitAction::kContinue;
  });
  return result;
}

std::optional<NearestHit> MultiSourceNearest(
    const Graph& g, std::span<const SourceSeed> seeds,
    const std::function<bool(VertexId)>& is_target,
    const std::function<bool(VertexId)>& traversal_filter,
    DijkstraRunStats* stats_out) {
  DijkstraWorkspace ws;
  return MultiSourceNearestT(
      g, seeds, ws, is_target,
      [&](VertexId v) { return !traversal_filter || traversal_filter(v); },
      stats_out);
}

std::vector<Weight> BellmanFordDistances(const Graph& g, VertexId source) {
  const auto n = static_cast<size_t>(g.num_vertices());
  std::vector<Weight> dist(n, kInfWeight);
  dist[static_cast<size_t>(source)] = 0;
  bool changed = true;
  // |V|-1 relaxation rounds, early exit when a round changes nothing.
  for (int64_t round = 0; changed && round < g.num_vertices(); ++round) {
    changed = false;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const Weight dv = dist[static_cast<size_t>(v)];
      if (dv == kInfWeight) continue;
      for (const Neighbor& nb : g.OutEdges(v)) {
        if (dv + nb.weight < dist[static_cast<size_t>(nb.to)]) {
          dist[static_cast<size_t>(nb.to)] = dv + nb.weight;
          changed = true;
        }
      }
    }
  }
  return dist;
}

}  // namespace skysr

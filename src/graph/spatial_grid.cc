#include "graph/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace skysr {

SpatialGrid::SpatialGrid(std::span<const double> xs, std::span<const double> ys,
                         double target_per_cell)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  SKYSR_CHECK(xs.size() == ys.size());
  const int64_t n = static_cast<int64_t>(xs_.size());
  if (n == 0) {
    cell_offsets_ = {0, 0};
    return;
  }
  double max_x = xs_[0], max_y = ys_[0];
  min_x_ = xs_[0];
  min_y_ = ys_[0];
  for (int64_t i = 1; i < n; ++i) {
    min_x_ = std::min(min_x_, xs_[static_cast<size_t>(i)]);
    min_y_ = std::min(min_y_, ys_[static_cast<size_t>(i)]);
    max_x = std::max(max_x, xs_[static_cast<size_t>(i)]);
    max_y = std::max(max_y, ys_[static_cast<size_t>(i)]);
  }
  const double width = std::max(max_x - min_x_, 1e-12);
  const double height = std::max(max_y - min_y_, 1e-12);
  const double cells = std::max(1.0, static_cast<double>(n) / target_per_cell);
  // Aspect-preserving grid with ~`cells` cells total.
  const double aspect = width / height;
  nx_ = std::max<int64_t>(1, static_cast<int64_t>(std::sqrt(cells * aspect)));
  ny_ = std::max<int64_t>(1, static_cast<int64_t>(cells / static_cast<double>(nx_)));
  cell_size_ = std::max(width / static_cast<double>(nx_),
                        height / static_cast<double>(ny_));
  nx_ = static_cast<int64_t>(width / cell_size_) + 1;
  ny_ = static_cast<int64_t>(height / cell_size_) + 1;

  const int64_t num_cells = nx_ * ny_;
  cell_offsets_.assign(static_cast<size_t>(num_cells) + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    ++cell_offsets_[static_cast<size_t>(
                        CellOf(xs_[static_cast<size_t>(i)],
                               ys_[static_cast<size_t>(i)])) +
                    1];
  }
  for (size_t c = 1; c < cell_offsets_.size(); ++c) {
    cell_offsets_[c] += cell_offsets_[c - 1];
  }
  cell_points_.resize(static_cast<size_t>(n));
  std::vector<int64_t> cursor(cell_offsets_.begin(), cell_offsets_.end() - 1);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = CellOf(xs_[static_cast<size_t>(i)],
                             ys_[static_cast<size_t>(i)]);
    cell_points_[static_cast<size_t>(cursor[static_cast<size_t>(c)]++)] = i;
  }
}

void SpatialGrid::CellCoords(double x, double y, int64_t* cx,
                             int64_t* cy) const {
  *cx = std::clamp<int64_t>(
      static_cast<int64_t>((x - min_x_) / cell_size_), 0, nx_ - 1);
  *cy = std::clamp<int64_t>(
      static_cast<int64_t>((y - min_y_) / cell_size_), 0, ny_ - 1);
}

int64_t SpatialGrid::CellOf(double x, double y) const {
  int64_t cx, cy;
  CellCoords(x, y, &cx, &cy);
  return cy * nx_ + cx;
}

int64_t SpatialGrid::Nearest(double x, double y) const {
  if (xs_.empty()) return -1;
  int64_t cx, cy;
  CellCoords(x, y, &cx, &cy);
  int64_t best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  const int64_t max_ring = std::max(nx_, ny_);
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    // Once a hit exists, stop when the ring cannot contain anything closer.
    if (best >= 0) {
      const double ring_min =
          (static_cast<double>(ring) - 1.0) * cell_size_;
      if (ring_min > 0 && ring_min * ring_min > best_d2) break;
    }
    for (int64_t dy = -ring; dy <= ring; ++dy) {
      for (int64_t dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const int64_t gx = cx + dx, gy = cy + dy;
        if (gx < 0 || gx >= nx_ || gy < 0 || gy >= ny_) continue;
        const int64_t c = gy * nx_ + gx;
        for (int64_t k = cell_offsets_[static_cast<size_t>(c)];
             k < cell_offsets_[static_cast<size_t>(c) + 1]; ++k) {
          const int64_t i = cell_points_[static_cast<size_t>(k)];
          const double ddx = xs_[static_cast<size_t>(i)] - x;
          const double ddy = ys_[static_cast<size_t>(i)] - y;
          const double d2 = ddx * ddx + ddy * ddy;
          if (d2 < best_d2) {
            best_d2 = d2;
            best = i;
          }
        }
      }
    }
  }
  return best;
}

std::vector<int64_t> SpatialGrid::WithinRadius(double x, double y,
                                               double radius) const {
  std::vector<int64_t> out;
  if (xs_.empty()) return out;
  int64_t cx0, cy0, cx1, cy1;
  CellCoords(x - radius, y - radius, &cx0, &cy0);
  CellCoords(x + radius, y + radius, &cx1, &cy1);
  const double r2 = radius * radius;
  for (int64_t gy = cy0; gy <= cy1; ++gy) {
    for (int64_t gx = cx0; gx <= cx1; ++gx) {
      const int64_t c = gy * nx_ + gx;
      for (int64_t k = cell_offsets_[static_cast<size_t>(c)];
           k < cell_offsets_[static_cast<size_t>(c) + 1]; ++k) {
        const int64_t i = cell_points_[static_cast<size_t>(k)];
        const double ddx = xs_[static_cast<size_t>(i)] - x;
        const double ddy = ys_[static_cast<size_t>(i)] - y;
        if (ddx * ddx + ddy * ddy <= r2) out.push_back(i);
      }
    }
  }
  return out;
}

}  // namespace skysr

// Immutable road-network graph in CSR (compressed sparse row) layout.
//
// The graph models the paper's G = (V ∪ P, E): ordinary road vertices plus
// PoI vertices embedded in the network. Every vertex has an adjacency list;
// PoI vertices additionally carry one or more category ids (the paper's base
// setting is one category per PoI; the §6 extension allows several) and an
// optional display name. Undirected graphs store each edge in both adjacency
// lists but count it once in num_edges().

#ifndef SKYSR_GRAPH_GRAPH_H_
#define SKYSR_GRAPH_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"
#include "util/status.h"

namespace skysr {

/// One outgoing adjacency entry.
struct Neighbor {
  VertexId to;
  Weight weight;
};

/// Immutable CSR graph with PoI payloads. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  int64_t num_vertices() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }
  /// Logical edge count (an undirected edge counts once).
  int64_t num_edges() const { return num_edges_; }
  int64_t num_pois() const { return static_cast<int64_t>(poi_vertex_.size()); }
  bool directed() const { return directed_; }
  bool has_coordinates() const { return !xs_.empty(); }

  /// Outgoing adjacency of `v`.
  std::span<const Neighbor> OutEdges(VertexId v) const {
    SKYSR_DCHECK(v >= 0 && v < num_vertices());
    const auto b = static_cast<size_t>(offsets_[v]);
    const auto e = static_cast<size_t>(offsets_[v + 1]);
    return {adj_.data() + b, e - b};
  }

  int64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// PoI id at vertex `v`, or kInvalidPoi when `v` is a plain road vertex.
  PoiId PoiAtVertex(VertexId v) const {
    SKYSR_DCHECK(v >= 0 && v < num_vertices());
    return poi_of_vertex_[static_cast<size_t>(v)];
  }
  bool IsPoiVertex(VertexId v) const { return PoiAtVertex(v) != kInvalidPoi; }

  /// Vertex hosting PoI `p`.
  VertexId VertexOfPoi(PoiId p) const {
    SKYSR_DCHECK(p >= 0 && p < num_pois());
    return poi_vertex_[static_cast<size_t>(p)];
  }

  /// Categories associated with PoI `p` (at least one).
  std::span<const CategoryId> PoiCategories(PoiId p) const {
    SKYSR_DCHECK(p >= 0 && p < num_pois());
    const auto b = static_cast<size_t>(poi_cat_offsets_[p]);
    const auto e = static_cast<size_t>(poi_cat_offsets_[p + 1]);
    return {poi_cats_.data() + b, e - b};
  }

  /// First (primary) category of PoI `p`.
  CategoryId PoiPrimaryCategory(PoiId p) const { return PoiCategories(p)[0]; }

  /// Display name of PoI `p`; empty when names were not provided.
  const std::string& PoiName(PoiId p) const {
    static const std::string kEmpty;
    if (poi_names_.empty()) return kEmpty;
    return poi_names_[static_cast<size_t>(p)];
  }

  /// Coordinates (requires has_coordinates()).
  double X(VertexId v) const { return xs_[static_cast<size_t>(v)]; }
  double Y(VertexId v) const { return ys_[static_cast<size_t>(v)]; }

  /// Sum of all edge weights (undirected edges counted once). Used as the
  /// denominator of search-space ("weight sum") ratios in the benchmarks.
  Weight TotalEdgeWeight() const { return total_edge_weight_; }

  /// True when every vertex is reachable from vertex 0 ignoring direction.
  bool IsConnected() const;

  /// Approximate heap footprint of the graph structure in bytes.
  int64_t MemoryBytes() const;

  /// Serializes the graph to a binary snapshot file.
  Status SaveBinary(const std::string& path) const;
  /// Loads a graph from a binary snapshot produced by SaveBinary.
  static Result<Graph> LoadBinary(const std::string& path);

 private:
  friend class GraphBuilder;

  std::vector<int64_t> offsets_;   // size n+1
  std::vector<Neighbor> adj_;      // size = directed edges stored
  std::vector<double> xs_, ys_;    // optional coordinates
  std::vector<PoiId> poi_of_vertex_;
  std::vector<VertexId> poi_vertex_;
  std::vector<int32_t> poi_cat_offsets_;  // size num_pois+1
  std::vector<CategoryId> poi_cats_;
  std::vector<std::string> poi_names_;  // empty or size num_pois
  int64_t num_edges_ = 0;
  Weight total_edge_weight_ = 0;
  bool directed_ = false;
};

}  // namespace skysr

#endif  // SKYSR_GRAPH_GRAPH_H_

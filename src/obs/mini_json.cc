#include "obs/mini_json.h"

#include <cctype>
#include <cstdlib>

namespace skysr {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    SKYSR_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content");
    return v;
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        return ParseLiteral("true", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
        });
      case 'f':
        return ParseLiteral("false", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
        });
      case 'n':
        return ParseLiteral("null",
                            [out] { out->kind = JsonValue::Kind::kNull; });
      default:
        return ParseNumber(out);
    }
  }

  template <typename Fn>
  Status ParseLiteral(std::string_view word, Fn&& apply) {
    if (text_.substr(pos_, word.size()) != word) return Error("bad literal");
    pos_ += word.size();
    apply();
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Error("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            // Bench files are ASCII; keep \uXXXX escapes verbatim rather
            // than transcoding (the reporter never needs them).
            if (text_.size() - pos_ < 4) return Error("bad \\u escape");
            *out += "\\u";
            out->append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default:
            return Error("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      SKYSR_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      SKYSR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SKYSR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace skysr

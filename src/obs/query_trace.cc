#include "obs/query_trace.h"

#include <algorithm>

namespace skysr {

QueryTrace::QueryTrace(size_t capacity) {
  ring_.resize(std::max<size_t>(capacity, 16));
  Clear();
}

void QueryTrace::Clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  depth_ = 0;
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now().time_since_epoch())
                  .count();
  aggregates_.Clear();
}

}  // namespace skysr

// A minimal recursive-descent JSON reader for the observability tools (the
// perf-trajectory reporter ingests the benches' BENCH_*.json files; tests
// parse trace exports). Full JSON value model, no external dependencies, no
// streaming — files here are kilobytes. Not for untrusted input beyond what
// the depth cap guards.

#ifndef SKYSR_OBS_MINI_JSON_H_
#define SKYSR_OBS_MINI_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace skysr {

/// One parsed JSON value. Object members keep file order (the reporter's
/// column order follows the bench's emission order).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup; null for non-objects and missing keys.
  const JsonValue* Find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Member's string value, or `def` when absent / not a string.
  std::string_view StringOr(std::string_view key, std::string_view def) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_string() ? std::string_view(v->string) : def;
  }
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Returns InvalidArgument with a byte offset on
/// malformed input.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace skysr

#endif  // SKYSR_OBS_MINI_JSON_H_

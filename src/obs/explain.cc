#include "obs/explain.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace skysr {

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

std::string QueryExplain::ToTreeString() const {
  std::string out = "explain\n";
  Appendf(&out,
          "├─ plan: oracle=%s lemma5.5=%s retriever=%s -> %s\n",
          oracle.c_str(), deferred_lemma55 ? "deferred" : "inline",
          retriever_requested.c_str(),
          bucket_backend ? "bucket" : (resume_backend ? "resume" : "settle"));
  Appendf(&out,
          "│  └─ cost model: fwd_settles=%" PRId64
          " settle_density=%.4f vertices=%" PRId64 "\n",
          cost_fwd_settles, cost_settle_density, cost_num_vertices);
  out += "├─ positions\n";
  for (size_t m = 0; m < positions.size(); ++m) {
    const ExplainPositionBackends& p = positions[m];
    Appendf(&out,
            "│  %s─ [%zu] fresh=%" PRId64 " cache_replay=%" PRId64
            " log_replay=%" PRId64 " bucket=%" PRId64 " resume=%" PRId64 "\n",
            m + 1 == positions.size() ? "└" : "├", m, p.fresh_searches,
            p.cache_replays, p.settle_log_replays, p.bucket_runs,
            p.resume_runs);
  }
  out += "├─ caches\n";
  Appendf(&out,
          "│  ├─ fwd_search: %" PRId64 " hit / %" PRId64 " miss, %" PRId64
          " bytes\n",
          fwd_search.hits, fwd_search.misses, fwd_search.bytes);
  Appendf(&out, "│  ├─ dest_tail: %s (%" PRId64 " hit / %" PRId64
                " miss), %" PRId64 " bytes\n",
          dest_tail_source.c_str(), dest_tail.hits, dest_tail.misses,
          dest_tail.bytes);
  Appendf(&out,
          "│  ├─ result_cache: %" PRId64 " hit / %" PRId64 " miss\n",
          result_cache.hits, result_cache.misses);
  Appendf(&out,
          "│  └─ resume_slots: %" PRId64 " reuse / %" PRId64 " evict\n",
          resume_slots.hits, resume_slots.misses);
  Appendf(&out,
          "├─ pruning: cand_pruned=%" PRId64 " = threshold %" PRId64
          " + prune-floor %" PRId64 " (qb_dominance=%" PRId64
          " simd_floor_skips=%" PRId64 ")\n",
          cand_pruned, pruned_threshold, pruned_floor, pruned_qb_dominance,
          simd_floor_skips);
  Appendf(&out, "└─ batch: id=%" PRId64 " group=%" PRId64 " role=%s\n",
          batch_id, group_size, role.c_str());
  return out;
}

std::string QueryExplain::ToJson() const {
  std::string out = "{";
  Appendf(&out, "\"oracle\":\"%s\",\"lemma55\":\"%s\",", oracle.c_str(),
          deferred_lemma55 ? "deferred" : "inline");
  Appendf(&out, "\"retriever\":{\"requested\":\"%s\",\"bucket\":%s,"
                "\"resume\":%s,\"cost_fwd_settles\":%" PRId64
                ",\"cost_settle_density\":%.6f,\"cost_vertices\":%" PRId64
                "},",
          retriever_requested.c_str(), bucket_backend ? "true" : "false",
          resume_backend ? "true" : "false", cost_fwd_settles,
          cost_settle_density, cost_num_vertices);
  out += "\"positions\":[";
  for (size_t m = 0; m < positions.size(); ++m) {
    const ExplainPositionBackends& p = positions[m];
    if (m != 0) out += ',';
    Appendf(&out,
            "{\"fresh\":%" PRId64 ",\"cache_replay\":%" PRId64
            ",\"log_replay\":%" PRId64 ",\"bucket\":%" PRId64
            ",\"resume\":%" PRId64 "}",
            p.fresh_searches, p.cache_replays, p.settle_log_replays,
            p.bucket_runs, p.resume_runs);
  }
  out += "],\"caches\":{";
  const auto layer = [&](const char* name, const ExplainCacheLayer& l,
                         bool last) {
    Appendf(&out,
            "\"%s\":{\"hits\":%" PRId64 ",\"misses\":%" PRId64
            ",\"bytes\":%" PRId64 "}%s",
            name, l.hits, l.misses, l.bytes, last ? "" : ",");
  };
  layer("fwd_search", fwd_search, false);
  layer("dest_tail", dest_tail, false);
  Appendf(&out, "\"dest_tail_source\":\"%s\",", dest_tail_source.c_str());
  layer("result_cache", result_cache, false);
  layer("resume_slots", resume_slots, true);
  out += "},";
  Appendf(&out,
          "\"pruning\":{\"cand_pruned\":%" PRId64 ",\"threshold\":%" PRId64
          ",\"prune_floor\":%" PRId64 ",\"qb_dominance\":%" PRId64
          ",\"simd_floor_skips\":%" PRId64 "},",
          cand_pruned, pruned_threshold, pruned_floor, pruned_qb_dominance,
          simd_floor_skips);
  Appendf(&out,
          "\"batch\":{\"id\":%" PRId64 ",\"group_size\":%" PRId64
          ",\"role\":\"%s\"}}",
          batch_id, group_size, role.c_str());
  return out;
}

}  // namespace skysr

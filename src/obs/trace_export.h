// Export of QueryTrace contents: Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto) and human-readable phase breakdowns.
//
// The JSON uses "X" (complete) events on one timeline; ts/dur are
// microseconds as the format requires. Nesting is inferred by the viewers
// from containment on a (pid, tid) track, which holds because spans are
// recorded at scope exit of strictly nested RAII scopes. Multi-trace export
// assigns one tid per trace (= per worker) and names the tracks via "M"
// metadata events.

#ifndef SKYSR_OBS_TRACE_EXPORT_H_
#define SKYSR_OBS_TRACE_EXPORT_H_

#include <span>
#include <string>
#include <string_view>

#include "obs/query_trace.h"

namespace skysr {

/// One named track of a merged export.
struct TraceTrack {
  const QueryTrace* trace = nullptr;
  std::string name;  // track (thread) name, e.g. "worker-3"
};

/// Chrome trace-event JSON for one trace on a single track.
std::string TraceToChromeJson(const QueryTrace& trace,
                              std::string_view track_name = "query");

/// Merged multi-track export (one tid per track; timelines align because
/// every trace's epoch is absolute steady-clock time). Null traces in the
/// span are skipped.
std::string TracesToChromeJson(std::span<const TraceTrack> tracks);

/// Aligned human-readable per-phase table: "phase count total_ms max_ms
/// mean_us" lines for every phase with a nonzero count. Empty aggregates
/// yield an empty string.
std::string PhaseBreakdownString(const PhaseAggregates& agg);

}  // namespace skysr

#endif  // SKYSR_OBS_TRACE_EXPORT_H_

// QueryExplain — per-query decision attribution (the EXPLAIN ANALYZE of the
// serving stack). Where SearchStats counts *how much* work a query did, an
// explain records *which mechanism decided* to do (or skip) it: the
// retriever cost model's inputs and verdict, which backend answered each
// sequence position, what every cache layer contributed, how the pruned
// candidates split across the three pruning layers (DESIGN.md §9 maps each
// field to its paper mechanism), and — for served queries — the batch
// context the scheduler placed the query in.
//
// Discipline matches the tracing subsystem (query_trace.h): explain is
// off by default (`QueryOptions::explain`), costs one branch per
// attribution site when off, and allocates only when requested — the golden
// work counters and the steady-state allocs/query gate are untouched.
// Results are bit-identical either way; an explain never feeds back into
// any decision.
//
// Rendering: ToTreeString() for humans (`skysr_cli query --explain`),
// ToJson() for machines (parses with obs/mini_json.h; nightly publishes
// EXPLAIN_scale.json). Attached to QueryResult as a shared_ptr so slow-query
// records and coalesced-follower copies share one instance.

#ifndef SKYSR_OBS_EXPLAIN_H_
#define SKYSR_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace skysr {

/// One cache layer's contribution to one query.
struct ExplainCacheLayer {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t bytes = 0;  // resident bytes of the layer after the query
};

/// Which backend answered each expansion of one sequence position.
struct ExplainPositionBackends {
  int64_t cache_replays = 0;      // intra-query MdijkstraCache replays
  int64_t settle_log_replays = 0; // cross-position settle-log replays
  int64_t bucket_runs = 0;        // category-bucket scans (§5.3.3 tables)
  int64_t resume_runs = 0;        // resumable suspended searches
  int64_t fresh_searches = 0;     // classic modified-Dijkstra settles
};

struct QueryExplain {
  // --- Plan: what the engine decided before the drain. ---
  std::string oracle = "none";        // OracleKindName, "none" w/o an index
  bool deferred_lemma55 = false;      // Lemma 5.5 deferral mode
  std::string retriever_requested = "auto";  // QueryOptions::retriever
  bool bucket_backend = false;        // plan verdict: bucket scans eligible
  bool resume_backend = false;        // plan verdict: resumable slots eligible
  // Retriever cost-model inputs (RetrieverCostModel::PreferBucket).
  int64_t cost_fwd_settles = 0;       // oracle->ApproxSearchSettles()
  double cost_settle_density = 0.0;   // buckets->SettleDensity()
  int64_t cost_num_vertices = 0;

  // --- Per-position expansion backends (index = sequence position). ---
  std::vector<ExplainPositionBackends> positions;

  // --- Cache attribution, layer by layer. ---
  ExplainCacheLayer fwd_search;    // SharedQueryCache forward searches
  ExplainCacheLayer dest_tail;     // destination-tail table
  std::string dest_tail_source = "none";  // group-pin|provider|local|none
  ExplainCacheLayer result_cache;  // service result cache (service fills)
  ExplainCacheLayer resume_slots;  // resumable-slot reuses vs evictions

  // --- Pruning attribution. threshold + prune_floor == cand_pruned
  // exactly (the split of SearchStats::cand_pruned); qb_dominance and
  // simd_floor_skips are the other two layers, counted separately because
  // their candidates never reach the consume() decision. ---
  int64_t pruned_threshold = 0;
  int64_t pruned_floor = 0;
  int64_t pruned_qb_dominance = 0;
  int64_t simd_floor_skips = 0;
  int64_t cand_pruned = 0;

  // --- Batch context (the serving layer fills these). ---
  int64_t batch_id = -1;              // -1 = not served through a batch
  int64_t group_size = 0;             // members in the RunGroup
  std::string role = "unbatched";     // unbatched|leader|coalesced

  /// Human-readable tree (skysr_cli query --explain).
  std::string ToTreeString() const;

  /// JSON object, parseable by obs/mini_json.h.
  std::string ToJson() const;
};

}  // namespace skysr

#endif  // SKYSR_OBS_EXPLAIN_H_

// QueryTrace — a zero-steady-state-allocation phase tracer for the query
// engine and the service (ROADMAP "perf-trajectory dashboard" prerequisite).
//
// Design constraints, in order:
//   1. Disabled (the default) must cost ONE predictable branch per span
//      site and allocate nothing, so the golden work counters and the
//      ~20 allocs/query steady state are untouched.
//   2. Enabled must still not allocate per query: events land in a
//      fixed-capacity ring buffer sized once at Enable(); overflow
//      overwrites the oldest events (and is counted) instead of growing.
//   3. Export must be loadable by chrome://tracing / Perfetto (trace-event
//      JSON, see trace_export.h) and cheap to aggregate (per-phase
//      count/total/max, see trace_phase.h).
//
// Usage (engine side):
//   QueryTrace trace(/*capacity=*/4096);   // allocates here, once
//   trace.set_enabled(true);
//   engine.AttachTrace(&trace);
//   engine.Run(query);                     // spans recorded
//   WriteFile(path, TraceToChromeJson(trace));
//
// Span sites use the RAII TraceSpan:
//   { TraceSpan s(trace_, TracePhase::kNnInit); RunNnInit(...); }
// A null or disabled trace makes the constructor a single branch and the
// destructor a no-op.
//
// Threading: a QueryTrace is single-writer, like the engine that owns it.
// Concurrent reads while a query is in flight see torn state; export after
// the writer quiesces (the service exports between batches / at shutdown).

#ifndef SKYSR_OBS_QUERY_TRACE_H_
#define SKYSR_OBS_QUERY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/trace_phase.h"

namespace skysr {

/// One closed span. Times are nanoseconds relative to the trace epoch
/// (reset by Clear); the epoch itself is process-steady-clock absolute so
/// traces from different workers merge on one timeline.
struct TraceEvent {
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  /// Non-zero links this event into a Chrome flow (arrow between tracks):
  /// the coalescing path tags a follower's queue-wait with kFlowStart and
  /// the leader-side fanout with kFlowFinish under the same id, so the
  /// exported timeline draws submitted -> executed arrows per follower.
  uint64_t flow_id = 0;
  TracePhase phase = TracePhase::kQuery;
  uint8_t depth = 0;  // span-nesting depth at entry (root = 0)
  uint8_t flow = 0;   // kFlowNone / kFlowStart / kFlowFinish

  static constexpr uint8_t kFlowNone = 0;
  static constexpr uint8_t kFlowStart = 1;
  static constexpr uint8_t kFlowFinish = 2;
};

class QueryTrace {
 public:
  /// `capacity` = ring size in events; clamped to >= 16. All allocation
  /// happens here.
  explicit QueryTrace(size_t capacity = kDefaultCapacity);

  /// Master switch. Enabling does not clear — call Clear() to start a
  /// fresh window. Disabled traces record nothing.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Drops all events and aggregates and restarts the epoch.
  void Clear();

  /// Nanoseconds since the trace epoch.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
               .count() -
           epoch_ns_;
  }

  /// Absolute epoch (steady-clock ns), for cross-trace timeline merging.
  int64_t epoch_ns() const { return epoch_ns_; }

  /// Records a closed span. `start_ns` is relative to the epoch (NowNs at
  /// entry). Called by ~TraceSpan; also usable directly for externally
  /// timed regions (the service's queue-wait is measured by the task's own
  /// timer, not a live span).
  void Record(TracePhase phase, int64_t start_ns, int64_t dur_ns,
              uint8_t depth, uint64_t flow_id = 0,
              uint8_t flow = TraceEvent::kFlowNone) {
    if (!enabled_) return;
    TraceEvent& e = ring_[head_];
    e.start_ns = start_ns;
    e.dur_ns = dur_ns;
    e.flow_id = flow_id;
    e.phase = phase;
    e.depth = depth;
    e.flow = flow;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
    aggregates_.of(phase).Add(dur_ns);
  }

  /// Span-nesting bookkeeping for TraceSpan.
  uint8_t EnterSpan() {
    const uint8_t d = depth_;
    if (depth_ < 255) ++depth_;
    return d;
  }
  void ExitSpan() {
    if (depth_ > 0) --depth_;
  }

  /// Events oldest-first (ring order resolved). O(size) copy-free walk via
  /// the visitor so export never materializes a second buffer.
  template <typename Fn>
  void ForEachEvent(Fn&& fn) const {
    const size_t cap = ring_.size();
    const size_t first = size_ < cap ? 0 : head_;
    for (size_t i = 0; i < size_; ++i) {
      fn(ring_[(first + i) % cap]);
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  /// Events overwritten since the last Clear (ring wrapped).
  int64_t dropped() const { return dropped_; }

  const PhaseAggregates& aggregates() const { return aggregates_; }

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  using Clock = std::chrono::steady_clock;

  std::vector<TraceEvent> ring_;
  size_t head_ = 0;   // next write position
  size_t size_ = 0;   // valid events
  int64_t dropped_ = 0;
  uint8_t depth_ = 0;
  bool enabled_ = false;
  int64_t epoch_ns_ = 0;
  PhaseAggregates aggregates_;
};

/// RAII span. Construction on a null or disabled trace is one branch; the
/// destructor then does nothing. No allocation either way.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, TracePhase phase) {
    if (trace != nullptr && trace->enabled()) {
      trace_ = trace;
      phase_ = phase;
      depth_ = trace->EnterSpan();
      start_ns_ = trace->NowNs();
    }
  }

  ~TraceSpan() { Close(); }

  /// Records the span now instead of at destruction (idempotent). Lets a
  /// caller end its root span before reading the trace's aggregates.
  void Close() {
    if (trace_ != nullptr) {
      trace_->ExitSpan();
      trace_->Record(phase_, start_ns_, trace_->NowNs() - start_ns_, depth_);
      trace_ = nullptr;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_ = nullptr;
  TracePhase phase_ = TracePhase::kQuery;
  uint8_t depth_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_OBS_QUERY_TRACE_H_

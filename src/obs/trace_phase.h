// Trace phases and per-phase aggregates — the vocabulary of the tracing
// subsystem (src/obs/). This header is dependency-free so core/search_stats.h
// can embed PhaseAggregates without pulling the rest of obs into every
// engine translation unit.
//
// Each phase maps to a stage of the paper's evaluation (see DESIGN.md §5):
// NNinit is §5.3.1 / Table 7's "initial search" column, expansion +
// retrieval are the bulk-search body behind Tables 7-9, the lower bound is
// §5.3.3 / Figure 4, and the service phases decompose the end-to-end
// latency the serving benches report.

#ifndef SKYSR_OBS_TRACE_PHASE_H_
#define SKYSR_OBS_TRACE_PHASE_H_

#include <cstdint>

namespace skysr {

/// One instrumented region. Engine phases come first, service phases last;
/// values are contiguous so aggregates live in a flat array.
enum class TracePhase : uint8_t {
  kQuery = 0,       // root span: one whole BssrEngine::Run
  kNnInit,          // §5.3.1 initial search
  kDestTails,       // §6 destination-distance table (reverse Dijkstra / LRU)
  kLowerBound,      // §5.3.3 leg lower bounds
  kOracleTable,     // index-layer many-to-many tables (inside init/LB)
  kQbDrain,         // Algorithm 1's bulk-queue drain loop
  kExpansion,       // one expand(): cache replay or fresh search
  kRetrieval,       // the expansion's backend work (settle/bucket/resume)
  kSkylineInsert,   // SkylineSet::Update calls
  kQueueWait,       // service: submission -> worker pickup
  kCacheLookup,     // service: result-cache probe
  kExecute,         // service: engine.Run inside a worker
  kBatchDrain,      // service: drain leader collecting + forming a batch
  kGroupExecute,    // service: one BssrEngine::RunGroup over a source group
  kCoalesceFanout,  // service: fanning a leader's result out to followers
};

inline constexpr int kNumTracePhases = 15;

/// Stable lowercase names, used by the Chrome trace export, the SearchStats
/// dump and the bench JSON. Index = static_cast<int>(phase).
inline constexpr const char* kTracePhaseNames[kNumTracePhases] = {
    "query",     "nn_init",   "dest_tails",     "lower_bound",
    "oracle_table", "qb_drain", "expansion",    "retrieval",
    "skyline_insert", "queue_wait", "cache_lookup", "execute",
    "batch_drain", "group_execute", "coalesce_fanout",
};

inline const char* TracePhaseName(TracePhase p) {
  return kTracePhaseNames[static_cast<int>(p)];
}

/// Count/total/max wall time of one phase across a window (one query, one
/// batch — whatever the owner aggregates over).
struct PhaseAggregate {
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;

  void Add(int64_t dur_ns) {
    ++count;
    total_ns += dur_ns;
    if (dur_ns > max_ns) max_ns = dur_ns;
  }
};

/// Flat per-phase aggregate table. Embedded in SearchStats (zeroed when
/// tracing is off — the default — so golden counters and allocation counts
/// are untouched).
struct PhaseAggregates {
  PhaseAggregate phase[kNumTracePhases] = {};

  const PhaseAggregate& of(TracePhase p) const {
    return phase[static_cast<int>(p)];
  }
  PhaseAggregate& of(TracePhase p) { return phase[static_cast<int>(p)]; }

  bool empty() const {
    for (const PhaseAggregate& a : phase) {
      if (a.count != 0) return false;
    }
    return true;
  }

  void Clear() {
    for (PhaseAggregate& a : phase) a = PhaseAggregate{};
  }

  void Merge(const PhaseAggregates& o) {
    for (int i = 0; i < kNumTracePhases; ++i) {
      phase[i].count += o.phase[i].count;
      phase[i].total_ns += o.phase[i].total_ns;
      if (o.phase[i].max_ns > phase[i].max_ns) {
        phase[i].max_ns = o.phase[i].max_ns;
      }
    }
  }

  /// Delta of this (current) table against an earlier snapshot `before` of
  /// the same table — how a per-query window is cut out of a trace that the
  /// owner aggregates across queries. Counts and totals subtract exactly; a
  /// per-window max is not recoverable from two snapshots, so active phases
  /// carry the running window max (an upper bound on the true delta max).
  PhaseAggregates DiffSince(const PhaseAggregates& before) const {
    PhaseAggregates d;
    for (int i = 0; i < kNumTracePhases; ++i) {
      d.phase[i].count = phase[i].count - before.phase[i].count;
      d.phase[i].total_ns = phase[i].total_ns - before.phase[i].total_ns;
      d.phase[i].max_ns = d.phase[i].count > 0 ? phase[i].max_ns : 0;
    }
    return d;
  }
};

}  // namespace skysr

#endif  // SKYSR_OBS_TRACE_PHASE_H_

#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>

namespace skysr {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
}

/// "M" metadata event naming a (pid, tid) track.
void AppendThreadName(std::string* out, int tid, std::string_view name,
                      bool* first) {
  if (!*first) *out += ',';
  *first = false;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                "\"args\":{\"name\":\"",
                tid);
  *out += buf;
  AppendEscaped(out, name);
  *out += "\"}}";
}

void AppendEvents(std::string* out, const QueryTrace& trace, int tid,
                  bool* first) {
  const double epoch_us = static_cast<double>(trace.epoch_ns()) / 1000.0;
  trace.ForEachEvent([&](const TraceEvent& e) {
    if (!*first) *out += ',';
    *first = false;
    const double ts_us = epoch_us + static_cast<double>(e.start_ns) / 1000.0;
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"skysr\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
                  TracePhaseName(e.phase), ts_us,
                  static_cast<double>(e.dur_ns) / 1000.0, tid);
    *out += buf;
    if (e.flow != TraceEvent::kFlowNone) {
      // Flow arrow endpoints bind to the enclosing "X" slice at `ts`. The
      // start anchors inside the follower's queue-wait; the finish uses
      // bp:"e" so the arrow lands on the leader's fanout slice itself.
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"coalesce\",\"cat\":\"skysr\",\"ph\":\"%s\","
                    "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}",
                    e.flow == TraceEvent::kFlowStart ? "s" : "f", e.flow_id,
                    ts_us, tid,
                    e.flow == TraceEvent::kFlowStart ? "" : ",\"bp\":\"e\"");
      *out += ',';
      *out += buf;
    }
  });
}

}  // namespace

std::string TracesToChromeJson(std::span<const TraceTrack> tracks) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  int tid = 0;
  for (const TraceTrack& t : tracks) {
    if (t.trace == nullptr) continue;
    AppendThreadName(&out, tid, t.name, &first);
    AppendEvents(&out, *t.trace, tid, &first);
    ++tid;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceToChromeJson(const QueryTrace& trace,
                              std::string_view track_name) {
  const TraceTrack track{&trace, std::string(track_name)};
  return TracesToChromeJson(std::span<const TraceTrack>(&track, 1));
}

std::string PhaseBreakdownString(const PhaseAggregates& agg) {
  std::string out;
  for (int i = 0; i < kNumTracePhases; ++i) {
    const PhaseAggregate& a = agg.phase[i];
    if (a.count == 0) continue;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-15s count %8" PRId64 "  total %10.3f ms  max %9.3f ms"
                  "  mean %8.1f us\n",
                  kTracePhaseNames[i], a.count,
                  static_cast<double>(a.total_ns) / 1e6,
                  static_cast<double>(a.max_ns) / 1e6,
                  a.count > 0 ? static_cast<double>(a.total_ns) / 1e3 /
                                    static_cast<double>(a.count)
                              : 0.0);
    out += buf;
  }
  return out;
}

}  // namespace skysr

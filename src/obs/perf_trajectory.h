// Perf-trajectory analysis over the benches' BENCH_*.json files.
//
// Every bench emits one JSON document per run: top-level scalar labels, a
// `meta` object (schema/git/build/timestamp — bench_common.h stamps it) and
// one array of row objects whose numeric fields are the metrics. This
// module ingests a set of such documents (typically one directory of
// runs accumulated by CI), lines up runs of the same bench in time order,
// and for every (row, metric) series compares the latest value against the
// median of the trailing window — flagging regressions direction-aware:
//
//   higher-better metrics (qps, *_per_sec, *throughput*)  flag on drops
//   lower-better metrics (*_ms, *_ns, *_bytes, allocs*)   flag on rises
//   everything else (deterministic work counters, sizes)  tracked, unflagged
//
// Deterministic counters are reported but never flagged: they change only
// when the algorithm changes, which a golden-counter test already guards
// with exact equality — a percentage gate would only double-report it.
//
// The output is a markdown trend table (one row per flagged-or-tracked
// series) and a CSV with the full data, consumed by tools/perf_report.cc.

#ifndef SKYSR_OBS_PERF_TRAJECTORY_H_
#define SKYSR_OBS_PERF_TRAJECTORY_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace skysr {

/// One bench run, as extracted from a BENCH_*.json document.
struct BenchRun {
  std::string bench;      // "hotpath", "index", ... ("" = unlabeled)
  std::string source;     // filename (diagnostics)
  std::string timestamp;  // meta.timestamp_utc; "" when unstamped
  std::string git_sha;    // meta.git_sha; "" when unstamped
  // Row-major metric samples: (row label, metric name, value). The row
  // label joins the row object's string fields ("grid/settle" for
  // {family: "grid", config: "settle"}).
  struct Sample {
    std::string row;
    std::string metric;
    double value = 0;
  };
  std::vector<Sample> samples;
};

/// Per-(bench, row, metric) time series across runs, with the regression
/// verdict for the latest value.
struct MetricTrend {
  std::string bench;
  std::string row;
  std::string metric;
  std::vector<double> values;  // oldest first; one per run that has it
  double latest = 0;
  double baseline = 0;   // median of the trailing window before `latest`
  double change = 0;     // (latest - baseline) / |baseline|; 0 if no base
  int direction = 0;     // +1 higher-better, -1 lower-better, 0 unflagged
  bool regressed = false;
};

struct PerfReportOptions {
  /// Relative change beyond which a directional metric is flagged.
  double threshold = 0.10;
  /// Trailing runs (before the latest) whose median is the baseline.
  int window = 5;
};

struct PerfReport {
  std::vector<MetricTrend> trends;  // regressions first, then by name
  int num_runs = 0;
  int num_regressions = 0;

  std::string ToMarkdown() const;
  std::string ToCsv() const;
};

/// Extracts a BenchRun from one JSON document. Fails on malformed JSON or
/// a document with no recognizable metrics.
Result<BenchRun> ParseBenchRun(const std::string& json_text,
                               const std::string& source_name);

/// Direction heuristic used for flagging, exposed for tests: +1 for
/// higher-better, -1 for lower-better, 0 for tracked-only.
int MetricDirection(const std::string& metric);

/// Orders runs (stable by bench, then timestamp, then source name), builds
/// every series and applies the regression gate.
PerfReport BuildPerfReport(std::vector<BenchRun> runs,
                           const PerfReportOptions& options = {});

}  // namespace skysr

#endif  // SKYSR_OBS_PERF_TRAJECTORY_H_

#include "obs/perf_trajectory.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <tuple>

#include "obs/mini_json.h"

namespace skysr {

namespace {

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::string_view sv(suffix);
  return s.size() >= sv.size() &&
         std::string_view(s).substr(s.size() - sv.size()) == sv;
}

/// Joins a row object's string-valued fields into the row label and appends
/// its numeric fields (nested objects flattened with a dotted prefix) as
/// samples.
void ExtractRow(const JsonValue& row, BenchRun* out) {
  std::string label;
  for (const auto& [key, value] : row.object) {
    if (value.is_string()) {
      if (!label.empty()) label += '/';
      label += value.string;
    }
  }
  const auto emit = [&](const std::string& prefix, const JsonValue& obj,
                        const auto& self) -> void {
    for (const auto& [key, value] : obj.object) {
      const std::string name = prefix.empty() ? key : prefix + "." + key;
      if (value.is_number()) {
        out->samples.push_back(BenchRun::Sample{label, name, value.number});
      } else if (value.is_object()) {
        self(name, value, self);
      }
    }
  };
  emit("", row, emit);
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

std::string FormatValue(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int MetricDirection(const std::string& metric) {
  // Lower-better first: a latency/footprint name wins even if it also
  // mentions a rate ("p99_ms" over any qps-ish substring).
  if (EndsWith(metric, "_ms") || EndsWith(metric, "_ns") ||
      EndsWith(metric, "_bytes") || Contains(metric, "allocs") ||
      Contains(metric, "latency")) {
    return -1;
  }
  if (Contains(metric, "qps") || Contains(metric, "per_sec") ||
      Contains(metric, "throughput") || Contains(metric, "hit_rate")) {
    return +1;
  }
  return 0;
}

Result<BenchRun> ParseBenchRun(const std::string& json_text,
                               const std::string& source_name) {
  Result<JsonValue> parsed = ParseJson(json_text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(source_name + ": " +
                                   parsed.status().message());
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument(source_name + ": top level is not an object");
  }
  BenchRun run;
  run.source = source_name;
  run.bench = root.StringOr("bench", "");
  if (const JsonValue* meta = root.Find("meta")) {
    run.timestamp = meta->StringOr("timestamp_utc", "");
    run.git_sha = meta->StringOr("git_sha", "");
  }
  for (const auto& [key, value] : root.object) {
    if (value.is_number() && key != "scale" && key != "reps") {
      // Top-level numeric summaries are metrics of the run itself.
      run.samples.push_back(BenchRun::Sample{"", key, value.number});
    } else if (value.is_array()) {
      for (const JsonValue& row : value.array) {
        if (row.is_object()) ExtractRow(row, &run);
      }
    }
  }
  if (run.samples.empty()) {
    return Status::InvalidArgument(source_name + ": no numeric metrics found");
  }
  return run;
}

PerfReport BuildPerfReport(std::vector<BenchRun> runs,
                           const PerfReportOptions& options) {
  // Stable run order: bench, then stamp, then filename — unstamped legacy
  // files still order deterministically. ISO-8601 stamps sort lexically.
  std::stable_sort(runs.begin(), runs.end(),
                   [](const BenchRun& a, const BenchRun& b) {
                     if (a.bench != b.bench) return a.bench < b.bench;
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return a.source < b.source;
                   });

  // (bench, row, metric) -> values in run order.
  std::map<std::tuple<std::string, std::string, std::string>,
           std::vector<double>>
      series;
  for (const BenchRun& run : runs) {
    for (const BenchRun::Sample& s : run.samples) {
      series[{run.bench, s.row, s.metric}].push_back(s.value);
    }
  }

  PerfReport report;
  report.num_runs = static_cast<int>(runs.size());
  for (auto& [key, values] : series) {
    MetricTrend t;
    t.bench = std::get<0>(key);
    t.row = std::get<1>(key);
    t.metric = std::get<2>(key);
    t.values = values;
    t.latest = values.back();
    t.direction = MetricDirection(t.metric);
    if (values.size() >= 2) {
      const size_t window = std::min(
          values.size() - 1, static_cast<size_t>(std::max(options.window, 1)));
      t.baseline = Median(std::vector<double>(values.end() - 1 -
                                                  static_cast<long>(window),
                                              values.end() - 1));
      if (t.baseline != 0) {
        t.change = (t.latest - t.baseline) / std::abs(t.baseline);
      }
      if (t.direction != 0) {
        // A regression moves against the metric's good direction by more
        // than the threshold.
        t.regressed = t.direction > 0 ? t.change < -options.threshold
                                      : t.change > options.threshold;
      }
    }
    if (t.regressed) ++report.num_regressions;
    report.trends.push_back(std::move(t));
  }
  std::stable_sort(report.trends.begin(), report.trends.end(),
                   [](const MetricTrend& a, const MetricTrend& b) {
                     return a.regressed > b.regressed;
                   });
  return report;
}

std::string PerfReport::ToMarkdown() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "# Perf trajectory (%d runs, %d regression%s)\n\n",
                num_runs, num_regressions, num_regressions == 1 ? "" : "s");
  out += buf;
  out += "| bench | row | metric | baseline | latest | change | flag |\n";
  out += "|---|---|---|---:|---:|---:|---|\n";
  for (const MetricTrend& t : trends) {
    out += "| " + (t.bench.empty() ? "-" : t.bench);
    out += " | " + (t.row.empty() ? "-" : t.row);
    out += " | " + t.metric;
    out += " | " + FormatValue(t.baseline);
    out += " | " + FormatValue(t.latest);
    std::snprintf(buf, sizeof(buf), " | %+.1f%%", t.change * 100.0);
    out += buf;
    out += t.regressed
               ? " | REGRESSED |\n"
               : (t.direction == 0 ? " | |\n" : " | ok |\n");
  }
  return out;
}

std::string PerfReport::ToCsv() const {
  std::string out = "bench,row,metric,baseline,latest,change,regressed\n";
  for (const MetricTrend& t : trends) {
    out += t.bench + "," + t.row + "," + t.metric + "," +
           FormatValue(t.baseline) + "," + FormatValue(t.latest) + "," +
           FormatValue(t.change) + "," + (t.regressed ? "1" : "0") + "\n";
  }
  return out;
}

}  // namespace skysr

// Umbrella header for the SkySR library.
//
// SkySR reproduces "Sequenced Route Query with Semantic Hierarchy"
// (Sasaki, Ishikawa, Fujiwara, Onizuka — EDBT 2018): skyline sequenced-route
// queries over road networks with a category-forest semantic hierarchy.
//
// Quick start:
//   #include "skysr.h"
//   using namespace skysr;
//   Dataset ds = MakeDataset(TokyoLikeSpec(0.02));
//   BssrEngine engine(ds.graph, ds.forest);
//   CategoryId food = ds.forest.FindByName("Asian Restaurant");
//   ...
//   auto result = engine.Run(MakeSimpleQuery(start, {food, arts, shop}));

#ifndef SKYSR_SKYSR_H_
#define SKYSR_SKYSR_H_

#include "baseline/brute_force.h"      // IWYU pragma: export
#include "baseline/naive_skysr.h"      // IWYU pragma: export
#include "baseline/osr_dijkstra.h"     // IWYU pragma: export
#include "baseline/osr_pne.h"          // IWYU pragma: export
#include "category/category_forest.h"  // IWYU pragma: export
#include "category/similarity.h"       // IWYU pragma: export
#include "category/taxonomy_factory.h" // IWYU pragma: export
#include "category/text_format.h"      // IWYU pragma: export
#include "core/bssr_engine.h"          // IWYU pragma: export
#include "core/query.h"                // IWYU pragma: export
#include "core/route.h"                // IWYU pragma: export
#include "ext/unordered_trip.h"        // IWYU pragma: export
#include "graph/dijkstra.h"            // IWYU pragma: export
#include "graph/graph.h"               // IWYU pragma: export
#include "graph/graph_builder.h"       // IWYU pragma: export
#include "graph/io.h"                  // IWYU pragma: export
#include "index/oracle_factory.h"      // IWYU pragma: export
#include "retrieval/bucket_io.h"       // IWYU pragma: export
#include "retrieval/poi_retriever.h"   // IWYU pragma: export
#include "scenario/diff_check.h"       // IWYU pragma: export
#include "scenario/scenario.h"         // IWYU pragma: export
#include "service/query_service.h"     // IWYU pragma: export
#include "util/rng.h"                  // IWYU pragma: export
#include "workload/dataset.h"          // IWYU pragma: export
#include "workload/query_gen.h"        // IWYU pragma: export

#endif  // SKYSR_SKYSR_H_

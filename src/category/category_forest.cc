#include "category/category_forest.h"

#include <algorithm>

namespace skysr {

std::vector<CategoryId> CategoryForest::LeavesOfTree(TreeId t) const {
  std::vector<CategoryId> leaves;
  std::vector<CategoryId> stack = {RootOf(t)};
  while (!stack.empty()) {
    const CategoryId c = stack.back();
    stack.pop_back();
    const auto kids = Children(c);
    if (kids.empty()) {
      leaves.push_back(c);
    } else {
      // Push in reverse so preorder comes out left-to-right.
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return leaves;
}

std::vector<CategoryId> CategoryForest::AncestorsOrSelf(CategoryId c) const {
  std::vector<CategoryId> out;
  for (CategoryId cur = c; cur != kInvalidCategory; cur = Parent(cur)) {
    out.push_back(cur);
  }
  return out;
}

CategoryId CategoryForest::FindByName(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<CategoryId>(i);
  }
  return kInvalidCategory;
}

CategoryId CategoryForestBuilder::AddRoot(std::string name) {
  parent_.push_back(kInvalidCategory);
  names_.push_back(std::move(name));
  return static_cast<CategoryId>(parent_.size() - 1);
}

CategoryId CategoryForestBuilder::AddChild(CategoryId parent,
                                           std::string name) {
  SKYSR_CHECK_MSG(parent >= 0 &&
                      parent < static_cast<CategoryId>(parent_.size()),
                  "AddChild: unknown parent");
  parent_.push_back(parent);
  names_.push_back(std::move(name));
  return static_cast<CategoryId>(parent_.size() - 1);
}

Result<CategoryForest> CategoryForestBuilder::Build() const {
  const auto n = static_cast<size_t>(parent_.size());
  if (n == 0) return Status::InvalidArgument("empty category forest");

  CategoryForest f;
  f.parent_ = parent_;
  f.names_ = names_;
  f.depth_.assign(n, 0);
  f.tree_.assign(n, kInvalidTree);

  // Children CSR.
  std::vector<int32_t> counts(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const CategoryId p = parent_[i];
    if (p != kInvalidCategory) {
      ++counts[static_cast<size_t>(p)];
    }
  }
  f.child_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    f.child_offsets_[i + 1] = f.child_offsets_[i] + counts[i];
  }
  f.children_.resize(static_cast<size_t>(f.child_offsets_[n]));
  std::vector<int32_t> cursor(f.child_offsets_.begin(),
                              f.child_offsets_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const CategoryId p = parent_[i];
    if (p != kInvalidCategory) {
      f.children_[static_cast<size_t>(cursor[static_cast<size_t>(p)]++)] =
          static_cast<CategoryId>(i);
    }
  }

  // Roots, depths and tree ids via BFS (also detects cycles / forward refs).
  for (size_t i = 0; i < n; ++i) {
    if (parent_[i] == kInvalidCategory) {
      f.roots_.push_back(static_cast<CategoryId>(i));
    }
  }
  if (f.roots_.empty()) {
    return Status::InvalidArgument("category forest has no roots");
  }
  int64_t visited = 0;
  std::vector<CategoryId> queue;
  for (size_t t = 0; t < f.roots_.size(); ++t) {
    const CategoryId root = f.roots_[t];
    f.depth_[static_cast<size_t>(root)] = 1;  // roots have depth 1
    f.tree_[static_cast<size_t>(root)] = static_cast<TreeId>(t);
    queue.assign(1, root);
    while (!queue.empty()) {
      const CategoryId c = queue.back();
      queue.pop_back();
      ++visited;
      const auto b = static_cast<size_t>(f.child_offsets_[c]);
      const auto e = static_cast<size_t>(f.child_offsets_[c + 1]);
      for (size_t k = b; k < e; ++k) {
        const CategoryId ch = f.children_[k];
        f.depth_[static_cast<size_t>(ch)] =
            f.depth_[static_cast<size_t>(c)] + 1;
        f.tree_[static_cast<size_t>(ch)] = static_cast<TreeId>(t);
        queue.push_back(ch);
      }
    }
  }
  if (visited != static_cast<int64_t>(n)) {
    return Status::InvalidArgument("category forest contains a cycle");
  }

  f.lca_.Build(f.parent_, f.child_offsets_, f.children_, f.roots_);
  return f;
}

}  // namespace skysr

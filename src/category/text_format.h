// Human-editable text format for category forests.
//
//   # comment
//   Food
//     Asian Restaurant
//       Japanese Restaurant
//   Shop & Service
//     Gift Shop
//
// Indentation (2 spaces per level) encodes the hierarchy; top-level lines
// are tree roots.

#ifndef SKYSR_CATEGORY_TEXT_FORMAT_H_
#define SKYSR_CATEGORY_TEXT_FORMAT_H_

#include <string>

#include "category/category_forest.h"
#include "util/status.h"

namespace skysr {

/// Serializes a forest to the indented text format.
std::string ForestToText(const CategoryForest& forest);

/// Parses the indented text format.
Result<CategoryForest> ForestFromText(const std::string& text);

/// Loads a forest from a file in the indented text format.
Result<CategoryForest> LoadForestFile(const std::string& path);

}  // namespace skysr

#endif  // SKYSR_CATEGORY_TEXT_FORMAT_H_

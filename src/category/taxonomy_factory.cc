#include "category/taxonomy_factory.h"

#include <functional>
#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace skysr {
namespace {

CategoryForest BuildOrDie(const CategoryForestBuilder& b) {
  auto result = b.Build();
  SKYSR_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).ValueOrDie();
}

}  // namespace

CategoryForest MakeFoursquareLikeForest() {
  CategoryForestBuilder b;

  // 1. Food
  const CategoryId food = b.AddRoot("Food");
  const CategoryId asian = b.AddChild(food, "Asian Restaurant");
  const CategoryId japanese = b.AddChild(asian, "Japanese Restaurant");
  b.AddChild(japanese, "Sushi Restaurant");
  b.AddChild(japanese, "Ramen Restaurant");
  b.AddChild(asian, "Chinese Restaurant");
  b.AddChild(asian, "Thai Restaurant");
  const CategoryId italian = b.AddChild(food, "Italian Restaurant");
  b.AddChild(italian, "Pizza Place");
  b.AddChild(food, "Bakery");
  const CategoryId dessert = b.AddChild(food, "Dessert Shop");
  b.AddChild(dessert, "Cupcake Shop");
  b.AddChild(dessert, "Ice Cream Shop");
  b.AddChild(food, "Cafe");
  b.AddChild(food, "American Restaurant");
  const CategoryId mexican = b.AddChild(food, "Mexican Restaurant");
  b.AddChild(mexican, "Taco Place");

  // 2. Shop & Service
  const CategoryId shop = b.AddRoot("Shop & Service");
  b.AddChild(shop, "Gift Shop");
  b.AddChild(shop, "Hobby Shop");
  const CategoryId clothing = b.AddChild(shop, "Clothing Store");
  b.AddChild(clothing, "Men's Store");
  b.AddChild(clothing, "Women's Store");
  b.AddChild(shop, "Bookstore");
  b.AddChild(shop, "Electronics Store");
  b.AddChild(shop, "Convenience Store");

  // 3. Arts & Entertainment
  const CategoryId arts = b.AddRoot("Arts & Entertainment");
  const CategoryId museum = b.AddChild(arts, "Museum");
  b.AddChild(museum, "Art Museum");
  b.AddChild(museum, "History Museum");
  b.AddChild(museum, "Science Museum");
  const CategoryId music = b.AddChild(arts, "Music Venue");
  b.AddChild(music, "Jazz Club");
  b.AddChild(music, "Rock Club");
  b.AddChild(arts, "Theater");
  b.AddChild(arts, "Movie Theater");
  b.AddChild(arts, "Art Gallery");

  // 4. Nightlife Spot
  const CategoryId nightlife = b.AddRoot("Nightlife Spot");
  const CategoryId bar = b.AddChild(nightlife, "Bar");
  b.AddChild(bar, "Beer Garden");
  b.AddChild(bar, "Sake Bar");
  b.AddChild(bar, "Wine Bar");
  b.AddChild(bar, "Pub");
  b.AddChild(nightlife, "Nightclub");
  b.AddChild(nightlife, "Lounge");

  // 5. Outdoors & Recreation
  const CategoryId outdoors = b.AddRoot("Outdoors & Recreation");
  const CategoryId park = b.AddChild(outdoors, "Park");
  b.AddChild(park, "Playground");
  b.AddChild(park, "Dog Run");
  const CategoryId gym = b.AddChild(outdoors, "Gym / Fitness Center");
  b.AddChild(gym, "Yoga Studio");
  b.AddChild(outdoors, "Trail");
  b.AddChild(outdoors, "Beach");

  // 6. Travel & Transport
  const CategoryId travel = b.AddRoot("Travel & Transport");
  const CategoryId hotel = b.AddChild(travel, "Hotel");
  b.AddChild(hotel, "Hostel");
  b.AddChild(hotel, "Resort");
  b.AddChild(travel, "Train Station");
  b.AddChild(travel, "Airport");
  b.AddChild(travel, "Bus Stop");

  // 7. College & University
  const CategoryId college = b.AddRoot("College & University");
  b.AddChild(college, "Academic Building");
  b.AddChild(college, "University Library");
  b.AddChild(college, "Student Center");

  // 8. Professional & Other Places
  const CategoryId professional = b.AddRoot("Professional & Other Places");
  b.AddChild(professional, "Office");
  const CategoryId medical = b.AddChild(professional, "Medical Center");
  b.AddChild(medical, "Hospital");
  b.AddChild(medical, "Dentist's Office");
  b.AddChild(professional, "School");

  // 9. Residence
  const CategoryId residence = b.AddRoot("Residence");
  b.AddChild(residence, "Home (private)");
  b.AddChild(residence, "Apartment Building");

  // 10. Event
  const CategoryId event = b.AddRoot("Event");
  b.AddChild(event, "Festival");
  const CategoryId market = b.AddChild(event, "Market");
  b.AddChild(market, "Farmers Market");
  b.AddChild(event, "Parade");

  return BuildOrDie(b);
}

CategoryForest MakeCalLikeForest() { return MakeSyntheticForest(7, 3, 2); }

CategoryForest MakeSyntheticForest(int num_trees, int branching, int levels) {
  SKYSR_CHECK(num_trees > 0);
  SKYSR_CHECK(branching > 0);
  SKYSR_CHECK(levels >= 0);
  CategoryForestBuilder b;
  // Ids are assigned in PREORDER so that the indented text format
  // round-trips with identical ids (important for graph.bin + taxonomy.txt
  // dataset directories).
  const std::function<void(CategoryId, const std::string&, int)> grow =
      [&](CategoryId parent, const std::string& name, int level) {
        if (level >= levels) return;
        for (int c = 0; c < branching; ++c) {
          const std::string child_name = name + "." + std::to_string(c);
          grow(b.AddChild(parent, child_name), child_name, level + 1);
        }
      };
  for (int t = 0; t < num_trees; ++t) {
    const std::string root_name = "T" + std::to_string(t);
    grow(b.AddRoot(root_name), root_name, 0);
  }
  return BuildOrDie(b);
}

CategoryForest MakeRandomForest(const RandomForestParams& params) {
  SKYSR_CHECK(params.num_trees > 0);
  SKYSR_CHECK(params.max_fanout > 0);
  SKYSR_CHECK(params.max_levels >= 0);
  Rng rng(params.seed);
  CategoryForestBuilder b;
  // Preorder ids, as in MakeSyntheticForest, so taxonomy.txt round-trips
  // with identical category ids.
  const std::function<void(CategoryId, const std::string&, int)> grow =
      [&](CategoryId parent, const std::string& name, int level) {
        if (level >= params.max_levels) return;
        // Roots always grow (a forest of bare roots makes every similarity
        // 0 or 1 and exercises nothing); deeper nodes may stop early.
        if (level > 0 && rng.Bernoulli(params.stop_probability)) return;
        const int fanout = static_cast<int>(
            rng.UniformInt(1, params.max_fanout));
        for (int c = 0; c < fanout; ++c) {
          const std::string child_name = name + "." + std::to_string(c);
          grow(b.AddChild(parent, child_name), child_name, level + 1);
        }
      };
  for (int t = 0; t < params.num_trees; ++t) {
    const std::string root_name = "R" + std::to_string(t);
    grow(b.AddRoot(root_name), root_name, 0);
  }
  return BuildOrDie(b);
}

}  // namespace skysr

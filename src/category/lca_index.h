// O(1) lowest-common-ancestor queries via Euler tour + sparse-table RMQ,
// plus O(1) subtree membership via preorder intervals.

#ifndef SKYSR_CATEGORY_LCA_INDEX_H_
#define SKYSR_CATEGORY_LCA_INDEX_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace skysr {

/// LCA/subtree index over a forest given parent pointers. Built once per
/// forest; queries never allocate.
class LcaIndex {
 public:
  LcaIndex() = default;

  /// Builds the index. `parent[c]` is kInvalidCategory for roots; children
  /// must have larger ids than parents is NOT required (explicit child lists
  /// are passed via CSR arrays).
  void Build(std::span<const CategoryId> parent,
             std::span<const int32_t> child_offsets,
             std::span<const CategoryId> children,
             std::span<const CategoryId> roots);

  /// Lowest common ancestor of a and b; both must be in the same tree.
  CategoryId Lca(CategoryId a, CategoryId b) const;

  /// True when `c` lies in the subtree rooted at `root` (inclusive).
  bool InSubtree(CategoryId root, CategoryId c) const {
    const auto r = static_cast<size_t>(root);
    const auto i = static_cast<size_t>(c);
    return tin_[i] >= tin_[r] && tin_[i] <= tout_[r];
  }

 private:
  std::vector<int32_t> tin_, tout_;      // preorder intervals
  std::vector<int32_t> euler_;           // euler tour of category ids
  std::vector<int32_t> euler_depth_;     // depths along the tour
  std::vector<int32_t> first_occ_;       // first occurrence in the tour
  std::vector<std::vector<int32_t>> sparse_;  // RMQ table of tour indices
  std::vector<int32_t> log2_;
};

}  // namespace skysr

#endif  // SKYSR_CATEGORY_LCA_INDEX_H_

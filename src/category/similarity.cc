#include "category/similarity.h"

namespace skysr {

double WuPalmerSimilarity::Similarity(const CategoryForest& forest,
                                      CategoryId query_cat,
                                      CategoryId poi_cat) const {
  const CategoryId lca = forest.Lca(query_cat, poi_cat);
  if (lca == kInvalidCategory) return 0.0;
  const double da = forest.Depth(lca);
  const double dc = forest.Depth(query_cat);
  return 2.0 * da / (dc + da);
}

double SymmetricWuPalmerSimilarity::Similarity(const CategoryForest& forest,
                                               CategoryId query_cat,
                                               CategoryId poi_cat) const {
  const CategoryId lca = forest.Lca(query_cat, poi_cat);
  if (lca == kInvalidCategory) return 0.0;
  const double da = forest.Depth(lca);
  return 2.0 * da /
         (static_cast<double>(forest.Depth(query_cat)) +
          static_cast<double>(forest.Depth(poi_cat)));
}

double PathLengthSimilarity::Similarity(const CategoryForest& forest,
                                        CategoryId query_cat,
                                        CategoryId poi_cat) const {
  const CategoryId lca = forest.Lca(query_cat, poi_cat);
  if (lca == kInvalidCategory) return 0.0;
  const int32_t path = (forest.Depth(query_cat) - forest.Depth(lca)) +
                       (forest.Depth(poi_cat) - forest.Depth(lca));
  return 1.0 / (1.0 + static_cast<double>(path));
}

SimilarityTable::SimilarityTable(const CategoryForest& forest,
                                 const SimilarityFunction& fn,
                                 CategoryId query_cat)
    : query_cat_(query_cat) {
  const auto n = static_cast<size_t>(forest.num_categories());
  sims_.resize(n);
  for (size_t c = 0; c < n; ++c) {
    const double s =
        fn.Similarity(forest, query_cat, static_cast<CategoryId>(c));
    sims_[c] = s;
    if (s < 1.0 && s > max_non_perfect_) max_non_perfect_ = s;
  }
}

std::shared_ptr<const SimilarityFunction> DefaultSimilarity() {
  static const auto kInstance = std::make_shared<WuPalmerSimilarity>();
  return kInstance;
}

}  // namespace skysr

// Ready-made category forests.
//
// The paper evaluates on the Foursquare category hierarchy (10 trees) for
// Tokyo/NYC and, for the Cal dataset (63 flat categories), on synthetic
// trees "of height three where a non-leaf node has three child nodes"
// (footnote 5). These factories reproduce both shapes; Foursquare data
// itself is not redistributable, so the Foursquare-like forest encodes a
// realistic hand-curated subset including every category featured in the
// paper's examples (Tables 1 and 9).

#ifndef SKYSR_CATEGORY_TAXONOMY_FACTORY_H_
#define SKYSR_CATEGORY_TAXONOMY_FACTORY_H_

#include <cstdint>

#include "category/category_forest.h"

namespace skysr {

/// A 10-tree Foursquare-like forest (Food, Shop & Service,
/// Arts & Entertainment, Nightlife Spot, ...). Contains the categories used
/// in the paper's running examples: Asian/Italian Restaurant, Gift Shop,
/// Hobby Shop, Cupcake/Dessert Shop, Art Museum, Jazz Club, Beer Garden,
/// Sushi Restaurant, Sake Bar, Hotel, etc.
CategoryForest MakeFoursquareLikeForest();

/// Cal-style synthetic forest: 7 trees, branching factor 3, height 3
/// (7 roots, 21 mid nodes, 63 leaves) — the 63 leaves model the Cal
/// dataset's 63 categories.
CategoryForest MakeCalLikeForest();

/// Fully synthetic forest with `num_trees` trees, uniform branching
/// `branching` and `levels` levels below each root (levels = 0 gives
/// root-only trees). Node names are "T<i>", "T<i>.<j>", ...
CategoryForest MakeSyntheticForest(int num_trees, int branching, int levels);

/// Shape parameters for randomized taxonomy families (the scenario
/// generator's counterpart to the fixed synthetic forests above).
struct RandomForestParams {
  int num_trees = 3;
  /// Children of an internal node are drawn uniformly from [1, max_fanout].
  int max_fanout = 3;
  /// Maximum levels below each root (0 gives root-only trees).
  int max_levels = 3;
  /// Probability that a non-root node stops growing before max_levels,
  /// yielding ragged trees of varying depth.
  double stop_probability = 0.25;
  uint64_t seed = 1;
};

/// Random category forest with ragged depth/fanout, deterministic per seed.
/// Ids are assigned in preorder (text-format round-trip safe) and names are
/// unique across the forest ("R<i>", "R<i>.<j>", ...).
CategoryForest MakeRandomForest(const RandomForestParams& params);

}  // namespace skysr

#endif  // SKYSR_CATEGORY_TAXONOMY_FACTORY_H_

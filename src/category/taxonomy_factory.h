// Ready-made category forests.
//
// The paper evaluates on the Foursquare category hierarchy (10 trees) for
// Tokyo/NYC and, for the Cal dataset (63 flat categories), on synthetic
// trees "of height three where a non-leaf node has three child nodes"
// (footnote 5). These factories reproduce both shapes; Foursquare data
// itself is not redistributable, so the Foursquare-like forest encodes a
// realistic hand-curated subset including every category featured in the
// paper's examples (Tables 1 and 9).

#ifndef SKYSR_CATEGORY_TAXONOMY_FACTORY_H_
#define SKYSR_CATEGORY_TAXONOMY_FACTORY_H_

#include "category/category_forest.h"

namespace skysr {

/// A 10-tree Foursquare-like forest (Food, Shop & Service,
/// Arts & Entertainment, Nightlife Spot, ...). Contains the categories used
/// in the paper's running examples: Asian/Italian Restaurant, Gift Shop,
/// Hobby Shop, Cupcake/Dessert Shop, Art Museum, Jazz Club, Beer Garden,
/// Sushi Restaurant, Sake Bar, Hotel, etc.
CategoryForest MakeFoursquareLikeForest();

/// Cal-style synthetic forest: 7 trees, branching factor 3, height 3
/// (7 roots, 21 mid nodes, 63 leaves) — the 63 leaves model the Cal
/// dataset's 63 categories.
CategoryForest MakeCalLikeForest();

/// Fully synthetic forest with `num_trees` trees, uniform branching
/// `branching` and `levels` levels below each root (levels = 0 gives
/// root-only trees). Node names are "T<i>", "T<i>.<j>", ...
CategoryForest MakeSyntheticForest(int num_trees, int branching, int levels);

}  // namespace skysr

#endif  // SKYSR_CATEGORY_TAXONOMY_FACTORY_H_

#include "category/lca_index.h"

#include <algorithm>

#include "util/logging.h"

namespace skysr {

void LcaIndex::Build(std::span<const CategoryId> parent,
                     std::span<const int32_t> child_offsets,
                     std::span<const CategoryId> children,
                     std::span<const CategoryId> roots) {
  const auto n = static_cast<size_t>(parent.size());
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  first_occ_.assign(n, -1);
  euler_.clear();
  euler_depth_.clear();
  euler_.reserve(2 * n);
  euler_depth_.reserve(2 * n);

  // Iterative DFS per tree producing the Euler tour and preorder intervals.
  int32_t timer = 0;
  struct Frame {
    CategoryId node;
    size_t child_pos;
    int32_t depth;
  };
  std::vector<Frame> stack;
  for (CategoryId root : roots) {
    stack.push_back(Frame{root, 0, 0});
    tin_[static_cast<size_t>(root)] = timer++;
    first_occ_[static_cast<size_t>(root)] =
        static_cast<int32_t>(euler_.size());
    euler_.push_back(root);
    euler_depth_.push_back(0);
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto begin = static_cast<size_t>(child_offsets[f.node]);
      const auto end = static_cast<size_t>(child_offsets[f.node + 1]);
      if (f.child_pos < end - begin) {
        const CategoryId child = children[begin + f.child_pos++];
        tin_[static_cast<size_t>(child)] = timer++;
        first_occ_[static_cast<size_t>(child)] =
            static_cast<int32_t>(euler_.size());
        euler_.push_back(child);
        euler_depth_.push_back(f.depth + 1);
        stack.push_back(Frame{child, 0, f.depth + 1});
      } else {
        tout_[static_cast<size_t>(f.node)] = timer - 1;
        const int32_t d = f.depth;
        stack.pop_back();
        if (!stack.empty()) {
          euler_.push_back(stack.back().node);
          euler_depth_.push_back(d - 1);
        }
      }
    }
  }

  // Sparse table over euler_depth_ storing tour indices of minima.
  const auto m = euler_.size();
  log2_.assign(m + 1, 0);
  for (size_t i = 2; i <= m; ++i) {
    log2_[i] = log2_[i / 2] + 1;
  }
  const int levels = m > 0 ? log2_[m] + 1 : 1;
  sparse_.assign(static_cast<size_t>(levels), {});
  sparse_[0].resize(m);
  for (size_t i = 0; i < m; ++i) sparse_[0][i] = static_cast<int32_t>(i);
  for (int k = 1; k < levels; ++k) {
    const size_t len = size_t{1} << k;
    if (m + 1 < len) break;
    sparse_[static_cast<size_t>(k)].resize(m - len + 1);
    for (size_t i = 0; i + len <= m; ++i) {
      const int32_t a = sparse_[static_cast<size_t>(k - 1)][i];
      const int32_t b =
          sparse_[static_cast<size_t>(k - 1)][i + len / 2];
      sparse_[static_cast<size_t>(k)][i] =
          euler_depth_[static_cast<size_t>(a)] <=
                  euler_depth_[static_cast<size_t>(b)]
              ? a
              : b;
    }
  }
}

CategoryId LcaIndex::Lca(CategoryId a, CategoryId b) const {
  int32_t i = first_occ_[static_cast<size_t>(a)];
  int32_t j = first_occ_[static_cast<size_t>(b)];
  SKYSR_DCHECK(i >= 0 && j >= 0);
  if (i > j) std::swap(i, j);
  const int32_t len = j - i + 1;
  const int k = log2_[static_cast<size_t>(len)];
  const int32_t x = sparse_[static_cast<size_t>(k)][static_cast<size_t>(i)];
  const int32_t y = sparse_[static_cast<size_t>(k)]
                           [static_cast<size_t>(j - (1 << k) + 1)];
  const int32_t best = euler_depth_[static_cast<size_t>(x)] <=
                               euler_depth_[static_cast<size_t>(y)]
                           ? x
                           : y;
  return euler_[static_cast<size_t>(best)];
}

}  // namespace skysr

#include "category/text_format.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace skysr {

std::string ForestToText(const CategoryForest& forest) {
  std::string out;
  struct Frame {
    CategoryId id;
    int depth;
  };
  std::vector<Frame> stack;
  for (TreeId t = 0; t < forest.num_trees(); ++t) {
    stack.push_back(Frame{forest.RootOf(t), 0});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      out.append(static_cast<size_t>(f.depth) * 2, ' ');
      out += forest.Name(f.id);
      out += '\n';
      const auto kids = forest.Children(f.id);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(Frame{*it, f.depth + 1});
      }
    }
  }
  return out;
}

Result<CategoryForest> ForestFromText(const std::string& text) {
  CategoryForestBuilder builder;
  std::istringstream in(text);
  std::string line;
  std::vector<CategoryId> ancestry;  // ancestry[d] = last node at depth d
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    if (indent % 2 != 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": odd indentation");
    }
    const size_t depth = indent / 2;
    if (depth > ancestry.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": indentation jumps a level");
    }
    CategoryId id;
    if (depth == 0) {
      id = builder.AddRoot(std::string(trimmed));
    } else {
      id = builder.AddChild(ancestry[depth - 1], std::string(trimmed));
    }
    ancestry.resize(depth);
    ancestry.push_back(id);
  }
  return builder.Build();
}

Result<CategoryForest> LoadForestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ForestFromText(buf.str());
}

}  // namespace skysr

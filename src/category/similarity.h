// Category similarity (Definition 3.3 / Eq. (6)) and semantic-score
// aggregation (Eq. (7)).
//
// The paper's Eq. (6) maximizes a Wu–Palmer-style score over the ancestors of
// the PoI category; it simplifies algebraically (see DESIGN.md) to
//
//     sim(c, c') = 2·d(A) / (d(c) + d(A)),   A = LCA(c, c'),
//
// where c is the QUERY category — the function is intentionally asymmetric,
// and any c' in subtree(c) is a perfect match (a Sushi Restaurant *is* a
// Japanese Restaurant). Similarities must obey the Definition 3.3 axioms:
//   * different trees            -> sim = 0
//   * same tree                  -> 0 < sim <= 1
//   * c' == c (or subsumed by c) -> sim = 1 for the Eq. (6) family
// BSSR is exact for any similarity obeying the axioms; the super-sequence
// naive baseline is additionally exact only for LCA-determined similarities
// like Eq. (6) (again, see DESIGN.md).

#ifndef SKYSR_CATEGORY_SIMILARITY_H_
#define SKYSR_CATEGORY_SIMILARITY_H_

#include <memory>
#include <string>
#include <vector>

#include "category/category_forest.h"
#include "graph/types.h"

namespace skysr {

/// Pluggable category similarity.
class SimilarityFunction {
 public:
  virtual ~SimilarityFunction() = default;
  /// Similarity of PoI category `poi_cat` to query category `query_cat`,
  /// in [0, 1]; 0 when the categories live in different trees.
  virtual double Similarity(const CategoryForest& forest, CategoryId query_cat,
                            CategoryId poi_cat) const = 0;
  virtual std::string name() const = 0;
};

/// Eq. (6): 2·d(LCA) / (d(query) + d(LCA)); the paper's default.
class WuPalmerSimilarity final : public SimilarityFunction {
 public:
  double Similarity(const CategoryForest& forest, CategoryId query_cat,
                    CategoryId poi_cat) const override;
  std::string name() const override { return "wu-palmer-eq6"; }
};

/// Classic symmetric Wu–Palmer: 2·d(LCA) / (d(c) + d(c')).
class SymmetricWuPalmerSimilarity final : public SimilarityFunction {
 public:
  double Similarity(const CategoryForest& forest, CategoryId query_cat,
                    CategoryId poi_cat) const override;
  std::string name() const override { return "wu-palmer-symmetric"; }
};

/// Path-length similarity: 1 / (1 + edges on the tree path c..c').
class PathLengthSimilarity final : public SimilarityFunction {
 public:
  double Similarity(const CategoryForest& forest, CategoryId query_cat,
                    CategoryId poi_cat) const override;
  std::string name() const override { return "path-length"; }
};

/// Semantic-score aggregation over per-position similarities h_1..h_k.
/// Partial routes carry an accumulator; the score of a (possibly partial)
/// route is Score(acc), the optimistic value assuming all remaining
/// similarities are 1 — exactly the paper's "possible minimum semantic
/// score". Both choices satisfy: Extend is monotone non-increasing in the
/// accumulator, Score is non-increasing in acc, acc=Identity => score 0.
enum class SemanticAggregation {
  /// Eq. (7): s = 1 - Π h_i (the paper's default).
  kProduct,
  /// s = 1 - min_i h_i (worst deviation only).
  kMinSimilarity,
};

/// Stateless helper implementing the aggregation algebra.
class SemanticAggregator {
 public:
  explicit SemanticAggregator(
      SemanticAggregation mode = SemanticAggregation::kProduct)
      : mode_(mode) {}

  SemanticAggregation mode() const { return mode_; }

  /// Accumulator of the empty route.
  double Identity() const { return 1.0; }

  /// Accumulator after appending a position with similarity `h`.
  double Extend(double acc, double h) const {
    return mode_ == SemanticAggregation::kProduct ? acc * h
                                                  : (h < acc ? h : acc);
  }

  /// Semantic score of a route with accumulator `acc`.
  double Score(double acc) const { return 1.0 - acc; }

  /// Lower bound on the semantic-score increase if at least one future
  /// position matches non-perfectly, given that the best possible non-perfect
  /// similarity among remaining positions is `sigma_max` (< 1). This is the
  /// paper's δ of Lemma 5.8. Always >= 0; 0 is a valid (vacuous) bound.
  double MinIncrementDelta(double acc, double sigma_max) const {
    if (mode_ == SemanticAggregation::kProduct) {
      // score jumps from 1-acc to at least 1-acc*sigma_max.
      return acc * (1.0 - sigma_max);
    }
    // min-mode: if sigma_max >= acc the min may not change at all.
    const double delta = (1.0 - sigma_max) - (1.0 - acc);
    return delta > 0 ? delta : 0.0;
  }

 private:
  SemanticAggregation mode_;
};

/// Per-query-position dense similarity table: sim(query_cat, c') for every
/// category c' in the forest, so PoI checks during graph traversal are O(#
/// categories of the PoI). Also exposes the largest strictly-non-perfect
/// similarity (used for δ).
class SimilarityTable {
 public:
  SimilarityTable(const CategoryForest& forest, const SimilarityFunction& fn,
                  CategoryId query_cat);

  double SimOf(CategoryId poi_cat) const {
    return sims_[static_cast<size_t>(poi_cat)];
  }
  CategoryId query_category() const { return query_cat_; }
  /// max { sim(c, c') : sim(c, c') < 1 }, or 0 when every category either
  /// matches perfectly or not at all.
  double max_non_perfect_sim() const { return max_non_perfect_; }

 private:
  CategoryId query_cat_;
  std::vector<double> sims_;
  double max_non_perfect_ = 0.0;
};

/// Returns the library default similarity (Eq. (6) Wu–Palmer).
std::shared_ptr<const SimilarityFunction> DefaultSimilarity();

}  // namespace skysr

#endif  // SKYSR_CATEGORY_SIMILARITY_H_

// The semantic hierarchy: a forest of category trees (Figure 2 of the paper).
//
// Every category belongs to exactly one tree; a PoI associated with category
// c is implicitly associated with all ancestors of c. Depth is 1 at roots
// (Wu–Palmer needs positive root depth so that intra-tree similarities are
// positive). The forest is immutable; construct it via CategoryForestBuilder.

#ifndef SKYSR_CATEGORY_CATEGORY_FOREST_H_
#define SKYSR_CATEGORY_CATEGORY_FOREST_H_

#include <span>
#include <string>
#include <vector>

#include "category/lca_index.h"
#include "graph/types.h"
#include "util/logging.h"
#include "util/status.h"

namespace skysr {

/// Immutable category forest with O(1) LCA and subtree tests.
class CategoryForest {
 public:
  CategoryForest() = default;

  int64_t num_categories() const {
    return static_cast<int64_t>(parent_.size());
  }
  int64_t num_trees() const { return static_cast<int64_t>(roots_.size()); }

  /// Parent category; kInvalidCategory for roots.
  CategoryId Parent(CategoryId c) const {
    return parent_[static_cast<size_t>(c)];
  }
  /// Depth of the category; roots have depth 1.
  int32_t Depth(CategoryId c) const { return depth_[static_cast<size_t>(c)]; }
  /// Tree that the category belongs to.
  TreeId TreeOf(CategoryId c) const { return tree_[static_cast<size_t>(c)]; }
  /// Root category of a tree.
  CategoryId RootOf(TreeId t) const { return roots_[static_cast<size_t>(t)]; }
  const std::string& Name(CategoryId c) const {
    return names_[static_cast<size_t>(c)];
  }

  /// Direct children of `c`.
  std::span<const CategoryId> Children(CategoryId c) const {
    const auto b = static_cast<size_t>(child_offsets_[c]);
    const auto e = static_cast<size_t>(child_offsets_[c + 1]);
    return {children_.data() + b, e - b};
  }
  bool IsLeaf(CategoryId c) const { return Children(c).empty(); }

  /// All leaves of tree `t` in preorder.
  std::vector<CategoryId> LeavesOfTree(TreeId t) const;

  /// True when `ancestor` is `c` or a proper ancestor of `c`.
  bool IsAncestorOrSelf(CategoryId ancestor, CategoryId c) const {
    if (TreeOf(ancestor) != TreeOf(c)) return false;
    return lca_.InSubtree(ancestor, c);
  }

  /// Deepest common ancestor of `a` and `b`, or kInvalidCategory when they
  /// live in different trees.
  CategoryId Lca(CategoryId a, CategoryId b) const {
    if (TreeOf(a) != TreeOf(b)) return kInvalidCategory;
    return lca_.Lca(a, b);
  }

  /// Ancestors of `c` from `c` itself up to the root (the paper's a(c)).
  std::vector<CategoryId> AncestorsOrSelf(CategoryId c) const;

  /// First category with the given name, or kInvalidCategory.
  CategoryId FindByName(std::string_view name) const;

  /// Validates a category id (useful at API boundaries).
  bool Valid(CategoryId c) const { return c >= 0 && c < num_categories(); }

 private:
  friend class CategoryForestBuilder;

  std::vector<CategoryId> parent_;
  std::vector<int32_t> depth_;
  std::vector<TreeId> tree_;
  std::vector<std::string> names_;
  std::vector<CategoryId> roots_;
  std::vector<int32_t> child_offsets_;  // CSR over children
  std::vector<CategoryId> children_;
  LcaIndex lca_;
};

/// Builder for CategoryForest. Ids are assigned in insertion order.
class CategoryForestBuilder {
 public:
  /// Adds the root of a new tree.
  CategoryId AddRoot(std::string name);
  /// Adds a child of an existing category.
  CategoryId AddChild(CategoryId parent, std::string name);

  int64_t num_categories() const {
    return static_cast<int64_t>(parent_.size());
  }

  /// Validates and assembles the immutable forest.
  Result<CategoryForest> Build() const;

 private:
  std::vector<CategoryId> parent_;
  std::vector<std::string> names_;
};

}  // namespace skysr

#endif  // SKYSR_CATEGORY_CATEGORY_FOREST_H_

// BSSR — the bulk SkySR algorithm (§5): a single interleaved traversal that
// discovers all skyline sequenced routes, pruning with branch-and-bound
// (Lemmas 5.1-5.3, 5.5, 5.8) and accelerated by the four optimizations of
// §5.3 (NNinit, queue arrangement, minimum-distance lower bounds, on-the-fly
// caching), each individually toggleable through QueryOptions.
//
// Usage:
//   BssrEngine engine(graph, forest);
//   auto result = engine.Run(MakeSimpleQuery(start, {cafe, museum, bar}));
//   for (const Route& r : result->routes) ...
//
// The engine is cheap to construct and reusable across queries; it owns a
// QueryWorkspace (skyline, arena, queue, cache, every sub-search scratch),
// so in steady state a query allocates only its returned routes plus O(k)
// matcher tables. Results are bit-identical whether the engine is fresh or
// has served a million queries. Use one engine per thread.

#ifndef SKYSR_CORE_BSSR_ENGINE_H_
#define SKYSR_CORE_BSSR_ENGINE_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "cache/shared_query_cache.h"
#include "category/category_forest.h"
#include "core/dest_tails.h"
#include "core/query.h"
#include "core/query_workspace.h"
#include "core/route.h"
#include "core/search_stats.h"
#include "index/distance_oracle.h"
#include "retrieval/category_buckets.h"
#include "util/status.h"

namespace skysr {

class QueryTrace;  // src/obs/query_trace.h

struct QueryExplain;  // src/obs/explain.h

/// Outcome of a SkySR query: the minimal skyline set (sorted by length
/// ascending / semantic descending) plus instrumentation.
struct QueryResult {
  std::vector<Route> routes;
  SearchStats stats;
  /// Decision attribution (src/obs/explain.h); null unless the query ran
  /// with QueryOptions::explain. Shared so slow-query records and
  /// coalesced-follower copies alias one instance instead of deep-copying.
  std::shared_ptr<QueryExplain> explain;
};

/// The SkySR query engine.
class BssrEngine {
 public:
  /// The graph and forest must outlive the engine. `oracle` (optional, must
  /// also outlive the engine and be built over the same graph) accelerates
  /// the pure-distance work — NNinit seeding and the §5.3.3 leg bounds —
  /// through the index layer; a null or flat oracle reproduces the classic
  /// Dijkstra code paths. The oracle is shared and immutable; the engine
  /// owns the per-thread query workspace, preserving the one-engine-per-
  /// thread contract.
  /// `buckets` (optional) attaches the category-bucket tables of the
  /// retrieval subsystem; they must be built over exactly this graph and
  /// this oracle (else they are ignored) and outlive the engine. Shared and
  /// immutable, like the oracle.
  BssrEngine(const Graph& graph, const CategoryForest& forest,
             const DistanceOracle* oracle = nullptr,
             const CategoryBucketIndex* buckets = nullptr);

  /// Executes a SkySR query. Returns InvalidArgument for malformed queries.
  Result<QueryResult> Run(const Query& query,
                          const QueryOptions& options = QueryOptions());

  /// One member of a co-scheduled query group (see RunGroup). Both pointers
  /// are borrowed and must outlive the call.
  struct GroupQuery {
    const Query* query = nullptr;
    const QueryOptions* options = nullptr;
  };

  /// Executes a group of co-scheduled queries — typically sharing one
  /// canonical source (the batching front door groups by `Query::start`) —
  /// with the group's warm state pinned across members instead of re-probed
  /// per query:
  ///
  ///   - one DestTailProvider line per distinct destination, fetched (or
  ///     computed once) up front and held for the whole group, so members
  ///     read the shared table without per-query LRU traffic;
  ///   - the group's first source pinned in the forward-search cache, so
  ///     one FwdSearchCache fill (one bucket upward search) serves every
  ///     member regardless of what the members themselves insert;
  ///   - when no engine-lifetime SharedQueryCache is attached, a transient
  ///     group-scoped cache stands in for the group's duration (invalidated
  ///     at group start, so no state outlives the group). Members that opt
  ///     out via QueryOptions::use_shared_cache still run cold.
  ///
  /// Results are bit-identical to calling Run() on each member in order —
  /// sharing rides entirely on the warm-state bit-identity invariant
  /// (cache/shared_query_cache.h) and the shared-tail invariant
  /// (core/dest_tails.h); only work counters differ.
  std::vector<Result<QueryResult>> RunGroup(
      std::span<const GroupQuery> items);

  /// Optional shared destination-tail provider (see core/dest_tails.h);
  /// null keeps the per-query reverse Dijkstra. The provider must outlive
  /// the engine.
  void SetDestTailProvider(DestTailProvider* provider) {
    dest_tails_ = provider;
  }

  /// Attaches (or detaches, with null) an engine-lifetime cross-query cache
  /// (see cache/shared_query_cache.h). The cache must outlive the engine and
  /// — like the engine itself — is single-threaded: one cache per engine per
  /// thread; cross-worker sharing goes through immutable FwdSnapshots. The
  /// cache is bound to this engine's (graph, oracle) warm-state checksum, so
  /// a cache previously warmed against different structure is invalidated on
  /// attach instead of serving stale state. Attached caches take effect only
  /// for queries with QueryOptions::use_shared_cache set; results are
  /// bit-identical with the cache attached, detached, cold or warm.
  void AttachSharedCache(SharedQueryCache* cache) {
    xcache_ = cache;
    if (xcache_ != nullptr) {
      xcache_->Bind(WarmStateChecksum(*g_, oracle_));
    }
  }

  /// Attaches (or detaches, with null) a borrowed phase tracer (src/obs/).
  /// When attached AND enabled, Run() records phase spans into it and folds
  /// the per-query aggregate delta into SearchStats::phases; otherwise the
  /// cost is one branch per span site and results — including the golden
  /// work counters — are bit-identical. The trace must outlive the engine's
  /// use of it and is single-threaded like the engine. The caller owns the
  /// window: Run() never Clear()s, so one trace can span a whole batch.
  void AttachTrace(QueryTrace* trace) { trace_ = trace; }
  QueryTrace* trace() const { return trace_; }

  const Graph& graph() const { return *g_; }
  const CategoryForest& forest() const { return *forest_; }
  const DistanceOracle* oracle() const { return oracle_; }
  const CategoryBucketIndex* buckets() const { return buckets_; }

 private:
  const Graph* g_;
  const CategoryForest* forest_;
  const DistanceOracle* oracle_;  // may be null (flat behavior)
  const CategoryBucketIndex* buckets_;  // may be null (no bucket backend)
  DestTailProvider* dest_tails_ = nullptr;  // may be null (local tails)
  SharedQueryCache* xcache_ = nullptr;  // may be null (per-query state only)
  QueryTrace* trace_ = nullptr;  // may be null (tracing off, the default)
  bool has_multi_category_poi_ = false;

  // Destination tails D(v, destination): the full-graph reverse Dijkstra
  // shared by Run() and the group prefetch.
  void ComputeDestTails(VertexId destination, std::vector<Weight>* out);

  // Destination queries on directed graphs need D(v, destination) = forward
  // distances in the reversed graph; built once on first use instead of per
  // query.
  std::unique_ptr<const Graph> reversed_;

  // Group-scoped state (RunGroup): tail tables pinned for the group's
  // duration (consulted by Run() before the provider), and the lazily
  // created stand-in cache for engines without an attached SharedQueryCache.
  std::vector<std::pair<VertexId, std::shared_ptr<const std::vector<Weight>>>>
      group_tails_;
  std::unique_ptr<SharedQueryCache> group_cache_;

  // Reusable per-query state (engine is single-threaded by design).
  QueryWorkspace ws_;
};

}  // namespace skysr

#endif  // SKYSR_CORE_BSSR_ENGINE_H_

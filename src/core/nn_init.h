// NNinit (§5.3.1, Algorithm 3): a greedy chain of nearest-neighbor searches
// that seeds the skyline before the bulk search starts. It finds the
// perfect-match route by repeatedly jumping to the nearest PoI that
// perfectly matches the next category; during the LAST hop it additionally
// records every semantically-matching PoI passed on the way, yielding
// several cheap sequenced routes with small lengths.

#ifndef SKYSR_CORE_NN_INIT_H_
#define SKYSR_CORE_NN_INIT_H_

#include <optional>
#include <vector>

#include "core/query.h"
#include "core/search_stats.h"
#include "core/skyline_set.h"
#include "graph/dijkstra.h"
#include "index/distance_oracle.h"
#include "retrieval/bucket_retriever.h"

namespace skysr {

/// Reusable buffers for RunNnInit (chain state plus the oracle-table hop's
/// candidate staging); engine-owned so steady-state queries allocate
/// nothing here.
struct NnInitScratch {
  std::vector<PoiId> route;     // the greedy chain's PoIs so far
  std::vector<PoiId> emit_buf;  // route + last-hop PoI, for skyline updates
  std::vector<VertexId> cand_vertex;
  std::vector<PoiId> cand_poi;
  std::vector<double> cand_sim;
  std::vector<Weight> dist;
  struct Hit {
    Weight dist;
    VertexId vertex;
    size_t idx;
    bool operator<(const Hit& o) const {
      if (dist != o.dist) return dist < o.dist;
      return vertex < o.vertex;
    }
  };
  std::vector<Hit> hits;
};

/// Seeds `skyline` with the routes found by NNinit. `dest_dist` (optional)
/// holds D(v, destination) for every vertex, for the §6 destination variant.
/// Updates the nninit_* fields of `stats` and the global search counters.
///
/// When `oracle` provides a fast many-to-many table (the CH oracle), a hop
/// with a small candidate set is answered by one 1 x candidates distance
/// table instead of a graph Dijkstra; candidates are then replayed in
/// (distance, vertex) order — the Dijkstra settle order — so the seeded
/// routes are bit-identical either way. Dense-candidate hops, a null, flat
/// or ALT oracle keep the classic early-exit Dijkstra chain, which is
/// cheaper there.
/// `oracle_candidate_cap` follows QueryOptions::oracle_candidate_cap
/// (-1 = graph-size heuristic). `scratch` (optional) supplies reusable
/// buffers; null falls back to function-local storage.
///
/// `buckets` + `bucket_scan` (optional, must describe `oracle`) route the
/// table hops through the precomputed category buckets instead of fresh
/// per-candidate backward searches: one forward upward search per cursor —
/// cached in `bucket_scan` for the whole query, so the bulk search that
/// follows reuses it — plus a scan per candidate. Distances are bit-equal
/// to Table()'s, so hits, chain and skyline are unchanged; with buckets on
/// hand the break-even candidate count widens accordingly. `shared`
/// (optional) lets the bucket hops read and warm the engine-lifetime
/// cross-query cache instead of the per-query scan cache.
void RunNnInit(const Graph& g, const std::vector<PositionMatcher>& matchers,
               VertexId start, const SemanticAggregator& agg,
               const std::vector<Weight>* dest_dist, DijkstraWorkspace& ws,
               SkylineSet* skyline, SearchStats* stats,
               const DistanceOracle* oracle = nullptr,
               OracleWorkspace* oracle_ws = nullptr,
               int64_t oracle_candidate_cap = -1,
               NnInitScratch* scratch = nullptr,
               const CategoryBucketIndex* buckets = nullptr,
               BucketScanState* bucket_scan = nullptr,
               SharedQueryCache* shared = nullptr);

}  // namespace skysr

#endif  // SKYSR_CORE_NN_INIT_H_

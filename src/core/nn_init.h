// NNinit (§5.3.1, Algorithm 3): a greedy chain of nearest-neighbor searches
// that seeds the skyline before the bulk search starts. It finds the
// perfect-match route by repeatedly jumping to the nearest PoI that
// perfectly matches the next category; during the LAST hop it additionally
// records every semantically-matching PoI passed on the way, yielding
// several cheap sequenced routes with small lengths.

#ifndef SKYSR_CORE_NN_INIT_H_
#define SKYSR_CORE_NN_INIT_H_

#include <optional>
#include <vector>

#include "core/query.h"
#include "core/search_stats.h"
#include "core/skyline_set.h"
#include "graph/dijkstra.h"

namespace skysr {

/// Seeds `skyline` with the routes found by NNinit. `dest_dist` (optional)
/// holds D(v, destination) for every vertex, for the §6 destination variant.
/// Updates the nninit_* fields of `stats` and the global search counters.
void RunNnInit(const Graph& g, const std::vector<PositionMatcher>& matchers,
               VertexId start, const SemanticAggregator& agg,
               const std::vector<Weight>* dest_dist, DijkstraWorkspace& ws,
               SkylineSet* skyline, SearchStats* stats);

}  // namespace skysr

#endif  // SKYSR_CORE_NN_INIT_H_

#include "core/skyline_set.h"

#include <algorithm>

namespace skysr {

bool SkylineSet::DominatedOrEqual(const RouteScores& s) const {
  // Entries with length <= s.length form a prefix; by the staircase
  // invariant the last of them has the smallest semantic score among them.
  auto it = std::upper_bound(
      routes_.begin(), routes_.end(), s.length,
      [](Weight value, const Route& r) { return value < r.scores.length; });
  if (it == routes_.begin()) return false;
  --it;
  return it->scores.semantic <= s.semantic;
}

Weight SkylineSet::Threshold(double semantic) const {
  // First entry with semantic <= `semantic` (semantic is descending); its
  // length is the smallest among qualifying entries (length ascending).
  auto it = std::lower_bound(routes_.begin(), routes_.end(), semantic,
                             [](const Route& r, double value) {
                               return r.scores.semantic > value;
                             });
  if (it == routes_.end()) return kInfWeight;
  return it->scores.length;
}

std::vector<Route>::iterator SkylineSet::EvictDominated(
    const RouteScores& scores) {
  // Routes dominated by the new one: length >= scores.length (a suffix) and
  // semantic >= scores.semantic (a prefix of that suffix).
  auto first = std::lower_bound(
      routes_.begin(), routes_.end(), scores.length,
      [](const Route& r, Weight value) { return r.scores.length < value; });
  auto last = first;
  while (last != routes_.end() && last->scores.semantic >= scores.semantic) {
    spare_pois_.push_back(std::move(last->pois));
    ++last;
  }
  evictions_ += last - first;
  return routes_.erase(first, last);
}

std::vector<PoiId> SkylineSet::AcquirePois(std::span<const PoiId> pois) {
  if (spare_pois_.empty()) {
    return std::vector<PoiId>(pois.begin(), pois.end());
  }
  std::vector<PoiId> out = std::move(spare_pois_.back());
  spare_pois_.pop_back();
  out.assign(pois.begin(), pois.end());
  return out;
}

bool SkylineSet::Update(RouteScores scores, std::vector<PoiId> pois) {
  if (DominatedOrEqual(scores)) return false;
  auto pos = EvictDominated(scores);
  routes_.insert(pos, Route{std::move(pois), scores});
  ++updates_;
  ++generation_;
  return true;
}

bool SkylineSet::Update(RouteScores scores, std::span<const PoiId> pois) {
  if (DominatedOrEqual(scores)) return false;
  auto pos = EvictDominated(scores);
  routes_.insert(pos, Route{AcquirePois(pois), scores});
  ++updates_;
  ++generation_;
  return true;
}

int64_t SkylineSet::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(routes_.capacity() * sizeof(Route));
  for (const Route& r : routes_) {
    bytes += static_cast<int64_t>(r.pois.capacity() * sizeof(PoiId));
  }
  return bytes;
}

}  // namespace skysr

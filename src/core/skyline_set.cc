#include "core/skyline_set.h"

#include <algorithm>

namespace skysr {

bool SkylineSet::DominatedOrEqual(const RouteScores& s) const {
  // Entries with length <= s.length form a prefix; by the staircase
  // invariant the last of them has the smallest semantic score among them.
  auto it = std::upper_bound(
      routes_.begin(), routes_.end(), s.length,
      [](Weight value, const Route& r) { return value < r.scores.length; });
  if (it == routes_.begin()) return false;
  --it;
  return it->scores.semantic <= s.semantic;
}

Weight SkylineSet::Threshold(double semantic) const {
  // First entry with semantic <= `semantic` (semantic is descending); its
  // length is the smallest among qualifying entries (length ascending).
  auto it = std::lower_bound(routes_.begin(), routes_.end(), semantic,
                             [](const Route& r, double value) {
                               return r.scores.semantic > value;
                             });
  if (it == routes_.end()) return kInfWeight;
  return it->scores.length;
}

bool SkylineSet::Update(RouteScores scores, std::vector<PoiId> pois) {
  if (DominatedOrEqual(scores)) return false;

  // Routes dominated by the new one: length >= scores.length (a suffix) and
  // semantic >= scores.semantic (a prefix of that suffix).
  auto first = std::lower_bound(
      routes_.begin(), routes_.end(), scores.length,
      [](const Route& r, Weight value) { return r.scores.length < value; });
  auto last = first;
  while (last != routes_.end() && last->scores.semantic >= scores.semantic) {
    ++last;
  }
  evictions_ += last - first;
  auto pos = routes_.erase(first, last);
  routes_.insert(pos, Route{std::move(pois), scores});
  ++updates_;
  return true;
}

int64_t SkylineSet::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(routes_.capacity() * sizeof(Route));
  for (const Route& r : routes_) {
    bytes += static_cast<int64_t>(r.pois.capacity() * sizeof(PoiId));
  }
  return bytes;
}

}  // namespace skysr

#include "core/lower_bound.h"

#include <algorithm>

#include "util/timer.h"

namespace skysr {

LowerBounds ComputeLowerBounds(const Graph& g,
                               const std::vector<PositionMatcher>& matchers,
                               VertexId start, Weight radius,
                               SearchStats* stats) {
  WallTimer timer;
  const int k = static_cast<int>(matchers.size());
  LowerBounds lb;
  if (k < 2) {
    lb.ls_leg.clear();
    lb.lp_leg.clear();
    lb.ls_remaining.assign(static_cast<size_t>(k) + 1, 0);
    lb.lp_remaining.assign(static_cast<size_t>(k) + 1, 0);
    if (stats != nullptr) stats->lb_ms = timer.ElapsedMillis();
    return lb;
  }

  // Ball membership: D(v_q, v) < radius. Every leg of a surviving route lies
  // inside the ball (its prefix length bounds the distance from v_q of every
  // point on the route), so restricting everything to the ball keeps the
  // bounds valid for surviving routes.
  DijkstraWorkspace ws;
  DijkstraRunStats ball_stats =
      RunDijkstra(g, start, ws, [&](VertexId, Weight d, VertexId) {
        return d < radius ? VisitAction::kContinue : VisitAction::kStop;
      });
  std::vector<Weight> ball_dist(static_cast<size_t>(g.num_vertices()),
                                kInfWeight);
  // Copy settled distances out of the workspace before it is reused.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (ws.Settled(v)) ball_dist[static_cast<size_t>(v)] = ws.Dist(v);
  }
  const auto in_ball = [&](VertexId v) {
    return ball_dist[static_cast<size_t>(v)] < radius;
  };

  DijkstraRunStats leg_stats;
  lb.ls_leg.assign(static_cast<size_t>(k) - 1, kInfWeight);
  lb.lp_leg.assign(static_cast<size_t>(k) - 1, kInfWeight);
  std::vector<SourceSeed> seeds;
  for (int i = 0; i + 1 < k; ++i) {
    seeds.clear();
    for (PoiId p = 0; p < g.num_pois(); ++p) {
      const VertexId v = g.VertexOfPoi(p);
      if (in_ball(v) && matchers[static_cast<size_t>(i)].SimOfPoi(p) > 0) {
        seeds.push_back(SourceSeed{v, 0});
      }
    }
    if (seeds.empty()) continue;  // leg stays +inf: nothing can cross it

    const PositionMatcher& next = matchers[static_cast<size_t>(i) + 1];
    const auto semantic_target = [&](VertexId v) {
      return in_ball(v) && next.SimOfVertex(v) > 0;
    };
    const auto perfect_target = [&](VertexId v) {
      if (!in_ball(v)) return false;
      const PoiId p = g.PoiAtVertex(v);
      return p != kInvalidPoi && next.IsPerfect(p);
    };
    const auto filter = [&](VertexId v) { return in_ball(v); };

    if (auto hit = MultiSourceNearest(g, seeds, semantic_target, filter,
                                      &leg_stats)) {
      lb.ls_leg[static_cast<size_t>(i)] = hit->dist;
    }
    if (auto hit =
            MultiSourceNearest(g, seeds, perfect_target, filter, &leg_stats)) {
      lb.lp_leg[static_cast<size_t>(i)] = hit->dist;
    }
  }

  // Suffix sums; +inf saturates naturally in IEEE arithmetic.
  lb.ls_remaining.assign(static_cast<size_t>(k) + 1, 0);
  lb.lp_remaining.assign(static_cast<size_t>(k) + 1, 0);
  for (int m = k - 1; m >= 1; --m) {
    // Completing a size-m route still needs legs m-1 .. k-2.
    lb.ls_remaining[static_cast<size_t>(m)] =
        lb.ls_remaining[static_cast<size_t>(m) + 1] +
        lb.ls_leg[static_cast<size_t>(m) - 1];
    lb.lp_remaining[static_cast<size_t>(m)] =
        lb.lp_remaining[static_cast<size_t>(m) + 1] +
        lb.lp_leg[static_cast<size_t>(m) - 1];
  }
  lb.ls_remaining[0] = lb.ls_remaining[1];
  lb.lp_remaining[0] = lb.lp_remaining[1];

  if (stats != nullptr) {
    stats->lb_ms = timer.ElapsedMillis();
    for (Weight w : lb.ls_leg) {
      if (w != kInfWeight) stats->ls_total += w;
    }
    for (Weight w : lb.lp_leg) {
      if (w != kInfWeight) stats->lp_total += w;
    }
    stats->vertices_settled += ball_stats.settled + leg_stats.settled;
    stats->edges_relaxed += ball_stats.relaxed + leg_stats.relaxed;
    stats->weight_sum += ball_stats.weight_sum + leg_stats.weight_sum;
  }
  return lb;
}

}  // namespace skysr

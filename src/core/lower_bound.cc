#include "core/lower_bound.h"

#include <algorithm>

#include "retrieval/bucket_retriever.h"
#include "util/timer.h"

namespace skysr {
namespace {

/// Classic leg bound, shared by both variants: a ball-restricted
/// multi-source Dijkstra from the leg's sources to the nearest semantic /
/// perfect match of `next`. `in_ball` gates targets AND traversal; it is a
/// template parameter so the membership test inlines into the settle loop.
template <typename InBall>
void DenseLegBounds(const Graph& g, const PositionMatcher& next,
                    std::span<const SourceSeed> seeds, const InBall& in_ball,
                    DijkstraWorkspace& ws, DijkstraRunStats* leg_stats,
                    Weight* ls, Weight* lp) {
  const auto semantic_target = [&](VertexId v) {
    return in_ball(v) && next.SimOfVertex(v) > 0;
  };
  const auto perfect_target = [&](VertexId v) {
    if (!in_ball(v)) return false;
    const PoiId p = g.PoiAtVertex(v);
    return p != kInvalidPoi && next.IsPerfect(p);
  };
  if (auto hit = MultiSourceNearestT(g, seeds, ws, semantic_target, in_ball,
                                     leg_stats)) {
    *ls = hit->dist;
  }
  if (auto hit = MultiSourceNearestT(g, seeds, ws, perfect_target, in_ball,
                                     leg_stats)) {
    *lp = hit->dist;
  }
}

/// Shared tail of both variants: suffix sums plus stats accounting.
void FinishBounds(LowerBounds* lb, int k, WallTimer* timer,
                  SearchStats* stats) {
  lb->ls_remaining.assign(static_cast<size_t>(k) + 1, 0);
  lb->lp_remaining.assign(static_cast<size_t>(k) + 1, 0);
  for (int m = k - 1; m >= 1; --m) {
    // Completing a size-m route still needs legs m-1 .. k-2.
    lb->ls_remaining[static_cast<size_t>(m)] =
        lb->ls_remaining[static_cast<size_t>(m) + 1] +
        lb->ls_leg[static_cast<size_t>(m) - 1];
    lb->lp_remaining[static_cast<size_t>(m)] =
        lb->lp_remaining[static_cast<size_t>(m) + 1] +
        lb->lp_leg[static_cast<size_t>(m) - 1];
  }
  lb->ls_remaining[0] = lb->ls_remaining[1];
  lb->lp_remaining[0] = lb->lp_remaining[1];

  if (stats != nullptr) {
    stats->lb_ms = timer->ElapsedMillis();
    for (Weight w : lb->ls_leg) {
      if (w != kInfWeight) stats->ls_total += w;
    }
    for (Weight w : lb->lp_leg) {
      if (w != kInfWeight) stats->lp_total += w;
    }
  }
}

}  // namespace

LowerBounds ComputeLowerBounds(const Graph& g,
                               const std::vector<PositionMatcher>& matchers,
                               VertexId start, Weight radius,
                               SearchStats* stats,
                               LowerBoundScratch* scratch) {
  WallTimer timer;
  const int k = static_cast<int>(matchers.size());
  LowerBounds lb;
  if (k < 2) {
    lb.ls_leg.clear();
    lb.lp_leg.clear();
    lb.ls_remaining.assign(static_cast<size_t>(k) + 1, 0);
    lb.lp_remaining.assign(static_cast<size_t>(k) + 1, 0);
    if (stats != nullptr) stats->lb_ms = timer.ElapsedMillis();
    return lb;
  }
  LowerBoundScratch local;
  if (scratch == nullptr) scratch = &local;

  // Ball membership: D(v_q, v) < radius. Every leg of a surviving route lies
  // inside the ball (its prefix length bounds the distance from v_q of every
  // point on the route), so restricting everything to the ball keeps the
  // bounds valid for surviving routes. Distances are recorded at settle time
  // into the epoch-stamped array — no post-search O(|V|) sweep.
  StampedArray<Weight>& ball_dist = scratch->ball_dist;
  ball_dist.Prepare(g.num_vertices(), kInfWeight);
  DijkstraRunStats ball_stats =
      RunDijkstra(g, start, scratch->ws, [&](VertexId v, Weight d, VertexId) {
        if (d >= radius) return VisitAction::kStop;
        ball_dist.Set(v, d);
        return VisitAction::kContinue;
      });
  const auto in_ball = [&](VertexId v) { return ball_dist.Get(v) < radius; };

  DijkstraRunStats leg_stats;
  lb.ls_leg.assign(static_cast<size_t>(k) - 1, kInfWeight);
  lb.lp_leg.assign(static_cast<size_t>(k) - 1, kInfWeight);
  std::vector<SourceSeed>& seeds = scratch->seeds;
  for (int i = 0; i + 1 < k; ++i) {
    seeds.clear();
    for (PoiId p = 0; p < g.num_pois(); ++p) {
      const VertexId v = g.VertexOfPoi(p);
      if (in_ball(v) && matchers[static_cast<size_t>(i)].SimOfPoi(p) > 0) {
        seeds.push_back(SourceSeed{v, 0});
      }
    }
    if (seeds.empty()) continue;  // leg stays +inf: nothing can cross it

    DenseLegBounds(g, matchers[static_cast<size_t>(i) + 1], seeds, in_ball,
                   scratch->ws, &leg_stats,
                   &lb.ls_leg[static_cast<size_t>(i)],
                   &lb.lp_leg[static_cast<size_t>(i)]);
  }

  // Suffix sums (+inf saturates naturally in IEEE arithmetic) and timing.
  FinishBounds(&lb, k, &timer, stats);
  if (stats != nullptr) {
    stats->vertices_settled += ball_stats.settled + leg_stats.settled;
    stats->edges_relaxed += ball_stats.relaxed + leg_stats.relaxed;
    stats->weight_sum += ball_stats.weight_sum + leg_stats.weight_sum;
  }
  return lb;
}

LowerBounds ComputeLowerBoundsWithOracle(
    const Graph& g, const std::vector<PositionMatcher>& matchers,
    VertexId start, Weight radius, const DistanceOracle& oracle,
    OracleWorkspace& oracle_ws, SearchStats* stats,
    int64_t oracle_candidate_cap, LowerBoundScratch* scratch,
    const BucketRetriever* bucket_server, BucketScanState* bucket_scan,
    SharedQueryCache* shared) {
  WallTimer timer;
  const int k = static_cast<int>(matchers.size());
  LowerBounds lb;
  if (k < 2) {
    lb.ls_remaining.assign(static_cast<size_t>(k) + 1, 0);
    lb.lp_remaining.assign(static_cast<size_t>(k) + 1, 0);
    if (stats != nullptr) stats->lb_ms = timer.ElapsedMillis();
    return lb;
  }
  LowerBoundScratch local;
  if (scratch == nullptr) scratch = &local;
  const bool table_based = oracle.SupportsFastTable();

  // Ball membership D(v_q, v) < radius via one radius-truncated Dijkstra —
  // it settles only the ball, and the flat fallback legs additionally need
  // it as a whole-vertex traversal filter. radius == +inf (no threshold
  // yet) means everything is in the ball and no search is needed.
  DijkstraRunStats ball_stats;
  const bool have_ball = radius != kInfWeight;
  StampedArray<Weight>& ball_dist = scratch->ball_dist;
  if (have_ball) {
    ball_dist.Prepare(g.num_vertices(), kInfWeight);
    ball_stats = RunDijkstra(
        g, start, scratch->ws, [&](VertexId v, Weight d, VertexId) {
          if (d >= radius) return VisitAction::kStop;
          ball_dist.Set(v, d);
          return VisitAction::kContinue;
        });
  }
  const auto in_ball = [&](VertexId v) {
    return !have_ball || ball_dist.Get(v) < radius;
  };

  // Oracle legs pay per endpoint (CH: one upward search of its
  // self-measured ApproxSearchSettles() size) or per pair (ALT: landmark
  // lookups), while the classic alternative — a ball-restricted
  // multi-source Dijkstra — costs one pass over the ball, whose size the
  // truncated search above just measured. So the oracle only gets a leg
  // when its cost undercuts that pass; dense legs (or tiny balls) use the
  // classic search. Every flavor yields valid bounds, so the switch (and
  // the QueryOptions::oracle_candidate_cap override) is purely a matter of
  // speed.
  const auto ball_vertices = static_cast<size_t>(
      have_ball ? ball_stats.settled : g.num_vertices());
  const size_t max_table_endpoints =  // CH: |S| + |T| per leg
      oracle_candidate_cap < 0
          ? ball_vertices /
                (2 * static_cast<size_t>(std::max<int64_t>(
                         1, oracle.ApproxSearchSettles())))
          : static_cast<size_t>(oracle_candidate_cap);
  const size_t max_bound_pairs =  // ALT: |S| * |T| per leg
      oracle_candidate_cap < 0
          ? std::max<size_t>(256, 16 * ball_vertices)
          : static_cast<size_t>(oracle_candidate_cap);

  DijkstraRunStats leg_stats;
  lb.ls_leg.assign(static_cast<size_t>(k) - 1, kInfWeight);
  lb.lp_leg.assign(static_cast<size_t>(k) - 1, kInfWeight);
  std::vector<VertexId>& sources = scratch->sources;
  std::vector<VertexId>& sem_targets = scratch->sem_targets;
  std::vector<VertexId>& perf_targets = scratch->perf_targets;
  std::vector<PoiId>& sem_target_pois = scratch->sem_target_pois;
  std::vector<PoiId>& perf_target_pois = scratch->perf_target_pois;
  std::vector<SourceSeed>& seeds = scratch->seeds;
  std::vector<Weight>& table = scratch->table;
  const bool bucket_legs =
      table_based && bucket_server != nullptr && bucket_scan != nullptr;
  for (int i = 0; i + 1 < k; ++i) {
    sources.clear();
    for (PoiId p = 0; p < g.num_pois(); ++p) {
      if (matchers[static_cast<size_t>(i)].SimOfPoi(p) > 0 &&
          in_ball(g.VertexOfPoi(p))) {
        sources.push_back(g.VertexOfPoi(p));
      }
    }
    if (sources.empty()) continue;  // leg stays +inf: nothing can cross it

    // Gather the target sets only while the leg still qualifies for the
    // oracle — the scan aborts the moment the budget is blown, so dense
    // legs pay (almost) nothing extra over the classic path.
    const PositionMatcher& next = matchers[static_cast<size_t>(i) + 1];
    sem_targets.clear();
    perf_targets.clear();
    sem_target_pois.clear();
    perf_target_pois.clear();
    bool oracle_leg =
        table_based ? sources.size() < max_table_endpoints
                    : sources.size() <= max_bound_pairs;
    const size_t target_budget =
        !oracle_leg ? 0
        : table_based
            ? max_table_endpoints - sources.size()
            : std::max<size_t>(1, max_bound_pairs / sources.size());
    for (PoiId p = 0; oracle_leg && p < g.num_pois(); ++p) {
      const VertexId v = g.VertexOfPoi(p);
      if (!in_ball(v)) continue;
      if (next.SimOfPoi(p) > 0) {
        sem_targets.push_back(v);
        sem_target_pois.push_back(p);
      }
      if (next.IsPerfect(p)) {
        perf_targets.push_back(v);
        perf_target_pois.push_back(p);
      }
      if (table_based
              ? sem_targets.size() + perf_targets.size() > target_budget
              : std::max(sem_targets.size(), perf_targets.size()) >
                    target_budget) {
        oracle_leg = false;
      }
    }

    if (oracle_leg) {
      // CH: exact minima over the in-ball pairs (unrestricted distances,
      // <= the ball-restricted flat values). ALT: pure landmark triangle
      // bounds — no graph search at all.
      const auto min_pair = [&](std::span<const VertexId> targets,
                                std::span<const PoiId> target_pois) -> Weight {
        if (targets.empty()) return kInfWeight;
        Weight best = kInfWeight;
        if (bucket_legs) {
          // Bucket-served leg: the PoIs' backward settles are precomputed,
          // the sources' forward searches come from (and warm) the shared
          // cache. ExactDistanceTo mirrors Table()'s protocol operand for
          // operand, so the minima — and the skyline — are unchanged.
          for (const VertexId s : sources) {
            bucket_server->EnsureForward(s, oracle_ws, *bucket_scan, stats,
                                         shared);
            for (const PoiId p : target_pois) {
              best = std::min(best,
                              bucket_server->ExactDistanceTo(p, *bucket_scan));
            }
          }
        } else if (table_based) {
          table.assign(sources.size() * targets.size(), kInfWeight);
          oracle.Table(sources, targets, oracle_ws, table.data());
          for (const Weight w : table) best = std::min(best, w);
        } else {
          for (const VertexId s : sources) {
            for (const VertexId t : targets) {
              best = std::min(best, oracle.LowerBound(s, t));
            }
          }
        }
        return best;
      };
      lb.ls_leg[static_cast<size_t>(i)] = min_pair(sem_targets,
                                                   sem_target_pois);
      lb.lp_leg[static_cast<size_t>(i)] = min_pair(perf_targets,
                                                   perf_target_pois);
    } else {
      // Dense leg: the classic ball-restricted multi-source search.
      seeds.clear();
      for (const VertexId v : sources) seeds.push_back(SourceSeed{v, 0});
      DenseLegBounds(g, next, seeds, in_ball, scratch->ws, &leg_stats,
                     &lb.ls_leg[static_cast<size_t>(i)],
                     &lb.lp_leg[static_cast<size_t>(i)]);
    }
  }

  FinishBounds(&lb, k, &timer, stats);
  if (stats != nullptr) {
    stats->vertices_settled += ball_stats.settled + leg_stats.settled;
    stats->edges_relaxed += ball_stats.relaxed + leg_stats.relaxed;
    stats->weight_sum += ball_stats.weight_sum + leg_stats.weight_sum;
  }
  return lb;
}

}  // namespace skysr

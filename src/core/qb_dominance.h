// Per-prefix dominance records for the bulk queue Q_b.
//
// Two partial routes that end at the same vertex (hence the same last PoI),
// have the same size and visit the SAME SET of PoIs are permutations of one
// another: any completion of one is a legal completion of the other
// (Definition 3.4(iii) distinctness depends only on the set), the remaining
// legs and position similarities are identical, and the semantic aggregators
// are monotone in the accumulator (similarity.h) while per-leg length
// addition is monotone in IEEE arithmetic. So if route A has
// length <= length(B) and acc >= acc(B), every completion of B is
// dominated-or-equaled by the corresponding completion of A and B can be
// dropped without changing the skyline — bit for bit, because the
// comparisons the skyline performs are on the very sums/products this
// argument is monotone over.
//
// The set-equality restriction is load-bearing: with different PoI sets the
// dominated route's completions may use a PoI the dominator already
// visited, and dropping it would lose skyline routes. Records therefore
// verify full set equality (mask, then a parent-chain walk) before pruning;
// the table key (vertex, size, order-independent set hash) only narrows the
// candidates, it is never trusted.
//
// Same-set duplicates require two orders of the prefix-before-last, so they
// exist only for route size >= 3, and only when a PoI can match more than
// one sequence position (deferred Lemma 5.5 mode) — the engine gates the
// store accordingly and the common fast path never touches it.
//
// Dropping a route whose dominator was itself dropped earlier stays sound:
// domination chains are transitive and finite, ending at a route that was
// actually expanded (or threshold-pruned, which is itself exact), so the
// surviving endpoint's completions cover everything dropped along the chain.

#ifndef SKYSR_CORE_QB_DOMINANCE_H_
#define SKYSR_CORE_QB_DOMINANCE_H_

#include <cstdint>

#include "core/route.h"
#include "graph/types.h"
#include "util/stamped_span_table.h"

namespace skysr {

/// Dominance store keyed by (vertex, route size, PoI-set hash), with up to
/// kRecsPerKey (length, acc) records per key. Cleared per query in O(1) via
/// the span table's epoch stamp; record node indices are only meaningful
/// against the same query's RouteArena.
class QbDominanceStore {
 public:
  static constexpr uint32_t kRecsPerKey = 4;

  struct Rec {
    Weight length;
    double acc;
    int32_t node;  // arena node of the recorded (enqueued) route
  };

  void Clear() { table_.Clear(); }

  /// True when a recorded same-set route dominates-or-equals the candidate
  /// route (parent chain of `parent` plus `poi`, ending at `vertex` with the
  /// given scores). Called before the candidate is added to the arena.
  bool IsDominated(const RouteArena& arena, VertexId vertex, int32_t size,
                   uint64_t set_hash, uint64_t poi_mask, int32_t parent,
                   PoiId poi, Weight length, double acc) const {
    const Table::Entry* e = table_.Find(KeyOf(vertex, size, set_hash));
    if (e == nullptr) return false;
    const auto recs =
        table_.SpanOf(*e).first(static_cast<size_t>(e->meta));
    for (const Rec& r : recs) {
      if (r.length <= length && r.acc >= acc &&
          SameSet(arena, r.node, vertex, size, poi_mask, parent, poi)) {
        return true;
      }
    }
    return false;
  }

  /// Records an enqueued route. Prefers strengthening a same-set record the
  /// new route dominates; otherwise appends while the key has capacity.
  /// Skipping a full key is sound — records are an optional license to
  /// prune, never an obligation.
  void Insert(const RouteArena& arena, int32_t node, VertexId vertex,
              int32_t size, uint64_t set_hash, uint64_t poi_mask,
              int32_t parent, PoiId poi, Weight length, double acc) {
    const uint64_t key = KeyOf(vertex, size, set_hash);
    Table::Entry* e = table_.FindMutable(key);
    if (e == nullptr) {
      auto& pool = table_.pool();
      const size_t offset = pool.size();
      pool.resize(offset + kRecsPerKey);
      pool[offset] = Rec{length, acc, node};
      table_.Commit(key, offset, /*meta=*/1);
      return;
    }
    auto recs = table_.MutableSpanOf(*e);
    for (int32_t i = 0; i < e->meta; ++i) {
      Rec& r = recs[static_cast<size_t>(i)];
      if (length <= r.length && acc >= r.acc &&
          SameSet(arena, r.node, vertex, size, poi_mask, parent, poi)) {
        r = Rec{length, acc, node};
        return;
      }
    }
    if (e->meta < static_cast<int32_t>(kRecsPerKey)) {
      recs[static_cast<size_t>(e->meta)] = Rec{length, acc, node};
      ++e->meta;
    }
  }

  /// True when a STRICTLY dominating same-set record (other than the route
  /// itself) exists for an already-enqueued route about to be expanded.
  /// Strictness keeps equal-score routes from pruning each other cyclically.
  bool DominatedAtDequeue(const RouteArena& arena, int32_t node) const {
    const RouteArena::Node& nd = arena.node(node);
    const Table::Entry* e =
        table_.Find(KeyOf(nd.vertex, nd.size, nd.set_hash));
    if (e == nullptr) return false;
    const auto recs =
        table_.SpanOf(*e).first(static_cast<size_t>(e->meta));
    for (const Rec& r : recs) {
      if (r.node == node) continue;
      if (r.length <= nd.length && r.acc >= nd.acc &&
          (r.length < nd.length || r.acc > nd.acc) &&
          SameSet(arena, r.node, nd.vertex, nd.size, nd.poi_mask, nd.parent,
                  nd.poi)) {
        return true;
      }
    }
    return false;
  }

  int64_t size() const { return table_.size(); }
  int64_t MemoryBytes() const { return table_.MemoryBytes(); }

 private:
  using Table = StampedSpanTable<Rec, int32_t /*live record count*/>;

  static uint64_t KeyOf(VertexId vertex, int32_t size, uint64_t set_hash) {
    return set_hash ^
           ((static_cast<uint64_t>(static_cast<uint32_t>(vertex)) << 8) +
            static_cast<uint64_t>(static_cast<uint32_t>(size)));
  }

  /// Verifies that the recorded route's PoI set equals the candidate set
  /// {parent chain} ∪ {poi}. Equal sizes with all-distinct PoIs per route
  /// mean one-way containment implies equality, so one chain walk suffices.
  static bool SameSet(const RouteArena& arena, int32_t rec_node,
                      VertexId vertex, int32_t size, uint64_t poi_mask,
                      int32_t parent, PoiId poi) {
    const RouteArena::Node& rn = arena.node(rec_node);
    if (rn.vertex != vertex || rn.size != size || rn.poi_mask != poi_mask) {
      return false;
    }
    for (int32_t cur = rec_node; cur != RouteArena::kEmpty;
         cur = arena.node(cur).parent) {
      const PoiId p = arena.node(cur).poi;
      if (p != poi &&
          (parent == RouteArena::kEmpty || !arena.Contains(parent, p))) {
        return false;
      }
    }
    return true;
  }

  Table table_;
};

}  // namespace skysr

#endif  // SKYSR_CORE_QB_DOMINANCE_H_

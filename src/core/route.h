// Routes, route scores, dominance (Definition 4.1) and the route arena that
// backs BSSR's priority queue.

#ifndef SKYSR_CORE_ROUTE_H_
#define SKYSR_CORE_ROUTE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/logging.h"
#include "util/rng.h"

namespace skysr {

/// The two scores of Definition 3.5. Smaller is better for both.
struct RouteScores {
  Weight length = 0;
  double semantic = 0;
};

/// Strict dominance (Definition 4.1): better in one score, not worse in the
/// other.
inline bool Dominates(const RouteScores& a, const RouteScores& b) {
  return (a.length < b.length && a.semantic <= b.semantic) ||
         (a.semantic < b.semantic && a.length <= b.length);
}

/// Equal in both scores.
inline bool Equivalent(const RouteScores& a, const RouteScores& b) {
  return a.length == b.length && a.semantic == b.semantic;
}

inline bool DominatesOrEquals(const RouteScores& a, const RouteScores& b) {
  return a.length <= b.length && a.semantic <= b.semantic;
}

/// A complete sequenced route: the PoIs visited in order plus its scores.
struct Route {
  std::vector<PoiId> pois;
  RouteScores scores;
};

/// Renders "A -> B -> C  (length=…, semantic=…)" using PoI names when the
/// graph has them, ids otherwise.
std::string RouteToString(const Graph& g, const Route& route);

/// Arena of immutable partial-route nodes linked by parent pointers.
///
/// BSSR's queue holds hundreds of thousands of partial routes that share
/// prefixes; storing each as a vector would duplicate them. A node appends
/// one PoI to a parent route and caches the cumulative length, the semantic
/// accumulator and the size, so score queries are O(1) and materialization is
/// O(size).
class RouteArena {
 public:
  /// Index of the empty route.
  static constexpr int32_t kEmpty = -1;

  struct Node {
    int32_t parent;   // kEmpty for size-1 routes
    PoiId poi;
    VertexId vertex;  // vertex hosting `poi`
    Weight length;    // cumulative length score
    double acc;       // semantic accumulator (see SemanticAggregator)
    int32_t size;     // number of PoIs in this partial route
    // Bloom-style signature of the route's PoI set (one bit per PoI id mod
    // 64, OR of the parent's): a zero AND answers Contains() without the
    // parent-chain walk; only hash collisions pay the walk.
    uint64_t poi_mask;
    // Order-independent full-width hash of the route's PoI set (XOR of
    // per-PoI SplitMix64 values): routes visiting the same PoIs in a
    // different order share it, which keys the Q_b dominance store.
    uint64_t set_hash;
  };

  static uint64_t PoiBit(PoiId poi) {
    return uint64_t{1} << (static_cast<uint32_t>(poi) & 63u);
  }

  /// SplitMix64 of the PoI id; XORed into Node::set_hash per route member.
  static uint64_t PoiSetHash(PoiId poi) {
    uint64_t s = static_cast<uint64_t>(static_cast<uint32_t>(poi));
    return SplitMix64(s);
  }

  /// Appends `poi` to the route `parent` (kEmpty to start a new route).
  int32_t Add(int32_t parent, PoiId poi, VertexId vertex, Weight length,
              double acc) {
    int32_t size = 1;
    uint64_t mask = PoiBit(poi);
    uint64_t set_hash = PoiSetHash(poi);
    if (parent != kEmpty) {
      const Node& p = nodes_[static_cast<size_t>(parent)];
      size = p.size + 1;
      mask |= p.poi_mask;
      set_hash ^= p.set_hash;
    }
    nodes_.push_back(
        Node{parent, poi, vertex, length, acc, size, mask, set_hash});
    return static_cast<int32_t>(nodes_.size()) - 1;
  }

  const Node& node(int32_t idx) const {
    SKYSR_DCHECK(idx >= 0 && idx < static_cast<int32_t>(nodes_.size()));
    return nodes_[static_cast<size_t>(idx)];
  }

  int32_t SizeOf(int32_t idx) const {
    return idx == kEmpty ? 0 : node(idx).size;
  }

  /// True when `poi` already occurs in the partial route (Definition 3.4
  /// requires all route PoIs to be distinct).
  bool Contains(int32_t idx, PoiId poi) const {
    if (idx == kEmpty) return false;
    if ((nodes_[static_cast<size_t>(idx)].poi_mask & PoiBit(poi)) == 0) {
      return false;  // signature miss: definitely absent
    }
    for (int32_t cur = idx; cur != kEmpty;
         cur = nodes_[static_cast<size_t>(cur)].parent) {
      if (nodes_[static_cast<size_t>(cur)].poi == poi) return true;
    }
    return false;
  }

  /// The PoI sequence of the partial route, in visit order.
  std::vector<PoiId> Materialize(int32_t idx) const;

  /// Materializes into a caller-owned buffer (cleared first) so hot loops
  /// reuse one allocation across routes.
  void MaterializeInto(int32_t idx, std::vector<PoiId>* out) const;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(nodes_.capacity() * sizeof(Node));
  }
  void Clear() { nodes_.clear(); }

 private:
  std::vector<Node> nodes_;
};

}  // namespace skysr

#endif  // SKYSR_CORE_ROUTE_H_

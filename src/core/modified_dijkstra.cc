#include "core/modified_dijkstra.h"

namespace skysr {

CandidateList RunExpansion(
    const Graph& g, const PositionMatcher& matcher, VertexId source,
    const std::function<Weight()>& budget_fn, bool apply_lemma55,
    ExpansionScratch& scratch,
    const std::function<void(const ExpansionCandidate&)>& on_candidate,
    DijkstraRunStats* stats_out) {
  CandidateList out;
  Weight break_dist = kInfWeight;
  bool stopped = false;

  // Per-vertex Lemma 5.5 state: the maximum similarity of any
  // semantically-matching PoI on the path from `source` (source excluded,
  // the vertex itself included). A candidate consults its PARENT's state,
  // which excludes the candidate itself.
  if (apply_lemma55) {
    scratch.max_sim_on_path.Prepare(g.num_vertices(), 0.0);
  }

  DijkstraRunStats stats = RunDijkstra(
      g, source, scratch.ws, [&](VertexId v, Weight d, VertexId parent) {
        // Lemma 5.3: distances are non-decreasing and the budget is
        // non-increasing, so the first settle past the budget ends the
        // search.
        const Weight budget = budget_fn();
        if (d >= budget) {
          break_dist = d;
          stopped = true;
          return VisitAction::kStop;
        }

        // The source itself may host a matching PoI (e.g. a query starting
        // at a PoI vertex); route-membership filtering is the consumer's
        // job, so no special-case here.
        const double sim = matcher.SimOfVertex(v);

        if (!apply_lemma55) {
          if (sim > 0) {
            const ExpansionCandidate cand{v, d, sim};
            out.candidates.push_back(cand);
            on_candidate(cand);
          }
          return VisitAction::kContinue;
        }

        double inherited = 0.0;
        if (parent != kInvalidVertex) {
          inherited = scratch.max_sim_on_path.Get(parent);
        }
        if (sim > 0 && inherited < sim) {
          // Lemma 5.5(i): emit only candidates not preceded by a
          // better-or-equal match.
          const ExpansionCandidate cand{v, d, sim};
          out.candidates.push_back(cand);
          on_candidate(cand);
        }
        scratch.max_sim_on_path.Set(v, sim > inherited ? sim : inherited);
        // Lemma 5.5(ii): nothing useful lies beyond a perfect match.
        if (sim == 1.0) return VisitAction::kSkipExpand;
        return VisitAction::kContinue;
      });

  out.covered_radius = stopped ? break_dist : kInfWeight;
  out.exhausted = !stopped;
  if (stats_out != nullptr) *stats_out += stats;
  return out;
}

}  // namespace skysr

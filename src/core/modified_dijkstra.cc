#include "core/modified_dijkstra.h"

namespace skysr {

CandidateList RunExpansion(
    const Graph& g, const PositionMatcher& matcher, VertexId source,
    const std::function<Weight()>& budget_fn, bool apply_lemma55,
    ExpansionScratch& scratch,
    const std::function<void(const ExpansionCandidate&)>& on_candidate,
    DijkstraRunStats* stats_out) {
  CandidateList out;
  const ExpansionOutcome outcome = RunExpansionInto(
      g, matcher, source, budget_fn, apply_lemma55, scratch,
      /*out=*/nullptr,
      [&](const ExpansionCandidate& cand) {
        out.candidates.push_back(cand);
        on_candidate(cand);
      },
      stats_out);
  out.covered_radius = outcome.covered_radius;
  out.exhausted = outcome.exhausted;
  return out;
}

}  // namespace skysr

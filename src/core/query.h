// Query model: category predicates per position (§6 "complex category
// requirement"), query options toggling each optimization, and the
// per-position matcher that resolves PoI similarities during traversal.

#ifndef SKYSR_CORE_QUERY_H_
#define SKYSR_CORE_QUERY_H_

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "category/category_forest.h"
#include "category/similarity.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "retrieval/retriever_kind.h"
#include "util/stamped_array.h"
#include "util/status.h"

namespace skysr {

/// What a single sequence position asks for. The plain paper query is a
/// single category (`any_of = {c}`); the §6 extension supports disjunction
/// (several `any_of` entries), conjunction (`all_of`, meaningful for
/// multi-category PoIs) and negation (`none_of`).
struct CategoryPredicate {
  /// The PoI must semantically match at least one of these; its similarity
  /// is the best one achieved. Must be non-empty.
  std::vector<CategoryId> any_of;
  /// The PoI must be associated with every one of these (i.e. have a
  /// category inside each subtree).
  std::vector<CategoryId> all_of;
  /// The PoI must not be associated with any of these.
  std::vector<CategoryId> none_of;

  static CategoryPredicate Single(CategoryId c) {
    CategoryPredicate p;
    p.any_of.push_back(c);
    return p;
  }
};

/// A SkySR query: start vertex, category sequence, optional destination
/// (§6 "SkySR with destination": the distance from the last PoI to the
/// destination is added to the length score).
struct Query {
  VertexId start = kInvalidVertex;
  std::vector<CategoryPredicate> sequence;
  std::optional<VertexId> destination;

  int size() const { return static_cast<int>(sequence.size()); }
};

/// Convenience: a plain single-category-per-position query.
Query MakeSimpleQuery(VertexId start, std::span<const CategoryId> categories);
Query MakeSimpleQuery(VertexId start,
                      std::initializer_list<CategoryId> categories);

/// Order in which BSSR's bulk queue expands partial routes (§5.3.2).
enum class QueueDiscipline {
  /// Size desc, then semantic asc, then length asc — the paper's proposal.
  kProposed,
  /// Plain length asc — the conventional baseline the paper compares with.
  kDistanceBased,
};

/// How a multi-category PoI's similarity is aggregated (§6).
enum class MultiCategoryMode {
  kMaxSimilarity,
  kAverageSimilarity,
};

/// Per-query knobs. Defaults enable every optimization (the configuration
/// the paper calls "BSSR"); switching all four off gives "BSSR w/o Opt".
struct QueryOptions {
  bool use_initial_search = true;   // §5.3.1 NNinit
  bool use_lower_bounds = true;     // §5.3.3 ls / lp minimum distances
  bool use_cache = true;            // §5.3.4 on-the-fly caching
  QueueDiscipline queue_discipline = QueueDiscipline::kProposed;  // §5.3.2
  MultiCategoryMode multi_category = MultiCategoryMode::kMaxSimilarity;
  SemanticAggregation aggregation = SemanticAggregation::kProduct;
  /// Similarity function; null selects the paper's Eq. (6) Wu–Palmer.
  std::shared_ptr<const SimilarityFunction> similarity;
  /// Wall-clock budget; exceeded runs return partial results flagged
  /// timed_out (used to reproduce the paper's "did not finish" bars).
  double time_budget_seconds = std::numeric_limits<double>::infinity();
  /// Index-layer tuning (only meaningful when the engine holds a non-flat
  /// DistanceOracle): largest candidate/endpoint set NNinit hops and
  /// lower-bound legs may answer through the oracle instead of a graph
  /// search. -1 picks a graph-size heuristic (oracle for sparse sets, the
  /// classic searches for dense ones), 0 disables oracle-backed distance
  /// work, a large value forces it everywhere (the differential harness
  /// does this so the oracle paths are always exercised). Every setting is
  /// exact — the knob trades nothing but speed.
  int64_t oracle_candidate_cap = -1;
  /// Which PoI-retrieval backend answers expansion searches (see
  /// src/retrieval/poi_retriever.h). Bucket scans require category-bucket
  /// tables attached to the engine and apply only in deferred-Lemma-5.5
  /// mode; ineligible expansions silently fall back to the classic settle
  /// loop. Like the toggles above, every choice is exact.
  RetrieverKind retriever = RetrieverKind::kAuto;
  /// Opt-out for the engine-lifetime cross-query cache (src/cache/): when an
  /// engine has a SharedQueryCache attached, this query may read and warm it.
  /// Off forces the per-query code paths even on a cache-attached engine.
  /// Results are bit-identical either way — the cache only skips
  /// recomputation of query-independent state — so this knob, like the
  /// others, trades nothing but speed (and is therefore NOT part of the
  /// result-cache key).
  bool use_shared_cache = true;
  /// Per-prefix dominance pruning in the bulk queue Q_b (see
  /// core/qb_dominance.h): partial routes whose (length, acc) is
  /// dominated by an already-enqueued permutation of the same PoI set at
  /// the same (vertex, position) are dropped. Exact — the skyline is
  /// bit-identical either way — so, like use_shared_cache, speed-only and
  /// NOT part of the result-cache key.
  bool use_qb_dominance = true;
  /// Diagnostics: when set, the engine allocates and fills a QueryExplain
  /// (src/obs/explain.h) attached to the QueryResult — which retrieval
  /// backend the cost model picked, per-layer cache hit/miss/bytes, and the
  /// pruning-attribution split. Off (the default) costs one branch per
  /// attribution site and zero allocations; results are bit-identical
  /// either way, so the flag is NOT part of the result-cache key.
  bool explain = false;
};

/// Resolves one sequence position against PoIs: similarity (0 = no match),
/// perfect-match tests, and the largest non-perfect similarity (δ input).
class PositionMatcher {
 public:
  PositionMatcher(const Graph& g, const CategoryForest& forest,
                  const SimilarityFunction& fn, const CategoryPredicate& pred,
                  MultiCategoryMode mode);

  /// Attaches an epoch-stamped per-PoI memo (owner must Prepare() it for
  /// g.num_pois() slots with default -1 and keep it alive). PoI similarity
  /// is fixed for the matcher's lifetime, so the first evaluation per PoI is
  /// cached; every later lookup — per-settle in the expansion search, the
  /// full-PoI scans of NNinit and the lower bounds — is an array read. The
  /// engine wires its workspace memos here; matchers without one just
  /// evaluate each time.
  void AttachSimCache(StampedArray<double>* cache) { sim_cache_ = cache; }

  /// Similarity of the PoI for this position; 0 when the PoI does not match
  /// (wrong trees, or all_of / none_of constraints violated).
  double SimOfPoi(PoiId p) const {
    if (sim_cache_ == nullptr) return EvalSimOfPoi(p);
    const double cached = sim_cache_->Get(p);
    if (cached >= 0.0) return cached;
    const double sim = EvalSimOfPoi(p);
    sim_cache_->Set(p, sim);
    return sim;
  }

  /// Similarity of the PoI hosted at `v`; 0 for plain road vertices.
  double SimOfVertex(VertexId v) const {
    const PoiId p = g_->PoiAtVertex(v);
    return p == kInvalidPoi ? 0.0 : SimOfPoi(p);
  }

  bool IsPerfect(PoiId p) const { return SimOfPoi(p) == 1.0; }

  /// Largest achievable similarity strictly below 1 (Lemma 5.8's σ).
  /// Conservatively 1.0 in average mode, where mixtures can exceed any
  /// single-category similarity (a δ of 0 is always safe; see DESIGN.md).
  double max_non_perfect_sim() const { return max_non_perfect_; }

  /// The trees reachable by this position's any_of categories (used to
  /// decide whether Lemma 5.5 blocker tracking is required; see DESIGN.md).
  const std::vector<TreeId>& trees() const { return trees_; }

 private:
  /// Uncached predicate evaluation (none_of / all_of walks + table max).
  double EvalSimOfPoi(PoiId p) const;

  const Graph* g_;
  const CategoryForest* forest_;
  MultiCategoryMode mode_;
  std::vector<SimilarityTable> tables_;  // one per any_of category
  std::vector<CategoryId> all_of_;
  std::vector<CategoryId> none_of_;
  std::vector<TreeId> trees_;
  double max_non_perfect_ = 0.0;
  StampedArray<double>* sim_cache_ = nullptr;  // borrowed, may be null
};

/// Validates a query against a graph + forest (ranges, non-empty sequence,
/// non-empty any_of per position).
Status ValidateQuery(const Graph& g, const CategoryForest& forest,
                     const Query& q);

}  // namespace skysr

#endif  // SKYSR_CORE_QUERY_H_

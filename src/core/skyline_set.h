// The minimal set S of sequenced routes (Definitions 4.1/4.2) with the
// threshold queries of Definition 5.4.
//
// Invariant: entries are sorted by length ascending and semantic strictly
// descending (a 2-D skyline staircase), which makes dominance tests and
// threshold lookups O(log |S|) and insertion O(|S|).
//
// The set carries a generation counter that advances exactly when its
// contents change (insertion, eviction, Clear, TakeRoutes). Pruning
// thresholds derived from the skyline are pure functions of the generation,
// so hot loops memoize them per generation instead of recomputing per
// settle/candidate (see ThresholdPolicy and the engine's budget cache).

#ifndef SKYSR_CORE_SKYLINE_SET_H_
#define SKYSR_CORE_SKYLINE_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/route.h"
#include "graph/types.h"

namespace skysr {

/// Maintains the skyline of sequenced routes found so far.
class SkylineSet {
 public:
  /// True when some kept route dominates or equals (l, s) — exactly the
  /// condition under which a new route must NOT enter the minimal set.
  bool DominatedOrEqual(const RouteScores& s) const;

  /// Definition 5.4: min { l(R') : R' in S, s(R') <= semantic }, or
  /// kInfWeight when no such route exists yet.
  Weight Threshold(double semantic) const;

  /// Inserts the route unless dominated-or-equal; evicts routes it
  /// dominates. Returns true when inserted.
  bool Update(RouteScores scores, std::vector<PoiId> pois);

  /// Same, but copies the PoIs out of a caller-owned buffer only when the
  /// route is actually inserted — the allocation-free form for hot loops
  /// that materialize into a reused scratch vector.
  bool Update(RouteScores scores, std::span<const PoiId> pois);

  const std::vector<Route>& routes() const { return routes_; }
  int64_t size() const { return static_cast<int64_t>(routes_.size()); }
  bool empty() const { return routes_.empty(); }
  void Clear() {
    if (!routes_.empty()) ++generation_;
    routes_.clear();
    updates_ = evictions_ = 0;
  }

  /// Moves the routes out (no deep copy), leaving the set empty.
  std::vector<Route> TakeRoutes() {
    if (!routes_.empty()) ++generation_;
    std::vector<Route> out = std::move(routes_);
    routes_.clear();
    return out;
  }

  /// Advances on every content change; never repeats within one SkylineSet.
  uint64_t generation() const { return generation_; }

  int64_t num_updates() const { return updates_; }
  int64_t num_evictions() const { return evictions_; }

  int64_t MemoryBytes() const;

 private:
  /// Shared insertion tail: erases dominated entries (recycling their PoI
  /// storage) and returns the insert position. Only called once
  /// DominatedOrEqual has been ruled out.
  std::vector<Route>::iterator EvictDominated(const RouteScores& scores);

  /// A PoI vector holding `pois`, reusing an evicted route's storage when
  /// one is spare — steady-state skyline churn allocates nothing.
  std::vector<PoiId> AcquirePois(std::span<const PoiId> pois);

  // Sorted by length asc / semantic strictly desc.
  std::vector<Route> routes_;
  std::vector<std::vector<PoiId>> spare_pois_;  // recycled storage
  uint64_t generation_ = 0;
  int64_t updates_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_CORE_SKYLINE_SET_H_

// The minimal set S of sequenced routes (Definitions 4.1/4.2) with the
// threshold queries of Definition 5.4.
//
// Invariant: entries are sorted by length ascending and semantic strictly
// descending (a 2-D skyline staircase), which makes dominance tests and
// threshold lookups O(log |S|) and insertion O(|S|).

#ifndef SKYSR_CORE_SKYLINE_SET_H_
#define SKYSR_CORE_SKYLINE_SET_H_

#include <vector>

#include "core/route.h"
#include "graph/types.h"

namespace skysr {

/// Maintains the skyline of sequenced routes found so far.
class SkylineSet {
 public:
  /// True when some kept route dominates or equals (l, s) — exactly the
  /// condition under which a new route must NOT enter the minimal set.
  bool DominatedOrEqual(const RouteScores& s) const;

  /// Definition 5.4: min { l(R') : R' in S, s(R') <= semantic }, or
  /// kInfWeight when no such route exists yet.
  Weight Threshold(double semantic) const;

  /// Inserts the route unless dominated-or-equal; evicts routes it
  /// dominates. Returns true when inserted.
  bool Update(RouteScores scores, std::vector<PoiId> pois);

  const std::vector<Route>& routes() const { return routes_; }
  int64_t size() const { return static_cast<int64_t>(routes_.size()); }
  bool empty() const { return routes_.empty(); }
  void Clear() {
    routes_.clear();
    updates_ = evictions_ = 0;
  }

  int64_t num_updates() const { return updates_; }
  int64_t num_evictions() const { return evictions_; }

  int64_t MemoryBytes() const;

 private:
  // Sorted by length asc / semantic strictly desc.
  std::vector<Route> routes_;
  int64_t updates_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_CORE_SKYLINE_SET_H_

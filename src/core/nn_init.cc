#include "core/nn_init.h"

#include <algorithm>
#include <cmath>

#include "util/timer.h"

namespace skysr {
namespace {

/// Shared per-hop emission/bookkeeping so the Dijkstra and oracle-table
/// paths update the skyline through literally the same code. Chain state
/// lives in the caller's NnInitScratch so steady-state queries reuse it.
struct NnChain {
  const SemanticAggregator& agg;
  const std::vector<Weight>* dest_dist;
  SkylineSet* skyline;
  SearchStats* stats;

  std::vector<PoiId>& route;
  std::vector<PoiId>& emit_buf;
  Weight length = 0;
  double acc;
  double max_semantic_seen = -1.0;

  NnChain(const SemanticAggregator& agg_in, const std::vector<Weight>* dd,
          SkylineSet* sky, SearchStats* st, int k, NnInitScratch& scratch)
      : agg(agg_in),
        dest_dist(dd),
        skyline(sky),
        stats(st),
        route(scratch.route),
        emit_buf(scratch.emit_buf) {
    route.clear();
    route.reserve(static_cast<size_t>(k));
    acc = agg.Identity();
  }

  /// Last-hop emission (Algorithm 3, lines 9-11): one sequenced route per
  /// semantically matching PoI passed on the way.
  void Emit(VertexId v, PoiId poi, Weight d, double sim) {
    Weight total_len = length + d;
    if (dest_dist != nullptr) {
      const Weight tail = (*dest_dist)[static_cast<size_t>(v)];
      if (tail == kInfWeight) return;
      total_len += tail;
    }
    const double sem = agg.Score(agg.Extend(acc, sim));
    emit_buf.assign(route.begin(), route.end());
    emit_buf.push_back(poi);
    skyline->Update(RouteScores{total_len, sem},
                    std::span<const PoiId>(emit_buf));
    if (stats != nullptr) {
      ++stats->nninit_routes;
      if (sem == 0.0) {
        stats->nninit_perfect_length =
            std::min(stats->nninit_perfect_length, total_len);
      }
      if (sem > max_semantic_seen) {
        max_semantic_seen = sem;
        stats->nninit_max_semantic_length = total_len;
      }
    }
  }

  void Advance(PoiId poi, VertexId vertex, Weight dist) {
    route.push_back(poi);
    length += dist;
    (void)vertex;
  }

  bool Used(PoiId poi) const {
    return std::find(route.begin(), route.end(), poi) != route.end();
  }
};

/// A hop answered by the oracle table pays about one upward search — the
/// oracle's self-measured ApproxSearchSettles() — per candidate PoI, while
/// the early-exit Dijkstra hop pays about |V| / |candidates| settles before
/// hitting the nearest match. Equating the two (with a 2x handicap for the
/// table's bucket bookkeeping) gives the break-even candidate count: the
/// table wins for sparse candidate sets on index-friendly graphs (exactly
/// where the Dijkstra hop degrades to a whole-graph sweep) and is skipped
/// on PoI-dense or expander-like ones. Both hop flavors are bit-identical,
/// so the choice is purely a matter of speed.
size_t AutoTableCap(int64_t num_vertices, int64_t settles_per_endpoint) {
  const double c = static_cast<double>(std::max<int64_t>(
      1, settles_per_endpoint));
  return static_cast<size_t>(
      std::sqrt(static_cast<double>(num_vertices) / (2.0 * c)));
}

/// One classic NNinit hop: an early-terminating Dijkstra from the cursor.
/// Returns the nearest perfect match, emitting semantic matches passed on
/// the way when `last`.
std::optional<NearestHit> NnHopDijkstra(const Graph& g,
                                        const PositionMatcher& matcher,
                                        VertexId cursor, bool last,
                                        DijkstraWorkspace& ws, NnChain& chain,
                                        DijkstraRunStats* total) {
  std::optional<NearestHit> perfect_hit;
  const DijkstraRunStats run = RunDijkstra(
      g, cursor, ws, [&](VertexId v, Weight d, VertexId) {
        const PoiId poi = g.PoiAtVertex(v);
        if (poi == kInvalidPoi || chain.Used(poi)) {
          return VisitAction::kContinue;
        }
        const double sim = matcher.SimOfPoi(poi);
        if (last && sim > 0) chain.Emit(v, poi, d, sim);
        if (sim == 1.0) {
          perfect_hit = NearestHit{v, d};
          return VisitAction::kStop;
        }
        return VisitAction::kContinue;
      });
  *total += run;
  return perfect_hit;
}

/// NNinit with an oracle on hand: each hop picks per candidate count
/// between the Dijkstra hop and one oracle 1 x candidates table. Table
/// candidates are replayed in (distance, vertex) order — exactly the order
/// the Dijkstra hop settles them — and the hop advances to the
/// lexicographically first perfect match, so chain, emissions and skyline
/// updates are bit-identical whichever flavor answers a hop.
void RunNnInitAdaptive(const Graph& g,
                       const std::vector<PositionMatcher>& matchers,
                       VertexId start, const DistanceOracle* oracle,
                       OracleWorkspace* oracle_ws, DijkstraWorkspace& ws,
                       NnChain& chain, SearchStats* stats,
                       int64_t oracle_candidate_cap, NnInitScratch& scratch,
                       const CategoryBucketIndex* buckets,
                       BucketScanState* bucket_scan,
                       SharedQueryCache* shared) {
  const int k = static_cast<int>(matchers.size());
  const bool has_fast_table = oracle != nullptr && oracle_ws != nullptr &&
                              oracle->SupportsFastTable();
  // Precomputed buckets answer a table hop with ONE (per-query-cached)
  // forward search plus a scan per candidate, instead of one backward
  // search per candidate — so the break-even candidate count widens.
  const bool bucket_ready =
      has_fast_table && buckets != nullptr && bucket_scan != nullptr &&
      static_cast<const DistanceOracle*>(&buckets->oracle()) == oracle &&
      &buckets->graph() == &g;
  size_t table_cap =
      !has_fast_table ? 0
      : oracle_candidate_cap < 0
          ? AutoTableCap(g.num_vertices(), oracle->ApproxSearchSettles())
          : static_cast<size_t>(oracle_candidate_cap);
  if (bucket_ready && oracle_candidate_cap < 0) table_cap *= 4;
  const bool table_capable = table_cap > 0 && has_fast_table;
  VertexId cursor = start;
  DijkstraRunStats total;

  std::vector<VertexId>& cand_vertex = scratch.cand_vertex;
  std::vector<PoiId>& cand_poi = scratch.cand_poi;
  std::vector<double>& cand_sim = scratch.cand_sim;
  std::vector<Weight>& dist = scratch.dist;
  std::vector<NnInitScratch::Hit>& hits = scratch.hits;

  for (int i = 0; i < k; ++i) {
    const PositionMatcher& matcher = matchers[static_cast<size_t>(i)];
    const bool last = i == k - 1;

    bool use_table = false;
    if (table_capable) {
      // Candidate PoIs of this hop: perfect matches drive the chain; on
      // the last hop every semantic match can seed a route.
      cand_vertex.clear();
      cand_poi.clear();
      cand_sim.clear();
      use_table = true;
      for (PoiId p = 0; p < g.num_pois(); ++p) {
        if (chain.Used(p)) continue;
        const double sim = matcher.SimOfPoi(p);
        if (last ? sim <= 0 : sim != 1.0) continue;
        if (cand_vertex.size() >= table_cap) {
          use_table = false;  // dense matches: the Dijkstra hop is cheaper
          break;
        }
        cand_vertex.push_back(g.VertexOfPoi(p));
        cand_poi.push_back(p);
        cand_sim.push_back(sim);
      }
    }

    std::optional<NearestHit> perfect_hit;
    PoiId perfect_poi = kInvalidPoi;
    if (!use_table) {
      perfect_hit = NnHopDijkstra(g, matcher, cursor, last, ws, chain,
                                  &total);
      if (perfect_hit) perfect_poi = g.PoiAtVertex(perfect_hit->vertex);
    } else {
      if (cand_vertex.empty()) break;
      dist.assign(cand_vertex.size(), kInfWeight);
      if (bucket_ready) {
        const BucketRetriever retriever(*buckets);
        retriever.EnsureForward(cursor, *oracle_ws, *bucket_scan, stats,
                                shared);
        for (size_t c = 0; c < cand_poi.size(); ++c) {
          dist[c] = retriever.ExactDistanceTo(cand_poi[c], *bucket_scan);
        }
      } else {
        const VertexId src[1] = {cursor};
        oracle->Table(src, cand_vertex, *oracle_ws, dist.data());
      }

      hits.clear();
      for (size_t c = 0; c < cand_vertex.size(); ++c) {
        if (dist[c] != kInfWeight) {
          hits.push_back(NnInitScratch::Hit{dist[c], cand_vertex[c], c});
        }
      }
      std::sort(hits.begin(), hits.end());
      for (const NnInitScratch::Hit& h : hits) {
        if (last) {
          chain.Emit(h.vertex, cand_poi[h.idx], h.dist, cand_sim[h.idx]);
        }
        if (cand_sim[h.idx] == 1.0) {
          perfect_hit = NearestHit{h.vertex, h.dist};
          perfect_poi = cand_poi[h.idx];
          break;  // the Dijkstra hop stops at the first perfect settle
        }
      }
    }

    if (!perfect_hit) break;  // no perfect match reachable: stop the chain
    chain.Advance(perfect_poi, perfect_hit->vertex, perfect_hit->dist);
    cursor = perfect_hit->vertex;
  }

  if (stats != nullptr) {
    stats->nninit_weight_sum = total.weight_sum;
    stats->vertices_settled += total.settled;
    stats->edges_relaxed += total.relaxed;
    stats->weight_sum += total.weight_sum;
  }
}

}  // namespace

void RunNnInit(const Graph& g, const std::vector<PositionMatcher>& matchers,
               VertexId start, const SemanticAggregator& agg,
               const std::vector<Weight>* dest_dist, DijkstraWorkspace& ws,
               SkylineSet* skyline, SearchStats* stats,
               const DistanceOracle* oracle, OracleWorkspace* oracle_ws,
               int64_t oracle_candidate_cap, NnInitScratch* scratch,
               const CategoryBucketIndex* buckets,
               BucketScanState* bucket_scan, SharedQueryCache* shared) {
  WallTimer timer;
  NnInitScratch local;
  if (scratch == nullptr) scratch = &local;
  NnChain chain(agg, dest_dist, skyline, stats,
                static_cast<int>(matchers.size()), *scratch);
  RunNnInitAdaptive(g, matchers, start, oracle, oracle_ws, ws, chain, stats,
                    oracle_candidate_cap, *scratch, buckets, bucket_scan,
                    shared);
  if (stats != nullptr) stats->nninit_ms = timer.ElapsedMillis();
}

}  // namespace skysr

#include "core/nn_init.h"

#include <algorithm>

#include "util/timer.h"

namespace skysr {

void RunNnInit(const Graph& g, const std::vector<PositionMatcher>& matchers,
               VertexId start, const SemanticAggregator& agg,
               const std::vector<Weight>* dest_dist, DijkstraWorkspace& ws,
               SkylineSet* skyline, SearchStats* stats) {
  WallTimer timer;
  const int k = static_cast<int>(matchers.size());
  std::vector<PoiId> route;
  route.reserve(static_cast<size_t>(k));
  VertexId cursor = start;
  Weight length = 0;
  double acc = agg.Identity();  // all prefix matches are perfect (sim = 1)

  DijkstraRunStats total;
  double max_semantic_seen = -1.0;

  for (int i = 0; i < k; ++i) {
    const PositionMatcher& matcher = matchers[static_cast<size_t>(i)];
    const bool last = i == k - 1;
    std::optional<NearestHit> perfect_hit;

    const DijkstraRunStats run = RunDijkstra(
        g, cursor, ws, [&](VertexId v, Weight d, VertexId) {
          const PoiId poi = g.PoiAtVertex(v);
          if (poi == kInvalidPoi ||
              std::find(route.begin(), route.end(), poi) != route.end()) {
            return VisitAction::kContinue;
          }
          const double sim = matcher.SimOfPoi(poi);
          if (last && sim > 0) {
            // Every semantic match passed during the last hop becomes a
            // sequenced route (Algorithm 3, lines 9-11).
            Weight total_len = length + d;
            if (dest_dist != nullptr) {
              const Weight tail = (*dest_dist)[static_cast<size_t>(v)];
              if (tail == kInfWeight) return VisitAction::kContinue;
              total_len += tail;
            }
            const double sem = agg.Score(agg.Extend(acc, sim));
            std::vector<PoiId> pois = route;
            pois.push_back(poi);
            skyline->Update(RouteScores{total_len, sem}, std::move(pois));
            if (stats != nullptr) {
              ++stats->nninit_routes;
              if (sem == 0.0) {
                stats->nninit_perfect_length =
                    std::min(stats->nninit_perfect_length, total_len);
              }
              if (sem > max_semantic_seen) {
                max_semantic_seen = sem;
                stats->nninit_max_semantic_length = total_len;
              }
            }
          }
          if (sim == 1.0) {
            perfect_hit = NearestHit{v, d};
            return VisitAction::kStop;
          }
          return VisitAction::kContinue;
        });
    total += run;

    if (!perfect_hit) break;  // no perfect match reachable: stop the chain
    route.push_back(g.PoiAtVertex(perfect_hit->vertex));
    cursor = perfect_hit->vertex;
    length += perfect_hit->dist;
  }

  if (stats != nullptr) {
    stats->nninit_ms = timer.ElapsedMillis();
    stats->nninit_weight_sum = total.weight_sum;
    stats->vertices_settled += total.settled;
    stats->edges_relaxed += total.relaxed;
    stats->weight_sum += total.weight_sum;
  }
}

}  // namespace skysr

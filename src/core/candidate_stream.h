// Candidate streams in structure-of-arrays form, plus the vectorized block
// scan the engine replays them with.
//
// An expansion search emits (vertex, dist, sim) triples; the on-the-fly
// cache (§5.3.4) stores them per (source, position) and adversarial queries
// replay the same streams tens of thousands of times. Replays touch `dist`
// (budget break) and `sim` (decision memo key) for every candidate but
// `vertex` only for the few survivors, so the pool keeps the three fields in
// parallel flat arrays: a replay scans two dense double arrays at memory
// bandwidth instead of striding through 24-byte records.
//
// ScanCandidateBlock4 evaluates one 4-lane block of a dist-sorted stream:
// how many leading lanes are inside the Lemma 5.3 budget. The AVX2 / SSE2 /
// scalar implementations perform the identical IEEE compares, so the block
// break — and with it the deterministic work counters — never depends on
// the ISA the binary was compiled for.
//
// PruneFloorTable holds the query-lifetime prune floors the engine skips
// candidates with. The engine's consume() prune conditions for a candidate
// are functions of (position, parent accumulator, similarity) that are
// monotone in the extended length, and the skyline thresholds they compare
// against only tighten while a query runs. So once ONE candidate is pruned
// by such a condition, every later candidate of ANY expansion with the same
// (position, accumulator bits, similarity bits) and extended length >= the
// recorded floor is certain to be pruned the same way — skipping it without
// invoking consume() is exact, not heuristic. Keying on the accumulator's
// bit pattern is what makes the floors transferable across expansions:
// equal bits mean agg.Extend produces bit-equal scores, hence identical
// threshold lookups. Adversarial same-tree queries re-expand thousands of
// routes sharing (position, acc), which is exactly where replays burn time.

#ifndef SKYSR_CORE_CANDIDATE_STREAM_H_
#define SKYSR_CORE_CANDIDATE_STREAM_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

#if defined(__AVX2__) || defined(__SSE2__)
#include <immintrin.h>
#endif

namespace skysr {

/// One PoI vertex found by an expansion search.
struct ExpansionCandidate {
  VertexId vertex;
  Weight dist;
  double sim;
};

/// Borrowed view of one stream inside a CandidateSoA pool (non-decreasing
/// dist order, as committed by the search that produced it).
struct CandidateSpan {
  const VertexId* vertex = nullptr;
  const Weight* dist = nullptr;
  const double* sim = nullptr;
  uint32_t size = 0;
};

/// Append-only SoA pool of candidates; the storage behind MdijkstraCache.
/// Mirrors the std::vector surface the stamped span table expects
/// (size/clear/push_back) so it drops in as the table's pool type.
class CandidateSoA {
 public:
  size_t size() const { return dist_.size(); }
  bool empty() const { return dist_.empty(); }
  void clear() {
    vertex_.clear();
    dist_.clear();
    sim_.clear();
  }

  void push_back(const ExpansionCandidate& c) {
    vertex_.push_back(c.vertex);
    dist_.push_back(c.dist);
    sim_.push_back(c.sim);
  }

  void Append(std::span<const ExpansionCandidate> cands) {
    vertex_.reserve(vertex_.size() + cands.size());
    dist_.reserve(dist_.size() + cands.size());
    sim_.reserve(sim_.size() + cands.size());
    for (const ExpansionCandidate& c : cands) push_back(c);
  }

  ExpansionCandidate At(size_t i) const {
    return ExpansionCandidate{vertex_[i], dist_[i], sim_[i]};
  }

  CandidateSpan Span(size_t offset, size_t count) const {
    SKYSR_DCHECK(offset + count <= dist_.size());
    return CandidateSpan{vertex_.data() + offset, dist_.data() + offset,
                         sim_.data() + offset, static_cast<uint32_t>(count)};
  }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(vertex_.capacity() * sizeof(VertexId) +
                                dist_.capacity() * sizeof(Weight) +
                                sim_.capacity() * sizeof(double));
  }

 private:
  std::vector<VertexId> vertex_;
  std::vector<Weight> dist_;
  std::vector<double> sim_;
};

/// Lanes per ScanCandidateBlock4 call. Fixed at 4 on every ISA so block
/// boundaries — and therefore the deterministic work counters — never depend
/// on the instruction set the binary was compiled for.
inline constexpr uint32_t kCandidateBlock = 4;

/// Counts the leading lanes of one 4-lane block of a dist-sorted stream
/// that are inside the Lemma 5.3 budget. A count < 4 means the blocking
/// lane's dist reached the budget; budgets only shrink, so the caller stops
/// there.
inline uint32_t ScanCandidateBlock4(const Weight* dist, Weight budget) {
#if defined(__AVX2__)
  const unsigned lt = static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(
      _mm256_loadu_pd(dist), _mm256_set1_pd(budget), _CMP_LT_OQ)));
  return static_cast<uint32_t>(std::countr_one(lt & 0xfu));
#elif defined(__SSE2__)
  const __m128d b = _mm_set1_pd(budget);
  const unsigned lt =
      static_cast<unsigned>(
          _mm_movemask_pd(_mm_cmplt_pd(_mm_loadu_pd(dist), b))) |
      (static_cast<unsigned>(
           _mm_movemask_pd(_mm_cmplt_pd(_mm_loadu_pd(dist + 2), b)))
       << 2);
  return static_cast<uint32_t>(std::countr_one(lt & 0xfu));
#else
  uint32_t in_budget = 0;
  while (in_budget < kCandidateBlock && dist[in_budget] < budget) ++in_budget;
  return in_budget;
#endif
}

/// Query-lifetime prune floors, direct-mapped on (position, accumulator
/// bits, similarity bits). See the header comment for the exactness
/// argument; a collision evicts the resident floor (less skipping, never a
/// wrong skip — every hit verifies the full key before skipping). Cleared
/// per query in O(1) via an epoch stamp.
class PruneFloorTable {
 public:
  static constexpr uint32_t kSlots = 4096;  // 32 B each: 128 KiB resident

  PruneFloorTable() : slots_(kSlots) {}

  void Clear() {
    ++epoch_;
    if (epoch_ == 0) {  // stamp wrap: invalidate eagerly, once per 2^32
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  /// True when a recorded floor proves a candidate with this key and
  /// extended length `nlen` would be pruned by consume().
  bool Skippable(uint64_t acc_bits, int32_t position, double sim,
                 Weight nlen) const {
    const uint64_t sim_bits = std::bit_cast<uint64_t>(sim);
    const Slot& s = slots_[IndexOf(acc_bits, position, sim_bits)];
    return s.epoch == epoch_ && s.acc_bits == acc_bits &&
           s.sim_bits == sim_bits && s.position == position &&
           nlen >= s.floor;
  }

  /// Records that consume() pruned a candidate with this key at extended
  /// length `nlen` by a length-monotone condition.
  void Note(uint64_t acc_bits, int32_t position, double sim, Weight nlen) {
    const uint64_t sim_bits = std::bit_cast<uint64_t>(sim);
    Slot& s = slots_[IndexOf(acc_bits, position, sim_bits)];
    if (s.epoch == epoch_ && s.acc_bits == acc_bits &&
        s.sim_bits == sim_bits && s.position == position) {
      if (nlen < s.floor) s.floor = nlen;
    } else {
      s = Slot{acc_bits, sim_bits, nlen, position, epoch_};
    }
  }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(slots_.capacity() * sizeof(Slot));
  }

 private:
  struct Slot {
    uint64_t acc_bits = 0;
    uint64_t sim_bits = 0;
    Weight floor = 0;
    int32_t position = 0;
    uint32_t epoch = 0;
  };

  static uint32_t IndexOf(uint64_t acc_bits, int32_t position,
                          uint64_t sim_bits) {
    uint64_t h = acc_bits ^ (sim_bits * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(position)) *
                  0xbf58476d1ce4e5b9ULL);
    h ^= h >> 29;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 32;
    return static_cast<uint32_t>(h) & (kSlots - 1);
  }

  std::vector<Slot> slots_;
  uint32_t epoch_ = 1;  // slots start at epoch 0: all stale
};

}  // namespace skysr

#endif  // SKYSR_CORE_CANDIDATE_STREAM_H_

#include "core/query.h"

#include <algorithm>

namespace skysr {

Query MakeSimpleQuery(VertexId start, std::span<const CategoryId> categories) {
  Query q;
  q.start = start;
  q.sequence.reserve(categories.size());
  for (CategoryId c : categories) {
    q.sequence.push_back(CategoryPredicate::Single(c));
  }
  return q;
}

Query MakeSimpleQuery(VertexId start,
                      std::initializer_list<CategoryId> categories) {
  return MakeSimpleQuery(
      start, std::span<const CategoryId>(categories.begin(),
                                         categories.size()));
}

PositionMatcher::PositionMatcher(const Graph& g, const CategoryForest& forest,
                                 const SimilarityFunction& fn,
                                 const CategoryPredicate& pred,
                                 MultiCategoryMode mode)
    : g_(&g),
      forest_(&forest),
      mode_(mode),
      all_of_(pred.all_of),
      none_of_(pred.none_of) {
  tables_.reserve(pred.any_of.size());
  for (CategoryId c : pred.any_of) {
    tables_.emplace_back(forest, fn, c);
    const TreeId t = forest.TreeOf(c);
    if (std::find(trees_.begin(), trees_.end(), t) == trees_.end()) {
      trees_.push_back(t);
    }
  }
  if (mode_ == MultiCategoryMode::kAverageSimilarity) {
    max_non_perfect_ = 1.0;  // conservative: δ = 0
  } else {
    for (const SimilarityTable& t : tables_) {
      max_non_perfect_ = std::max(max_non_perfect_, t.max_non_perfect_sim());
    }
  }
}

double PositionMatcher::EvalSimOfPoi(PoiId p) const {
  const std::span<const CategoryId> cats = g_->PoiCategories(p);

  // Negation: the PoI must not be associated with any excluded category
  // (i.e. none of its categories lies in an excluded subtree).
  for (CategoryId banned : none_of_) {
    for (CategoryId c : cats) {
      if (forest_->IsAncestorOrSelf(banned, c)) return 0.0;
    }
  }
  // Conjunction: for every required category, some PoI category must lie in
  // its subtree.
  for (CategoryId required : all_of_) {
    bool found = false;
    for (CategoryId c : cats) {
      if (forest_->IsAncestorOrSelf(required, c)) {
        found = true;
        break;
      }
    }
    if (!found) return 0.0;
  }

  // Disjunction: best similarity over the alternatives; within one
  // alternative, multi-category PoIs aggregate by max or average (§6).
  double best = 0.0;
  for (const SimilarityTable& table : tables_) {
    double value = 0.0;
    if (mode_ == MultiCategoryMode::kMaxSimilarity) {
      for (CategoryId c : cats) value = std::max(value, table.SimOf(c));
    } else {
      double sum = 0.0;
      for (CategoryId c : cats) sum += table.SimOf(c);
      value = sum / static_cast<double>(cats.size());
    }
    best = std::max(best, value);
  }
  return best;
}

Status ValidateQuery(const Graph& g, const CategoryForest& forest,
                     const Query& q) {
  if (q.start < 0 || q.start >= g.num_vertices()) {
    return Status::InvalidArgument("query start vertex out of range");
  }
  if (q.sequence.empty()) {
    return Status::InvalidArgument("query sequence is empty");
  }
  if (q.destination &&
      (*q.destination < 0 || *q.destination >= g.num_vertices())) {
    return Status::InvalidArgument("query destination out of range");
  }
  for (const CategoryPredicate& p : q.sequence) {
    if (p.any_of.empty()) {
      return Status::InvalidArgument("position predicate needs any_of");
    }
    for (CategoryId c : p.any_of) {
      if (!forest.Valid(c)) {
        return Status::InvalidArgument("unknown category in any_of");
      }
    }
    for (CategoryId c : p.all_of) {
      if (!forest.Valid(c)) {
        return Status::InvalidArgument("unknown category in all_of");
      }
    }
    for (CategoryId c : p.none_of) {
      if (!forest.Valid(c)) {
        return Status::InvalidArgument("unknown category in none_of");
      }
    }
  }
  return Status::OK();
}

}  // namespace skysr

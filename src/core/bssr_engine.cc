#include "core/bssr_engine.h"

#include <algorithm>

#include "core/lower_bound.h"
#include "core/nn_init.h"
#include "core/skyline_set.h"
#include "core/threshold.h"
#include "graph/dijkstra.h"
#include "graph/graph_builder.h"
#include "util/dary_heap.h"
#include "util/timer.h"

namespace skysr {
namespace {

/// Queue entry for the bulk priority queue Q_b.
struct QbEntry {
  int32_t node;
  int32_t size;
  double semantic;
  Weight length;
};

/// §5.3.2: the proposed discipline dequeues the largest route first, then the
/// semantically best, then the shortest; the distance-based baseline orders
/// purely by length. Node-id tie-breaks keep runs deterministic.
struct QbLess {
  QueueDiscipline discipline;
  bool operator()(const QbEntry& a, const QbEntry& b) const {
    if (discipline == QueueDiscipline::kProposed) {
      if (a.size != b.size) return a.size > b.size;
      if (a.semantic != b.semantic) return a.semantic < b.semantic;
      if (a.length != b.length) return a.length < b.length;
    } else {
      if (a.length != b.length) return a.length < b.length;
    }
    return a.node < b.node;
  }
};

}  // namespace

BssrEngine::BssrEngine(const Graph& graph, const CategoryForest& forest,
                       const DistanceOracle* oracle)
    : g_(&graph), forest_(&forest), oracle_(oracle) {
  SKYSR_DCHECK(oracle == nullptr || &oracle->graph() == &graph);
  for (PoiId p = 0; p < g_->num_pois(); ++p) {
    if (g_->PoiCategories(p).size() > 1) {
      has_multi_category_poi_ = true;
      break;
    }
  }
}

Result<QueryResult> BssrEngine::Run(const Query& query,
                                    const QueryOptions& options) {
  SKYSR_RETURN_NOT_OK(ValidateQuery(*g_, *forest_, query));
  WallTimer timer;
  QueryResult result;
  SearchStats& stats = result.stats;

  const SimilarityFunction& sim_fn =
      options.similarity ? *options.similarity : *DefaultSimilarity();
  const SemanticAggregator agg(options.aggregation);
  const int k = query.size();

  std::vector<PositionMatcher> matchers;
  matchers.reserve(static_cast<size_t>(k));
  for (const CategoryPredicate& pred : query.sequence) {
    matchers.emplace_back(*g_, *forest_, sim_fn, pred,
                          options.multi_category);
  }

  // Lemma 5.5 is sound only when a blocking PoI can never be used at any
  // other position of the route: single-category PoIs and pairwise-disjoint
  // position trees (see modified_dijkstra.h). Otherwise emit unfiltered.
  bool needs_deferred_lemma55 = has_multi_category_poi_;
  for (int i = 0; !needs_deferred_lemma55 && i < k; ++i) {
    for (int j = i + 1; !needs_deferred_lemma55 && j < k; ++j) {
      for (TreeId t : matchers[static_cast<size_t>(i)].trees()) {
        const auto& tj = matchers[static_cast<size_t>(j)].trees();
        if (std::find(tj.begin(), tj.end(), t) != tj.end()) {
          needs_deferred_lemma55 = true;
          break;
        }
      }
    }
  }

  // Destination distances (§6): D(v, destination) for every v.
  std::vector<Weight> dest_dist_storage;
  const std::vector<Weight>* dest_dist = nullptr;
  if (query.destination) {
    if (g_->directed()) {
      const Graph reversed = ReverseOf(*g_);
      dest_dist_storage =
          SingleSourceDistances(reversed, *query.destination).dist;
    } else {
      dest_dist_storage = SingleSourceDistances(*g_, *query.destination).dist;
    }
    dest_dist = &dest_dist_storage;
  }

  SkylineSet skyline;
  RouteArena arena;
  cache_.Clear();

  // --- Optimization 1: initial search (§5.3.1). ---
  if (options.use_initial_search) {
    RunNnInit(*g_, matchers, query.start, agg, dest_dist, nn_ws_, &skyline,
              &stats, oracle_, &oracle_ws_, options.oracle_candidate_cap);
  }

  // --- Optimization 3: minimum-distance lower bounds (§5.3.3). ---
  LowerBounds lb;
  const LowerBounds* lb_ptr = nullptr;
  if (options.use_lower_bounds && k >= 2) {
    if (oracle_ != nullptr && oracle_->kind() != OracleKind::kFlat &&
        options.oracle_candidate_cap != 0) {
      lb = ComputeLowerBoundsWithOracle(
          *g_, matchers, query.start, skyline.Threshold(0.0), *oracle_,
          oracle_ws_, &stats, options.oracle_candidate_cap);
    } else {
      lb = ComputeLowerBounds(*g_, matchers, query.start,
                              skyline.Threshold(0.0), &stats);
    }
    lb_ptr = &lb;
  }

  // σ_max over remaining positions, input to Lemma 5.8's δ.
  std::vector<double> sigma_suffix(static_cast<size_t>(k) + 1, 0.0);
  for (int m = k - 1; m >= 0; --m) {
    sigma_suffix[static_cast<size_t>(m)] =
        std::max(sigma_suffix[static_cast<size_t>(m) + 1],
                 matchers[static_cast<size_t>(m)].max_non_perfect_sim());
  }
  const ThresholdPolicy policy(skyline, agg, lb_ptr, sigma_suffix, k);

  // --- Optimization 2: queue arrangement (§5.3.2). ---
  DaryHeap<QbEntry, QbLess> qb(QbLess{options.queue_discipline});

  // Expands the partial route `node_idx` (kEmpty = the empty route at the
  // start vertex) by one position, via cache or a fresh search.
  const auto expand = [&](int32_t node_idx) {
    VertexId src;
    Weight len;
    double acc;
    int m;
    if (node_idx == RouteArena::kEmpty) {
      src = query.start;
      len = 0;
      acc = agg.Identity();
      m = 0;
    } else {
      const RouteArena::Node& nd = arena.node(node_idx);
      src = nd.vertex;
      len = nd.length;
      acc = nd.acc;
      m = nd.size;
    }
    const PositionMatcher& matcher = matchers[static_cast<size_t>(m)];
    const auto budget_fn = [&policy, acc, len, m]() {
      return policy.ExpansionBudget(acc, len, m);
    };

    const auto consume = [&](const ExpansionCandidate& cand) {
      const PoiId poi = g_->PoiAtVertex(cand.vertex);
      if (node_idx != RouteArena::kEmpty && arena.Contains(node_idx, poi)) {
        return;  // Definition 3.4(iii): PoIs must be distinct
      }
      const double nacc = agg.Extend(acc, cand.sim);
      const double nsem = agg.Score(nacc);
      const Weight nlen = len + cand.dist;
      if (m + 1 == k) {
        Weight flen = nlen;
        if (dest_dist != nullptr) {
          const Weight tail =
              (*dest_dist)[static_cast<size_t>(cand.vertex)];
          if (tail == kInfWeight) return;
          flen += tail;
        }
        const RouteScores scores{flen, nsem};
        if (!policy.ShouldPruneComplete(scores)) {
          std::vector<PoiId> pois = arena.Materialize(node_idx);
          pois.push_back(poi);
          skyline.Update(scores, std::move(pois));
        }
      } else if (!policy.ShouldPrunePartial(nacc, nlen, m + 1)) {
        const int32_t idx = arena.Add(node_idx, poi, cand.vertex, nlen, nacc);
        qb.push(QbEntry{idx, m + 1, nsem, nlen});
        ++stats.routes_enqueued;
      }
    };

    if (options.use_cache) {
      const CandidateList* entry = cache_.Find(src, m);
      if (entry != nullptr &&
          (entry->exhausted || entry->covered_radius >= budget_fn())) {
        ++stats.mdijkstra_cache_hits;
        for (const ExpansionCandidate& cand : entry->candidates) {
          if (cand.dist >= budget_fn()) break;
          consume(cand);
        }
        return;
      }
      if (entry != nullptr) ++stats.cache_reruns;
    }

    ++stats.mdijkstra_runs;
    DijkstraRunStats run_stats;
    CandidateList list =
        RunExpansion(*g_, matcher, src, budget_fn, !needs_deferred_lemma55,
                     scratch_, consume, &run_stats);
    stats.vertices_settled += run_stats.settled;
    stats.edges_relaxed += run_stats.relaxed;
    stats.weight_sum += run_stats.weight_sum;
    if (stats.mdijkstra_runs == 1) {
      stats.first_search_weight_sum = run_stats.weight_sum;
    }
    if (options.use_cache) cache_.Put(src, m, std::move(list));
  };

  // Algorithm 1: seed with the first expansion, then drain Q_b.
  expand(RouteArena::kEmpty);
  while (!qb.empty()) {
    if (timer.ElapsedSeconds() > options.time_budget_seconds) {
      stats.timed_out = true;
      break;
    }
    const QbEntry entry = qb.pop();
    ++stats.routes_dequeued;
    const RouteArena::Node& nd = arena.node(entry.node);
    if (policy.ShouldPrunePartial(nd.acc, nd.length, nd.size)) {
      ++stats.routes_pruned;
      continue;
    }
    expand(entry.node);
  }

  stats.peak_queue_size = static_cast<int64_t>(qb.peak_size());
  stats.route_nodes = arena.num_nodes();
  stats.logical_peak_bytes =
      arena.MemoryBytes() +
      static_cast<int64_t>(qb.peak_size() * sizeof(QbEntry)) +
      skyline.MemoryBytes() + cache_.MemoryBytes();
  cache_.Clear();

  result.routes = skyline.routes();
  stats.skyline_size = skyline.size();
  stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace skysr

#include "core/bssr_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>

#include "core/candidate_stream.h"
#include "core/lower_bound.h"
#include "core/nn_init.h"
#include "core/skyline_set.h"
#include "core/threshold.h"
#include "obs/explain.h"
#include "obs/query_trace.h"
#include "graph/dijkstra.h"
#include "graph/graph_builder.h"
#include "retrieval/poi_retriever.h"
#include "util/timer.h"

namespace skysr {
namespace {

/// The Q_b drain reads the wall clock only this often — a clock read per
/// dequeue costs more than the dequeue itself. Power of two so the check
/// compiles to a mask.
constexpr int64_t kTimeoutCheckInterval = 1024;

/// The exact Lemma 5.5 eligibility scan costs O(|P| * k) similarity
/// evaluations; above this PoI count a query with tiny search spaces could
/// pay more for the scan than for its searches, so larger graphs keep the
/// conservative structural answer (deferred mode) instead.
constexpr int64_t kExactLemma55ScanMaxPois = 1 << 16;

/// Generation-stamped expansion budget (Lemma 5.3). The budget is a pure
/// function of the fixed (acc, len, m) of one expansion and the skyline, so
/// it only needs recomputing when the skyline's generation moves — not per
/// settled vertex or per replayed cache candidate. Passed by lvalue into the
/// monomorphized search so the memo spans the whole expansion.
struct GenStampedBudget {
  const ThresholdPolicy* policy;
  double acc;
  Weight len;
  int m;
  uint64_t generation = kNone;
  Weight value = 0;

  static constexpr uint64_t kNone = ~uint64_t{0};

  Weight operator()() {
    const uint64_t g = policy->skyline().generation();
    if (g != generation) {
      generation = g;
      value = policy->ExpansionBudget(acc, len, m);
    }
    return value;
  }
};

/// Per-expansion, per-similarity decision memo. For one expansion (fixed
/// acc, len, m) and one skyline generation, a candidate's accept/prune
/// decision depends only on (sim, dist [, destination tail]) — and the
/// sim-dependent ingredients (extended accumulator, semantic score,
/// staircase thresholds, Lemma 5.8 δ qualification) are identical for every
/// candidate sharing a similarity value, of which a position has only a
/// handful (category-tree similarity values). Memoizing them turns the
/// per-candidate work into a slot scan plus the ORIGINAL threshold
/// comparisons on the original operands — decisions stay bit-exact, only
/// the recomputation of their inputs is skipped. Generation moves drop the
/// memo, so tightened skylines are always honored.
struct SimDecisionMemo {
  // Direct-mapped on the similarity's bit pattern: one hash, one integer
  // compare per lookup. Similarities are positive (+0.0 is never emitted),
  // so bit pattern 0 doubles as the empty marker; distinct bit patterns are
  // distinct values for positive doubles.
  static constexpr int kSlots = 32;  // power of two

  explicit SimDecisionMemo(uint64_t gen) : generation(gen) {}

  uint64_t generation;
  // Only sim_bits needs zeroing: the other arrays are written on slot
  // build before any read.
  uint64_t sim_bits[kSlots] = {};
  double nacc[kSlots];
  double nsem[kSlots];
  Weight th[kSlots];     // Threshold(nsem)
  Weight th_b[kSlots];   // Lemma 5.8 bumped threshold (when qualified)
  bool has58[kSlots];    // δ > 0 and th_b finite
  // Smallest extended length seen pruned for this sim this generation; the
  // prune decision is monotone in length (for fixed thresholds), so longer
  // candidates short-circuit on one compare. Exact, not heuristic.
  Weight pruned_at[kSlots];

  static int SlotOf(uint64_t bits) {
    return static_cast<int>((bits * 0x9e3779b97f4a7c15ull) >> 59);
  }
  void Invalidate(uint64_t gen) {
    generation = gen;
    for (uint64_t& b : sim_bits) b = 0;
  }
};

}  // namespace

BssrEngine::BssrEngine(const Graph& graph, const CategoryForest& forest,
                       const DistanceOracle* oracle,
                       const CategoryBucketIndex* buckets)
    : g_(&graph), forest_(&forest), oracle_(oracle), buckets_(buckets) {
  SKYSR_DCHECK(oracle == nullptr || &oracle->graph() == &graph);
  // Bucket tables must describe exactly this (graph, oracle); anything else
  // is silently dropped rather than risking a foreign CH build's CSR
  // indices.
  if (buckets_ != nullptr &&
      (oracle_ == nullptr || &buckets_->graph() != g_ ||
       static_cast<const DistanceOracle*>(&buckets_->oracle()) != oracle_)) {
    buckets_ = nullptr;
  }
  for (PoiId p = 0; p < g_->num_pois(); ++p) {
    if (g_->PoiCategories(p).size() > 1) {
      has_multi_category_poi_ = true;
      break;
    }
  }
}

Result<QueryResult> BssrEngine::Run(const Query& query,
                                    const QueryOptions& options) {
  SKYSR_RETURN_NOT_OK(ValidateQuery(*g_, *forest_, query));
  WallTimer timer;
  QueryResult result;
  SearchStats& stats = result.stats;

  // Decision attribution (src/obs/explain.h): allocated only on request, so
  // the default path keeps the zero-steady-state-allocation contract. Every
  // attribution site below is one null-check branch when off; nothing an
  // explain records ever feeds back into a decision, so results and work
  // counters are bit-identical either way.
  QueryExplain* exp = nullptr;
  if (options.explain) {
    result.explain = std::make_shared<QueryExplain>();
    exp = result.explain.get();
  }

  // Tracing (src/obs/): resolved to null unless attached AND enabled, so
  // every span site below is one predictable branch in the default
  // configuration. The oracle workspace carries the pointer into Table()
  // calls. Aggregates are per-trace-window; the snapshot cuts out this
  // query's delta for SearchStats regardless of when the caller Clear()ed.
  QueryTrace* const trace =
      (trace_ != nullptr && trace_->enabled()) ? trace_ : nullptr;
  ws_.oracle_ws.trace = trace;
  const PhaseAggregates phases_before =
      trace != nullptr ? trace->aggregates() : PhaseAggregates{};
  TraceSpan query_span(trace, TracePhase::kQuery);

  const SimilarityFunction& sim_fn =
      options.similarity ? *options.similarity : *DefaultSimilarity();
  const SemanticAggregator agg(options.aggregation);
  const int k = query.size();

  std::vector<PositionMatcher>& matchers = ws_.matchers;
  matchers.clear();
  matchers.reserve(static_cast<size_t>(k));
  for (const CategoryPredicate& pred : query.sequence) {
    matchers.emplace_back(*g_, *forest_, sim_fn, pred,
                          options.multi_category);
  }
  // Per-position similarity memos: a PoI's similarity is evaluated at most
  // once per query position, then read back as an array hit in the settle
  // loops and the full-PoI scans. Attached only after the matcher vector is
  // fully built (emplace_back may reallocate).
  if (ws_.sim_memo.size() < static_cast<size_t>(k)) {
    ws_.sim_memo.resize(static_cast<size_t>(k));
  }
  for (int m = 0; m < k; ++m) {
    ws_.sim_memo[static_cast<size_t>(m)].Prepare(g_->num_pois(), -1.0);
    matchers[static_cast<size_t>(m)].AttachSimCache(
        &ws_.sim_memo[static_cast<size_t>(m)]);
  }

  // Lemma 5.5 is sound exactly when a blocking PoI can never be usable at
  // any OTHER position of the route (see modified_dijkstra.h): no PoI may
  // semantically match two positions. The structural pre-check — pairwise-
  // disjoint position trees and single-category PoIs — proves that for the
  // common workload without touching PoIs; when it can't, the exact per-PoI
  // test decides (its memoized similarities are reused by every later
  // stage, so the scan is mostly prewarming) — except on PoI sets large
  // enough that the scan itself could dominate a small query, which keep
  // the conservative answer. A single-position query can never reuse a
  // blocker elsewhere, so it always keeps the cuts.
  bool needs_deferred_lemma55 = has_multi_category_poi_;
  for (int i = 0; !needs_deferred_lemma55 && i < k; ++i) {
    for (int j = i + 1; !needs_deferred_lemma55 && j < k; ++j) {
      for (TreeId t : matchers[static_cast<size_t>(i)].trees()) {
        const auto& tj = matchers[static_cast<size_t>(j)].trees();
        if (std::find(tj.begin(), tj.end(), t) != tj.end()) {
          needs_deferred_lemma55 = true;
          break;
        }
      }
    }
  }
  if (needs_deferred_lemma55 &&
      (k < 2 || g_->num_pois() <= kExactLemma55ScanMaxPois)) {
    needs_deferred_lemma55 = false;
    for (PoiId p = 0; k >= 2 && p < g_->num_pois(); ++p) {
      int matched = 0;
      for (int m = 0; m < k; ++m) {
        if (matchers[static_cast<size_t>(m)].SimOfPoi(p) > 0 &&
            ++matched >= 2) {
          break;
        }
      }
      if (matched >= 2) {
        needs_deferred_lemma55 = true;
        break;
      }
    }
  }

  // Destination distances (§6): D(v, destination) for every v. Directed
  // graphs search the reversed graph, built lazily once per engine instead
  // of per query. With a shared provider (QueryService's per-destination
  // LRU) the table is fetched — or computed once and shared — instead of
  // re-running the full-graph reverse Dijkstra per repeat; the computation
  // is identical either way, so results are too.
  const std::vector<Weight>* dest_dist = nullptr;
  std::shared_ptr<const std::vector<Weight>> shared_tails;
  if (query.destination) {
    TraceSpan tails_span(trace, TracePhase::kDestTails);
    const VertexId dest = *query.destination;
    // Inside a RunGroup, the group prefetch already holds this
    // destination's shared table — read it directly, no LRU traffic.
    const std::vector<Weight>* pinned = nullptr;
    for (const auto& gt : group_tails_) {
      if (gt.first == dest) {
        pinned = gt.second.get();
        break;
      }
    }
    if (pinned != nullptr) {
      dest_dist = pinned;
      if (exp != nullptr) {
        exp->dest_tail_source = "group-pin";
        ++exp->dest_tail.hits;
      }
    } else if (dest_tails_ != nullptr) {
      bool computed = false;
      shared_tails = dest_tails_->GetOrCompute(dest,
                                               [&](std::vector<Weight>* out) {
                                                 computed = true;
                                                 ComputeDestTails(dest, out);
                                               });
      dest_dist = shared_tails.get();
      if (exp != nullptr) {
        exp->dest_tail_source = "provider";
        ++(computed ? exp->dest_tail.misses : exp->dest_tail.hits);
      }
    } else {
      ComputeDestTails(dest, &ws_.dest_dist);
      dest_dist = &ws_.dest_dist;
      if (exp != nullptr) {
        exp->dest_tail_source = "local";
        ++exp->dest_tail.misses;
      }
    }
    if (exp != nullptr) {
      exp->dest_tail.bytes =
          static_cast<int64_t>(dest_dist->size() * sizeof(Weight));
    }
  }

  SkylineSet& skyline = ws_.skyline;
  RouteArena& arena = ws_.arena;
  MdijkstraCache& cache = ws_.cache;
  SettleLog& slog = ws_.settle_log;
  skyline.Clear();
  arena.Clear();
  cache.Clear();
  slog.Clear();
  ws_.qb_dom.Clear();
  ws_.prune_floors.Clear();
  ws_.bucket_scan.Clear();
  // Engine-lifetime warm state (src/cache/): with a shared cache attached
  // and the query opted in, the resumable slots live in the cache —
  // persistent across queries, CLOCK-evicted — and bucket forward searches
  // are served snapshot-first / cache-second with write-back. Either way
  // the per-query scan views (df_of/fsum_of) were just cleared above, so a
  // warm query differs from a cold one only in which searches it skips.
  SharedQueryCache* const xc =
      (xcache_ != nullptr && options.use_shared_cache) ? xcache_ : nullptr;
  SharedCacheCounters xc_before;
  if (exp != nullptr && xc != nullptr) xc_before = xc->Counters();
  const int default_slots =
      RetrieverCostModel::ResumableSlots(g_->num_vertices());
  ResumablePool& resume_pool = xc != nullptr ? xc->resume_pool() : ws_.resume;
  if (xc != nullptr) {
    resume_pool.PrepareServing(xc->config().resume_slots > 0
                                   ? xc->config().resume_slots
                                   : default_slots);
    resume_pool.BeginQuery();
  } else {
    resume_pool.Reset(default_slots);
  }
  ws_.qb.Reset(options.queue_discipline, k);
  QbQueue& qb = ws_.qb;

  // --- PoI-retrieval plan (src/retrieval/): which backend answers fresh
  // expansion searches. Bucket scans and resumable slots apply only in
  // deferred-Lemma-5.5 mode, where the traversal is matcher-independent and
  // an expansion is exactly "all matching PoIs within the budget radius, in
  // (dist, vertex) order" — a query the bucket tables answer without
  // settling road vertices. Every backend is bit-identical (the
  // differential harness sweeps them); the plan is purely a speed choice,
  // and it is a pure function of the query so work counters stay
  // deterministic.
  const RetrieverKind rk = options.retriever;
  const bool bucket_backend =
      needs_deferred_lemma55 && buckets_ != nullptr &&
      (rk == RetrieverKind::kBucket ||
       (rk == RetrieverKind::kAuto &&
        RetrieverCostModel::PreferBucket(oracle_->ApproxSearchSettles(),
                                         buckets_->SettleDensity(),
                                         g_->num_vertices())));
  const bool resume_backend =
      needs_deferred_lemma55 &&
      (rk == RetrieverKind::kResume ||
       (rk == RetrieverKind::kAuto && buckets_ != nullptr));
  std::optional<BucketRetriever> bucket;
  if (bucket_backend) bucket.emplace(*buckets_);

  if (exp != nullptr) {
    exp->oracle =
        oracle_ != nullptr ? OracleKindName(oracle_->kind()) : "none";
    exp->deferred_lemma55 = needs_deferred_lemma55;
    exp->retriever_requested = RetrieverKindName(rk);
    exp->bucket_backend = bucket_backend;
    exp->resume_backend = resume_backend;
    exp->cost_fwd_settles =
        oracle_ != nullptr ? oracle_->ApproxSearchSettles() : 0;
    exp->cost_settle_density =
        buckets_ != nullptr ? buckets_->SettleDensity() : 0.0;
    exp->cost_num_vertices = g_->num_vertices();
    exp->positions.resize(static_cast<size_t>(k));
  }

  // --- Optimization 1: initial search (§5.3.1). ---
  if (options.use_initial_search) {
    TraceSpan nn_span(trace, TracePhase::kNnInit);
    // The bucket tables also serve NNinit's table hops (and warm the
    // per-query forward-search cache the bulk search reuses); kSettle and
    // kResume reproduce the pre-bucket paths exactly.
    const bool nn_buckets =
        buckets_ != nullptr && (rk == RetrieverKind::kAuto ||
                                rk == RetrieverKind::kBucket);
    RunNnInit(*g_, matchers, query.start, agg, dest_dist, ws_.dijkstra_ws,
              &skyline, &stats, oracle_, &ws_.oracle_ws,
              options.oracle_candidate_cap, &ws_.nn_init,
              nn_buckets ? buckets_ : nullptr,
              nn_buckets ? &ws_.bucket_scan : nullptr,
              nn_buckets ? xc : nullptr);
  }

  // --- Optimization 3: minimum-distance lower bounds (§5.3.3). ---
  const LowerBounds* lb_ptr = nullptr;
  if (options.use_lower_bounds && k >= 2) {
    TraceSpan lb_span(trace, TracePhase::kLowerBound);
    if (oracle_ != nullptr && oracle_->kind() != OracleKind::kFlat &&
        options.oracle_candidate_cap != 0) {
      // With the shared cache attached, table-based legs read the bucket
      // tables so the source forward searches come from — and warm — the
      // cache; pair distances are bit-equal to Table()'s (lower_bound.h).
      std::optional<BucketRetriever> lb_buckets;
      if (xc != nullptr && buckets_ != nullptr) lb_buckets.emplace(*buckets_);
      ws_.lb = ComputeLowerBoundsWithOracle(
          *g_, matchers, query.start, skyline.Threshold(0.0), *oracle_,
          ws_.oracle_ws, &stats, options.oracle_candidate_cap,
          &ws_.lower_bound, lb_buckets ? &*lb_buckets : nullptr,
          lb_buckets ? &ws_.bucket_scan : nullptr, xc);
    } else {
      ws_.lb = ComputeLowerBounds(*g_, matchers, query.start,
                                  skyline.Threshold(0.0), &stats,
                                  &ws_.lower_bound);
    }
    lb_ptr = &ws_.lb;
  }

  // σ_max over remaining positions, input to Lemma 5.8's δ.
  std::vector<double>& sigma_suffix = ws_.sigma_suffix;
  sigma_suffix.assign(static_cast<size_t>(k) + 1, 0.0);
  for (int m = k - 1; m >= 0; --m) {
    sigma_suffix[static_cast<size_t>(m)] =
        std::max(sigma_suffix[static_cast<size_t>(m) + 1],
                 matchers[static_cast<size_t>(m)].max_non_perfect_sim());
  }
  const ThresholdPolicy policy(skyline, agg, lb_ptr,
                               std::span<const double>(sigma_suffix), k);

  // Per-prefix dominance pruning engages only where same-set duplicate
  // prefixes can exist at all: deferred-Lemma-5.5 mode (a PoI matching only
  // one position forces a single visit order per PoI set) and route size
  // >= 3 (the end vertex pins the last PoI, so two orders of the same set
  // need at least two free prefix slots) — hence k >= 4. Everywhere else
  // the store is never even touched.
  const bool use_qb_dominance =
      options.use_qb_dominance && needs_deferred_lemma55 && k >= 4;

  // Expands the partial route `node_idx` (kEmpty = the empty route at the
  // start vertex) by one position, via cache or a fresh search. The budget
  // functor and the candidate consumer are passed as template callbacks all
  // the way into the Dijkstra settle loop — no type-erased call anywhere on
  // the hot path.
  const auto expand = [&](int32_t node_idx) {
    TraceSpan expand_span(trace, TracePhase::kExpansion);
    VertexId src;
    Weight len;
    double acc;
    int m;
    uint64_t parent_mask = 0;
    uint64_t parent_set_hash = 0;
    if (node_idx == RouteArena::kEmpty) {
      src = query.start;
      len = 0;
      acc = agg.Identity();
      m = 0;
    } else {
      const RouteArena::Node& nd = arena.node(node_idx);
      src = nd.vertex;
      len = nd.length;
      acc = nd.acc;
      m = nd.size;
      parent_mask = nd.poi_mask;
      parent_set_hash = nd.set_hash;
    }
    const PositionMatcher& matcher = matchers[static_cast<size_t>(m)];
    GenStampedBudget budget{&policy, acc, len, m};

    // Expansion-wide constants of the candidate decision (see
    // SimDecisionMemo): the next position's remaining-leg bounds and σ.
    const bool last = m + 1 == k;
    const Weight ls1 =
        (!last && lb_ptr != nullptr)
            ? lb_ptr->ls_remaining[static_cast<size_t>(m) + 1]
            : 0;
    const Weight lp1 =
        (!last && lb_ptr != nullptr)
            ? lb_ptr->lp_remaining[static_cast<size_t>(m) + 1]
            : 0;
    const double sigma1 =
        last ? 0.0 : sigma_suffix[static_cast<size_t>(m) + 1];
    SimDecisionMemo memo(skyline.generation());

    // Returns true when the candidate was pruned by a condition monotone in
    // the extended length for its similarity (and whose thresholds only
    // tighten for the rest of the query): any later candidate of this
    // expansion with the same sim and extended length >= this one is
    // certain to be pruned the same way. The block replay records such
    // (sim, floor) pairs and skips provably-pruned candidates without
    // calling back in. Prunes that depend on the candidate's vertex (the
    // destination tail, duplicate-PoI rejects, dominance) return false.
    const auto consume = [&](const ExpansionCandidate& cand) {
      ++stats.cand_examined;

      // Locate (or build) the memo slot of this candidate's similarity.
      const uint64_t gen = skyline.generation();
      if (gen != memo.generation) memo.Invalidate(gen);
      const uint64_t bits = std::bit_cast<uint64_t>(cand.sim);
      const int slot = SimDecisionMemo::SlotOf(bits);
      if (memo.sim_bits[slot] != bits) {
        const double nacc = agg.Extend(acc, cand.sim);
        const double nsem = agg.Score(nacc);
        memo.sim_bits[slot] = bits;
        memo.nacc[slot] = nacc;
        memo.nsem[slot] = nsem;
        memo.th[slot] = skyline.Threshold(nsem);
        memo.has58[slot] = false;
        memo.pruned_at[slot] = kInfWeight;
        if (!last && lb_ptr != nullptr && memo.th[slot] != kInfWeight) {
          const double delta = agg.MinIncrementDelta(nacc, sigma1);
          if (delta > 0) {
            const Weight th_b = skyline.Threshold(nsem + delta);
            if (th_b != kInfWeight) {
              memo.th_b[slot] = th_b;
              memo.has58[slot] = true;
            }
          }
        }
      }

      const Weight nlen = len + cand.dist;
      if (last) {
        Weight flen = nlen;
        if (dest_dist != nullptr) {
          const Weight tail =
              (*dest_dist)[static_cast<size_t>(cand.vertex)];
          // Unreachable tails are dropped by the filter before consume();
          // this guard only covers a direct call.
          if (tail == kInfWeight) return false;
          flen += tail;
        }
        // DominatedOrEqual(flen, nsem) == Threshold(nsem) <= flen: the
        // memoized staircase lookup replaces the binary search, the
        // comparison is the same. The prune is monotone in flen — which is
        // exactly the probe length the filter records floors on at this
        // position (it adds the destination tail itself), so returning true
        // licenses a floor here whether or not a destination is set.
        if (memo.th[slot] <= flen) {
          ++stats.cand_pruned;
          ++stats.cand_pruned_threshold;
          return true;
        }
        const PoiId poi = g_->PoiAtVertex(cand.vertex);
        if (node_idx != RouteArena::kEmpty && arena.Contains(node_idx, poi)) {
          ++stats.cand_rejected;
          return false;  // Definition 3.4(iii): PoIs must be distinct
        }
        arena.MaterializeInto(node_idx, &ws_.route_buf);
        ws_.route_buf.push_back(poi);
        TraceSpan insert_span(trace, TracePhase::kSkylineInsert);
        skyline.Update(RouteScores{flen, memo.nsem[slot]},
                       std::span<const PoiId>(ws_.route_buf));
      } else {
        // ShouldPrunePartial(nacc, nlen, m + 1), operand for operand, with
        // the thresholds read from the memo.
        if (nlen >= memo.pruned_at[slot]) {
          ++stats.cand_pruned;
          ++stats.cand_pruned_floor;
          return true;
        }
        const Weight th = memo.th[slot];
        if (th != kInfWeight &&
            (nlen + ls1 >= th ||
             (memo.has58[slot] && memo.th_b[slot] <= nlen &&
              nlen + lp1 >= th))) {
          memo.pruned_at[slot] = nlen;
          ++stats.cand_pruned;
          ++stats.cand_pruned_threshold;
          return true;
        }
        const PoiId poi = g_->PoiAtVertex(cand.vertex);
        if (node_idx != RouteArena::kEmpty && arena.Contains(node_idx, poi)) {
          ++stats.cand_rejected;
          return false;  // Definition 3.4(iii): PoIs must be distinct
        }
        if (use_qb_dominance && m >= 2) {
          const uint64_t cmask = parent_mask | RouteArena::PoiBit(poi);
          const uint64_t chash = parent_set_hash ^ RouteArena::PoiSetHash(poi);
          if (ws_.qb_dom.IsDominated(arena, cand.vertex, m + 1, chash, cmask,
                                     node_idx, poi, nlen, memo.nacc[slot])) {
            ++stats.qb_dominance_pruned;
            return false;
          }
          const int32_t idx = arena.Add(node_idx, poi, cand.vertex, nlen,
                                        memo.nacc[slot]);
          ws_.qb_dom.Insert(arena, idx, cand.vertex, m + 1, chash, cmask,
                            node_idx, poi, nlen, memo.nacc[slot]);
          qb.push(QbEntry{idx, m + 1, memo.nsem[slot], nlen});
          ++stats.routes_enqueued;
          return false;
        }
        const int32_t idx = arena.Add(node_idx, poi, cand.vertex, nlen,
                                      memo.nacc[slot]);
        qb.push(QbEntry{idx, m + 1, memo.nsem[slot], nlen});
        ++stats.routes_enqueued;
      }
      return false;
    };

    // consume() behind the prune-floor filter: a candidate whose
    // (position, acc, sim) key has a recorded floor at or below its
    // extended length is provably pruned and skipped without calling in;
    // every length-monotone prune consume() reports feeds the table back.
    // The floors live for the whole query (see PruneFloorTable), so every
    // expansion sharing this (position, acc) — adversarial queries have
    // thousands — skips what any earlier one already proved.
    // The probe length is the quantity consume()'s prunes are monotone in:
    // the extended length, PLUS the destination tail at the last position
    // of a destination query (the tail is per-vertex, so it folds into the
    // probe rather than the floor; an unreachable tail drops the candidate
    // outright — consume() would do nothing with it). `last` and the
    // destination are expansion- resp. query-constant, so every floor
    // recorded under a given (position, acc, sim) key used the same probe
    // definition and the comparisons stay exact.
    const uint64_t acc_bits = std::bit_cast<uint64_t>(acc);
    const bool probe_adds_tail = last && dest_dist != nullptr;
    const auto consume_filtered = [&](const ExpansionCandidate& cand) {
      Weight plen = len + cand.dist;
      if (probe_adds_tail) {
        const Weight tail = (*dest_dist)[static_cast<size_t>(cand.vertex)];
        if (tail == kInfWeight) {
          ++stats.cand_simd_skipped;
          return;
        }
        plen += tail;
      }
      if (ws_.prune_floors.Skippable(acc_bits, m, cand.sim, plen)) {
        ++stats.cand_simd_skipped;
        return;
      }
      if (consume(cand)) ws_.prune_floors.Note(acc_bits, m, cand.sim, plen);
    };

    // Replays a dist-sorted SoA stream in 4-lane blocks: the vectorized
    // scan finds the Lemma 5.3 budget break, the floor filter drops
    // provably-pruned lanes (counted as cand_simd_skipped, never
    // consume()d) and surviving lanes go through the unchanged decision
    // logic, so the skyline trajectory is bit-identical to a scalar replay.
    const auto replay = [&](const CandidateSpan& s) {
      uint32_t i = 0;
      while (i < s.size) {
        const Weight b = budget();
        if (s.size - i >= kCandidateBlock) {
          const uint32_t in_budget = ScanCandidateBlock4(s.dist + i, b);
          for (uint32_t j = 0; j < in_budget; ++j) {
            const uint32_t at = i + j;
            consume_filtered(
                ExpansionCandidate{s.vertex[at], s.dist[at], s.sim[at]});
          }
          // A partial in-budget prefix means the blocking lane's dist
          // reached the budget; the stream is dist-sorted and budgets only
          // shrink, so the replay is over.
          if (in_budget < kCandidateBlock) return;
          i += kCandidateBlock;
        } else {
          // Scalar tail (< 4 lanes left): the identical predicates, so
          // counters don't depend on where block boundaries fall.
          if (s.dist[i] >= b) return;
          consume_filtered(ExpansionCandidate{s.vertex[i], s.dist[i],
                                              s.sim[i]});
          ++i;
        }
      }
    };

    const bool use_bucket = bucket_backend;
    bool is_rerun = false;
    if (options.use_cache) {
      const MdijkstraCache::Entry* entry = cache.Find(src, m);
      if (entry != nullptr && (entry->meta.exhausted ||
                               entry->meta.covered_radius >= budget())) {
        ++stats.mdijkstra_cache_hits;
        if (exp != nullptr) {
          ++exp->positions[static_cast<size_t>(m)].cache_replays;
        }
        replay(cache.CandidatesOf(*entry));
        return;
      }
      if (entry != nullptr) {
        ++stats.cache_reruns;
        is_rerun = true;
      }
    }

    if (use_bucket) {
      // Bucket backend: materialize the (dist, vertex)-ordered matching
      // stream up to the current budget — or exhaustively, when the budget
      // prunes nothing — then stream it with the budget re-checked between
      // candidates, exactly like a cache replay. The committed entry
      // carries the scan's coverage, so repeats and reruns follow the
      // standard cache protocol (an exhausted commit never reruns).
      ++stats.retriever_bucket_runs;
      if (exp != nullptr) {
        ++exp->positions[static_cast<size_t>(m)].bucket_runs;
      }
      TraceSpan retrieval_span(trace, TracePhase::kRetrieval);
      // First scans cap the exact-resum work at the current budget; a rerun
      // means the budget grew past a capped scan, so it goes exhaustive —
      // at most two scans per (source, position), ever.
      const ExpansionOutcome outcome =
          bucket->Collect(src, matcher, ws_.oracle_ws, ws_.bucket_scan,
                          is_rerun ? kInfWeight : budget(), &stats, xc);
      const std::vector<ExpansionCandidate>& cands = ws_.bucket_scan.cands;
      if (options.use_cache) {
        CandidateSoA& pool = cache.pool();
        const size_t pool_offset = pool.size();
        pool.Append(cands);
        cache.Commit(src, m, pool_offset, outcome);
        replay(pool.Span(pool_offset, cands.size()));
      } else {
        for (const ExpansionCandidate& cand : cands) {
          if (cand.dist >= budget()) break;
          consume_filtered(cand);
        }
      }
      return;
    }

    // Resumable backend: one suspended search per hot source serves every
    // position; a budget beyond the suspended coverage extends the search
    // incrementally instead of re-settling its prefix. Falls through to the
    // classic path when the slot pool is at capacity.
    ResumableSlot* slot = nullptr;
    if (resume_backend) slot = resume_pool.FindOrCreate(*g_, src);
    if (slot != nullptr) {
      ++stats.retriever_resume_runs;
      if (exp != nullptr) {
        ++exp->positions[static_cast<size_t>(m)].resume_runs;
      }
      TraceSpan retrieval_span(trace, TracePhase::kRetrieval);
      DijkstraRunStats run_stats;
      CandidateSoA* out = options.use_cache ? &cache.pool() : nullptr;
      const size_t pool_offset =
          options.use_cache ? cache.pool().size() : 0;
      const ExpansionOutcome outcome = RetrieveResumable(
          *g_, matcher, *slot, budget, consume_filtered, out, &run_stats);
      stats.vertices_settled += run_stats.settled;
      stats.edges_relaxed += run_stats.relaxed;
      stats.weight_sum += run_stats.weight_sum;
      if (options.use_cache) cache.Commit(src, m, pool_offset, outcome);
      return;
    }

    if (options.use_cache) {
      // Cross-position reuse: in deferred-Lemma-5.5 mode the traversal from
      // `src` is matcher-independent, so a settle sequence recorded by ANY
      // position's search replays for this one — a linear scan instead of a
      // Dijkstra (see settle_log.h for the exactness argument).
      if (needs_deferred_lemma55) {
        const SettleLog::Entry* log = slog.Find(src);
        if (log != nullptr && (log->meta.exhausted ||
                               log->meta.covered_radius >= budget())) {
          ++stats.settle_log_replays;
          if (exp != nullptr) {
            ++exp->positions[static_cast<size_t>(m)].settle_log_replays;
          }
          CandidateSoA& pool = cache.pool();
          const size_t pool_offset = pool.size();
          Weight break_dist = kInfWeight;
          bool stopped = false;
          for (const SettleRecord& rec : slog.RecordsOf(*log)) {
            if (rec.dist >= budget()) {
              break_dist = rec.dist;
              stopped = true;
              break;
            }
            const double sim = matcher.SimOfVertex(rec.vertex);
            if (sim > 0) {
              const ExpansionCandidate cand{rec.vertex, rec.dist, sim};
              pool.push_back(cand);
              consume_filtered(cand);
            }
          }
          // The replay can never prove more coverage than the log itself:
          // a relax-refusal-capped log has finite coverage with no breaking
          // record, so consuming it fully is NOT exhaustion.
          const Weight covered =
              stopped ? std::min(break_dist, log->meta.covered_radius)
                      : log->meta.covered_radius;
          cache.Commit(src, m, pool_offset,
                       ExpansionOutcome{covered, covered == kInfWeight});
          return;
        }
      }
    }

    ++stats.mdijkstra_runs;
    if (exp != nullptr) {
      ++exp->positions[static_cast<size_t>(m)].fresh_searches;
    }
    TraceSpan retrieval_span(trace, TracePhase::kRetrieval);
    DijkstraRunStats run_stats;
    // Candidates stream into the cache's shared pool (no per-expansion
    // vector); with caching off, nothing is collected at all. The settle
    // sequence is recorded for cross-position replay in deferred mode.
    CandidateSoA* out = options.use_cache ? &cache.pool() : nullptr;
    const size_t pool_offset = options.use_cache ? cache.pool().size() : 0;
    std::vector<SettleRecord>* slog_out =
        (options.use_cache && needs_deferred_lemma55) ? &slog.pool()
                                                      : nullptr;
    const size_t slog_offset = slog_out != nullptr ? slog_out->size() : 0;
    const ExpansionOutcome outcome =
        RunExpansionInto(*g_, matcher, src, budget, !needs_deferred_lemma55,
                         ws_.expansion, out, consume_filtered, &run_stats,
                         slog_out);
    stats.vertices_settled += run_stats.settled;
    stats.edges_relaxed += run_stats.relaxed;
    stats.weight_sum += run_stats.weight_sum;
    if (stats.mdijkstra_runs == 1) {
      stats.first_search_weight_sum = run_stats.weight_sum;
    }
    if (options.use_cache) {
      cache.Commit(src, m, pool_offset, outcome);
      if (slog_out != nullptr) {
        // Keep log coverage monotone: a rebuild whose budget collapsed
        // mid-search (skyline tightened) can cover LESS than the entry it
        // would replace; the higher-coverage log is still valid for every
        // future replay, so keep it (the new records stay orphaned in the
        // pool until Clear, bounded by the search work just done).
        const SettleLog::Entry* prev = slog.Find(src);
        const bool improves =
            prev == nullptr ||
            (!prev->meta.exhausted &&
             (outcome.exhausted ||
              outcome.covered_radius > prev->meta.covered_radius));
        if (improves) slog.Commit(src, slog_offset, outcome);
      }
    }
  };

  // Algorithm 1: seed with the first expansion, then drain Q_b. The
  // wall-clock budget is polled every kTimeoutCheckInterval dequeues (and
  // not at all for the default infinite budget).
  expand(RouteArena::kEmpty);
  const bool has_time_budget = std::isfinite(options.time_budget_seconds);
  int64_t pops_until_timeout_check = 0;
  TraceSpan drain_span(trace, TracePhase::kQbDrain);
  while (!qb.empty()) {
    if (has_time_budget && --pops_until_timeout_check < 0) {
      pops_until_timeout_check = kTimeoutCheckInterval - 1;
      if (timer.ElapsedSeconds() > options.time_budget_seconds) {
        stats.timed_out = true;
        break;
      }
    }
    const QbEntry entry = qb.pop();
    ++stats.routes_dequeued;
    const RouteArena::Node& nd = arena.node(entry.node);
    if (policy.ShouldPrunePartial(nd.acc, nd.length, nd.size)) {
      ++stats.routes_pruned;
      continue;
    }
    // Dequeue-time dominance: a strictly better permutation of the same
    // PoI set may have been recorded AFTER this route was enqueued.
    if (use_qb_dominance && nd.size >= 3 &&
        ws_.qb_dom.DominatedAtDequeue(arena, entry.node)) {
      ++stats.qb_dominance_pruned;
      continue;
    }
    expand(entry.node);
  }
  drain_span.Close();

  stats.peak_queue_size = static_cast<int64_t>(qb.peak_size());
  stats.route_nodes = arena.num_nodes();
  stats.logical_peak_bytes =
      arena.MemoryBytes() +
      static_cast<int64_t>(qb.peak_size() * sizeof(QbEntry)) +
      skyline.MemoryBytes() + cache.MemoryBytes() + slog.MemoryBytes() +
      ws_.qb_dom.MemoryBytes() + ws_.prune_floors.MemoryBytes();

  if (exp != nullptr) {
    if (xc != nullptr) {
      const SharedCacheCounters xc_after = xc->Counters();
      exp->fwd_search.hits = xc_after.fwd_hits - xc_before.fwd_hits;
      exp->fwd_search.misses = xc_after.fwd_misses - xc_before.fwd_misses;
      exp->fwd_search.bytes = xc->ResidentBytes();
      exp->resume_slots.hits =
          xc_after.resume_reuses - xc_before.resume_reuses;
      exp->resume_slots.misses =
          xc_after.resume_evictions - xc_before.resume_evictions;
    }
    exp->pruned_threshold = stats.cand_pruned_threshold;
    exp->pruned_floor = stats.cand_pruned_floor;
    exp->pruned_qb_dominance = stats.qb_dominance_pruned;
    exp->simd_floor_skips = stats.cand_simd_skipped;
    exp->cand_pruned = stats.cand_pruned;
  }

  stats.skyline_size = skyline.size();
  result.routes = skyline.TakeRoutes();  // move, not deep copy
  if (trace != nullptr) {
    query_span.Close();  // the root span must land before the aggregate cut
    stats.phases = trace->aggregates().DiffSince(phases_before);
  }
  stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

void BssrEngine::ComputeDestTails(VertexId destination,
                                  std::vector<Weight>* out) {
  const Graph* search_graph = g_;
  if (g_->directed()) {
    if (reversed_ == nullptr) {
      reversed_ = std::make_unique<const Graph>(ReverseOf(*g_));
    }
    search_graph = reversed_.get();
  }
  out->assign(static_cast<size_t>(g_->num_vertices()), kInfWeight);
  RunDijkstra(*search_graph, destination, ws_.dijkstra_ws,
              [&](VertexId v, Weight d, VertexId) {
                (*out)[static_cast<size_t>(v)] = d;
                return VisitAction::kContinue;
              });
}

std::vector<Result<QueryResult>> BssrEngine::RunGroup(
    std::span<const GroupQuery> items) {
  std::vector<Result<QueryResult>> out;
  out.reserve(items.size());
  if (items.empty()) return out;

  // One tail table per distinct destination, fetched through the shared
  // provider (or computed) once and held until the group finishes. Run()
  // reads group_tails_ first, so members never re-probe the LRU. The values
  // are exactly what per-query GetOrCompute would have returned.
  group_tails_.clear();
  if (dest_tails_ != nullptr) {
    for (const GroupQuery& item : items) {
      if (item.query == nullptr || !item.query->destination) continue;
      const VertexId dest = *item.query->destination;
      bool held = false;
      for (const auto& gt : group_tails_) {
        if (gt.first == dest) {
          held = true;
          break;
        }
      }
      if (held) continue;
      group_tails_.emplace_back(
          dest, dest_tails_->GetOrCompute(dest, [&](std::vector<Weight>* t) {
            ComputeDestTails(dest, t);
          }));
    }
  }

  // Without an engine-lifetime cache, a transient group-scoped one makes
  // the first member's forward search (and bucket upward search) serve the
  // rest. Invalidate() at group start keeps it strictly group-scoped; the
  // binding is established once (AttachSharedCache computes the warm-state
  // checksum) and survives invalidation.
  SharedQueryCache* const attached = xcache_;
  if (attached == nullptr) {
    if (group_cache_ == nullptr) {
      group_cache_ = std::make_unique<SharedQueryCache>();
      AttachSharedCache(group_cache_.get());
    } else {
      group_cache_->Invalidate();
      xcache_ = group_cache_.get();
    }
  }

  // Pin the group's canonical source so member inserts can never evict the
  // shared entry mid-group. Victim choice only — results are unaffected.
  xcache_->fwd_cache().PinSource(items.front().query != nullptr
                                     ? items.front().query->start
                                     : kInvalidVertex);

  for (const GroupQuery& item : items) {
    if (item.query == nullptr || item.options == nullptr) {
      out.push_back(Result<QueryResult>(
          Status::InvalidArgument("null group query")));
      continue;
    }
    out.push_back(Run(*item.query, *item.options));
    // Group context: every executed member leads its own flight (the
    // batching front door detaches coalesced followers before RunGroup);
    // the service layer overrides the batch id and follower copies.
    Result<QueryResult>& r = out.back();
    if (r.ok() && r->explain != nullptr) {
      r->explain->group_size = static_cast<int64_t>(items.size());
      r->explain->role = "leader";
    }
  }

  xcache_->fwd_cache().UnpinSource();
  if (attached == nullptr) xcache_ = nullptr;
  group_tails_.clear();
  return out;
}

}  // namespace skysr

// Instrumentation counters collected by every engine. Each counter feeds one
// of the paper's tables/figures (see DESIGN.md §3).

#ifndef SKYSR_CORE_SEARCH_STATS_H_
#define SKYSR_CORE_SEARCH_STATS_H_

#include <cstdint>
#include <limits>
#include <string>

#include "graph/types.h"
#include "obs/trace_phase.h"

namespace skysr {

/// Counters for a single query execution.
struct SearchStats {
  // Overall.
  double elapsed_ms = 0;
  bool timed_out = false;
  int64_t skyline_size = 0;

  // Graph-search effort (Table 8, Figure 5, Table 7).
  int64_t mdijkstra_runs = 0;        // expansion searches actually executed
  int64_t mdijkstra_cache_hits = 0;  // expansions served from cache
  int64_t cache_reruns = 0;          // cache entries rebuilt with larger radius
  int64_t settle_log_replays = 0;    // candidate lists built by log replay
  int64_t vertices_settled = 0;      // all searches of this query
  int64_t edges_relaxed = 0;

  // PoI-retrieval subsystem (src/retrieval/).
  int64_t retriever_bucket_runs = 0;  // expansions answered by bucket scans
  int64_t retriever_resume_runs = 0;  // expansions served by resumable slots
  int64_t bucket_fwd_searches = 0;    // forward upward searches run
  int64_t bucket_fwd_reuses = 0;      // forward searches replayed from cache
  int64_t bucket_candidates = 0;      // candidates materialized by scans
  double weight_sum = 0;              // all searches (search-space proxy)
  double first_search_weight_sum = 0; // the first modified Dijkstra only

  // NNinit (§5.3.1, Table 7).
  double nninit_ms = 0;
  int64_t nninit_routes = 0;
  double nninit_weight_sum = 0;
  Weight nninit_perfect_length = std::numeric_limits<Weight>::infinity();
  Weight nninit_max_semantic_length =
      std::numeric_limits<Weight>::infinity();  // route w/ largest semantic

  // Lower bounds (§5.3.3, Figure 4).
  double lb_ms = 0;
  Weight ls_total = 0;  // sum of finite semantic-match leg bounds
  Weight lp_total = 0;  // sum of finite perfect-match leg bounds

  // Bulk queue (§5.3.2).
  int64_t routes_enqueued = 0;
  int64_t cand_examined = 0;   // consume() invocations (replay + search)
  int64_t cand_rejected = 0;   // Definition 3.4(iii) duplicate-PoI rejects
  int64_t cand_pruned = 0;     // partial-route candidates pruned pre-enqueue
  // Attribution split of cand_pruned (DESIGN.md §9): threshold-comparison
  // prunes (Lemma 5.3/5.8 length tests) vs memoized prune-floor
  // short-circuits. Invariant: threshold + floor == cand_pruned.
  int64_t cand_pruned_threshold = 0;
  int64_t cand_pruned_floor = 0;
  int64_t cand_simd_skipped = 0;  // replay candidates skipped by the
                                  // hot-floor block scan, never consume()d
  int64_t qb_dominance_pruned = 0;  // routes dropped by the Q_b dominance
                                    // store (enqueue- and dequeue-time)
  int64_t routes_dequeued = 0;
  int64_t routes_pruned = 0;  // pruned at dequeue by the threshold
  int64_t peak_queue_size = 0;
  int64_t route_nodes = 0;  // arena nodes allocated

  // Logical memory model (Table 6 companion to process RSS).
  int64_t logical_peak_bytes = 0;

  // Per-phase wall-time aggregates from the tracing subsystem (src/obs/).
  // All-zero — and ignored by every consumer — unless the engine ran with
  // an enabled QueryTrace attached; timing, never part of the deterministic
  // work-counter contract.
  PhaseAggregates phases;

  /// Multi-line human-readable dump (phase aggregates appended only when
  /// tracing populated them).
  std::string ToString() const;
};

}  // namespace skysr

#endif  // SKYSR_CORE_SEARCH_STATS_H_

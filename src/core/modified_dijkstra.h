// The modified Dijkstra of Algorithm 2: expands from the end of a partial
// route and emits every PoI that semantically matches the next position,
// pruning with Lemma 5.3 (dynamic budget) and Lemma 5.5 (on-path blockers,
// perfect-match traversal cut).
//
// The search produces a CandidateList — (vertex, distance, similarity)
// triples in non-decreasing distance order — which doubles as the value
// stored by the on-the-fly cache (§5.3.4). Emission is also streamed to a
// callback so that complete routes can tighten the skyline threshold while
// the search is still running (the paper's Algorithm 2 updates S inline).
//
// Lemma 5.5 soundness (see DESIGN.md): substituting the on-path blocker for
// the candidate requires the blocker to be usable at this position — it must
// appear neither earlier in the route nor at any later position of any
// completion. Both are guaranteed exactly when every query position targets
// pairwise-distinct trees and all PoIs carry a single category; the engine
// passes apply_lemma55 = true only then. Otherwise candidates are emitted
// unfiltered and traversal does not stop at perfect matches — slower, still
// exact.

#ifndef SKYSR_CORE_MODIFIED_DIJKSTRA_H_
#define SKYSR_CORE_MODIFIED_DIJKSTRA_H_

#include <functional>
#include <vector>

#include "core/query.h"
#include "graph/dijkstra_runner.h"
#include "graph/graph.h"
#include "util/stamped_array.h"

namespace skysr {

/// One PoI vertex found by an expansion search.
struct ExpansionCandidate {
  VertexId vertex;
  Weight dist;
  double sim;
};

/// Result of one expansion search; also the cache value type.
struct CandidateList {
  std::vector<ExpansionCandidate> candidates;  // non-decreasing dist
  /// Candidates with dist < covered_radius are complete; a later consumer
  /// needing a larger radius must re-run the search.
  Weight covered_radius = 0;
  /// The whole reachable region was searched (covered_radius is unbounded).
  bool exhausted = false;

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(candidates.capacity() *
                                sizeof(ExpansionCandidate));
  }
};

/// Scratch arrays reusable across expansion searches of one engine.
struct ExpansionScratch {
  DijkstraWorkspace ws;
  StampedArray<double> max_sim_on_path;  // Lemma 5.5 inline state
};

/// Runs the expansion from `source` for one sequence position.
///
/// `budget_fn` is re-evaluated at every settle and returns the current
/// maximum useful distance (Lemma 5.3); it may shrink while the search runs
/// as the consumer tightens the skyline. `on_candidate` is invoked for each
/// emitted candidate in non-decreasing distance order.
CandidateList RunExpansion(
    const Graph& g, const PositionMatcher& matcher, VertexId source,
    const std::function<Weight()>& budget_fn, bool apply_lemma55,
    ExpansionScratch& scratch,
    const std::function<void(const ExpansionCandidate&)>& on_candidate,
    DijkstraRunStats* stats_out);

}  // namespace skysr

#endif  // SKYSR_CORE_MODIFIED_DIJKSTRA_H_

// The modified Dijkstra of Algorithm 2: expands from the end of a partial
// route and emits every PoI that semantically matches the next position,
// pruning with Lemma 5.3 (dynamic budget) and Lemma 5.5 (on-path blockers,
// perfect-match traversal cut).
//
// The search emits (vertex, distance, similarity) triples in non-decreasing
// distance order, streamed to a callback so that complete routes can tighten
// the skyline threshold while the search is still running (the paper's
// Algorithm 2 updates S inline), and optionally appended to a caller-owned
// candidate vector — the storage behind the on-the-fly cache (§5.3.4).
//
// RunExpansionInto is a template over both callbacks so the budget check and
// candidate consumption inline into the Dijkstra loop (no type-erased call
// per settled vertex). RunExpansion is the thin std::function wrapper kept
// for call sites that need an ABI boundary (and for unit tests of the
// wrapper itself); the engine's hot path uses the template directly.
//
// Lemma 5.5 soundness (see DESIGN.md): substituting the on-path blocker for
// the candidate requires the blocker to be usable at this position — it must
// appear neither earlier in the route nor at any later position of any
// completion. Both are guaranteed exactly when every query position targets
// pairwise-distinct trees and all PoIs carry a single category; the engine
// passes apply_lemma55 = true only then. Otherwise candidates are emitted
// unfiltered and traversal does not stop at perfect matches — slower, still
// exact.

#ifndef SKYSR_CORE_MODIFIED_DIJKSTRA_H_
#define SKYSR_CORE_MODIFIED_DIJKSTRA_H_

#include <functional>
#include <vector>

#include "core/candidate_stream.h"
#include "core/query.h"
#include "graph/dijkstra_runner.h"
#include "graph/graph.h"
#include "util/stamped_array.h"

namespace skysr {

// ExpansionCandidate (and the SoA pool replays scan) lives in
// core/candidate_stream.h; included above so existing call sites keep
// working unchanged.

/// Result of one expansion search; also the cache value type of the legacy
/// owning API.
struct CandidateList {
  std::vector<ExpansionCandidate> candidates;  // non-decreasing dist
  /// Candidates with dist < covered_radius are complete; a later consumer
  /// needing a larger radius must re-run the search.
  Weight covered_radius = 0;
  /// The whole reachable region was searched (covered_radius is unbounded).
  bool exhausted = false;

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(candidates.capacity() *
                                sizeof(ExpansionCandidate));
  }
};

/// Coverage metadata of one expansion search (the candidates themselves go
/// to the caller's vector / callback).
struct ExpansionOutcome {
  Weight covered_radius = 0;
  bool exhausted = false;
};

/// One settled vertex of an expansion search, in settle order. Recorded
/// (including the budget-breaking settle) when the caller wants to replay
/// the traversal for another sequence position (see core/settle_log.h).
struct SettleRecord {
  VertexId vertex;
  Weight dist;
};

/// Scratch arrays reusable across expansion searches of one engine.
struct ExpansionScratch {
  DijkstraWorkspace ws;
  StampedArray<double> max_sim_on_path;  // Lemma 5.5 inline state
};

/// Runs the expansion from `source` for one sequence position.
///
/// `budget_fn` is re-evaluated at every settle and returns the current
/// maximum useful distance (Lemma 5.3); it may shrink while the search runs
/// as the consumer tightens the skyline. `on_candidate` is invoked for each
/// emitted candidate in non-decreasing distance order. When `out` is
/// non-null every emitted candidate is also appended to it (cache fill into
/// the SoA pool); null skips collection entirely (cache-off ablations).
/// When `settle_log`
/// is non-null every settle — including the budget-breaking one — is
/// appended to it so the traversal can later be replayed for other
/// positions (sound only without Lemma 5.5 cuts; the engine passes it only
/// in deferred mode).
///
/// Both callbacks are taken by forwarding reference and invoked directly —
/// a stateful budget functor passed as an lvalue keeps its memo across the
/// whole search.
template <typename BudgetFn, typename OnCandidate>
ExpansionOutcome RunExpansionInto(const Graph& g,
                                  const PositionMatcher& matcher,
                                  VertexId source, BudgetFn&& budget_fn,
                                  bool apply_lemma55,
                                  ExpansionScratch& scratch,
                                  CandidateSoA* out,
                                  OnCandidate&& on_candidate,
                                  DijkstraRunStats* stats_out,
                                  std::vector<SettleRecord>* settle_log =
                                      nullptr) {
  ExpansionOutcome outcome;
  Weight break_dist = kInfWeight;
  bool stopped = false;

  // Per-vertex Lemma 5.5 state: the maximum similarity of any
  // semantically-matching PoI on the path from `source` (source excluded,
  // the vertex itself included). A candidate consults its PARENT's state,
  // which excludes the candidate itself.
  if (apply_lemma55) {
    scratch.max_sim_on_path.Prepare(g.num_vertices(), 0.0);
  }

  const auto emit = [&](VertexId v, Weight d, double sim) {
    const ExpansionCandidate cand{v, d, sim};
    if (out != nullptr) out->push_back(cand);
    on_candidate(cand);
  };

  // The budget also bounds relaxation: tentative distances at or beyond it
  // are refused instead of enqueued (they could never settle inside the
  // budget), trading heap traffic for a coverage cap via `min_refused`.
  Weight min_refused = kInfWeight;
  const SourceSeed seed{source, 0};
  DijkstraRunStats stats = RunDijkstraBounded(
      g, std::span<const SourceSeed>(&seed, 1), scratch.ws,
      [&](VertexId v, Weight d, VertexId parent) {
        if (settle_log != nullptr) settle_log->push_back(SettleRecord{v, d});
        // Lemma 5.3: distances are non-decreasing and the budget is
        // non-increasing, so the first settle past the budget ends the
        // search.
        const Weight budget = budget_fn();
        if (d >= budget) {
          break_dist = d;
          stopped = true;
          return VisitAction::kStop;
        }

        // The source itself may host a matching PoI (e.g. a query starting
        // at a PoI vertex); route-membership filtering is the consumer's
        // job, so no special-case here.
        const double sim = matcher.SimOfVertex(v);

        if (!apply_lemma55) {
          if (sim > 0) emit(v, d, sim);
          return VisitAction::kContinue;
        }

        double inherited = 0.0;
        if (parent != kInvalidVertex) {
          inherited = scratch.max_sim_on_path.Get(parent);
        }
        if (sim > 0 && inherited < sim) {
          // Lemma 5.5(i): emit only candidates not preceded by a
          // better-or-equal match.
          emit(v, d, sim);
        }
        scratch.max_sim_on_path.Set(v, sim > inherited ? sim : inherited);
        // Lemma 5.5(ii): nothing useful lies beyond a perfect match.
        if (sim == 1.0) return VisitAction::kSkipExpand;
        return VisitAction::kContinue;
      },
      budget_fn, &min_refused);

  Weight covered = stopped ? break_dist : kInfWeight;
  if (min_refused < covered) covered = min_refused;
  outcome.covered_radius = covered;
  outcome.exhausted = covered == kInfWeight;
  if (stats_out != nullptr) *stats_out += stats;
  return outcome;
}

/// Type-erased wrapper returning an owning CandidateList. One std::function
/// call per settle/candidate — use RunExpansionInto in hot paths.
CandidateList RunExpansion(
    const Graph& g, const PositionMatcher& matcher, VertexId source,
    const std::function<Weight()>& budget_fn, bool apply_lemma55,
    ExpansionScratch& scratch,
    const std::function<void(const ExpansionCandidate&)>& on_candidate,
    DijkstraRunStats* stats_out);

}  // namespace skysr

#endif  // SKYSR_CORE_MODIFIED_DIJKSTRA_H_

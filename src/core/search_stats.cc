#include "core/search_stats.h"

#include <cstdio>

namespace skysr {

std::string SearchStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "elapsed=%.3fms%s skyline=%lld\n"
      "searches: runs=%lld cache_hits=%lld reruns=%lld log_replays=%lld "
      "settled=%lld relaxed=%lld weight_sum=%.4f first_weight_sum=%.4f\n"
      "candidates: examined=%lld pruned=%lld (th=%lld floor=%lld) "
      "dup_rejected=%lld simd_skipped=%lld\n"
      "retrieval: bucket_runs=%lld resume_runs=%lld fwd_searches=%lld "
      "fwd_reuses=%lld bucket_cands=%lld\n"
      "nninit: %.3fms routes=%lld weight_sum=%.4f perfect_len=%.4f "
      "max_sem_len=%.4f\n"
      "bounds: %.3fms ls=%.4f lp=%.4f\n"
      "queue: enq=%lld deq=%lld pruned=%lld dom_pruned=%lld peak=%lld "
      "nodes=%lld logical_bytes=%lld",
      elapsed_ms, timed_out ? " TIMED-OUT" : "",
      static_cast<long long>(skyline_size),
      static_cast<long long>(mdijkstra_runs),
      static_cast<long long>(mdijkstra_cache_hits),
      static_cast<long long>(cache_reruns),
      static_cast<long long>(settle_log_replays),
      static_cast<long long>(vertices_settled),
      static_cast<long long>(edges_relaxed), weight_sum,
      first_search_weight_sum, static_cast<long long>(cand_examined),
      static_cast<long long>(cand_pruned),
      static_cast<long long>(cand_pruned_threshold),
      static_cast<long long>(cand_pruned_floor),
      static_cast<long long>(cand_rejected),
      static_cast<long long>(cand_simd_skipped),
      static_cast<long long>(retriever_bucket_runs),
      static_cast<long long>(retriever_resume_runs),
      static_cast<long long>(bucket_fwd_searches),
      static_cast<long long>(bucket_fwd_reuses),
      static_cast<long long>(bucket_candidates), nninit_ms,
      static_cast<long long>(nninit_routes), nninit_weight_sum,
      nninit_perfect_length, nninit_max_semantic_length, lb_ms, ls_total,
      lp_total, static_cast<long long>(routes_enqueued),
      static_cast<long long>(routes_dequeued),
      static_cast<long long>(routes_pruned),
      static_cast<long long>(qb_dominance_pruned),
      static_cast<long long>(peak_queue_size),
      static_cast<long long>(route_nodes),
      static_cast<long long>(logical_peak_bytes));
  std::string out = buf;
  if (!phases.empty()) {
    out += "\nphases:";
    for (int i = 0; i < kNumTracePhases; ++i) {
      if (phases.phase[i].count == 0) continue;
      std::snprintf(buf, sizeof(buf), " %s=%.3fms/%lld",
                    kTracePhaseNames[i],
                    static_cast<double>(phases.phase[i].total_ns) / 1e6,
                    static_cast<long long>(phases.phase[i].count));
      out += buf;
    }
  }
  return out;
}

}  // namespace skysr

#include "core/route.h"

#include <algorithm>
#include <cstdio>

namespace skysr {

std::vector<PoiId> RouteArena::Materialize(int32_t idx) const {
  std::vector<PoiId> pois;
  MaterializeInto(idx, &pois);
  return pois;
}

void RouteArena::MaterializeInto(int32_t idx, std::vector<PoiId>* out) const {
  out->clear();
  for (int32_t cur = idx; cur != kEmpty;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    out->push_back(nodes_[static_cast<size_t>(cur)].poi);
  }
  std::reverse(out->begin(), out->end());
}

std::string RouteToString(const Graph& g, const Route& route) {
  std::string out;
  for (size_t i = 0; i < route.pois.size(); ++i) {
    if (i > 0) out += " -> ";
    const std::string& name = g.PoiName(route.pois[i]);
    if (name.empty()) {
      out += "poi#" + std::to_string(route.pois[i]);
    } else {
      out += name;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  (length=%.3f, semantic=%.4f)",
                route.scores.length, route.scores.semantic);
  out += buf;
  return out;
}

}  // namespace skysr

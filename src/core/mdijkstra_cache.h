// On-the-fly caching (§5.3.4): memoizes expansion-search results keyed by
// (source vertex, sequence position) for the duration of ONE query. BSSR
// frequently re-expands the same PoI vertex for the same next category; the
// cached candidates replace the whole graph search. Entries whose covered
// radius is too small for a later, larger budget are rebuilt and replaced.
// The cache is cleared when the query finishes — the paper notes the search
// spaces of different queries rarely overlap.
//
// Storage is allocation-free in steady state: a stamped span table (see
// util/stamped_span_table.h) holds (offset, count) spans into one shared
// candidate pool — no owning vector per entry, O(1) clear per query. The
// pool is a CandidateSoA: vertex/dist/sim live in separate flat arrays so
// replays can run the vectorized block scan of core/candidate_stream.h over
// dense dist/sim columns.

#ifndef SKYSR_CORE_MDIJKSTRA_CACHE_H_
#define SKYSR_CORE_MDIJKSTRA_CACHE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/candidate_stream.h"
#include "core/modified_dijkstra.h"
#include "graph/types.h"
#include "util/stamped_span_table.h"

namespace skysr {

/// Per-query memo of expansion searches. Entry metadata is the search's
/// ExpansionOutcome: entry->meta.covered_radius / entry->meta.exhausted.
class MdijkstraCache {
  using Table =
      StampedSpanTable<ExpansionCandidate, ExpansionOutcome, CandidateSoA>;

 public:
  using Entry = Table::Entry;

  /// Cached entry for (source, position), or nullptr.
  const Entry* Find(VertexId source, int position) const {
    return table_.Find(KeyOf(source, position));
  }

  /// The candidates of a found entry, in non-decreasing distance order, as
  /// an SoA view over the shared pool.
  CandidateSpan CandidatesOf(const Entry& e) const {
    return table_.pool().Span(e.offset, e.count);
  }

  /// The shared candidate pool. An expansion search appends its candidates
  /// here (remember the pool size beforehand), then Commit()s the span.
  CandidateSoA& pool() { return table_.pool(); }
  const CandidateSoA& pool() const { return table_.pool(); }

  /// Inserts or replaces the entry for (source, position), whose candidates
  /// are pool()[pool_offset..end).
  void Commit(VertexId source, int position, size_t pool_offset,
              const ExpansionOutcome& outcome) {
    table_.Commit(KeyOf(source, position), pool_offset, outcome);
  }

  /// Legacy owning-list insert, kept for tests and non-hot call sites:
  /// appends the list's candidates to the pool and commits them.
  void Put(VertexId source, int position, CandidateList&& list) {
    const size_t offset = pool().size();
    pool().Append(list.candidates);
    Commit(source, position, offset,
           ExpansionOutcome{list.covered_radius, list.exhausted});
  }

  void Clear() { table_.Clear(); }
  int64_t size() const { return table_.size(); }
  int64_t replacements() const { return table_.replacements(); }
  int64_t MemoryBytes() const { return table_.MemoryBytes(); }

 private:
  static uint64_t KeyOf(VertexId source, int position) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 16) |
           static_cast<uint64_t>(static_cast<uint32_t>(position) & 0xffff);
  }

  Table table_;
};

}  // namespace skysr

#endif  // SKYSR_CORE_MDIJKSTRA_CACHE_H_

// On-the-fly caching (§5.3.4): memoizes expansion-search results keyed by
// (source vertex, sequence position) for the duration of ONE query. BSSR
// frequently re-expands the same PoI vertex for the same next category; the
// cached CandidateList replaces the whole graph search. Entries whose
// covered radius is too small for a later, larger budget are rebuilt and
// replaced. The cache is cleared when the query finishes — the paper notes
// the search spaces of different queries rarely overlap.

#ifndef SKYSR_CORE_MDIJKSTRA_CACHE_H_
#define SKYSR_CORE_MDIJKSTRA_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "core/modified_dijkstra.h"
#include "graph/types.h"

namespace skysr {

/// Per-query memo of expansion searches.
class MdijkstraCache {
 public:
  /// Cached list for (source, position), or nullptr.
  const CandidateList* Find(VertexId source, int position) const {
    const auto it = entries_.find(KeyOf(source, position));
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Inserts or replaces the entry, returning a stable pointer to it.
  const CandidateList* Put(VertexId source, int position,
                           CandidateList&& list) {
    auto [it, inserted] = entries_.insert_or_assign(KeyOf(source, position),
                                                    std::move(list));
    if (!inserted) ++replacements_;
    return &it->second;
  }

  void Clear() { entries_.clear(); }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t replacements() const { return replacements_; }

  int64_t MemoryBytes() const {
    int64_t bytes = 0;
    for (const auto& [k, v] : entries_) bytes += 64 + v.MemoryBytes();
    return bytes;
  }

 private:
  static uint64_t KeyOf(VertexId source, int position) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 16) |
           static_cast<uint64_t>(static_cast<uint32_t>(position) & 0xffff);
  }

  std::unordered_map<uint64_t, CandidateList> entries_;
  int64_t replacements_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_CORE_MDIJKSTRA_CACHE_H_

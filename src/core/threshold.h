// Branch-and-bound pruning policy: combines the skyline threshold
// (Definition 5.4 / Lemma 5.3) with the lower bounds of §5.3.3 and the
// conditional perfect-match pruning of Lemma 5.8.

#ifndef SKYSR_CORE_THRESHOLD_H_
#define SKYSR_CORE_THRESHOLD_H_

#include <cstdint>
#include <span>

#include "category/similarity.h"
#include "core/lower_bound.h"
#include "core/skyline_set.h"

namespace skysr {

/// Pruning decisions against a live SkylineSet. `sigma_max_suffix[m]` must
/// hold the largest non-perfect similarity over positions m..k-1 (input to
/// δ); `k` is the sequence size. The span is borrowed — the caller keeps the
/// storage alive for the policy's lifetime (the engine parks it in its
/// query workspace).
///
/// Threshold lookups are memoized per skyline generation: the staircase
/// binary search reruns only when the skyline actually changed or a
/// different semantic score is probed, which removes the dominant per-settle
/// / per-candidate cost of the expansion loops. The memo is a plain
/// single-threaded mutable cache — the policy, like the engine, is
/// one-per-thread.
class ThresholdPolicy {
 public:
  ThresholdPolicy(const SkylineSet& skyline, const SemanticAggregator& agg,
                  const LowerBounds* lb /* null disables lower bounds */,
                  std::span<const double> sigma_max_suffix, int k)
      : skyline_(&skyline),
        agg_(agg),
        lb_(lb),
        sigma_max_suffix_(sigma_max_suffix),
        k_(k) {}

  const SkylineSet& skyline() const { return *skyline_; }

  /// Break budget for an expansion out of a partial route of size m with
  /// length `len` and semantic accumulator `acc` (Algorithm 2, line 8):
  /// candidates at distance >= budget cannot lead to skyline routes.
  Weight ExpansionBudget(double acc, Weight len, int m) const {
    const Weight th = CachedThreshold(agg_.Score(acc));
    if (th == kInfWeight) return kInfWeight;
    Weight budget = th - len;
    if (lb_ != nullptr && m + 1 < k_) {
      // The candidate produces a size-(m+1) route whose completion still
      // needs at least ls_remaining[m+1] further length.
      budget -= lb_->ls_remaining[static_cast<size_t>(m) + 1];
    }
    return budget;
  }

  /// Full pruning test for a partial route of size m (1 <= m < k).
  bool ShouldPrunePartial(double acc, Weight len, int m) const {
    const double sem = agg_.Score(acc);
    const Weight th = CachedThreshold(sem);
    if (th == kInfWeight) return false;

    // Lemma 5.3 with the unconditional semantic-match bound.
    Weight ls = 0;
    if (lb_ != nullptr) ls = lb_->ls_remaining[static_cast<size_t>(m)];
    if (len + ls >= th) return true;

    // Lemma 5.8: if any non-perfect future match gets the route dominated
    // (a), and an all-perfect completion is dominated too (b), prune.
    if (lb_ != nullptr && m < k_) {
      const double sigma = sigma_max_suffix_[static_cast<size_t>(m)];
      const double delta = agg_.MinIncrementDelta(acc, sigma);
      if (delta > 0) {
        const Weight th_bumped = CachedThreshold(sem + delta);
        const Weight lp = lb_->lp_remaining[static_cast<size_t>(m)];
        if (th_bumped != kInfWeight && th_bumped <= len && len + lp >= th) {
          return true;
        }
      }
    }
    return false;
  }

  /// Pruning test for a complete route's scores.
  bool ShouldPruneComplete(const RouteScores& s) const {
    return skyline_->DominatedOrEqual(s);
  }

 private:
  /// Definition 5.4 lookup through a tiny generation-stamped memo. Exact:
  /// equal (generation, semantic) inputs always yield the memoized value,
  /// and the memo is dropped the moment the skyline mutates.
  Weight CachedThreshold(double semantic) const {
    if (skyline_->generation() != memo_generation_) {
      memo_generation_ = skyline_->generation();
      memo_size_ = 0;
      memo_next_ = 0;
    }
    for (int i = 0; i < memo_size_; ++i) {
      if (memo_sem_[i] == semantic) return memo_th_[i];
    }
    const Weight th = skyline_->Threshold(semantic);
    memo_sem_[memo_next_] = semantic;
    memo_th_[memo_next_] = th;
    if (memo_size_ < kMemoSlots) ++memo_size_;
    memo_next_ = (memo_next_ + 1) % kMemoSlots;
    return th;
  }

  const SkylineSet* skyline_;
  SemanticAggregator agg_;
  const LowerBounds* lb_;
  std::span<const double> sigma_max_suffix_;
  int k_;

  // ShouldPrunePartial probes (sem, sem + delta) per route and consecutive
  // routes frequently share semantic scores (the proposed queue discipline
  // groups equal-semantic routes together), so a handful of slots catches
  // the bulk of repeats.
  static constexpr int kMemoSlots = 4;
  mutable uint64_t memo_generation_ = ~uint64_t{0};
  mutable double memo_sem_[kMemoSlots] = {};
  mutable Weight memo_th_[kMemoSlots] = {};
  mutable int memo_size_ = 0;
  mutable int memo_next_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_CORE_THRESHOLD_H_

// Branch-and-bound pruning policy: combines the skyline threshold
// (Definition 5.4 / Lemma 5.3) with the lower bounds of §5.3.3 and the
// conditional perfect-match pruning of Lemma 5.8.

#ifndef SKYSR_CORE_THRESHOLD_H_
#define SKYSR_CORE_THRESHOLD_H_

#include <vector>

#include "category/similarity.h"
#include "core/lower_bound.h"
#include "core/skyline_set.h"

namespace skysr {

/// Stateless-per-call pruning decisions against a live SkylineSet.
/// `sigma_max_suffix[m]` must hold the largest non-perfect similarity over
/// positions m..k-1 (input to δ); `k` is the sequence size.
class ThresholdPolicy {
 public:
  ThresholdPolicy(const SkylineSet& skyline, const SemanticAggregator& agg,
                  const LowerBounds* lb /* null disables lower bounds */,
                  std::vector<double> sigma_max_suffix, int k)
      : skyline_(&skyline),
        agg_(agg),
        lb_(lb),
        sigma_max_suffix_(std::move(sigma_max_suffix)),
        k_(k) {}

  /// Break budget for an expansion out of a partial route of size m with
  /// length `len` and semantic accumulator `acc` (Algorithm 2, line 8):
  /// candidates at distance >= budget cannot lead to skyline routes.
  Weight ExpansionBudget(double acc, Weight len, int m) const {
    const Weight th = skyline_->Threshold(agg_.Score(acc));
    if (th == kInfWeight) return kInfWeight;
    Weight budget = th - len;
    if (lb_ != nullptr && m + 1 < k_) {
      // The candidate produces a size-(m+1) route whose completion still
      // needs at least ls_remaining[m+1] further length.
      budget -= lb_->ls_remaining[static_cast<size_t>(m) + 1];
    }
    return budget;
  }

  /// Full pruning test for a partial route of size m (1 <= m < k).
  bool ShouldPrunePartial(double acc, Weight len, int m) const {
    const double sem = agg_.Score(acc);
    const Weight th = skyline_->Threshold(sem);
    if (th == kInfWeight) return false;

    // Lemma 5.3 with the unconditional semantic-match bound.
    Weight ls = 0;
    if (lb_ != nullptr) ls = lb_->ls_remaining[static_cast<size_t>(m)];
    if (len + ls >= th) return true;

    // Lemma 5.8: if any non-perfect future match gets the route dominated
    // (a), and an all-perfect completion is dominated too (b), prune.
    if (lb_ != nullptr && m < k_) {
      const double sigma = sigma_max_suffix_[static_cast<size_t>(m)];
      const double delta = agg_.MinIncrementDelta(acc, sigma);
      if (delta > 0) {
        const Weight th_bumped = skyline_->Threshold(sem + delta);
        const Weight lp = lb_->lp_remaining[static_cast<size_t>(m)];
        if (th_bumped != kInfWeight && th_bumped <= len && len + lp >= th) {
          return true;
        }
      }
    }
    return false;
  }

  /// Pruning test for a complete route's scores.
  bool ShouldPruneComplete(const RouteScores& s) const {
    return skyline_->DominatedOrEqual(s);
  }

 private:
  const SkylineSet* skyline_;
  SemanticAggregator agg_;
  const LowerBounds* lb_;
  std::vector<double> sigma_max_suffix_;
  int k_;
};

}  // namespace skysr

#endif  // SKYSR_CORE_THRESHOLD_H_

// Engine-owned, query-lifetime state reused across queries: the skyline,
// route arena, bulk queue Q_b, on-the-fly cache (flat table + candidate
// pool), matcher/sigma/destination staging and the scratch of every
// sub-search (expansion, NNinit, lower bounds, oracle). In steady state a
// query allocates only what it returns (the skyline routes) plus O(k)
// matcher tables — everything sized by the search itself keeps its capacity
// from previous queries.
//
// The workspace is single-threaded by construction: it lives inside a
// BssrEngine and inherits the one-engine-per-thread contract. QueryService
// workers each own an engine, so batch/serve traffic reuses these buffers
// for the whole worker lifetime.

#ifndef SKYSR_CORE_QUERY_WORKSPACE_H_
#define SKYSR_CORE_QUERY_WORKSPACE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "core/lower_bound.h"
#include "core/mdijkstra_cache.h"
#include "core/qb_dominance.h"
#include "core/modified_dijkstra.h"
#include "core/nn_init.h"
#include "core/query.h"
#include "core/route.h"
#include "core/settle_log.h"
#include "core/skyline_set.h"
#include "graph/dijkstra_workspace.h"
#include "index/distance_oracle.h"
#include "retrieval/bucket_retriever.h"
#include "retrieval/resumable_retriever.h"
#include "util/dary_heap.h"
#include "util/stamped_array.h"

namespace skysr {

/// Queue entry for the bulk priority queue Q_b.
struct QbEntry {
  int32_t node;
  int32_t size;
  double semantic;
  Weight length;
};

/// §5.3.2: the proposed discipline dequeues the largest route first, then the
/// semantically best, then the shortest; the distance-based baseline orders
/// purely by length. Node-id tie-breaks keep runs deterministic.
struct QbLess {
  QueueDiscipline discipline;
  bool operator()(const QbEntry& a, const QbEntry& b) const {
    if (discipline == QueueDiscipline::kProposed) {
      if (a.size != b.size) return a.size > b.size;
      if (a.semantic != b.semantic) return a.semantic < b.semantic;
      if (a.length != b.length) return a.length < b.length;
    } else {
      if (a.length != b.length) return a.length < b.length;
    }
    return a.node < b.node;
  }
};

/// The bulk queue Q_b. For the proposed discipline the size key is the
/// STRICT primary sort, so the queue keeps one heap per route size and pops
/// from the largest non-empty size — the identical total order at a
/// fraction of the sift depth: the size-asc breadth accumulates in the
/// size-1 heap and is popped once each, while the eagerly-drained deeper
/// heaps (where most pops land on heavy queries) stay tiny. The
/// distance-based discipline ignores size and keeps the single heap.
class QbQueue {
 public:
  /// Entry of a per-size heap: size is the bucket index. Semantic and
  /// length are non-negative doubles, so their IEEE bit patterns order
  /// identically — the sift loops run on 1-cycle integer compares.
  struct SlimEntry {
    uint64_t semantic_bits;
    uint64_t length_bits;
    int32_t node;
  };
  struct SlimLess {
    bool operator()(const SlimEntry& a, const SlimEntry& b) const {
      if (a.semantic_bits != b.semantic_bits) {
        return a.semantic_bits < b.semantic_bits;
      }
      if (a.length_bits != b.length_bits) {
        return a.length_bits < b.length_bits;
      }
      return a.node < b.node;
    }
  };

  /// Clears and configures for a query of sequence size `k` (enqueued route
  /// sizes are 1..k-1). Keeps all heap capacity.
  void Reset(QueueDiscipline discipline, int k) {
    discipline_ = discipline;
    flat_.clear();
    flat_.set_less(QbLess{discipline});
    if (buckets_.size() < static_cast<size_t>(k)) {
      buckets_.resize(static_cast<size_t>(k));
    }
    for (auto& b : buckets_) b.clear();
    top_size_ = 0;
    size_ = 0;
    peak_size_ = 0;
  }

  bool empty() const { return size_ == 0; }

  void push(const QbEntry& e) {
    // Both keys must be non-negative for the bit-pattern ordering to match
    // the double ordering of QbLess. -0.0 passes the check (it compares
    // equal to 0.0) but its sign bit would sort it as the LARGEST uint64,
    // diverging from the flat path where -0.0 == 0.0 — adding +0.0 maps
    // -0.0 to +0.0 and leaves every other non-negative value unchanged.
    SKYSR_DCHECK(e.semantic >= 0.0);
    SKYSR_DCHECK(e.length >= 0.0);
    ++size_;
    if (size_ > peak_size_) peak_size_ = size_;
    if (discipline_ != QueueDiscipline::kProposed) {
      flat_.push(e);
      return;
    }
    buckets_[static_cast<size_t>(e.size)].push(
        SlimEntry{std::bit_cast<uint64_t>(e.semantic + 0.0),
                  std::bit_cast<uint64_t>(e.length + 0.0), e.node});
    if (e.size > top_size_) top_size_ = e.size;
  }

  QbEntry pop() {
    SKYSR_DCHECK(size_ > 0);
    --size_;
    if (discipline_ != QueueDiscipline::kProposed) {
      return flat_.pop();
    }
    // Checked downward scan: stops at bucket 0 instead of underflowing if
    // the size accounting ever drifts out of sync with the buckets.
    while (top_size_ > 0 && buckets_[static_cast<size_t>(top_size_)].empty()) {
      --top_size_;
    }
    SKYSR_DCHECK(top_size_ >= 0);
    SKYSR_DCHECK(!buckets_[static_cast<size_t>(top_size_)].empty());
    const int32_t size = top_size_;
    SlimEntry e = buckets_[static_cast<size_t>(size)].pop();
    // Lower the bound eagerly when this pop drained the bucket, so pushes at
    // smaller sizes don't leave every later pop re-scanning the stale upper
    // range.
    while (top_size_ > 0 && buckets_[static_cast<size_t>(top_size_)].empty()) {
      --top_size_;
    }
    return QbEntry{e.node, size, std::bit_cast<double>(e.semantic_bits),
                   std::bit_cast<Weight>(e.length_bits)};
  }

  size_t peak_size() const { return peak_size_; }

 private:
  QueueDiscipline discipline_ = QueueDiscipline::kProposed;
  DaryHeap<QbEntry, QbLess> flat_{QbLess{QueueDiscipline::kProposed}};
  std::vector<DaryHeap<SlimEntry, SlimLess>> buckets_;  // index = route size
  int32_t top_size_ = 0;  // upper bound on the largest non-empty bucket
  size_t size_ = 0;
  size_t peak_size_ = 0;
};

/// All reusable per-query state of one engine.
struct QueryWorkspace {
  SkylineSet skyline;
  RouteArena arena;
  QbQueue qb;
  MdijkstraCache cache;
  SettleLog settle_log;
  // Per-(vertex, position, PoI-set) dominance records over enqueued partial
  // routes; see qb_dominance.h for the exactness argument.
  QbDominanceStore qb_dom;
  // Query-lifetime (position, acc, sim) -> extended-length prune floors;
  // candidates at or beyond a floor skip consume() entirely (see
  // candidate_stream.h for why the floors transfer across expansions).
  PruneFloorTable prune_floors;

  // PoI-retrieval backends (src/retrieval/): per-query bucket scan state
  // (forward-search cache + scratch) and the resumable-expansion slot pool.
  BucketScanState bucket_scan;
  ResumablePool resume;

  // Sub-search scratch.
  ExpansionScratch expansion;
  DijkstraWorkspace dijkstra_ws;  // NNinit chain + destination distances
  OracleWorkspace oracle_ws;
  NnInitScratch nn_init;
  LowerBoundScratch lower_bound;

  // Per-query staging.
  std::vector<PositionMatcher> matchers;
  // One lazily-filled PoI-similarity memo per sequence position, attached
  // to the matchers (PositionMatcher::AttachSimCache). Epoch-stamped:
  // resetting for the next query is O(1).
  std::vector<StampedArray<double>> sim_memo;
  std::vector<double> sigma_suffix;
  std::vector<Weight> dest_dist;
  std::vector<PoiId> route_buf;  // complete-route materialization
  LowerBounds lb;
};

}  // namespace skysr

#endif  // SKYSR_CORE_QUERY_WORKSPACE_H_

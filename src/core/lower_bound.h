// Possible-minimum-distance lower bounds (§5.3.3, Algorithm 4, Lemma 5.8).
//
// For each remaining leg the engine adds a provable minimum distance to a
// partial route's length before comparing against the threshold. Two bounds
// per leg: the semantic-match distance ls (unconditionally addable) and the
// larger perfect-match distance lp (addable only under Lemma 5.8's δ
// condition). Both are computed with a multi-source multi-destination
// Dijkstra restricted to the ball B(v_q, l̄(∅)) — sources, destinations AND
// traversal; DESIGN.md explains why the traversal restriction is sound.

#ifndef SKYSR_CORE_LOWER_BOUND_H_
#define SKYSR_CORE_LOWER_BOUND_H_

#include <vector>

#include "core/query.h"
#include "core/search_stats.h"
#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "index/distance_oracle.h"
#include "util/stamped_array.h"

namespace skysr {

class BucketRetriever;
struct BucketScanState;
class SharedQueryCache;

/// Per-leg and per-suffix minimum distances for one query.
///
/// Legs are 0-based: leg i connects sequence position i to i+1
/// (i in [0, k-2]). A leg bound of kInfWeight means no in-ball pair of
/// matching PoIs is connected — any route needing that leg is prunable.
struct LowerBounds {
  std::vector<Weight> ls_leg;  // size k-1
  std::vector<Weight> lp_leg;  // size k-1

  /// ls_remaining[m] = Σ_{i=m-1}^{k-2} ls_leg[i]: minimum extra length any
  /// completion of a size-m partial route must add (m in [1, k]; entry 0 is
  /// the full sum including the unmodelled v_q -> position-0 leg lower bound
  /// of zero, kept for symmetry).
  std::vector<Weight> ls_remaining;  // size k+1
  std::vector<Weight> lp_remaining;  // size k+1

  bool empty() const { return ls_remaining.empty(); }
};

/// Reusable buffers for the lower-bound computation (ball distances, leg
/// seeds/targets, oracle tables); engine-owned so steady-state queries pay
/// no O(|V|) allocation here. The ball distances use an epoch-stamped array
/// — resetting between queries is O(1).
struct LowerBoundScratch {
  DijkstraWorkspace ws;
  StampedArray<Weight> ball_dist;
  std::vector<SourceSeed> seeds;
  std::vector<VertexId> sources;
  std::vector<VertexId> sem_targets;
  std::vector<VertexId> perf_targets;
  std::vector<PoiId> sem_target_pois;   // PoI ids parallel to sem_targets
  std::vector<PoiId> perf_target_pois;  // PoI ids parallel to perf_targets
  std::vector<Weight> table;
};

/// Computes the bounds. `radius` is l̄(∅) — the length of the best
/// perfect-match route known after the initial search (kInfWeight when
/// unknown, in which case no ball restriction applies). Updates
/// stats->lb_ms / ls_total / lp_total and the global search counters.
/// `scratch` (optional) supplies reusable buffers; null falls back to
/// function-local storage.
LowerBounds ComputeLowerBounds(const Graph& g,
                               const std::vector<PositionMatcher>& matchers,
                               VertexId start, Weight radius,
                               SearchStats* stats,
                               LowerBoundScratch* scratch = nullptr);

/// Index-backed variant. Sparse legs are answered by the oracle — CH: an
/// exact many-to-many minimum over the in-ball PoI pairs (unrestricted
/// distances, so <= the ball-restricted flat values); ALT: pure landmark
/// triangle bounds, no graph search at all — while dense legs fall back to
/// the classic ball-restricted multi-source Dijkstra, which is cheaper
/// there. Every flavor produces provable leg lower bounds, possibly weaker
/// than the flat ones, and any admissible bound leaves the skyline
/// bit-identical — the property the no-lower-bound ablation already
/// certifies and the differential harness re-verifies per oracle.
/// `oracle_candidate_cap` follows QueryOptions::oracle_candidate_cap
/// (-1 = graph-size heuristic; 0 behaves like ComputeLowerBounds).
///
/// With `bucket_server` (plus its scan state) attached, table-based legs
/// are served from the CategoryBucketIndex instead of fresh oracle
/// searches: each PoI's backward settles are precomputed and the sources'
/// forward searches come from — and warm — the cross-query shared cache
/// (`shared`, optional). Pair distances are bit-equal to Table()'s, so the
/// bounds (and therefore the skyline) are unchanged.
LowerBounds ComputeLowerBoundsWithOracle(
    const Graph& g, const std::vector<PositionMatcher>& matchers,
    VertexId start, Weight radius, const DistanceOracle& oracle,
    OracleWorkspace& oracle_ws, SearchStats* stats,
    int64_t oracle_candidate_cap = -1, LowerBoundScratch* scratch = nullptr,
    const BucketRetriever* bucket_server = nullptr,
    BucketScanState* bucket_scan = nullptr,
    SharedQueryCache* shared = nullptr);

}  // namespace skysr

#endif  // SKYSR_CORE_LOWER_BOUND_H_

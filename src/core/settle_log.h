// Per-source settle log: the cross-position twin of the §5.3.4 candidate
// cache.
//
// When Lemma 5.5 traversal cuts are OFF (the deferred mode: multi-category
// PoIs or overlapping position trees), the modified Dijkstra's settle
// sequence from a source depends only on the source and the budget — not on
// the position's matcher. Expansions of the SAME vertex for DIFFERENT
// sequence positions therefore redo an identical traversal and differ only
// in which settled vertices they emit. The settle log records each
// source's settle sequence (every settled vertex with its distance,
// including the budget-breaking settle) once; later expansions from that
// source replay the log linearly — a branch-predictable array scan with no
// heap, no relaxations — and remain bit-identical to a fresh search because
// Dijkstra settles are deterministic (distance, vertex-id tie-break) and a
// log prefix below the covered radius is exactly the set of vertices a
// fresh search would settle.
//
// A log whose covered radius is below the requested budget is insufficient
// and is rebuilt by a real search with the larger budget (the same protocol
// as candidate-cache reruns). The engine keeps coverage monotone: a rebuild
// that ends up covering less (its budget collapsed mid-search as the
// skyline tightened) does not replace the higher-coverage entry — any valid
// log yields bit-identical replays for a given budget, so the widest one is
// strictly more reusable. Cleared per query alongside the candidate cache.

#ifndef SKYSR_CORE_SETTLE_LOG_H_
#define SKYSR_CORE_SETTLE_LOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/modified_dijkstra.h"
#include "graph/types.h"
#include "util/stamped_span_table.h"

namespace skysr {

/// Per-query map from source vertex to its recorded settle sequence. Entry
/// metadata is the recording search's ExpansionOutcome.
class SettleLog {
  using Table = StampedSpanTable<SettleRecord, ExpansionOutcome>;

 public:
  using Entry = Table::Entry;

  const Entry* Find(VertexId source) const {
    return table_.Find(static_cast<uint64_t>(static_cast<uint32_t>(source)));
  }

  /// The settles of a found entry, in settle (distance, vertex) order.
  std::span<const SettleRecord> RecordsOf(const Entry& e) const {
    return table_.SpanOf(e);
  }

  /// The shared record pool; a recording search appends here, then
  /// Commit()s the span.
  std::vector<SettleRecord>& pool() { return table_.pool(); }

  void Commit(VertexId source, size_t pool_offset,
              const ExpansionOutcome& outcome) {
    table_.Commit(static_cast<uint64_t>(static_cast<uint32_t>(source)),
                  pool_offset, outcome);
  }

  void Clear() { table_.Clear(); }
  int64_t size() const { return table_.size(); }
  int64_t replacements() const { return table_.replacements(); }
  int64_t MemoryBytes() const { return table_.MemoryBytes(); }

 private:
  Table table_;
};

}  // namespace skysr

#endif  // SKYSR_CORE_SETTLE_LOG_H_

// Destination-tail sharing seam. A §6 destination query needs D(v,
// destination) for every vertex — one full-graph reverse Dijkstra — before
// the search starts. The table depends only on the destination (and the
// graph), so concurrent serving layers can share it across queries and
// workers; the engine asks an optional provider before computing its own.
// QueryService implements this with a canonical-keyed LRU
// (service/dest_tail_cache.h); the tables are deterministic per
// destination, so sharing cannot change results.

#ifndef SKYSR_CORE_DEST_TAILS_H_
#define SKYSR_CORE_DEST_TAILS_H_

#include <functional>
#include <memory>
#include <vector>

#include "graph/types.h"

namespace skysr {

/// Thread-safe provider of shared, immutable destination-tail tables.
class DestTailProvider {
 public:
  virtual ~DestTailProvider() = default;

  /// The D(v, destination) table for every vertex of the engine's graph.
  /// On a miss the implementation invokes `compute` on a fresh vector and
  /// must hand back exactly what it filled (tables are shared immutably, so
  /// bit-identical results depend on it).
  virtual std::shared_ptr<const std::vector<Weight>> GetOrCompute(
      VertexId destination,
      const std::function<void(std::vector<Weight>*)>& compute) = 0;
};

}  // namespace skysr

#endif  // SKYSR_CORE_DEST_TAILS_H_

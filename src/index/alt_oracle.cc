#include "index/alt_oracle.h"

#include <algorithm>

#include "graph/dijkstra.h"
#include "graph/graph_builder.h"
#include "index/index_io.h"
#include "util/dary_heap.h"
#include "util/logging.h"
#include "util/timer.h"

namespace skysr {
namespace {

// Relative shrink restoring robust admissibility/consistency of the
// triangle bounds against last-ulp rounding of the stored landmark
// distances (see the header).
constexpr double kBoundShrink = 1.0 - 1e-12;

}  // namespace

AltOracle AltOracle::Build(const Graph& g, int num_landmarks) {
  WallTimer timer;
  AltOracle alt(g);
  const int64_t n = g.num_vertices();
  num_landmarks =
      std::max(0, std::min<int>(num_landmarks, static_cast<int>(n)));
  if (n == 0 || num_landmarks == 0) {
    alt.build_stats_.build_ms = timer.ElapsedMillis();
    return alt;
  }

  // Farthest-point selection. min_dist[v] = distance from v to the nearest
  // chosen landmark (forward distances; a heuristic, so direction choice is
  // immaterial for correctness).
  std::vector<Weight> min_dist(static_cast<size_t>(n), kInfWeight);
  VertexId next = 0;  // deterministic first pick
  while (static_cast<int>(alt.landmarks_.size()) < num_landmarks) {
    alt.landmarks_.push_back(next);
    alt.from_.push_back(SingleSourceDistances(g, next).dist);
    const std::vector<Weight>& d = alt.from_.back();
    Weight best = -1;
    VertexId farthest = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      min_dist[static_cast<size_t>(v)] =
          std::min(min_dist[static_cast<size_t>(v)],
                   d[static_cast<size_t>(v)]);
      // Prefer the vertex farthest from the chosen set; unreachable
      // components (min_dist = +inf) are covered first.
      const Weight md = min_dist[static_cast<size_t>(v)];
      if (md > best && md > 0) {
        best = md;
        farthest = v;
      }
    }
    if (farthest == kInvalidVertex) break;  // everything is a landmark
    next = farthest;
  }

  if (g.directed()) {
    const Graph reversed = ReverseOf(g);
    for (const VertexId l : alt.landmarks_) {
      alt.to_.push_back(SingleSourceDistances(reversed, l).dist);
    }
  }

  alt.build_stats_.build_ms = timer.ElapsedMillis();
  alt.build_stats_.num_landmarks = static_cast<int>(alt.landmarks_.size());
  return alt;
}

Weight AltOracle::LowerBound(VertexId source, VertexId target) const {
  if (source == target) return 0;
  const auto s = static_cast<size_t>(source);
  const auto t = static_cast<size_t>(target);
  Weight bound = 0;
  for (size_t l = 0; l < landmarks_.size(); ++l) {
    const std::vector<Weight>& from = from_[l];
    const std::vector<Weight>& to = to_.empty() ? from_[l] : to_[l];
    // d(L,s) finite but d(L,t) infinite proves t unreachable from s:
    // otherwise d(L,t) <= d(L,s) + d(s,t) would be finite. Symmetrically
    // for the to-landmark side.
    if (from[s] != kInfWeight) {
      if (from[t] == kInfWeight) return kInfWeight;
      bound = std::max(bound, from[t] - from[s]);
    }
    if (to[t] != kInfWeight) {
      if (to[s] == kInfWeight) return kInfWeight;
      bound = std::max(bound, to[s] - to[t]);
    }
  }
  return bound * kBoundShrink;
}

Weight AltOracle::Distance(VertexId source, VertexId target,
                           OracleWorkspace& ws) const {
  SKYSR_DCHECK(source >= 0 && source < g_->num_vertices());
  SKYSR_DCHECK(target >= 0 && target < g_->num_vertices());
  const int64_t n = g_->num_vertices();
  ws.fwd.Prepare(n);
  ws.heur.Prepare(n, kInfWeight);

  const auto h = [&](VertexId v) -> Weight {
    Weight cached = ws.heur.Get(v);
    if (cached == kInfWeight) {
      cached = LowerBound(v, target);
      ws.heur.Set(v, cached);
    }
    return cached;
  };

  struct AStarItem {
    Weight f;
    Weight g;
    VertexId vertex;
    bool operator<(const AStarItem& o) const {
      if (f != o.f) return f < o.f;
      return vertex < o.vertex;
    }
  };
  DaryHeap<AStarItem> heap;
  const Weight h0 = h(source);
  if (h0 == kInfWeight) return kInfWeight;  // provably unreachable
  ws.fwd.SetDist(source, 0, kInvalidVertex);
  heap.push(AStarItem{h0, 0, source});

  while (!heap.empty()) {
    const AStarItem item = heap.pop();
    if (ws.fwd.Settled(item.vertex)) continue;
    ws.fwd.MarkSettled(item.vertex);
    if (item.vertex == target) return item.g;
    for (const Neighbor& nb : g_->OutEdges(item.vertex)) {
      if (ws.fwd.Settled(nb.to)) continue;
      const Weight ng = item.g + nb.weight;
      if (ng < ws.fwd.Dist(nb.to)) {
        const Weight hn = h(nb.to);
        if (hn == kInfWeight) continue;  // cannot reach the target
        ws.fwd.SetDist(nb.to, ng, item.vertex);
        heap.push(AStarItem{ng + hn, ng, nb.to});
      }
    }
  }
  return kInfWeight;
}

int64_t AltOracle::MemoryBytes() const {
  int64_t bytes =
      static_cast<int64_t>(landmarks_.capacity() * sizeof(VertexId));
  for (const auto& v : from_) {
    bytes += static_cast<int64_t>(v.capacity() * sizeof(Weight));
  }
  for (const auto& v : to_) {
    bytes += static_cast<int64_t>(v.capacity() * sizeof(Weight));
  }
  return bytes;
}

Status AltOracle::SavePayload(std::FILE* f) const {
  if (!index_io::WriteVec(f, landmarks_)) {
    return Status::IOError("short write of ALT index payload");
  }
  const uint8_t has_to = to_.empty() ? 0 : 1;
  if (!index_io::WritePod(f, has_to)) {
    return Status::IOError("short write of ALT index payload");
  }
  for (const auto& v : from_) {
    if (!index_io::WriteVec(f, v)) {
      return Status::IOError("short write of ALT index payload");
    }
  }
  for (const auto& v : to_) {
    if (!index_io::WriteVec(f, v)) {
      return Status::IOError("short write of ALT index payload");
    }
  }
  return Status::OK();
}

Result<AltOracle> AltOracle::LoadPayload(std::FILE* f, const Graph& g) {
  AltOracle alt(g);
  uint8_t has_to = 0;
  if (!index_io::ReadVec(f, &alt.landmarks_) ||
      !index_io::ReadPod(f, &has_to)) {
    return Status::IOError("corrupt or truncated ALT index payload");
  }
  const auto read_matrix = [&](std::vector<std::vector<Weight>>* m) {
    m->resize(alt.landmarks_.size());
    for (auto& v : *m) {
      if (!index_io::ReadVec(f, &v) ||
          v.size() != static_cast<size_t>(g.num_vertices())) {
        return false;
      }
    }
    return true;
  };
  if (!read_matrix(&alt.from_) || (has_to != 0 && !read_matrix(&alt.to_))) {
    return Status::IOError("corrupt or truncated ALT index payload");
  }
  alt.build_stats_.num_landmarks = static_cast<int>(alt.landmarks_.size());
  return alt;
}

}  // namespace skysr

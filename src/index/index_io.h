// Binary persistence for built distance-oracle indexes, in the style of
// Graph::SaveBinary (graph/io): a magic + kind + graph-checksum header
// followed by an oracle-specific payload. Files conventionally carry the
// `.chidx` (CH) / `.altidx` (ALT) extension; both are covered by
// LoadOracleIndex, which sniffs the kind from the header.
//
// The header embeds a checksum of the graph the index was built for;
// loading against any other graph fails with an explicit "rebuild the
// index" error instead of silently answering wrong distances.

#ifndef SKYSR_INDEX_INDEX_IO_H_
#define SKYSR_INDEX_INDEX_IO_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "index/distance_oracle.h"
#include "util/status.h"

namespace skysr {

/// Order-sensitive digest of the graph's structure and weights (vertex
/// count, adjacency, weight bit patterns, directedness, PoI placement).
/// Equal graphs hash equal; any structural edit a rebuilt index would
/// notice changes the sum.
uint64_t GraphChecksum(const Graph& g);

/// Order-sensitive digest of the PoI assignment — vertex placement plus the
/// per-PoI category lists. The category-bucket tables (src/retrieval/)
/// depend on it beyond the graph structure: reassigning categories changes
/// which buckets a PoI lands in without moving a single edge, so their
/// saved form embeds this alongside GraphChecksum.
uint64_t PoiAssignmentChecksum(const Graph& g);

/// Writes the oracle's index to `path`. FlatOracle has no index to save and
/// returns InvalidArgument.
Status SaveOracleIndex(const DistanceOracle& oracle, const std::string& path);

/// Loads an index built by SaveOracleIndex and binds it to `g`. Fails with
/// a descriptive IOError when the file was built for a different graph
/// (checksum mismatch) or is corrupt.
Result<std::unique_ptr<DistanceOracle>> LoadOracleIndex(
    const std::string& path, const Graph& g);

/// Conventional file extension for an oracle kind ("chidx" / "altidx").
const char* OracleIndexExtension(OracleKind kind);

namespace index_io {

// Low-level POD/vector framing shared by the oracle payload serializers.

template <typename T>
bool WritePod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  const uint64_t n = v.size();
  if (!WritePod(f, n)) return false;
  if (n == 0) return true;
  return std::fwrite(v.data(), sizeof(T), n, f) == n;
}

template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>* v) {
  uint64_t n = 0;
  if (!ReadPod(f, &n)) return false;
  v->resize(n);
  if (n == 0) return true;
  return std::fread(v->data(), sizeof(T), n, f) == n;
}

}  // namespace index_io

}  // namespace skysr

#endif  // SKYSR_INDEX_INDEX_IO_H_

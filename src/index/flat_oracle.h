// FlatOracle: the no-preprocessing distance oracle — every query is a plain
// graph Dijkstra. This is the pre-index behavior extracted behind the
// DistanceOracle API and the reference the other oracles are verified
// against. Zero build cost, zero memory overhead, O(|V| log |V|) per query.

#ifndef SKYSR_INDEX_FLAT_ORACLE_H_
#define SKYSR_INDEX_FLAT_ORACLE_H_

#include <span>

#include "index/distance_oracle.h"

namespace skysr {

class FlatOracle final : public DistanceOracle {
 public:
  /// The graph must outlive the oracle.
  explicit FlatOracle(const Graph& g) : g_(&g) {}

  OracleKind kind() const override { return OracleKind::kFlat; }
  const Graph& graph() const override { return *g_; }

  Weight Distance(VertexId source, VertexId target,
                  OracleWorkspace& ws) const override;

  /// One truncated Dijkstra per source (stops once every target is settled)
  /// instead of one per pair.
  void Table(std::span<const VertexId> sources,
             std::span<const VertexId> targets, OracleWorkspace& ws,
             Weight* out) const override;

  int64_t MemoryBytes() const override { return 0; }

 private:
  const Graph* g_;
};

}  // namespace skysr

#endif  // SKYSR_INDEX_FLAT_ORACLE_H_

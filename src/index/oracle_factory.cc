#include "index/oracle_factory.h"

#include <cstdlib>

namespace skysr {

std::unique_ptr<DistanceOracle> MakeOracle(OracleKind kind, const Graph& g) {
  switch (kind) {
    case OracleKind::kFlat:
      return std::make_unique<FlatOracle>(g);
    case OracleKind::kCh:
      return std::make_unique<ChOracle>(ChOracle::Build(g));
    case OracleKind::kAlt:
      return std::make_unique<AltOracle>(AltOracle::Build(g));
  }
  return std::make_unique<FlatOracle>(g);
}

std::optional<OracleKind> OracleKindFromEnv(OracleKind def) {
  const char* v = std::getenv("SKYSR_ORACLE");
  if (v == nullptr || *v == '\0') return def;
  return ParseOracleKind(v);
}

}  // namespace skysr

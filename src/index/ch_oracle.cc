#include "index/ch_oracle.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "index/index_io.h"
#include "obs/query_trace.h"
#include "util/dary_heap.h"
#include "util/logging.h"
#include "util/timer.h"

namespace skysr {
namespace {

// Witness-search settle caps. The cheap cap serves the lazy priority
// recomputations (run once per queue pop, so they dominate build time),
// the thorough cap the actual contraction; hitting a cap conservatively
// adds the shortcut, which costs space but never correctness.
constexpr int kSimWitnessCap = 64;
constexpr int kContractWitnessCap = 800;

// Priority simulations of very high-degree vertices (late-stage hubs of
// expander-like graphs) skip their witness searches entirely and
// pessimistically assume every shortcut is needed — which both bounds the
// otherwise quadratic simulation cost and pushes hubs to the top of the
// hierarchy, where they belong.
constexpr int64_t kSimPairLimit = 4096;

// Heap items reuse the workspace-level OracleHeapItem (distance_oracle.h)
// so query-time searches can borrow the caller's persistent heap instead of
// allocating one per call.
using UpItem = OracleHeapItem;

/// True when `v` can be stalled (stall-on-demand): some opposite-direction
/// upward edge reaches it strictly cheaper than its label, so the label is
/// provably not a shortest-path distance in G and expanding it cannot
/// contribute to any optimal up-down path.
bool Stalled(const std::vector<int64_t>& stall_offsets,
             const std::vector<ChEdge>& stall_edges, const VertexId v,
             const Weight dist, const DijkstraWorkspace& ws) {
  const auto b = static_cast<size_t>(stall_offsets[v]);
  const auto e = static_cast<size_t>(stall_offsets[v + 1]);
  for (size_t idx = b; idx < e; ++idx) {
    const ChEdge& ed = stall_edges[idx];
    if (ws.HasDist(ed.to) && ws.Dist(ed.to) + ed.weight < dist) return true;
  }
  return false;
}

/// Full upward Dijkstra over one CSR side with stall-on-demand against the
/// opposite side's CSR. Distances/parents land in `ws`, the relaxing CSR
/// edge index in `edge_of`, settles (in order) in `settled`.
void RunUpwardSearch(const std::vector<int64_t>& offsets,
                     const std::vector<ChEdge>& edges,
                     const std::vector<int64_t>& stall_offsets,
                     const std::vector<ChEdge>& stall_edges, VertexId source,
                     int64_t n, DijkstraWorkspace& ws,
                     StampedArray<int32_t>& edge_of,
                     DaryHeap<OracleHeapItem>& heap,
                     std::vector<std::pair<VertexId, Weight>>* settled) {
  ws.Prepare(n);
  edge_of.Prepare(n, -1);
  heap.clear();
  ws.SetDist(source, 0, kInvalidVertex);
  heap.push(UpItem{0, source});
  while (!heap.empty()) {
    const UpItem item = heap.pop();
    if (ws.Settled(item.vertex)) continue;
    ws.MarkSettled(item.vertex);
    settled->emplace_back(item.vertex, item.dist);
    if (Stalled(stall_offsets, stall_edges, item.vertex, item.dist, ws)) {
      continue;
    }
    const auto b = static_cast<size_t>(offsets[item.vertex]);
    const auto e = static_cast<size_t>(offsets[item.vertex + 1]);
    for (size_t idx = b; idx < e; ++idx) {
      const ChEdge& ed = edges[idx];
      if (ws.Settled(ed.to)) continue;
      const Weight nd = item.dist + ed.weight;
      if (nd < ws.Dist(ed.to)) {
        ws.SetDist(ed.to, nd, item.vertex);
        edge_of.Set(ed.to, static_cast<int32_t>(idx));
        heap.push(UpItem{nd, ed.to});
      }
    }
  }
}

/// Mutable build-time edge. Lists are kept deduplicated per (pair,
/// direction) with the minimum weight.
struct BuildEdge {
  VertexId to;
  Weight weight;
  VertexId mid;
};

/// Inserts or improves the edge to `e.to`; returns true when the list
/// changed (new entry or smaller weight).
bool AddOrImprove(std::vector<BuildEdge>* list, const BuildEdge& e) {
  for (BuildEdge& have : *list) {
    if (have.to == e.to) {
      if (e.weight < have.weight) {
        have = e;
        return true;
      }
      return false;
    }
  }
  list->push_back(e);
  return true;
}

void EraseEdgeTo(std::vector<BuildEdge>* list, VertexId to) {
  for (size_t i = 0; i < list->size(); ++i) {
    if ((*list)[i].to == to) {
      (*list)[i] = list->back();
      list->pop_back();
      return;
    }
  }
}

}  // namespace

ChOracle ChOracle::Build(const Graph& g) {
  WallTimer timer;
  ChOracle ch(g);
  const int64_t n = g.num_vertices();
  ch.rank_.assign(static_cast<size_t>(n), 0);

  // Mutable remaining-graph adjacency (parallel input edges deduplicated,
  // self-loops dropped — neither can carry a shortest path further).
  std::vector<std::vector<BuildEdge>> out(static_cast<size_t>(n));
  std::vector<std::vector<BuildEdge>> in(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : g.OutEdges(v)) {
      if (nb.to == v) continue;
      AddOrImprove(&out[static_cast<size_t>(v)],
                   BuildEdge{nb.to, nb.weight, kInvalidVertex});
      AddOrImprove(&in[static_cast<size_t>(nb.to)],
                   BuildEdge{v, nb.weight, kInvalidVertex});
    }
  }

  std::vector<char> contracted(static_cast<size_t>(n), 0);
  std::vector<int32_t> deleted_neighbors(static_cast<size_t>(n), 0);
  // Hierarchy level: one more than the highest contracted neighbor. Folding
  // it into the priority spreads contractions across the graph, which keeps
  // the upward search spaces (and therefore query times) small.
  std::vector<int32_t> level(static_cast<size_t>(n), 0);

  // Bounded witness Dijkstra from `u` over the remaining graph, skipping
  // `avoid`. Tentative (unsettled) distances are genuine path lengths, so
  // callers may read ws_dist for any vertex afterwards.
  DijkstraWorkspace wws;
  DaryHeap<UpItem> wheap;
  const auto witness_search = [&](VertexId u, VertexId avoid, Weight limit,
                                  int cap) {
    wws.Prepare(n);
    wheap.clear();
    wws.SetDist(u, 0, kInvalidVertex);
    wheap.push(UpItem{0, u});
    int settles = 0;
    while (!wheap.empty()) {
      const UpItem item = wheap.pop();
      if (wws.Settled(item.vertex)) continue;
      if (item.dist > limit || ++settles > cap) break;
      wws.MarkSettled(item.vertex);
      ++ch.build_stats_.witness_settled;
      for (const BuildEdge& e : out[static_cast<size_t>(item.vertex)]) {
        if (e.to == avoid || contracted[static_cast<size_t>(e.to)]) continue;
        const Weight nd = item.dist + e.weight;
        if (nd < wws.Dist(e.to)) {
          wws.SetDist(e.to, nd, item.vertex);
          wheap.push(UpItem{nd, e.to});
        }
      }
    }
  };

  // Counts (apply=false) or inserts (apply=true) the shortcuts contracting
  // `v` requires; also reports how many remaining-graph edges v's removal
  // deletes. One witness search per live in-neighbor.
  const auto process = [&](VertexId v, bool apply,
                           int cap) -> std::pair<int64_t, int64_t> {
    int64_t shortcuts = 0, removed = 0;
    const auto& vin = in[static_cast<size_t>(v)];
    const auto& vout = out[static_cast<size_t>(v)];
    for (const BuildEdge& oe : vout) {
      if (!contracted[static_cast<size_t>(oe.to)]) ++removed;
    }
    const int64_t pair_bound = static_cast<int64_t>(vin.size()) *
                               static_cast<int64_t>(vout.size());
    if (!apply && pair_bound > kSimPairLimit) {
      // Too big to simulate: assume the worst (see kSimPairLimit).
      for (const BuildEdge& ie : vin) {
        if (!contracted[static_cast<size_t>(ie.to)]) ++removed;
      }
      return {pair_bound, removed};
    }
    for (const BuildEdge& ie : vin) {
      if (contracted[static_cast<size_t>(ie.to)]) continue;
      ++removed;
      const VertexId u = ie.to;
      Weight max_cand = -1;
      for (const BuildEdge& oe : vout) {
        if (oe.to == u || contracted[static_cast<size_t>(oe.to)]) continue;
        max_cand = std::max(max_cand, ie.weight + oe.weight);
      }
      if (max_cand < 0) continue;
      witness_search(u, v, max_cand, cap);
      for (const BuildEdge& oe : vout) {
        if (oe.to == u || contracted[static_cast<size_t>(oe.to)]) continue;
        const Weight cand = ie.weight + oe.weight;
        if (wws.Dist(oe.to) <= cand) continue;  // witness path suffices
        ++shortcuts;
        if (apply) {
          const bool changed = AddOrImprove(&out[static_cast<size_t>(u)],
                                            BuildEdge{oe.to, cand, v});
          AddOrImprove(&in[static_cast<size_t>(oe.to)],
                       BuildEdge{u, cand, v});
          if (changed) ++ch.num_shortcuts_;
        }
      }
    }
    return {shortcuts, removed};
  };

  const auto priority = [&](VertexId v) -> int64_t {
    const auto [shortcuts, removed] = process(v, /*apply=*/false,
                                              kSimWitnessCap);
    return 8 * (shortcuts - removed) +
           2 * deleted_neighbors[static_cast<size_t>(v)] +
           level[static_cast<size_t>(v)];
  };

  struct PrioItem {
    int64_t prio;
    VertexId vertex;
    bool operator<(const PrioItem& o) const {
      if (prio != o.prio) return prio < o.prio;
      return vertex < o.vertex;
    }
  };
  DaryHeap<PrioItem> pq;
  for (VertexId v = 0; v < n; ++v) pq.push(PrioItem{priority(v), v});

  std::vector<std::vector<ChEdge>> frozen_fwd(static_cast<size_t>(n));
  std::vector<std::vector<ChEdge>> frozen_bwd(static_cast<size_t>(n));
  int32_t next_rank = 0;
  while (!pq.empty()) {
    const PrioItem top = pq.pop();
    const VertexId v = top.vertex;
    if (contracted[static_cast<size_t>(v)]) continue;
    // Lazy update: contract only if the recomputed priority still wins.
    const int64_t prio = priority(v);
    if (!pq.empty() && prio > pq.top().prio) {
      pq.push(PrioItem{prio, v});
      continue;
    }

    ch.rank_[static_cast<size_t>(v)] = next_rank++;
    process(v, /*apply=*/true, kContractWitnessCap);
    contracted[static_cast<size_t>(v)] = 1;

    // Freeze v's live edges — every surviving endpoint outranks v — and
    // unlink v from the remaining graph.
    for (const BuildEdge& oe : out[static_cast<size_t>(v)]) {
      if (contracted[static_cast<size_t>(oe.to)]) continue;
      frozen_fwd[static_cast<size_t>(v)].push_back(
          ChEdge{oe.weight, oe.to, oe.mid});
      EraseEdgeTo(&in[static_cast<size_t>(oe.to)], v);
      ++deleted_neighbors[static_cast<size_t>(oe.to)];
      level[static_cast<size_t>(oe.to)] =
          std::max(level[static_cast<size_t>(oe.to)],
                   level[static_cast<size_t>(v)] + 1);
    }
    for (const BuildEdge& ie : in[static_cast<size_t>(v)]) {
      if (contracted[static_cast<size_t>(ie.to)]) continue;
      frozen_bwd[static_cast<size_t>(v)].push_back(
          ChEdge{ie.weight, ie.to, ie.mid});
      EraseEdgeTo(&out[static_cast<size_t>(ie.to)], v);
      ++deleted_neighbors[static_cast<size_t>(ie.to)];
      level[static_cast<size_t>(ie.to)] =
          std::max(level[static_cast<size_t>(ie.to)],
                   level[static_cast<size_t>(v)] + 1);
    }
    out[static_cast<size_t>(v)].clear();
    in[static_cast<size_t>(v)].clear();
  }

  // CSR-ify the frozen per-vertex lists.
  const auto csr = [n](const std::vector<std::vector<ChEdge>>& lists,
                       std::vector<int64_t>* offsets,
                       std::vector<ChEdge>* edges) {
    offsets->assign(static_cast<size_t>(n) + 1, 0);
    for (int64_t v = 0; v < n; ++v) {
      (*offsets)[static_cast<size_t>(v) + 1] =
          (*offsets)[static_cast<size_t>(v)] +
          static_cast<int64_t>(lists[static_cast<size_t>(v)].size());
    }
    edges->clear();
    edges->reserve(static_cast<size_t>((*offsets)[static_cast<size_t>(n)]));
    for (int64_t v = 0; v < n; ++v) {
      for (const ChEdge& e : lists[static_cast<size_t>(v)]) {
        edges->push_back(e);
      }
    }
  };
  csr(frozen_fwd, &ch.up_fwd_offsets_, &ch.up_fwd_edges_);
  csr(frozen_bwd, &ch.up_bwd_offsets_, &ch.up_bwd_edges_);

  ch.MeasureSearchCost();
  ch.build_stats_.build_ms = timer.ElapsedMillis();
  ch.build_stats_.shortcuts_added = ch.num_shortcuts_;
  return ch;
}

void ChOracle::ForwardUpwardSearch(
    VertexId source, OracleWorkspace& ws,
    std::vector<std::pair<VertexId, Weight>>* settled) const {
  RunUpwardSearch(up_fwd_offsets_, up_fwd_edges_, up_bwd_offsets_,
                  up_bwd_edges_, source, g_->num_vertices(), ws.fwd,
                  ws.fwd_edge, ws.heap, settled);
}

void ChOracle::BackwardUpwardSearch(
    VertexId target, OracleWorkspace& ws,
    std::vector<std::pair<VertexId, Weight>>* settled) const {
  RunUpwardSearch(up_bwd_offsets_, up_bwd_edges_, up_fwd_offsets_,
                  up_fwd_edges_, target, g_->num_vertices(), ws.bwd,
                  ws.bwd_edge, ws.heap, settled);
}

void ChOracle::UnpackFwdEdgeAt(int64_t idx,
                               std::vector<Weight>* weights) const {
  const auto it = std::upper_bound(up_fwd_offsets_.begin(),
                                   up_fwd_offsets_.end(), idx);
  const auto owner = static_cast<VertexId>(
      std::distance(up_fwd_offsets_.begin(), it) - 1);
  UnpackFwd(owner, up_fwd_edges_[static_cast<size_t>(idx)], weights);
}

void ChOracle::UnpackBwdEdgeAt(int64_t idx,
                               std::vector<Weight>* weights) const {
  const auto it = std::upper_bound(up_bwd_offsets_.begin(),
                                   up_bwd_offsets_.end(), idx);
  const auto owner = static_cast<VertexId>(
      std::distance(up_bwd_offsets_.begin(), it) - 1);
  UnpackBwd(owner, up_bwd_edges_[static_cast<size_t>(idx)], weights);
}

uint64_t ChOracle::StructureChecksum() const {
  const auto mix = [](uint64_t* d, uint64_t v) {
    *d = (*d ^ (v + 0x9E3779B97F4A7C15ULL)) * 0xBF58476D1CE4E5B9ULL;
    *d ^= *d >> 31;
  };
  uint64_t d = 0xC4B1'5C4E'7531'0001ULL;
  const auto mix_side = [&](const std::vector<int64_t>& offsets,
                            const std::vector<ChEdge>& edges) {
    mix(&d, static_cast<uint64_t>(edges.size()));
    for (const int64_t o : offsets) mix(&d, static_cast<uint64_t>(o));
    for (const ChEdge& e : edges) {
      mix(&d, std::bit_cast<uint64_t>(e.weight));
      mix(&d, static_cast<uint64_t>(static_cast<uint32_t>(e.to)));
      mix(&d, static_cast<uint64_t>(static_cast<uint32_t>(e.mid)));
    }
  };
  mix_side(up_fwd_offsets_, up_fwd_edges_);
  mix_side(up_bwd_offsets_, up_bwd_edges_);
  return d;
}

void ChOracle::MeasureSearchCost() {
  const int64_t n = g_->num_vertices();
  if (n == 0) {
    avg_up_settles_ = 1;
    return;
  }
  const int64_t samples = std::min<int64_t>(32, n);
  OracleWorkspace ws;
  std::vector<std::pair<VertexId, Weight>> settled;
  int64_t total = 0;
  for (int64_t i = 0; i < samples; ++i) {
    settled.clear();
    RunUpwardSearch(up_fwd_offsets_, up_fwd_edges_, up_bwd_offsets_,
                    up_bwd_edges_, static_cast<VertexId>((n * i) / samples),
                    n, ws.fwd, ws.fwd_edge, ws.heap, &settled);
    total += static_cast<int64_t>(settled.size());
  }
  avg_up_settles_ = std::max<int64_t>(1, total / samples);
}

const ChEdge& ChOracle::FrozenEdge(VertexId mid, VertexId to,
                                   bool fwd) const {
  const std::span<const ChEdge> edges = fwd ? UpFwd(mid) : UpBwd(mid);
  for (const ChEdge& e : edges) {
    if (e.to == to) return e;
  }
  SKYSR_CHECK_MSG(false, "CH shortcut references a missing component edge");
  return edges[0];  // unreachable
}

void ChOracle::UnpackFwd(VertexId owner, const ChEdge& e,
                         std::vector<Weight>* weights) const {
  if (e.mid == kInvalidVertex) {
    weights->push_back(e.weight);
    return;
  }
  UnpackBwd(e.mid, FrozenEdge(e.mid, owner, /*fwd=*/false), weights);
  UnpackFwd(e.mid, FrozenEdge(e.mid, e.to, /*fwd=*/true), weights);
}

void ChOracle::UnpackBwd(VertexId owner, const ChEdge& e,
                         std::vector<Weight>* weights) const {
  if (e.mid == kInvalidVertex) {
    weights->push_back(e.weight);
    return;
  }
  UnpackBwd(e.mid, FrozenEdge(e.mid, e.to, /*fwd=*/false), weights);
  UnpackFwd(e.mid, FrozenEdge(e.mid, owner, /*fwd=*/true), weights);
}

namespace {

/// Sums unpacked original-edge weights source->target, left to right — the
/// association order a flat Dijkstra's relaxations use.
Weight PathOrderSum(const std::vector<Weight>& weights) {
  Weight total = 0;
  for (const Weight w : weights) total += w;
  return total;
}

}  // namespace

Weight ChOracle::Distance(VertexId source, VertexId target,
                          OracleWorkspace& ws) const {
  SKYSR_DCHECK(source >= 0 && source < g_->num_vertices());
  SKYSR_DCHECK(target >= 0 && target < g_->num_vertices());
  const int64_t n = g_->num_vertices();
  ws.fwd.Prepare(n);
  ws.bwd.Prepare(n);
  ws.fwd_edge.Prepare(n, -1);
  ws.bwd_edge.Prepare(n, -1);

  // Alternating bidirectional upward search with the classic pruning: a
  // side stops once its queue minimum exceeds the best meeting sum (plus
  // the epsilon window, so near-best candidates survive for re-summing).
  DaryHeap<UpItem>& fwd_heap = ws.heap;
  DaryHeap<UpItem>& bwd_heap = ws.heap2;
  fwd_heap.clear();
  bwd_heap.clear();
  ws.fwd.SetDist(source, 0, kInvalidVertex);
  fwd_heap.push(UpItem{0, source});
  ws.bwd.SetDist(target, 0, kInvalidVertex);
  bwd_heap.push(UpItem{0, target});

  Weight best = kInfWeight;
  std::vector<VertexId>& meets = ws.table.meets;
  meets.clear();
  const auto step = [&](bool forward) {
    DaryHeap<UpItem>& heap = forward ? fwd_heap : bwd_heap;
    DijkstraWorkspace& mine = forward ? ws.fwd : ws.bwd;
    DijkstraWorkspace& other = forward ? ws.bwd : ws.fwd;
    StampedArray<int32_t>& edge_of = forward ? ws.fwd_edge : ws.bwd_edge;
    const auto& offsets = forward ? up_fwd_offsets_ : up_bwd_offsets_;
    const auto& edges = forward ? up_fwd_edges_ : up_bwd_edges_;

    const UpItem item = heap.pop();
    if (mine.Settled(item.vertex)) return;
    mine.MarkSettled(item.vertex);
    if (other.Settled(item.vertex)) {
      const Weight sum = item.dist + other.Dist(item.vertex);
      if (sum < best) best = sum;
      meets.push_back(item.vertex);
    }
    if (Stalled(forward ? up_bwd_offsets_ : up_fwd_offsets_,
                forward ? up_bwd_edges_ : up_fwd_edges_, item.vertex,
                item.dist, mine)) {
      return;
    }
    const auto b = static_cast<size_t>(offsets[item.vertex]);
    const auto e = static_cast<size_t>(offsets[item.vertex + 1]);
    for (size_t idx = b; idx < e; ++idx) {
      const ChEdge& ed = edges[idx];
      if (mine.Settled(ed.to)) continue;
      const Weight nd = item.dist + ed.weight;
      if (nd < mine.Dist(ed.to)) {
        mine.SetDist(ed.to, nd, item.vertex);
        edge_of.Set(ed.to, static_cast<int32_t>(idx));
        heap.push(UpItem{nd, ed.to});
      }
    }
  };
  while (!fwd_heap.empty() || !bwd_heap.empty()) {
    const Weight stop = best + best * kMeetEpsilon;  // inf while no meet
    const bool fwd_live = !fwd_heap.empty() && fwd_heap.top().dist <= stop;
    const bool bwd_live = !bwd_heap.empty() && bwd_heap.top().dist <= stop;
    if (!fwd_live && !bwd_live) break;
    if (fwd_live &&
        (!bwd_live || fwd_heap.top().dist <= bwd_heap.top().dist)) {
      step(/*forward=*/true);
    } else {
      step(/*forward=*/false);
    }
  }
  if (best == kInfWeight) return kInfWeight;

  const Weight window = best + best * kMeetEpsilon;
  Weight exact = kInfWeight;
  std::vector<Weight>& weights = ws.table.weights;
  std::vector<std::pair<VertexId, int32_t>>& chain = ws.table.chain;
  for (const VertexId v : meets) {
    if (ws.fwd.Dist(v) + ws.bwd.Dist(v) > window) continue;
    weights.clear();
    chain.clear();
    for (VertexId x = v; x != source; x = ws.fwd.Parent(x)) {
      chain.emplace_back(ws.fwd.Parent(x), ws.fwd_edge.Get(x));
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      UnpackFwd(it->first, up_fwd_edges_[static_cast<size_t>(it->second)],
                &weights);
    }
    for (VertexId x = v; x != target; x = ws.bwd.Parent(x)) {
      UnpackBwd(ws.bwd.Parent(x),
                up_bwd_edges_[static_cast<size_t>(ws.bwd_edge.Get(x))],
                &weights);
    }
    exact = std::min(exact, PathOrderSum(weights));
  }
  return exact;
}

void ChOracle::Table(std::span<const VertexId> sources,
                     std::span<const VertexId> targets, OracleWorkspace& ws,
                     Weight* out) const {
  TraceSpan span(ws.trace, TracePhase::kOracleTable);
  const int64_t n = g_->num_vertices();
  const size_t num_t = targets.size();
  if (num_t == 0) return;
  ChTableScratch& t = ws.table;

  // Backward phase: per-target upward searches. Each target's search tree
  // (settle vertex, distance, parent link) lands in one span of `records`,
  // sorted by vertex so the unpack walk can binary-search what the old
  // implementation kept in per-call hash maps. All scratch keeps capacity
  // across calls — a warmed workspace runs tables allocation-free.
  t.records.clear();
  t.target_offsets.clear();
  t.target_offsets.push_back(0);
  for (size_t j = 0; j < num_t; ++j) {
    t.settled.clear();
    RunUpwardSearch(up_bwd_offsets_, up_bwd_edges_, up_fwd_offsets_,
                    up_fwd_edges_, targets[j], n, ws.bwd, ws.bwd_edge,
                    ws.heap, &t.settled);
    for (const auto& [v, d] : t.settled) {
      t.records.push_back(ChTableScratch::BwdRecord{
          v, d, ws.bwd.Parent(v), ws.bwd_edge.Get(v)});
    }
    std::sort(t.records.begin() + t.target_offsets.back(), t.records.end(),
              [](const ChTableScratch::BwdRecord& a,
                 const ChTableScratch::BwdRecord& b) {
                return a.vertex < b.vertex;
              });
    t.target_offsets.push_back(static_cast<int64_t>(t.records.size()));
  }

  // Bucket the records per vertex by counting scatter. Scattering
  // target-major keeps each vertex's entries in ascending target order —
  // the same order the old per-vertex append produced, so the scan
  // arithmetic below visits pairs identically.
  t.bucket_count.Prepare(n, 0);
  t.touched.clear();
  for (const ChTableScratch::BwdRecord& rec : t.records) {
    const int32_t c = t.bucket_count.Get(rec.vertex);
    if (c == 0) t.touched.push_back(rec.vertex);
    t.bucket_count.Set(rec.vertex, c + 1);
  }
  t.bucket_head.Prepare(n, -1);
  int32_t fill = 0;
  for (const VertexId v : t.touched) {
    t.bucket_head.Set(v, fill);
    fill += t.bucket_count.Get(v);
  }
  t.entries.resize(t.records.size());
  t.bucket_count.Prepare(n, 0);  // reused as the per-vertex fill cursor
  for (size_t j = 0; j < num_t; ++j) {
    const auto b = static_cast<size_t>(t.target_offsets[j]);
    const auto e = static_cast<size_t>(t.target_offsets[j + 1]);
    for (size_t r = b; r < e; ++r) {
      const ChTableScratch::BwdRecord& rec = t.records[r];
      const int32_t cursor = t.bucket_count.Get(rec.vertex);
      t.entries[static_cast<size_t>(t.bucket_head.Get(rec.vertex) + cursor)] =
          ChTableScratch::BucketEntry{static_cast<int32_t>(j), rec.db};
      t.bucket_count.Set(rec.vertex, cursor + 1);
    }
  }

  // Looks up target j's tree record for vertex x (present for every vertex
  // its search settled).
  const auto tree_record =
      [&t](size_t j, VertexId x) -> const ChTableScratch::BwdRecord& {
    const auto b = t.records.begin() + t.target_offsets[j];
    const auto e = t.records.begin() + t.target_offsets[j + 1];
    const auto it = std::lower_bound(
        b, e, x,
        [](const ChTableScratch::BwdRecord& r, VertexId v) {
          return r.vertex < v;
        });
    SKYSR_DCHECK(it != e && it->vertex == x);
    return *it;
  };

  // Forward phase: one upward search per source, two bucket scans — the
  // first finds each pair's best rounded sum, the second unpacks every
  // candidate inside the epsilon window and re-sums exactly.
  for (size_t i = 0; i < sources.size(); ++i) {
    t.settled.clear();
    RunUpwardSearch(up_fwd_offsets_, up_fwd_edges_, up_bwd_offsets_,
                    up_bwd_edges_, sources[i], n, ws.fwd, ws.fwd_edge,
                    ws.heap, &t.settled);
    t.best.assign(num_t, kInfWeight);
    for (const auto& [v, df] : t.settled) {
      const int32_t head = t.bucket_head.Get(v);
      if (head < 0) continue;
      const int32_t count = t.bucket_count.Get(v);
      for (int32_t k = 0; k < count; ++k) {
        const ChTableScratch::BucketEntry& be =
            t.entries[static_cast<size_t>(head + k)];
        t.best[static_cast<size_t>(be.target)] = std::min(
            t.best[static_cast<size_t>(be.target)], df + be.db);
      }
    }
    Weight* row = out + i * num_t;
    std::fill(row, row + num_t, kInfWeight);
    for (const auto& [v, df] : t.settled) {
      const int32_t head = t.bucket_head.Get(v);
      if (head < 0) continue;
      const int32_t count = t.bucket_count.Get(v);
      for (int32_t k = 0; k < count; ++k) {
        const ChTableScratch::BucketEntry& be =
            t.entries[static_cast<size_t>(head + k)];
        const auto j = static_cast<size_t>(be.target);
        const Weight b = t.best[j];
        if (b == kInfWeight || df + be.db > b + b * kMeetEpsilon) continue;
        t.weights.clear();
        t.chain.clear();
        for (VertexId x = v; x != sources[i]; x = ws.fwd.Parent(x)) {
          t.chain.emplace_back(ws.fwd.Parent(x), ws.fwd_edge.Get(x));
        }
        for (auto cit = t.chain.rbegin(); cit != t.chain.rend(); ++cit) {
          UnpackFwd(cit->first,
                    up_fwd_edges_[static_cast<size_t>(cit->second)],
                    &t.weights);
        }
        for (VertexId x = v; x != targets[j];) {
          const ChTableScratch::BwdRecord& rec = tree_record(j, x);
          UnpackBwd(rec.parent, up_bwd_edges_[static_cast<size_t>(rec.edge)],
                    &t.weights);
          x = rec.parent;
        }
        row[j] = std::min(row[j], PathOrderSum(t.weights));
      }
    }
  }
}

int64_t ChOracle::MemoryBytes() const {
  return static_cast<int64_t>(
      rank_.capacity() * sizeof(int32_t) +
      (up_fwd_offsets_.capacity() + up_bwd_offsets_.capacity()) *
          sizeof(int64_t) +
      (up_fwd_edges_.capacity() + up_bwd_edges_.capacity()) *
          sizeof(ChEdge));
}

Status ChOracle::SavePayload(std::FILE* f) const {
  static_assert(sizeof(ChEdge) == 16, "ChEdge must be padding-free");
  if (!index_io::WriteVec(f, rank_) ||
      !index_io::WriteVec(f, up_fwd_offsets_) ||
      !index_io::WriteVec(f, up_fwd_edges_) ||
      !index_io::WriteVec(f, up_bwd_offsets_) ||
      !index_io::WriteVec(f, up_bwd_edges_) ||
      !index_io::WritePod(f, num_shortcuts_)) {
    return Status::IOError("short write of CH index payload");
  }
  return Status::OK();
}

Result<ChOracle> ChOracle::LoadPayload(std::FILE* f, const Graph& g) {
  ChOracle ch(g);
  if (!index_io::ReadVec(f, &ch.rank_) ||
      !index_io::ReadVec(f, &ch.up_fwd_offsets_) ||
      !index_io::ReadVec(f, &ch.up_fwd_edges_) ||
      !index_io::ReadVec(f, &ch.up_bwd_offsets_) ||
      !index_io::ReadVec(f, &ch.up_bwd_edges_) ||
      !index_io::ReadPod(f, &ch.num_shortcuts_)) {
    return Status::IOError("corrupt or truncated CH index payload");
  }
  const auto n = static_cast<size_t>(g.num_vertices());
  if (ch.rank_.size() != n || ch.up_fwd_offsets_.size() != n + 1 ||
      ch.up_bwd_offsets_.size() != n + 1 ||
      ch.up_fwd_offsets_.back() !=
          static_cast<int64_t>(ch.up_fwd_edges_.size()) ||
      ch.up_bwd_offsets_.back() !=
          static_cast<int64_t>(ch.up_bwd_edges_.size())) {
    return Status::IOError("CH index payload is inconsistent with the graph");
  }
  ch.MeasureSearchCost();
  return ch;
}

}  // namespace skysr

#include "index/flat_oracle.h"

#include "graph/dijkstra_runner.h"
#include "obs/query_trace.h"

namespace skysr {

Weight FlatOracle::Distance(VertexId source, VertexId target,
                            OracleWorkspace& ws) const {
  Weight found = kInfWeight;
  RunDijkstra(*g_, source, ws.fwd, [&](VertexId v, Weight d, VertexId) {
    if (v == target) {
      found = d;
      return VisitAction::kStop;
    }
    return VisitAction::kContinue;
  });
  return found;
}

void FlatOracle::Table(std::span<const VertexId> sources,
                       std::span<const VertexId> targets, OracleWorkspace& ws,
                       Weight* out) const {
  TraceSpan span(ws.trace, TracePhase::kOracleTable);
  // Mark targets once per call; bwd_edge doubles as the marker array.
  ws.bwd_edge.Prepare(g_->num_vertices(), -1);
  size_t unique_targets = 0;
  for (size_t j = 0; j < targets.size(); ++j) {
    if (ws.bwd_edge.Get(targets[j]) < 0) ++unique_targets;
    ws.bwd_edge.Set(targets[j], static_cast<int32_t>(j));
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    Weight* row = out + i * targets.size();
    for (size_t j = 0; j < targets.size(); ++j) row[j] = kInfWeight;
    size_t remaining = unique_targets;
    RunDijkstra(*g_, sources[i], ws.fwd, [&](VertexId v, Weight d, VertexId) {
      const int32_t j = ws.bwd_edge.Get(v);
      if (j >= 0 && row[j] == kInfWeight) {
        row[j] = d;
        if (--remaining == 0) return VisitAction::kStop;
      }
      return VisitAction::kContinue;
    });
  }
  // Duplicate target vertices share one marker slot; fill the copies.
  for (size_t j = 0; j < targets.size(); ++j) {
    const auto first = static_cast<size_t>(ws.bwd_edge.Get(targets[j]));
    if (first != j) {
      for (size_t i = 0; i < sources.size(); ++i) {
        out[i * targets.size() + j] = out[i * targets.size() + first];
      }
    }
  }
}

}  // namespace skysr

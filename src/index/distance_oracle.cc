#include "index/distance_oracle.h"

#include "obs/query_trace.h"

namespace skysr {

const char* OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kFlat:
      return "flat";
    case OracleKind::kCh:
      return "ch";
    case OracleKind::kAlt:
      return "alt";
  }
  return "?";
}

std::optional<OracleKind> ParseOracleKind(std::string_view name) {
  if (name == "flat") return OracleKind::kFlat;
  if (name == "ch") return OracleKind::kCh;
  if (name == "alt") return OracleKind::kAlt;
  return std::nullopt;
}

void DistanceOracle::Table(std::span<const VertexId> sources,
                           std::span<const VertexId> targets,
                           OracleWorkspace& ws, Weight* out) const {
  TraceSpan span(ws.trace, TracePhase::kOracleTable);
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = 0; j < targets.size(); ++j) {
      out[i * targets.size() + j] = Distance(sources[i], targets[j], ws);
    }
  }
}

Weight DistanceOracle::LowerBound(VertexId /*source*/,
                                  VertexId /*target*/) const {
  return 0;
}

}  // namespace skysr

// ALT landmark distance oracle (Goldberg & Harrelson, SODA'05: A*, Landmarks
// and Triangle inequality).
//
// Build: landmarks are chosen by farthest-point selection (each next
// landmark maximizes its minimum distance to those already chosen) and a
// full Dijkstra per landmark stores d(L, v) for every vertex (plus d(v, L)
// via the reversed graph when the graph is directed).
//
// LowerBound(s, t) = max over landmarks of the triangle bounds
// d(L, t) - d(L, s) and d(s, L) - d(t, L) — an O(#landmarks) admissible
// lower bound with no search at all. The §5.3.3 leg bounds consume this
// directly: a minimum over PoI-pair lower bounds is itself a valid leg lower
// bound, so threshold pruning gets fed without any graph traversal. To keep
// admissibility robust against last-ulp rounding of the stored distance
// vectors, positive bounds are shrunk by a relative 1e-12 — vastly more
// than rounding can inflate them, vastly less than could matter for pruning
// strength.
//
// Distance(s, t) runs A* guided by LowerBound(., t). The shrunk bound stays
// consistent, so the first settle of t is optimal, and A* accumulates
// g-values source->target in path order — the same association order (and
// therefore the same double) as a flat Dijkstra.

#ifndef SKYSR_INDEX_ALT_ORACLE_H_
#define SKYSR_INDEX_ALT_ORACLE_H_

#include <cstdio>
#include <vector>

#include "index/distance_oracle.h"
#include "util/status.h"

namespace skysr {

class AltOracle final : public DistanceOracle {
 public:
  struct BuildStats {
    double build_ms = 0;
    int num_landmarks = 0;
  };

  /// Preprocesses the graph (which must outlive the oracle).
  /// `num_landmarks` is clamped to the vertex count; selection stops early
  /// when every vertex is within distance 0 of a chosen landmark.
  static AltOracle Build(const Graph& g, int num_landmarks = 8);

  OracleKind kind() const override { return OracleKind::kAlt; }
  const Graph& graph() const override { return *g_; }

  Weight Distance(VertexId source, VertexId target,
                  OracleWorkspace& ws) const override;

  Weight LowerBound(VertexId source, VertexId target) const override;

  int64_t MemoryBytes() const override;

  const BuildStats& build_stats() const { return build_stats_; }
  const std::vector<VertexId>& landmarks() const { return landmarks_; }

  /// Index payload IO (headers handled by index_io; `g` must be
  /// checksum-verified by the caller).
  Status SavePayload(std::FILE* f) const;
  static Result<AltOracle> LoadPayload(std::FILE* f, const Graph& g);

 private:
  explicit AltOracle(const Graph& g) : g_(&g) {}

  const Graph* g_;
  std::vector<VertexId> landmarks_;
  /// from_[l][v] = d(landmark_l, v); to_[l][v] = d(v, landmark_l). For
  /// undirected graphs to_ is left empty and from_ serves both roles.
  std::vector<std::vector<Weight>> from_;
  std::vector<std::vector<Weight>> to_;
  BuildStats build_stats_;
};

}  // namespace skysr

#endif  // SKYSR_INDEX_ALT_ORACLE_H_

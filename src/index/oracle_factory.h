// Construction helpers tying the oracle implementations together: build by
// kind, or load a saved index file — the one-stop entry point for the CLI,
// the benches, the differential harness and the QueryService.

#ifndef SKYSR_INDEX_ORACLE_FACTORY_H_
#define SKYSR_INDEX_ORACLE_FACTORY_H_

#include <memory>
#include <string>

#include "index/alt_oracle.h"
#include "index/ch_oracle.h"
#include "index/distance_oracle.h"
#include "index/flat_oracle.h"
#include "index/index_io.h"
#include "util/status.h"

namespace skysr {

/// Builds an oracle of the given kind over `g` (which must outlive it).
/// kFlat is free; kCh and kAlt preprocess the graph.
std::unique_ptr<DistanceOracle> MakeOracle(OracleKind kind, const Graph& g);

/// Reads SKYSR_ORACLE from the environment ("flat" / "ch" / "alt");
/// `def` when unset, nullopt when set to an unknown name.
std::optional<OracleKind> OracleKindFromEnv(OracleKind def);

}  // namespace skysr

#endif  // SKYSR_INDEX_ORACLE_FACTORY_H_

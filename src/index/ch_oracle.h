// Contraction-hierarchies distance oracle (Geisberger et al., WEA'08).
//
// Build: vertices are contracted one by one in ascending importance —
// priority = edge difference (shortcuts a contraction would add minus edges
// it removes) plus the count of already-contracted neighbors, maintained
// lazily. Contracting v inserts a shortcut (u, w) for every in/out neighbor
// pair whose shortest u->w path runs through v (decided by a bounded local
// witness search; an inconclusive search conservatively adds the shortcut,
// which never hurts correctness). Each vertex's final edge set — to
// higher-ranked neighbors only — is frozen at its contraction into upward
// forward/backward CSRs.
//
// Query: a bidirectional Dijkstra over the upward graphs; every vertex
// settled by both sides is a meeting candidate and the best up-down path is
// the shortest path. To honor the oracle exactness contract
// (distance_oracle.h), the winner is not returned as the rounded sum of
// shortcut weights: all candidates within a relative epsilon of the best are
// unpacked into original edges and re-summed source->target in path order,
// and the minimum re-summed value is returned — the same double a flat
// Dijkstra computes.
//
// Table() implements the classic bucket many-to-many: one backward upward
// search per target deposits (target, dist) entries at every settled vertex;
// one forward upward search per source then scans the buckets, so the
// backward work is shared by all sources. NNinit's per-hop 1 x N PoI tables
// and the lower-bound PoI-set tables ride on this.
//
// Topology caveat: contraction hierarchies assume road-like graphs (low
// highway dimension). Grid/cluster families preprocess in about a second
// per 20k vertices with tiny upward search spaces; expander-like graphs
// (the small-world family) grow dense hub shortcuts, build one to two
// orders of magnitude slower and answer queries with much larger upward
// spaces — ApproxSearchSettles() reports the measured size so consumers
// can fall back to plain searches where the index would lose.

#ifndef SKYSR_INDEX_CH_ORACLE_H_
#define SKYSR_INDEX_CH_ORACLE_H_

#include <cstdio>
#include <span>
#include <vector>

#include "index/distance_oracle.h"
#include "util/status.h"

namespace skysr {

/// One upward edge. `mid` is the contracted middle vertex a shortcut
/// bypasses (kInvalidVertex for original graph edges); unpacking recurses
/// through it. Field order keeps the struct padding-free for binary IO.
struct ChEdge {
  Weight weight;
  VertexId to;
  VertexId mid;
};

class ChOracle final : public DistanceOracle {
 public:
  struct BuildStats {
    double build_ms = 0;
    int64_t shortcuts_added = 0;
    int64_t witness_settled = 0;  // witness-search effort during build
  };

  /// Preprocesses the graph (which must outlive the oracle).
  static ChOracle Build(const Graph& g);

  OracleKind kind() const override { return OracleKind::kCh; }
  const Graph& graph() const override { return *g_; }

  Weight Distance(VertexId source, VertexId target,
                  OracleWorkspace& ws) const override;

  void Table(std::span<const VertexId> sources,
             std::span<const VertexId> targets, OracleWorkspace& ws,
             Weight* out) const override;

  bool SupportsFastTable() const override { return true; }

  /// Mean settles of an upward search, measured over a deterministic
  /// sample of sources right after Build/Load.
  int64_t ApproxSearchSettles() const override { return avg_up_settles_; }

  int64_t MemoryBytes() const override;

  const BuildStats& build_stats() const { return build_stats_; }
  int64_t num_shortcuts() const { return num_shortcuts_; }
  /// Upward edges stored over both directions (original + shortcuts).
  int64_t num_upward_edges() const {
    return static_cast<int64_t>(up_fwd_edges_.size() + up_bwd_edges_.size());
  }

  /// Index payload IO (headers handled by index_io). The loaded oracle is
  /// bound to `g`, which the caller must have checksum-verified.
  Status SavePayload(std::FILE* f) const;
  static Result<ChOracle> LoadPayload(std::FILE* f, const Graph& g);

  // --- Category-bucket support (src/retrieval/category_buckets) -----------
  // The PoI-retrieval subsystem precomputes per-category target buckets from
  // this oracle's upward searches. These hooks expose exactly the primitives
  // its build and scans need while keeping the CSRs themselves private.

  /// Near-best meeting candidates within this relative window of the best
  /// rounded up-down sum are unpacked and re-summed (the window absorbs the
  /// association-order rounding drift of nested shortcut weights). Bucket
  /// scans must apply the same window to stay bit-equal with Table().
  static constexpr double kMeetEpsilon = 1e-9;

  /// Full upward search (with stall-on-demand) from one endpoint over the
  /// forward (source-side) / backward (target-side) CSR. Settles land in
  /// `settled` in settle order; the search tree (parents and relaxing CSR
  /// edge indices) stays readable from `ws.fwd` / `ws.fwd_edge` (forward)
  /// or `ws.bwd` / `ws.bwd_edge` (backward) until the next search on that
  /// workspace side. Both borrow `ws.heap` as the frontier.
  void ForwardUpwardSearch(
      VertexId source, OracleWorkspace& ws,
      std::vector<std::pair<VertexId, Weight>>* settled) const;
  void BackwardUpwardSearch(
      VertexId target, OracleWorkspace& ws,
      std::vector<std::pair<VertexId, Weight>>* settled) const;

  /// Upward edges by the CSR indices the searches report through `edge_of`.
  const ChEdge& UpFwdEdgeAt(int64_t idx) const {
    return up_fwd_edges_[static_cast<size_t>(idx)];
  }
  const ChEdge& UpBwdEdgeAt(int64_t idx) const {
    return up_bwd_edges_[static_cast<size_t>(idx)];
  }
  int64_t NumUpFwdEdges() const {
    return static_cast<int64_t>(up_fwd_edges_.size());
  }
  int64_t NumUpBwdEdges() const {
    return static_cast<int64_t>(up_bwd_edges_.size());
  }

  /// Appends the original-edge weights underlying upward edge `idx` (owner
  /// vertex resolved internally from the CSR offsets) in travel order —
  /// forward: owner -> e.to; backward: e.to -> owner. Used by the bucket
  /// index to precompute per-edge unpack pools.
  void UnpackFwdEdgeAt(int64_t idx, std::vector<Weight>* weights) const;
  void UnpackBwdEdgeAt(int64_t idx, std::vector<Weight>* weights) const;

  /// Appends the original-edge weights underlying a forward upward edge
  /// (path owner -> e.to) / backward upward edge (path e.to -> owner) in
  /// travel order — the public unpack entry points for bucket scans.
  void UnpackFwdEdge(VertexId owner, const ChEdge& e,
                     std::vector<Weight>* weights) const {
    UnpackFwd(owner, e, weights);
  }
  void UnpackBwdEdge(VertexId owner, const ChEdge& e,
                     std::vector<Weight>* weights) const {
    UnpackBwd(owner, e, weights);
  }

  /// Order-sensitive digest of the upward structure (offsets + edges, both
  /// directions). Saved bucket tables embed it so they can only bind to the
  /// CH build they were derived from — edge CSR indices are meaningless
  /// against any other build.
  uint64_t StructureChecksum() const;

 private:
  explicit ChOracle(const Graph& g) : g_(&g) {}

  std::span<const ChEdge> UpFwd(VertexId v) const {
    return {up_fwd_edges_.data() + up_fwd_offsets_[static_cast<size_t>(v)],
            static_cast<size_t>(up_fwd_offsets_[static_cast<size_t>(v) + 1] -
                                up_fwd_offsets_[static_cast<size_t>(v)])};
  }
  std::span<const ChEdge> UpBwd(VertexId v) const {
    return {up_bwd_edges_.data() + up_bwd_offsets_[static_cast<size_t>(v)],
            static_cast<size_t>(up_bwd_offsets_[static_cast<size_t>(v) + 1] -
                                up_bwd_offsets_[static_cast<size_t>(v)])};
  }

  /// Appends the original-edge weights underlying `e` in travel order.
  /// UnpackFwd: e lives in up_fwd[owner], path owner -> e.to.
  /// UnpackBwd: e lives in up_bwd[owner], path e.to -> owner.
  void UnpackFwd(VertexId owner, const ChEdge& e,
                 std::vector<Weight>* weights) const;
  void UnpackBwd(VertexId owner, const ChEdge& e,
                 std::vector<Weight>* weights) const;
  /// The frozen edge with the given head in `mid`'s upward list (guaranteed
  /// to exist for any shortcut middle).
  const ChEdge& FrozenEdge(VertexId mid, VertexId to, bool fwd) const;

  /// Samples upward searches to estimate the per-endpoint query cost.
  void MeasureSearchCost();

  const Graph* g_;
  std::vector<int32_t> rank_;  // vertex -> contraction order (0 = first)
  std::vector<int64_t> up_fwd_offsets_;
  std::vector<ChEdge> up_fwd_edges_;
  std::vector<int64_t> up_bwd_offsets_;
  std::vector<ChEdge> up_bwd_edges_;
  int64_t num_shortcuts_ = 0;
  int64_t avg_up_settles_ = 1;
  BuildStats build_stats_;
};

}  // namespace skysr

#endif  // SKYSR_INDEX_CH_ORACLE_H_

// Pluggable distance-oracle API: the index layer's contract with every
// distance consumer (NNinit seeding, §5.3.3 lower bounds, OSR destination
// tails, the CLI and the QueryService).
//
// An oracle is an immutable, preprocessed view of one Graph that answers
// exact point-to-point shortest-path distances and many-to-many distance
// tables, plus (optionally) cheap admissible lower bounds. Three
// implementations exist:
//
//   FlatOracle  graph Dijkstra, no preprocessing (the default; identical to
//               the pre-index code paths)
//   ChOracle    contraction hierarchies: edge-difference node ordering,
//               shortcut insertion, bidirectional upward query, bucket-based
//               many-to-many
//   AltOracle   ALT landmarks: farthest-selection landmarks whose distance
//               vectors give triangle-inequality lower bounds and an exact
//               A* distance query
//
// Exactness contract (load-bearing — the differential harness demands
// bit-identical skylines across oracles): Distance() and Table() return the
// SAME double a reference graph Dijkstra would return, not merely a value
// within floating-point noise of it. ChOracle achieves this by unpacking the
// winning up-down path into original edges and re-summing source->target in
// path order (the association order Dijkstra's relaxations use); AltOracle's
// A* accumulates g-values in path order by construction. When several
// distinct shortest paths exist, their path-order sums coincide for exact
// (integer-valued) weights and differ with probability zero for continuously
// distributed weights; randomized tests in tests/index_test.cc assert the
// equality across all scenario graph families. LowerBound() is merely
// admissible (<= the true distance), never exact.
//
// Thread safety: oracles are immutable after construction; all query methods
// are const and take a caller-owned OracleWorkspace. Share one oracle across
// threads, give each thread its own workspace (the QueryService does exactly
// that).

#ifndef SKYSR_INDEX_DISTANCE_ORACLE_H_
#define SKYSR_INDEX_DISTANCE_ORACLE_H_

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/dijkstra_workspace.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/dary_heap.h"
#include "util/stamped_array.h"

namespace skysr {

/// Which oracle implementation backs a DistanceOracle.
enum class OracleKind {
  kFlat,
  kCh,
  kAlt,
};

/// "flat" / "ch" / "alt".
const char* OracleKindName(OracleKind kind);
/// Inverse of OracleKindName; nullopt for unknown names.
std::optional<OracleKind> ParseOracleKind(std::string_view name);

/// Heap item for oracle-internal searches (CH upward Dijkstra). The
/// (dist, vertex) comparator is the deterministic settle order the
/// bit-exactness contract depends on.
struct OracleHeapItem {
  Weight dist;
  VertexId vertex;
  bool operator<(const OracleHeapItem& o) const {
    if (dist != o.dist) return dist < o.dist;
    return vertex < o.vertex;
  }
};

/// Flat scratch for ChOracle::Table(): backward search trees stored as
/// target-major sorted record spans (binary-search lookup replaces the old
/// per-call hash maps) and per-vertex buckets built by counting scatter.
/// Everything keeps capacity across calls, so a warmed workspace runs
/// tables allocation-free.
struct ChTableScratch {
  struct BwdRecord {
    VertexId vertex;
    Weight db;
    VertexId parent;  // backward-search tree link, for path unpacking
    int32_t edge;     // CSR edge index that set the label
  };
  struct BucketEntry {
    int32_t target;
    Weight db;
  };
  std::vector<BwdRecord> records;       // per-target spans, sorted by vertex
  std::vector<int64_t> target_offsets;  // span bounds, size num_targets + 1
  StampedArray<int32_t> bucket_head;    // vertex -> first entry (-1 = none)
  StampedArray<int32_t> bucket_count;   // vertex -> entry count
  std::vector<BucketEntry> entries;     // per-vertex, target-ascending
  std::vector<VertexId> touched;        // vertices owning a bucket
  std::vector<std::pair<VertexId, Weight>> settled;
  std::vector<Weight> best;
  std::vector<Weight> weights;
  std::vector<std::pair<VertexId, int32_t>> chain;
  std::vector<VertexId> meets;  // Distance()'s meeting candidates
};

class QueryTrace;  // src/obs/query_trace.h — forward-declared to keep the
                   // index layer free of the obs headers

/// Per-thread scratch for oracle queries, reusable across calls. The members
/// cover the needs of every implementation (flat keeps a plain Dijkstra
/// workspace; CH runs two upward searches and remembers the relaxed CSR edge
/// per vertex for path unpacking; ALT uses `fwd` for its A*).
struct OracleWorkspace {
  DijkstraWorkspace fwd;
  DijkstraWorkspace bwd;
  StampedArray<int32_t> fwd_edge;  // CSR edge index that set fwd dist
  StampedArray<int32_t> bwd_edge;
  StampedArray<Weight> heur;  // per-target heuristic cache (ALT's A*)
  DaryHeap<OracleHeapItem> heap;   // search frontier (CH upward searches)
  DaryHeap<OracleHeapItem> heap2;  // opposite side of bidirectional queries
  ChTableScratch table;
  /// Borrowed tracer (src/obs/): Table() implementations record
  /// kOracleTable spans into it. Null or disabled — the default — costs one
  /// branch per table call. The workspace is per-engine like the trace, so
  /// sharing the oracle across threads stays sound.
  QueryTrace* trace = nullptr;
};

/// Immutable exact distance index over one Graph.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  virtual OracleKind kind() const = 0;
  virtual const Graph& graph() const = 0;

  /// Exact shortest-path distance (kInfWeight when unreachable), bit-equal
  /// to a reference graph Dijkstra (see the exactness contract above).
  virtual Weight Distance(VertexId source, VertexId target,
                          OracleWorkspace& ws) const = 0;

  /// Exact many-to-many table: out[i * targets.size() + j] =
  /// Distance(sources[i], targets[j]). `out` must hold
  /// sources.size() * targets.size() entries. The base implementation loops
  /// Distance(); ChOracle overrides it with a bucket search that amortizes
  /// the backward work across sources.
  virtual void Table(std::span<const VertexId> sources,
                     std::span<const VertexId> targets, OracleWorkspace& ws,
                     Weight* out) const;

  /// Admissible lower bound on Distance(source, target), O(1), no workspace.
  /// The default 0 is always sound; AltOracle returns landmark triangle
  /// bounds. Consumers may prune with it but must never treat it as exact.
  virtual Weight LowerBound(VertexId source, VertexId target) const;

  /// True when Table() beats looping Distance() (ChOracle's bucket search).
  /// Consumers with a cheaper specialized plan for flat oracles (e.g.
  /// NNinit's single-Dijkstra chain) use this to pick a code path.
  virtual bool SupportsFastTable() const { return false; }

  /// Rough settles one Table() endpoint (or one Distance() side) costs —
  /// the oracle's self-measured search-space size. Consumers weigh it
  /// against the cost of a plain graph search when choosing a code path:
  /// CH upward spaces are tiny on road-like graphs but can approach the
  /// whole graph on expander-like ones. Defaults to the whole graph.
  virtual int64_t ApproxSearchSettles() const {
    return graph().num_vertices();
  }

  /// Heap footprint of the index structures in bytes.
  virtual int64_t MemoryBytes() const = 0;
};

}  // namespace skysr

#endif  // SKYSR_INDEX_DISTANCE_ORACLE_H_

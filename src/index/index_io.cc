#include "index/index_io.h"

#include <bit>
#include <cstring>

#include "index/alt_oracle.h"
#include "index/ch_oracle.h"
#include "util/rng.h"

namespace skysr {
namespace {

constexpr char kIndexMagic[8] = {'S', 'K', 'Y', 'I', 'D', 'X', '1', '\0'};

void Mix(uint64_t* digest, uint64_t v) {
  uint64_t s = *digest ^ (v + 0x9E3779B97F4A7C15ULL);
  *digest = SplitMix64(s);
}

}  // namespace

uint64_t GraphChecksum(const Graph& g) {
  uint64_t d = 0xC4C3'5157'5352'1D18ULL;
  Mix(&d, static_cast<uint64_t>(g.num_vertices()));
  Mix(&d, static_cast<uint64_t>(g.num_edges()));
  Mix(&d, g.directed() ? 1 : 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& nb : g.OutEdges(v)) {
      Mix(&d, static_cast<uint64_t>(static_cast<uint32_t>(nb.to)));
      Mix(&d, std::bit_cast<uint64_t>(nb.weight));
    }
  }
  // PoI placement matters to oracle consumers (NNinit tables, leg bounds),
  // so fold it in too.
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    Mix(&d, static_cast<uint64_t>(static_cast<uint32_t>(g.VertexOfPoi(p))));
  }
  return d;
}

uint64_t PoiAssignmentChecksum(const Graph& g) {
  uint64_t d = 0xB0C4'E7A1'5051'2D02ULL;
  Mix(&d, static_cast<uint64_t>(g.num_pois()));
  for (PoiId p = 0; p < g.num_pois(); ++p) {
    Mix(&d, static_cast<uint64_t>(static_cast<uint32_t>(g.VertexOfPoi(p))));
    const auto cats = g.PoiCategories(p);
    Mix(&d, cats.size());
    for (const CategoryId c : cats) {
      Mix(&d, static_cast<uint64_t>(static_cast<uint32_t>(c)));
    }
  }
  return d;
}

Status SaveOracleIndex(const DistanceOracle& oracle,
                       const std::string& path) {
  if (oracle.kind() == OracleKind::kFlat) {
    return Status::InvalidArgument(
        "the flat oracle has no index to save; build one with --oracle ch "
        "or --oracle alt");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const uint8_t kind = static_cast<uint8_t>(oracle.kind());
  const uint64_t checksum = GraphChecksum(oracle.graph());
  bool ok = std::fwrite(kIndexMagic, sizeof(kIndexMagic), 1, f) == 1 &&
            index_io::WritePod(f, kind) && index_io::WritePod(f, checksum);
  Status payload = Status::OK();
  if (ok) {
    if (oracle.kind() == OracleKind::kCh) {
      payload = static_cast<const ChOracle&>(oracle).SavePayload(f);
    } else {
      payload = static_cast<const AltOracle&>(oracle).SavePayload(f);
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return payload;
}

Result<std::unique_ptr<DistanceOracle>> LoadOracleIndex(
    const std::string& path, const Graph& g) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  uint8_t kind_byte = 0;
  uint64_t checksum = 0;
  const bool header_ok =
      std::fread(magic, sizeof(magic), 1, f) == 1 &&
      std::memcmp(magic, kIndexMagic, sizeof(kIndexMagic)) == 0 &&
      index_io::ReadPod(f, &kind_byte) && index_io::ReadPod(f, &checksum) &&
      (kind_byte == static_cast<uint8_t>(OracleKind::kCh) ||
       kind_byte == static_cast<uint8_t>(OracleKind::kAlt));
  if (!header_ok) {
    std::fclose(f);
    return Status::IOError("not an oracle index file: " + path);
  }
  if (checksum != GraphChecksum(g)) {
    std::fclose(f);
    return Status::IOError(
        "index file " + path +
        " was built for a different graph (checksum mismatch); rebuild it "
        "against this dataset with `skysr_cli index build`");
  }
  const auto kind = static_cast<OracleKind>(kind_byte);
  if (kind == OracleKind::kCh) {
    auto loaded = ChOracle::LoadPayload(f, g);
    std::fclose(f);
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<DistanceOracle>(
        new ChOracle(std::move(loaded).ValueOrDie()));
  }
  auto loaded = AltOracle::LoadPayload(f, g);
  std::fclose(f);
  if (!loaded.ok()) return loaded.status();
  return std::unique_ptr<DistanceOracle>(
      new AltOracle(std::move(loaded).ValueOrDie()));
}

const char* OracleIndexExtension(OracleKind kind) {
  switch (kind) {
    case OracleKind::kCh:
      return "chidx";
    case OracleKind::kAlt:
      return "altidx";
    case OracleKind::kFlat:
      break;
  }
  return "idx";
}

}  // namespace skysr

#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace skysr {
namespace {

Graph BuildGraphOrDie(Result<Graph> r) {
  SKYSR_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return std::move(r).ValueOrDie();
}

/// Triangular noise in [-spread, spread] (sum of two uniforms); avoids libm
/// transcendentals whose rounding varies across platforms.
double Jitter(Rng& rng, double spread) {
  return (rng.UniformDouble() + rng.UniformDouble() - 1.0) * spread;
}

Weight DrawWeight(const ScenarioGraphParams& p, Rng& rng, double x1, double y1,
                  double x2, double y2) {
  switch (p.weights) {
    case WeightModel::kUnit:
      return 1.0;
    case WeightModel::kUniform:
      return rng.UniformDouble(p.weight_min, p.weight_max);
    case WeightModel::kEuclidean: {
      const double dx = x2 - x1;
      const double dy = y2 - y1;
      const double d = std::sqrt(dx * dx + dy * dy);
      return std::max(d, 1e-6) * (1.0 + 0.2 * rng.UniformDouble());
    }
  }
  SKYSR_CHECK_MSG(false, "unknown weight model");
  return 1.0;
}

void AddWeightedEdge(const ScenarioGraphParams& p, Rng& rng, GraphBuilder* b,
                     const std::vector<double>& xs,
                     const std::vector<double>& ys, VertexId u, VertexId v) {
  b->AddEdge(u, v,
             DrawWeight(p, rng, xs[static_cast<size_t>(u)],
                        ys[static_cast<size_t>(u)], xs[static_cast<size_t>(v)],
                        ys[static_cast<size_t>(v)]));
}

/// Jittered lattice; right/down skeleton edges keep it connected even when
/// the last row is ragged, diagonals supply the extra degree.
void BuildGrid(const ScenarioGraphParams& p, Rng& rng, GraphBuilder* b,
               std::vector<double>* xs, std::vector<double>* ys) {
  const int64_t n = p.target_vertices;
  const auto w = static_cast<int64_t>(std::ceil(std::sqrt(
      static_cast<double>(n))));
  for (int64_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % w) + Jitter(rng, 0.2);
    const double y = static_cast<double>(i / w) + Jitter(rng, 0.2);
    b->AddVertex(x, y);
    xs->push_back(x);
    ys->push_back(y);
  }
  for (int64_t i = 0; i < n; ++i) {
    const auto u = static_cast<VertexId>(i);
    if ((i % w) + 1 < w && i + 1 < n) {
      AddWeightedEdge(p, rng, b, *xs, *ys, u, static_cast<VertexId>(i + 1));
    }
    if (i + w < n) {
      AddWeightedEdge(p, rng, b, *xs, *ys, u, static_cast<VertexId>(i + w));
    }
    if ((i % w) + 1 < w && i + w + 1 < n &&
        rng.Bernoulli(p.extra_edge_fraction)) {
      AddWeightedEdge(p, rng, b, *xs, *ys, u,
                      static_cast<VertexId>(i + w + 1));
    }
  }
}

/// Dense blobs around random centers, chained internally; a ring of
/// arterial roads joins the blobs, plus a few extra cross links.
void BuildCluster(const ScenarioGraphParams& p, Rng& rng, GraphBuilder* b,
                  std::vector<double>* xs, std::vector<double>* ys) {
  const int64_t n = p.target_vertices;
  const int64_t c = std::max<int64_t>(
      2, std::min<int64_t>(p.num_clusters, n));
  const double box = 4.0 * std::sqrt(static_cast<double>(c));
  std::vector<double> cx(static_cast<size_t>(c)), cy(static_cast<size_t>(c));
  for (int64_t k = 0; k < c; ++k) {
    cx[static_cast<size_t>(k)] = rng.UniformDouble(0.0, box);
    cy[static_cast<size_t>(k)] = rng.UniformDouble(0.0, box);
  }
  std::vector<VertexId> first(static_cast<size_t>(c), kInvalidVertex);
  std::vector<int64_t> sizes(static_cast<size_t>(c), n / c);
  for (int64_t k = 0; k < n % c; ++k) ++sizes[static_cast<size_t>(k)];
  for (int64_t k = 0; k < c; ++k) {
    VertexId prev = kInvalidVertex;
    std::vector<VertexId> members;
    for (int64_t i = 0; i < sizes[static_cast<size_t>(k)]; ++i) {
      const double x = cx[static_cast<size_t>(k)] + Jitter(rng, 0.8);
      const double y = cy[static_cast<size_t>(k)] + Jitter(rng, 0.8);
      const VertexId v = b->AddVertex(x, y);
      xs->push_back(x);
      ys->push_back(y);
      members.push_back(v);
      if (prev != kInvalidVertex) {
        AddWeightedEdge(p, rng, b, *xs, *ys, prev, v);
      } else {
        first[static_cast<size_t>(k)] = v;
      }
      prev = v;
    }
    // Extra intra-cluster streets (degree knob).
    const auto extra = static_cast<int64_t>(
        p.extra_edge_fraction * static_cast<double>(members.size()));
    for (int64_t e = 0; e < extra && members.size() > 1; ++e) {
      const VertexId u = members[rng.UniformU64(members.size())];
      const VertexId v = members[rng.UniformU64(members.size())];
      if (u != v) AddWeightedEdge(p, rng, b, *xs, *ys, u, v);
    }
  }
  // Arterial ring over cluster gateways keeps the city connected.
  for (int64_t k = 0; k < c; ++k) {
    AddWeightedEdge(p, rng, b, *xs, *ys, first[static_cast<size_t>(k)],
                    first[static_cast<size_t>((k + 1) % c)]);
  }
  const auto cross = static_cast<int64_t>(
      p.extra_edge_fraction * static_cast<double>(c));
  const int64_t total = b->num_vertices();
  for (int64_t e = 0; e < cross; ++e) {
    const auto u = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(total)));
    const auto v = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(total)));
    if (u != v) AddWeightedEdge(p, rng, b, *xs, *ys, u, v);
  }
}

/// Ring lattice (i—i+1, i—i+2) plus random chords. Vertices are laid out
/// on the perimeter of a square rather than a circle: same loop topology,
/// but the coordinates need only +,-,/ (no libm cos/sin, whose rounding
/// varies across platforms), keeping generated graphs bit-identical
/// everywhere like the other families.
void BuildSmallWorld(const ScenarioGraphParams& p, Rng& rng, GraphBuilder* b,
                     std::vector<double>* xs, std::vector<double>* ys) {
  const int64_t n = p.target_vertices;
  const int64_t per_side = (n + 3) / 4;
  const double side = static_cast<double>(per_side);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t edge = i / per_side;  // 0..3: bottom, right, top, left
    const double off = static_cast<double>(i % per_side);
    double x = 0, y = 0;
    switch (edge) {
      case 0: x = off, y = 0; break;
      case 1: x = side, y = off; break;
      case 2: x = side - off, y = side; break;
      default: x = 0, y = side - off; break;
    }
    x += Jitter(rng, 0.1);
    y += Jitter(rng, 0.1);
    b->AddVertex(x, y);
    xs->push_back(x);
    ys->push_back(y);
  }
  for (int64_t i = 0; i < n; ++i) {
    const auto u = static_cast<VertexId>(i);
    AddWeightedEdge(p, rng, b, *xs, *ys, u,
                    static_cast<VertexId>((i + 1) % n));
    if (n > 4 && rng.Bernoulli(0.5)) {
      AddWeightedEdge(p, rng, b, *xs, *ys, u,
                      static_cast<VertexId>((i + 2) % n));
    }
  }
  const auto chords = static_cast<int64_t>(
      p.extra_edge_fraction * static_cast<double>(n));
  for (int64_t e = 0; e < chords; ++e) {
    const auto u = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(n)));
    const auto v = static_cast<VertexId>(
        rng.UniformU64(static_cast<uint64_t>(n)));
    if (u != v) AddWeightedEdge(p, rng, b, *xs, *ys, u, v);
  }
}

void BuildTopology(const ScenarioGraphParams& params, Rng& rng,
                   GraphBuilder* b) {
  SKYSR_CHECK_MSG(params.target_vertices >= 2,
                  "scenario graphs need at least 2 vertices");
  std::vector<double> xs, ys;
  xs.reserve(static_cast<size_t>(params.target_vertices));
  ys.reserve(static_cast<size_t>(params.target_vertices));
  switch (params.family) {
    case GraphFamily::kGrid:
      BuildGrid(params, rng, b, &xs, &ys);
      break;
    case GraphFamily::kCluster:
      BuildCluster(params, rng, b, &xs, &ys);
      break;
    case GraphFamily::kSmallWorld:
      BuildSmallWorld(params, rng, b, &xs, &ys);
      break;
  }
}

}  // namespace

const char* GraphFamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kGrid:
      return "grid";
    case GraphFamily::kCluster:
      return "cluster";
    case GraphFamily::kSmallWorld:
      return "smallworld";
  }
  return "unknown";
}

std::optional<GraphFamily> ParseGraphFamily(std::string_view name) {
  if (name == "grid") return GraphFamily::kGrid;
  if (name == "cluster") return GraphFamily::kCluster;
  if (name == "smallworld" || name == "small-world") {
    return GraphFamily::kSmallWorld;
  }
  return std::nullopt;
}

Graph MakeScenarioGraph(const ScenarioGraphParams& params) {
  Rng rng(params.seed);
  GraphBuilder b(/*directed=*/false);
  BuildTopology(params, rng, &b);
  return BuildGraphOrDie(b.Build());
}

std::vector<Query> MakeScenarioQueries(const Dataset& dataset,
                                       const ScenarioWorkloadParams& params) {
  SKYSR_CHECK(params.min_sequence >= 1);
  SKYSR_CHECK(params.max_sequence >= params.min_sequence);
  const Graph& g = dataset.graph;
  const CategoryForest& forest = dataset.forest;
  Rng rng(params.seed);
  const auto num_cats = static_cast<uint64_t>(forest.num_categories());
  const auto num_vertices = static_cast<uint64_t>(g.num_vertices());

  const auto random_category = [&] {
    return static_cast<CategoryId>(rng.UniformU64(num_cats));
  };

  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(params.num_queries));
  for (int qi = 0; qi < params.num_queries; ++qi) {
    int k = static_cast<int>(
        rng.UniformInt(params.min_sequence, params.max_sequence));
    if (params.distinct_trees) {
      k = std::min<int>(k, static_cast<int>(forest.num_trees()));
    }
    Query q;
    q.start = static_cast<VertexId>(rng.UniformU64(num_vertices));
    std::vector<TreeId> used_trees;
    for (int pos = 0; pos < k; ++pos) {
      CategoryPredicate pred;
      CategoryId primary = random_category();
      if (params.distinct_trees) {
        int guard = 0;
        while (std::find(used_trees.begin(), used_trees.end(),
                         forest.TreeOf(primary)) != used_trees.end()) {
          SKYSR_CHECK_MSG(++guard < 100000,
                          "cannot satisfy distinct-tree constraint");
          primary = random_category();
        }
      }
      used_trees.push_back(forest.TreeOf(primary));
      pred.any_of.push_back(primary);
      if (rng.Bernoulli(params.multi_any_rate)) {
        const int extra = static_cast<int>(rng.UniformInt(1, 2));
        for (int e = 0; e < extra; ++e) {
          const CategoryId c = random_category();
          if (std::find(pred.any_of.begin(), pred.any_of.end(), c) ==
              pred.any_of.end()) {
            pred.any_of.push_back(c);
          }
        }
      }
      if (g.num_pois() > 0 && rng.Bernoulli(params.all_of_rate)) {
        // Anchor the conjunction on a real PoI's ancestor chain so at least
        // one PoI in the dataset satisfies it.
        const auto p = static_cast<PoiId>(
            rng.UniformU64(static_cast<uint64_t>(g.num_pois())));
        const auto cats = g.PoiCategories(p);
        const CategoryId leaf = cats[rng.UniformU64(cats.size())];
        const auto chain = forest.AncestorsOrSelf(leaf);
        pred.all_of.push_back(chain[rng.UniformU64(chain.size())]);
      }
      if (rng.Bernoulli(params.none_of_rate)) {
        pred.none_of.push_back(random_category());
      }
      q.sequence.push_back(std::move(pred));
    }
    if (rng.Bernoulli(params.destination_rate)) {
      q.destination = static_cast<VertexId>(rng.UniformU64(num_vertices));
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

Scenario MakeScenario(const ScenarioSpec& spec) {
  Scenario sc;
  sc.spec = spec;
  sc.dataset.name = spec.name.empty()
                        ? std::string(GraphFamilyName(spec.graph.family)) +
                              "-scenario"
                        : spec.name;
  sc.dataset.forest = MakeRandomForest(spec.taxonomy);

  Rng graph_rng(spec.graph.seed);
  GraphBuilder b(/*directed=*/false);
  BuildTopology(spec.graph, graph_rng, &b);

  // Leaves across all trees, in tree order (deterministic).
  std::vector<CategoryId> leaves;
  for (TreeId t = 0; t < sc.dataset.forest.num_trees(); ++t) {
    const auto tl = sc.dataset.forest.LeavesOfTree(t);
    leaves.insert(leaves.end(), tl.begin(), tl.end());
  }
  SKYSR_CHECK_MSG(!leaves.empty(), "taxonomy has no leaves");

  Rng poi_rng(spec.pois.seed);
  const ZipfDistribution zipf(static_cast<int64_t>(leaves.size()),
                              spec.pois.zipf_theta);
  const int64_t n = b.num_vertices();
  const int64_t num_pois = std::min<int64_t>(spec.pois.num_pois, n);
  // Partial Fisher-Yates: distinct PoI vertices even when num_pois ~ n.
  std::vector<VertexId> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] =
      static_cast<VertexId>(i);
  for (int64_t i = 0; i < num_pois; ++i) {
    const int64_t j = i + static_cast<int64_t>(
        poi_rng.UniformU64(static_cast<uint64_t>(n - i)));
    std::swap(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)]);
    std::vector<CategoryId> cats = {leaves[static_cast<size_t>(
        zipf.Sample(poi_rng))]};
    if (poi_rng.Bernoulli(spec.pois.multi_category_rate) &&
        sc.dataset.forest.num_trees() > 1) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const CategoryId extra =
            leaves[static_cast<size_t>(zipf.Sample(poi_rng))];
        if (sc.dataset.forest.TreeOf(extra) !=
            sc.dataset.forest.TreeOf(cats[0])) {
          cats.push_back(extra);
          break;
        }
      }
    }
    b.AddPoi(ids[static_cast<size_t>(i)],
             std::span<const CategoryId>(cats),
             "P" + std::to_string(i));
  }
  sc.dataset.graph = BuildGraphOrDie(b.Build());
  sc.queries = MakeScenarioQueries(sc.dataset, spec.workload);
  return sc;
}

void SeedScenarioSpec(ScenarioSpec* spec, uint64_t master_seed) {
  uint64_t sm = master_seed;
  spec->graph.seed = SplitMix64(sm);
  spec->taxonomy.seed = SplitMix64(sm);
  spec->pois.seed = SplitMix64(sm);
  spec->workload.seed = SplitMix64(sm);
}

ScenarioSpec ScenarioSuiteSpec(int index, uint64_t master_seed) {
  SKYSR_CHECK(index >= 0);
  ScenarioSpec s;
  // Independent sub-seeds derived from (master, index).
  SeedScenarioSpec(&s, master_seed ^ (0x9E3779B97F4A7C15ULL *
                                      static_cast<uint64_t>(index + 1)));
  const auto family = static_cast<GraphFamily>(index % 3);
  s.graph.family = family;
  s.graph.target_vertices = 24 + (index * 7) % 48;          // 24..71
  s.graph.extra_edge_fraction = 0.10 + 0.05 * (index % 5);  // 0.10..0.30
  s.graph.num_clusters = 3 + index % 3;
  s.graph.weights = static_cast<WeightModel>((index / 3) % 3);

  s.taxonomy.num_trees = 2 + index % 3;        // 2..4
  s.taxonomy.max_fanout = 2 + (index / 2) % 2; // 2..3
  s.taxonomy.max_levels = 1 + index % 3;       // 1..3

  s.pois.num_pois = 8 + index % 7;  // 8..14 — brute-force friendly
  s.pois.zipf_theta = (index % 2 == 0) ? 0.0 : 0.8;
  s.pois.multi_category_rate = (index % 4 == 1) ? 0.4 : 0.0;

  s.workload.num_queries = 3;
  s.workload.min_sequence = 1;
  s.workload.max_sequence = 3;
  // 3 and 5 are coprime, so "plain" scenarios cover every graph family.
  const bool plain = (index % 5 < 2);
  if (!plain) {
    s.workload.multi_any_rate = 0.30;
    s.workload.all_of_rate = 0.25;
    s.workload.none_of_rate = 0.25;
  }
  s.workload.destination_rate = (index % 4 == 3) ? 0.5 : 0.0;
  s.workload.distinct_trees = (index % 2 == 0);

  s.name = std::string(GraphFamilyName(family)) + "-" + std::to_string(index);
  return s;
}

}  // namespace skysr

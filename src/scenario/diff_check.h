// Differential verification harness: BssrEngine against the exact baselines
// on generated scenarios.
//
// For every (graph, taxonomy, query) instance of the deterministic scenario
// suite it runs BssrEngine under EVERY QueryOptions ablation combination
// (initial search x lower bounds x cache x queue discipline — Theorem 3
// says none of them may change the answer) and demands a bit-identical
// skyline against BruteForceSkySr. Plain single-category queries are
// additionally cross-checked against the naive SkySR baseline (both OSR
// engines), and each scenario's workload is replayed through a concurrent
// QueryService, which must reproduce the sequential engine bit-for-bit.
//
// The harness is a library function (not test-framework bound) so the gtest
// suite, the CLI and future fuzz drivers can all share it:
//
//   DiffReport report = RunDifferentialCheck({.num_instances = 216});
//   if (!report.ok()) puts(report.Summary().c_str());

#ifndef SKYSR_SCENARIO_DIFF_CHECK_H_
#define SKYSR_SCENARIO_DIFF_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/route.h"
#include "index/distance_oracle.h"
#include "retrieval/retriever_kind.h"
#include "scenario/scenario.h"

namespace skysr {

struct DiffCheckParams {
  /// (graph, taxonomy, query) triples to verify. Scenarios contribute their
  /// whole workload, so ~3 instances per suite index.
  int num_instances = 216;
  /// Master seed of the scenario suite (ScenarioSuiteSpec).
  uint64_t master_seed = 2026;
  /// Cross-check plain queries against the naive SkySR baseline.
  bool check_naive_baseline = true;
  /// Replay each scenario's workload through a 2-thread QueryService and
  /// compare with the sequential engine (bit-identical). The service shares
  /// the last non-flat oracle of `oracle_kinds` (if any), exercising the
  /// one-index-many-workspaces threading.
  bool check_service = true;
  /// Attach an engine-lifetime SharedQueryCache (src/cache/) — with a
  /// prewarm snapshot on bucket-carrying engines — to every engine, and run
  /// the service replay with its shared query cache on. The whole sweep
  /// then runs WARM: every ablation x oracle x retriever combination of
  /// every query reads and writes the same per-engine cache, and each
  /// skyline must still be bit-identical to brute force. Comparing a
  /// shared_cache=false run's digest with a shared_cache=true run's (the
  /// CI SKYSR_XCACHE axis) proves cold/warm bit-identity end to end.
  bool shared_cache = false;
  /// Per-prefix Q_b dominance pruning (core/qb_dominance.h) applied to
  /// every ablation run. Both settings must be bit-identical to brute
  /// force; the CI SKYSR_QB_DOMINANCE=off axis runs the sweep disabled so
  /// the pruned and unpruned engines are each verified end to end.
  bool qb_dominance = true;
  /// Tolerance for the naive baseline only: its OSR engines sum leg
  /// distances in different orders, so a few ULPs of drift are legitimate.
  /// Engine-vs-brute-force comparisons are always exact (tolerance 0).
  double naive_tolerance = 1e-9;
  /// Distance-oracle sweep: the full 16-combination ablation grid runs once
  /// per kind (indexes built per scenario graph) and every skyline must be
  /// bit-identical to brute force regardless of the oracle answering the
  /// NNinit / lower-bound distance work.
  std::vector<OracleKind> oracle_kinds = {OracleKind::kFlat, OracleKind::kCh,
                                          OracleKind::kAlt};
  /// PoI-retrieval sweep: the ablation grid additionally runs once per
  /// retriever kind per oracle. CH engines carry per-scenario bucket
  /// tables, so kBucket/kAuto pin the bucket scans there; on flat/ALT
  /// engines the forced kinds exercise the documented fallbacks. Every
  /// combination must stay bit-identical to brute force.
  std::vector<RetrieverKind> retriever_kinds = {
      RetrieverKind::kAuto, RetrieverKind::kSettle, RetrieverKind::kBucket,
      RetrieverKind::kResume};
};

/// One disagreement, with everything needed to reproduce it.
struct DiffMismatch {
  int suite_index = 0;       // ScenarioSuiteSpec index
  uint64_t master_seed = 0;  // suite master seed
  std::string scenario;      // spec name, e.g. "cluster-17"
  int query_index = 0;       // position in the scenario's workload
  std::string config;        // e.g. "init=0 lb=1 cache=1 queue=proposed"
  std::string detail;        // rendered expected-vs-actual staircases
};

struct DiffReport {
  int scenarios_run = 0;
  int instances_checked = 0;  // (graph, taxonomy, query) triples
  int64_t engine_runs = 0;    // BssrEngine::Run invocations
  int64_t baseline_runs = 0;  // brute-force + naive invocations
  /// SplitMix digest over every verified skyline's score bits, in suite
  /// order; equal seeds must yield equal digests (determinism proof).
  uint64_t result_digest = 0;
  std::vector<DiffMismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string Summary() const;
};

/// Runs the harness over the scenario suite. Deterministic per params.
DiffReport RunDifferentialCheck(const DiffCheckParams& params);

/// Exact (bitwise) equality of two skylines as score staircases: same size
/// and identical (length, semantic) doubles position by position. Route
/// identity is NOT compared — equal-score representatives may differ.
bool BitIdenticalSkylines(const std::vector<Route>& a,
                          const std::vector<Route>& b);

/// Renders "{(length, semantic) ...}" with full double precision.
std::string RenderSkyline(const std::vector<Route>& routes);

}  // namespace skysr

#endif  // SKYSR_SCENARIO_DIFF_CHECK_H_

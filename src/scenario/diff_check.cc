#include "scenario/diff_check.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include <memory>

#include "baseline/brute_force.h"
#include "baseline/naive_skysr.h"
#include "cache/shared_query_cache.h"
#include "core/bssr_engine.h"
#include "index/oracle_factory.h"
#include "retrieval/bucket_retriever.h"
#include "retrieval/category_buckets.h"
#include "service/query_service.h"
#include "util/rng.h"

namespace skysr {
namespace {

bool IsPlainQuery(const Query& q) {
  for (const CategoryPredicate& p : q.sequence) {
    if (p.any_of.size() != 1 || !p.all_of.empty() || !p.none_of.empty()) {
      return false;
    }
  }
  return true;
}

std::string RenderConfig(bool init, bool lb, bool cache, QueueDiscipline disc,
                         OracleKind oracle, RetrieverKind retriever,
                         bool dominance) {
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "init=%d lb=%d cache=%d queue=%s oracle=%s retriever=%s "
                "dom=%d",
                init, lb, cache,
                disc == QueueDiscipline::kProposed ? "proposed" : "distance",
                OracleKindName(oracle), RetrieverKindName(retriever),
                dominance);
  return buf;
}

/// Score staircase sorted by (length, semantic); engine outputs are already
/// staircases, but sorting copies makes the comparison independent of that.
std::vector<RouteScores> SortedScores(const std::vector<Route>& routes) {
  std::vector<RouteScores> out;
  out.reserve(routes.size());
  for (const Route& r : routes) out.push_back(r.scores);
  std::sort(out.begin(), out.end(),
            [](const RouteScores& a, const RouteScores& b) {
              if (a.length != b.length) return a.length < b.length;
              return a.semantic < b.semantic;
            });
  return out;
}

/// Near-equality for the naive baseline (summation-order ULP drift).
bool SkylinesNear(const std::vector<Route>& a, const std::vector<Route>& b,
                  double tol) {
  const auto va = SortedScores(a);
  const auto vb = SortedScores(b);
  if (va.size() != vb.size()) return false;
  for (size_t i = 0; i < va.size(); ++i) {
    const double lscale = std::max(
        {1.0, std::abs(va[i].length), std::abs(vb[i].length)});
    if (std::abs(va[i].length - vb[i].length) > tol * lscale) return false;
    if (std::abs(va[i].semantic - vb[i].semantic) > tol) return false;
  }
  return true;
}

void MixInto(uint64_t* digest, uint64_t v) {
  uint64_t s = *digest ^ (v + 0x9E3779B97F4A7C15ULL);
  *digest = SplitMix64(s);
}

void MixSkyline(uint64_t* digest, const std::vector<Route>& routes) {
  MixInto(digest, routes.size());
  for (const Route& r : routes) {
    MixInto(digest, std::bit_cast<uint64_t>(r.scores.length));
    MixInto(digest, std::bit_cast<uint64_t>(r.scores.semantic));
  }
}

}  // namespace

bool BitIdenticalSkylines(const std::vector<Route>& a,
                          const std::vector<Route>& b) {
  const auto va = SortedScores(a);
  const auto vb = SortedScores(b);
  if (va.size() != vb.size()) return false;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i].length != vb[i].length) return false;
    if (va[i].semantic != vb[i].semantic) return false;
  }
  return true;
}

std::string RenderSkyline(const std::vector<Route>& routes) {
  std::string out = "{";
  for (const RouteScores& s : SortedScores(routes)) {
    char buf[80];
    std::snprintf(buf, sizeof(buf), " (%.17g, %.17g)", s.length, s.semantic);
    out += buf;
  }
  return out + " }";
}

std::string DiffReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "differential check: %d scenarios, %d instances, "
                "%lld engine runs, %lld baseline runs, digest=%016llx, "
                "%zu mismatches",
                scenarios_run, instances_checked,
                static_cast<long long>(engine_runs),
                static_cast<long long>(baseline_runs),
                static_cast<unsigned long long>(result_digest),
                mismatches.size());
  std::string out = buf;
  const size_t shown = std::min<size_t>(mismatches.size(), 10);
  for (size_t i = 0; i < shown; ++i) {
    const DiffMismatch& m = mismatches[i];
    std::snprintf(buf, sizeof(buf),
                  "\n  [%s query %d, suite index %d, master seed %llu, %s] ",
                  m.scenario.c_str(), m.query_index, m.suite_index,
                  static_cast<unsigned long long>(m.master_seed),
                  m.config.c_str());
    out += buf;
    out += m.detail;
  }
  if (mismatches.size() > shown) out += "\n  ...";
  return out;
}

DiffReport RunDifferentialCheck(const DiffCheckParams& params) {
  DiffReport report;
  const std::vector<OracleKind> kinds =
      params.oracle_kinds.empty()
          ? std::vector<OracleKind>{OracleKind::kFlat}
          : params.oracle_kinds;
  const std::vector<RetrieverKind> retrievers =
      params.retriever_kinds.empty()
          ? std::vector<RetrieverKind>{RetrieverKind::kAuto}
          : params.retriever_kinds;
  for (int idx = 0; report.instances_checked < params.num_instances; ++idx) {
    const ScenarioSpec spec = ScenarioSuiteSpec(idx, params.master_seed);
    const Scenario sc = MakeScenario(spec);
    ++report.scenarios_run;

    // One engine per oracle kind, all over the same scenario dataset. The
    // indexes are built fresh per scenario graph; the flat kind maps to the
    // classic oracle-less engine. CH engines additionally carry the
    // per-scenario category-bucket tables so the retriever sweep pins the
    // bucket scans.
    std::vector<std::unique_ptr<DistanceOracle>> oracles;
    std::vector<std::unique_ptr<CategoryBucketIndex>> bucket_sets;
    std::vector<std::unique_ptr<SharedQueryCache>> xcaches;
    std::vector<BssrEngine> engines;
    const DistanceOracle* service_oracle = nullptr;
    const CategoryBucketIndex* service_buckets = nullptr;
    engines.reserve(kinds.size());
    for (const OracleKind kind : kinds) {
      oracles.push_back(kind == OracleKind::kFlat
                            ? nullptr
                            : MakeOracle(kind, sc.dataset.graph));
      bucket_sets.push_back(
          kind == OracleKind::kCh
              ? std::make_unique<CategoryBucketIndex>(
                    CategoryBucketIndex::Build(
                        sc.dataset.graph,
                        static_cast<const ChOracle&>(*oracles.back())))
              : nullptr);
      engines.emplace_back(sc.dataset.graph, sc.dataset.forest,
                           oracles.back().get(), bucket_sets.back().get());
      if (params.shared_cache) {
        // Warm-state axis: the engine keeps its cache for the WHOLE sweep —
        // hundreds of runs of every query share it — so any cross-query
        // contamination would surface as a skyline mismatch. Bucket-carrying
        // engines additionally start from a prewarm snapshot, covering the
        // snapshot-read path.
        xcaches.push_back(std::make_unique<SharedQueryCache>());
        engines.back().AttachSharedCache(xcaches.back().get());
        if (bucket_sets.back() != nullptr) {
          std::vector<VertexId> sources;
          const int64_t n =
              std::min<int64_t>(sc.dataset.graph.num_pois(), 64);
          sources.reserve(static_cast<size_t>(n));
          for (int64_t p = 0; p < n; ++p) {
            sources.push_back(
                sc.dataset.graph.VertexOfPoi(static_cast<PoiId>(p)));
          }
          xcaches.back()->SetSnapshot(
              std::make_shared<const FwdSnapshot>(BuildFwdSnapshot(
                  *bucket_sets.back(), sources,
                  WarmStateChecksum(sc.dataset.graph,
                                    oracles.back().get()))));
        }
      }
      // The service replay shares the CH index + buckets when present (the
      // one-index-many-workspaces threading with the bucket tables along),
      // else the last non-flat oracle.
      if (oracles.back() != nullptr &&
          (service_oracle == nullptr || kind == OracleKind::kCh)) {
        service_oracle = oracles.back().get();
        service_buckets = bucket_sets.back().get();
      }
    }

    const auto record = [&](int query_index, std::string config,
                            std::string detail) {
      report.mismatches.push_back(DiffMismatch{
          idx, params.master_seed, spec.name, query_index, std::move(config),
          std::move(detail)});
    };

    // Default-option engine results, kept for the service replay check.
    std::vector<std::vector<Route>> default_results(sc.queries.size());
    std::vector<char> have_default(sc.queries.size(), 0);

    for (size_t qi = 0; qi < sc.queries.size(); ++qi) {
      const Query& q = sc.queries[qi];
      ++report.instances_checked;

      const QueryOptions defaults;
      auto brute = BruteForceSkySr(sc.dataset.graph, sc.dataset.forest, q,
                                   defaults);
      ++report.baseline_runs;
      if (!brute.ok()) {
        record(static_cast<int>(qi), "brute-force",
               brute.status().ToString());
        continue;
      }
      MixSkyline(&report.result_digest, *brute);

      // Every (ablation combination x oracle kind x retriever kind) must
      // reproduce the exact skyline: Theorem 3 for the toggles, the oracle
      // exactness contract for the index layer, and the retrieval
      // subsystem's bit-identity contract for the backends.
      for (size_t ki = 0; ki < kinds.size(); ++ki) {
        for (int bits = 0; bits < 8; ++bits) {
          for (QueueDiscipline disc :
               {QueueDiscipline::kProposed,
                QueueDiscipline::kDistanceBased}) {
            for (const RetrieverKind rkind : retrievers) {
              QueryOptions opts;
              opts.use_initial_search = (bits & 1) != 0;
              opts.use_lower_bounds = (bits & 2) != 0;
              opts.use_cache = (bits & 4) != 0;
              opts.queue_discipline = disc;
              opts.retriever = rkind;
              opts.use_qb_dominance = params.qb_dominance;
              if (kinds[ki] != OracleKind::kFlat) {
                // Force the oracle-backed NNinit/lower-bound paths (the
                // production default falls back to graph searches for dense
                // candidate sets — a pure speed choice, and the point here
                // is to verify the oracle paths themselves).
                opts.oracle_candidate_cap = 1 << 30;
              }
              auto got = engines[ki].Run(q, opts);
              ++report.engine_runs;
              if (!got.ok()) {
                record(static_cast<int>(qi),
                       RenderConfig(opts.use_initial_search,
                                    opts.use_lower_bounds, opts.use_cache,
                                    disc, kinds[ki], rkind,
                                    opts.use_qb_dominance),
                       got.status().ToString());
                continue;
              }
              if (!BitIdenticalSkylines(got->routes, *brute)) {
                record(static_cast<int>(qi),
                       RenderConfig(opts.use_initial_search,
                                    opts.use_lower_bounds, opts.use_cache,
                                    disc, kinds[ki], rkind,
                                    opts.use_qb_dominance),
                       "expected " + RenderSkyline(*brute) + " got " +
                           RenderSkyline(got->routes));
              }
              if (ki == 0 && bits == 7 &&
                  disc == QueueDiscipline::kProposed &&
                  rkind == retrievers[0]) {
                default_results[qi] = got->routes;
                have_default[qi] = 1;
              }
            }
          }
        }
      }

      if (params.check_naive_baseline && IsPlainQuery(q)) {
        for (OsrEngineKind kind :
             {OsrEngineKind::kDijkstraBased, OsrEngineKind::kPne}) {
          // The shared oracle rides along, covering the index-backed OSR
          // destination tails; the tolerance absorbs their summation-order
          // drift.
          auto naive = RunNaiveSkySr(sc.dataset.graph, sc.dataset.forest, q,
                                     defaults, kind, nullptr, service_oracle);
          ++report.baseline_runs;
          const char* name = kind == OsrEngineKind::kDijkstraBased
                                 ? "naive-dijkstra"
                                 : "naive-pne";
          if (!naive.ok()) {
            record(static_cast<int>(qi), name, naive.status().ToString());
          } else if (!SkylinesNear(naive->routes, *brute,
                                   params.naive_tolerance)) {
            record(static_cast<int>(qi), name,
                   "expected " + RenderSkyline(*brute) + " got " +
                       RenderSkyline(naive->routes));
          }
        }
      }
    }

    if (params.check_service && !sc.queries.empty()) {
      ServiceConfig cfg;
      cfg.num_threads = 2;
      cfg.queue_capacity = 64;
      cfg.cache_capacity = 16;
      cfg.oracle = service_oracle;  // shared index, per-worker workspaces
      cfg.buckets = service_buckets;  // shared bucket tables likewise
      cfg.shared_query_cache = params.shared_cache;
      cfg.xcache_prewarm_pois = 64;  // small: scenario graphs are small
      QueryService service(sc.dataset.graph, sc.dataset.forest, cfg);
      const auto results = service.RunBatch(sc.queries);
      for (size_t qi = 0; qi < results.size(); ++qi) {
        // A failed baseline/engine run already produced a mismatch above;
        // comparing against the missing reference would only add noise.
        if (!have_default[qi]) continue;
        if (!results[qi].ok()) {
          record(static_cast<int>(qi), "service",
                 results[qi].status().ToString());
        } else if (!BitIdenticalSkylines(results[qi].ValueOrDie().routes,
                                         default_results[qi])) {
          record(static_cast<int>(qi), "service",
                 "expected " + RenderSkyline(default_results[qi]) + " got " +
                     RenderSkyline(results[qi].ValueOrDie().routes));
        }
      }
    }
  }
  return report;
}

}  // namespace skysr

// Small string helpers for the text loaders/serializers.

#ifndef SKYSR_UTIL_STRING_UTIL_H_
#define SKYSR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace skysr {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a double; returns false on malformed input (trailing junk included).
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace skysr

#endif  // SKYSR_UTIL_STRING_UTIL_H_

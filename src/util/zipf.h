// Zipfian sampling over {0, ..., n-1}. The paper notes that "the number of
// PoI vertices associated with each category is significantly biased"; the
// workload generator reproduces that bias with a Zipf distribution over
// category leaves.

#ifndef SKYSR_UTIL_ZIPF_H_
#define SKYSR_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace skysr {

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^theta.
/// Rank 0 is the most popular. Uses an exact inverse-CDF table (O(n) memory,
/// O(log n) per sample), which is fine for the catalog sizes involved here.
class ZipfDistribution {
 public:
  /// Creates a distribution over n items with skew theta >= 0
  /// (theta = 0 is uniform).
  ZipfDistribution(int64_t n, double theta);

  /// Draws one rank in [0, n).
  int64_t Sample(Rng& rng) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Probability mass of a given rank.
  double Pmf(int64_t rank) const;

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace skysr

#endif  // SKYSR_UTIL_ZIPF_H_

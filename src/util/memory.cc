#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace skysr {
namespace {

// Parses a "VmHWM:   123 kB"-style line from /proc/self/status.
int64_t ReadProcStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      long long value = 0;
      if (std::sscanf(line + key_len, " %lld", &value) == 1) kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

int64_t PeakRssBytes() {
  const int64_t hwm = ReadProcStatusKb("VmHWM:") * 1024;
  // Some kernels/sandboxes omit VmHWM; fall back to the current RSS, which
  // still yields a usable (if slightly understated) peak when sampled at the
  // right moment.
  return hwm > 0 ? hwm : CurrentRssBytes();
}

int64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS:") * 1024; }

const char* FormatBytes(int64_t bytes, char* buf, int buf_size) {
  const double b = static_cast<double>(bytes);
  if (bytes >= (1LL << 30)) {
    std::snprintf(buf, buf_size, "%.1f GB", b / (1LL << 30));
  } else if (bytes >= (1LL << 20)) {
    std::snprintf(buf, buf_size, "%.1f MB", b / (1LL << 20));
  } else if (bytes >= (1LL << 10)) {
    std::snprintf(buf, buf_size, "%.1f KB", b / (1LL << 10));
  } else {
    std::snprintf(buf, buf_size, "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

}  // namespace skysr

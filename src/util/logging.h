// Minimal CHECK macros (Arrow-style). SKYSR_CHECK aborts with a message on
// violated invariants; SKYSR_DCHECK compiles out in release builds.

#ifndef SKYSR_UTIL_LOGGING_H_
#define SKYSR_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define SKYSR_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "SKYSR_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

#define SKYSR_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "SKYSR_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

#ifdef NDEBUG
#define SKYSR_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define SKYSR_DCHECK(cond) SKYSR_CHECK(cond)
#endif

#endif  // SKYSR_UTIL_LOGGING_H_

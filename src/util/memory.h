// Process-memory introspection used to reproduce the paper's RSS comparison
// (Table 6). Reads Linux /proc/self/status; returns 0 on other platforms.

#ifndef SKYSR_UTIL_MEMORY_H_
#define SKYSR_UTIL_MEMORY_H_

#include <cstdint>

namespace skysr {

/// Peak resident set size (VmHWM) of the current process in bytes, or 0 when
/// unavailable.
int64_t PeakRssBytes();

/// Current resident set size (VmRSS) of the current process in bytes, or 0
/// when unavailable.
int64_t CurrentRssBytes();

/// Formats a byte count as a short human-readable string ("239.6 MB").
/// Buffer must hold at least 32 chars; returns `buf` for convenience.
const char* FormatBytes(int64_t bytes, char* buf, int buf_size);

}  // namespace skysr

#endif  // SKYSR_UTIL_MEMORY_H_

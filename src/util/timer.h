// Wall-clock timing utilities used by the benchmark harness and engine stats.

#ifndef SKYSR_UTIL_TIMER_H_
#define SKYSR_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace skysr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in whole nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skysr

#endif  // SKYSR_UTIL_TIMER_H_

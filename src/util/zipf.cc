#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace skysr {

ZipfDistribution::ZipfDistribution(int64_t n, double theta)
    : n_(n), theta_(theta) {
  SKYSR_CHECK(n > 0);
  SKYSR_CHECK(theta >= 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[static_cast<size_t>(i)] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(int64_t rank) const {
  SKYSR_CHECK(rank >= 0 && rank < n_);
  const auto i = static_cast<size_t>(rank);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace skysr

// Deterministic, fast pseudo-random number generation for workload synthesis.
// SplitMix64 seeds Xoshiro256**; both are tiny, well-studied generators. The
// workload generators must be reproducible across platforms, so we avoid
// std::mt19937 + std::uniform_* whose outputs are implementation-defined for
// floating point.

#ifndef SKYSR_UTIL_RNG_H_
#define SKYSR_UTIL_RNG_H_

#include <cstdint>

#include "util/logging.h"

namespace skysr {

/// SplitMix64 step; used for seeding and hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** generator with convenience samplers. Deterministic for a
/// given seed on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  /// Next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  uint64_t UniformU64(uint64_t bound) {
    SKYSR_DCHECK(bound > 0);
    // Lemire's nearly-divisionless bounded sampling (rejection for exactness).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SKYSR_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace skysr

#endif  // SKYSR_UTIL_RNG_H_

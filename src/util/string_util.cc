#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace skysr {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace skysr

// Epoch-stamped per-vertex scratch array: O(1) reset between searches.

#ifndef SKYSR_UTIL_STAMPED_ARRAY_H_
#define SKYSR_UTIL_STAMPED_ARRAY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace skysr {

/// A vector<T> whose entries all revert to a default value in O(1) via epoch
/// stamping. Used for per-search vertex annotations (e.g. the best on-path
/// similarity of Lemma 5.5).
template <typename T>
class StampedArray {
 public:
  /// Prepares for a new round over `n` slots, logically resetting all values
  /// to `def`.
  void Prepare(int64_t n, T def = T()) {
    default_ = def;
    const auto un = static_cast<size_t>(n);
    if (stamp_.size() < un) {
      stamp_.resize(un, 0);
      values_.resize(un);
    }
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  const T& Get(int64_t i) const {
    const auto ui = static_cast<size_t>(i);
    return stamp_[ui] == epoch_ ? values_[ui] : default_;
  }

  void Set(int64_t i, T value) {
    const auto ui = static_cast<size_t>(i);
    stamp_[ui] = epoch_;
    values_[ui] = std::move(value);
  }

 private:
  std::vector<uint32_t> stamp_;
  std::vector<T> values_;
  T default_{};
  uint32_t epoch_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_UTIL_STAMPED_ARRAY_H_

// Status / Result error-handling primitives in the Arrow/RocksDB idiom.
//
// Fallible operations (I/O, parsing, builders with user input) return a
// `Status` or `Result<T>`; pure algorithms take validated inputs and return
// values directly.

#ifndef SKYSR_UTIL_STATUS_H_
#define SKYSR_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace skysr {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for a status code ("Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus, when not OK, a message.
///
/// OK statuses carry no allocation; error statuses own a heap message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }
  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr means OK
};

/// Either a value of type T or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common, successful path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : value_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(value_); }
  /// The error status; OK when the result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  /// The contained value. Requires ok().
  const T& ValueOrDie() const& { return std::get<T>(value_); }
  T& ValueOrDie() & { return std::get<T>(value_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status to the caller.
#define SKYSR_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::skysr::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result to `lhs` or propagates its error status.
#define SKYSR_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  auto SKYSR_CONCAT_(_res_, __LINE__) = (rexpr);            \
  if (!SKYSR_CONCAT_(_res_, __LINE__).ok())                 \
    return SKYSR_CONCAT_(_res_, __LINE__).status();         \
  lhs = std::move(SKYSR_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define SKYSR_CONCAT_IMPL_(a, b) a##b
#define SKYSR_CONCAT_(a, b) SKYSR_CONCAT_IMPL_(a, b)

}  // namespace skysr

#endif  // SKYSR_UTIL_STATUS_H_

// Cache-friendly d-ary min-heap used as the priority queue of every Dijkstra
// variant in the library. Supports push/pop only; Dijkstra uses lazy deletion
// (stale entries are skipped via the settled check), which for road networks
// outperforms decrease-key heaps in practice.

#ifndef SKYSR_UTIL_DARY_HEAP_H_
#define SKYSR_UTIL_DARY_HEAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace skysr {

/// Min-heap over T with arity D (default 4). `Less` orders elements;
/// top() is the minimum.
template <typename T, typename Less = std::less<T>, int D = 4>
class DaryHeap {
  static_assert(D >= 2, "heap arity must be at least 2");

 public:
  explicit DaryHeap(Less less = Less()) : less_(std::move(less)) {}

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  /// Largest size() observed since construction or ResetPeak().
  size_t peak_size() const { return peak_size_; }
  void ResetPeak() { peak_size_ = items_.size(); }

  void clear() { items_.clear(); }
  void reserve(size_t n) { items_.reserve(n); }

  /// Replaces the comparator. Only valid while the heap is empty (otherwise
  /// the heap property under the new order is not re-established).
  void set_less(Less less) {
    SKYSR_DCHECK(items_.empty());
    less_ = std::move(less);
  }

  /// The minimum element. Requires !empty().
  const T& top() const {
    SKYSR_DCHECK(!items_.empty());
    return items_.front();
  }

  void push(T value) {
    items_.push_back(std::move(value));
    SiftUp(items_.size() - 1);
    if (items_.size() > peak_size_) peak_size_ = items_.size();
  }

  template <typename... Args>
  void emplace(Args&&... args) {
    push(T(std::forward<Args>(args)...));
  }

  /// Removes and returns the minimum element. Requires !empty().
  T pop() {
    SKYSR_DCHECK(!items_.empty());
    T out = std::move(items_.front());
    T last = std::move(items_.back());
    items_.pop_back();
    if (!items_.empty()) SiftDown(std::move(last));
    return out;
  }

 private:
  /// Hole-based percolation: one move per level instead of a three-move
  /// swap — the heap is the inner loop of every Dijkstra in the library.
  void SiftUp(size_t i) {
    T value = std::move(items_[i]);
    while (i > 0) {
      const size_t parent = (i - 1) / D;
      if (!less_(value, items_[parent])) break;
      items_[i] = std::move(items_[parent]);
      i = parent;
    }
    items_[i] = std::move(value);
  }

  /// Sifts `value` down from the root hole left by pop().
  void SiftDown(T value) {
    const size_t n = items_.size();
    size_t i = 0;
    while (true) {
      const size_t first_child = i * D + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      const size_t last_child = std::min(first_child + D, n);
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (less_(items_[c], items_[best])) best = c;
      }
      if (!less_(items_[best], value)) break;
      items_[i] = std::move(items_[best]);
      i = best;
    }
    items_[i] = std::move(value);
  }

  std::vector<T> items_;
  Less less_;
  size_t peak_size_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_UTIL_DARY_HEAP_H_

// Open-addressing hash table whose values are (offset, count) spans into a
// shared append-only pool, with O(1) whole-table clear via epoch stamping.
//
// This is the storage shape behind the per-query caches of the BSSR hot
// path (the §5.3.4 candidate cache, the settle log): entries are written
// once per key per round, read many times, and the whole structure resets
// between rounds. Neither the table nor the pool shrinks on Clear(), so a
// steady-state round allocates nothing. Replacing an entry orphans its old
// span until the next Clear(); orphaned bytes are bounded by the work that
// produced them.

#ifndef SKYSR_UTIL_STAMPED_SPAN_TABLE_H_
#define SKYSR_UTIL_STAMPED_SPAN_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace skysr {

/// Record: the pooled element type. Meta: per-entry metadata stored inline.
/// Pool: the append-only storage; any type with the vector-like subset
/// size()/clear()/push_back(Record) works (e.g. CandidateSoA keeps the
/// records as flat structure-of-arrays columns). SpanOf/MutableSpanOf are
/// only available for contiguous vector pools; SoA pools expose their own
/// views via pool().
template <typename Record, typename Meta, typename Pool = std::vector<Record>>
class StampedSpanTable {
 public:
  struct Entry {
    uint64_t key;
    uint32_t stamp;
    uint32_t offset;  // span start in the pool
    uint32_t count;   // span length
    Meta meta;
  };

  /// Entry for `key` written this round, or nullptr.
  const Entry* Find(uint64_t key) const {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      const Entry& slot = slots_[i];
      if (slot.stamp != stamp_) return nullptr;  // empty this round
      if (slot.key == key) return &slot;
    }
  }

  /// Mutable lookup; the pointer is valid until the next Commit() (which may
  /// grow the slot array) or Clear().
  Entry* FindMutable(uint64_t key) {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Entry& slot = slots_[i];
      if (slot.stamp != stamp_) return nullptr;  // empty this round
      if (slot.key == key) return &slot;
    }
  }

  std::span<const Record> SpanOf(const Entry& e) const {
    return {pool_.data() + e.offset, e.count};
  }

  /// Mutable span view (vector pools only): lets a committed entry's records
  /// be updated in place, e.g. dominance records strengthened by later
  /// routes.
  std::span<Record> MutableSpanOf(const Entry& e) {
    return {pool_.data() + e.offset, e.count};
  }

  /// The shared pool. A producer appends its records here (remember the
  /// pool size beforehand), then Commit()s the span.
  Pool& pool() { return pool_; }
  const Pool& pool() const { return pool_; }

  /// Inserts or replaces the entry for `key`, whose records are
  /// pool()[pool_offset..end).
  void Commit(uint64_t key, size_t pool_offset, Meta meta) {
    SKYSR_DCHECK(pool_offset <= pool_.size());
    if ((size_ + 1) * 4 >= slots_.size() * 3) Grow();
    Entry* slot = FindSlot(key);
    if (slot->stamp == stamp_) {
      ++replacements_;  // old span stays orphaned until Clear()
    } else {
      slot->stamp = stamp_;
      slot->key = key;
      ++size_;
    }
    slot->offset = static_cast<uint32_t>(pool_offset);
    slot->count = static_cast<uint32_t>(pool_.size() - pool_offset);
    slot->meta = meta;
  }

  /// O(1) amortized: bumps the stamp and resets the pool, both keeping
  /// their capacity (a full sweep happens only on 32-bit stamp wrap).
  void Clear() {
    if (++stamp_ == 0) {
      for (Entry& slot : slots_) slot.stamp = 0;
      stamp_ = 1;
    }
    size_ = 0;
    pool_.clear();
  }

  int64_t size() const { return static_cast<int64_t>(size_); }
  int64_t replacements() const { return replacements_; }

  int64_t MemoryBytes() const {
    int64_t pool_bytes;
    if constexpr (requires(const Pool& p) { p.MemoryBytes(); }) {
      pool_bytes = pool_.MemoryBytes();
    } else {
      pool_bytes = static_cast<int64_t>(pool_.capacity() * sizeof(Record));
    }
    return static_cast<int64_t>(slots_.capacity() * sizeof(Entry)) +
           pool_bytes;
  }

 private:
  static size_t Hash(uint64_t key) {
    return static_cast<size_t>((key * 0x9e3779b97f4a7c15ull) >> 17);
  }

  /// First slot holding `key` this round, or the empty slot to claim.
  Entry* FindSlot(uint64_t key) {
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Entry& slot = slots_[i];
      if (slot.stamp != stamp_ || slot.key == key) return &slot;
    }
  }

  void Grow() {
    const size_t new_cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<Entry> old = std::move(slots_);
    // Fresh slots carry stamp 0; stamp_ is never 0, so they read as empty.
    slots_.assign(new_cap, Entry{0, 0, 0, 0, Meta{}});
    for (const Entry& slot : old) {
      if (slot.stamp != stamp_) continue;
      const size_t mask = slots_.size() - 1;
      for (size_t i = Hash(slot.key) & mask;; i = (i + 1) & mask) {
        if (slots_[i].stamp != stamp_) {
          slots_[i] = slot;
          break;
        }
      }
    }
  }

  std::vector<Entry> slots_;  // power-of-two size
  Pool pool_;
  uint32_t stamp_ = 1;
  size_t size_ = 0;
  int64_t replacements_ = 0;
};

}  // namespace skysr

#endif  // SKYSR_UTIL_STAMPED_SPAN_TABLE_H_

// Aggregate service-level metrics for QueryService: query/error/cache
// counters, throughput, and latency percentiles from a lock-free
// log-bucketed histogram. Built on top of the per-query SearchStats that
// every engine already emits.

#ifndef SKYSR_SERVICE_SERVICE_METRICS_H_
#define SKYSR_SERVICE_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "service/slow_query_log.h"
#include "util/timer.h"

namespace skysr {

/// Geometry of the service latency histogram, shared by ServiceMetrics, the
/// snapshot's raw bucket counts, the Prometheus exposition and the tests.
/// Bucket i covers [kBaseMs * kGrowth^i, kBaseMs * kGrowth^(i+1)) ms; 96
/// geometric buckets at 1.25x growth span ~0.001 ms to ~2e6 ms.
struct LatencyHistogram {
  static constexpr int kNumBuckets = 96;
  static constexpr double kBaseMs = 1e-3;
  static constexpr double kGrowth = 1.25;

  /// Exclusive upper bound (ms) of bucket i — the Prometheus `le` label.
  /// Computed by repeated multiplication, not pow(), so the values are
  /// bit-identical across libms and safe to pin in a golden test.
  static double UpperBoundMs(int bucket) {
    double b = kBaseMs;
    for (int i = 0; i <= bucket; ++i) b *= kGrowth;
    return b;
  }
};

/// Point-in-time view of the service counters, with derived rates.
struct MetricsSnapshot {
  int64_t submitted = 0;       // queries accepted into the service
  int64_t completed = 0;       // queries answered OK (engine or cache)
  int64_t errors = 0;          // queries answered with a non-OK status
  int64_t rejected = 0;        // TrySubmit refused: queue full or shut down
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  double uptime_seconds = 0;
  double qps = 0;              // completed / uptime
  double cache_hit_rate = 0;   // hits / (hits + misses); 0 when no lookups

  // Latency of completed queries (submission to completion), milliseconds.
  double latency_p50_ms = 0;
  double latency_p90_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  double latency_mean_ms = 0;
  double latency_max_ms = 0;
  double latency_sum_ms = 0;

  // Raw per-bucket counts of the latency histogram (geometry in
  // LatencyHistogram) — the exact data behind the percentiles, exported so
  // external systems (Prometheus, the perf reporter) can re-aggregate
  // without precision loss.
  std::array<int64_t, LatencyHistogram::kNumBuckets> latency_bucket_counts{};

  // OpenMetrics exemplars: per latency bucket, the service query id (the
  // SlowQueryRecord::query_id / trace "q<N>" namespace) and observed
  // latency of the most recent observation that landed there. Id 0 = no
  // exemplar (the bucket line is emitted without one, keeping the plain
  // exposition byte-identical).
  std::array<int64_t, LatencyHistogram::kNumBuckets> latency_exemplar_ids{};
  std::array<double, LatencyHistogram::kNumBuckets> latency_exemplar_ms{};

  // Submission-queue wait of dispatched queries (same histogram geometry as
  // latency), plus the queue depth sampled at the last submit/drain — the
  // batching observables that used to exist only inside trace phases.
  int64_t queue_wait_count = 0;
  double queue_wait_p50_ms = 0;
  double queue_wait_p99_ms = 0;
  double queue_wait_mean_ms = 0;
  double queue_wait_max_ms = 0;
  double queue_wait_sum_ms = 0;
  std::array<int64_t, LatencyHistogram::kNumBuckets>
      queue_wait_bucket_counts{};
  int64_t queue_depth = 0;  // sampled gauge, not a cumulative count

  // Micro-batching front door (service/batch_scheduler.h). batch-size
  // bucket i counts batches of size in [2^i, 2^(i+1)) (last bucket open).
  static constexpr int kBatchSizeBuckets = 8;
  int64_t batches = 0;            // micro-batches drained from the queue
  int64_t batched_queries = 0;    // queries those batches contained
  int64_t coalesced_queries = 0;  // single-flight followers (never executed)
  double batch_mean_size = 0;     // batched_queries / batches
  std::array<int64_t, kBatchSizeBuckets> batch_size_bucket_counts{};

  // Aggregated engine effort across all executed (non-cached) queries.
  int64_t vertices_settled = 0;
  int64_t edges_relaxed = 0;
  int64_t routes_found = 0;

  // Cross-query shared-cache activity (src/cache/), summed over the
  // per-worker caches. Forward hits include prewarm-snapshot hits;
  // resident_bytes is a point-in-time gauge, not a cumulative count.
  int64_t xcache_fwd_hits = 0;
  int64_t xcache_fwd_misses = 0;
  int64_t xcache_fwd_evictions = 0;
  int64_t xcache_resume_reuses = 0;
  int64_t xcache_resume_evictions = 0;
  int64_t xcache_resident_bytes = 0;
  double xcache_fwd_hit_rate = 0;  // hits / (hits + misses); 0 when unused

  // The service's N-slowest-query records, slowest first. Filled by
  // QueryService::Metrics(); empty from a bare ServiceMetrics::Snapshot()
  // (the metrics sink does not own the reservoir).
  std::vector<SlowQueryRecord> slow_queries;

  /// Multi-line human-readable dump (slow queries appended when present).
  std::string ToString() const;
};

/// Thread-safe metrics sink. All mutators are wait-free atomic updates so
/// worker threads never serialize on instrumentation.
class ServiceMetrics {
 public:
  ServiceMetrics();

  void RecordSubmitted() { submitted_.fetch_add(1, kRelaxed); }
  void RecordRejected() { rejected_.fetch_add(1, kRelaxed); }
  void RecordError() { errors_.fetch_add(1, kRelaxed); }
  void RecordCacheHit() { cache_hits_.fetch_add(1, kRelaxed); }
  void RecordCacheMiss() { cache_misses_.fetch_add(1, kRelaxed); }

  /// Records a successfully answered query with its end-to-end latency and
  /// the engine effort spent on it (zeros when served from cache). A
  /// non-zero `exemplar_id` (the service's per-query sequence number)
  /// additionally stamps the latency bucket's exemplar — last writer wins,
  /// so each bucket links to its most recent observation.
  void RecordCompleted(double latency_ms, int64_t vertices_settled,
                       int64_t edges_relaxed, int64_t routes_found,
                       int64_t exemplar_id = 0);

  /// Records one dispatched query's submission-queue wait.
  void RecordQueueWait(double wait_ms);

  /// Samples the submission-queue depth (called at submit and at batch
  /// drain; a gauge, so the last writer wins).
  void SampleQueueDepth(int64_t depth) { queue_depth_.store(depth, kRelaxed); }

  /// Records one drained micro-batch of `size` queries.
  void RecordBatch(int64_t size);

  /// Records one single-flight follower: an in-flight duplicate that will
  /// be answered by its primary's execution instead of running itself.
  void RecordCoalesced() { coalesced_queries_.fetch_add(1, kRelaxed); }

  /// Folds one worker's shared-cache counter DELTAS in (workers call this
  /// after each executed query with cumulative-counter differences, so the
  /// sums stay exact without any shared mutable cache state). The
  /// resident-bytes delta may be negative; summing every worker's deltas
  /// yields the current total gauge.
  void RecordXCache(int64_t fwd_hits, int64_t fwd_misses,
                    int64_t fwd_evictions, int64_t resume_reuses,
                    int64_t resume_evictions, int64_t resident_bytes_delta);

  MetricsSnapshot Snapshot() const;

  /// Prometheus text-exposition (format 0.0.4) of a current snapshot —
  /// equivalent to PrometheusText(Snapshot()) (see service/prometheus.h).
  std::string ToPrometheus() const;

  /// Zeroes every counter and restarts the uptime clock.
  void Reset();

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  // Latency histogram geometry (see LatencyHistogram above).
  static constexpr int kNumBuckets = LatencyHistogram::kNumBuckets;
  static constexpr double kBaseMs = LatencyHistogram::kBaseMs;
  static constexpr double kGrowth = LatencyHistogram::kGrowth;

  static int BucketOf(double latency_ms);
  static double BucketMidpoint(int bucket);
  double PercentileLocked(double p, int64_t total,
                          const std::array<int64_t, kNumBuckets>& counts) const;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};

  std::atomic<int64_t> vertices_settled_{0};
  std::atomic<int64_t> edges_relaxed_{0};
  std::atomic<int64_t> routes_found_{0};

  std::atomic<int64_t> xcache_fwd_hits_{0};
  std::atomic<int64_t> xcache_fwd_misses_{0};
  std::atomic<int64_t> xcache_fwd_evictions_{0};
  std::atomic<int64_t> xcache_resume_reuses_{0};
  std::atomic<int64_t> xcache_resume_evictions_{0};
  std::atomic<int64_t> xcache_resident_bytes_{0};

  std::array<std::atomic<int64_t>, kNumBuckets> latency_buckets_;
  std::array<std::atomic<int64_t>, kNumBuckets> latency_exemplar_ids_;
  std::array<std::atomic<double>, kNumBuckets> latency_exemplar_ms_;
  std::atomic<double> latency_sum_ms_{0};
  std::atomic<double> latency_max_ms_{0};

  std::array<std::atomic<int64_t>, kNumBuckets> queue_wait_buckets_;
  std::atomic<int64_t> queue_wait_count_{0};
  std::atomic<double> queue_wait_sum_ms_{0};
  std::atomic<double> queue_wait_max_ms_{0};
  std::atomic<int64_t> queue_depth_{0};

  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batched_queries_{0};
  std::atomic<int64_t> coalesced_queries_{0};
  std::array<std::atomic<int64_t>, MetricsSnapshot::kBatchSizeBuckets>
      batch_size_buckets_;

  WallTimer uptime_;
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_SERVICE_METRICS_H_

// QueryService — the concurrent query-execution layer over BssrEngine.
//
// The engine itself is single-threaded by design (it owns scratch buffers;
// "use one engine per thread"). The service turns that contract into a
// multi-client system: it owns the shared immutable Graph + CategoryForest,
// a fixed pool of workers each wrapping a private BssrEngine, a bounded
// MPMC submission queue providing backpressure, a shared LRU result cache
// over canonicalized queries, and aggregate metrics (QPS, latency
// percentiles, cache hit rate).
//
//   QueryService service(ds.graph, ds.forest, {.num_threads = 8});
//   auto future = service.Submit(MakeSimpleQuery(start, {cafe, museum}));
//   ...
//   Result<QueryResult> r = future.get();
//
// Batches fan out across the pool and return in input order:
//
//   std::vector<Result<QueryResult>> rs = service.RunBatch(queries);
//
// Thread safety: every public method may be called from any thread.
// Results are deterministic — a query returns the same skyline whether it
// ran on one thread, sixteen, or out of the cache.

#ifndef SKYSR_SERVICE_QUERY_SERVICE_H_
#define SKYSR_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "category/category_forest.h"
#include "core/bssr_engine.h"
#include "core/query.h"
#include "graph/graph.h"
#include "obs/query_trace.h"
#include "retrieval/category_buckets.h"
#include "service/batch_scheduler.h"
#include "service/bounded_queue.h"
#include "service/dest_tail_cache.h"
#include "service/prometheus.h"
#include "service/result_cache.h"
#include "service/service_metrics.h"
#include "service/slow_query_log.h"
#include "service/worker_pool.h"
#include "util/status.h"
#include "util/timer.h"

namespace skysr {

/// Service sizing and defaults.
struct ServiceConfig {
  /// Worker threads (one BssrEngine each); <= 0 uses hardware concurrency.
  int num_threads = 0;
  /// Bounded submission queue length. Submit() blocks when full.
  size_t queue_capacity = 1024;
  /// LRU result-cache entries; 0 disables the shared result cache.
  size_t cache_capacity = 512;
  /// Options applied when Submit/RunBatch are called without options.
  QueryOptions default_options;
  /// Shared immutable distance oracle (index layer). Non-owning: it must be
  /// built over the same graph and outlive the service. Every worker's
  /// engine queries the one index through its own per-thread workspace;
  /// null keeps the flat Dijkstra paths.
  const DistanceOracle* oracle = nullptr;
  /// Shared immutable category-bucket tables (src/retrieval/). Non-owning:
  /// must be built over (this graph, `oracle`) and outlive the service.
  /// One table set serves every worker; per-worker scan state lives inside
  /// each engine's workspace. Null keeps the settle/resume paths.
  const CategoryBucketIndex* buckets = nullptr;
  /// Per-destination reverse-tail LRU entries (one entry = an O(|V|) tail
  /// table shared across workers); 0 disables sharing and every §6
  /// destination query recomputes its tails.
  size_t dest_tail_cache_capacity = 32;
  /// Cross-query shared cache (src/cache/): each worker's engine keeps
  /// engine-lifetime warm state — a CLOCK-evicted forward-upward-search
  /// cache plus persistent resumable-retriever slots — and all workers
  /// start from one immutable prewarm snapshot built at construction. The
  /// read path takes no locks (the snapshot is immutable, everything
  /// mutable is worker-private); results are bit-identical on or off, cold
  /// or warm. The forward-search side engages only when `buckets` is set.
  bool shared_query_cache = true;
  /// Per-worker forward-search cache capacity, in (source, settle-list)
  /// entries.
  size_t xcache_fwd_capacity = 1024;
  /// PoI vertices (first N in PoiId order, duplicates skipped) whose
  /// forward searches are precomputed into the shared snapshot before the
  /// workers start; 0 skips the snapshot. Needs `buckets`.
  size_t xcache_prewarm_pois = 256;
  /// Slowest-query reservoir entries retained for diagnostics (see
  /// service/slow_query_log.h); 0 disables the log.
  size_t slow_query_log_capacity = 16;
  /// Per-worker phase tracing (src/obs/): each worker's engine records
  /// spans into a worker-owned ring allocated once at startup, exported by
  /// WorkerTracesToJson(). Off by default — the serving hot path then pays
  /// one branch per span site and nothing else.
  bool enable_tracing = false;
  /// Ring capacity (events) of each worker's trace.
  size_t trace_capacity = 4096;
  /// Micro-batching front door (service/batch_scheduler.h): with
  /// max_batch > 1 workers drain the queue in micro-batches, group
  /// in-flight queries by canonical source (executed through
  /// BssrEngine::RunGroup with the group's warm state pinned), and
  /// single-flight-deduplicate identical canonical-key queries. 1 keeps
  /// the one-task-at-a-time worker loop; results are bit-identical either
  /// way.
  size_t max_batch = 1;
  /// How long (µs) the drain leader holds a micro-batch open after its
  /// first task, waiting for it to fill; 0 collects only instantly
  /// available tasks.
  int64_t batch_window_us = 0;
};

/// A concurrent, cached front-end over per-thread BssrEngines.
class QueryService {
 public:
  /// The graph and forest must outlive the service. Workers start
  /// immediately.
  QueryService(const Graph& graph, const CategoryForest& forest,
               ServiceConfig config = ServiceConfig());

  /// Drains in-flight work, then joins the pool.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query; blocks while the submission queue is full. The
  /// future resolves to the skyline or an error status. After Shutdown()
  /// the future resolves immediately to an Internal error.
  std::future<Result<QueryResult>> Submit(Query query);
  std::future<Result<QueryResult>> Submit(Query query, QueryOptions options);

  /// Non-blocking submission; std::nullopt when the queue is full or the
  /// service is shut down (counted in MetricsSnapshot::rejected).
  std::optional<std::future<Result<QueryResult>>> TrySubmit(Query query);
  std::optional<std::future<Result<QueryResult>>> TrySubmit(
      Query query, QueryOptions options);

  /// Fans the batch out across the pool and blocks for all results, which
  /// are returned in input order.
  std::vector<Result<QueryResult>> RunBatch(std::span<const Query> queries);
  std::vector<Result<QueryResult>> RunBatch(std::span<const Query> queries,
                                            const QueryOptions& options);

  /// Aggregate counters since construction (or the last ResetMetrics),
  /// including the slowest-query records (slowest first).
  MetricsSnapshot Metrics() const {
    MetricsSnapshot s = metrics_.Snapshot();
    s.slow_queries = slow_log_.Snapshot();
    return s;
  }
  void ResetMetrics() {
    metrics_.Reset();
    slow_log_.Clear();
  }

  /// Prometheus text exposition of the current metrics.
  std::string MetricsToPrometheus() const {
    return PrometheusText(Metrics());
  }

  /// Merged Chrome trace-event JSON of every worker's trace (one track per
  /// worker); "" when the service was built without tracing. The traces
  /// are single-writer — call with no queries in flight (after a batch,
  /// or post-Shutdown).
  std::string WorkerTracesToJson() const;

  /// Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown();

  int num_threads() const { return num_threads_; }
  size_t cache_size() const { return cache_.size(); }
  const Graph& graph() const { return *graph_; }
  const CategoryForest& forest() const { return *forest_; }
  /// The shared destination-tail LRU (hit/miss counters for tests and
  /// metrics dumps).
  const DestTailLru& dest_tails() const { return dest_tails_; }
  /// The prewarm snapshot shared by every worker's cache; null when the
  /// shared query cache is off, bucketless, or prewarming is disabled.
  const FwdSnapshot* warm_snapshot() const { return warm_snapshot_.get(); }

 private:
  /// One worker's per-thread context: its engine, optional warm cache and
  /// trace, and the cumulative shared-cache counters already folded into
  /// the service metrics (so Execute can fold exact per-query deltas and
  /// hand the same deltas to the slow-query log).
  struct WorkerState {
    BssrEngine* engine = nullptr;
    SharedQueryCache* xcache = nullptr;  // null when the cache is off
    QueryTrace* trace = nullptr;         // null when tracing is off
    SharedCacheCounters seen;
    int64_t seen_bytes = 0;
  };

  void WorkerLoop(int thread_index);
  void Execute(WorkerState& state, ServingTask& task);
  void ExecuteGroup(WorkerState& state, BatchScheduler::Group& group);
  std::future<Result<QueryResult>> SubmitInternal(Query query,
                                                  QueryOptions options,
                                                  bool blocking,
                                                  bool* accepted);

  const Graph* graph_;
  const CategoryForest* forest_;
  const int num_threads_;
  ServiceConfig config_;

  BoundedQueue<ServingTask> queue_;
  // Non-null exactly when config_.max_batch > 1; workers then pull groups
  // from it instead of popping the queue directly.
  std::unique_ptr<BatchScheduler> scheduler_;
  LruResultCache cache_;
  DestTailLru dest_tails_;
  ServiceMetrics metrics_;
  SlowQueryLog slow_log_;
  // One trace per worker (empty when tracing is off); allocated before the
  // pool starts and never resized, so workers write lock-free.
  std::vector<std::unique_ptr<QueryTrace>> worker_traces_;
  // Built once before the workers start, then shared read-only; each
  // worker's SharedQueryCache holds a reference for its whole lifetime.
  std::shared_ptr<const FwdSnapshot> warm_snapshot_;
  WorkerPool pool_;
  // Service-wide query sequence: each completed query gets the next id,
  // which names it everywhere a human might follow it — the slow-query
  // log ("qN ..."), the Prometheus latency exemplars (trace_id="qN") and
  // the /debug dashboard. 0 is reserved for "unassigned".
  std::atomic<int64_t> query_seq_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_QUERY_SERVICE_H_

// Live /debug dashboard for a serving QueryService — a single
// self-contained HTML page (no external scripts or styles) rendered from a
// MetricsSnapshot plus a short sampled history, served by MetricsEndpoint
// and refreshed by a <meta http-equiv="refresh"> tag.
//
// The page shows what an operator reaches for first: QPS / p50 / p99
// sparklines over the sampled window, the batch-size histogram, the
// aggregate counters, and the top-N slow queries — each with its inline
// EXPLAIN tree when the query ran with decision attribution enabled.
//
//   MetricsHistory history(/*capacity=*/120);
//   ep.AddRoute("/debug", "text/html", [&] {
//     MetricsSnapshot s = service.Metrics();
//     history.Sample(s);
//     return DebugPageHtml(s, history);
//   });
//
// Sampling on request keeps the dashboard dependency-free: the sparkline
// advances once per page load (i.e. at the meta-refresh cadence), which is
// exactly the granularity a human watching the page can absorb.

#ifndef SKYSR_SERVICE_DEBUG_PAGE_H_
#define SKYSR_SERVICE_DEBUG_PAGE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/service_metrics.h"

namespace skysr {

/// Fixed-capacity ring of dashboard samples. Thread-safe (the endpoint's
/// listener thread samples while tests read); all allocation happens at
/// construction.
class MetricsHistory {
 public:
  struct Point {
    double qps = 0;        // completed/sec over the interval since last sample
    double p50_ms = 0;     // cumulative latency percentiles at sample time
    double p99_ms = 0;
    int64_t queue_depth = 0;
  };

  explicit MetricsHistory(size_t capacity = 120);

  /// Appends one point derived from `s`: the percentiles and queue depth
  /// verbatim, QPS as the completed-count delta over the uptime delta
  /// since the previous sample (first sample uses lifetime QPS). A
  /// snapshot from before a metrics reset (uptime went backwards) restarts
  /// the delta baseline.
  void Sample(const MetricsSnapshot& s);

  /// The retained points, oldest first.
  std::vector<Point> Points() const;

  void Clear();

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Point> ring_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  int64_t last_completed_ = 0;
  double last_uptime_ = 0;
  bool have_baseline_ = false;
};

/// Renders the dashboard. `refresh_seconds` <= 0 disables auto-refresh
/// (used by tests that want a stable page).
std::string DebugPageHtml(const MetricsSnapshot& snapshot,
                          const MetricsHistory& history,
                          int refresh_seconds = 2);

}  // namespace skysr

#endif  // SKYSR_SERVICE_DEBUG_PAGE_H_

#include "service/debug_page.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/explain.h"

namespace skysr {

MetricsHistory::MetricsHistory(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 2)) {
  ring_.resize(capacity_);
}

void MetricsHistory::Sample(const MetricsSnapshot& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s.uptime_seconds < last_uptime_) have_baseline_ = false;  // reset seen
  Point p;
  if (have_baseline_ && s.uptime_seconds > last_uptime_) {
    p.qps = static_cast<double>(s.completed - last_completed_) /
            (s.uptime_seconds - last_uptime_);
  } else {
    p.qps = s.qps;  // first sample: lifetime average is the best estimate
  }
  p.p50_ms = s.latency_p50_ms;
  p.p99_ms = s.latency_p99_ms;
  p.queue_depth = s.queue_depth;
  ring_[head_] = p;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  if (size_ < capacity_) ++size_;
  last_completed_ = s.completed;
  last_uptime_ = s.uptime_seconds;
  have_baseline_ = true;
}

std::vector<MetricsHistory::Point> MetricsHistory::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Point> out;
  out.reserve(size_);
  const size_t first = size_ < capacity_ ? 0 : head_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

void MetricsHistory::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  have_baseline_ = false;
}

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf)));
}

std::string HtmlEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// Server-rendered sparkline: one SVG polyline over the sampled window,
// scaled to the window's max (min pinned at 0). No scripts — the page
// stays self-contained and loads in anything.
template <typename Get>
void Sparkline(std::string* out, const char* label,
               const std::vector<MetricsHistory::Point>& pts, Get get,
               const char* unit) {
  double maxv = 0;
  for (const auto& p : pts) maxv = std::max(maxv, get(p));
  const double last = pts.empty() ? 0 : get(pts.back());
  constexpr int kW = 240;
  constexpr int kH = 48;
  Appendf(out,
          "<div class=\"spark\"><div class=\"sparkhead\">%s "
          "<b>%.2f%s</b> <span class=\"dim\">max %.2f</span></div>",
          label, last, unit, maxv);
  Appendf(out,
          "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">"
          "<rect width=\"%d\" height=\"%d\" class=\"sparkbg\"/>",
          kW, kH, kW, kH, kW, kH);
  if (pts.size() >= 2 && maxv > 0) {
    std::string points;
    for (size_t i = 0; i < pts.size(); ++i) {
      const double x =
          static_cast<double>(i) / static_cast<double>(pts.size() - 1) * kW;
      const double y = kH - (get(pts[i]) / maxv) * (kH - 4) - 2;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
      points += buf;
    }
    Appendf(out, "<polyline points=\"%s\" class=\"sparkline\"/>",
            points.c_str());
  }
  *out += "</svg></div>\n";
}

}  // namespace

std::string DebugPageHtml(const MetricsSnapshot& s,
                          const MetricsHistory& history, int refresh_seconds) {
  const std::vector<MetricsHistory::Point> pts = history.Points();
  std::string out;
  out.reserve(16384);

  out +=
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>skysr /debug</title>\n";
  if (refresh_seconds > 0) {
    Appendf(&out, "<meta http-equiv=\"refresh\" content=\"%d\">\n",
            refresh_seconds);
  }
  out +=
      "<style>\n"
      "body{font:13px/1.4 monospace;margin:16px;background:#111;color:#ddd}\n"
      "h1{font-size:16px;margin:0 0 12px}\n"
      "h2{font-size:13px;margin:16px 0 6px;color:#8ac}\n"
      "table{border-collapse:collapse}\n"
      "td,th{padding:2px 10px 2px 0;text-align:left;vertical-align:top}\n"
      "th{color:#888;font-weight:normal}\n"
      ".dim{color:#777}\n"
      ".row{display:flex;gap:24px;flex-wrap:wrap}\n"
      ".spark{margin:4px 0}\n"
      ".sparkhead{margin-bottom:2px}\n"
      ".sparkbg{fill:#1a1a1a}\n"
      ".sparkline{fill:none;stroke:#6c6;stroke-width:1.5}\n"
      ".bar{fill:#48c}\n"
      "pre{background:#1a1a1a;padding:6px;margin:4px 0;overflow-x:auto}\n"
      "</style></head><body>\n"
      "<h1>skysr service debug</h1>\n";

  // Headline counters.
  Appendf(&out,
          "<table><tr><th>uptime</th><th>submitted</th><th>completed</th>"
          "<th>errors</th><th>rejected</th><th>coalesced</th>"
          "<th>result cache</th><th>xcache fwd</th><th>queue</th></tr>"
          "<tr><td>%.1fs</td><td>%" PRId64 "</td><td>%" PRId64
          "</td><td>%" PRId64 "</td><td>%" PRId64 "</td><td>%" PRId64
          "</td><td>%.0f%% of %" PRId64 "</td><td>%.0f%% of %" PRId64
          "</td><td>%" PRId64 "</td></tr></table>\n",
          s.uptime_seconds, s.submitted, s.completed, s.errors, s.rejected,
          s.coalesced_queries, s.cache_hit_rate * 100,
          s.cache_hits + s.cache_misses, s.xcache_fwd_hit_rate * 100,
          s.xcache_fwd_hits + s.xcache_fwd_misses, s.queue_depth);

  // Sparklines over the sampled window.
  out += "<h2>trend (sampled per page load)</h2>\n<div class=\"row\">\n";
  Sparkline(&out, "qps", pts,
            [](const MetricsHistory::Point& p) { return p.qps; }, "");
  Sparkline(&out, "p50", pts,
            [](const MetricsHistory::Point& p) { return p.p50_ms; }, "ms");
  Sparkline(&out, "p99", pts,
            [](const MetricsHistory::Point& p) { return p.p99_ms; }, "ms");
  Sparkline(&out, "queue depth", pts,
            [](const MetricsHistory::Point& p) {
              return static_cast<double>(p.queue_depth);
            },
            "");
  out += "</div>\n";

  // Batch-size histogram (bucket i = sizes [2^i, 2^(i+1))).
  out += "<h2>batch sizes</h2>\n";
  if (s.batches > 0) {
    int64_t maxb = 1;
    for (int64_t c : s.batch_size_bucket_counts) maxb = std::max(maxb, c);
    constexpr int kBarW = 28;
    constexpr int kBarH = 64;
    Appendf(&out, "<svg width=\"%d\" height=\"%d\">",
            (kBarW + 4) * MetricsSnapshot::kBatchSizeBuckets, kBarH + 16);
    for (int i = 0; i < MetricsSnapshot::kBatchSizeBuckets; ++i) {
      const int64_t c = s.batch_size_bucket_counts[static_cast<size_t>(i)];
      const int h = static_cast<int>(
          static_cast<double>(c) / static_cast<double>(maxb) * kBarH);
      Appendf(&out,
              "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
              "class=\"bar\"/>"
              "<text x=\"%d\" y=\"%d\" fill=\"#888\" font-size=\"10\">"
              "%d</text>",
              i * (kBarW + 4), kBarH - h, kBarW, h, i * (kBarW + 4) + 8,
              kBarH + 12, 1 << i);
    }
    out += "</svg>\n";
    Appendf(&out,
            "<div class=\"dim\">%" PRId64 " batches, mean size %.2f, %" PRId64
            " batched queries</div>\n",
            s.batches, s.batch_mean_size, s.batched_queries);
  } else {
    out += "<div class=\"dim\">no batches drained (unbatched mode?)</div>\n";
  }

  // Slow queries, slowest first, with inline explains when present.
  Appendf(&out, "<h2>slow queries (top %zu)</h2>\n", s.slow_queries.size());
  if (s.slow_queries.empty()) {
    out += "<div class=\"dim\">none recorded</div>\n";
  } else {
    for (const SlowQueryRecord& rec : s.slow_queries) {
      Appendf(&out, "<pre>%s", HtmlEscape(rec.ToString()).c_str());
      if (rec.explain != nullptr) {
        out += "\n";
        out += HtmlEscape(rec.explain->ToTreeString());
      }
      out += "</pre>\n";
    }
  }

  out += "</body></html>\n";
  return out;
}

}  // namespace skysr

#include "service/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "service/result_cache.h"

namespace skysr {

BatchScheduler::BatchScheduler(BoundedQueue<ServingTask>* queue,
                               size_t max_batch, int64_t batch_window_us,
                               ServiceMetrics* metrics)
    : queue_(queue),
      max_batch_(std::max<size_t>(max_batch, 1)),
      window_us_(batch_window_us),
      metrics_(metrics) {}

bool BatchScheduler::NextGroup(Group* out) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!ready_.empty()) {
      *out = std::move(ready_.front());
      ready_.pop_front();
      return true;
    }
    if (done_) return false;
    if (!draining_) {
      // Become the drain leader. The blocking pop must run unlocked so
      // executing workers can reach CompleteFlight (and NextGroup) while
      // this thread sleeps in the queue's condvar.
      draining_ = true;
      lock.unlock();
      std::vector<ServingTask> batch = DrainBatch();
      lock.lock();
      if (batch.empty()) {
        done_ = true;  // queue closed and drained
      } else {
        FormGroupsLocked(std::move(batch));
      }
      draining_ = false;
      ready_cv_.notify_all();
      continue;
    }
    ready_cv_.wait(lock);
  }
}

std::vector<ServingTask> BatchScheduler::DrainBatch() {
  std::vector<ServingTask> batch;
  std::optional<ServingTask> first = queue_->Pop();
  if (!first.has_value()) return batch;
  batch.reserve(max_batch_);
  batch.push_back(std::move(*first));
  if (max_batch_ > 1) {
    // The window opens at the first pop: collect until the batch is full,
    // the window closes, or (window 0) the queue has nothing ready.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(window_us_);
    while (batch.size() < max_batch_) {
      std::optional<ServingTask> next =
          window_us_ > 0 ? queue_->PopUntil(deadline) : queue_->TryPop();
      if (!next.has_value()) break;
      batch.push_back(std::move(*next));
    }
  }
  if (metrics_ != nullptr) {
    metrics_->RecordBatch(static_cast<int64_t>(batch.size()));
    metrics_->SampleQueueDepth(static_cast<int64_t>(queue_->size()));
  }
  return batch;
}

void BatchScheduler::FormGroupsLocked(std::vector<ServingTask> batch) {
  // Single-flight: a task whose canonical key is already registered
  // attaches its promise to the flight and never executes; the primary's
  // CompleteFlight answers it. A fresh key registers here so duplicates in
  // this same batch (and in later batches, until completion) coalesce too.
  std::vector<ServingTask> keep;
  std::vector<std::string> keys;
  keep.reserve(batch.size());
  keys.reserve(batch.size());
  for (ServingTask& task : batch) {
    std::string key = CanonicalQueryKey(task.query, task.options);
    if (!key.empty()) {
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        it->second.push_back(std::move(task.promise));
        if (metrics_ != nullptr) metrics_->RecordCoalesced();
        continue;
      }
      inflight_.emplace(key, std::vector<std::promise<Result<QueryResult>>>());
    }
    keep.push_back(std::move(task));
    keys.push_back(std::move(key));
  }

  // Group by canonical source in arrival order; within a group, order by
  // destination so the group prefetch's tail tables are read back-to-back.
  std::vector<bool> taken(keep.size(), false);
  for (size_t i = 0; i < keep.size(); ++i) {
    if (taken[i]) continue;
    Group g;
    g.source = keep[i].query.start;
    std::vector<size_t> members;
    for (size_t j = i; j < keep.size(); ++j) {
      if (!taken[j] && keep[j].query.start == g.source) {
        taken[j] = true;
        members.push_back(j);
      }
    }
    std::stable_sort(members.begin(), members.end(), [&](size_t a, size_t b) {
      return keep[a].query.destination.value_or(kInvalidVertex) <
             keep[b].query.destination.value_or(kInvalidVertex);
    });
    g.tasks.reserve(members.size());
    g.keys.reserve(members.size());
    for (size_t m : members) {
      g.tasks.push_back(std::move(keep[m]));
      g.keys.push_back(std::move(keys[m]));
    }
    ready_.push_back(std::move(g));
  }
}

void BatchScheduler::CompleteFlight(const std::string& key,
                                    const Result<QueryResult>& result) {
  if (key.empty()) return;
  std::vector<std::promise<Result<QueryResult>>> followers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    followers = std::move(it->second);
    inflight_.erase(it);
  }
  for (std::promise<Result<QueryResult>>& p : followers) {
    p.set_value(result.ok() ? Result<QueryResult>(QueryResult(*result))
                            : Result<QueryResult>(result.status()));
  }
}

}  // namespace skysr
